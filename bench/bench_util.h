// Shared harness for the paper-table benches: builds failure cases, runs the
// explorer with a named strategy, and formats fixed-width tables.

#ifndef ANDURIL_BENCH_BENCH_UTIL_H_
#define ANDURIL_BENCH_BENCH_UTIL_H_

#include <optional>
#include <string>
#include <vector>

#include "src/explorer/explorer.h"
#include "src/systems/common.h"

namespace anduril::bench {

struct CaseRun {
  bool reproduced = false;
  int rounds = 0;
  double seconds = 0;                // wall time incl. initialization
  double init_seconds = 0;           // context setup
  int64_t median_injection_requests = 0;
  double mean_decision_nanos = 0;
  double median_round_init_seconds = 0;
  double median_workload_seconds = 0;
  std::vector<int> rank_trajectory;  // rank of the ground-truth site per round
  std::optional<explorer::ReproductionScript> script;
  // Outcome taxonomy, retry, and wall-clock accounting across the search.
  explorer::ExperimentRecord experiment;
  // Context statistics.
  size_t observables = 0;
  size_t candidates = 0;
  analysis::CausalGraphStats graph_stats;
  size_t total_stmts = 0;
  size_t total_sites = 0;
  int64_t dynamic_instances = 0;  // fault-site occurrences in the normal run
  // Ground truth, for new-root-cause comparison.
  ir::FaultSiteId ground_truth_site = ir::kInvalidId;
  std::string found_site_name;
  std::string ground_truth_site_name;
};

// Runs one failure case with the given strategy name (see MakeStrategy).
CaseRun RunCase(const systems::FailureCase& failure_case, const std::string& strategy,
                int max_rounds = 1500, int initial_window = 10, int adjustment = 1);

// "8" / "-" formatting for Table 2-style cells.
std::string RoundsCell(const CaseRun& run);
std::string TimeCell(const CaseRun& run);

// Prints a row of fixed-width columns.
void PrintRow(const std::vector<std::string>& cells, const std::vector<int>& widths);

}  // namespace anduril::bench

#endif  // ANDURIL_BENCH_BENCH_UTIL_H_
