// Paper Figure 6: the rank of the root-cause fault site across trials for
// the HBase-25905 motivating example, showing how the feedback promotes it.
//
// Expected shape: the root site starts ranked behind the noise-linked sites
// and climbs toward the top as observable feedback deprioritizes sites whose
// messages keep appearing in unsuccessful rounds.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/check.h"

namespace anduril::bench {
namespace {

void PlotCase(const char* id) {
  const systems::FailureCase* failure_case = systems::FindCase(id);
  ANDURIL_CHECK(failure_case != nullptr);
  CaseRun run = RunCase(*failure_case, "full");
  std::printf("Figure 6: rank of the root-cause fault site per trial — %s (%s)\n",
              failure_case->id.c_str(), failure_case->title.c_str());
  std::printf("reproduced=%s rounds=%d candidates=%zu\n\n", run.reproduced ? "yes" : "no",
              run.rounds, run.candidates);

  int max_rank = 1;
  for (int rank : run.rank_trajectory) {
    max_rank = std::max(max_rank, rank);
  }
  for (size_t i = 0; i < run.rank_trajectory.size(); ++i) {
    int rank = run.rank_trajectory[i];
    if (rank < 0) {
      continue;
    }
    int bar = rank * 60 / max_rank;
    std::printf("trial %3zu  rank %3d  |%s\n", i + 1, rank, std::string(bar, '#').c_str());
  }
  std::printf("\n");
}

int Main() {
  PlotCase("hb-25905");  // the motivating example (f17)
  PlotCase("hb-16144");  // the hardest case (f16)
  return 0;
}

}  // namespace
}  // namespace anduril::bench

int main() { return anduril::bench::Main(); }
