// Observability overhead on the zk-2247 search: what do the tracing/metrics
// hooks cost when no sink is attached (the default), and what does attaching
// both sinks cost? Emits BENCH_trace.json.
//
// The hooks are compiled in unconditionally and gated by a null-pointer test
// per site, so a hook-free baseline does not exist in this binary. The bench
// therefore measures the disabled path as two independent, interleaved series
// of identical no-sink searches ("off-a" / "off-b"): any measurable
// disabled-path cost — or measurement drift that would invalidate the
// comparison — shows up as a ratio between them. The acceptance bar is that
// this ratio stays under 2%. The "on" series attaches both a Tracer and a
// MetricsRegistry and reports the real cost of recording, which is allowed to
// be visible.
//
// All three series are interleaved at single-search granularity (off-a,
// off-b, on, repeat, with the order rotated every repetition), so host noise
// at any timescale above a few milliseconds hits every mode equally, and the
// overhead estimate is the median of per-repetition ratios — pairing cancels
// drift, the median discards repetitions a preemption landed in.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/explorer/explorer.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/stopwatch.h"
#include "src/util/strings.h"

namespace anduril::bench {
namespace {

constexpr int kRepetitions = 300;   // timed searches per mode
constexpr int kWarmupSearches = 3;  // untimed, per mode
constexpr double kDisabledOverheadBudget = 0.02;

struct ModeResult {
  std::string mode;            // "off-a" / "off-b" / "on"
  bool sinks = false;          // tracer + metrics attached
  std::vector<double> samples; // seconds per search, aligned by repetition
  double best_seconds = 0;
  int rounds = 0;              // rounds of the (deterministic) search
  size_t trace_events = 0;     // events recorded per search (0 when detached)
  size_t metric_names = 0;     // counter+gauge+histogram names (0 when detached)
};

// Best-of-N: timing noise on a deterministic CPU-bound workload is strictly
// one-sided (preemption, cache pollution), so the minimum converges to the
// true cost far faster than the median does.
double Best(const std::vector<double>& values) {
  ANDURIL_CHECK(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

// Overhead of `mode` vs `baseline` as the median of per-repetition ratios.
// The searches of a repetition run back-to-back (~10ms apart), so host drift
// (frequency scaling, co-tenant load) hits both and cancels in the ratio;
// the median then discards repetitions a preemption landed in.
double PairedOverhead(const ModeResult& baseline, const ModeResult& mode) {
  ANDURIL_CHECK(baseline.samples.size() == mode.samples.size());
  std::vector<double> ratios;
  for (size_t i = 0; i < mode.samples.size(); ++i) {
    ratios.push_back(mode.samples[i] / baseline.samples[i]);
  }
  std::sort(ratios.begin(), ratios.end());
  return ratios[ratios.size() / 2] - 1;
}

// One full search; sinks are fresh per search so the "on" mode pays the
// realistic recording cost every time instead of appending to a warm buffer.
explorer::ExploreResult SearchOnce(const systems::BuiltCase& built, bool sinks,
                                   obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  explorer::ExplorerOptions options;
  if (sinks) {
    tracer->Clear();
    metrics->Clear();
    options.tracer = tracer;
    options.metrics = metrics;
  }
  explorer::Explorer ex(built.spec, options);
  auto strategy = explorer::MakeFullFeedbackStrategy();
  return ex.Explore(strategy.get());
}

void PrintModeRow(const ModeResult& mode, double baseline_seconds) {
  std::string overhead = "-";
  if (baseline_seconds > 0) {
    overhead = StrFormat("%+.2f%%", (mode.best_seconds / baseline_seconds - 1) * 100);
  }
  PrintRow({mode.mode, mode.sinks ? "yes" : "no", std::to_string(mode.rounds),
            std::to_string(mode.trace_events), std::to_string(mode.metric_names),
            StrFormat("%.4fs", mode.best_seconds), overhead},
           {8, 7, 8, 14, 14, 11, 10});
}

int Main() {
  const systems::FailureCase* zk = systems::FindCase("zk-2247");
  ANDURIL_CHECK(zk != nullptr);
  systems::BuiltCase built = systems::BuildCase(*zk);

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;

  std::vector<ModeResult> modes = {
      {"off-a", false, {}, 0, 0, 0, 0},
      {"off-b", false, {}, 0, 0, 0, 0},
      {"on", true, {}, 0, 0, 0, 0},
  };

  // Warmup + per-mode sanity: the observability layer must never change what
  // the deterministic search does, only record it.
  for (ModeResult& mode : modes) {
    explorer::ExploreResult result;
    for (int i = 0; i < kWarmupSearches; ++i) {
      result = SearchOnce(built, mode.sinks, &tracer, &metrics);
    }
    ANDURIL_CHECK(result.reproduced);
    mode.rounds = result.rounds;
    if (mode.sinks) {
      mode.trace_events = tracer.event_count();
      obs::MetricsSnapshot snap = metrics.Snapshot();
      mode.metric_names = snap.counters.size() + snap.gauges.size() + snap.histograms.size();
      ANDURIL_CHECK(mode.trace_events > 0);
      ANDURIL_CHECK(mode.metric_names > 0);
    }
  }
  ANDURIL_CHECK(modes[0].rounds == modes[2].rounds);

  // Interleaved timing: one search per mode per repetition, with the order
  // rotated every repetition — a fixed order hands whichever mode runs
  // second a systematically warmer cache/heap than the first.
  for (int rep = 0; rep < kRepetitions; ++rep) {
    for (size_t k = 0; k < modes.size(); ++k) {
      ModeResult& mode = modes[(rep + k) % modes.size()];
      Stopwatch timer;
      explorer::ExploreResult result = SearchOnce(built, mode.sinks, &tracer, &metrics);
      mode.samples.push_back(timer.ElapsedSeconds());
      ANDURIL_CHECK(result.reproduced);
    }
  }
  for (ModeResult& mode : modes) {
    mode.best_seconds = Best(mode.samples);
  }

  std::printf("Observability overhead on zk-2247 "
              "(best of %d interleaved single-search samples)\n\n",
              kRepetitions);
  PrintRow({"mode", "sinks", "rounds", "trace_events", "metric_names", "best",
            "overhead"},
           {8, 7, 8, 14, 14, 11, 10});
  const double baseline = modes[0].best_seconds;
  PrintModeRow(modes[0], 0);
  PrintModeRow(modes[1], baseline);
  PrintModeRow(modes[2], baseline);

  const double disabled_overhead = PairedOverhead(modes[0], modes[1]);
  const double enabled_overhead = PairedOverhead(modes[0], modes[2]);
  std::printf("\ndisabled-path overhead (off-b vs off-a): %+.2f%% (budget %.0f%%)\n",
              disabled_overhead * 100, kDisabledOverheadBudget * 100);
  std::printf("enabled sinks overhead (on vs off-a):    %+.2f%% "
              "(%zu trace events, %zu metric names per search)\n",
              enabled_overhead * 100, modes[2].trace_events, modes[2].metric_names);
  ANDURIL_CHECK(std::abs(disabled_overhead) < kDisabledOverheadBudget);

  FILE* json = std::fopen("BENCH_trace.json", "w");
  ANDURIL_CHECK(json != nullptr);
  std::fprintf(json,
               "{\n  \"case\": \"zk-2247\",\n"
               "  \"repetitions\": %d,\n  \"disabled_overhead\": %.6f,\n"
               "  \"enabled_overhead\": %.6f,\n  \"modes\": [\n",
               kRepetitions, disabled_overhead, enabled_overhead);
  for (size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& mode = modes[i];
    std::fprintf(json,
                 "    {\"mode\": \"%s\", \"sinks\": %s, \"rounds\": %d, "
                 "\"trace_events\": %zu, \"metric_names\": %zu, "
                 "\"best_seconds\": %.6f, \"samples\": [",
                 mode.mode.c_str(), mode.sinks ? "true" : "false", mode.rounds,
                 mode.trace_events, mode.metric_names, mode.best_seconds);
    for (size_t s = 0; s < mode.samples.size(); ++s) {
      std::fprintf(json, "%s%.6f", s > 0 ? ", " : "", mode.samples[s]);
    }
    std::fprintf(json, "]}%s\n", i + 1 < modes.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nWrote BENCH_trace.json\n");
  return 0;
}

}  // namespace
}  // namespace anduril::bench

int main() { return anduril::bench::Main(); }
