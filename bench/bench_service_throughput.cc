// Reproduction-service throughput: the full 22-case registry queue run
// end-to-end through RunService, serial (workers=0, the in-process baseline)
// versus sharded across N supervised worker processes. Reports wall-clock
// and cases/minute per configuration and emits BENCH_service.json.
//
// Speedup is hardware-bound the same way bench_parallel_speedup's is, with
// two extra sources of overhead unique to the service: fork/exec of worker
// processes and the file-based work-unit IPC (one cmd/result pair plus a
// checkpoint write per slice). hardware_concurrency is recorded so the
// ratios are interpretable wherever the bench ran.
//
// The hard gates are correctness, not speed: every case must reproduce in
// every configuration, and the per-case outcomes (script, seed, rounds) must
// be identical across worker counts — the service-level determinism
// contract. The bench CHECK-fails loudly if either breaks.

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "bench/bench_util.h"
#include "src/service/daemon.h"
#include "src/util/check.h"
#include "src/util/stopwatch.h"
#include "src/util/strings.h"

namespace anduril::bench {
namespace {

namespace fs = std::filesystem;

struct Measurement {
  int workers = 0;  // 0 = in-process serial
  double seconds = 0;
  double cases_per_minute = 0;
  int reproduced = 0;
  int slices = 0;
  int respawns = 0;
};

std::vector<service::QueueCase> FullRegistryQueue() {
  std::vector<service::QueueCase> seed;
  for (const systems::FailureCase& failure_case : systems::AllCases()) {
    service::QueueCase entry;
    entry.id = failure_case.id;
    entry.round_budget = 2000;
    seed.push_back(std::move(entry));
  }
  return seed;
}

// Per-case outcome fields that must not depend on the worker count.
using Outcome = std::tuple<std::string, std::string, uint64_t, int>;

std::vector<Outcome> Outcomes(const service::QueueManifest& manifest) {
  std::vector<Outcome> out;
  for (const service::QueueCase& entry : manifest.cases) {
    out.emplace_back(entry.id, entry.script, entry.script_seed, entry.rounds_done);
  }
  return out;
}

int Main() {
  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf("Reproduction-service throughput (full %zu-case queue, "
              "hardware_concurrency=%u)\n\n",
              FullRegistryQueue().size(), hardware);
  PrintRow({"workers", "seconds", "cases/min", "slices", "respawns", "vs serial"},
           {8, 9, 10, 7, 9, 10});

  const std::string root = fs::temp_directory_path().string() + "/anduril_bench_service";
  fs::remove_all(root);

  std::vector<Measurement> measurements;
  std::vector<Outcome> serial_outcomes;
  double serial_seconds = 0;
  bool deterministic = true;
  const int case_count = static_cast<int>(FullRegistryQueue().size());

  for (const int workers : {0, 2, 4, 8}) {
    service::ServeOptions options;
    options.state_dir = root + "/w" + std::to_string(workers);
    fs::create_directories(options.state_dir);
    options.seed_cases = FullRegistryQueue();
    options.workers = workers;
    options.serve_binary = ANDURIL_SERVE_BIN;
    options.verbose = false;

    Stopwatch timer;
    const service::ServeReport report = service::RunService(options);
    Measurement m;
    m.workers = workers;
    m.seconds = timer.ElapsedSeconds();
    m.cases_per_minute = m.seconds > 0 ? case_count / (m.seconds / 60.0) : 0;
    m.reproduced = report.manifest.CountState(service::CaseState::kReproduced);
    m.slices = report.slices_applied;
    m.respawns = report.worker_respawns;

    ANDURIL_CHECK(!report.error);
    ANDURIL_CHECK(!report.interrupted);
    ANDURIL_CHECK(m.reproduced == case_count);
    if (workers == 0) {
      serial_outcomes = Outcomes(report.manifest);
      serial_seconds = m.seconds;
    } else if (Outcomes(report.manifest) != serial_outcomes) {
      deterministic = false;
    }

    const double speedup = m.seconds > 0 ? serial_seconds / m.seconds : 0;
    PrintRow({workers == 0 ? "serial" : std::to_string(workers),
              StrFormat("%.3f", m.seconds), StrFormat("%.1f", m.cases_per_minute),
              std::to_string(m.slices), std::to_string(m.respawns),
              StrFormat("%.2fx", speedup)},
             {8, 9, 10, 7, 9, 10});
    std::fflush(stdout);
    measurements.push_back(m);
  }

  std::printf("\nDeterminism across worker counts: %s\n",
              deterministic ? "OK" : "BROKEN");
  ANDURIL_CHECK(deterministic);

  FILE* json = std::fopen("BENCH_service.json", "w");
  ANDURIL_CHECK(json != nullptr);
  std::fprintf(json, "{\n  \"hardware_concurrency\": %u,\n", hardware);
  std::fprintf(json, "  \"queue_cases\": %d,\n", case_count);
  std::fprintf(json, "  \"deterministic_across_worker_counts\": %s,\n",
               deterministic ? "true" : "false");
  std::fprintf(json, "  \"runs\": [\n");
  for (size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::fprintf(json,
                 "    {\"workers\": %d, \"seconds\": %.6f, "
                 "\"cases_per_minute\": %.3f, \"reproduced\": %d, "
                 "\"slices\": %d, \"respawns\": %d}%s\n",
                 m.workers, m.seconds, m.cases_per_minute, m.reproduced, m.slices,
                 m.respawns, i + 1 < measurements.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("Wrote BENCH_service.json\n");

  fs::remove_all(root);
  return 0;
}

}  // namespace
}  // namespace anduril::bench

int main() { return anduril::bench::Main(); }
