// Parallel exploration engine speedup: serial vs N-thread wall clock on the
// two workloads the engine parallelizes — multi-repetition rounds
// (runs_per_round >= 4, the §6 combined-runs remedy) and speculative
// parallel-candidate evaluation — plus the shared-analysis-cache saving of
// the iterative multi-fault mode. Emits BENCH_parallel.json.
//
// Speedup is hardware-bound: the simulations are pure CPU, so the N-thread
// ratio approaches min(N, cores) on idle multi-core machines and ~1.0 on a
// single-core container. hardware_concurrency is recorded alongside every
// ratio so the numbers are interpretable wherever the bench ran. The
// determinism cross-check (same script at every thread count) runs either
// way and fails the bench loudly if it breaks.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/explorer/iterative.h"
#include "src/util/check.h"
#include "src/util/stopwatch.h"
#include "src/util/strings.h"

namespace anduril::bench {
namespace {

struct Measurement {
  std::string case_id;
  std::string mode;  // "repetitions" | "candidates"
  int threads = 1;
  double seconds = 0;
  int rounds = 0;
  bool reproduced = false;
  std::string script;
};

Measurement RunOnce(const systems::BuiltCase& built, const std::string& case_id,
                    const std::string& mode, int threads) {
  explorer::ExplorerOptions options;
  options.num_threads = threads;
  if (mode == "repetitions") {
    options.runs_per_round = 4;
  } else {
    options.parallel_candidates = true;
  }
  Stopwatch timer;
  explorer::Explorer ex(built.spec, options);
  auto strategy = explorer::MakeFullFeedbackStrategy();
  explorer::ExploreResult result = ex.Explore(strategy.get());

  Measurement m;
  m.case_id = case_id;
  m.mode = mode;
  m.threads = threads;
  m.seconds = timer.ElapsedSeconds();
  m.rounds = result.rounds;
  m.reproduced = result.reproduced;
  if (result.script.has_value()) {
    m.script = result.script->ToText(*built.spec.program);
  }
  return m;
}

double MeasureContextReuse(const systems::BuiltCase& built, double* rebuild_seconds,
                           double* reuse_seconds) {
  explorer::ExplorerOptions options;
  // Rebuild: construct the analysis from scratch three times (what the
  // iterative mode did per phase before the shared cache).
  Stopwatch rebuild_timer;
  for (int i = 0; i < 3; ++i) {
    explorer::ExplorerContext context(built.spec, options);
    ANDURIL_CHECK(!context.candidates().empty());
  }
  *rebuild_seconds = rebuild_timer.ElapsedSeconds();

  // Reuse: construct once, share twice.
  Stopwatch reuse_timer;
  auto shared = std::make_shared<const explorer::ExplorerContext>(built.spec, options);
  for (int i = 0; i < 2; ++i) {
    explorer::Explorer ex(built.spec, options, shared);
    ANDURIL_CHECK(!ex.context().candidates().empty());
  }
  *reuse_seconds = reuse_timer.ElapsedSeconds();
  return *rebuild_seconds / *reuse_seconds;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

int Main() {
  const std::vector<std::string> case_ids = {"zk-2247", "hd-4233", "hb-25905"};
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  unsigned hardware = std::thread::hardware_concurrency();

  if (hardware <= 1) {
    // A single-core (or unknown-core) host cannot measure a meaningful
    // thread-scaling ratio: every "speedup" would be noise around 1.0.
    // Emit a machine-readable skip marker instead of junk numbers.
    std::printf("hardware_concurrency = %u: single-core host, skipping speedup "
                "measurements\n",
                hardware);
    FILE* json = std::fopen("BENCH_parallel.json", "w");
    ANDURIL_CHECK(json != nullptr);
    std::fprintf(json, "{\n  \"hardware_concurrency\": %u,\n  \"skipped\": true\n}\n",
                 hardware);
    std::fclose(json);
    std::printf("Wrote BENCH_parallel.json (skipped)\n");
    return 0;
  }

  std::printf("Parallel exploration engine: serial vs N-thread wall clock\n");
  std::printf("hardware_concurrency = %u\n\n", hardware);
  PrintRow({"Case", "Mode", "Threads", "Seconds", "Rounds", "Speedup"},
           {12, 14, 9, 10, 8, 9});

  std::vector<Measurement> measurements;
  bool deterministic = true;
  double best_speedup_4t = 0;

  for (const std::string& case_id : case_ids) {
    const systems::FailureCase* failure_case = systems::FindCase(case_id);
    ANDURIL_CHECK(failure_case != nullptr);
    systems::BuiltCase built = systems::BuildCase(*failure_case);
    for (const std::string& mode : {std::string("repetitions"), std::string("candidates")}) {
      double serial_seconds = 0;
      std::string serial_script;
      for (int threads : thread_counts) {
        Measurement m = RunOnce(built, case_id, mode, threads);
        if (threads == 1) {
          serial_seconds = m.seconds;
          serial_script = m.script;
        } else if (m.script != serial_script || !m.reproduced) {
          deterministic = false;
        }
        double speedup = m.seconds > 0 ? serial_seconds / m.seconds : 0;
        if (threads == 4) {
          best_speedup_4t = std::max(best_speedup_4t, speedup);
        }
        PrintRow({case_id, mode, std::to_string(threads), StrFormat("%.3f", m.seconds),
                  std::to_string(m.rounds), StrFormat("%.2fx", speedup)},
                 {12, 14, 9, 10, 8, 9});
        std::fflush(stdout);
        measurements.push_back(std::move(m));
      }
    }
  }

  // Shared analysis cache: 3 phases rebuilt vs 1 build + 2 reuses.
  const systems::FailureCase* reuse_case = systems::FindCase("zk-2247");
  systems::BuiltCase reuse_built = systems::BuildCase(*reuse_case);
  double rebuild_seconds = 0;
  double reuse_seconds = 0;
  double reuse_speedup = MeasureContextReuse(reuse_built, &rebuild_seconds, &reuse_seconds);
  std::printf("\nShared analysis cache (3 iterative phases, zk-2247): "
              "rebuild %.3fs vs reuse %.3fs -> %.2fx\n",
              rebuild_seconds, reuse_seconds, reuse_speedup);
  std::printf("Determinism across thread counts: %s\n", deterministic ? "OK" : "BROKEN");
  ANDURIL_CHECK(deterministic);

  FILE* json = std::fopen("BENCH_parallel.json", "w");
  ANDURIL_CHECK(json != nullptr);
  std::fprintf(json, "{\n  \"hardware_concurrency\": %u,\n", hardware);
  std::fprintf(json, "  \"deterministic_across_thread_counts\": %s,\n",
               deterministic ? "true" : "false");
  std::fprintf(json, "  \"best_speedup_at_4_threads\": %.3f,\n", best_speedup_4t);
  std::fprintf(json, "  \"context_reuse\": {\"rebuild_seconds\": %.6f, "
               "\"reuse_seconds\": %.6f, \"speedup\": %.3f},\n",
               rebuild_seconds, reuse_seconds, reuse_speedup);
  std::fprintf(json, "  \"runs\": [\n");
  for (size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::fprintf(json,
                 "    {\"case\": \"%s\", \"mode\": \"%s\", \"threads\": %d, "
                 "\"seconds\": %.6f, \"rounds\": %d, \"reproduced\": %s, "
                 "\"script\": \"%s\"}%s\n",
                 m.case_id.c_str(), m.mode.c_str(), m.threads, m.seconds, m.rounds,
                 m.reproduced ? "true" : "false", JsonEscape(m.script).c_str(),
                 i + 1 < measurements.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nWrote BENCH_parallel.json\n");
  return 0;
}

}  // namespace
}  // namespace anduril::bench

int main() { return anduril::bench::Main(); }
