#include "bench/bench_util.h"

#include <cstdio>

#include "src/util/strings.h"

namespace anduril::bench {

CaseRun RunCase(const systems::FailureCase& failure_case, const std::string& strategy,
                int max_rounds, int initial_window, int adjustment) {
  systems::BuiltCase built = systems::BuildCase(failure_case);
  explorer::ExplorerOptions options;
  options.max_rounds = max_rounds;
  options.initial_window = initial_window;
  options.feedback_adjustment = adjustment;
  options.track_site = built.ground_truth.site;
  // Crash/stall- and network-rooted cases need their extended candidate
  // spaces; the stock Table 5 cases keep the original exception-only space.
  options.crash_stall_candidates = failure_case.root_kind == interp::FaultKind::kCrash ||
                                   failure_case.root_kind == interp::FaultKind::kStall;
  options.network_candidates = interp::IsNetworkFaultKind(failure_case.root_kind);

  explorer::Explorer ex(built.spec, options);
  auto strat = explorer::MakeStrategy(strategy);
  explorer::ExploreResult result = ex.Explore(strat.get());

  CaseRun run;
  run.reproduced = result.reproduced;
  run.rounds = result.rounds;
  run.seconds = result.total_seconds;
  run.init_seconds = result.init_seconds;
  run.median_injection_requests = result.median_injection_requests;
  run.mean_decision_nanos = result.mean_decision_nanos;
  run.median_round_init_seconds = result.median_round_init_seconds;
  run.median_workload_seconds = result.median_workload_seconds;
  run.script = result.script;
  run.experiment = result.experiment;
  for (const explorer::RoundRecord& record : result.records) {
    run.rank_trajectory.push_back(record.tracked_rank);
  }
  run.observables = ex.context().observables().size();
  run.candidates = ex.context().candidates().size();
  run.graph_stats = ex.context().graph().stats();
  run.total_stmts = built.program->TotalStmtCount();
  run.total_sites = built.program->fault_sites().size();
  run.dynamic_instances = static_cast<int64_t>(ex.context().normal_trace().size());
  run.ground_truth_site = built.ground_truth.site;
  run.ground_truth_site_name = built.program->fault_site(built.ground_truth.site).name;
  if (result.script.has_value()) {
    run.found_site_name = built.program->fault_site(result.script->site).name;
  }
  return run;
}

std::string RoundsCell(const CaseRun& run) {
  return run.reproduced ? std::to_string(run.rounds) : "-";
}

std::string TimeCell(const CaseRun& run) {
  if (!run.reproduced) {
    return "-";
  }
  if (run.seconds < 10) {
    return StrFormat("%.2fs", run.seconds);
  }
  return StrFormat("%.0fs", run.seconds);
}

void PrintRow(const std::vector<std::string>& cells, const std::vector<int>& widths) {
  std::string line;
  for (size_t i = 0; i < cells.size(); ++i) {
    int width = i < widths.size() ? widths[i] : 12;
    line += StrFormat("%-*s", width, cells[i].c_str());
  }
  std::printf("%s\n", line.c_str());
}

}  // namespace anduril::bench
