// Paper Table 5 (appendix): per-failure description, the injected fault
// type, and the stacktrace-injector baseline results (§8.4).
//
// Expected shape: the stacktrace injector reproduces only the failures whose
// root-cause fault is printed in the failure log (roughly a third to half of
// them), and needs many rounds when the logged sites execute often; it can
// win in one round when the log is clean (e.g. the Kafka emit-on-change
// case).

#include <cstdio>

#include "bench/bench_util.h"

namespace anduril::bench {
namespace {

int Main() {
  std::printf("Table 5: failures, injected faults, and the stacktrace-injector baseline\n\n");
  PrintRow({"Failure", "Injected fault", "St.Rnd", "St.Time", "Description"},
           {16, 24, 8, 10, 60});
  int reproduced = 0;
  for (const auto& failure_case : systems::AllCases()) {
    CaseRun run = RunCase(failure_case, "stacktrace");
    reproduced += run.reproduced ? 1 : 0;
    PrintRow({failure_case.id + " (" + failure_case.paper_id + ")",
              failure_case.injected_fault, RoundsCell(run), TimeCell(run),
              failure_case.title},
             {16, 24, 8, 10, 60});
    std::fflush(stdout);
  }
  std::printf("\nstacktrace-injector reproduced %d/22\n", reproduced);
  return 0;
}

}  // namespace
}  // namespace anduril::bench

int main() { return anduril::bench::Main(); }
