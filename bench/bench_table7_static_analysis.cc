// Paper Table 7 (appendix): static analysis performance per case —
// exception-flow analysis, slicing index, causal chaining, and total
// causal-graph construction time, plus graph sizes.
//
// Expected shape: exception analysis dominates; slicing is fast; everything
// scales with the system's IR size.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/strings.h"

namespace anduril::bench {
namespace {

int Main() {
  std::printf("Table 7: static causal-graph analysis time and size per case\n\n");
  PrintRow({"Failure", "IR stmts", "Exception", "Slicing", "Chaining", "Vertices", "Edges"},
           {16, 10, 11, 10, 10, 10, 10});
  for (const auto& failure_case : systems::AllCases()) {
    CaseRun run = RunCase(failure_case, "full", /*max_rounds=*/1);
    PrintRow({failure_case.id, WithThousandsSeparators(static_cast<int64_t>(run.total_stmts)),
              StrFormat("%.2f ms", run.graph_stats.exception_seconds * 1000.0),
              StrFormat("%.2f ms", run.graph_stats.slicing_seconds * 1000.0),
              StrFormat("%.2f ms", run.graph_stats.chaining_seconds * 1000.0),
              WithThousandsSeparators(run.graph_stats.vertices),
              WithThousandsSeparators(run.graph_stats.edges)},
             {16, 10, 11, 10, 10, 10, 10});
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace anduril::bench

int main() { return anduril::bench::Main(); }
