// Paper Table 7 (appendix): static analysis performance per case —
// exception-flow analysis, slicing index, causal chaining, and total
// causal-graph construction time, plus graph sizes.
//
// Expected shape: exception analysis dominates; slicing is fast; everything
// scales with the system's IR size.
//
// Extension (Table 7b): lint wall time and diagnostic counts per case, the
// fraction of injectable sites removed by static candidate pruning
// (ExplorerOptions::static_prune), and the rounds a blind trace-driven
// baseline (fate) needs to reproduce with pruning off vs on. The
// feedback-driven search is prune-invariant by construction, so fate is the
// strategy where pruning pays. Emits BENCH_lint.json.

#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/lint.h"
#include "src/explorer/strategy.h"
#include "src/util/check.h"
#include "src/util/stopwatch.h"
#include "src/util/strings.h"

namespace anduril::bench {
namespace {

analysis::LintEnvironment EnvironmentOf(const systems::BuiltCase& built) {
  analysis::LintEnvironment env;
  env.provided = true;
  std::unordered_set<std::string> node_seen;
  std::unordered_set<ir::MethodId> method_seen;
  for (const interp::ClusterSpec* cluster : {&built.cluster, &built.failure_cluster}) {
    for (const std::string& node : cluster->nodes) {
      if (node_seen.insert(node).second) {
        env.node_names.push_back(node);
      }
    }
    for (const interp::InitialTask& task : cluster->tasks) {
      if (method_seen.insert(task.method).second) {
        env.entry_methods.push_back(task.method);
      }
    }
  }
  return env;
}

struct LintPruneRow {
  std::string case_id;
  double lint_ms = 0;
  size_t errors = 0;
  size_t warnings = 0;
  size_t infos = 0;
  size_t total_sites = 0;
  size_t pruned_sites = 0;
  double pruned_pct = 0;
  int fate_rounds_off = -1;  // -1: not reproduced within the cap
  int fate_rounds_on = -1;
};

int FateRounds(const systems::BuiltCase& built, bool static_prune) {
  explorer::ExplorerOptions options;
  options.max_rounds = 3000;
  options.static_prune = static_prune;
  explorer::Explorer ex(built.spec, options);
  auto strategy = explorer::MakeStrategy("fate");
  explorer::ExploreResult result = ex.Explore(strategy.get());
  return result.reproduced ? result.rounds : -1;
}

std::string RoundsText(int rounds) { return rounds < 0 ? "-" : std::to_string(rounds); }

int Main() {
  std::printf("Table 7: static causal-graph analysis time and size per case\n\n");
  PrintRow({"Failure", "IR stmts", "Exception", "Slicing", "Chaining", "Vertices", "Edges"},
           {16, 10, 11, 10, 10, 10, 10});
  for (const auto& failure_case : systems::AllCases()) {
    CaseRun run = RunCase(failure_case, "full", /*max_rounds=*/1);
    PrintRow({failure_case.id, WithThousandsSeparators(static_cast<int64_t>(run.total_stmts)),
              StrFormat("%.2f ms", run.graph_stats.exception_seconds * 1000.0),
              StrFormat("%.2f ms", run.graph_stats.slicing_seconds * 1000.0),
              StrFormat("%.2f ms", run.graph_stats.chaining_seconds * 1000.0),
              WithThousandsSeparators(run.graph_stats.vertices),
              WithThousandsSeparators(run.graph_stats.edges)},
             {16, 10, 11, 10, 10, 10, 10});
    std::fflush(stdout);
  }

  std::printf("\nTable 7b: lint cost and static candidate pruning per case\n\n");
  PrintRow({"Failure", "Lint", "E/W/I", "Sites", "Pruned", "Fate off", "Fate on"},
           {16, 10, 12, 8, 12, 10, 10});
  std::vector<LintPruneRow> rows;
  for (const auto& failure_case : systems::AllCases()) {
    systems::BuiltCase built = systems::BuildCase(failure_case, /*verify=*/false);
    LintPruneRow row;
    row.case_id = failure_case.id;

    analysis::LintReport report = analysis::RunLints(*built.program, EnvironmentOf(built));
    row.lint_ms = report.seconds * 1000.0;
    row.errors = report.CountOf(analysis::LintSeverity::kError);
    row.warnings = report.CountOf(analysis::LintSeverity::kWarning);
    row.infos = report.CountOf(analysis::LintSeverity::kInfo);
    ANDURIL_CHECK_EQ(row.errors, 0u);  // shipped scenarios are error-clean

    explorer::ExplorerOptions pruned_options;
    pruned_options.static_prune = true;
    explorer::Explorer pruned(built.spec, pruned_options);
    row.total_sites = pruned.context().total_injectable_sites();
    row.pruned_sites = pruned.context().pruned_sites();
    row.pruned_pct =
        row.total_sites > 0 ? 100.0 * static_cast<double>(row.pruned_sites) / row.total_sites : 0;

    row.fate_rounds_off = FateRounds(built, /*static_prune=*/false);
    row.fate_rounds_on = FateRounds(built, /*static_prune=*/true);
    // Pruning only ever removes causally-inert sites from the blind list.
    if (row.fate_rounds_off >= 0 && row.fate_rounds_on >= 0) {
      ANDURIL_CHECK_LE(row.fate_rounds_on, row.fate_rounds_off);
    }

    PrintRow({row.case_id, StrFormat("%.2f ms", row.lint_ms),
              StrFormat("%zu/%zu/%zu", row.errors, row.warnings, row.infos),
              std::to_string(row.total_sites),
              StrFormat("%zu (%.0f%%)", row.pruned_sites, row.pruned_pct),
              RoundsText(row.fate_rounds_off), RoundsText(row.fate_rounds_on)},
             {16, 10, 12, 8, 12, 10, 10});
    std::fflush(stdout);
    rows.push_back(row);
  }

  FILE* json = std::fopen("BENCH_lint.json", "w");
  ANDURIL_CHECK(json != nullptr);
  std::fprintf(json, "{\n  \"cases\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const LintPruneRow& row = rows[i];
    std::fprintf(json,
                 "    {\"case\": \"%s\", \"lint_ms\": %.3f, \"errors\": %zu, "
                 "\"warnings\": %zu, \"infos\": %zu, \"injectable_sites\": %zu, "
                 "\"pruned_sites\": %zu, \"pruned_pct\": %.1f, "
                 "\"fate_rounds_unpruned\": %d, \"fate_rounds_pruned\": %d}%s\n",
                 row.case_id.c_str(), row.lint_ms, row.errors, row.warnings, row.infos,
                 row.total_sites, row.pruned_sites, row.pruned_pct, row.fate_rounds_off,
                 row.fate_rounds_on, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nWrote BENCH_lint.json\n");
  return 0;
}

}  // namespace
}  // namespace anduril::bench

int main() { return anduril::bench::Main(); }
