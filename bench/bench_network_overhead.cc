// Network candidate-space overhead: what does enabling
// ExplorerOptions::network_candidates cost an exception-rooted search that
// does not need it, and what does it buy the network-rooted scenarios that
// do? Emits BENCH_network.json.
//
// Part 1 runs zk-2247 (exception root cause) with the flag off and on: the
// widened space adds four network candidates (drop / delay / duplicate /
// partition) per kSend occurrence, and the table reports the extra rounds
// and wall clock the search pays to rank those candidates out.
//
// Part 2 runs every NetworkCases() scenario both ways: with the flag off the
// exception-only space cannot express the root cause and the search must
// fail; with it on, each scenario reproduces. A scenario that reproduces
// with the flag off (or fails with it on) fails the bench loudly.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/explorer/iterative.h"
#include "src/util/check.h"
#include "src/util/stopwatch.h"
#include "src/util/strings.h"

namespace anduril::bench {
namespace {

// "... at occurrence 5 with seed 6" -> "... at occurrence 5": the seed
// records the round that reproduced, which legitimately shifts when the
// candidate space grows.
std::string StripSeedSuffix(const std::string& script) {
  size_t pos = script.rfind(" with seed ");
  return pos == std::string::npos ? script : script.substr(0, pos);
}

struct Measurement {
  std::string case_id;
  bool network = false;      // network_candidates flag for this run
  size_t candidates = 0;     // candidate-space size seen by the strategy
  int rounds = 0;
  bool reproduced = false;
  double seconds = 0;
  std::string script;
};

Measurement RunOnce(const systems::BuiltCase& built, const std::string& case_id,
                    bool network, int max_rounds) {
  explorer::ExplorerOptions options;
  options.max_rounds = max_rounds;
  options.network_candidates = network;
  // Network scenarios with crash/stall root causes do not exist; the flag
  // under test is the only knob that differs between the two runs.
  Stopwatch timer;
  explorer::Explorer ex(built.spec, options);
  auto strategy = explorer::MakeFullFeedbackStrategy();
  explorer::ExploreResult result = ex.Explore(strategy.get());

  Measurement m;
  m.case_id = case_id;
  m.network = network;
  m.candidates = ex.context().candidates().size();
  m.rounds = result.rounds;
  m.reproduced = result.reproduced;
  m.seconds = timer.ElapsedSeconds();
  if (result.script.has_value()) {
    m.script = result.script->ToText(*built.spec.program);
  }
  return m;
}

void PrintMeasurementRow(const Measurement& m, double baseline_seconds) {
  std::string overhead = "-";
  if (m.network && baseline_seconds > 0) {
    overhead = StrFormat("%.2fx", m.seconds / baseline_seconds);
  }
  PrintRow({m.case_id, m.network ? "on" : "off", std::to_string(m.candidates),
            m.reproduced ? std::to_string(m.rounds) : "-",
            m.reproduced ? "yes" : "no", StrFormat("%.3fs", m.seconds), overhead},
           {12, 9, 12, 8, 12, 10, 10});
}

int Main() {
  std::vector<Measurement> measurements;

  std::printf("Network candidate space: overhead on exception-rooted searches\n\n");
  PrintRow({"case", "network", "candidates", "rounds", "reproduced", "seconds",
            "overhead"},
           {12, 9, 12, 8, 12, 10, 10});

  // Part 1: zk-2247 pays for the widened space without needing it.
  const systems::FailureCase* zk = systems::FindCase("zk-2247");
  ANDURIL_CHECK(zk != nullptr);
  systems::BuiltCase zk_built = systems::BuildCase(*zk);
  Measurement off = RunOnce(zk_built, zk->id, /*network=*/false, /*max_rounds=*/1500);
  Measurement on = RunOnce(zk_built, zk->id, /*network=*/true, /*max_rounds=*/1500);
  ANDURIL_CHECK(off.reproduced);
  ANDURIL_CHECK(on.reproduced);
  // The widened space must not change what the search finds — only how many
  // rounds it takes, which also shifts the reproducing round's seed suffix.
  ANDURIL_CHECK(StripSeedSuffix(off.script) == StripSeedSuffix(on.script));
  PrintMeasurementRow(off, 0);
  PrintMeasurementRow(on, off.seconds);
  measurements.push_back(off);
  measurements.push_back(on);

  // Part 2: the network scenarios require the flag.
  std::printf("\nNetwork-rooted scenarios: exception-only space vs widened space\n\n");
  PrintRow({"case", "network", "candidates", "rounds", "reproduced", "seconds",
            "overhead"},
           {12, 9, 12, 8, 12, 10, 10});
  for (const systems::FailureCase& failure_case : systems::NetworkCases()) {
    systems::BuiltCase built = systems::BuildCase(failure_case);
    // Cap the doomed exception-only search; it would otherwise drain the
    // full default budget per scenario.
    Measurement blind = RunOnce(built, failure_case.id, /*network=*/false,
                                /*max_rounds=*/150);
    Measurement sighted = RunOnce(built, failure_case.id, /*network=*/true,
                                  /*max_rounds=*/1500);
    ANDURIL_CHECK(!blind.reproduced);
    ANDURIL_CHECK(sighted.reproduced);
    // No overhead ratio here: the blind run is a capped failed search, not a
    // baseline.
    PrintMeasurementRow(blind, 0);
    PrintMeasurementRow(sighted, 0);
    measurements.push_back(blind);
    measurements.push_back(sighted);
  }

  std::printf("\nzk-2247 search overhead with network candidates: "
              "%.2fx candidates, %.2fx wall clock, %+d rounds\n",
              off.candidates > 0 ? static_cast<double>(on.candidates) / off.candidates : 0,
              off.seconds > 0 ? on.seconds / off.seconds : 0, on.rounds - off.rounds);

  FILE* json = std::fopen("BENCH_network.json", "w");
  ANDURIL_CHECK(json != nullptr);
  std::fprintf(json, "{\n  \"runs\": [\n");
  for (size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::fprintf(json,
                 "    {\"case\": \"%s\", \"network_candidates\": %s, "
                 "\"candidates\": %zu, \"rounds\": %d, \"reproduced\": %s, "
                 "\"seconds\": %.6f}%s\n",
                 m.case_id.c_str(), m.network ? "true" : "false", m.candidates,
                 m.rounds, m.reproduced ? "true" : "false", m.seconds,
                 i + 1 < measurements.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nWrote BENCH_network.json\n");
  return 0;
}

}  // namespace
}  // namespace anduril::bench

int main() { return anduril::bench::Main(); }
