// Outcome taxonomy of the hardened exploration runtime: per-case round
// outcome counts (completed / crashed / hung / budget-exceeded), transient
// retry counts, and round wall-clock extremes.
//
// The exception-rooted cases run over the stock candidate space (their
// rounds all complete); the crash/stall-rooted cases run with
// crash_stall_candidates enabled, so their searches visit node-crash and
// stall candidates and the crashed/hung columns fill in.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/strings.h"

namespace anduril::bench {
namespace {

void PrintCaseRow(const systems::FailureCase& failure_case) {
  CaseRun run = RunCase(failure_case, "full");
  const explorer::ExperimentRecord& experiment = run.experiment;
  int total = experiment.total_rounds();
  PrintRow({failure_case.id, RoundsCell(run), std::to_string(experiment.completed_rounds),
            std::to_string(experiment.crashed_rounds), std::to_string(experiment.hung_rounds),
            std::to_string(experiment.budget_exceeded_rounds),
            std::to_string(experiment.transient_retries),
            total > 0 ? StrFormat("%.1f%%", 100.0 * (experiment.crashed_rounds +
                                                     experiment.hung_rounds) /
                                                total)
                      : "-",
            StrFormat("%.2fms", experiment.max_round_wall_seconds * 1e3)},
           {12, 8, 10, 8, 6, 8, 8, 10, 10});
}

int Main() {
  std::printf("Round outcome taxonomy (strategy: full feedback)\n\n");
  PrintRow({"case", "rounds", "completed", "crashed", "hung", "budget", "retries",
            "fault-rate", "max-round"},
           {12, 8, 10, 8, 6, 8, 8, 10, 10});
  for (const systems::FailureCase& failure_case : systems::AllCases()) {
    if (failure_case.id == "zk-2247" || failure_case.id == "hd-4233" ||
        failure_case.id == "hb-18137" || failure_case.id == "ka-12508") {
      PrintCaseRow(failure_case);
    }
  }
  for (const systems::FailureCase& failure_case : systems::CrashStallCases()) {
    PrintCaseRow(failure_case);
  }
  return 0;
}

}  // namespace
}  // namespace anduril::bench

int main() { return anduril::bench::Main(); }
