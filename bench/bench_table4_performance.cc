// Paper Tables 4 and 8: Explorer runtime performance — median injection
// requests per run, per-decision hook latency, per-round initialization
// (priority recomputation + feedback digestion), and workload time.
//
// Expected shape: decisions are sub-microsecond-to-microsecond; round
// initialization is small relative to the workload; systems with more
// dynamic fault instances receive more injection requests.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/util/strings.h"

namespace anduril::bench {
namespace {

int Main() {
  std::printf("Table 8: per-case Explorer runtime details\n\n");
  PrintRow({"Failure", "Inject.Req.", "Latency", "RoundInit", "Workload"},
           {16, 13, 12, 12, 12});

  struct Accum {
    int cases = 0;
    int64_t requests = 0;
    double latency_ns = 0;
    double init_s = 0;
    double workload_s = 0;
  };
  std::map<std::string, Accum> per_system;

  for (const auto& failure_case : systems::AllCases()) {
    CaseRun run = RunCase(failure_case, "full");
    PrintRow({failure_case.id, WithThousandsSeparators(run.median_injection_requests),
              StrFormat("%.2f us", run.mean_decision_nanos / 1000.0),
              StrFormat("%.2f ms", run.median_round_init_seconds * 1000.0),
              StrFormat("%.2f ms", run.median_workload_seconds * 1000.0)},
             {16, 13, 12, 12, 12});
    Accum& acc = per_system[failure_case.system];
    ++acc.cases;
    acc.requests += run.median_injection_requests;
    acc.latency_ns += run.mean_decision_nanos;
    acc.init_s += run.median_round_init_seconds;
    acc.workload_s += run.median_workload_seconds;
    std::fflush(stdout);
  }

  std::printf("\nTable 4: per-system means\n\n");
  PrintRow({"System", "Inject.Req.", "Latency", "RoundInit", "Workload"},
           {12, 13, 12, 12, 12});
  for (const auto& [system, acc] : per_system) {
    PrintRow({system, WithThousandsSeparators(acc.requests / acc.cases),
              StrFormat("%.2f us", acc.latency_ns / acc.cases / 1000.0),
              StrFormat("%.2f ms", acc.init_s / acc.cases * 1000.0),
              StrFormat("%.2f ms", acc.workload_s / acc.cases * 1000.0)},
             {12, 13, 12, 12, 12});
  }
  return 0;
}

}  // namespace
}  // namespace anduril::bench

int main() { return anduril::bench::Main(); }
