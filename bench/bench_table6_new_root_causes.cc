// Paper §8.2 / appendix Table 6: new (deeper) root causes discovered during
// reproduction. A given symptom can be caused by more than one fault; when
// the explorer's reproduction satisfies the oracle with a *different* fault
// site than the documented ground truth, that is exactly the phenomenon the
// paper reports (e.g. a disk fault while creating the column family also
// leaves C*-6415's repair hanging — and the original retry-based patch would
// not cover it).
//
// Expected shape: a handful of the 22 cases admit an alternative root cause.

#include <cstdio>

#include "bench/bench_util.h"

namespace anduril::bench {
namespace {

int Main() {
  std::printf("Table 6: reproductions whose root cause differs from the documented one\n\n");
  PrintRow({"Failure", "Documented root cause", "Discovered root cause"}, {14, 52, 52});
  int discovered = 0;
  for (const auto& failure_case : systems::AllCases()) {
    CaseRun run = RunCase(failure_case, "full");
    if (!run.reproduced || !run.script.has_value()) {
      continue;
    }
    if (run.script->site != run.ground_truth_site) {
      ++discovered;
      PrintRow({failure_case.id, run.ground_truth_site_name, run.found_site_name},
               {14, 52, 52});
    }
    std::fflush(stdout);
  }
  std::printf(
      "\n%d of 22 reproductions identified an alternative root cause that also satisfies\n"
      "the failure oracle (deeper or sibling faults in the causal chain).\n",
      discovered);
  return 0;
}

}  // namespace
}  // namespace anduril::bench

int main() { return anduril::bench::Main(); }
