// Micro-benchmarks (google-benchmark) for the building blocks whose costs
// the paper discusses in §7: the per-thread Myers diff (reimplemented in C
// there for speed), log parsing, causal-graph construction, the simulated
// workload run, and the injection-hook decision latency (Table 4).

#include <benchmark/benchmark.h>

#include "src/explorer/context.h"
#include "src/interp/simulator.h"
#include "src/logdiff/compare.h"
#include "src/logdiff/myers.h"
#include "src/logdiff/parser.h"
#include "src/systems/common.h"
#include "src/util/rng.h"

namespace anduril {
namespace {

std::vector<int32_t> RandomSequence(size_t n, int alphabet, uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> seq(n);
  for (auto& value : seq) {
    value = static_cast<int32_t>(rng.NextBelow(static_cast<uint64_t>(alphabet)));
  }
  return seq;
}

void BM_MyersDiff(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto a = RandomSequence(n, 40, 1);
  auto b = a;
  // Perturb ~10% of b, the typical similarity of run logs.
  Rng rng(2);
  for (size_t i = 0; i < n / 10; ++i) {
    b[rng.NextBelow(n)] = static_cast<int32_t>(rng.NextBelow(40));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(logdiff::MyersDiff(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_MyersDiff)->Arg(100)->Arg(1000)->Arg(5000);

const systems::BuiltCase& MotivatingCase() {
  static const systems::BuiltCase* built = [] {
    const systems::FailureCase* failure_case = systems::FindCase("hb-25905");
    return new systems::BuiltCase(systems::BuildCase(*failure_case));
  }();
  return *built;
}

void BM_SimulatedWorkloadRun(benchmark::State& state) {
  const systems::BuiltCase& built = MotivatingCase();
  uint64_t seed = 1;
  for (auto _ : state) {
    interp::FaultRuntime runtime(built.program.get());
    interp::Simulator simulator(built.program.get(), &built.cluster, seed++, &runtime);
    benchmark::DoNotOptimize(simulator.Run());
  }
}
BENCHMARK(BM_SimulatedWorkloadRun);

void BM_LogParse(benchmark::State& state) {
  const systems::BuiltCase& built = MotivatingCase();
  for (auto _ : state) {
    benchmark::DoNotOptimize(logdiff::ParseLogFile(built.failure_log_text));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(built.failure_log_text.size()));
}
BENCHMARK(BM_LogParse);

void BM_PerThreadLogCompare(benchmark::State& state) {
  const systems::BuiltCase& built = MotivatingCase();
  interp::FaultRuntime runtime(built.program.get());
  interp::Simulator simulator(built.program.get(), &built.cluster, 1, &runtime);
  interp::RunResult normal = simulator.Run();
  logdiff::ParsedLog normal_log = logdiff::ParseLogFile(interp::FormatLogFile(normal.log));
  logdiff::ParsedLog failure_log = logdiff::ParseLogFile(built.failure_log_text);
  for (auto _ : state) {
    benchmark::DoNotOptimize(logdiff::CompareLogs(normal_log, failure_log));
  }
}
BENCHMARK(BM_PerThreadLogCompare);

void BM_ExplorerContextBuild(benchmark::State& state) {
  const systems::BuiltCase& built = MotivatingCase();
  explorer::ExplorerOptions options;
  for (auto _ : state) {
    explorer::ExplorerContext context(built.spec, options);
    benchmark::DoNotOptimize(context.candidates().size());
  }
}
BENCHMARK(BM_ExplorerContextBuild);

void BM_InjectionDecision(benchmark::State& state) {
  const systems::BuiltCase& built = MotivatingCase();
  interp::FaultRuntime runtime(built.program.get());
  runtime.SetWindow({built.ground_truth});
  runtime.BeginRun();
  const ir::FaultSite& site = built.program->fault_site(built.ground_truth.site);
  const ir::Stmt& stmt =
      built.program->method(site.location.method).stmt(site.location.stmt);
  int64_t clock = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        runtime.OnExternalCall(built.ground_truth.site, stmt, clock++, 0, 0));
  }
}
BENCHMARK(BM_InjectionDecision);

}  // namespace
}  // namespace anduril

BENCHMARK_MAIN();
