// Paper Table 1: target system sizes and fault-site counts.
//   Total:    all static fault sites in the system
//   Inferred: fault sites the causal-graph analysis keeps for the failure
//   Dynamic:  dynamic occurrences of the inferred sites under the workload
//
// Expected shape: Total >> Inferred (the causal graph prunes most sites);
// Dynamic >> Inferred (sites execute many times); HBase/HDFS/Kafka larger
// than ZooKeeper/Cassandra in Total.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/util/strings.h"

namespace anduril::bench {
namespace {

int Main() {
  std::printf("Table 1: IR statements and fault sites per system (means over its cases)\n\n");
  struct Accum {
    int cases = 0;
    int64_t stmts = 0;
    int64_t total_sites = 0;
    int64_t inferred = 0;
    int64_t dynamic = 0;
  };
  std::map<std::string, Accum> per_system;

  for (const auto& failure_case : systems::AllCases()) {
    CaseRun run = RunCase(failure_case, "full", /*max_rounds=*/1);
    Accum& acc = per_system[failure_case.system];
    ++acc.cases;
    acc.stmts += static_cast<int64_t>(run.total_stmts);
    acc.total_sites += static_cast<int64_t>(run.total_sites);
    acc.inferred += run.graph_stats.inferred_fault_sites;
    acc.dynamic += run.dynamic_instances;
  }

  PrintRow({"System", "IR stmts", "Total", "Inferred", "Dynamic"}, {12, 10, 8, 10, 10});
  for (const auto& [system, acc] : per_system) {
    PrintRow({system, WithThousandsSeparators(acc.stmts / acc.cases),
              WithThousandsSeparators(acc.total_sites / acc.cases),
              WithThousandsSeparators(acc.inferred / acc.cases),
              WithThousandsSeparators(acc.dynamic / acc.cases)},
             {12, 10, 8, 10, 10});
  }
  return 0;
}

}  // namespace
}  // namespace anduril::bench

int main() { return anduril::bench::Main(); }
