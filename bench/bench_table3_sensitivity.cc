// Paper Table 3: sensitivity of the two key feedback parameters —
// the initial flexible-window size k (§5.2.5) and the observable priority
// adjustment s (§5.2.1) — measured as rounds to reproduce for each of the
// 22 failures. Expected shape: robust overall (most cases reproduce under
// every setting) with modest per-case differences; very small k wastes
// rounds when the top candidate does not occur, very large s overreacts to
// noisy observables.

#include <cstdio>

#include "bench/bench_util.h"

namespace anduril::bench {
namespace {

constexpr int kMaxRounds = 1500;

int Main() {
  std::printf("Table 3: sensitivity of initial window k and adjustment s (rounds)\n\n");
  struct Setting {
    const char* label;
    int window;
    int adjustment;
  };
  const Setting settings[] = {
      {"k=1  s=+1", 1, 1},  {"k=3  s=+1", 3, 1},  {"k=10 s=+1", 10, 1},
      {"k=10 s=+2", 10, 2}, {"k=10 s=+10", 10, 10},
  };

  std::vector<int> widths{12};
  std::vector<std::string> header{"Setting"};
  for (const auto& failure_case : systems::AllCases()) {
    header.push_back(failure_case.paper_id);
    widths.push_back(6);
  }
  PrintRow(header, widths);

  for (const Setting& setting : settings) {
    std::vector<std::string> row{setting.label};
    for (const auto& failure_case : systems::AllCases()) {
      CaseRun run =
          RunCase(failure_case, "full", kMaxRounds, setting.window, setting.adjustment);
      row.push_back(RoundsCell(run));
      std::fflush(stdout);
    }
    PrintRow(row, widths);
  }
  return 0;
}

}  // namespace
}  // namespace anduril::bench

int main() { return anduril::bench::Main(); }
