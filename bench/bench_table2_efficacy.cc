// Paper Table 2: efficacy of reproducing the 22 failures with the full
// feedback algorithm, its five ablation variants (§8.3), and the two
// coverage-oriented state-of-the-art baselines (§8.4).
//
// Expected shape (not absolute numbers): Full Feedback reproduces every case
// in few rounds; the ablations reproduce fewer cases and take many more
// rounds (Exhaustive worst, Multiply best among them); FATE / CrashTuner
// reproduce only a handful of cases within the budget.

#include <cstdio>

#include "bench/bench_util.h"

namespace anduril::bench {
namespace {

constexpr int kMaxRounds = 1500;  // the "24 hours" analog: budget then "-"

const char* kStrategies[] = {
    "full",       "exhaustive", "site-distance", "site-distance-limit",
    "site-feedback", "multiply", "fate",          "crashtuner",
};

int Main() {
  std::printf("Table 2: failure reproduction efficacy (rounds / time)\n");
  std::printf("Budget: %d rounds per strategy; '-' = not reproduced within budget\n\n",
              kMaxRounds);
  std::vector<int> widths{16};
  std::vector<std::string> header{"Failure"};
  for (const char* strategy : kStrategies) {
    header.push_back(strategy);
    widths.push_back(22);
  }
  PrintRow(header, widths);

  struct Totals {
    int reproduced = 0;
    int64_t rounds = 0;
    double seconds = 0;
  };
  std::vector<Totals> totals(std::size(kStrategies));

  for (const auto& failure_case : systems::AllCases()) {
    std::vector<std::string> row{failure_case.id + " (" + failure_case.paper_id + ")"};
    for (size_t s = 0; s < std::size(kStrategies); ++s) {
      CaseRun run = RunCase(failure_case, kStrategies[s], kMaxRounds);
      row.push_back(RoundsCell(run) + " / " + TimeCell(run));
      if (run.reproduced) {
        ++totals[s].reproduced;
        totals[s].rounds += run.rounds;
        totals[s].seconds += run.seconds;
      }
      std::fflush(stdout);
    }
    PrintRow(row, widths);
  }

  std::printf("\nSummary (reproduced cases / mean rounds / mean time over successes):\n");
  for (size_t s = 0; s < std::size(kStrategies); ++s) {
    if (totals[s].reproduced == 0) {
      std::printf("  %-22s 0/22\n", kStrategies[s]);
      continue;
    }
    std::printf("  %-22s %d/22  %.1f rounds  %.2fs\n", kStrategies[s], totals[s].reproduced,
                static_cast<double>(totals[s].rounds) / totals[s].reproduced,
                totals[s].seconds / totals[s].reproduced);
  }
  return 0;
}

}  // namespace
}  // namespace anduril::bench

int main() { return anduril::bench::Main(); }
