// Storm-scale benchmark: the fault space grown 100-1000x. Emits
// BENCH_storm.json.
//
// Part 1 reruns the Table 2 protocol on the StormCases() registry — the
// cassandra/zookeeper storm scenarios whose fault-free traces carry >=5x10^4
// dynamic fault instances. Full feedback must reproduce both; the blind
// baselines (exhaustive, FATE, CrashTuner) are capped at kBaselineRounds and
// MUST cap out — a storm case reproduced blind means the scenario no longer
// needs feedback and fails the bench loudly.
//
// Part 2 is the scaling claim for the incremental priority engine: a
// synthetic EngineSpec sweep at 10^3 / 10^4 / 10^5 candidates, driven by an
// Algorithm 2-shaped round (raise I_k of a fixed "present" set, read the
// top-10 window, retire one instance). Steady-state per-round cost must stay
// flat — at 10^5 candidates no more than kFlatRatio x the 10^3 cost — while
// the from-scratch re-rank (ExplorerOptions::full_rerank's O(C*K) path,
// modeled by Reset) grows with the candidate count.

#include <algorithm>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/explorer/priority_engine.h"
#include "src/util/check.h"
#include "src/util/stopwatch.h"

namespace anduril::bench {
namespace {

using explorer::EngineSpec;
using explorer::PriorityEngine;

// Budget for the blind baselines. Full feedback reproduces the storms in a
// handful of rounds; the baselines face ~6x10^4 instances and cannot.
constexpr int kBaselineRounds = 150;
// Every storm case must put at least this many dynamic fault instances in
// the fault-free trace (the "100-1000x" floor; stock cases sit at 10^2-10^3).
constexpr int64_t kMinDynamicInstances = 50'000;
// Steady-state per-round cost at 10^5 candidates may be at most this many
// times the 10^3 cost. log2(10^5)/log2(10^3) ~= 1.67 bounds the heap term;
// the dirty-set term is scale-free once the argmin buckets drain.
constexpr double kFlatRatio = 2.0;

const char* kStrategies[] = {"full", "exhaustive", "fate", "crashtuner"};

struct StormRun {
  std::string case_id;
  std::string paper_id;
  int64_t dynamic_instances = 0;
  size_t candidates = 0;
  size_t observables = 0;
  std::vector<CaseRun> runs;  // one per kStrategies entry
};

StormRun MeasureCase(const systems::FailureCase& failure_case) {
  StormRun storm;
  storm.case_id = failure_case.id;
  storm.paper_id = failure_case.paper_id;
  for (const char* strategy : kStrategies) {
    CaseRun run = RunCase(failure_case, strategy, kBaselineRounds);
    if (storm.runs.empty()) {
      storm.dynamic_instances = run.dynamic_instances;
      storm.candidates = run.candidates;
      storm.observables = run.observables;
      ANDURIL_CHECK(run.dynamic_instances >= kMinDynamicInstances)
          << failure_case.id << " carries only " << run.dynamic_instances
          << " dynamic instances; storm floor is " << kMinDynamicInstances;
      ANDURIL_CHECK(run.reproduced)
          << failure_case.id << " not reproduced by full feedback within "
          << kBaselineRounds << " rounds";
    } else {
      ANDURIL_CHECK(!run.reproduced)
          << failure_case.id << " reproduced blind by " << strategy
          << ": the storm no longer separates feedback from the baselines";
    }
    storm.runs.push_back(std::move(run));
    std::fflush(stdout);
  }
  return storm;
}

// --- Part 2: synthetic engine sweep ----------------------------------------------

constexpr size_t kSweepObservables = 64;
// Observables 0..3 play the role of Algorithm 2's "present" set: their I_k
// rises every round, pushing candidate argmins onto the other 60 for good.
constexpr size_t kRaisedObservables = 4;
constexpr int kWarmupRounds = 64;   // drains the raised observables' buckets
constexpr int kTimedRounds = 1024;
constexpr int kRepetitions = 5;     // keep the minimum, standard bench practice
constexpr int kWindow = 10;

EngineSpec SweepSpec(size_t candidates, std::mt19937* rng) {
  EngineSpec spec;
  spec.observables = kSweepObservables;
  spec.rows.resize(candidates);
  spec.instance_counts.assign(candidates, 1'000'000);  // never exhausts
  std::uniform_int_distribution<size_t> row_len(2, 6);
  std::uniform_int_distribution<uint32_t> pick_obs(0, kSweepObservables - 1);
  std::uniform_int_distribution<uint32_t> pick_quiet_obs(kRaisedObservables,
                                                        kSweepObservables - 1);
  std::uniform_int_distribution<int64_t> pick_dist(0, 50);
  for (size_t i = 0; i < candidates; ++i) {
    size_t len = row_len(*rng);
    std::vector<bool> used(kSweepObservables, false);
    // Every candidate reaches at least one never-raised observable, like the
    // real storms, where each site is also a prior of non-noise observables.
    // Without this a C-proportional sliver of rows lives entirely inside the
    // raised set and gets re-dirtied every round, which is the full-rerank
    // cost model, not the incremental one.
    uint32_t quiet = pick_quiet_obs(*rng);
    used[quiet] = true;
    spec.rows[i].emplace_back(quiet, pick_dist(*rng));
    for (size_t j = 1; j < len; ++j) {
      uint32_t k = pick_obs(*rng);
      if (used[k]) {
        continue;
      }
      used[k] = true;
      spec.rows[i].emplace_back(k, pick_dist(*rng));
    }
    std::sort(spec.rows[i].begin(), spec.rows[i].end());
  }
  return spec;
}

// One Algorithm 2-shaped round against the incremental engine: feedback
// deltas, then the top-kWindow read, then one retirement.
void RunIncrementalRound(PriorityEngine& engine) {
  std::vector<std::pair<size_t, int64_t>> deltas;
  deltas.reserve(kRaisedObservables);
  for (size_t k = 0; k < kRaisedObservables; ++k) {
    deltas.emplace_back(k, 1);
  }
  engine.ApplyDeltas(deltas);
  size_t seen = 0;
  size_t top = 0;
  engine.VisitActive([&](size_t candidate, size_t) {
    if (seen == 0) {
      top = candidate;
    }
    return ++seen < static_cast<size_t>(kWindow);
  });
  if (seen > 0) {
    engine.NoteTriedIndex(top);
  }
}

struct SweepPoint {
  size_t candidates = 0;
  double incremental_round_nanos = 0;  // steady-state, min over repetitions
  double full_rerank_round_nanos = 0;  // Reset-based recompute, same schedule
};

SweepPoint MeasurePoint(size_t candidates) {
  std::mt19937 rng(0x5707 + candidates);
  EngineSpec spec = SweepSpec(candidates, &rng);

  SweepPoint point;
  point.candidates = candidates;
  point.incremental_round_nanos = 1e18;
  point.full_rerank_round_nanos = 1e18;

  for (int rep = 0; rep < kRepetitions; ++rep) {
    PriorityEngine engine(spec);
    engine.Reset(std::vector<int64_t>(kSweepObservables, 0));
    for (int round = 0; round < kWarmupRounds; ++round) {
      RunIncrementalRound(engine);
    }
    Stopwatch timer;
    for (int round = 0; round < kTimedRounds; ++round) {
      RunIncrementalRound(engine);
    }
    double nanos = static_cast<double>(timer.ElapsedNanos()) / kTimedRounds;
    if (nanos < point.incremental_round_nanos) {
      point.incremental_round_nanos = nanos;
    }
  }

  // The reference cost: what full_rerank pays per round to reach the same
  // ranking — a from-scratch recompute over every candidate and observable.
  for (int rep = 0; rep < kRepetitions; ++rep) {
    PriorityEngine engine(spec);
    std::vector<int64_t> priorities(kSweepObservables, 0);
    Stopwatch timer;
    constexpr int kResetRounds = 20;
    for (int round = 0; round < kResetRounds; ++round) {
      for (size_t k = 0; k < kRaisedObservables; ++k) {
        ++priorities[k];
      }
      engine.Reset(priorities);
    }
    double nanos = static_cast<double>(timer.ElapsedNanos()) / kResetRounds;
    if (nanos < point.full_rerank_round_nanos) {
      point.full_rerank_round_nanos = nanos;
    }
  }
  return point;
}

int Main() {
  std::printf("Storm scale: feedback vs blind baselines at >=5x10^4 dynamic instances\n");
  std::printf("Baseline budget: %d rounds; '-' = not reproduced within budget\n\n",
              kBaselineRounds);
  const std::vector<int> widths = {14, 12, 12, 8, 16, 14, 14, 14};
  std::vector<std::string> header = {"case", "instances", "candidates", "obs"};
  for (const char* strategy : kStrategies) {
    header.push_back(strategy);
  }
  PrintRow(header, widths);

  std::vector<StormRun> storms;
  for (const systems::FailureCase& failure_case : systems::StormCases()) {
    StormRun storm = MeasureCase(failure_case);
    std::vector<std::string> row = {storm.case_id, std::to_string(storm.dynamic_instances),
                                    std::to_string(storm.candidates),
                                    std::to_string(storm.observables)};
    for (const CaseRun& run : storm.runs) {
      row.push_back(RoundsCell(run) + " / " + TimeCell(run));
    }
    PrintRow(row, widths);
    storms.push_back(std::move(storm));
  }

  std::printf("\nEngine sweep: steady-state per-round ranking cost vs candidate count\n");
  PrintRow({"candidates", "incremental", "full-rerank", "speedup"}, {14, 14, 14, 10});
  std::vector<SweepPoint> sweep;
  for (size_t candidates : {1'000u, 10'000u, 100'000u}) {
    SweepPoint point = MeasurePoint(candidates);
    char incremental[32], rerank[32], speedup[32];
    std::snprintf(incremental, sizeof(incremental), "%.0f ns", point.incremental_round_nanos);
    std::snprintf(rerank, sizeof(rerank), "%.0f ns", point.full_rerank_round_nanos);
    std::snprintf(speedup, sizeof(speedup), "%.0fx",
                  point.full_rerank_round_nanos / point.incremental_round_nanos);
    PrintRow({std::to_string(point.candidates), incremental, rerank, speedup},
             {14, 14, 14, 10});
    std::fflush(stdout);
    sweep.push_back(point);
  }

  const double flat_ratio =
      sweep.back().incremental_round_nanos / sweep.front().incremental_round_nanos;
  std::printf("\nPer-round cost 10^3 -> 10^5: %.2fx (ceiling %.1fx)\n", flat_ratio,
              kFlatRatio);
  std::fflush(stdout);
  ANDURIL_CHECK(flat_ratio <= kFlatRatio)
      << "incremental per-round cost grew " << flat_ratio << "x from 10^3 to 10^5 "
      << "candidates; the engine is supposed to keep it within " << kFlatRatio << "x";

  FILE* json = std::fopen("BENCH_storm.json", "w");
  ANDURIL_CHECK(json != nullptr);
  std::fprintf(json, "{\n  \"baseline_round_cap\": %d,\n", kBaselineRounds);
  std::fprintf(json, "  \"min_dynamic_instances\": %lld,\n",
               static_cast<long long>(kMinDynamicInstances));
  std::fprintf(json, "  \"cases\": [\n");
  for (size_t i = 0; i < storms.size(); ++i) {
    const StormRun& storm = storms[i];
    std::fprintf(json,
                 "    {\"case\": \"%s\", \"paper_id\": \"%s\", "
                 "\"dynamic_instances\": %lld, \"candidates\": %zu, "
                 "\"observables\": %zu, \"strategies\": {",
                 storm.case_id.c_str(), storm.paper_id.c_str(),
                 static_cast<long long>(storm.dynamic_instances), storm.candidates,
                 storm.observables);
    for (size_t s = 0; s < storm.runs.size(); ++s) {
      const CaseRun& run = storm.runs[s];
      std::fprintf(json, "\"%s\": {\"reproduced\": %s, \"rounds\": %d, \"seconds\": %.4f}%s",
                   kStrategies[s], run.reproduced ? "true" : "false", run.rounds,
                   run.seconds, s + 1 < storm.runs.size() ? ", " : "");
    }
    std::fprintf(json, "}}%s\n", i + 1 < storms.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"engine_sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    std::fprintf(json,
                 "    {\"candidates\": %zu, \"observables\": %zu, "
                 "\"incremental_round_nanos\": %.1f, \"full_rerank_round_nanos\": %.1f}%s\n",
                 sweep[i].candidates, kSweepObservables, sweep[i].incremental_round_nanos,
                 sweep[i].full_rerank_round_nanos, i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"flat_cost_ratio\": %.4f,\n  \"flat_cost_ceiling\": %.1f\n}\n",
               flat_ratio, kFlatRatio);
  std::fclose(json);
  std::printf("\nWrote BENCH_storm.json\n");
  return 0;
}

}  // namespace
}  // namespace anduril::bench

int main() { return anduril::bench::Main(); }
