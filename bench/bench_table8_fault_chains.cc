// Table 8 — cascading fault chains: rounds-to-reproduce of the ordered
// chain search against the single-fault and independent-iterative modes on
// every CascadeCases() scenario, plus the cost of replaying the emitted
// fault signature against re-running the full search. Emits BENCH_chain.json.
//
// Part 1 is the separation claim: the doomed searches (single fault,
// independent multi-fault) are capped at kDoomedRounds and MUST fail — a
// cascade that reproduces without ordered stitching fails the bench loudly —
// while the chain search must reproduce within the same per-phase budget.
//
// Part 2 measures what the signature buys: wall clock of one zero-search
// replay of the minimized signature vs the full chain search that found it,
// and the size of the minimized artifact (steps / tasks / IR methods).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/explorer/iterative.h"
#include "src/explorer/signature.h"
#include "src/util/check.h"
#include "src/util/stopwatch.h"

namespace anduril::bench {
namespace {

// Budget for the searches that are expected to cap out; the chain search
// runs with the same value as its per-phase cap.
constexpr int kDoomedRounds = 150;

struct ChainMeasurement {
  std::string case_id;
  int single_rounds = 0;       // capped single-fault search
  int iterative_rounds = 0;    // capped independent multi-fault search
  int chain_rounds = 0;        // total rounds across chain phases
  int chain_steps = 0;
  int chain_phases = 0;
  double search_seconds = 0;   // chain search wall clock
  double replay_seconds = 0;   // one signature replay, zero search rounds
  int minimize_replays = 0;    // verification runs the minimizer consumed
  size_t signature_steps = 0;
  size_t signature_tasks = 0;
  size_t signature_methods = 0;
};

ChainMeasurement Measure(const systems::FailureCase& failure_case) {
  ChainMeasurement m;
  m.case_id = failure_case.id;
  systems::BuiltCase built = systems::BuildCase(failure_case);
  explorer::ExplorerOptions options;
  options.max_rounds = kDoomedRounds;
  options.crash_stall_candidates = systems::NeedsCrashStallCandidates(failure_case);
  options.network_candidates = systems::NeedsNetworkCandidates(failure_case);

  // Doomed search 1: one fault per run, capped.
  {
    explorer::Explorer ex(built.spec, options);
    auto strategy = explorer::MakeFullFeedbackStrategy();
    explorer::ExploreResult single = ex.Explore(strategy.get());
    ANDURIL_CHECK(!single.reproduced)
        << failure_case.id << " reproduced by a single fault: not a cascade";
    m.single_rounds = single.rounds;
  }
  // Doomed search 2: independent multi-fault (shared analysis cache), capped.
  {
    explorer::IterativeExplorer iterative(built.spec, options);
    explorer::IterativeResult independent = iterative.Explore(/*max_faults=*/3);
    ANDURIL_CHECK(!independent.reproduced)
        << failure_case.id << " reproduced by independent faults: not chain-only";
    m.iterative_rounds = independent.total_rounds;
  }
  // The chain search, same per-phase budget.
  Stopwatch search_timer;
  explorer::ChainExplorer chain_explorer(built.spec, options);
  explorer::ChainResult chain = chain_explorer.Explore(/*max_chain_length=*/3);
  m.search_seconds = search_timer.ElapsedSeconds();
  ANDURIL_CHECK(chain.reproduced) << failure_case.id << " chain search capped out";
  m.chain_rounds = chain.total_rounds;
  m.chain_steps = static_cast<int>(chain.chain.steps.size());
  m.chain_phases = chain.phases;

  // Signature: build, minimize, then time one deterministic replay.
  explorer::FaultSignature signature =
      explorer::BuildSignature(built.spec, failure_case.id, chain);
  signature = explorer::MinimizeSignature(built.spec, signature, &m.minimize_replays);
  m.signature_steps = signature.steps.size();
  m.signature_tasks = signature.retained_tasks.size();
  m.signature_methods = signature.ir_methods.size();
  Stopwatch replay_timer;
  explorer::SignatureReplay replay = explorer::ReplaySignature(built.spec, signature);
  m.replay_seconds = replay_timer.ElapsedSeconds();
  ANDURIL_CHECK(replay.error.empty()) << replay.error;
  ANDURIL_CHECK(replay.fired) << failure_case.id << " minimized signature did not fire";
  return m;
}

int Main() {
  std::printf("Table 8: cascading fault chains — chain search vs capped baselines\n");
  std::printf("(single / iterative capped at %d rounds; both must fail)\n\n", kDoomedRounds);
  const std::vector<int> widths = {14, 10, 11, 9, 7, 9, 12, 12};
  PrintRow({"case", "single", "iterative", "chain", "steps", "search", "sig-replay",
            "sig-size"},
           widths);

  std::vector<ChainMeasurement> measurements;
  for (const systems::FailureCase& failure_case : systems::CascadeCases()) {
    ChainMeasurement m = Measure(failure_case);
    char search[32], replay[32], size[32];
    std::snprintf(search, sizeof(search), "%.2fs", m.search_seconds);
    std::snprintf(replay, sizeof(replay), "%.4fs", m.replay_seconds);
    std::snprintf(size, sizeof(size), "%zu/%zu/%zu", m.signature_steps, m.signature_tasks,
                  m.signature_methods);
    PrintRow({m.case_id, std::to_string(m.single_rounds) + "*",
              std::to_string(m.iterative_rounds) + "*", std::to_string(m.chain_rounds),
              std::to_string(m.chain_steps), search, replay, size},
             widths);
    measurements.push_back(m);
  }
  std::printf("\n* capped search, not reproduced. sig-size = steps/tasks/methods.\n");

  FILE* json = std::fopen("BENCH_chain.json", "w");
  ANDURIL_CHECK(json != nullptr);
  std::fprintf(json, "{\n  \"doomed_round_cap\": %d,\n  \"runs\": [\n", kDoomedRounds);
  for (size_t i = 0; i < measurements.size(); ++i) {
    const ChainMeasurement& m = measurements[i];
    std::fprintf(json,
                 "    {\"case\": \"%s\", \"single_rounds\": %d, "
                 "\"single_reproduced\": false, \"iterative_rounds\": %d, "
                 "\"iterative_reproduced\": false, \"chain_rounds\": %d, "
                 "\"chain_reproduced\": true, \"chain_steps\": %d, "
                 "\"chain_phases\": %d, \"search_seconds\": %.6f, "
                 "\"signature_replay_seconds\": %.6f, \"minimize_replays\": %d, "
                 "\"signature_steps\": %zu, \"signature_tasks\": %zu, "
                 "\"signature_methods\": %zu}%s\n",
                 m.case_id.c_str(), m.single_rounds, m.iterative_rounds, m.chain_rounds,
                 m.chain_steps, m.chain_phases, m.search_seconds, m.replay_seconds,
                 m.minimize_replays, m.signature_steps, m.signature_tasks,
                 m.signature_methods, i + 1 < measurements.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nWrote BENCH_chain.json\n");
  return 0;
}

}  // namespace
}  // namespace anduril::bench

int main() { return anduril::bench::Main(); }
