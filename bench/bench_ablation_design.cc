// Ablation bench for the two design decisions §5.2.3/§5.2.4 argue for in
// prose (beyond the Table 2 variants):
//   - min- vs sum-aggregation of per-observable site priorities, and
//   - log-message-count vs instance-order temporal distance.
//
// Expected shape: "full" (min + message-count) dominates; "full-sum" reacts
// more slowly to feedback; "full-order" over-penalizes busy fault sites
// (Figure 5's f_2 pathology) and loses on occurrence-sensitive cases.

#include <cstdio>

#include "bench/bench_util.h"

namespace anduril::bench {
namespace {

constexpr int kMaxRounds = 1500;

int Main() {
  std::printf("Design ablations: aggregation and temporal-distance choices (rounds)\n\n");
  const char* strategies[] = {"full", "full-sum", "full-order", "multiply"};
  std::vector<int> widths{16, 12, 12, 12, 12};
  PrintRow({"Failure", "full", "full-sum", "full-order", "multiply"}, widths);

  struct Totals {
    int reproduced = 0;
    int64_t rounds = 0;
  };
  std::vector<Totals> totals(std::size(strategies));
  for (const auto& failure_case : systems::AllCases()) {
    std::vector<std::string> row{failure_case.id};
    for (size_t s = 0; s < std::size(strategies); ++s) {
      CaseRun run = RunCase(failure_case, strategies[s], kMaxRounds);
      row.push_back(RoundsCell(run));
      if (run.reproduced) {
        ++totals[s].reproduced;
        totals[s].rounds += run.rounds;
      }
      std::fflush(stdout);
    }
    PrintRow(row, widths);
  }
  std::printf("\nSummary:\n");
  for (size_t s = 0; s < std::size(strategies); ++s) {
    std::printf("  %-12s %2d/22 reproduced, %.1f mean rounds\n", strategies[s],
                totals[s].reproduced,
                totals[s].reproduced
                    ? static_cast<double>(totals[s].rounds) / totals[s].reproduced
                    : 0.0);
  }
  return 0;
}

}  // namespace
}  // namespace anduril::bench

int main() { return anduril::bench::Main(); }
