// Raw interpreter throughput: the flattened direct-threaded dispatch loop
// (shared FlatProgram + pooled RunScratch + reused FaultRuntime, i.e. exactly
// what the explorer's worker threads run) against the legacy statement-tree
// walker (fresh runtime per run, no scratch — the pre-flattening hot path).
// Measured on the fault-free exploration workloads of zk-2247 (exception
// root) and hd-net-1 (message-layer root), which is what every search round
// executes thousands of times. Emits BENCH_interp.json.
//
// Methodology follows bench_trace_overhead: both modes run interleaved at
// single-sample granularity with the order rotated every repetition, each
// sample is a back-to-back batch of identical runs, best-of-N gives the
// per-mode floor, and the headline speedup is the median of per-repetition
// tree/flat ratios so host drift cancels pairwise. The CHECK at the end is
// the CI regression gate: the flattened path must stay at least
// kSpeedupFloor x faster than the tree walker, a deliberately loose floor
// under the >=5x target recorded in the JSON, so the job fails on a >=2x
// regression of the flat path without flaking on machine variance.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/interp/simulator.h"
#include "src/ir/flatten.h"
#include "src/obs/metrics.h"
#include "src/util/check.h"
#include "src/util/stopwatch.h"
#include "src/util/strings.h"

namespace anduril::bench {
namespace {

constexpr int kRepetitions = 200;   // timed batches per mode per case
constexpr int kRunsPerBatch = 50;   // back-to-back runs in one timed sample
constexpr int kWarmupBatches = 3;   // untimed, per mode
constexpr double kSpeedupFloor = 2.5;

struct ModeResult {
  std::string mode;             // "tree" / "flat"
  std::vector<double> samples;  // seconds per batch, aligned by repetition
  double best_seconds = 0;
  int64_t steps_per_run = 0;    // deterministic, identical across runs
};

struct CaseResult {
  std::string id;
  ModeResult tree{"tree", {}, 0, 0};
  ModeResult flat{"flat", {}, 0, 0};
  double speedup = 0;  // median per-repetition tree/flat ratio
};

double Best(const std::vector<double>& values) {
  ANDURIL_CHECK(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

double PairedSpeedup(const ModeResult& tree, const ModeResult& flat) {
  ANDURIL_CHECK(tree.samples.size() == flat.samples.size());
  std::vector<double> ratios;
  for (size_t i = 0; i < tree.samples.size(); ++i) {
    ratios.push_back(tree.samples[i] / flat.samples[i]);
  }
  std::sort(ratios.begin(), ratios.end());
  return ratios[ratios.size() / 2];
}

// One fault-free run in the given mode. The flat mode reproduces the
// explorer worker's per-run state exactly: one FaultRuntime and one
// RunScratch outlive the whole batch, the FlatProgram is shared read-only.
// The tree mode reproduces the pre-flattening worker: a fresh FaultRuntime
// per run and a Simulator that allocates all its own containers.
interp::RunResult RunOnceMode(const systems::BuiltCase& built, uint64_t seed, bool flat_mode,
                              const ir::FlatProgram* flat, interp::FaultRuntime* shared_runtime,
                              interp::RunScratch* scratch, obs::MetricsRegistry* metrics) {
  if (flat_mode) {
    interp::Simulator simulator(built.program.get(), &built.cluster, seed, shared_runtime,
                                flat, scratch);
    if (metrics != nullptr) {
      simulator.set_metrics(metrics);
    }
    return simulator.Run();
  }
  interp::FaultRuntime runtime(built.program.get());
  runtime.set_tracing(true);
  interp::Simulator simulator(built.program.get(), &built.cluster, seed, &runtime);
  simulator.set_tree_walk(true);
  if (metrics != nullptr) {
    simulator.set_metrics(metrics);
  }
  return simulator.Run();
}

CaseResult BenchCase(const std::string& case_id) {
  const systems::FailureCase* failure_case = systems::FindCase(case_id);
  ANDURIL_CHECK(failure_case != nullptr);
  systems::BuiltCase built = systems::BuildCase(*failure_case, /*verify=*/false);
  const uint64_t seed = failure_case->explore_seed;

  ir::FlatProgram flat(*built.program);
  interp::RunScratch scratch;
  interp::FaultRuntime shared_runtime(built.program.get());
  shared_runtime.set_tracing(true);

  CaseResult result;
  result.id = case_id;

  // Calibration: one metered run per mode. Steps are deterministic, so this
  // both yields the ns/op denominator and asserts the two interpreters agree
  // on the step count (the parity invariant the equivalence suite relies on).
  for (ModeResult* mode : {&result.tree, &result.flat}) {
    obs::MetricsRegistry metrics;
    interp::RunResult run =
        RunOnceMode(built, seed, mode->mode == "flat", &flat, &shared_runtime, &scratch,
                    &metrics);
    ANDURIL_CHECK(run.outcome == interp::RunOutcome::kCompleted);
    mode->steps_per_run = metrics.histogram("sim.steps").sum;
    ANDURIL_CHECK(mode->steps_per_run > 0);
  }
  ANDURIL_CHECK(result.tree.steps_per_run == result.flat.steps_per_run)
      << "step-count parity broken on " << case_id;

  // The flat mode hands each consumed result's buffers back to the scratch,
  // exactly as the explorer's round loop does; the tree mode drops results on
  // the floor like the pre-flattening worker did.
  auto run_batch = [&](bool flat_mode) {
    for (int i = 0; i < kRunsPerBatch; ++i) {
      interp::RunResult run =
          RunOnceMode(built, seed, flat_mode, &flat, &shared_runtime, &scratch, nullptr);
      if (flat_mode) {
        scratch.Recycle(std::move(run));
      }
    }
  };
  for (int i = 0; i < kWarmupBatches; ++i) {
    run_batch(false);
    run_batch(true);
  }

  // Interleaved timing, order rotated per repetition (see bench_trace_overhead
  // for why a fixed order biases the second mode).
  ModeResult* order[2] = {&result.tree, &result.flat};
  for (int rep = 0; rep < kRepetitions; ++rep) {
    for (int k = 0; k < 2; ++k) {
      ModeResult* mode = order[(rep + k) % 2];
      Stopwatch timer;
      run_batch(mode->mode == "flat");
      mode->samples.push_back(timer.ElapsedSeconds());
    }
  }
  result.tree.best_seconds = Best(result.tree.samples);
  result.flat.best_seconds = Best(result.flat.samples);
  result.speedup = PairedSpeedup(result.tree, result.flat);
  return result;
}

double RunsPerSecond(const ModeResult& mode) {
  return kRunsPerBatch / mode.best_seconds;
}

double NanosPerStep(const ModeResult& mode) {
  return mode.best_seconds * 1e9 / (static_cast<double>(kRunsPerBatch) *
                                    static_cast<double>(mode.steps_per_run));
}

void PrintCaseRows(const CaseResult& result) {
  for (const ModeResult* mode : {&result.tree, &result.flat}) {
    PrintRow({result.id, mode->mode, std::to_string(mode->steps_per_run),
              StrFormat("%.0f", RunsPerSecond(*mode)),
              StrFormat("%.1f", NanosPerStep(*mode)),
              mode == &result.flat ? StrFormat("%.2fx", result.speedup) : "-"},
             {10, 6, 8, 12, 10, 9});
  }
}

int Main() {
  std::vector<CaseResult> results;
  results.push_back(BenchCase("zk-2247"));
  results.push_back(BenchCase("hd-net-1"));

  std::printf("Interpreter throughput: flattened direct-threaded vs tree walker\n"
              "(fault-free workload, best of %d interleaved %d-run batches)\n\n",
              kRepetitions, kRunsPerBatch);
  PrintRow({"case", "mode", "steps", "runs/sec", "ns/step", "speedup"},
           {10, 6, 8, 12, 10, 9});
  for (const CaseResult& result : results) {
    PrintCaseRows(result);
  }

  FILE* json = std::fopen("BENCH_interp.json", "w");
  ANDURIL_CHECK(json != nullptr);
  std::fprintf(json,
               "{\n  \"repetitions\": %d,\n  \"runs_per_batch\": %d,\n"
               "  \"speedup_floor\": %.2f,\n  \"cases\": [\n",
               kRepetitions, kRunsPerBatch, kSpeedupFloor);
  for (size_t i = 0; i < results.size(); ++i) {
    const CaseResult& result = results[i];
    std::fprintf(json,
                 "    {\"case\": \"%s\", \"speedup\": %.4f, "
                 "\"steps_per_run\": %lld,\n",
                 result.id.c_str(), result.speedup,
                 static_cast<long long>(result.tree.steps_per_run));
    const ModeResult* mode_list[2] = {&result.tree, &result.flat};
    for (int m = 0; m < 2; ++m) {
      const ModeResult& mode = *mode_list[m];
      std::fprintf(json,
                   "     \"%s\": {\"best_seconds\": %.6f, \"runs_per_sec\": %.1f, "
                   "\"ns_per_step\": %.2f}%s\n",
                   mode.mode.c_str(), mode.best_seconds, RunsPerSecond(mode),
                   NanosPerStep(mode), m == 0 ? "," : "");
    }
    std::fprintf(json, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nWrote BENCH_interp.json\n");

  for (const CaseResult& result : results) {
    std::printf("%s: flat is %.2fx the tree walker (floor %.1fx)\n", result.id.c_str(),
                result.speedup, kSpeedupFloor);
    ANDURIL_CHECK(result.speedup >= kSpeedupFloor)
        << "flattened-interpreter regression on " << result.id;
  }
  return 0;
}

}  // namespace
}  // namespace anduril::bench

int main() { return anduril::bench::Main(); }
