#include <gtest/gtest.h>

#include <algorithm>

#include "src/logdiff/compare.h"
#include "src/logdiff/myers.h"
#include "src/logdiff/parser.h"
#include "src/util/rng.h"

namespace anduril::logdiff {
namespace {

// --- sanitizer ------------------------------------------------------------------

TEST(Sanitize, ReplacesDigitRuns) {
  EXPECT_EQ(Sanitize("block 123 of 7"), "block # of #");
  EXPECT_EQ(Sanitize("no digits"), "no digits");
  EXPECT_EQ(Sanitize("42"), "#");
  EXPECT_EQ(Sanitize("a1b22c333"), "a#b#c#");
  EXPECT_EQ(Sanitize(""), "");
}

TEST(Sanitize, MakesRenderedMessageMatchTemplate) {
  // "value {} done" rendered with 57 sanitizes to the same key as the
  // template with "{}" replaced by any digit run.
  EXPECT_EQ(Sanitize("value 57 done"), Sanitize("value 0 done"));
}

// --- parser ---------------------------------------------------------------------

TEST(Parser, ParsesWellFormedLine) {
  ParsedLog log = ParseLogFile("10:00:01,234 [node1/worker] WARN comp.sub - message 42\n");
  ASSERT_EQ(log.lines.size(), 1u);
  const ParsedLine& line = log.lines[0];
  EXPECT_EQ(line.thread, "node1/worker");
  EXPECT_EQ(line.level, "WARN");
  EXPECT_EQ(line.logger, "comp.sub");
  EXPECT_EQ(line.message, "message 42");
  EXPECT_EQ(line.key, "WARN|comp.sub|message #");
  EXPECT_EQ(line.index, 0);
}

TEST(Parser, SkipsMalformedLines) {
  ParsedLog log = ParseLogFile(
      "garbage\n"
      "\n"
      "10:00:00,000 [t] INFO a - ok\n"
      "  at some.stack.trace(Frame.java:10)\n"
      "10:00:00,001 missing bracket INFO a - x\n");
  ASSERT_EQ(log.lines.size(), 1u);
  EXPECT_EQ(log.lines[0].message, "ok");
}

TEST(Parser, IndicesAreSequential) {
  std::string text;
  for (int i = 0; i < 5; ++i) {
    text += "10:00:00,00" + std::to_string(i) + " [t] INFO a - m" + std::to_string(i) + "\n";
  }
  ParsedLog log = ParseLogFile(text);
  ASSERT_EQ(log.lines.size(), 5u);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(log.lines[static_cast<size_t>(i)].index, i);
  }
}

TEST(Parser, CustomFormatWithMoreTimestampTokens) {
  LogFormat format;
  format.timestamp_tokens = 2;  // e.g. "2024-07-04 10:00:00,000"
  ParsedLog log =
      ParseLogFile("2024-07-04 10:00:00,000 [t] ERROR logger - boom\n", format);
  ASSERT_EQ(log.lines.size(), 1u);
  EXPECT_EQ(log.lines[0].level, "ERROR");
}

TEST(Parser, MessageMayContainSeparator) {
  ParsedLog log = ParseLogFile("10:00:00,000 [t] INFO a - x - y - z\n");
  ASSERT_EQ(log.lines.size(), 1u);
  EXPECT_EQ(log.lines[0].message, "x - y - z");
}

// --- Myers diff -------------------------------------------------------------------

// Reference LCS length via DP, for property checking.
size_t LcsLength(const std::vector<int32_t>& a, const std::vector<int32_t>& b) {
  std::vector<std::vector<size_t>> dp(a.size() + 1, std::vector<size_t>(b.size() + 1, 0));
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      dp[i][j] = a[i - 1] == b[j - 1] ? dp[i - 1][j - 1] + 1
                                      : std::max(dp[i - 1][j], dp[i][j - 1]);
    }
  }
  return dp[a.size()][b.size()];
}

void CheckMatches(const std::vector<int32_t>& a, const std::vector<int32_t>& b) {
  auto matches = MyersDiff(a, b);
  // Valid: strictly increasing in both coordinates, elements equal.
  int32_t prev_a = -1;
  int32_t prev_b = -1;
  for (const auto& [i, j] : matches) {
    ASSERT_GT(i, prev_a);
    ASSERT_GT(j, prev_b);
    ASSERT_EQ(a[static_cast<size_t>(i)], b[static_cast<size_t>(j)]);
    prev_a = i;
    prev_b = j;
  }
  // Maximal: the match count equals the LCS length.
  EXPECT_EQ(matches.size(), LcsLength(a, b));
}

TEST(Myers, EmptySequences) {
  CheckMatches({}, {});
  CheckMatches({1, 2, 3}, {});
  CheckMatches({}, {1, 2, 3});
}

TEST(Myers, IdenticalSequences) {
  std::vector<int32_t> seq{5, 4, 3, 2, 1};
  auto matches = MyersDiff(seq, seq);
  ASSERT_EQ(matches.size(), seq.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(matches[i].first, static_cast<int32_t>(i));
    EXPECT_EQ(matches[i].second, static_cast<int32_t>(i));
  }
}

TEST(Myers, ClassicExample) {
  // ABCABBA vs CBABAC (Myers' paper example): LCS length 4.
  CheckMatches({0, 1, 2, 0, 1, 1, 0}, {2, 1, 0, 1, 0, 2});
}

TEST(Myers, CompletelyDifferent) { CheckMatches({1, 1, 1}, {2, 2, 2}); }

TEST(Myers, InsertionsOnly) { CheckMatches({1, 2, 3}, {0, 1, 9, 2, 8, 3, 7}); }

TEST(Myers, DeletionsOnly) { CheckMatches({0, 1, 9, 2, 8, 3, 7}, {1, 2, 3}); }

struct MyersRandomParam {
  int len_a;
  int len_b;
  int alphabet;
  uint64_t seed;
};

class MyersRandomTest : public ::testing::TestWithParam<MyersRandomParam> {};

TEST_P(MyersRandomTest, MatchesAreAnLcs) {
  const MyersRandomParam& param = GetParam();
  Rng rng(param.seed);
  std::vector<int32_t> a(static_cast<size_t>(param.len_a));
  std::vector<int32_t> b(static_cast<size_t>(param.len_b));
  for (auto& value : a) {
    value = static_cast<int32_t>(rng.NextBelow(static_cast<uint64_t>(param.alphabet)));
  }
  for (auto& value : b) {
    value = static_cast<int32_t>(rng.NextBelow(static_cast<uint64_t>(param.alphabet)));
  }
  CheckMatches(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MyersRandomTest,
    ::testing::Values(MyersRandomParam{10, 10, 3, 1}, MyersRandomParam{50, 50, 5, 2},
                      MyersRandomParam{100, 80, 2, 3}, MyersRandomParam{200, 200, 20, 4},
                      MyersRandomParam{37, 91, 4, 5}, MyersRandomParam{128, 1, 2, 6},
                      MyersRandomParam{1, 128, 2, 7}, MyersRandomParam{300, 300, 2, 8},
                      MyersRandomParam{150, 150, 50, 9}, MyersRandomParam{64, 65, 3, 10}));

// --- per-thread comparison -----------------------------------------------------------

std::string Line(const std::string& thread, const std::string& level,
                 const std::string& message) {
  return "10:00:00,000 [" + thread + "] " + level + " test - " + message + "\n";
}

TEST(CompareLogs, FailureOnlyMessagesBecomeObservables) {
  ParsedLog normal = ParseLogFile(Line("t1", "INFO", "start") + Line("t1", "INFO", "done"));
  ParsedLog failure = ParseLogFile(Line("t1", "INFO", "start") +
                                   Line("t1", "ERROR", "disaster struck") +
                                   Line("t1", "INFO", "done"));
  LogComparison comparison = CompareLogs(normal, failure);
  ASSERT_EQ(comparison.target_only_keys.size(), 1u);
  EXPECT_EQ(comparison.target_only_keys[0], "ERROR|test|disaster struck");
}

TEST(CompareLogs, SharedMessagesAreNotObservables) {
  std::string same = Line("t1", "WARN", "transient issue 5") + Line("t1", "INFO", "ok");
  // Different digits must still match after sanitization.
  ParsedLog normal = ParseLogFile(Line("t1", "WARN", "transient issue 9") +
                                  Line("t1", "INFO", "ok"));
  ParsedLog failure = ParseLogFile(same);
  EXPECT_TRUE(CompareLogs(normal, failure).target_only_keys.empty());
}

TEST(CompareLogs, ThreadsOnlyInFailureLogAreAllObservables) {
  ParsedLog normal = ParseLogFile(Line("t1", "INFO", "hello"));
  ParsedLog failure =
      ParseLogFile(Line("t1", "INFO", "hello") + Line("t9", "INFO", "mystery a") +
                   Line("t9", "INFO", "mystery b"));
  LogComparison comparison = CompareLogs(normal, failure);
  EXPECT_EQ(comparison.target_only_keys.size(), 2u);
}

TEST(CompareLogs, PerThreadDiffIgnoresCrossThreadInterleaving) {
  // Same per-thread sequences, globally interleaved differently.
  ParsedLog normal = ParseLogFile(Line("a", "INFO", "a1") + Line("b", "INFO", "b1") +
                                  Line("a", "INFO", "a2") + Line("b", "INFO", "b2"));
  ParsedLog failure = ParseLogFile(Line("b", "INFO", "b1") + Line("b", "INFO", "b2") +
                                   Line("a", "INFO", "a1") + Line("a", "INFO", "a2"));
  EXPECT_TRUE(CompareLogs(normal, failure).target_only_keys.empty());
}

TEST(CompareLogs, MultiplicityDifferenceIsReportedOnce) {
  ParsedLog normal = ParseLogFile(Line("t", "WARN", "retry"));
  ParsedLog failure = ParseLogFile(Line("t", "WARN", "retry") + Line("t", "WARN", "retry") +
                                   Line("t", "WARN", "retry"));
  LogComparison comparison = CompareLogs(normal, failure);
  // Two unmatched instances, one deduplicated key.
  ASSERT_EQ(comparison.target_only_keys.size(), 1u);
  EXPECT_EQ(comparison.target_only_keys[0], "WARN|test|retry");
}

TEST(CompareLogs, DuplicatedDeliveryIsOneMultiplicityObservable) {
  // A duplicate network fault makes a handler log the same template an extra
  // time in the failure run. That is a genuine multiplicity increase —
  // reported once, like any other — but it must not spray per-instance
  // phantom keys or disturb templates whose counts are unchanged
  // ("checkpoint ok" below stays silent).
  ParsedLog normal = ParseLogFile(Line("n2/handler", "INFO", "applied digest 4") +
                                  Line("n2/handler", "INFO", "applied digest 5") +
                                  Line("n2/handler", "INFO", "checkpoint ok"));
  ParsedLog failure = ParseLogFile(Line("n2/handler", "INFO", "applied digest 4") +
                                   Line("n2/handler", "INFO", "applied digest 4") +
                                   Line("n2/handler", "INFO", "applied digest 5") +
                                   Line("n2/handler", "INFO", "checkpoint ok") +
                                   Line("n2/handler", "ERROR", "digest mismatch"));
  LogComparison comparison = CompareLogs(normal, failure);
  ASSERT_EQ(comparison.target_only_keys.size(), 2u);
  EXPECT_EQ(comparison.target_only_keys[0], "INFO|test|applied digest #");
  EXPECT_EQ(comparison.target_only_keys[1], "ERROR|test|digest mismatch");
}

TEST(CompareLogs, ReorderedDeliveriesWithinAThreadAreNotPhantomObservables) {
  // A delay fault reorders two deliveries on the same handler thread. The
  // per-thread LCS leaves one instance unmatched, but the *keys* both exist
  // in the normal log, so neither may become a relevant observable.
  // Distinct non-digit suffixes: sanitization must not be what saves us.
  ParsedLog normal = ParseLogFile(Line("nn/receive", "INFO", "report from alpha") +
                                  Line("nn/receive", "INFO", "report from beta") +
                                  Line("nn/receive", "INFO", "report from gamma"));
  ParsedLog failure = ParseLogFile(Line("nn/receive", "INFO", "report from alpha") +
                                   Line("nn/receive", "INFO", "report from gamma") +
                                   Line("nn/receive", "INFO", "report from beta"));
  EXPECT_TRUE(CompareLogs(normal, failure).target_only_keys.empty());
}

TEST(CompareLogs, ReorderedAndDuplicatedMixReportsOnlyCountIncreases) {
  // Reordering + duplication together (what a delay-then-duplicate window
  // produces): the reordered-but-count-stable templates ("copy block beta",
  // "slow peer #") contribute nothing; the duplicated template and the
  // genuinely new ERROR template are the only observables.
  ParsedLog normal = ParseLogFile(Line("t", "INFO", "copy block alpha") +
                                  Line("t", "INFO", "copy block beta") +
                                  Line("t", "WARN", "slow peer 7"));
  ParsedLog failure = ParseLogFile(Line("t", "INFO", "copy block beta") +
                                   Line("t", "INFO", "copy block alpha") +
                                   Line("t", "INFO", "copy block alpha") +
                                   Line("t", "WARN", "slow peer 9") +
                                   Line("t", "ERROR", "replication stalled, 4 of 5 acked"));
  LogComparison comparison = CompareLogs(normal, failure);
  ASSERT_EQ(comparison.target_only_keys.size(), 2u);
  EXPECT_EQ(comparison.target_only_keys[0], "INFO|test|copy block alpha");
  EXPECT_EQ(comparison.target_only_keys[1], "ERROR|test|replication stalled, # of # acked");
}

TEST(CompareLogs, MatchesAreGloballyMonotone) {
  ParsedLog normal = ParseLogFile(Line("a", "INFO", "a1") + Line("b", "INFO", "b1") +
                                  Line("a", "INFO", "a2") + Line("b", "INFO", "b2"));
  ParsedLog failure = ParseLogFile(Line("a", "INFO", "a1") + Line("b", "INFO", "b1") +
                                   Line("b", "INFO", "b2") + Line("a", "INFO", "a2"));
  LogComparison comparison = CompareLogs(normal, failure);
  int64_t prev_base = -1;
  int64_t prev_target = -1;
  for (const auto& [base, target] : comparison.matches) {
    EXPECT_GT(base, prev_base);
    EXPECT_GT(target, prev_target);
    prev_base = base;
    prev_target = target;
  }
  EXPECT_GE(comparison.matches.size(), 3u);
}

// --- timeline alignment ----------------------------------------------------------------

TEST(TimelineAlignment, IdentityWhenFullyMatched) {
  std::vector<std::pair<int64_t, int64_t>> matches{{0, 0}, {1, 1}, {2, 2}};
  TimelineAlignment alignment(matches, 3, 3);
  for (int64_t pos = 0; pos < 3; ++pos) {
    EXPECT_EQ(alignment.MapPosition(pos), pos);
  }
}

TEST(TimelineAlignment, ScalesWithinIntervals) {
  // Base positions 0 and 10 map to target 0 and 20: interior doubles.
  std::vector<std::pair<int64_t, int64_t>> matches{{0, 0}, {10, 20}};
  TimelineAlignment alignment(matches, 11, 21);
  EXPECT_EQ(alignment.MapPosition(0), 0);
  EXPECT_EQ(alignment.MapPosition(5), 10);
  EXPECT_EQ(alignment.MapPosition(10), 20);
}

TEST(TimelineAlignment, ExtrapolatesPastLastAnchor) {
  std::vector<std::pair<int64_t, int64_t>> matches{{2, 5}};
  TimelineAlignment alignment(matches, 10, 30);
  EXPECT_EQ(alignment.MapPosition(2), 5);
  int64_t late = alignment.MapPosition(9);
  EXPECT_GT(late, 5);
  EXPECT_LE(late, 30);
}

TEST(TimelineAlignment, NoMatchesScalesLinearly) {
  TimelineAlignment alignment({}, 10, 100);
  EXPECT_EQ(alignment.MapPosition(0), 8);  // -1 + (0 - -1) * 101 / 11
  EXPECT_LE(alignment.MapPosition(9), 100);
  EXPECT_GT(alignment.MapPosition(9), alignment.MapPosition(1));
}

TEST(TimelineAlignment, MonotoneMapping) {
  std::vector<std::pair<int64_t, int64_t>> matches{{3, 1}, {6, 14}, {9, 17}};
  TimelineAlignment alignment(matches, 20, 40);
  int64_t prev = -10;
  for (int64_t pos = 0; pos < 20; ++pos) {
    int64_t mapped = alignment.MapPosition(pos);
    EXPECT_GE(mapped, prev);
    prev = mapped;
  }
}

}  // namespace
}  // namespace anduril::logdiff
