// Interpreter edge cases and failure-mode contracts: misuse that must be
// caught loudly (CHECK aborts), runaway protection, and boundary behaviors
// of the scheduler.

#include <gtest/gtest.h>

#include "src/interp/log_entry.h"
#include "src/interp/simulator.h"
#include "src/ir/builder.h"

namespace anduril::interp {
namespace {

using ir::Expr;
using ir::LogLevel;
using ir::MethodBuilder;
using ir::Program;

struct Harness {
  Program program;
  ClusterSpec cluster;

  Harness() {
    program.DefineException("IOException");
    program.DefineException("TimeoutException");
    program.DefineException("ExecutionException");
  }

  RunResult Run(const std::string& entry, uint64_t seed = 1) {
    if (!program.finalized()) {
      program.Finalize();
    }
    if (cluster.nodes.empty()) {
      cluster.AddNode("n1");
    }
    cluster.AddTask("n1", "main", program.FindMethod(entry));
    FaultRuntime runtime(&program);
    Simulator simulator(&program, &cluster, seed, &runtime);
    return simulator.Run();
  }
};

TEST(InterpEdgeDeathTest, FutureGetBeforeSubmitAborts) {
  Harness h;
  {
    MethodBuilder b(&h.program, "m");
    b.FutureGet("neverSubmitted");
  }
  EXPECT_DEATH(h.Run("m"), "FutureGet before Submit");
}

TEST(InterpEdgeDeathTest, SendToUnknownNodeAborts) {
  Harness h;
  {
    MethodBuilder b(&h.program, "handler");
    b.Nop();
  }
  {
    MethodBuilder b(&h.program, "m");
    b.Send("handler", "ghost-node");
  }
  EXPECT_DEATH(h.Run("m"), "unknown node");
}

TEST(InterpEdgeDeathTest, RunawayWhileLoopIsCaught) {
  Harness h;
  {
    MethodBuilder b(&h.program, "m");
    b.Assign("x", Expr::Const(1));
    b.While(b.Eq("x", 1), [&] { b.Nop(); });  // never terminates
  }
  EXPECT_DEATH(h.Run("m"), "runaway loop|step");
}

TEST(InterpEdge, StepLimitStopsPathologicalPrograms) {
  Harness h;
  {
    MethodBuilder b(&h.program, "m");
    // Legal but heavy: nested loops doing ~10^6 statements.
    b.While(b.Lt("i", 1000), [&] {
      b.Assign("i", b.Plus("i", 1));
      b.Assign("j", Expr::Const(0));
      b.While(b.Lt("j", 1000), [&] { b.Assign("j", b.Plus("j", 1)); });
    });
  }
  h.cluster.AddNode("n1");
  h.cluster.step_limit = 50'000;
  RunResult run = h.Run("m");
  EXPECT_TRUE(run.hit_step_limit);
}

TEST(InterpEdge, SimulatorRunIsSingleUse) {
  Harness h;
  {
    MethodBuilder b(&h.program, "m");
    b.Nop();
  }
  h.program.Finalize();
  h.cluster.AddNode("n1");
  h.cluster.AddTask("n1", "main", h.program.FindMethod("m"));
  FaultRuntime runtime(&h.program);
  Simulator simulator(&h.program, &h.cluster, 1, &runtime);
  (void)simulator.Run();
  EXPECT_DEATH(simulator.Run(), "may be called once");
}

TEST(InterpEdge, ZeroTaskClusterProducesEmptyRun) {
  Harness h;
  {
    MethodBuilder b(&h.program, "m");
    b.Nop();
  }
  h.program.Finalize();
  h.cluster.AddNode("n1");
  FaultRuntime runtime(&h.program);
  Simulator simulator(&h.program, &h.cluster, 1, &runtime);
  RunResult run = simulator.Run();
  EXPECT_TRUE(run.log.empty());
  EXPECT_TRUE(run.trace.empty());
  EXPECT_EQ(run.end_time_ms, 0);
}

TEST(InterpEdge, InitialValuesSeedTheEnvironment) {
  Harness h;
  {
    MethodBuilder b(&h.program, "m");
    b.Assign("y", b.Plus("x", 1));
  }
  h.program.Finalize();
  h.cluster.AddNode("n1");
  h.cluster.SetVar("n1", h.program.InternVar("x"), 41);
  RunResult run = h.Run("m");
  EXPECT_EQ(run.NodeVar(h.program, "n1", "y"), 42);
}

TEST(InterpEdge, TwoAwaitersOnSameVariableBothWake) {
  Harness h;
  {
    MethodBuilder b(&h.program, "waiter");
    b.Await(b.Eq("go", 1));
    b.Assign("woken", b.Plus("woken", 1));
  }
  {
    MethodBuilder b(&h.program, "kicker");
    b.Sleep(20);
    b.Assign("go", Expr::Const(1));
    b.Signal("go");
  }
  h.program.Finalize();
  h.cluster.AddNode("n1");
  h.cluster.AddTask("n1", "w1", h.program.FindMethod("waiter"));
  h.cluster.AddTask("n1", "w2", h.program.FindMethod("waiter"));
  h.cluster.AddTask("n1", "k", h.program.FindMethod("kicker"));
  FaultRuntime runtime(&h.program);
  Simulator simulator(&h.program, &h.cluster, 1, &runtime);
  RunResult run = simulator.Run();
  EXPECT_EQ(run.NodeVar(h.program, "n1", "woken"), 2);
}

TEST(InterpEdge, SignalOnDifferentNodeDoesNotWake) {
  Harness h;
  {
    MethodBuilder b(&h.program, "waiter");
    b.Await(b.Eq("go", 1));
    b.Assign("woken", Expr::Const(1));
  }
  {
    MethodBuilder b(&h.program, "kicker");
    b.Sleep(10);
    b.Assign("go", Expr::Const(1));
    b.Signal("go");
  }
  h.program.Finalize();
  h.cluster.AddNode("n1");
  h.cluster.AddNode("n2");
  h.cluster.AddTask("n1", "w", h.program.FindMethod("waiter"));
  h.cluster.AddTask("n2", "k", h.program.FindMethod("kicker"));  // other node!
  FaultRuntime runtime(&h.program);
  Simulator simulator(&h.program, &h.cluster, 1, &runtime);
  RunResult run = simulator.Run();
  EXPECT_EQ(run.NodeVar(h.program, "n1", "woken"), 0);
  EXPECT_TRUE(run.IsThreadStuck("n1/w"));
}

TEST(InterpEdge, MultipleFutureWaitersAllComplete) {
  Harness h;
  {
    MethodBuilder b(&h.program, "task");
    b.Sleep(30);
    b.Assign("taskDone", Expr::Const(1));
  }
  {
    MethodBuilder b(&h.program, "m");
    b.Submit("task", "fut", "executor");
    b.FutureGet("fut");
    b.FutureGet("fut");  // second get on a completed future is immediate
    b.Assign("after", Expr::Const(1));
  }
  RunResult run = h.Run("m");
  EXPECT_EQ(run.NodeVar(h.program, "n1", "after"), 1);
}

TEST(InterpEdge, TransientAndInjectionAtSameOccurrencePrefersInjection) {
  Harness h;
  {
    MethodBuilder b(&h.program, "m");
    b.While(b.Lt("i", 6), [&] {
      b.Assign("i", b.Plus("i", 1));
      b.TryCatch([&] { b.External("op", {"IOException"}, /*transient_every_n=*/3); },
                 {{"IOException", [&] { b.Assign("failures", b.Plus("failures", 1)); }}});
    });
  }
  h.program.Finalize();
  ir::FaultSiteId site = ir::kInvalidId;
  for (const ir::FaultSite& s : h.program.fault_sites()) {
    site = s.id;
  }
  h.cluster.AddNode("n1");
  h.cluster.AddTask("n1", "main", h.program.FindMethod("m"));
  FaultRuntime runtime(&h.program);
  runtime.SetWindow(
      {InjectionCandidate{site, 3, h.program.FindException("IOException")}});
  Simulator simulator(&h.program, &h.cluster, 1, &runtime);
  RunResult run = simulator.Run();
  // occ 3 = injected (counted once), occ 6 = natural transient.
  EXPECT_EQ(run.NodeVar(h.program, "n1", "failures"), 2);
  ASSERT_TRUE(run.injected.has_value());
  EXPECT_EQ(run.injected->occurrence, 3);
}

}  // namespace
}  // namespace anduril::interp
