// Tests for the extension features: pinned faults (multi-fault workloads),
// the iterative multi-fault explorer (§3/§6), combined runs per round (§6),
// and the §5.2.3/§5.2.4 design-alternative strategies.

#include <gtest/gtest.h>

#include "src/explorer/iterative.h"
#include "src/interp/log_entry.h"
#include "src/interp/simulator.h"
#include "src/ir/builder.h"

namespace anduril::explorer {
namespace {

using ir::Expr;
using ir::LogLevel;
using ir::MethodBuilder;
using ir::Program;

// Replicated pair: the symptom needs BOTH a disk fault on the primary copy
// and a network fault on the mirror copy.
class MultiFaultTest : public ::testing::Test {
 protected:
  void Build() {
    program_.DefineException("IOException");
    program_.DefineException("SocketException", "IOException");
    {
      MethodBuilder b(&program_, "pair.store");
      b.TryCatch(
          [&] {
            b.External("pair.disk", {"IOException"});
            b.Assign("stored", b.Plus("stored", 1));
          },
          {{"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "pair", "primary copy lost");
              b.Assign("diskMisses", b.Plus("diskMisses", 1));
            }}});
      b.TryCatch(
          [&] {
            b.External("pair.net", {"SocketException"});
            b.Assign("mirrored", b.Plus("mirrored", 1));
          },
          {{"SocketException",
            [&] {
              b.LogExc(LogLevel::kWarn, "pair", "mirror copy lost");
              b.Assign("netMisses", b.Plus("netMisses", 1));
            }}});
      b.If(b.Gt("diskMisses", 0), [&] {
        b.If(b.Gt("netMisses", 0), [&] {
          b.Log(LogLevel::kError, "pair", "both copies lost, data gone");
        });
      });
    }
    {
      MethodBuilder b(&program_, "pair.client");
      b.While(b.Lt("ops", 8), [&] {
        b.Assign("ops", b.Plus("ops", 1));
        b.Send("pair.store", "server", ir::SendOpts{.payload = b.V("ops")});
        b.Sleep(5);
      });
    }
    program_.Finalize();
    cluster_.AddNode("server");
    cluster_.AddNode("client");
    cluster_.AddTask("client", "main", program_.FindMethod("pair.client"));

    disk_ = Site("pair.disk");
    net_ = Site("pair.net");
    io_ = program_.FindException("IOException");
    socket_ = program_.FindException("SocketException");

    // Production incident: both faults.
    interp::FaultRuntime runtime(&program_);
    runtime.SetPinned({interp::InjectionCandidate{disk_, 3, io_}});
    runtime.SetWindow({interp::InjectionCandidate{net_, 5, socket_}});
    interp::Simulator simulator(&program_, &cluster_, 777, &runtime);
    interp::RunResult incident = simulator.Run();
    ASSERT_TRUE(MakeOracle()(program_, incident));

    spec_.program = &program_;
    spec_.cluster = &cluster_;
    spec_.failure_log_text = interp::FormatLogFile(incident.log);
    spec_.oracle = MakeOracle();
  }

  static Oracle MakeOracle() {
    return [](const ir::Program&, const interp::RunResult& run) {
      return run.HasLogContaining(ir::LogLevel::kError, "both copies lost");
    };
  }

  ir::FaultSiteId Site(const std::string& prefix) const {
    for (const ir::FaultSite& site : program_.fault_sites()) {
      if (site.name.find(prefix + "@") == 0) {
        return site.id;
      }
    }
    return ir::kInvalidId;
  }

  Program program_;
  interp::ClusterSpec cluster_;
  ExperimentSpec spec_;
  ir::FaultSiteId disk_ = ir::kInvalidId;
  ir::FaultSiteId net_ = ir::kInvalidId;
  ir::ExceptionTypeId io_ = ir::kInvalidId;
  ir::ExceptionTypeId socket_ = ir::kInvalidId;
};

// --- pinned faults in the runtime ---------------------------------------------------

TEST_F(MultiFaultTest, PinnedFaultsFireEveryRun) {
  Build();
  interp::FaultRuntime runtime(&program_);
  runtime.SetPinned({interp::InjectionCandidate{disk_, 2, io_}});
  interp::Simulator simulator(&program_, &cluster_, 1, &runtime);
  interp::RunResult run = simulator.Run();
  EXPECT_EQ(run.NodeVar(program_, "server", "diskMisses"), 1);
  // Pinned faults do not count as the window injection.
  EXPECT_FALSE(run.injected.has_value());
}

TEST_F(MultiFaultTest, PinnedPlusWindowBothFire) {
  Build();
  interp::FaultRuntime runtime(&program_);
  runtime.SetPinned({interp::InjectionCandidate{disk_, 2, io_}});
  runtime.SetWindow({interp::InjectionCandidate{net_, 4, socket_}});
  interp::Simulator simulator(&program_, &cluster_, 1, &runtime);
  interp::RunResult run = simulator.Run();
  EXPECT_EQ(run.NodeVar(program_, "server", "diskMisses"), 1);
  EXPECT_EQ(run.NodeVar(program_, "server", "netMisses"), 1);
  ASSERT_TRUE(run.injected.has_value());
  EXPECT_EQ(run.injected->site, net_);
}

// --- iterative search ------------------------------------------------------------------

TEST_F(MultiFaultTest, SingleFaultSearchCannotReproduce) {
  Build();
  ExplorerOptions options;
  options.max_rounds = 100;
  Explorer explorer(spec_, options);
  auto strategy = MakeFullFeedbackStrategy();
  EXPECT_FALSE(explorer.Explore(strategy.get()).reproduced);
}

TEST_F(MultiFaultTest, IterativeSearchReproducesWithTwoFaults) {
  Build();
  ExplorerOptions options;
  options.max_rounds = 100;
  IterativeExplorer iterative(spec_, options);
  IterativeResult result = iterative.Explore(/*max_faults=*/2);
  ASSERT_TRUE(result.reproduced);
  EXPECT_EQ(result.phases, 2);
  ASSERT_EQ(result.faults.size(), 2u);
  // One fault per site, in either order.
  EXPECT_NE(result.faults[0].site, result.faults[1].site);
  EXPECT_TRUE(IterativeExplorer::Replay(spec_, result));
}

TEST_F(MultiFaultTest, IterativeWithOneFaultBudgetFails) {
  Build();
  ExplorerOptions options;
  options.max_rounds = 60;
  IterativeExplorer iterative(spec_, options);
  IterativeResult result = iterative.Explore(/*max_faults=*/1);
  EXPECT_FALSE(result.reproduced);
  EXPECT_EQ(result.phases, 1);
}

TEST_F(MultiFaultTest, ReplayRejectsEmptyResult) {
  Build();
  IterativeResult empty;
  EXPECT_FALSE(IterativeExplorer::Replay(spec_, empty));
}

// --- combined runs per round ------------------------------------------------------------

TEST_F(MultiFaultTest, RunsPerRoundStillReproducesSingleFaultCases) {
  Build();
  // Make a single-fault variant: the oracle only needs the disk-side WARN
  // and an ERROR we synthesize via the pinned incident... simpler: require
  // only the mirror-loss message, reproducible with one injection.
  ExperimentSpec single = spec_;
  single.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kWarn, "mirror copy lost");
  };
  // Regenerate the failure log with just the net fault.
  interp::FaultRuntime runtime(&program_);
  runtime.SetWindow({interp::InjectionCandidate{net_, 3, socket_}});
  interp::Simulator simulator(&program_, &cluster_, 99, &runtime);
  interp::RunResult incident = simulator.Run();
  single.failure_log_text = interp::FormatLogFile(incident.log);

  ExplorerOptions options;
  options.max_rounds = 100;
  options.runs_per_round = 3;
  Explorer explorer(single, options);
  auto strategy = MakeFullFeedbackStrategy();
  ExploreResult result = explorer.Explore(strategy.get());
  ASSERT_TRUE(result.reproduced);
  EXPECT_TRUE(Explorer::Replay(single, *result.script));
}

// --- design-alternative strategies --------------------------------------------------------

TEST_F(MultiFaultTest, DesignAlternativeStrategiesAreWellFormed) {
  Build();
  for (const char* name : {"full-sum", "full-order"}) {
    auto strategy = MakeStrategy(name);
    EXPECT_EQ(strategy->name(), name);
    EXPECT_TRUE(strategy->WantsLogFeedback());
  }
}

TEST_F(MultiFaultTest, DesignAlternativesReproduceSimpleCase) {
  Build();
  ExperimentSpec single = spec_;
  single.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kWarn, "primary copy lost");
  };
  interp::FaultRuntime runtime(&program_);
  runtime.SetWindow({interp::InjectionCandidate{disk_, 2, io_}});
  interp::Simulator simulator(&program_, &cluster_, 99, &runtime);
  single.failure_log_text = interp::FormatLogFile(simulator.Run().log);

  for (const char* name : {"full-sum", "full-order"}) {
    ExplorerOptions options;
    options.max_rounds = 150;
    Explorer explorer(single, options);
    auto strategy = MakeStrategy(name);
    EXPECT_TRUE(explorer.Explore(strategy.get()).reproduced) << name;
  }
}

}  // namespace
}  // namespace anduril::explorer
