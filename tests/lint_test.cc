// Unit tests for the static-analysis stack introduced with anduril_lint:
// per-method CFG construction, the generic dataflow engine, and each lint
// pass (positive and negative cases).

#include <gtest/gtest.h>

#include "src/analysis/cfg.h"
#include "src/analysis/dataflow.h"
#include "src/analysis/exception_flow.h"
#include "src/analysis/lint.h"
#include "src/ir/builder.h"

namespace anduril::analysis {
namespace {

using ir::Expr;
using ir::LogLevel;
using ir::MethodBuilder;
using ir::Program;

class LintTest : public ::testing::Test {
 protected:
  LintTest() {
    program_.DefineException("IOException");
    program_.DefineException("FileNotFoundException", "IOException");
    program_.DefineException("TimeoutException");
    program_.DefineException("ExecutionException");
  }

  ir::StmtId FindStmt(const std::string& method_name, ir::StmtKind kind,
                      int skip = 0) const {
    const ir::Method& method = program_.method(program_.FindMethod(method_name));
    for (ir::StmtId s = 0; s < static_cast<ir::StmtId>(method.stmts.size()); ++s) {
      if (method.stmt(s).kind == kind && skip-- == 0) {
        return s;
      }
    }
    return ir::kInvalidId;
  }

  // Diagnostics of one pass, across all methods.
  std::vector<LintDiagnostic> Of(const LintReport& report, const std::string& pass) const {
    std::vector<LintDiagnostic> out;
    for (const LintDiagnostic& diagnostic : report.diagnostics) {
      if (diagnostic.pass == pass) {
        out.push_back(diagnostic);
      }
    }
    return out;
  }

  Program program_;
};

// --- CFG -------------------------------------------------------------------------

TEST_F(LintTest, CfgStraightLineAllReachable) {
  MethodBuilder b(&program_, "m");
  b.Nop();
  b.Assign("x", Expr::Const(1));
  b.Log(LogLevel::kInfo, "t", "done");
  b.Build();
  program_.Finalize();
  MethodCfg cfg(program_, program_.FindMethod("m"));
  const ir::Method& method = program_.method(program_.FindMethod("m"));
  for (ir::StmtId s = 0; s < static_cast<ir::StmtId>(method.stmts.size()); ++s) {
    EXPECT_TRUE(cfg.StmtReachable(s)) << "stmt " << s;
  }
  // The last statement flows to the synthetic exit.
  ir::StmtId log_stmt = FindStmt("m", ir::StmtKind::kLog);
  const std::vector<CfgNodeId>& succs = cfg.succs(static_cast<CfgNodeId>(log_stmt));
  ASSERT_EQ(succs.size(), 1u);
  EXPECT_EQ(succs[0], cfg.exit());
}

TEST_F(LintTest, CfgCodeAfterReturnUnreachable) {
  MethodBuilder b(&program_, "m");
  b.Return();
  b.Nop();
  b.Build();
  program_.Finalize();
  MethodCfg cfg(program_, program_.FindMethod("m"));
  EXPECT_TRUE(cfg.StmtReachable(FindStmt("m", ir::StmtKind::kReturn)));
  EXPECT_FALSE(cfg.StmtReachable(FindStmt("m", ir::StmtKind::kNop)));
}

TEST_F(LintTest, CfgWhileTrueWithoutBreakSwallowsTail) {
  MethodBuilder b(&program_, "m");
  b.While(ir::Cond{}, [&] { b.Nop(); });  // while (true) with no exit
  b.Log(LogLevel::kInfo, "t", "after");
  b.Build();
  program_.Finalize();
  MethodCfg cfg(program_, program_.FindMethod("m"));
  EXPECT_FALSE(cfg.StmtReachable(FindStmt("m", ir::StmtKind::kLog)));
}

TEST_F(LintTest, CfgBreakEscapesWhileTrue) {
  MethodBuilder b(&program_, "m");
  b.While(ir::Cond{}, [&] { b.Break(); });
  b.Log(LogLevel::kInfo, "t", "after");
  b.Build();
  program_.Finalize();
  MethodCfg cfg(program_, program_.FindMethod("m"));
  EXPECT_TRUE(cfg.StmtReachable(FindStmt("m", ir::StmtKind::kLog)));
}

TEST_F(LintTest, CfgThrowEdgesReachMatchingCatch) {
  MethodBuilder b(&program_, "m");
  b.TryCatch(
      [&] {
        b.Throw("FileNotFoundException");
        b.Nop();  // dead: the throw never falls through
      },
      {{"IOException", [&] { b.Log(LogLevel::kWarn, "t", "caught"); }}});
  b.Log(LogLevel::kInfo, "t", "after");
  b.Build();
  program_.Finalize();
  ir::MethodId m = program_.FindMethod("m");
  ExceptionFlow flow(program_);
  MethodCfg cfg(program_, m, &flow);
  EXPECT_FALSE(cfg.StmtReachable(FindStmt("m", ir::StmtKind::kNop)));
  // The handler and the code after the TryCatch are reachable via the throw
  // edge into the matching (base-type) clause.
  EXPECT_TRUE(cfg.StmtReachable(FindStmt("m", ir::StmtKind::kLog, 0)));
  EXPECT_TRUE(cfg.StmtReachable(FindStmt("m", ir::StmtKind::kLog, 1)));
}

TEST_F(LintTest, CfgUncaughtTypeFlowsToExit) {
  MethodBuilder b(&program_, "m");
  b.TryCatch([&] { b.External("site", {"TimeoutException"}); },
             {{"IOException", [&] { b.Nop(); }}});
  b.Build();
  program_.Finalize();
  ExceptionFlow flow(program_);
  MethodCfg cfg(program_, program_.FindMethod("m"), &flow);
  // The external call has a throw edge straight to exit (TimeoutException
  // escapes past catch(IOException)), so the handler stays unreachable.
  EXPECT_FALSE(cfg.StmtReachable(FindStmt("m", ir::StmtKind::kNop)));
  ir::StmtId call = FindStmt("m", ir::StmtKind::kExternalCall);
  bool exit_edge = false;
  for (CfgNodeId succ : cfg.succs(static_cast<CfgNodeId>(call))) {
    exit_edge |= succ == cfg.exit();
  }
  EXPECT_TRUE(exit_edge);
}

// --- dataflow engine -------------------------------------------------------------

// Forward may-analysis: bit v is set once variable v has been assigned on
// SOME path (union meet). With intersect meet it becomes a must-analysis.
class AssignedProblem : public DataflowProblem {
 public:
  AssignedProblem(const ir::Program& program, ir::MethodId method, Meet meet)
      : program_(program), method_(method), meet_(meet) {}
  Direction direction() const override { return Direction::kForward; }
  Meet meet() const override { return meet_; }
  size_t bit_count() const override { return program_.var_count(); }
  void Boundary(BitVector* entry) const override { entry->ClearAll(); }
  void Transfer(const MethodCfg& cfg, CfgNodeId node, const BitVector& in,
                BitVector* out) const override {
    *out = in;
    if (node == cfg.entry() || node == cfg.exit()) {
      return;
    }
    const ir::Stmt& stmt = program_.method(method_).stmt(static_cast<ir::StmtId>(node));
    if (stmt.kind == ir::StmtKind::kAssign) {
      out->Set(static_cast<size_t>(stmt.assign_var));
    }
  }

 private:
  const ir::Program& program_;
  ir::MethodId method_;
  Meet meet_;
};

TEST_F(LintTest, DataflowMayVsMustAssignment) {
  MethodBuilder b(&program_, "m");
  b.Assign("always", Expr::Const(1));
  b.If(b.Eq("always", 1), [&] { b.Assign("sometimes", Expr::Const(2)); });
  b.Nop();
  b.Build();
  program_.Finalize();
  ir::MethodId m = program_.FindMethod("m");
  MethodCfg cfg(program_, m);
  size_t always = static_cast<size_t>(program_.InternVar("always"));
  size_t sometimes = static_cast<size_t>(program_.InternVar("sometimes"));

  DataflowResult may =
      SolveDataflow(cfg, AssignedProblem(program_, m, DataflowProblem::Meet::kUnion));
  const BitVector& may_exit = may.in[static_cast<size_t>(cfg.exit())];
  EXPECT_TRUE(may_exit.Get(always));
  EXPECT_TRUE(may_exit.Get(sometimes));  // assigned on the then-path

  DataflowResult must =
      SolveDataflow(cfg, AssignedProblem(program_, m, DataflowProblem::Meet::kIntersect));
  const BitVector& must_exit = must.in[static_cast<size_t>(cfg.exit())];
  EXPECT_TRUE(must_exit.Get(always));
  EXPECT_FALSE(must_exit.Get(sometimes));  // skipped on the else-path
}

// Backward liveness: a variable read by a condition is live at entry.
class LiveProblem : public DataflowProblem {
 public:
  LiveProblem(const ir::Program& program, ir::MethodId method)
      : program_(program), method_(method) {}
  Direction direction() const override { return Direction::kBackward; }
  Meet meet() const override { return Meet::kUnion; }
  size_t bit_count() const override { return program_.var_count(); }
  void Transfer(const MethodCfg& cfg, CfgNodeId node, const BitVector& in,
                BitVector* out) const override {
    *out = in;
    if (node == cfg.entry() || node == cfg.exit()) {
      return;
    }
    const ir::Stmt& stmt = program_.method(method_).stmt(static_cast<ir::StmtId>(node));
    if (stmt.kind == ir::StmtKind::kAssign) {
      out->Reset(static_cast<size_t>(stmt.assign_var));
    }
    std::vector<ir::VarId> reads;
    if (stmt.kind == ir::StmtKind::kIf || stmt.kind == ir::StmtKind::kWhile) {
      stmt.cond.CollectReads(&reads);
    } else if (stmt.kind == ir::StmtKind::kAssign) {
      stmt.expr.CollectReads(&reads);
    }
    for (ir::VarId var : reads) {
      out->Set(static_cast<size_t>(var));
    }
  }

 private:
  const ir::Program& program_;
  ir::MethodId method_;
};

TEST_F(LintTest, DataflowBackwardLiveness) {
  MethodBuilder b(&program_, "m");
  b.Assign("killed", Expr::Const(1));   // redefined before any read: dead at entry
  b.If(b.Eq("fromEnv", 1), [&] { b.Nop(); });
  b.Build();
  program_.Finalize();
  ir::MethodId m = program_.FindMethod("m");
  MethodCfg cfg(program_, m);
  DataflowResult live = SolveDataflow(cfg, LiveProblem(program_, m));
  // "in" of a backward problem holds the post-node fact; the fact at method
  // entry is the out of the entry node's flow — use the first real stmt.
  const BitVector& at_entry = live.out[static_cast<size_t>(cfg.entry())];
  EXPECT_TRUE(at_entry.Get(static_cast<size_t>(program_.InternVar("fromEnv"))));
  EXPECT_FALSE(at_entry.Get(static_cast<size_t>(program_.InternVar("killed"))));
}

TEST_F(LintTest, BitVectorOps) {
  BitVector a(70);
  BitVector c(70);
  a.Set(0);
  a.Set(69);
  c.Set(69);
  EXPECT_EQ(a.CountSet(), 2u);
  EXPECT_TRUE(c.UnionWith(a));   // gains bit 0
  EXPECT_FALSE(c.UnionWith(a));  // already a superset
  EXPECT_TRUE(c == a);
  BitVector all(70);
  all.SetAll();
  EXPECT_EQ(all.CountSet(), 70u);
  EXPECT_TRUE(all.IntersectWith(a));
  EXPECT_TRUE(all == a);
}

// --- lint passes -----------------------------------------------------------------

TEST_F(LintTest, UnreachableStmtReportedOncePerRegion) {
  MethodBuilder b(&program_, "m");
  b.Return();
  b.Nop();
  b.Log(LogLevel::kInfo, "t", "also dead");
  b.Build();
  program_.Finalize();
  LintReport report = RunLints(program_);
  // Both dead statements share the reachable root block as parent, so both
  // are topmost-unreachable and both are reported.
  EXPECT_EQ(Of(report, "unreachable-stmt").size(), 2u);
  EXPECT_EQ(report.error_count(), 2u);
}

TEST_F(LintTest, UnreachableCascadeSuppressed) {
  MethodBuilder b(&program_, "m");
  b.Return();
  b.If(b.Eq("x", 1), [&] { b.Nop(); });  // dead If; its block/child suppressed
  b.Build();
  program_.Finalize();
  std::vector<LintDiagnostic> diagnostics = Of(RunLints(program_), "unreachable-stmt");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(program_.method(diagnostics[0].location.method)
                .stmt(diagnostics[0].location.stmt)
                .kind,
            ir::StmtKind::kIf);
}

TEST_F(LintTest, CleanMethodNoUnreachable) {
  MethodBuilder b(&program_, "m");
  b.While(b.Lt("i", 3), [&] { b.Assign("i", b.Plus("i", 1)); });
  b.Log(LogLevel::kInfo, "t", "i is {}", {b.V("i")});
  b.Build();
  program_.Finalize();
  EXPECT_TRUE(Of(RunLints(program_), "unreachable-stmt").empty());
}

TEST_F(LintTest, ShadowedCatchClause) {
  MethodBuilder b(&program_, "m");
  b.TryCatch([&] { b.External("site", {"FileNotFoundException"}); },
             {{"IOException", [&] {}}, {"FileNotFoundException", [&] {}}});
  b.Build();
  program_.Finalize();
  std::vector<LintDiagnostic> diagnostics = Of(RunLints(program_), "shadowed-catch");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].severity, LintSeverity::kError);
  EXPECT_NE(diagnostics[0].message.find("FileNotFoundException"), std::string::npos);
}

TEST_F(LintTest, ImpossibleCatchWarns) {
  MethodBuilder b(&program_, "m");
  b.TryCatch([&] { b.External("site", {"IOException"}); },
             {{"IOException", [&] {}}, {"TimeoutException", [&] {}}});
  b.Build();
  program_.Finalize();
  std::vector<LintDiagnostic> diagnostics = Of(RunLints(program_), "impossible-catch");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].severity, LintSeverity::kWarning);
  EXPECT_NE(diagnostics[0].message.find("TimeoutException"), std::string::npos);
}

TEST_F(LintTest, FutureGetExecutionExceptionCatchIsPossible) {
  MethodBuilder worker(&program_, "worker");
  worker.Nop();
  worker.Build();
  MethodBuilder b(&program_, "m");
  b.Submit("worker", "fut", "executor");
  b.TryCatch([&] { b.FutureGet("fut", /*timeout_ms=*/100, "TimeoutException"); },
             {{"ExecutionException", [&] {}}});
  b.Build();
  program_.Finalize();
  // FutureGet conservatively raises ExecutionException, so the catch is
  // reachable — no impossible-catch, and no unreachable-stmt for its block.
  LintReport report = RunLints(program_);
  EXPECT_TRUE(Of(report, "impossible-catch").empty());
  EXPECT_EQ(report.error_count(), 0u);
}

TEST_F(LintTest, WriteOnlyVariableWarns) {
  MethodBuilder b(&program_, "m");
  b.Assign("neverRead", Expr::Const(42));
  b.Assign("used", Expr::Const(1));
  b.If(b.Eq("used", 1), [&] { b.Nop(); });
  b.Build();
  program_.Finalize();
  std::vector<LintDiagnostic> diagnostics = Of(RunLints(program_), "write-only-var");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_NE(diagnostics[0].message.find("neverRead"), std::string::npos);
}

TEST_F(LintTest, SubmitFutureIsNotAWrite) {
  MethodBuilder worker(&program_, "worker");
  worker.Nop();
  worker.Build();
  MethodBuilder b(&program_, "m");
  b.Submit("worker", "fireAndForget", "executor");
  b.Build();
  program_.Finalize();
  // Fire-and-forget futures are idiomatic, not write-only-var material.
  EXPECT_TRUE(Of(RunLints(program_), "write-only-var").empty());
}

TEST_F(LintTest, DeadFaultSiteNeedsEnvironment) {
  MethodBuilder cold(&program_, "cold");
  cold.External("cold.call", {"IOException"});
  cold.Build();
  MethodBuilder entry(&program_, "entry");
  entry.Nop();
  entry.Build();
  program_.Finalize();

  EXPECT_TRUE(Of(RunLints(program_), "dead-fault-site").empty());  // no env

  LintEnvironment env;
  env.provided = true;
  env.entry_methods = {program_.FindMethod("entry")};
  std::vector<LintDiagnostic> diagnostics = Of(RunLints(program_, env), "dead-fault-site");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].severity, LintSeverity::kInfo);
  EXPECT_NE(diagnostics[0].message.find("cold.call"), std::string::npos);
}

TEST_F(LintTest, LiveMethodFaultSiteNotDead) {
  MethodBuilder callee(&program_, "callee");
  callee.External("warm.call", {"IOException"});
  callee.Build();
  MethodBuilder entry(&program_, "entry");
  entry.Invoke("callee");
  entry.Build();
  program_.Finalize();
  LintEnvironment env;
  env.provided = true;
  env.entry_methods = {program_.FindMethod("entry")};
  EXPECT_TRUE(Of(RunLints(program_, env), "dead-fault-site").empty());
}

TEST_F(LintTest, InertLogFlagged) {
  MethodBuilder b(&program_, "m");
  b.Log(LogLevel::kInfo, "t", "boot banner");  // nothing faulty can precede it
  b.External("site", {"IOException"});
  b.Log(LogLevel::kInfo, "t", "made it past the call");
  b.Build();
  program_.Finalize();
  std::vector<LintDiagnostic> diagnostics = Of(RunLints(program_), "inert-log");
  ASSERT_EQ(diagnostics.size(), 1u);
  const ir::Stmt& flagged = program_.method(diagnostics[0].location.method)
                                .stmt(diagnostics[0].location.stmt);
  EXPECT_EQ(program_.log_template(flagged.log_template).text, "boot banner");
}

TEST_F(LintTest, UnregisteredSendTarget) {
  MethodBuilder handler(&program_, "handler");
  handler.Nop();
  handler.Build();
  MethodBuilder b(&program_, "entry");
  b.Send("handler", "ghost-node");
  b.Send("handler", "node", ir::SendOpts{.index_var = "idx"});  // prefix of node1
  b.Build();
  program_.Finalize();
  LintEnvironment env;
  env.provided = true;
  env.node_names = {"node1", "node2"};
  env.entry_methods = {program_.FindMethod("entry")};
  std::vector<LintDiagnostic> diagnostics =
      Of(RunLints(program_, env), "unregistered-send-target");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_NE(diagnostics[0].message.find("ghost-node"), std::string::npos);
}

TEST_F(LintTest, SendInDeadMethodNotChecked) {
  MethodBuilder handler(&program_, "handler");
  handler.Nop();
  handler.Build();
  MethodBuilder cold(&program_, "cold");
  cold.Send("handler", "ghost-node");
  cold.Build();
  MethodBuilder entry(&program_, "entry");
  entry.Nop();
  entry.Build();
  program_.Finalize();
  LintEnvironment env;
  env.provided = true;
  env.node_names = {"node1"};
  env.entry_methods = {program_.FindMethod("entry")};
  // Dead code never executes, so the runtime CHECK it would trip stays
  // theoretical — no error.
  EXPECT_TRUE(Of(RunLints(program_, env), "unregistered-send-target").empty());
}

TEST_F(LintTest, FutureGetWithoutSubmit) {
  MethodBuilder b(&program_, "m");
  b.FutureGet("orphan", /*timeout_ms=*/100, "TimeoutException");
  b.Build();
  program_.Finalize();
  std::vector<LintDiagnostic> diagnostics =
      Of(RunLints(program_), "future-get-unsubmitted");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].severity, LintSeverity::kError);
  EXPECT_NE(diagnostics[0].message.find("orphan"), std::string::npos);
}

TEST_F(LintTest, ReportFormats) {
  MethodBuilder b(&program_, "m");
  b.Assign("neverRead", Expr::Const(1));
  b.Build();
  program_.Finalize();
  LintReport report = RunLints(program_);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  std::string text = report.ToText(program_);
  EXPECT_NE(text.find("warning [write-only-var] @m#"), std::string::npos);
  EXPECT_NE(text.find("0 errors, 1 warnings"), std::string::npos);
  std::string json = report.ToJson(program_);
  EXPECT_NE(json.find("\"warnings\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"pass\": \"write-only-var\""), std::string::npos);
  EXPECT_NE(json.find("\"method\": \"m\""), std::string::npos);
}

}  // namespace
}  // namespace anduril::analysis
