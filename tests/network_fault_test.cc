// Network fault model, end to end: drop / delay / duplicate / partition
// semantics in the simulator, the NetworkModel's determinism and healing
// rules, the partitioned-stuck outcome classification, and the explorer's
// network-candidate search over the NetworkCases() registry.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/explorer/explorer.h"
#include "src/explorer/strategy.h"
#include "src/interp/log_entry.h"
#include "src/interp/network_model.h"
#include "src/interp/simulator.h"
#include "src/ir/builder.h"
#include "src/systems/common.h"
#include "tests/test_util.h"

namespace anduril::interp {
namespace {

using ir::LogLevel;
using ir::MethodBuilder;
using ir::Program;

class NetworkFaultTest : public TwoNodeClusterTest {
 protected:
  NetworkFaultTest() { program_.DefineException("IOException"); }

  // Producer on n1 pumps `rounds` messages at a handler on n2; the handler
  // counts and acks back.
  void BuildPipeline(int rounds, int sleep_ms = 5) {
    {
      MethodBuilder b(&program_, "handler");
      b.Assign("handled", b.Plus("handled", 1));
      b.Send("ack", "n1");
    }
    {
      MethodBuilder b(&program_, "ack");
      b.Assign("acks", b.Plus("acks", 1));
      b.Signal("acks");
    }
    {
      MethodBuilder b(&program_, "pump");
      b.While(b.Lt("i", rounds), [&] {
        b.Assign("i", b.Plus("i", 1));
        b.Send("handler", "n2");
        b.Sleep(sleep_ms);
      });
    }
  }
};

// --- enumeration ----------------------------------------------------------------

TEST_F(NetworkFaultTest, SendStatementsAreEnumeratedAsSendSites) {
  BuildPipeline(3);
  program_.Finalize();
  ir::FaultSiteId to_n2 = Site("send:handler->n2");
  ir::FaultSiteId to_n1 = Site("send:ack->n1");
  ASSERT_NE(to_n2, ir::kInvalidId);
  ASSERT_NE(to_n1, ir::kInvalidId);
  EXPECT_EQ(program_.fault_site(to_n2).kind, ir::FaultSiteKind::kSend);
  EXPECT_EQ(program_.fault_site(to_n1).kind, ir::FaultSiteKind::kSend);
}

// --- drop -----------------------------------------------------------------------

TEST_F(NetworkFaultTest, DropFaultLosesExactlyOneMessage) {
  BuildPipeline(10);
  program_.Finalize();
  RunResult result = Run(
      "pump", 1,
      {InjectionCandidate{Site("send:handler->n2"), 3, ir::kInvalidId, FaultKind::kDrop}});
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(Var(result, "handled", "n2"), 9);
  EXPECT_EQ(Var(result, "acks", "n1"), 9);
  EXPECT_EQ(result.network.dropped_by_fault, 1);
  ASSERT_TRUE(result.injected.has_value());
  EXPECT_EQ(result.injected->kind, FaultKind::kDrop);
}

// --- delay ----------------------------------------------------------------------

TEST_F(NetworkFaultTest, DelayFaultDefersDeliveryWithoutLosingIt) {
  BuildPipeline(4);
  program_.Finalize();
  cluster_.AddNode("n1");
  cluster_.AddNode("n2");
  cluster_.network_delay_ms = 500;
  RunResult result = Run(
      "pump", 1,
      {InjectionCandidate{Site("send:handler->n2"), 2, ir::kInvalidId, FaultKind::kDelay}});
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  // The delayed message still arrives: nothing is lost, the run just
  // stretches past the configured delay.
  EXPECT_EQ(Var(result, "handled", "n2"), 4);
  EXPECT_EQ(result.network.delayed, 1);
  EXPECT_GE(result.end_time_ms, 500);
  ASSERT_TRUE(result.injected.has_value());
  EXPECT_EQ(result.injected->kind, FaultKind::kDelay);
}

TEST(NetworkModelTest, SeedDerivedDelayIsDeterministicAndBounded) {
  NetworkModel a(42);
  NetworkModel b(42);
  for (int64_t occurrence = 1; occurrence <= 8; ++occurrence) {
    int64_t delay = a.DelayFor(/*site=*/7, occurrence, /*fixed_ms=*/0);
    EXPECT_EQ(delay, b.DelayFor(7, occurrence, 0));
    EXPECT_GE(delay, 20);
    EXPECT_LT(delay, 120);
  }
  // A configured fixed delay bypasses the seed-derived draw.
  EXPECT_EQ(a.DelayFor(7, 1, 250), 250);
}

// --- duplicate ------------------------------------------------------------------

TEST_F(NetworkFaultTest, DuplicateFaultDeliversTwice) {
  BuildPipeline(10);
  program_.Finalize();
  RunResult result =
      Run("pump", 1,
          {InjectionCandidate{Site("send:handler->n2"), 3, ir::kInvalidId,
                              FaultKind::kDuplicate}});
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(Var(result, "handled", "n2"), 11);
  EXPECT_EQ(Var(result, "acks", "n1"), 11);
  EXPECT_EQ(result.network.duplicated, 1);
  ASSERT_TRUE(result.injected.has_value());
  EXPECT_EQ(result.injected->kind, FaultKind::kDuplicate);
}

// --- partition ------------------------------------------------------------------

TEST_F(NetworkFaultTest, UnboundedPartitionDropsAllTrafficBothWays) {
  BuildPipeline(10);
  program_.Finalize();
  RunResult result =
      Run("pump", 1,
          {InjectionCandidate{Site("send:handler->n2"), 3, ir::kInvalidId,
                              FaultKind::kPartition}});
  // Messages 1-2 made it; the partition swallows 3..10 (and would swallow
  // acks coming back, were any still attempted).
  EXPECT_EQ(Var(result, "handled", "n2"), 2);
  EXPECT_EQ(Var(result, "acks", "n1"), 2);
  EXPECT_EQ(result.network.dropped_by_partition, 8);
  EXPECT_EQ(result.network.partitions_severed, 1);
  EXPECT_EQ(result.network.partitions_healed, 0);
  ASSERT_EQ(result.partition_events.size(), 1u);
  EXPECT_TRUE(result.partition_events[0].sever);
  EXPECT_EQ(result.partition_events[0].node_a, "n1");
  EXPECT_EQ(result.partition_events[0].node_b, "n2");
}

TEST_F(NetworkFaultTest, BoundedPartitionHealsAndTrafficResumes) {
  BuildPipeline(10, /*sleep_ms=*/30);
  program_.Finalize();
  cluster_.AddNode("n1");
  cluster_.AddNode("n2");
  cluster_.partition_heal_ms = 40;
  RunResult result =
      Run("pump", 1,
          {InjectionCandidate{Site("send:handler->n2"), 3, ir::kInvalidId,
                              FaultKind::kPartition}});
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  // Severed at the 3rd send (t=60ms), healed 40ms later: sends 3 and 4 are
  // lost, send 5 (t=120ms) and everything after goes through again.
  EXPECT_EQ(Var(result, "handled", "n2"), 8);
  EXPECT_EQ(result.network.dropped_by_partition, 2);
  EXPECT_EQ(result.network.partitions_severed, 1);
  EXPECT_EQ(result.network.partitions_healed, 1);
  ASSERT_EQ(result.partition_events.size(), 2u);
  EXPECT_TRUE(result.partition_events[0].sever);
  EXPECT_FALSE(result.partition_events[1].sever);
  EXPECT_GT(result.partition_events[1].time_ms, result.partition_events[0].time_ms);
}

TEST_F(NetworkFaultTest, UnhealedPartitionWithBlockedThreadClassifiesPartitionedStuck) {
  {
    MethodBuilder b(&program_, "phandler");
    b.Assign("phandled", b.Plus("phandled", 1));
    b.Send("pack", "n1");
  }
  {
    MethodBuilder b(&program_, "pack");
    b.Assign("packs", b.Plus("packs", 1));
    b.Signal("packs");
  }
  {
    MethodBuilder b(&program_, "waiter");
    b.Await(b.Ge("packs", 10));  // no timeout: starved forever if partitioned
    b.Log(LogLevel::kInfo, "t", "all acks in");
  }
  {
    MethodBuilder b(&program_, "main_wait");
    b.Send("waiter", "n1");
    b.While(b.Lt("i", 10), [&] {
      b.Assign("i", b.Plus("i", 1));
      b.Send("phandler", "n2");
      b.Sleep(5);
    });
  }
  program_.Finalize();
  RunResult result =
      Run("main_wait", 1,
          {InjectionCandidate{Site("send:phandler->n2"), 3, ir::kInvalidId,
                              FaultKind::kPartition}});
  EXPECT_EQ(result.outcome, RunOutcome::kPartitionedStuck);
  EXPECT_STREQ(RunOutcomeName(result.outcome), "partitioned-stuck");
  EXPECT_TRUE(result.IsThreadStuck("waiter"));
  EXPECT_GT(result.network.dropped_by_partition, 0);
  // Without the fault the same workload completes: the classification comes
  // from the standing partition, not from the await itself.
  RunResult clean = Run("main_wait", 1);
  EXPECT_EQ(clean.outcome, RunOutcome::kCompleted);
  EXPECT_TRUE(clean.HasLogContaining("all acks in"));
}

// --- determinism ----------------------------------------------------------------

TEST_F(NetworkFaultTest, NetworkFaultRunsAreDeterministic) {
  BuildPipeline(10);
  program_.Finalize();
  for (FaultKind kind :
       {FaultKind::kDrop, FaultKind::kDelay, FaultKind::kDuplicate, FaultKind::kPartition}) {
    InjectionCandidate candidate{Site("send:handler->n2"), 4, ir::kInvalidId, kind};
    RunResult a = Run("pump", 42, {candidate});
    RunResult b = Run("pump", 42, {candidate});
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(FormatLogFile(a.log), FormatLogFile(b.log));
    EXPECT_EQ(a.end_time_ms, b.end_time_ms);
    EXPECT_EQ(a.network, b.network);
  }
}

TEST_F(NetworkFaultTest, UnfiredNetworkCandidateLeavesRunByteIdentical) {
  BuildPipeline(10);
  program_.Finalize();
  RunResult clean = Run("pump", 7);
  // An armed candidate whose occurrence never arrives must not perturb the
  // rng stream: the send-jitter draw happens whether or not a fault fires.
  RunResult armed = Run(
      "pump", 7,
      {InjectionCandidate{Site("send:handler->n2"), 50, ir::kInvalidId, FaultKind::kDrop}});
  EXPECT_FALSE(armed.injected.has_value());
  EXPECT_EQ(FormatLogFile(clean.log), FormatLogFile(armed.log));
  EXPECT_EQ(clean.end_time_ms, armed.end_time_ms);
}

}  // namespace
}  // namespace anduril::interp

// --- explorer over the NetworkCases registry ------------------------------------

namespace anduril::explorer {
namespace {

ExplorerOptions NetworkOptions() {
  ExplorerOptions options;
  options.network_candidates = true;
  return options;
}

TEST(NetworkScenarioTest, RegistryIsSeparateAndCoversAllFourKinds) {
  EXPECT_EQ(systems::AllCases().size(), 22u);
  ASSERT_GE(systems::NetworkCases().size(), 4u);
  bool has_kind[4] = {false, false, false, false};
  for (const systems::FailureCase& failure_case : systems::NetworkCases()) {
    ASSERT_TRUE(interp::IsNetworkFaultKind(failure_case.root_kind)) << failure_case.id;
    switch (failure_case.root_kind) {
      case interp::FaultKind::kDrop: has_kind[0] = true; break;
      case interp::FaultKind::kDelay: has_kind[1] = true; break;
      case interp::FaultKind::kDuplicate: has_kind[2] = true; break;
      case interp::FaultKind::kPartition: has_kind[3] = true; break;
      default: break;
    }
    // Reachable through FindCase like every other case.
    EXPECT_EQ(systems::FindCase(failure_case.id), &failure_case);
  }
  EXPECT_TRUE(has_kind[0]) << "no drop-rooted scenario";
  EXPECT_TRUE(has_kind[1]) << "no delay-rooted scenario";
  EXPECT_TRUE(has_kind[2]) << "no duplicate-rooted scenario";
  EXPECT_TRUE(has_kind[3]) << "no partition-rooted scenario";
}

TEST(NetworkScenarioTest, SendCandidatesEnumeratedOnlyBehindFlag) {
  const systems::FailureCase* failure_case = systems::FindCase("zk-net-1");
  ASSERT_NE(failure_case, nullptr);
  systems::BuiltCase built = systems::BuildCase(*failure_case);

  Explorer without(built.spec, ExplorerOptions{});
  for (const FaultCandidate& candidate : without.context().candidates()) {
    EXPECT_FALSE(interp::IsNetworkFaultKind(candidate.kind));
  }

  Explorer with(built.spec, NetworkOptions());
  int network_candidates = 0;
  bool kind_seen[4] = {false, false, false, false};
  for (const FaultCandidate& candidate : with.context().candidates()) {
    if (!interp::IsNetworkFaultKind(candidate.kind)) {
      continue;
    }
    ++network_candidates;
    EXPECT_EQ(built.spec.program->fault_site(candidate.site).kind,
              ir::FaultSiteKind::kSend);
    switch (candidate.kind) {
      case interp::FaultKind::kDrop: kind_seen[0] = true; break;
      case interp::FaultKind::kDelay: kind_seen[1] = true; break;
      case interp::FaultKind::kDuplicate: kind_seen[2] = true; break;
      case interp::FaultKind::kPartition: kind_seen[3] = true; break;
      default: break;
    }
  }
  EXPECT_GT(network_candidates, 0);
  EXPECT_EQ(network_candidates % 4, 0) << "one candidate of each kind per send site";
  EXPECT_TRUE(kind_seen[0] && kind_seen[1] && kind_seen[2] && kind_seen[3]);
}

TEST(NetworkScenarioTest, ScenariosReproduceWithNetworkCandidatesAndReplay) {
  for (const systems::FailureCase& failure_case : systems::NetworkCases()) {
    SCOPED_TRACE(failure_case.id);
    systems::BuiltCase built = systems::BuildCase(failure_case);
    ExploreResult result = RunSearch(built, NetworkOptions());
    ASSERT_TRUE(result.reproduced);
    ASSERT_TRUE(result.script.has_value());
    EXPECT_TRUE(interp::IsNetworkFaultKind(result.script->kind))
        << "reachable only via network faults by construction";
    // The emitted script replays deterministically.
    EXPECT_TRUE(Explorer::Replay(built.spec, *result.script));
    EXPECT_TRUE(Explorer::Replay(built.spec, *result.script));
  }
}

TEST(NetworkScenarioTest, ExceptionOnlySearchCannotReachNetworkScenarios) {
  // Without network_candidates the candidate space contains no message-layer
  // instances, so the oracles can never be satisfied.
  for (const systems::FailureCase& failure_case : systems::NetworkCases()) {
    SCOPED_TRACE(failure_case.id);
    systems::BuiltCase built = systems::BuildCase(failure_case);
    ExplorerOptions options;
    options.max_rounds = 150;  // bounded: this search is expected to fail
    ExploreResult result = RunSearch(built, options);
    EXPECT_FALSE(result.reproduced);
  }
}

TEST(NetworkScenarioTest, PartitionSearchAccountsPartitionedStuckRounds) {
  const systems::FailureCase* failure_case = systems::FindCase("zk-net-1");
  ASSERT_NE(failure_case, nullptr);
  systems::BuiltCase built = systems::BuildCase(*failure_case);
  ExploreResult result = RunSearch(built, NetworkOptions());
  ASSERT_TRUE(result.reproduced);
  // The search necessarily passes through partition candidates that leave
  // the monitor stuck; the taxonomy must count them, and the per-round
  // records must carry the sever/heal transitions for diagnosis.
  EXPECT_GT(result.experiment.partitioned_stuck_rounds, 0);
  EXPECT_EQ(result.experiment.total_rounds(), result.rounds);
  bool saw_partition_event = false;
  bool saw_network_candidates = false;
  for (const RoundRecord& record : result.records) {
    saw_partition_event |= !record.partition_events.empty();
    saw_network_candidates |= record.network_candidates_tried > 0;
  }
  EXPECT_TRUE(saw_partition_event);
  EXPECT_TRUE(saw_network_candidates);
}

}  // namespace
}  // namespace anduril::explorer
