// Hardened exploration runtime, interp layer: crash and stall fault kinds,
// the run-outcome taxonomy, the wall-clock watchdog, and the FaultRuntime
// reset / pinned-vs-window pre-emption contracts.

#include <gtest/gtest.h>

#include "src/explorer/iterative.h"
#include "src/interp/log_entry.h"
#include "src/interp/simulator.h"
#include "src/ir/builder.h"
#include "tests/test_util.h"

namespace anduril::interp {
namespace {

using ir::Expr;
using ir::LogLevel;
using ir::MethodBuilder;
using ir::Program;

class HardenedRuntimeTest : public TwoNodeClusterTest {
 protected:
  HardenedRuntimeTest() {
    program_.DefineException("IOException");
    program_.DefineException("TimeoutException");
  }

  // Producer on n1 pumps `rounds` messages at a handler on n2; the handler
  // executes an external call, logs, counts, and acks back to n1.
  void BuildPipeline(int rounds) {
    {
      MethodBuilder b(&program_, "handler");
      b.External("h_op", {"IOException"});
      b.Assign("handled", b.Plus("handled", 1));
      b.Log(LogLevel::kInfo, "t", "handled {}", {b.V("handled")});
      b.Send("ack", "n1");
    }
    {
      MethodBuilder b(&program_, "ack");
      b.Assign("acks", b.Plus("acks", 1));
    }
    {
      MethodBuilder b(&program_, "pump");
      b.While(b.Lt("i", rounds), [&] {
        b.Assign("i", b.Plus("i", 1));
        b.Send("handler", "n2");
        b.Sleep(5);
      });
    }
  }
};

// --- crash faults ---------------------------------------------------------------

TEST_F(HardenedRuntimeTest, CrashFaultHaltsNodeAndClassifiesRun) {
  BuildPipeline(10);
  program_.Finalize();
  RunResult result =
      Run("pump", 1, {InjectionCandidate{Site("h_op"), 4, ir::kInvalidId, FaultKind::kCrash}});
  EXPECT_EQ(result.outcome, RunOutcome::kCrashed);
  EXPECT_TRUE(result.DidNodeCrash("n2"));
  EXPECT_FALSE(result.DidNodeCrash("n1"));
  ASSERT_EQ(result.crashed_nodes.size(), 1u);
  EXPECT_EQ(result.crashed_nodes[0], "n2");
  // Three handler executions completed before occurrence 4 crashed the node.
  EXPECT_EQ(Var(result, "handled", "n2"), 3);
  EXPECT_EQ(Var(result, "acks", "n1"), 3);
  ASSERT_TRUE(result.injected.has_value());
  EXPECT_EQ(result.injected->kind, FaultKind::kCrash);
}

TEST_F(HardenedRuntimeTest, CrashTruncatesPerThreadLog) {
  BuildPipeline(10);
  program_.Finalize();
  RunResult result =
      Run("pump", 1, {InjectionCandidate{Site("h_op"), 4, ir::kInvalidId, FaultKind::kCrash}});
  // The crash point leaves no log line of its own, and nothing after it.
  EXPECT_TRUE(result.HasLogContaining("handled 3"));
  EXPECT_FALSE(result.HasLogContaining("handled 4"));
  EXPECT_FALSE(result.HasLogContaining("handled 5"));
}

TEST_F(HardenedRuntimeTest, CrashedNodeThreadsReportCrashedState) {
  BuildPipeline(6);
  program_.Finalize();
  RunResult result =
      Run("pump", 1, {InjectionCandidate{Site("h_op"), 2, ir::kInvalidId, FaultKind::kCrash}});
  bool found = false;
  for (const ThreadSummary& thread : result.threads) {
    if (thread.node == "n2" && thread.name == "handler") {
      EXPECT_EQ(thread.state, ThreadEndState::kCrashed);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // A crashed thread is not "stuck": oracles distinguish crash from stall.
  EXPECT_FALSE(result.IsThreadStuck("handler"));
}

TEST_F(HardenedRuntimeTest, MessagesToCrashedNodeNeverSpawnLiveThreads) {
  // The pump keeps sending to a *new* handler thread name after the crash;
  // threads born on a crashed node must be born dead.
  {
    MethodBuilder b(&program_, "late_handler");
    b.Assign("lateRuns", b.Plus("lateRuns", 1));
  }
  BuildPipeline(4);
  {
    MethodBuilder b(&program_, "pump_late");
    b.Invoke("pump");
    b.Sleep(100);
    b.Send("late_handler", "n2", ir::SendOpts{.handler_thread = "FreshThread"});
    b.Sleep(50);
  }
  program_.Finalize();
  RunResult result = Run(
      "pump_late", 1, {InjectionCandidate{Site("h_op"), 1, ir::kInvalidId, FaultKind::kCrash}});
  EXPECT_EQ(result.outcome, RunOutcome::kCrashed);
  EXPECT_EQ(Var(result, "lateRuns", "n2"), 0);
}

// --- stall faults ---------------------------------------------------------------

TEST_F(HardenedRuntimeTest, StallFaultWedgesCallAndClassifiesRunHung) {
  BuildPipeline(10);
  program_.Finalize();
  RunResult result =
      Run("pump", 1, {InjectionCandidate{Site("h_op"), 4, ir::kInvalidId, FaultKind::kStall}});
  EXPECT_EQ(result.outcome, RunOutcome::kHung);
  // The handler wedged at occurrence 4: three completions, then silence —
  // but the run itself still terminates (the watchdog's job is bounded).
  EXPECT_EQ(Var(result, "handled", "n2"), 3);
  EXPECT_TRUE(result.IsThreadStuck("handler"));
  EXPECT_TRUE(result.IsThreadStuckIn(program_, "n2/handler", "handler"));
  ASSERT_TRUE(result.injected.has_value());
  EXPECT_EQ(result.injected->kind, FaultKind::kStall);
}

TEST_F(HardenedRuntimeTest, OrdinaryBlockedThreadsDoNotMakeRunHung) {
  // A thread parked forever on a never-signaled condition is kBlocked, but
  // without a stall fault the run is still kCompleted: service threads block
  // routinely at run end.
  {
    MethodBuilder b(&program_, "waiter");
    b.Await(b.Eq("never", 1));
  }
  {
    MethodBuilder b(&program_, "m");
    b.Send("waiter", "n2");
    b.Sleep(20);
  }
  program_.Finalize();
  RunResult result = Run("m");
  EXPECT_TRUE(result.IsThreadStuck("waiter"));
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
}

// --- wall-clock watchdog --------------------------------------------------------

TEST_F(HardenedRuntimeTest, WallBudgetWatchdogStopsLongRun) {
  {
    MethodBuilder b(&program_, "spin");
    b.While(b.Lt("i", 900'000), [&] {
      b.Assign("i", b.Plus("i", 1));
      b.Assign("j", b.Plus("j", 1));
    });
  }
  program_.Finalize();
  cluster_.AddNode("n1");
  cluster_.AddNode("n2");
  cluster_.wall_budget_ms = 1;
  RunResult result = Run("spin");
  EXPECT_TRUE(result.hit_wall_budget);
  EXPECT_EQ(result.outcome, RunOutcome::kBudgetExceeded);
  // The spin never finished.
  EXPECT_LT(Var(result, "i"), 900'000);
}

TEST_F(HardenedRuntimeTest, UnlimitedWallBudgetNeverTrips) {
  {
    MethodBuilder b(&program_, "spin");
    b.While(b.Lt("i", 50'000), [&] { b.Assign("i", b.Plus("i", 1)); });
  }
  program_.Finalize();
  cluster_.AddNode("n1");
  cluster_.AddNode("n2");
  cluster_.wall_budget_ms = 0;  // unlimited
  RunResult result = Run("spin");
  EXPECT_FALSE(result.hit_wall_budget);
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(Var(result, "i"), 50'000);
}

TEST_F(HardenedRuntimeTest, StepLimitClassifiesAsBudgetExceeded) {
  {
    MethodBuilder b(&program_, "spin");
    b.While(b.Lt("i", 900'000), [&] { b.Assign("i", b.Plus("i", 1)); });
  }
  program_.Finalize();
  cluster_.AddNode("n1");
  cluster_.AddNode("n2");
  cluster_.step_limit = 10'000;
  RunResult result = Run("spin");
  EXPECT_TRUE(result.hit_step_limit);
  EXPECT_FALSE(result.hit_wall_budget);
  EXPECT_EQ(result.outcome, RunOutcome::kBudgetExceeded);
}

// --- FaultRuntime reset and pre-emption contracts -------------------------------

TEST_F(HardenedRuntimeTest, BeginRunFullyResetsPerRunState) {
  {
    MethodBuilder b(&program_, "m");
    b.While(b.Lt("i", 5), [&] {
      b.Assign("i", b.Plus("i", 1));
      b.TryCatch([&] { b.External("op", {"IOException"}); },
                 {{"IOException", [&] { b.Assign("failures", b.Plus("failures", 1)); }}});
    });
  }
  program_.Finalize();
  cluster_.AddNode("n1");
  cluster_.AddNode("n2");
  cluster_.AddTask("n1", "main", program_.FindMethod("m"), 0);

  FaultRuntime runtime(&program_);
  ir::ExceptionTypeId io = program_.FindException("IOException");
  runtime.SetWindow({InjectionCandidate{Site("op"), 3, io}});
  runtime.SetPinned({InjectionCandidate{Site("op"), 3, io}});

  Simulator first(&program_, &cluster_, 1, &runtime);
  first.Run();
  EXPECT_GT(runtime.injection_requests(), 0);
  EXPECT_FALSE(runtime.occurrence_counts().empty());

  runtime.BeginRun();
  EXPECT_EQ(runtime.injection_requests(), 0);
  EXPECT_EQ(runtime.decision_nanos(), 0);
  EXPECT_TRUE(runtime.occurrence_counts().empty());
  EXPECT_TRUE(runtime.trace().empty());
  EXPECT_FALSE(runtime.injected().has_value());
  EXPECT_TRUE(runtime.preempted_window().empty());

  // A second run over the reset runtime behaves exactly like the first:
  // occurrence counters restart at 1, so the occurrence-3 faults fire again.
  Simulator second(&program_, &cluster_, 1, &runtime);
  RunResult result = second.Run();
  EXPECT_EQ(result.NodeVar(program_, "n1", "failures"), 1);
}

TEST_F(HardenedRuntimeTest, PinnedAndWindowAtSameInstanceInjectOnce) {
  {
    MethodBuilder b(&program_, "m");
    b.While(b.Lt("i", 6), [&] {
      b.Assign("i", b.Plus("i", 1));
      b.TryCatch([&] { b.External("op", {"IOException"}); },
                 {{"IOException", [&] { b.Assign("failures", b.Plus("failures", 1)); }}});
    });
  }
  program_.Finalize();
  ir::ExceptionTypeId io = program_.FindException("IOException");
  InjectionCandidate instance{Site("op"), 3, io};
  RunResult result = Run("m", 1, /*window=*/{instance}, /*pinned=*/{instance});
  // Exactly one exception fired at the shared (site, occurrence); the pinned
  // fault claimed it, and the window candidate was reported as pre-empted so
  // the search can retire it.
  EXPECT_EQ(Var(result, "failures"), 1);
  EXPECT_FALSE(result.injected.has_value());
  ASSERT_EQ(result.preempted_window.size(), 1u);
  EXPECT_EQ(result.preempted_window[0], instance);
}

TEST_F(HardenedRuntimeTest, PinnedCrashPreemptsWindowWithoutDoubleFiring) {
  BuildPipeline(8);
  program_.Finalize();
  InjectionCandidate crash{Site("h_op"), 3, ir::kInvalidId, FaultKind::kCrash};
  RunResult result = Run("pump", 1, /*window=*/{crash}, /*pinned=*/{crash});
  EXPECT_EQ(result.outcome, RunOutcome::kCrashed);
  EXPECT_TRUE(result.DidNodeCrash("n2"));
  EXPECT_FALSE(result.injected.has_value());  // the pin fired, not the window
  ASSERT_EQ(result.preempted_window.size(), 1u);
  EXPECT_EQ(result.preempted_window[0], crash);
}

// --- crash faults compose with the network model --------------------------------

TEST_F(HardenedRuntimeTest, InFlightMessagesToCrashedNodeAreDroppedByNetworkModel) {
  BuildPipeline(10);
  program_.Finalize();
  RunResult result =
      Run("pump", 1, {InjectionCandidate{Site("h_op"), 4, ir::kInvalidId, FaultKind::kCrash}});
  EXPECT_EQ(result.outcome, RunOutcome::kCrashed);
  // Everything addressed to n2 from the crash on is swallowed by the network
  // model (not by a dead-thread special case), so the drops are observable
  // in the run's network accounting.
  EXPECT_GT(result.network.dropped_to_crashed, 0);
  EXPECT_EQ(Var(result, "handled", "n2"), 3);
}

TEST_F(HardenedRuntimeTest, CrashAndNetworkDropFaultsCompose) {
  BuildPipeline(10);
  program_.Finalize();
  // Message 2 is dropped by an explicit network fault; the node later
  // crashes at its 4th handler execution. Both fault layers account
  // independently: one drop by fault, the post-crash sends by the crash.
  RunResult result = Run(
      "pump", 1,
      /*window=*/{InjectionCandidate{Site("h_op"), 4, ir::kInvalidId, FaultKind::kCrash}},
      /*pinned=*/
      {InjectionCandidate{Site("send:handler->n2"), 2, ir::kInvalidId, FaultKind::kDrop}});
  EXPECT_EQ(result.outcome, RunOutcome::kCrashed);
  EXPECT_EQ(result.network.dropped_by_fault, 1);
  EXPECT_GT(result.network.dropped_to_crashed, 0);
  // Handler ran for messages 1, 3, 4 and crashed on its 4th execution
  // (message 5): three completions despite ten sends.
  EXPECT_EQ(Var(result, "handled", "n2"), 3);
  EXPECT_TRUE(result.DidNodeCrash("n2"));
}

// --- chain-stitch runs: retry policy and whole-chain demotion -------------------

TEST_F(HardenedRuntimeTest, ChainStitchRetriesWallBudgetKillsWithBoundedBackoff) {
  // A workload that reliably trips the 1ms wall-clock watchdog, with a fault
  // site so the stitch has something to pin.
  {
    MethodBuilder b(&program_, "spin");
    b.While(b.Lt("i", 900'000), [&] { b.Assign("i", b.Plus("i", 1)); });
    b.External("op", {"IOException"});  // never reached: the watchdog fires first
  }
  program_.Finalize();
  cluster_.AddNode("n1");
  cluster_.AddNode("n2");
  cluster_.AddTask("n1", "main", program_.FindMethod("spin"), 0);
  cluster_.wall_budget_ms = 1;

  explorer::ExperimentSpec spec;
  spec.program = &program_;
  spec.cluster = &cluster_;
  explorer::ExplorerOptions options;
  options.max_run_retries = 3;
  options.retry_initial_delay_ms = 1;
  options.retry_max_delay_ms = 2;
  ir::ExceptionTypeId io = program_.FindException("IOException");
  explorer::StitchRunResult stitch =
      explorer::RunChainStitch(spec, InjectionCandidate{Site("op"), 1, io}, options);
  EXPECT_TRUE(stitch.run.hit_wall_budget);
  EXPECT_EQ(stitch.run.outcome, RunOutcome::kBudgetExceeded);
  // The stitch reuses the same bounded exponential backoff as search rounds:
  // exactly max_run_retries re-executions of the wall-budget-killed run,
  // then it gives up rather than spinning forever.
  EXPECT_EQ(stitch.retries, options.max_run_retries);
  // A budget kill is environmental, not a wedge: the chain candidate lives.
  EXPECT_FALSE(stitch.demote_chain);
}

TEST_F(HardenedRuntimeTest, WedgedStitchRunDemotesWholeChainCandidate) {
  BuildPipeline(10);
  program_.Finalize();
  cluster_.AddNode("n1");
  cluster_.AddNode("n2");
  cluster_.AddTask("n1", "main", program_.FindMethod("pump"), 0);

  explorer::ExperimentSpec spec;
  spec.program = &program_;
  spec.cluster = &cluster_;
  // The accepted chain prefix: a message-drop step is already pinned.
  spec.pinned_faults.push_back(
      InjectionCandidate{Site("send:handler->n2"), 2, ir::kInvalidId, FaultKind::kDrop});
  // Candidate under stitch: a stall that wedges the degraded pipeline.
  explorer::StitchRunResult stitch = explorer::RunChainStitch(
      spec, InjectionCandidate{Site("h_op"), 4, ir::kInvalidId, FaultKind::kStall},
      explorer::ExplorerOptions{});
  EXPECT_EQ(stitch.run.outcome, RunOutcome::kHung);
  // Prefix and candidate both fired in the same ordered run.
  EXPECT_EQ(stitch.run.pinned_fired, 2);
  // A hung intermediate step condemns the *whole* chain candidate — the
  // explorer drops it instead of searching continuations on a wedged system.
  EXPECT_TRUE(stitch.demote_chain);
  // Hangs are deterministic outcomes, never retried as transient.
  EXPECT_EQ(stitch.retries, 0);
}

// --- determinism of the new kinds ----------------------------------------------

TEST_F(HardenedRuntimeTest, CrashAndStallRunsAreDeterministic) {
  BuildPipeline(10);
  program_.Finalize();
  for (FaultKind kind : {FaultKind::kCrash, FaultKind::kStall}) {
    InjectionCandidate candidate{Site("h_op"), 5, ir::kInvalidId, kind};
    RunResult a = Run("pump", 42, {candidate});
    RunResult b = Run("pump", 42, {candidate});
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(FormatLogFile(a.log), FormatLogFile(b.log));
    EXPECT_EQ(a.end_time_ms, b.end_time_ms);
  }
}

}  // namespace
}  // namespace anduril::interp
