// Ordered fault chains: the cascade registry, the chain-vs-independent
// separation, chain determinism and mid-chain kill/resume, and the fault
// signature lifecycle (build, replay, minimize, round-trip).
//
// The central contracts under test:
//  - every CascadeCases() scenario is reproduced by the chain search in
//    bounded rounds while the single-fault and independent-iterative
//    searches provably cap out;
//  - a fixed seed yields the identical FaultChain and round count at every
//    thread count, and a search killed mid-chain and resumed from its v3
//    checkpoint is indistinguishable from the uninterrupted one;
//  - the unminimized signature of a reproduction replays byte-identically
//    to the search's own failing run, with zero search rounds, and survives
//    greedy minimization and a serialize/parse round-trip.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/explorer/checkpoint.h"
#include "src/explorer/explorer.h"
#include "src/explorer/iterative.h"
#include "src/explorer/signature.h"
#include "src/interp/log_entry.h"
#include "src/interp/simulator.h"
#include "src/systems/common.h"
#include "tests/test_util.h"

namespace anduril::explorer {
namespace {

// Bounded budgets for searches that are *expected* to fail: big enough that
// success would be seen if it were possible, small enough to keep the suite
// fast. The chain search must win well inside the same per-phase budget.
constexpr int kDoomedRounds = 120;
constexpr int kPhaseRounds = 200;

ChainResult RunChain(const systems::BuiltCase& built, const ExplorerOptions& options,
                     int max_chain_length = 3,
                     const CheckpointConfig& checkpoint = CheckpointConfig{}) {
  ChainExplorer chain_explorer(built.spec, options);
  return chain_explorer.Explore(max_chain_length, checkpoint);
}

// --- registry -------------------------------------------------------------------

TEST(CascadeRegistryTest, CasesAreChainRootedAndDiverse) {
  ASSERT_GE(systems::CascadeCases().size(), 3u);
  bool has_crash_or_stall = false;
  bool has_network = false;
  for (const systems::FailureCase& failure_case : systems::CascadeCases()) {
    SCOPED_TRACE(failure_case.id);
    // Cascades are chain-only by construction: at least two ordered
    // ground-truth faults, reachable through FindCase like every other case.
    EXPECT_GE(failure_case.root_chain.size(), 2u);
    EXPECT_EQ(systems::FindCase(failure_case.id), &failure_case);
    has_crash_or_stall |= systems::NeedsCrashStallCandidates(failure_case);
    has_network |= systems::NeedsNetworkCandidates(failure_case);
  }
  // The registry exercises the NetworkModel + crash/stall fault space, not
  // just exception chains.
  EXPECT_TRUE(has_crash_or_stall);
  EXPECT_TRUE(has_network);
}

// --- chain-only separation ------------------------------------------------------

TEST(FaultChainTest, SingleFaultSearchCapsOutOnEveryCascade) {
  for (const systems::FailureCase& failure_case : systems::CascadeCases()) {
    SCOPED_TRACE(failure_case.id);
    systems::BuiltCase built = systems::BuildCase(failure_case);
    ExplorerOptions options = OptionsForCase(failure_case, 1);
    options.max_rounds = kDoomedRounds;
    ExploreResult result = RunSearch(built, options);
    // A later-step site has no dynamic instance in the fault-free baseline,
    // so no single injection can ever satisfy the oracle.
    EXPECT_FALSE(result.reproduced);
  }
}

TEST(FaultChainTest, IndependentIterativeSearchCapsOutOnEveryCascade) {
  for (const systems::FailureCase& failure_case : systems::CascadeCases()) {
    SCOPED_TRACE(failure_case.id);
    systems::BuiltCase built = systems::BuildCase(failure_case);
    ExplorerOptions options = OptionsForCase(failure_case, 1);
    options.max_rounds = kDoomedRounds;
    IterativeExplorer iterative(built.spec, options);
    IterativeResult result = iterative.Explore(/*max_faults=*/3);
    // The independent mode shares one analysis cache across phases: the
    // instance estimates stay those of the healthy baseline, so sites that
    // only execute under an earlier fault are never armed.
    EXPECT_FALSE(result.reproduced);
    EXPECT_GE(result.phases, 1);
  }
}

TEST(FaultChainTest, ChainSearchReproducesEveryCascadeInBoundedRounds) {
  for (const systems::FailureCase& failure_case : systems::CascadeCases()) {
    SCOPED_TRACE(failure_case.id);
    systems::BuiltCase built = systems::BuildCase(failure_case);
    ExplorerOptions options = OptionsForCase(failure_case, 1);
    options.max_rounds = kPhaseRounds;
    ChainResult result = RunChain(built, options);
    ASSERT_TRUE(result.reproduced);
    // An ordered chain, found within the budget the doomed searches got.
    EXPECT_GE(result.chain.steps.size(), 2u);
    EXPECT_LE(result.total_rounds, kDoomedRounds);
    EXPECT_GE(result.phases, 2);
    // Every intermediate step was accepted on evidence: its stitch run
    // flipped observables and/or newly executed sites; the final step is the
    // window injection that satisfied the oracle.
    EXPECT_TRUE(result.chain.steps.back().stitched_observables.empty());
    // The chain replays deterministically.
    EXPECT_TRUE(ChainExplorer::Replay(built.spec, result));
  }
}

// --- determinism ----------------------------------------------------------------

TEST(FaultChainTest, ChainIsIdenticalAtEveryThreadCount) {
  const systems::FailureCase* failure_case = systems::FindCase("casc-retry-1");
  ASSERT_NE(failure_case, nullptr);
  systems::BuiltCase built = systems::BuildCase(*failure_case);
  ExplorerOptions serial = OptionsForCase(*failure_case, 1);
  serial.max_rounds = kPhaseRounds;
  ChainResult baseline = RunChain(built, serial);
  ASSERT_TRUE(baseline.reproduced);
  for (int threads : {2, 8}) {
    SCOPED_TRACE(threads);
    ExplorerOptions options = OptionsForCase(*failure_case, threads);
    options.max_rounds = kPhaseRounds;
    ChainResult result = RunChain(built, options);
    ASSERT_TRUE(result.reproduced);
    EXPECT_EQ(result.chain, baseline.chain);
    EXPECT_EQ(result.total_rounds, baseline.total_rounds);
    EXPECT_EQ(result.phases, baseline.phases);
  }
}

// --- mid-chain kill and resume --------------------------------------------------

// Kills the chain search after `kill_after_rounds` total rounds (checkpoint
// on disk, exactly as a process kill would leave it), resumes a brand-new
// ChainExplorer from the file alone, and asserts the resumed search is
// indistinguishable from the uninterrupted baseline.
void ExpectChainResumeMatchesUninterrupted(const std::string& case_id, int threads,
                                           int kill_after_rounds,
                                           const ChainResult& baseline) {
  SCOPED_TRACE(case_id + " @" + std::to_string(threads) + " threads, killed after round " +
               std::to_string(kill_after_rounds));
  const systems::FailureCase* failure_case = systems::FindCase(case_id);
  ASSERT_NE(failure_case, nullptr);
  systems::BuiltCase built = systems::BuildCase(*failure_case);
  ExplorerOptions options = OptionsForCase(*failure_case, threads);
  options.max_rounds = kPhaseRounds;

  std::string path = TempPath("chain_resume_" + case_id + "_" + std::to_string(threads) +
                              "_" + std::to_string(kill_after_rounds) + ".json");
  ExplorerOptions truncated = options;
  truncated.max_total_rounds = kill_after_rounds;
  ChainResult interrupted = RunChain(built, truncated, 3, CheckpointConfig{path, nullptr});
  ASSERT_FALSE(interrupted.reproduced);

  SearchCheckpoint snap;
  std::string error;
  ASSERT_TRUE(LoadCheckpointFile(path, &snap, &error)) << error;
  systems::BuiltCase rebuilt = systems::BuildCase(*failure_case);
  ChainExplorer resumed_explorer(rebuilt.spec, options);
  ChainResult resumed = resumed_explorer.Explore(3, CheckpointConfig{"", &snap});

  ASSERT_TRUE(resumed.reproduced);
  // Byte-identical chain: same steps, candidates, seeds, per-phase round
  // counts, stitched observables — and the same total accounting.
  EXPECT_EQ(resumed.chain, baseline.chain);
  EXPECT_EQ(resumed.total_rounds, baseline.total_rounds);
  EXPECT_EQ(resumed.phases, baseline.phases);
  std::remove(path.c_str());
}

TEST(FaultChainTest, MidChainKillResumeIsByteIdentical) {
  const systems::FailureCase* failure_case = systems::FindCase("casc-retry-1");
  ASSERT_NE(failure_case, nullptr);
  systems::BuiltCase built = systems::BuildCase(*failure_case);
  ExplorerOptions options = OptionsForCase(*failure_case, 1);
  options.max_rounds = kPhaseRounds;
  ChainResult baseline = RunChain(built, options);
  ASSERT_TRUE(baseline.reproduced);
  ASSERT_GE(baseline.chain.steps.size(), 2u);
  const int phase1_rounds = baseline.chain.steps.front().rounds;
  const int final_rounds = baseline.chain.steps.back().rounds;
  ASSERT_GE(final_rounds, 2) << "need at least two final-phase rounds to kill between";

  // Kill inside phase 1 (before any step is accepted): the checkpoint's
  // chain block carries only the injected-round summaries.
  ExpectChainResumeMatchesUninterrupted("casc-retry-1", 1, phase1_rounds - 1, baseline);
  // Kill at the phase boundary (phase 1 exhausted, stitch not yet run): the
  // resumed search must re-make the identical stitch decision from the
  // persisted round candidates alone.
  ExpectChainResumeMatchesUninterrupted("casc-retry-1", 1, phase1_rounds, baseline);
  // Kill mid-phase-2 (one chain step accepted and pinned): the resumed
  // search re-pins the prefix and continues the interrupted phase.
  ExpectChainResumeMatchesUninterrupted("casc-retry-1", 1,
                                        phase1_rounds + final_rounds - 1, baseline);
  // Same mid-chain kill, parallel engine.
  ExpectChainResumeMatchesUninterrupted("casc-retry-1", 8,
                                        phase1_rounds + final_rounds - 1, baseline);
}

// --- fault signatures -----------------------------------------------------------

class SignatureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failure_case_ = systems::FindCase("casc-retry-1");
    ASSERT_NE(failure_case_, nullptr);
    built_ = systems::BuildCase(*failure_case_);
    // BuiltCase::spec points into the BuiltCase's own members; re-anchor it
    // after the move-assignment above.
    built_.spec.program = built_.program.get();
    built_.spec.cluster = &built_.cluster;
    ExplorerOptions options = OptionsForCase(*failure_case_, 1);
    options.max_rounds = kPhaseRounds;
    result_ = RunChain(built_, options);
    ASSERT_TRUE(result_.reproduced);
    signature_ = BuildSignature(built_.spec, failure_case_->id, result_);
  }

  const systems::FailureCase* failure_case_ = nullptr;
  systems::BuiltCase built_;
  ChainResult result_;
  FaultSignature signature_;
};

TEST_F(SignatureTest, UnminimizedReplayIsByteIdenticalToSearchFailingRun) {
  // The search's own failing run, re-executed directly: chain prefix pinned,
  // final step as the window injection at its recorded seed.
  std::vector<interp::InjectionCandidate> pinned;
  for (size_t i = 0; i + 1 < result_.chain.steps.size(); ++i) {
    pinned.push_back(result_.chain.steps[i].candidate);
  }
  const FaultChainStep& last = result_.chain.steps.back();
  interp::FaultRuntime runtime(built_.spec.program);
  runtime.SetPinned(pinned);
  runtime.SetWindow({last.candidate});
  interp::Simulator simulator(built_.spec.program, built_.spec.cluster, last.seed, &runtime);
  interp::RunResult search_run = simulator.Run();
  ASSERT_TRUE(built_.spec.oracle(*built_.spec.program, search_run));

  // The unminimized signature retains the full workload, so its replay is
  // the byte-identical run — not merely an equivalent one.
  ASSERT_FALSE(signature_.minimized);
  SignatureReplay replay = ReplaySignature(built_.spec, signature_);
  ASSERT_TRUE(replay.error.empty()) << replay.error;
  EXPECT_TRUE(replay.fired);
  EXPECT_EQ(interp::FormatLogFile(replay.run.log), interp::FormatLogFile(search_run.log));
  EXPECT_EQ(replay.run.outcome, search_run.outcome);
}

TEST_F(SignatureTest, MinimizedSignatureStillFiresDeterministically) {
  int replays = 0;
  FaultSignature minimized = MinimizeSignature(built_.spec, signature_, &replays);
  EXPECT_TRUE(minimized.minimized);
  EXPECT_GT(replays, 0);
  // Minimization never grows the artifact, and never drops the window step.
  EXPECT_LE(minimized.steps.size(), signature_.steps.size());
  EXPECT_GE(minimized.steps.size(), 1u);
  EXPECT_LE(minimized.retained_tasks.size(), signature_.retained_tasks.size());
  EXPECT_LE(minimized.ir_methods.size(), signature_.ir_methods.size());
  EXPECT_EQ(minimized.steps.back(), signature_.steps.back());

  SignatureReplay first = ReplaySignature(built_.spec, minimized);
  ASSERT_TRUE(first.error.empty()) << first.error;
  EXPECT_TRUE(first.fired);
  // Zero-search replay is deterministic: same bytes every time.
  SignatureReplay second = ReplaySignature(built_.spec, minimized);
  EXPECT_EQ(interp::FormatLogFile(first.run.log), interp::FormatLogFile(second.run.log));
}

TEST_F(SignatureTest, SerializationRoundTripsAndRejectsTampering) {
  std::string text = SerializeSignature(signature_);
  FaultSignature parsed;
  std::string error;
  ASSERT_TRUE(ParseSignature(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed, signature_);
  // Canonical: re-serializing the parse is byte-identical.
  EXPECT_EQ(SerializeSignature(parsed), text);

  // A tampered artifact (here: a different occurrence) must be rejected by
  // the content hash, not replayed as a subtly different scenario.
  std::string tampered = text;
  size_t pos = tampered.find("\"occurrence\"");
  ASSERT_NE(pos, std::string::npos);
  pos = tampered.find(':', pos);
  tampered.insert(pos + 2, "4");
  FaultSignature out;
  error.clear();
  EXPECT_FALSE(ParseSignature(tampered, &out, &error));
  EXPECT_NE(error.find("hash"), std::string::npos) << error;
}

TEST_F(SignatureTest, SaveLoadFileRoundTrip) {
  std::string path = TempPath("sig_roundtrip.json");
  ASSERT_TRUE(SaveSignatureFile(path, signature_));
  FaultSignature loaded;
  std::string error;
  ASSERT_TRUE(LoadSignatureFile(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded, signature_);
  std::remove(path.c_str());
}

TEST_F(SignatureTest, ReplayRefusesMismatchedProgram) {
  const systems::FailureCase* other = systems::FindCase("casc-herd-1");
  ASSERT_NE(other, nullptr);
  systems::BuiltCase other_built = systems::BuildCase(*other, /*verify=*/false);
  SignatureReplay replay = ReplaySignature(other_built.spec, signature_);
  EXPECT_FALSE(replay.fired);
  EXPECT_NE(replay.error.find("fingerprint"), std::string::npos) << replay.error;
}

}  // namespace
}  // namespace anduril::explorer
