#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/util/backoff.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/stopwatch.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace anduril {
namespace {

// --- strings -----------------------------------------------------------------

TEST(Strings, SplitBasic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, SplitNLimitsPieces) {
  EXPECT_EQ(SplitN("a|b|c|d", '|', 2), (std::vector<std::string>{"a", "b|c|d"}));
  EXPECT_EQ(SplitN("a|b", '|', 5), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitN("abc", '|', 3), (std::vector<std::string>{"abc"}));
}

TEST(Strings, JoinRoundTripsSplit) {
  std::vector<std::string> pieces{"x", "", "yz"};
  EXPECT_EQ(Split(Join(pieces, ";"), ';'), pieces);
}

TEST(Strings, StartsEndsContains) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_TRUE(EndsWith("abcdef", "def"));
  EXPECT_FALSE(EndsWith("ef", "def"));
  EXPECT_TRUE(Contains("abcdef", "cde"));
  EXPECT_FALSE(Contains("abcdef", "xyz"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(Strings, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a{}b{}c", "{}", "#"), "a#b#c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");  // non-overlapping, left to right
  EXPECT_EQ(ReplaceAll("none", "xx", "y"), "none");
}

TEST(Strings, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%05d", 7), "00007");
  // Long outputs are not truncated.
  std::string long_arg(500, 'a');
  EXPECT_EQ(StrFormat("%s", long_arg.c_str()).size(), 500u);
}

TEST(Strings, ThousandsSeparators) {
  EXPECT_EQ(WithThousandsSeparators(0), "0");
  EXPECT_EQ(WithThousandsSeparators(999), "999");
  EXPECT_EQ(WithThousandsSeparators(1000), "1,000");
  EXPECT_EQ(WithThousandsSeparators(1234567), "1,234,567");
  EXPECT_EQ(WithThousandsSeparators(-1234567), "-1,234,567");
}

// --- rng ------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.NextBelow(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t value = rng.NextInRange(-3, 3);
    EXPECT_GE(value, -3);
    EXPECT_LE(value, 3);
    saw_lo |= value == -3;
    saw_hi |= value == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextBoolEdges) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double value = rng.NextDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(Rng, RoughlyUniform) {
  Rng rng(17);
  int buckets[10] = {};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++buckets[rng.NextBelow(10)];
  }
  for (int count : buckets) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 100);
  }
}

// --- check ------------------------------------------------------------------------

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH({ ANDURIL_CHECK(1 == 2) << "boom"; }, "boom");
}

TEST(CheckDeathTest, ComparisonMacros) {
  EXPECT_DEATH({ ANDURIL_CHECK_EQ(1, 2); }, "ANDURIL_CHECK failed");
  EXPECT_DEATH({ ANDURIL_CHECK_LT(3, 2); }, "ANDURIL_CHECK failed");
}

TEST(Check, PassingCheckIsSilent) {
  ANDURIL_CHECK(true);
  ANDURIL_CHECK_EQ(2, 2);
  ANDURIL_CHECK_GE(3, 2);
}

// --- stopwatch ------------------------------------------------------------------------

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch stopwatch;
  int64_t sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink += i;
  }
  ASSERT_NE(sink, 0);
  EXPECT_GT(stopwatch.ElapsedNanos(), 0);
  EXPECT_GE(stopwatch.ElapsedSeconds(), 0.0);
}

TEST(Stopwatch, ResetRestartsClock) {
  Stopwatch stopwatch;
  int64_t sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink += i;
  }
  ASSERT_NE(sink, 0);
  int64_t before = stopwatch.ElapsedNanos();
  stopwatch.Reset();
  EXPECT_LT(stopwatch.ElapsedNanos(), before + 1000000000);
}

// --- thread pool -------------------------------------------------------------

TEST(ThreadPool, SubmitAndWaitReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
  pool.Wait();
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<int> future =
      pool.Submit([]() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survives a throwing task.
  EXPECT_EQ(pool.Submit([] { return 41 + 1; }).get(), 42);
}

TEST(ThreadPool, DestructionDrainsPendingTasks) {
  std::atomic<int> completed{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.Submit([&completed] {
        ++completed;
      }));
    }
    // Destruction must run every accepted task so no future is abandoned.
  }
  EXPECT_EQ(completed.load(), 32);
  for (auto& future : futures) {
    future.get();  // would throw broken_promise if a task were dropped
  }
}

TEST(ThreadPool, WaitBlocksUntilIdle) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  for (int i = 0; i < 24; ++i) {
    pool.Submit([&completed] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++completed;
    });
  }
  pool.Wait();
  EXPECT_EQ(completed.load(), 24);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPool, BoundedQueueAppliesBackpressure) {
  ThreadPool pool(1, /*queue_bound=*/2);
  std::atomic<int> completed{0};
  // More tasks than the bound: Submit blocks instead of rejecting, and every
  // task still completes exactly once.
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&completed] { ++completed; });
  }
  pool.Wait();
  EXPECT_EQ(completed.load(), 16);
}

// --- exponential backoff -----------------------------------------------------

TEST(ExponentialBackoff, DelaysGrowExponentiallyWithinJitterBounds) {
  ExponentialBackoff::Options options;
  options.initial_delay_ms = 10;
  options.multiplier = 2.0;
  options.max_delay_ms = 40;
  options.max_retries = 5;
  options.jitter = 0.2;
  ExponentialBackoff backoff(options, 7);
  // Base delays 10, 20, 40, then capped at 40; jitter is +/- 20% of the base.
  const int64_t bases[] = {10, 20, 40, 40, 40};
  for (int64_t base : bases) {
    ASSERT_TRUE(backoff.ShouldRetry() || backoff.attempt() >= options.max_retries);
    int64_t delay = backoff.NextDelayMs();
    EXPECT_GE(delay, base - base / 5) << "base " << base;
    EXPECT_LE(delay, base + base / 5) << "base " << base;
  }
  EXPECT_EQ(backoff.draws(), 5u);
}

TEST(ExponentialBackoff, ShouldRetryHonorsBudgetAndResetRestartsIt) {
  ExponentialBackoff backoff({.max_retries = 2}, 1);
  EXPECT_TRUE(backoff.ShouldRetry());
  backoff.NextDelayMs();
  EXPECT_TRUE(backoff.ShouldRetry());
  backoff.NextDelayMs();
  EXPECT_FALSE(backoff.ShouldRetry());  // per-round budget exhausted
  backoff.Reset();
  EXPECT_TRUE(backoff.ShouldRetry());  // new round, fresh budget
  // The jitter stream position is global, not per round.
  EXPECT_EQ(backoff.draws(), 2u);
}

TEST(ExponentialBackoff, FastForwardRestoresJitterStreamPosition) {
  ExponentialBackoff::Options options;
  options.max_retries = 100;
  ExponentialBackoff original(options, 99);
  for (int i = 0; i < 3; ++i) {
    original.NextDelayMs();
  }
  original.Reset();

  ExponentialBackoff resumed(options, 99);
  resumed.FastForward(3);
  EXPECT_EQ(resumed.draws(), 3u);

  // Same stream position + same attempt counter => identical future delays.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(resumed.NextDelayMs(), original.NextDelayMs()) << "draw " << i;
  }
}

}  // namespace
}  // namespace anduril
