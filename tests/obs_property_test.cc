// Property tests for the observability layer (src/obs): randomized
// concurrent updates never lose events or produce malformed JSON, histogram
// merging is order-independent, snapshots round-trip through their JSON
// encodings, and truncated or version-skewed files are rejected with
// actionable errors instead of being half-parsed.

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/json.h"
#include "src/util/rng.h"

namespace anduril::obs {
namespace {

// --- concurrent tracer updates --------------------------------------------------

TEST(ObsPropertyTest, ConcurrentSpanEmissionLosesNoEvents) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  Tracer tracer;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tracer, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) {
        const int64_t ts = static_cast<int64_t>(rng.NextBelow(1'000'000));
        if (rng.NextBool(0.5)) {
          tracer.Span("explore", "run", ts, 1 + static_cast<int64_t>(rng.NextBelow(999)),
                      t, {ArgInt("thread", t), ArgInt("i", i)});
        } else {
          tracer.Instant("explore", "retry", ts, t,
                         {ArgStr("tag", "t" + std::to_string(t))});
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(tracer.event_count(), static_cast<size_t>(kThreads) * kPerThread);

  // Both dump formats stay well-formed under the full concurrent load.
  std::string error;
  JsonValue chrome = JsonValue::Parse(tracer.DumpChromeTrace(), &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_NE(chrome.Find("traceEvents"), nullptr);
  EXPECT_EQ(chrome.Find("traceEvents")->items().size(),
            static_cast<size_t>(kThreads) * kPerThread);

  std::vector<TraceEvent> parsed;
  ASSERT_TRUE(Tracer::ParseJsonl(tracer.DumpJsonl(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.size(), static_cast<size_t>(kThreads) * kPerThread);
}

TEST(ObsPropertyTest, DumpIsIndependentOfInsertionOrder) {
  // The same set of events emitted in two different interleavings dumps
  // byte-identically — the property the golden-trace test builds on.
  struct Item {
    int64_t ts;
    int64_t dur;
    int track;
  };
  std::vector<Item> items;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    items.push_back(Item{static_cast<int64_t>(rng.NextBelow(1000)),
                         1 + static_cast<int64_t>(rng.NextBelow(50)),
                         static_cast<int>(rng.NextBelow(4))});
  }
  Tracer forward;
  for (const Item& item : items) {
    forward.Span("explore", "candidate", item.ts, item.dur, item.track);
  }
  Tracer backward;
  for (auto it = items.rbegin(); it != items.rend(); ++it) {
    backward.Span("explore", "candidate", it->ts, it->dur, it->track);
  }
  EXPECT_EQ(forward.DumpJsonl(), backward.DumpJsonl());
  EXPECT_EQ(forward.DumpChromeTrace(), backward.DumpChromeTrace());
}

TEST(ObsPropertyTest, JsonlRoundTripPreservesEvents) {
  Tracer tracer;
  tracer.Span("explore", "round", 1'000'000, 1'000'000, 0,
              {ArgInt("round", 1), ArgBool("success", false), ArgStr("outcome", "completed")},
              /*wall_nanos=*/123'456'789);
  // Numeric args round-trip through int64 (JSON has no uint64), so the
  // largest reparseable seed is int64 max; real seeds are base_seed + round.
  tracer.Instant("explore", "reproduced", 1'999'999, 0,
                 {ArgUint("seed", uint64_t{1} << 62)});
  const std::string text = tracer.DumpJsonl(/*include_wall=*/true);

  std::vector<TraceEvent> parsed;
  std::string error;
  ASSERT_TRUE(Tracer::ParseJsonl(text, &parsed, &error)) << error;
  Tracer reloaded;
  for (const TraceEvent& event : parsed) {
    if (event.kind == TraceEvent::Kind::kSpan) {
      reloaded.Span(event.category, event.name, event.ts, event.dur, event.track,
                    event.args, event.wall_nanos);
    } else {
      reloaded.Instant(event.category, event.name, event.ts, event.track, event.args);
    }
  }
  EXPECT_EQ(reloaded.DumpJsonl(/*include_wall=*/true), text);
}

// --- concurrent metrics updates -------------------------------------------------

TEST(ObsPropertyTest, ConcurrentCounterAndHistogramUpdatesAreExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  MetricsRegistry metrics;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&metrics, t] {
      Rng rng(static_cast<uint64_t>(t) + 100);
      for (int i = 0; i < kPerThread; ++i) {
        metrics.Add("shared.counter");
        metrics.Add("per_thread.counter." + std::to_string(t), 2);
        metrics.Observe("shared.hist", static_cast<int64_t>(rng.NextBelow(1 << 20)));
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(metrics.counter("shared.counter"),
            static_cast<int64_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(metrics.counter("per_thread.counter." + std::to_string(t)),
              2 * static_cast<int64_t>(kPerThread));
  }
  EXPECT_EQ(metrics.histogram("shared.hist").count,
            static_cast<int64_t>(kThreads) * kPerThread);

  std::string error;
  JsonValue::Parse(metrics.DumpJson(), &error);
  EXPECT_TRUE(error.empty()) << error;
}

TEST(ObsPropertyTest, MergeIsOrderIndependent) {
  // Counters and histogram buckets add, gauges take max — all commutative,
  // so merging the same parts in any order yields the same snapshot.
  auto make_part = [](uint64_t seed) {
    MetricsRegistry part;
    Rng rng(seed);
    for (int i = 0; i < 300; ++i) {
      part.Add("c." + std::to_string(rng.NextBelow(5)), 1 + static_cast<int64_t>(rng.NextBelow(9)));
      part.Observe("h." + std::to_string(rng.NextBelow(3)),
                   static_cast<int64_t>(rng.NextBelow(1 << 16)));
      part.Set("g." + std::to_string(rng.NextBelow(2)),
               static_cast<int64_t>(rng.NextBelow(1000)));
    }
    return part.Snapshot();
  };
  MetricsSnapshot a = make_part(1);
  MetricsSnapshot b = make_part(2);
  MetricsSnapshot c = make_part(3);

  MetricsRegistry forward;
  forward.Merge(a);
  forward.Merge(b);
  forward.Merge(c);
  MetricsRegistry backward;
  backward.Merge(c);
  backward.Merge(a);
  backward.Merge(b);
  EXPECT_EQ(forward.Snapshot(), backward.Snapshot());
  EXPECT_EQ(forward.DumpJson(), backward.DumpJson());
}

TEST(ObsPropertyTest, SnapshotRoundTripsThroughJson) {
  MetricsRegistry metrics;
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    metrics.Add("counter." + std::to_string(rng.NextBelow(7)));
    metrics.Observe("hist." + std::to_string(rng.NextBelow(4)),
                    rng.NextInRange(-5, 1 << 18));
    metrics.Set("gauge." + std::to_string(rng.NextBelow(3)),
                rng.NextInRange(-100, 100));
  }
  MetricsSnapshot original = metrics.Snapshot();
  std::string text = metrics.DumpJson();

  MetricsSnapshot reloaded;
  std::string error;
  ASSERT_TRUE(ParseMetricsJson(text, &reloaded, &error)) << error;
  EXPECT_EQ(reloaded, original);

  // Restore() overwrites: a dirty registry restored from the snapshot dumps
  // the identical JSON.
  MetricsRegistry dirty;
  dirty.Add("stale.counter", 99);
  dirty.Restore(reloaded);
  EXPECT_EQ(dirty.DumpJson(), text);
}

// --- negative parsing: truncated and version-skewed files -----------------------

TEST(ObsPropertyTest, TraceParseRejectsTruncatedFile) {
  Tracer tracer;
  tracer.Span("explore", "round", 1'000'000, 1'000'000, 0, {ArgInt("round", 1)});
  tracer.Span("explore", "round", 2'000'000, 1'000'000, 0, {ArgInt("round", 2)});
  std::string text = tracer.DumpJsonl();
  // Chop mid-way through the final line, as a crashed writer would leave it.
  std::string truncated = text.substr(0, text.size() - 20);

  std::vector<TraceEvent> out;
  std::string error;
  EXPECT_FALSE(Tracer::ParseJsonl(truncated, &out, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST(ObsPropertyTest, TraceParseRejectsMissingAndUnknownVersion) {
  std::vector<TraceEvent> out;
  std::string error;
  // No header at all.
  EXPECT_FALSE(Tracer::ParseJsonl("{\"ph\":\"i\"}\n", &out, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
  // A version this build does not read.
  error.clear();
  EXPECT_FALSE(Tracer::ParseJsonl(
      "{\"anduril_trace\": 999, \"time_unit\": \"logical\"}\n", &out, &error));
  EXPECT_NE(error.find("999"), std::string::npos) << error;
  // Well-formed header, garbage body.
  error.clear();
  EXPECT_FALSE(Tracer::ParseJsonl(
      "{\"anduril_trace\": 1, \"time_unit\": \"logical\"}\n{\"no_ph\": true}\n", &out,
      &error));
  EXPECT_NE(error.find("ph"), std::string::npos) << error;
}

TEST(ObsPropertyTest, MetricsParseRejectsTruncatedAndUnknownVersion) {
  MetricsRegistry metrics;
  metrics.Add("a.counter", 3);
  metrics.Observe("a.hist", 17);
  std::string text = metrics.DumpJson();

  MetricsSnapshot out;
  std::string error;
  EXPECT_FALSE(ParseMetricsJson(text.substr(0, text.size() / 2), &out, &error));
  EXPECT_FALSE(error.empty());

  error.clear();
  EXPECT_FALSE(ParseMetricsJson("{\"counters\": {}}", &out, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;

  error.clear();
  EXPECT_FALSE(ParseMetricsJson("{\"anduril_metrics\": 999}", &out, &error));
  EXPECT_NE(error.find("999"), std::string::npos) << error;
}

TEST(ObsPropertyTest, HistogramBucketsAreBitWidths) {
  EXPECT_EQ(HistogramBucketOf(-5), 0);
  EXPECT_EQ(HistogramBucketOf(0), 0);
  EXPECT_EQ(HistogramBucketOf(1), 1);
  EXPECT_EQ(HistogramBucketOf(2), 2);
  EXPECT_EQ(HistogramBucketOf(3), 2);
  EXPECT_EQ(HistogramBucketOf(4), 3);
  EXPECT_EQ(HistogramBucketOf((1ll << 40) + 1), 41);
  EXPECT_EQ(HistogramBucketOf(std::numeric_limits<int64_t>::max()), 63);
}

}  // namespace
}  // namespace anduril::obs
