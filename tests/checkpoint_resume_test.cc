// Checkpoint/resume invariant and the crash/stall scenario registry.
//
// The central contract under test: a search killed after any round and
// resumed from its checkpoint file emits the byte-identical
// ReproductionScript — and the same total round count — as the
// uninterrupted search at the same seed, at every thread count.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "src/explorer/checkpoint.h"
#include "src/explorer/explorer.h"
#include "src/explorer/strategy.h"
#include "src/systems/common.h"
#include "tests/test_util.h"

namespace anduril::explorer {
namespace {

// --- serialization round-trip ---------------------------------------------------

TEST(CheckpointTest, SerializeParseRoundTripIsLossless) {
  SearchCheckpoint snap;
  snap.program_fingerprint = 0xdeadbeefcafef00dull;
  snap.base_seed = (1ull << 63) + 17;  // exercises the >2^53 string encoding
  snap.rounds_completed = 42;
  snap.retry_rng_draws = 7;
  snap.experiment.completed_rounds = 30;
  snap.experiment.crashed_rounds = 6;
  snap.experiment.hung_rounds = 5;
  snap.experiment.budget_exceeded_rounds = 1;
  snap.experiment.partitioned_stuck_rounds = 2;
  snap.experiment.transient_retries = 3;
  snap.experiment.total_run_wall_seconds = 1.25;
  snap.experiment.max_round_wall_seconds = 0.5;
  snap.network_candidates = true;
  snap.partition_heal_ms = 750;
  snap.network_delay_ms = 400;
  snap.pinned.push_back(interp::InjectionCandidate{3, 9, 2, interp::FaultKind::kException});
  snap.pinned.push_back(
      interp::InjectionCandidate{5, 1, ir::kInvalidId, interp::FaultKind::kCrash});
  snap.pinned.push_back(
      interp::InjectionCandidate{6, 2, ir::kInvalidId, interp::FaultKind::kPartition});
  snap.strategy.window_size = 20;
  snap.strategy.exhausted = false;
  snap.strategy.observable_priorities = {4, 0, -2, 100};
  snap.strategy.tried.push_back(
      interp::InjectionCandidate{1, 2, 3, interp::FaultKind::kException});
  snap.strategy.tried.push_back(
      interp::InjectionCandidate{8, 4, ir::kInvalidId, interp::FaultKind::kStall});
  snap.strategy.tried.push_back(
      interp::InjectionCandidate{9, 1, ir::kInvalidId, interp::FaultKind::kDrop});
  snap.strategy.tried.push_back(
      interp::InjectionCandidate{9, 2, ir::kInvalidId, interp::FaultKind::kDelay});
  snap.strategy.tried.push_back(
      interp::InjectionCandidate{9, 3, ir::kInvalidId, interp::FaultKind::kDuplicate});
  snap.strategy.demotions.push_back(
      {interp::InjectionCandidate{8, 4, ir::kInvalidId, interp::FaultKind::kStall}, 2});
  // v3 chain block: an accepted two-step prefix mid-search.
  snap.chain.steps.push_back(ChainStepCheckpoint{
      interp::InjectionCandidate{3, 9, 2, interp::FaultKind::kException},
      (1ull << 62) + 5,
      20,
      {"ERROR append failed", "WARN retry queued"}});
  snap.chain.steps.push_back(ChainStepCheckpoint{
      interp::InjectionCandidate{5, 1, ir::kInvalidId, interp::FaultKind::kCrash}, 1, 13, {}});
  snap.chain.phase = 2;
  snap.chain.rounds_before_phase = 33;
  snap.chain.stitched_sites = {7, 11};
  snap.chain.round_candidates.push_back(ChainRoundCandidate{
      interp::InjectionCandidate{9, 3, ir::kInvalidId, interp::FaultKind::kDelay}, 4, 17});
  // v4 engine block: identity of the ranking path plus candidate-space shape.
  snap.engine_kind = "full-rerank";
  snap.engine_candidates = 100000;
  snap.engine_observables = 40;

  std::string text = SerializeCheckpoint(snap);
  SearchCheckpoint parsed;
  std::string error;
  ASSERT_TRUE(ParseCheckpoint(text, &parsed, &error)) << error;

  EXPECT_EQ(parsed.version, kCheckpointVersion);
  EXPECT_EQ(parsed.program_fingerprint, snap.program_fingerprint);
  EXPECT_EQ(parsed.base_seed, snap.base_seed);
  EXPECT_EQ(parsed.rounds_completed, snap.rounds_completed);
  EXPECT_EQ(parsed.retry_rng_draws, snap.retry_rng_draws);
  EXPECT_EQ(parsed.experiment.completed_rounds, snap.experiment.completed_rounds);
  EXPECT_EQ(parsed.experiment.crashed_rounds, snap.experiment.crashed_rounds);
  EXPECT_EQ(parsed.experiment.hung_rounds, snap.experiment.hung_rounds);
  EXPECT_EQ(parsed.experiment.budget_exceeded_rounds,
            snap.experiment.budget_exceeded_rounds);
  EXPECT_EQ(parsed.experiment.partitioned_stuck_rounds,
            snap.experiment.partitioned_stuck_rounds);
  EXPECT_EQ(parsed.network_candidates, snap.network_candidates);
  EXPECT_EQ(parsed.partition_heal_ms, snap.partition_heal_ms);
  EXPECT_EQ(parsed.network_delay_ms, snap.network_delay_ms);
  EXPECT_EQ(parsed.experiment.transient_retries, snap.experiment.transient_retries);
  EXPECT_DOUBLE_EQ(parsed.experiment.total_run_wall_seconds,
                   snap.experiment.total_run_wall_seconds);
  EXPECT_EQ(parsed.pinned, snap.pinned);
  EXPECT_EQ(parsed.strategy.window_size, snap.strategy.window_size);
  EXPECT_EQ(parsed.strategy.exhausted, snap.strategy.exhausted);
  EXPECT_EQ(parsed.strategy.observable_priorities, snap.strategy.observable_priorities);
  EXPECT_EQ(parsed.strategy.tried, snap.strategy.tried);
  ASSERT_EQ(parsed.strategy.demotions.size(), 1u);
  EXPECT_EQ(parsed.strategy.demotions[0].candidate, snap.strategy.demotions[0].candidate);
  EXPECT_EQ(parsed.strategy.demotions[0].count, snap.strategy.demotions[0].count);
  EXPECT_EQ(parsed.chain, snap.chain);
  EXPECT_EQ(parsed.chain_signature_hash, ChainSignatureHash(snap.chain));
  EXPECT_EQ(parsed.engine_kind, snap.engine_kind);
  EXPECT_EQ(parsed.engine_candidates, snap.engine_candidates);
  EXPECT_EQ(parsed.engine_observables, snap.engine_observables);

  // Serialization is canonical: re-serializing the parse is byte-identical.
  EXPECT_EQ(SerializeCheckpoint(parsed), text);
}

TEST(CheckpointTest, ParseRejectsMalformedAndWrongVersion) {
  SearchCheckpoint out;
  std::string error;
  EXPECT_FALSE(ParseCheckpoint("not json at all", &out, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(ParseCheckpoint("{\"version\": 999}", &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(CheckpointTest, RejectsVersion1FileWithActionableError) {
  // A pre-network-model checkpoint (schema v1: no network object, no
  // partitioned_stuck count). It must be refused with an error that names
  // both versions and tells the user what to do — not half-parsed into a
  // search with a silently different candidate space.
  const char* v1_text = R"({
    "version": 1,
    "program_fingerprint": "12345",
    "base_seed": "1",
    "rounds_completed": 7,
    "retry_rng_draws": "0",
    "experiment": {"completed_rounds": 7},
    "pinned": [],
    "strategy": {"window_size": 10, "exhausted": false,
                 "observable_priorities": [], "tried": [], "demotions": []}
  })";
  SearchCheckpoint out;
  std::string error;
  EXPECT_FALSE(ParseCheckpoint(v1_text, &out, &error));
  EXPECT_NE(error.find("version 1"), std::string::npos) << error;
  EXPECT_NE(error.find("version 4"), std::string::npos) << error;
  EXPECT_NE(error.find("delete"), std::string::npos)
      << "error must be actionable: " << error;
}

TEST(CheckpointTest, RejectsVersion3FileWithActionableError) {
  // A pre-engine checkpoint (schema v3: chain block but no engine block).
  // Resuming it would skip the engine-vs-options compatibility validation, so
  // it must be refused with an error naming both versions.
  const char* v3_text = R"({
    "version": 3,
    "program_fingerprint": "12345",
    "base_seed": "1",
    "rounds_completed": 7,
    "retry_rng_draws": "0",
    "experiment": {"completed_rounds": 7},
    "network": {"candidates": false, "partition_heal_ms": 0, "delay_ms": 0},
    "pinned": [],
    "strategy": {"window_size": 10, "exhausted": false,
                 "observable_priorities": [], "tried": [], "demotions": []},
    "chain": {"steps": [], "phase": 0, "rounds_before_phase": 0,
              "stitched_sites": [], "round_candidates": []}
  })";
  SearchCheckpoint out;
  std::string error;
  EXPECT_FALSE(ParseCheckpoint(v3_text, &out, &error));
  EXPECT_NE(error.find("version 3"), std::string::npos) << error;
  EXPECT_NE(error.find("version 4"), std::string::npos) << error;
  EXPECT_NE(error.find("delete"), std::string::npos)
      << "error must be actionable: " << error;
}

TEST(CheckpointTest, RejectsVersion4FileWithoutEngineBlock) {
  // A v4 file with the engine object stripped: refuse rather than guessing a
  // ranking path at resume.
  SearchCheckpoint snap;
  std::string text = SerializeCheckpoint(snap);
  const std::string key = "\"engine\": {";
  size_t begin = text.find(key);
  ASSERT_NE(begin, std::string::npos);
  size_t end = text.find('}', begin);
  ASSERT_NE(end, std::string::npos);
  // Erase back through the comma after the previous member so the JSON stays
  // well-formed (the engine object is the last member of the root).
  size_t comma = text.rfind(',', begin);
  ASSERT_NE(comma, std::string::npos);
  text.erase(comma, end + 1 - comma);
  SearchCheckpoint out;
  std::string error;
  EXPECT_FALSE(ParseCheckpoint(text, &out, &error));
  EXPECT_NE(error.find("no engine object"), std::string::npos) << error;
}

TEST(CheckpointTest, RejectsUnknownEngineKind) {
  SearchCheckpoint snap;
  std::string text = SerializeCheckpoint(snap);
  size_t pos = text.find("\"incremental\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 13, "\"telepathic\"");
  SearchCheckpoint out;
  std::string error;
  EXPECT_FALSE(ParseCheckpoint(text, &out, &error));
  EXPECT_NE(error.find("telepathic"), std::string::npos) << error;
}

TEST(CheckpointTest, RejectsVersion2FileWithChainStateWithActionableError) {
  // A pre-release chain build that wrote chain state without bumping the
  // schema version. Resuming it as plain v2 would silently drop the accepted
  // chain prefix, so the parser must refuse with a chain-specific message —
  // not the generic version mismatch.
  SearchCheckpoint out;
  std::string error;
  EXPECT_FALSE(ParseCheckpoint(R"({"version": 2, "chain": {"steps": []}})", &out, &error));
  EXPECT_NE(error.find("version 2"), std::string::npos) << error;
  EXPECT_NE(error.find("fault-chain state"), std::string::npos) << error;
  EXPECT_NE(error.find("delete"), std::string::npos)
      << "error must be actionable: " << error;
}

TEST(CheckpointTest, RejectsTamperedChainSignatureHash) {
  SearchCheckpoint snap;
  snap.chain.steps.push_back(ChainStepCheckpoint{
      interp::InjectionCandidate{3, 9, 2, interp::FaultKind::kException}, 1, 20, {"obs"}});
  std::string text = SerializeCheckpoint(snap);
  // Flip one digit of the recorded hash: the chain state no longer matches.
  const std::string key = "\"chain_signature_hash\": \"";
  size_t pos = text.find(key);
  ASSERT_NE(pos, std::string::npos);
  pos += key.size();
  text[pos] = text[pos] == '1' ? '2' : '1';
  SearchCheckpoint out;
  std::string error;
  EXPECT_FALSE(ParseCheckpoint(text, &out, &error));
  EXPECT_NE(error.find("chain signature hash mismatch"), std::string::npos) << error;
  EXPECT_NE(error.find("delete"), std::string::npos) << error;
}

TEST(CheckpointTest, RejectsTamperedChainStep) {
  // Editing the chain block itself (not the hash) must fail the same check:
  // the recomputed hash diverges from the recorded one.
  SearchCheckpoint snap;
  snap.chain.steps.push_back(ChainStepCheckpoint{
      interp::InjectionCandidate{3, 777, 2, interp::FaultKind::kException}, 1, 20, {}});
  std::string text = SerializeCheckpoint(snap);
  size_t pos = text.find("777");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 3, "778");
  SearchCheckpoint out;
  std::string error;
  EXPECT_FALSE(ParseCheckpoint(text, &out, &error));
  EXPECT_NE(error.find("chain signature hash mismatch"), std::string::npos) << error;
}

TEST(CheckpointTest, ParseRejectsUnknownFaultKind) {
  SearchCheckpoint snap;
  snap.pinned.push_back(
      interp::InjectionCandidate{1, 1, ir::kInvalidId, interp::FaultKind::kDrop});
  std::string text = SerializeCheckpoint(snap);
  // Corrupt the well-formed checkpoint with a kind string no build emits.
  std::string bad = text;
  size_t pos = bad.find("\"drop\"");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 6, "\"teleport\"");
  SearchCheckpoint out;
  std::string error;
  EXPECT_FALSE(ParseCheckpoint(bad, &out, &error));
  EXPECT_NE(error.find("teleport"), std::string::npos) << error;
}

TEST(CheckpointTest, SaveAndLoadFileRoundTrip) {
  SearchCheckpoint snap;
  snap.program_fingerprint = 123;
  snap.base_seed = 456;
  snap.rounds_completed = 3;
  std::string path = TempPath("save_load_roundtrip.json");
  ASSERT_TRUE(SaveCheckpointFile(path, snap));
  SearchCheckpoint loaded;
  std::string error;
  ASSERT_TRUE(LoadCheckpointFile(path, &loaded, &error)) << error;
  EXPECT_EQ(SerializeCheckpoint(loaded), SerializeCheckpoint(snap));
  std::remove(path.c_str());
}

// --- kill-and-resume invariant --------------------------------------------------

// Runs `case_id` uninterrupted, then again with the round budget cut short
// and a checkpoint file, then resumes a fresh explorer from that file, and
// asserts the resumed search is indistinguishable from the uninterrupted one.
void ExpectResumeMatchesUninterrupted(const std::string& case_id, int threads) {
  SCOPED_TRACE(case_id + " @" + std::to_string(threads) + " threads");
  const systems::FailureCase* failure_case = systems::FindCase(case_id);
  ASSERT_NE(failure_case, nullptr);
  systems::BuiltCase built = systems::BuildCase(*failure_case);
  ExplorerOptions options = OptionsForCase(*failure_case, threads);

  ExploreResult baseline = RunSearch(built, options);
  ASSERT_TRUE(baseline.reproduced);
  ASSERT_TRUE(baseline.script.has_value());
  ASSERT_GT(baseline.rounds, 1) << "need at least two rounds to interrupt between";

  // Interrupted search: stop one round before success, checkpointing.
  std::string path =
      TempPath("resume_" + case_id + "_" + std::to_string(threads) + ".json");
  ExplorerOptions truncated = options;
  truncated.max_rounds = baseline.rounds - 1;
  ExploreResult interrupted = RunSearch(built, truncated, CheckpointConfig{path, nullptr});
  EXPECT_FALSE(interrupted.reproduced);

  // Resume in a brand-new explorer + strategy, rebuilt from the file alone.
  SearchCheckpoint snap;
  std::string error;
  ASSERT_TRUE(LoadCheckpointFile(path, &snap, &error)) << error;
  EXPECT_EQ(snap.rounds_completed, baseline.rounds - 1);
  systems::BuiltCase rebuilt = systems::BuildCase(*failure_case);
  Explorer resumed_explorer(rebuilt.spec, options);
  std::unique_ptr<InjectionStrategy> strategy = MakeFullFeedbackStrategy();
  ExploreResult resumed =
      resumed_explorer.Explore(strategy.get(), CheckpointConfig{"", &snap});

  ASSERT_TRUE(resumed.reproduced);
  ASSERT_TRUE(resumed.script.has_value());
  // Byte-identical script, identical seed, identical total round count.
  EXPECT_EQ(resumed.script->ToText(*rebuilt.spec.program),
            baseline.script->ToText(*built.spec.program));
  EXPECT_EQ(resumed.script->seed, baseline.script->seed);
  EXPECT_EQ(resumed.rounds, baseline.rounds);
  // The resumed accounting includes the pre-checkpoint rounds.
  EXPECT_EQ(resumed.experiment.total_rounds(), baseline.experiment.total_rounds());
  std::remove(path.c_str());
}

TEST(CheckpointResumeTest, Zk2247SerialResumeIsByteIdentical) {
  ExpectResumeMatchesUninterrupted("zk-2247", 1);
}

TEST(CheckpointResumeTest, Zk2247EightThreadResumeIsByteIdentical) {
  ExpectResumeMatchesUninterrupted("zk-2247", 8);
}

TEST(CheckpointResumeTest, Hd4233SerialResumeIsByteIdentical) {
  ExpectResumeMatchesUninterrupted("hd-4233", 1);
}

TEST(CheckpointResumeTest, Hd4233EightThreadResumeIsByteIdentical) {
  ExpectResumeMatchesUninterrupted("hd-4233", 8);
}

// Network-rooted cases exercise the v2 fields: the checkpoint records the
// widened candidate space plus the cluster's partition/delay knobs, and the
// resumed search must replay them byte-identically (zk-net-1's search also
// passes through partitioned-stuck rounds before it succeeds).
TEST(CheckpointResumeTest, ZkNet1PartitionSerialResumeIsByteIdentical) {
  ExpectResumeMatchesUninterrupted("zk-net-1", 1);
}

TEST(CheckpointResumeTest, HdNet1DropEightThreadResumeIsByteIdentical) {
  ExpectResumeMatchesUninterrupted("hd-net-1", 8);
}

// Storm-scale case: a mid-search kill/resume over a ~6×10⁴-instance
// candidate space must land on the identical script — the incremental
// engine's restored state (F_i / k*_i / untried budgets recomputed from the
// checkpoint's priorities + tried set) has to agree with the uninterrupted
// engine at full scale, not just on the Table 5 registry.
TEST(CheckpointResumeTest, CaStorm1SerialResumeIsByteIdentical) {
  ExpectResumeMatchesUninterrupted("ca-storm-1", 1);
}

TEST(CheckpointResumeTest, NetworkConfigIsPersistedInCheckpoint) {
  const systems::FailureCase* failure_case = systems::FindCase("hd-net-2");
  ASSERT_NE(failure_case, nullptr);
  systems::BuiltCase built = systems::BuildCase(*failure_case);
  ExplorerOptions options = OptionsForCase(*failure_case, 1);
  options.max_rounds = 2;
  std::string path = TempPath("network_config.json");
  RunSearch(built, options, CheckpointConfig{path, nullptr});
  SearchCheckpoint snap;
  std::string error;
  ASSERT_TRUE(LoadCheckpointFile(path, &snap, &error)) << error;
  EXPECT_TRUE(snap.network_candidates);
  EXPECT_EQ(snap.partition_heal_ms, built.cluster.partition_heal_ms);
  EXPECT_EQ(snap.network_delay_ms, built.cluster.network_delay_ms);
  std::remove(path.c_str());
}

TEST(CheckpointResumeTest, CheckpointWrittenAfterEveryFinishedRound) {
  const systems::FailureCase* failure_case = systems::FindCase("zk-2247");
  ASSERT_NE(failure_case, nullptr);
  systems::BuiltCase built = systems::BuildCase(*failure_case);
  ExplorerOptions options = OptionsForCase(*failure_case, 1);
  options.max_rounds = 2;
  std::string path = TempPath("every_round.json");
  RunSearch(built, options, CheckpointConfig{path, nullptr});
  SearchCheckpoint snap;
  std::string error;
  ASSERT_TRUE(LoadCheckpointFile(path, &snap, &error)) << error;
  EXPECT_EQ(snap.rounds_completed, 2);
  EXPECT_EQ(snap.program_fingerprint, ProgramFingerprint(*built.spec.program));
  EXPECT_EQ(snap.base_seed, built.spec.base_seed);
  std::remove(path.c_str());
}

// --- crash/stall scenario registry ---------------------------------------------

TEST(CrashStallScenarioTest, RegistryIsSeparateFromTable5Set) {
  EXPECT_EQ(systems::AllCases().size(), 22u);
  ASSERT_GE(systems::CrashStallCases().size(), 2u);
  bool has_crash = false;
  bool has_stall = false;
  for (const systems::FailureCase& failure_case : systems::CrashStallCases()) {
    has_crash |= failure_case.root_kind == interp::FaultKind::kCrash;
    has_stall |= failure_case.root_kind == interp::FaultKind::kStall;
    // Reachable through FindCase like every other case.
    EXPECT_EQ(systems::FindCase(failure_case.id), &failure_case);
  }
  EXPECT_TRUE(has_crash);
  EXPECT_TRUE(has_stall);
}

TEST(CrashStallScenarioTest, ScenariosReproduceAndReplayDeterministically) {
  for (const systems::FailureCase& failure_case : systems::CrashStallCases()) {
    SCOPED_TRACE(failure_case.id);
    systems::BuiltCase built = systems::BuildCase(failure_case);
    ExplorerOptions options = OptionsForCase(failure_case, 1);
    ASSERT_TRUE(options.crash_stall_candidates);
    ExploreResult result = RunSearch(built, options);
    ASSERT_TRUE(result.reproduced);
    ASSERT_TRUE(result.script.has_value());
    EXPECT_NE(result.script->kind, interp::FaultKind::kException)
        << "reachable only via crash/stall by construction";
    // The search visited crash and hang outcomes on the way.
    EXPECT_GT(result.experiment.crashed_rounds, 0);
    EXPECT_GT(result.experiment.hung_rounds, 0);
    // The emitted script replays deterministically.
    EXPECT_TRUE(Explorer::Replay(built.spec, *result.script));
  }
}

TEST(CrashStallScenarioTest, ExceptionOnlySearchCannotReachCrashScenarios) {
  // Without crash_stall_candidates the candidate space contains no crash or
  // stall instances, so the oracle can never be satisfied.
  for (const systems::FailureCase& failure_case : systems::CrashStallCases()) {
    SCOPED_TRACE(failure_case.id);
    systems::BuiltCase built = systems::BuildCase(failure_case);
    ExplorerOptions options;
    options.num_threads = 1;
    options.crash_stall_candidates = false;
    options.max_rounds = 150;  // bounded: this search is expected to fail
    ExploreResult result = RunSearch(built, options);
    EXPECT_FALSE(result.reproduced);
  }
}

}  // namespace
}  // namespace anduril::explorer
