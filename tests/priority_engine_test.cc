// Differential harness for the incremental priority engine.
//
// The contract under test: ExplorerOptions::full_rerank — the per-round
// recompute-everything reference implementation of stage-1 ranking — and the
// default incremental engine are byte-identical. Over every registered
// failure case, at 1/2/8 worker threads, both paths must emit the same
// ReproductionScript text and seed, the same round count, and the same
// per-round (F_i, k*) ordering (compared via the rank-audit hash the
// strategy pushes per round; a mismatch reports the first diverging round).
//
// Plus: a randomized dirty-set fuzz (incremental ApplyDeltas against a
// from-scratch Reset on every round), the storm-scale candidate-space
// floor, and unit tests for the arena the engine's scratch lives on.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "src/explorer/context.h"
#include "src/explorer/explorer.h"
#include "src/explorer/priority_engine.h"
#include "src/explorer/strategy.h"
#include "src/systems/common.h"
#include "src/util/arena.h"
#include "tests/test_util.h"

namespace anduril::explorer {
namespace {

// --- differential search harness -------------------------------------------------

struct AuditedSearch {
  ExploreResult result;
  std::vector<uint64_t> audit;  // one stage-1 rank hash per round
};

AuditedSearch RunAudited(const systems::BuiltCase& built, ExplorerOptions options,
                         bool full_rerank) {
  options.full_rerank = full_rerank;
  Explorer explorer(built.spec, options);
  std::unique_ptr<InjectionStrategy> strategy = MakeFullFeedbackStrategy();
  AuditedSearch out;
  strategy->SetRankAuditSink(&out.audit);
  out.result = explorer.Explore(strategy.get());
  return out;
}

// Runs `built` under both ranking paths and asserts they are
// indistinguishable: same reproduction outcome, byte-identical script, same
// seed, same round counts, and the same per-round stage-1 ordering.
void ExpectEnginesIndistinguishable(const systems::BuiltCase& built,
                                    const ExplorerOptions& options) {
  AuditedSearch incremental = RunAudited(built, options, /*full_rerank=*/false);
  AuditedSearch full = RunAudited(built, options, /*full_rerank=*/true);

  // Per-round ordering first: if the searches diverge, the earliest diverging
  // ranking is the actionable datum, not the downstream script difference.
  size_t shared = std::min(incremental.audit.size(), full.audit.size());
  for (size_t round = 0; round < shared; ++round) {
    ASSERT_EQ(incremental.audit[round], full.audit[round])
        << "stage-1 rankings first diverge at round " << round + 1 << " of "
        << shared << " (incremental hash " << incremental.audit[round]
        << ", full-rerank hash " << full.audit[round] << ")";
  }
  EXPECT_EQ(incremental.audit.size(), full.audit.size());

  EXPECT_EQ(incremental.result.reproduced, full.result.reproduced);
  EXPECT_EQ(incremental.result.rounds, full.result.rounds);
  EXPECT_EQ(incremental.result.experiment.total_rounds(),
            full.result.experiment.total_rounds());
  ASSERT_EQ(incremental.result.script.has_value(), full.result.script.has_value());
  if (incremental.result.script.has_value()) {
    EXPECT_EQ(incremental.result.script->ToText(*built.spec.program),
              full.result.script->ToText(*built.spec.program));
    EXPECT_EQ(incremental.result.script->seed, full.result.script->seed);
  }
}

void SweepRegistry(const std::vector<systems::FailureCase>& registry,
                   std::initializer_list<int> thread_counts, int max_rounds = 0) {
  for (const systems::FailureCase& failure_case : registry) {
    systems::BuiltCase built = systems::BuildCase(failure_case);
    for (int threads : thread_counts) {
      SCOPED_TRACE(failure_case.id + " @" + std::to_string(threads) + " threads");
      ExplorerOptions options = systems::OptionsForCase(failure_case, threads);
      if (max_rounds > 0) {
        options.max_rounds = max_rounds;
      }
      ExpectEnginesIndistinguishable(built, options);
    }
  }
}

TEST(PriorityEngineDifferentialTest, Table5RegistryAllThreadCounts) {
  SweepRegistry(systems::AllCases(), {1, 2, 8});
}

TEST(PriorityEngineDifferentialTest, CrashStallRegistryAllThreadCounts) {
  SweepRegistry(systems::CrashStallCases(), {1, 2, 8});
}

TEST(PriorityEngineDifferentialTest, NetworkRegistryAllThreadCounts) {
  SweepRegistry(systems::NetworkCases(), {1, 2, 8});
}

TEST(PriorityEngineDifferentialTest, CascadeRegistryAllThreadCounts) {
  // Cascading cases need chain mode to reproduce; the single-fault search
  // never succeeds on them, which makes them the non-reproducing half of the
  // contract: both paths must walk the identical 40-round trajectory and
  // agree that it fails.
  SweepRegistry(systems::CascadeCases(), {1, 2, 8}, /*max_rounds=*/40);
}

TEST(PriorityEngineDifferentialTest, StormCassandraAllThreadCounts) {
  SweepRegistry({*systems::FindCase("ca-storm-1")}, {1, 2, 8});
}

TEST(PriorityEngineDifferentialTest, StormZooKeeperAllThreadCounts) {
  SweepRegistry({*systems::FindCase("zk-storm-1")}, {1, 2, 8});
}

TEST(PriorityEngineDifferentialTest, SeedSweep) {
  // The equivalence is per-seed, not just at each case's stock explore_seed:
  // re-run representative cases (one per root-fault family, plus a storm)
  // under swept base seeds.
  for (const char* id : {"zk-2247", "hd-4233", "zk-net-1", "ca-storm-1"}) {
    const systems::FailureCase* failure_case = systems::FindCase(id);
    ASSERT_NE(failure_case, nullptr);
    systems::BuiltCase built = systems::BuildCase(*failure_case);
    for (uint64_t seed : {7ull, 1234ull}) {
      SCOPED_TRACE(std::string(id) + " seed=" + std::to_string(seed));
      built.spec.base_seed = seed;
      ExpectEnginesIndistinguishable(built, systems::OptionsForCase(*failure_case, 1));
    }
  }
}

// --- storm-scale candidate space -------------------------------------------------

TEST(StormScaleTest, StormCasesHaveAtLeastFiftyThousandDynamicInstances) {
  ASSERT_EQ(systems::StormCases().size(), 2u);
  // The Table 5 set must stay exactly 22: storms live in their own registry.
  EXPECT_EQ(systems::AllCases().size(), 22u);
  for (const systems::FailureCase& failure_case : systems::StormCases()) {
    SCOPED_TRACE(failure_case.id);
    EXPECT_EQ(systems::FindCase(failure_case.id), &failure_case);
    systems::BuiltCase built = systems::BuildCase(failure_case);
    ExplorerOptions options = systems::OptionsForCase(failure_case, 1);
    ExplorerContext context(built.spec, options);
    int64_t instances = 0;
    for (const FaultCandidate& candidate : context.candidates()) {
      instances += static_cast<int64_t>(context.InstancesOf(candidate.site).size());
    }
    EXPECT_GE(instances, 50'000) << "storm case lost its scale";
  }
}

TEST(StormScaleTest, BlindBaselineCapsOutWhereFeedbackReproduces) {
  // The Table 2 shape in miniature: at storm scale the blind execution-order
  // baseline burns a 150-round budget on the first sliver of the space,
  // while the feedback search still reproduces within the stock budget.
  const systems::FailureCase* failure_case = systems::FindCase("ca-storm-1");
  ASSERT_NE(failure_case, nullptr);
  systems::BuiltCase built = systems::BuildCase(*failure_case);
  ExplorerOptions options = systems::OptionsForCase(*failure_case, 1);

  ExplorerOptions capped = options;
  capped.max_rounds = 150;
  Explorer blind_explorer(built.spec, capped);
  std::unique_ptr<InjectionStrategy> blind = MakeExhaustiveStrategy();
  EXPECT_FALSE(blind_explorer.Explore(blind.get()).reproduced);

  ExploreResult full = systems::RunSearch(built, options);
  EXPECT_TRUE(full.reproduced);
}

// --- dirty-set invariant fuzz ----------------------------------------------------

EngineSpec RandomSpec(std::mt19937* rng, size_t candidates, size_t observables) {
  EngineSpec spec;
  spec.observables = observables;
  spec.rows.resize(candidates);
  spec.boosts.assign(candidates, 0);
  spec.instance_counts.assign(candidates, 1);
  std::uniform_int_distribution<size_t> row_len(0, 6);
  std::uniform_int_distribution<uint32_t> pick_obs(0, static_cast<uint32_t>(observables) - 1);
  std::uniform_int_distribution<int64_t> pick_dist(0, 50);
  std::uniform_int_distribution<int64_t> pick_instances(1, 5);
  std::uniform_int_distribution<int> pick_boost(0, 9);
  for (size_t i = 0; i < candidates; ++i) {
    size_t len = row_len(*rng);  // 0 = unreachable row (never active)
    std::vector<bool> used(observables, false);
    for (size_t j = 0; j < len; ++j) {
      uint32_t k = pick_obs(*rng);
      if (used[k]) {
        continue;
      }
      used[k] = true;
      spec.rows[i].emplace_back(k, pick_dist(*rng));
    }
    spec.instance_counts[i] = pick_instances(*rng);
    if (pick_boost(*rng) == 0) {
      spec.boosts[i] = kStitchBoost;
    }
  }
  return spec;
}

// Collects the engine's full active-candidate visit order (the top-k heap
// drained to exhaustion) plus its per-candidate state, for equality checks.
struct EngineView {
  std::vector<std::pair<size_t, size_t>> visit_order;  // (candidate, best k)
  std::vector<int64_t> effective;
  std::vector<bool> finite;
  std::vector<int64_t> untried;
  uint64_t rank_hash = 0;

  static EngineView Of(PriorityEngine& engine) {
    EngineView view;
    engine.VisitActive([&](size_t candidate, size_t best_k) {
      view.visit_order.emplace_back(candidate, best_k);
      return true;
    });
    for (size_t i = 0; i < engine.num_candidates(); ++i) {
      view.finite.push_back(engine.Finite(i));
      view.effective.push_back(engine.Finite(i) ? engine.EffectivePriority(i) : 0);
      view.untried.push_back(engine.Untried(i));
    }
    view.rank_hash = engine.RankAuditHash();
    return view;
  }

  friend bool operator==(const EngineView&, const EngineView&) = default;
};

TEST(PriorityEngineFuzzTest, IncrementalDeltasMatchFromScratchRecompute) {
  std::mt19937 rng(0x5eed);
  constexpr size_t kCandidates = 500;
  constexpr size_t kObservables = 40;
  constexpr int kRounds = 120;

  EngineSpec spec = RandomSpec(&rng, kCandidates, kObservables);
  PriorityEngine incremental(spec);
  PriorityEngine reference(spec);

  std::vector<int64_t> priorities(kObservables, 0);
  std::vector<size_t> retired;  // replayed into `reference` after each Reset
  std::uniform_int_distribution<size_t> num_moves(1, 8);
  std::uniform_int_distribution<size_t> pick_obs(0, kObservables - 1);
  std::uniform_int_distribution<int64_t> pick_delta(-3, 3);
  std::uniform_int_distribution<size_t> pick_candidate(0, kCandidates - 1);
  std::uniform_int_distribution<int> retire_gate(0, 3);

  for (int round = 0; round < kRounds; ++round) {
    // Random feedback moves, applied incrementally to one engine and via a
    // full from-scratch recompute to the other.
    std::vector<std::pair<size_t, int64_t>> deltas;
    size_t moves = num_moves(rng);
    for (size_t m = 0; m < moves; ++m) {
      size_t k = pick_obs(rng);
      int64_t delta = pick_delta(rng);
      if (delta == 0) {
        continue;
      }
      priorities[k] += delta;
      deltas.emplace_back(k, delta);
    }
    incremental.ApplyDeltas(deltas);
    reference.Reset(priorities);
    for (size_t index : retired) {
      reference.NoteTriedIndex(index);
    }

    // Random retirements (both engines, same order).
    if (retire_gate(rng) == 0) {
      size_t index = pick_candidate(rng);
      if (incremental.Finite(index) && incremental.Untried(index) > 0) {
        incremental.NoteTriedIndex(index);
        reference.NoteTriedIndex(index);
        retired.push_back(index);
      }
    }

    ASSERT_EQ(EngineView::Of(incremental), EngineView::Of(reference))
        << "dirty-set maintenance diverged from the from-scratch recompute at "
        << "fuzz round " << round;
  }
}

TEST(PriorityEngineFuzzTest, StitchBoostOrdersAheadOfUnboosted) {
  // A boosted candidate with a worse raw F must still outrank an unboosted
  // one: the boost is part of the effective priority the heap orders by.
  EngineSpec spec;
  spec.observables = 1;
  spec.rows = {{{0, 10}}, {{0, 1}}};
  spec.boosts = {kStitchBoost, 0};
  spec.instance_counts = {1, 1};
  PriorityEngine engine(spec);
  std::vector<std::pair<size_t, size_t>> order;
  std::function<bool(size_t, size_t)> visit = [&](size_t candidate, size_t best_k) {
    order.emplace_back(candidate, best_k);
    return true;
  };
  engine.VisitActive(visit);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0].first, 0u);
  EXPECT_EQ(order[1].first, 1u);
}

TEST(PriorityEngineFuzzTest, ExhaustionMatchesUntriedBudgets) {
  EngineSpec spec;
  spec.observables = 1;
  spec.rows = {{{0, 5}}, {{0, 7}}};
  spec.boosts = {0, 0};
  spec.instance_counts = {2, 1};
  PriorityEngine engine(spec);
  EXPECT_TRUE(engine.AnyActive());
  engine.NoteTriedIndex(0);
  engine.NoteTriedIndex(1);
  EXPECT_TRUE(engine.AnyActive()) << "candidate 0 still has one untried instance";
  engine.NoteTriedIndex(0);
  EXPECT_FALSE(engine.AnyActive());
}

// --- arena -----------------------------------------------------------------------

TEST(ArenaTest, AllocationsAreAlignedAndDistinct) {
  Arena arena;
  int32_t* a = arena.Allocate<int32_t>(3);
  int64_t* b = arena.Allocate<int64_t>(2);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % alignof(int32_t), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % alignof(int64_t), 0u);
  a[0] = 1;
  a[2] = 3;
  b[0] = 4;
  b[1] = 5;
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(a[2], 3);
  EXPECT_EQ(b[1], 5);
}

TEST(ArenaTest, ResetReusesCapacityWithoutGrowth) {
  Arena arena;
  for (int i = 0; i < 4; ++i) {
    arena.Allocate<int64_t>(1000);
  }
  size_t capacity = arena.capacity_bytes();
  EXPECT_GT(capacity, 0u);
  for (int cycle = 0; cycle < 10; ++cycle) {
    arena.Reset();
    for (int i = 0; i < 4; ++i) {
      arena.Allocate<int64_t>(1000);
    }
  }
  EXPECT_EQ(arena.capacity_bytes(), capacity)
      << "steady-state Reset/alloc cycles must not grow the arena";
}

TEST(ArenaTest, ArenaVecPushAndClear) {
  Arena arena;
  ArenaVec<uint32_t> vec(&arena);
  for (uint32_t i = 0; i < 1000; ++i) {
    vec.push_back(i);
  }
  ASSERT_EQ(vec.size(), 1000u);
  EXPECT_EQ(vec[0], 0u);
  EXPECT_EQ(vec[999], 999u);
  vec.clear();
  EXPECT_TRUE(vec.empty());
  vec.push_back(42);
  ASSERT_EQ(vec.size(), 1u);
  EXPECT_EQ(vec[0], 42u);
}

}  // namespace
}  // namespace anduril::explorer
