// Determinism tests for the parallel exploration engine: with a fixed seed,
// the explorer must emit the same ReproductionScript and round count at
// every thread count (1, 2, 8), in every execution mode (single run per
// round, combined repetitions, speculative parallel candidates), on real
// failure cases. This is the engine's headline invariant — parallelism only
// changes wall-clock time, never the search outcome.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/explorer/explorer.h"
#include "src/explorer/iterative.h"
#include "src/systems/common.h"
#include "tests/test_util.h"

namespace anduril::explorer {
namespace {

struct Outcome {
  bool reproduced = false;
  int rounds = 0;
  std::string script_text;
  std::optional<ReproductionScript> script;
  std::vector<int> present_observables;
};

Outcome RunCase(const systems::BuiltCase& built, const ExplorerOptions& options) {
  ExploreResult result = RunSearch(built, options);
  Outcome outcome;
  outcome.reproduced = result.reproduced;
  outcome.rounds = result.rounds;
  outcome.script = result.script;
  if (result.script.has_value()) {
    outcome.script_text = result.script->ToText(*built.spec.program);
  }
  for (const RoundRecord& record : result.records) {
    outcome.present_observables.push_back(record.present_observables);
  }
  return outcome;
}

void ExpectIdenticalAcrossThreadCounts(const std::string& case_id,
                                       ExplorerOptions options) {
  const systems::FailureCase* failure_case = systems::FindCase(case_id);
  ASSERT_NE(failure_case, nullptr) << case_id;
  systems::BuiltCase built = systems::BuildCase(*failure_case);

  options.num_threads = 1;
  Outcome serial = RunCase(built, options);
  ASSERT_TRUE(serial.reproduced) << case_id;
  ASSERT_TRUE(serial.script.has_value()) << case_id;
  EXPECT_TRUE(Explorer::Replay(built.spec, *serial.script)) << case_id;

  for (int threads : {2, 8}) {
    options.num_threads = threads;
    Outcome parallel = RunCase(built, options);
    EXPECT_EQ(parallel.reproduced, serial.reproduced) << case_id << " threads=" << threads;
    EXPECT_EQ(parallel.rounds, serial.rounds) << case_id << " threads=" << threads;
    EXPECT_EQ(parallel.script_text, serial.script_text)
        << case_id << " threads=" << threads;
    EXPECT_EQ(parallel.present_observables, serial.present_observables)
        << case_id << " threads=" << threads;
  }
}

// --- single run per round -----------------------------------------------------

TEST(ParallelDeterminism, HdfsSingleRunPerRound) {
  ExplorerOptions options;
  ExpectIdenticalAcrossThreadCounts("hd-4233", options);
}

TEST(ParallelDeterminism, ZooKeeperSingleRunPerRound) {
  ExplorerOptions options;
  ExpectIdenticalAcrossThreadCounts("zk-2247", options);
}

// --- network-fault candidate space --------------------------------------------

// The widened (network_candidates) space must preserve the headline
// invariant too: seed-derived delays, partition state, and duplicate
// deliveries are all pure functions of (round, candidate), never of thread
// scheduling.
TEST(ParallelDeterminism, NetworkPartitionCase) {
  ExplorerOptions options;
  options.network_candidates = true;
  ExpectIdenticalAcrossThreadCounts("zk-net-1", options);
}

TEST(ParallelDeterminism, NetworkDelayCase) {
  ExplorerOptions options;
  options.network_candidates = true;
  ExpectIdenticalAcrossThreadCounts("hd-net-2", options);
}

// --- combined repetitions (§6) ------------------------------------------------

TEST(ParallelDeterminism, HdfsMultiRepetition) {
  ExplorerOptions options;
  options.runs_per_round = 4;
  ExpectIdenticalAcrossThreadCounts("hd-4233", options);
}

TEST(ParallelDeterminism, ZooKeeperMultiRepetition) {
  ExplorerOptions options;
  options.runs_per_round = 4;
  ExpectIdenticalAcrossThreadCounts("zk-2247", options);
}

// --- speculative window evaluation --------------------------------------------

TEST(ParallelDeterminism, HdfsParallelCandidates) {
  ExplorerOptions options;
  options.parallel_candidates = true;
  ExpectIdenticalAcrossThreadCounts("hd-4233", options);
}

TEST(ParallelDeterminism, ZooKeeperParallelCandidates) {
  ExplorerOptions options;
  options.parallel_candidates = true;
  ExpectIdenticalAcrossThreadCounts("zk-2247", options);
}

// --- reproduction scripts replay regardless of the thread count they came from

TEST(ParallelDeterminism, ParallelScriptReplays) {
  const systems::FailureCase* failure_case = systems::FindCase("zk-2247");
  ASSERT_NE(failure_case, nullptr);
  systems::BuiltCase built = systems::BuildCase(*failure_case);
  ExplorerOptions options;
  options.num_threads = 4;
  options.runs_per_round = 3;
  Explorer explorer(built.spec, options);
  auto strategy = MakeFullFeedbackStrategy();
  ExploreResult result = explorer.Explore(strategy.get());
  ASSERT_TRUE(result.reproduced);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(Explorer::Replay(built.spec, *result.script));
  }
}

// --- the parallel-candidates mode reproduces and its feedback is a superset ---

TEST(ParallelCandidates, ReproducesAndConvergesNoSlower) {
  const systems::FailureCase* failure_case = systems::FindCase("hd-4233");
  ASSERT_NE(failure_case, nullptr);
  systems::BuiltCase built = systems::BuildCase(*failure_case);

  ExplorerOptions serial_options;
  Outcome serial = RunCase(built, serial_options);
  ASSERT_TRUE(serial.reproduced);

  ExplorerOptions speculative_options;
  speculative_options.parallel_candidates = true;
  speculative_options.num_threads = 4;
  Outcome speculative = RunCase(built, speculative_options);
  ASSERT_TRUE(speculative.reproduced);
  // Evaluating every window candidate per round can only retire candidates
  // at least as fast as arming the whole window in one run.
  EXPECT_LE(speculative.rounds, serial.rounds);
}

// --- shared analysis cache ----------------------------------------------------

TEST(SharedContext, ExplorersShareOneAnalysis) {
  const systems::FailureCase* failure_case = systems::FindCase("zk-2247");
  ASSERT_NE(failure_case, nullptr);
  systems::BuiltCase built = systems::BuildCase(*failure_case);

  ExplorerOptions options;
  Explorer first(built.spec, options);
  std::shared_ptr<const ExplorerContext> cache = first.shared_context();
  Explorer second(built.spec, options, cache);
  EXPECT_EQ(&second.context(), cache.get());

  auto strategy_a = MakeFullFeedbackStrategy();
  auto strategy_b = MakeFullFeedbackStrategy();
  ExploreResult a = first.Explore(strategy_a.get());
  ExploreResult b = second.Explore(strategy_b.get());
  ASSERT_TRUE(a.reproduced);
  ASSERT_TRUE(b.reproduced);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.script->ToText(*built.spec.program), b.script->ToText(*built.spec.program));
}

}  // namespace
}  // namespace anduril::explorer
