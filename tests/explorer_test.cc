#include <gtest/gtest.h>

#include "src/explorer/explorer.h"
#include "src/explorer/strategies/strategy_util.h"
#include "src/interp/log_entry.h"
#include "src/interp/simulator.h"
#include "src/ir/builder.h"

namespace anduril::explorer {
namespace {

using ir::Expr;
using ir::LogLevel;
using ir::MethodBuilder;
using ir::Program;

// A compact but non-trivial experiment: a pipeline with several tolerated
// fault sites plus one whose failure at a specific occurrence corrupts state
// and produces the symptom.
class ExplorerTest : public ::testing::Test {
 protected:
  void Build() {
    program_.DefineException("IOException");
    program_.DefineException("TimeoutException");
    {
      MethodBuilder b(&program_, "svc.process");
      b.TryCatch(
          [&] {
            b.External("svc.read", {"IOException"});
            b.External("svc.transform", {"IOException"});
            b.External("svc.write", {"IOException"});
            b.Assign("done", b.Plus("done", 1));
            b.Log(LogLevel::kInfo, "svc", "Processed item {}", {b.V("done")});
          },
          {{"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "svc", "Item processing failed");
              // BUG: a failure while a checkpoint is pending corrupts state.
              b.If(b.Eq("checkpointPending", 1),
                   [&] { b.Assign("corrupted", Expr::Const(1)); });
            }}});
    }
    {
      MethodBuilder b(&program_, "svc.checkpointer");
      b.Sleep(45);
      b.Assign("checkpointPending", Expr::Const(1));
      b.Log(LogLevel::kInfo, "svc", "Checkpoint window open");
      b.Sleep(30);
      b.Assign("checkpointPending", Expr::Const(0));
      b.If(b.Eq("corrupted", 1), [&] {
        b.Log(LogLevel::kError, "svc", "State corrupted during checkpoint window");
      });
    }
    {
      MethodBuilder b(&program_, "client.pump");
      b.While(b.Lt("sent", 15), [&] {
        b.Assign("sent", b.Plus("sent", 1));
        b.Send("svc.process", "server", ir::SendOpts{.payload = b.V("sent")});
        b.Sleep(8);
      });
    }
    program_.Finalize();
    cluster_.AddNode("server");
    cluster_.AddNode("client");
    cluster_.AddTask("client", "pump", program_.FindMethod("client.pump"), 0);
    cluster_.AddTask("server", "Checkpointer", program_.FindMethod("svc.checkpointer"), 0);

    // Produce the failure log with the ground truth: svc.write fails at an
    // occurrence inside the checkpoint window.
    ground_truth_.site = Site("svc.write");
    ground_truth_.occurrence = 7;
    ground_truth_.type = program_.FindException("IOException");
    interp::FaultRuntime runtime(&program_);
    runtime.SetWindow({ground_truth_});
    interp::Simulator simulator(&program_, &cluster_, /*seed=*/555, &runtime);
    interp::RunResult failure = simulator.Run();
    ASSERT_TRUE(failure.injected.has_value());
    ASSERT_TRUE(Oracle()(program_, failure));

    spec_.program = &program_;
    spec_.cluster = &cluster_;
    spec_.failure_log_text = interp::FormatLogFile(failure.log);
    spec_.oracle = Oracle();
    spec_.base_seed = 1;
  }

  static explorer::Oracle Oracle() {
    return [](const ir::Program&, const interp::RunResult& run) {
      return run.HasLogContaining(ir::LogLevel::kError,
                                  "State corrupted during checkpoint window");
    };
  }

  ir::FaultSiteId Site(const std::string& prefix) const {
    for (const ir::FaultSite& site : program_.fault_sites()) {
      if (site.name.find(prefix + "@") == 0) {
        return site.id;
      }
    }
    return ir::kInvalidId;
  }

  Program program_;
  interp::ClusterSpec cluster_;
  interp::InjectionCandidate ground_truth_;
  ExperimentSpec spec_;
};

// --- context construction -------------------------------------------------------

TEST_F(ExplorerTest, ContextExtractsObservablesAndCandidates) {
  Build();
  ExplorerOptions options;
  ExplorerContext context(spec_, options);
  // The symptom ERROR and the WARN from the injection path must be relevant
  // observables.
  bool symptom = false;
  bool warn = false;
  for (const ObservableInfo& observable : context.observables()) {
    symptom |= observable.key.find("State corrupted") != std::string::npos;
    warn |= observable.key.find("Item processing failed") != std::string::npos;
  }
  EXPECT_TRUE(symptom);
  EXPECT_TRUE(warn);
  EXPECT_FALSE(context.candidates().empty());

  // Injectable candidates must include all three pipeline sites.
  bool write_found = false;
  for (const FaultCandidate& candidate : context.candidates()) {
    if (candidate.site == Site("svc.write")) {
      write_found = true;
    }
  }
  EXPECT_TRUE(write_found);
}

TEST_F(ExplorerTest, ContextInstancesCoverNormalTrace) {
  Build();
  ExplorerOptions options;
  ExplorerContext context(spec_, options);
  const auto& instances = context.InstancesOf(Site("svc.write"));
  EXPECT_GE(instances.size(), 10u);
  // failure positions must be within the failure log.
  for (const InstanceEstimate& instance : instances) {
    EXPECT_GE(instance.failure_pos, 0);
    EXPECT_LE(instance.failure_pos,
              static_cast<int64_t>(context.failure_log().lines.size()));
  }
}

TEST_F(ExplorerTest, DistancesAreFiniteOnlyForConnectedPairs) {
  Build();
  ExplorerOptions options;
  ExplorerContext context(spec_, options);
  bool some_finite = false;
  for (size_t c = 0; c < context.candidates().size(); ++c) {
    for (size_t k = 0; k < context.observables().size(); ++k) {
      if (context.Distance(c, k) != analysis::CausalGraph::kUnreachable) {
        some_finite = true;
        EXPECT_GE(context.Distance(c, k), 0);
      }
    }
  }
  EXPECT_TRUE(some_finite);
}

// --- search ------------------------------------------------------------------------

TEST_F(ExplorerTest, FullFeedbackReproduces) {
  Build();
  ExplorerOptions options;
  Explorer ex(spec_, options);
  auto strategy = MakeFullFeedbackStrategy();
  ExploreResult result = ex.Explore(strategy.get());
  ASSERT_TRUE(result.reproduced);
  ASSERT_TRUE(result.script.has_value());
  // All three pipeline sites share the buggy catch block, so any of them at
  // an occurrence inside the checkpoint window is a true root cause.
  EXPECT_TRUE(result.script->site == Site("svc.read") ||
              result.script->site == Site("svc.transform") ||
              result.script->site == Site("svc.write"));
}

TEST_F(ExplorerTest, ReproductionScriptReplaysDeterministically) {
  Build();
  ExplorerOptions options;
  Explorer ex(spec_, options);
  auto strategy = MakeFullFeedbackStrategy();
  ExploreResult result = ex.Explore(strategy.get());
  ASSERT_TRUE(result.reproduced);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(Explorer::Replay(spec_, *result.script));
  }
}

TEST_F(ExplorerTest, EveryStrategyInterfaceRuns) {
  Build();
  for (const char* name : {"full", "exhaustive", "site-distance", "site-distance-limit",
                           "site-feedback", "multiply", "stacktrace", "fate", "crashtuner"}) {
    ExplorerOptions options;
    options.max_rounds = 400;
    Explorer ex(spec_, options);
    auto strategy = MakeStrategy(name);
    EXPECT_EQ(strategy->name(), name);
    ExploreResult result = ex.Explore(strategy.get());
    // Every strategy terminates; the targeted ones must reproduce.
    if (std::string(name) == "full" || std::string(name) == "multiply") {
      EXPECT_TRUE(result.reproduced) << name;
    }
  }
}

TEST_F(ExplorerTest, FullBeatsExhaustiveInRounds) {
  Build();
  ExplorerOptions options;
  options.max_rounds = 500;
  int full_rounds = 0;
  int exhaustive_rounds = 0;
  {
    Explorer ex(spec_, options);
    auto strategy = MakeStrategy("full");
    ExploreResult result = ex.Explore(strategy.get());
    ASSERT_TRUE(result.reproduced);
    full_rounds = result.rounds;
  }
  {
    Explorer ex(spec_, options);
    auto strategy = MakeStrategy("exhaustive");
    ExploreResult result = ex.Explore(strategy.get());
    exhaustive_rounds = result.reproduced ? result.rounds : options.max_rounds;
  }
  EXPECT_LE(full_rounds, exhaustive_rounds);
}

TEST_F(ExplorerTest, TrackedRankIsReported) {
  Build();
  ExplorerOptions options;
  options.track_site = ground_truth_.site;
  Explorer ex(spec_, options);
  auto strategy = MakeFullFeedbackStrategy();
  ExploreResult result = ex.Explore(strategy.get());
  ASSERT_FALSE(result.records.empty());
  EXPECT_GE(result.records.front().tracked_rank, 1);
}

TEST_F(ExplorerTest, MaxRoundsLimitsSearch) {
  Build();
  ExplorerOptions options;
  options.max_rounds = 1;
  Explorer ex(spec_, options);
  // An impossible oracle: never reproduced.
  ExperimentSpec hard = spec_;
  hard.oracle = [](const ir::Program&, const interp::RunResult&) { return false; };
  Explorer ex2(hard, options);
  auto strategy = MakeFullFeedbackStrategy();
  ExploreResult result = ex2.Explore(strategy.get());
  EXPECT_FALSE(result.reproduced);
  EXPECT_LE(result.rounds, 1);
}

TEST_F(ExplorerTest, UnreproducibleFailureExhaustsOrHitsBudget) {
  Build();
  ExperimentSpec hard = spec_;
  hard.oracle = [](const ir::Program&, const interp::RunResult&) { return false; };
  ExplorerOptions options;
  options.max_rounds = 3000;
  Explorer ex(hard, options);
  auto strategy = MakeStrategy("exhaustive");
  ExploreResult result = ex.Explore(strategy.get());
  EXPECT_FALSE(result.reproduced);
  // Exhaustive enumerates a finite instance list, so it must stop early.
  EXPECT_LT(result.rounds, options.max_rounds);
}

// --- feedback unit behavior ----------------------------------------------------------

TEST_F(ExplorerTest, FeedbackStateDeprioritizesPresentObservables) {
  Build();
  ExplorerOptions options;
  ExplorerContext context(spec_, options);
  FeedbackState feedback;
  feedback.Initialize(context);
  for (size_t k = 0; k < context.observables().size(); ++k) {
    EXPECT_EQ(feedback.priority(k), 0);
  }
  std::vector<std::string> present{context.observables()[0].key};
  feedback.Digest(present, /*adjustment=*/1);
  EXPECT_EQ(feedback.priority(0), 1);
  for (size_t k = 1; k < context.observables().size(); ++k) {
    EXPECT_EQ(feedback.priority(k), 0);
  }
  feedback.Digest(present, /*adjustment=*/5);
  EXPECT_EQ(feedback.priority(0), 6);
}

TEST_F(ExplorerTest, TemporalDistanceMinOverPositions) {
  InstanceEstimate instance{3, 50};
  EXPECT_EQ(TemporalDistance(instance, {10, 47, 90}), 3);
  EXPECT_EQ(TemporalDistance(instance, {50}), 0);
  EXPECT_EQ(TemporalDistance(instance, {}), 0);
  EXPECT_EQ(TemporalDistance(instance, {100}), 50);
}

// --- window behavior -----------------------------------------------------------------

TEST_F(ExplorerTest, WindowNeverExceedsConfiguredSizeInitially) {
  Build();
  ExplorerOptions options;
  options.initial_window = 3;
  Explorer ex(spec_, options);
  auto strategy = MakeFullFeedbackStrategy();
  strategy->Initialize(ex.context());
  auto window = strategy->NextWindow();
  EXPECT_LE(window.size(), 3u);
  EXPECT_FALSE(window.empty());
}

TEST_F(ExplorerTest, WindowDoublesWhenNothingInjected) {
  Build();
  ExplorerOptions options;
  options.initial_window = 2;
  Explorer ex(spec_, options);
  auto strategy = MakeFullFeedbackStrategy();
  strategy->Initialize(ex.context());
  (void)strategy->NextWindow();
  RoundOutcome outcome;
  outcome.round = 1;  // no injection
  strategy->OnRound(outcome);
  auto window = strategy->NextWindow();
  EXPECT_LE(window.size(), 4u);
  EXPECT_GE(window.size(), 3u);  // doubled from 2 (if enough candidates)
}

TEST_F(ExplorerTest, InjectedInstanceIsNotRetried) {
  Build();
  ExplorerOptions options;
  options.initial_window = 1;
  Explorer ex(spec_, options);
  auto strategy = MakeFullFeedbackStrategy();
  strategy->Initialize(ex.context());
  auto first = strategy->NextWindow();
  ASSERT_EQ(first.size(), 1u);
  RoundOutcome outcome;
  outcome.round = 1;
  outcome.injected = first[0];
  strategy->OnRound(outcome);
  auto second = strategy->NextWindow();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_FALSE(first[0] == second[0]);
}

}  // namespace
}  // namespace anduril::explorer
