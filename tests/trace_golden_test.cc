// Golden-trace regression test: a fixed-seed zk-2247 search emits the
// byte-identical logical-timestamp trace and metrics dump at 1, 2, and 8
// worker threads, and across a checkpoint kill + resume — and that exact
// byte stream is checked in under tests/golden/.
//
// To refresh the goldens after an intentional trace/metric change:
//   scripts/update_trace_golden.sh
// (runs this binary with ANDURIL_UPDATE_GOLDENS=1, which rewrites the files
// in the source tree instead of comparing).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/explorer/checkpoint.h"
#include "src/explorer/explorer.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/systems/common.h"
#include "tests/test_util.h"

namespace anduril::explorer {
namespace {

constexpr const char* kCaseId = "zk-2247";

std::string GoldenPath(const std::string& name) {
  return std::string(ANDURIL_GOLDEN_DIR) + "/" + name;
}

bool UpdateGoldens() {
  const char* env = std::getenv("ANDURIL_UPDATE_GOLDENS");
  return env != nullptr && std::string(env) == "1";
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void CompareOrUpdateGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (UpdateGoldens()) {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << actual;
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    return;
  }
  const std::string expected = ReadFileOrEmpty(path);
  ASSERT_FALSE(expected.empty())
      << "golden file " << path << " missing; run scripts/update_trace_golden.sh";
  EXPECT_EQ(actual, expected)
      << "trace/metrics drifted from " << path
      << "; if intentional, run scripts/update_trace_golden.sh";
}

// One searched case with the observability sinks attached. The host
// wall-clock watchdog is disabled (wall_budget_ms = 0) so a slow CI machine
// can never add a retry round that real runs would not have — everything
// left in the trace is a pure function of the seed.
struct TracedSearch {
  std::string trace_jsonl;
  std::string metrics_json;
  ExploreResult result;
};

TracedSearch RunTraced(int threads, int max_rounds = 0) {
  const systems::FailureCase* failure_case = systems::FindCase(kCaseId);
  EXPECT_NE(failure_case, nullptr);
  systems::BuiltCase built = systems::BuildCase(*failure_case);
  built.cluster.wall_budget_ms = 0;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  ExplorerOptions options = OptionsForCase(*failure_case, threads);
  options.tracer = &tracer;
  options.metrics = &metrics;
  if (max_rounds > 0) {
    options.max_rounds = max_rounds;
  }
  TracedSearch traced;
  traced.result = RunSearch(built, options);
  traced.trace_jsonl = tracer.DumpJsonl();  // logical timestamps only
  traced.metrics_json = metrics.DumpJson();
  return traced;
}

TEST(TraceGoldenTest, TraceAndMetricsMatchGoldenAtOneThread) {
  TracedSearch traced = RunTraced(/*threads=*/1);
  ASSERT_TRUE(traced.result.reproduced);
  CompareOrUpdateGolden("zk2247_trace.jsonl", traced.trace_jsonl);
  CompareOrUpdateGolden("zk2247_metrics.json", traced.metrics_json);
}

TEST(TraceGoldenTest, TraceAndMetricsAreByteIdenticalAcrossThreadCounts) {
  TracedSearch serial = RunTraced(/*threads=*/1);
  ASSERT_TRUE(serial.result.reproduced);
  for (int threads : {2, 8}) {
    TracedSearch parallel = RunTraced(threads);
    EXPECT_EQ(parallel.trace_jsonl, serial.trace_jsonl) << "threads=" << threads;
    EXPECT_EQ(parallel.metrics_json, serial.metrics_json) << "threads=" << threads;
  }
}

TEST(TraceGoldenTest, ResultCarriesFinalMetricsSnapshot) {
  TracedSearch traced = RunTraced(/*threads=*/1);
  ASSERT_FALSE(traced.result.metrics.empty());
  obs::MetricsRegistry reloaded;
  reloaded.Restore(traced.result.metrics);
  EXPECT_EQ(reloaded.DumpJson(), traced.metrics_json);
}

// Round-level trace lines: everything except the version header and the
// per-session "explore" envelope span (a resumed session's envelope
// legitimately covers only its own rounds).
std::vector<std::string> RoundLines(const std::string& jsonl) {
  std::vector<std::string> lines;
  std::istringstream in(jsonl);
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (header) {
      header = false;
      continue;
    }
    if (line.find("\"name\":\"explore\"") != std::string::npos) {
      continue;
    }
    lines.push_back(line);
  }
  return lines;
}

TEST(TraceGoldenTest, TraceAndMetricsAreByteIdenticalAcrossCheckpointResume) {
  TracedSearch baseline = RunTraced(/*threads=*/1);
  ASSERT_TRUE(baseline.result.reproduced);
  ASSERT_GT(baseline.result.rounds, 1);

  const systems::FailureCase* failure_case = systems::FindCase(kCaseId);
  ASSERT_NE(failure_case, nullptr);
  const std::string path = TempPath("trace_golden_resume.json");

  // Interrupted session: stop one round short of success, checkpointing.
  systems::BuiltCase built = systems::BuildCase(*failure_case);
  built.cluster.wall_budget_ms = 0;
  obs::Tracer interrupted_tracer;
  obs::MetricsRegistry interrupted_metrics;
  ExplorerOptions options = OptionsForCase(*failure_case, 1);
  options.tracer = &interrupted_tracer;
  options.metrics = &interrupted_metrics;
  options.max_rounds = baseline.result.rounds - 1;
  ExploreResult interrupted = RunSearch(built, options, CheckpointConfig{path, nullptr});
  ASSERT_FALSE(interrupted.reproduced);

  // Resumed session: fresh explorer, tracer, and registry, rebuilt from the
  // checkpoint file alone.
  SearchCheckpoint snap;
  std::string error;
  ASSERT_TRUE(LoadCheckpointFile(path, &snap, &error)) << error;
  ASSERT_TRUE(snap.has_metrics);
  systems::BuiltCase rebuilt = systems::BuildCase(*failure_case);
  rebuilt.cluster.wall_budget_ms = 0;
  obs::Tracer resumed_tracer;
  obs::MetricsRegistry resumed_metrics;
  ExplorerOptions resume_options = OptionsForCase(*failure_case, 1);
  resume_options.tracer = &resumed_tracer;
  resume_options.metrics = &resumed_metrics;
  ExploreResult resumed = RunSearch(rebuilt, resume_options, CheckpointConfig{"", &snap});
  ASSERT_TRUE(resumed.reproduced);

  // The two sessions' round-level trace lines, concatenated, are exactly the
  // uninterrupted search's — same bytes, same order (the resumed rounds all
  // start at later logical timestamps).
  std::vector<std::string> stitched = RoundLines(interrupted_tracer.DumpJsonl());
  std::vector<std::string> resumed_lines = RoundLines(resumed_tracer.DumpJsonl());
  stitched.insert(stitched.end(), resumed_lines.begin(), resumed_lines.end());
  EXPECT_EQ(stitched, RoundLines(baseline.trace_jsonl));

  // The restored registry ends byte-identical to the uninterrupted one.
  EXPECT_EQ(resumed_metrics.DumpJson(), baseline.metrics_json);

  std::remove(path.c_str());
}

}  // namespace
}  // namespace anduril::explorer
