// Deep-dive behavioral tests for the flagship scenarios: these verify the
// seeded bug *mechanics* (not just the oracles), so a refactor of the
// simulated systems cannot silently turn a hard timing bug into a trivial
// one.

#include <gtest/gtest.h>

#include "src/explorer/explorer.h"
#include "src/interp/log_entry.h"
#include "src/systems/common.h"

namespace anduril::systems {
namespace {

interp::RunResult RunWith(const BuiltCase& built, int64_t occurrence,
                          const FailureCase& failure_case) {
  auto candidate = built.ground_truth;
  candidate.occurrence = occurrence;
  return RunOnce(*built.program, built.failure_cluster, failure_case.failure_seed,
                 {candidate});
}

// --- HBase-25905 (f17): the WAL wedge state machine ------------------------------

class Hbase25905Test : public ::testing::Test {
 protected:
  void SetUp() override {
    failure_case_ = FindCase("hb-25905");
    ASSERT_NE(failure_case_, nullptr);
    built_ = BuildCase(*failure_case_);
  }

  const FailureCase* failure_case_ = nullptr;
  BuiltCase built_;
};

TEST_F(Hbase25905Test, FaultFreeRunRollsAndFlushesCleanly) {
  interp::RunResult run =
      RunOnce(*built_.program, built_.failure_cluster, failure_case_->failure_seed);
  EXPECT_TRUE(run.HasLogContaining("WAL rolled, safe point reached"));
  EXPECT_TRUE(run.HasLogContaining("Region flush completed"));
  EXPECT_EQ(run.NodeVar(*built_.program, "rs1", "unackedAppends"), 0);
}

TEST_F(Hbase25905Test, EarlyBreakTripsTheResyncValve) {
  // A break with a large backlog triggers the full-resync safety valve and
  // recovers — the failure needs a *mid-window* break.
  interp::RunResult run = RunWith(built_, 2, *failure_case_);
  ASSERT_TRUE(run.injected.has_value());
  EXPECT_TRUE(run.HasLogContaining("Too many unacked appends, forcing full resync"));
  EXPECT_FALSE(failure_case_->oracle(*built_.program, run));
}

TEST_F(Hbase25905Test, LateBreakDrainsWithinOneBatch) {
  interp::RunResult run = RunWith(built_, 22, *failure_case_);
  ASSERT_TRUE(run.injected.has_value());
  EXPECT_FALSE(failure_case_->oracle(*built_.program, run));
  EXPECT_EQ(run.NodeVar(*built_.program, "rs1", "unackedAppends"), 0);
}

TEST_F(Hbase25905Test, MidWindowBreakWedgesConsumerRollerAndFlusher) {
  interp::RunResult run = RunWith(built_, built_.ground_truth.occurrence, *failure_case_);
  ASSERT_TRUE(run.injected.has_value());
  EXPECT_TRUE(failure_case_->oracle(*built_.program, run));
  // The precise stale state of the incident: length bookkeeping says
  // "synced", the unacked queue says otherwise, and nothing will ever run
  // consume() again.
  EXPECT_GT(run.NodeVar(*built_.program, "rs1", "unackedAppends"), 0);
  EXPECT_TRUE(run.IsThreadStuckIn(*built_.program, "rs1/LogRoller", "hbase.rs.roll_wal"));
  EXPECT_TRUE(run.HasLogContaining("Failed to get sync result"));
  EXPECT_TRUE(run.HasLogContaining("Region flush failed"));
}

// --- HBase-16144 (f16): the leaked replication lock ------------------------------

TEST(Hbase16144, AbortWhileHoldingLockLeaksIt) {
  const FailureCase* failure_case = FindCase("hb-16144");
  BuiltCase built = BuildCase(*failure_case);
  interp::RunResult run = RunWith(built, 4, *failure_case);
  ASSERT_TRUE(run.injected.has_value());
  EXPECT_TRUE(failure_case->oracle(*built.program, run));
  // The ZooKeeper-side lock is still owned by the dead rs1.
  EXPECT_EQ(run.NodeVar(*built.program, "zk", "lockHolder"), 1);
}

TEST(Hbase16144, CleanRunReleasesAndRs2Claims) {
  const FailureCase* failure_case = FindCase("hb-16144");
  BuiltCase built = BuildCase(*failure_case);
  interp::RunResult run =
      RunOnce(*built.program, built.failure_cluster, failure_case->failure_seed);
  EXPECT_TRUE(run.HasLogContaining("Replication source finished cleanly"));
  EXPECT_TRUE(run.HasLogContaining("Claimed replication queue"));
  EXPECT_EQ(run.NodeVar(*built.program, "zk", "lockHolder"), 2);
}

// --- HBase-20583 (f15): stale resubmission corrupts the split checksum ------------

TEST(Hbase20583, NaturalTransientAloneIsRecovered) {
  const FailureCase* failure_case = FindCase("hb-20583");
  BuiltCase built = BuildCase(*failure_case);
  interp::RunResult run =
      RunOnce(*built.program, built.failure_cluster, failure_case->failure_seed);
  // One natural split failure happens and is resubmitted correctly.
  EXPECT_GE(run.CountLogContaining("Split task failed, resubmitting"), 1);
  EXPECT_TRUE(run.HasLogContaining("All split tasks completed"));
  EXPECT_EQ(run.NodeVar(*built.program, "master", "splitSum"), 21);
}

TEST(Hbase20583, InjectedSecondFailureResubmitsWrongTask) {
  const FailureCase* failure_case = FindCase("hb-20583");
  BuiltCase built = BuildCase(*failure_case);
  interp::RunResult run =
      RunWith(built, built.ground_truth.occurrence, *failure_case);
  ASSERT_TRUE(run.injected.has_value());
  EXPECT_TRUE(failure_case->oracle(*built.program, run));
  EXPECT_NE(run.NodeVar(*built.program, "master", "splitSum"), 21);
}

// --- ZooKeeper-3157 (f2): only the registration packet matters --------------------

TEST(Zk3157, PingPacketLossIsTolerated) {
  const FailureCase* failure_case = FindCase("zk-3157");
  BuiltCase built = BuildCase(*failure_case);
  // Occurrence 2 is an ordinary ping: the connection is re-established and
  // the watch still fires.
  interp::RunResult run = RunWith(built, 2, *failure_case);
  ASSERT_TRUE(run.injected.has_value());
  EXPECT_FALSE(failure_case->oracle(*built.program, run));
  EXPECT_TRUE(run.HasLogContaining("Watch fired, client done"));
}

TEST(Zk3157, RegistrationPacketLossLosesTheWatch) {
  const FailureCase* failure_case = FindCase("zk-3157");
  BuiltCase built = BuildCase(*failure_case);
  interp::RunResult run = RunWith(built, built.ground_truth.occurrence, *failure_case);
  ASSERT_TRUE(run.injected.has_value());
  EXPECT_TRUE(failure_case->oracle(*built.program, run));
  EXPECT_EQ(run.NodeVar(*built.program, "zk2", "watchRegistered"), 0);
}

// --- Kafka-9374 (f19): one blocked connector disables the worker -------------------

TEST(Ka9374, DroppedMetadataResponseParksTheHerderForever) {
  const FailureCase* failure_case = FindCase("ka-9374");
  BuiltCase built = BuildCase(*failure_case);
  interp::RunResult run = RunWith(built, built.ground_truth.occurrence, *failure_case);
  ASSERT_TRUE(run.injected.has_value());
  EXPECT_TRUE(run.IsThreadStuckIn(*built.program, "connect/Herder",
                                  "kafka.connect.start_connector"));
  // The queued connectors behind the blocked one never start.
  EXPECT_LT(run.NodeVar(*built.program, "connect", "connectorsStarted"), 4);
}

// --- Cassandra-6415 (f22): the deeper root cause ----------------------------------

TEST(Ca6415, DeeperColumnFamilyFaultAlsoHangsTheRepair) {
  const FailureCase* failure_case = FindCase("ca-6415");
  BuiltCase built = BuildCase(*failure_case);
  // Inject at the earlier cf-creation site on a remote replica instead of
  // the documented snapshot site: the oracle is still satisfied (§8.2).
  interp::InjectionCandidate deeper;
  deeper.site = FindSiteByName(*built.program, "cas.cf.create");
  deeper.occurrence = 2;  // the cas2 replica's creation
  deeper.type = built.program->FindException("IOException");
  interp::RunResult run = RunOnce(*built.program, built.failure_cluster,
                                  failure_case->failure_seed, {deeper});
  ASSERT_TRUE(run.injected.has_value());
  EXPECT_TRUE(failure_case->oracle(*built.program, run));
  EXPECT_TRUE(run.HasLogContaining("No such column family, ignoring request"));
}

}  // namespace
}  // namespace anduril::systems
