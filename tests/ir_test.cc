#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/ir/program.h"

namespace anduril::ir {
namespace {

// --- exception hierarchy ------------------------------------------------------

TEST(ExceptionTypes, RootAlwaysExists) {
  Program program;
  EXPECT_EQ(program.FindException("Exception"), 0);
  EXPECT_EQ(program.exception_type(0).parent, kInvalidId);
}

TEST(ExceptionTypes, SubtypingFollowsParents) {
  Program program;
  ExceptionTypeId io = program.DefineException("IOException");
  ExceptionTypeId fnf = program.DefineException("FileNotFoundException", "IOException");
  ExceptionTypeId interrupted = program.DefineException("InterruptedException");
  EXPECT_TRUE(program.ExceptionIsA(fnf, io));
  EXPECT_TRUE(program.ExceptionIsA(fnf, program.root_exception()));
  EXPECT_TRUE(program.ExceptionIsA(io, io));
  EXPECT_FALSE(program.ExceptionIsA(io, fnf));
  EXPECT_FALSE(program.ExceptionIsA(interrupted, io));
}

TEST(ExceptionTypes, DefineIsIdempotent) {
  Program program;
  EXPECT_EQ(program.DefineException("IOException"), program.DefineException("IOException"));
}

TEST(ExceptionTypesDeathTest, UnknownParentFails) {
  Program program;
  EXPECT_DEATH(program.DefineException("X", "NoSuchParent"), "unknown parent");
}

// --- variables / log templates ---------------------------------------------------

TEST(Vars, InterningIsStable) {
  Program program;
  VarId x = program.InternVar("x");
  VarId y = program.InternVar("y");
  EXPECT_NE(x, y);
  EXPECT_EQ(program.InternVar("x"), x);
  EXPECT_EQ(program.var_name(x), "x");
}

TEST(LogTemplates, DedupByLevelLoggerText) {
  Program program;
  LogTemplateId a = program.DefineLogTemplate(LogLevel::kWarn, "log", "msg {}");
  LogTemplateId b = program.DefineLogTemplate(LogLevel::kWarn, "log", "msg {}");
  LogTemplateId c = program.DefineLogTemplate(LogLevel::kError, "log", "msg {}");
  LogTemplateId d = program.DefineLogTemplate(LogLevel::kWarn, "other", "msg {}");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

// --- builder structure ---------------------------------------------------------

TEST(Builder, SimpleMethodStructure) {
  Program program;
  program.DefineException("IOException");
  MethodBuilder b(&program, "m");
  b.Assign("x", Expr::Const(5));
  b.Log(LogLevel::kInfo, "t", "hello {}", {b.V("x")});
  b.Return();
  b.Build();
  program.Finalize();

  const Method& method = program.method(program.FindMethod("m"));
  const Stmt& root = method.stmt(0);
  ASSERT_EQ(root.kind, StmtKind::kBlock);
  ASSERT_EQ(root.children.size(), 3u);
  EXPECT_EQ(method.stmt(root.children[0]).kind, StmtKind::kAssign);
  EXPECT_EQ(method.stmt(root.children[1]).kind, StmtKind::kLog);
  EXPECT_EQ(method.stmt(root.children[2]).kind, StmtKind::kReturn);
}

TEST(Builder, NestedBlocksGetParents) {
  Program program;
  MethodBuilder b(&program, "m");
  b.If(b.Eq("x", 1), [&] { b.While(b.Lt("y", 3), [&] { b.Nop(); }); });
  b.Build();
  program.Finalize();

  const Method& method = program.method(program.FindMethod("m"));
  for (StmtId s = 1; s < static_cast<StmtId>(method.stmts.size()); ++s) {
    EXPECT_NE(method.stmt(s).parent, kInvalidId) << "stmt " << s << " has no parent";
  }
}

TEST(Builder, ForwardReferencedCalleeIsResolved) {
  Program program;
  {
    MethodBuilder b(&program, "caller");
    b.Invoke("callee");  // not yet defined
  }
  {
    MethodBuilder b(&program, "callee");
    b.Nop();
  }
  program.Finalize();
  MethodId callee = program.FindMethod("callee");
  const Method& caller = program.method(program.FindMethod("caller"));
  EXPECT_EQ(caller.stmt(caller.stmt(0).children[0]).callee, callee);
}

TEST(BuilderDeathTest, DuplicateBodyFails) {
  Program program;
  { MethodBuilder b(&program, "m"); b.Nop(); }
  EXPECT_DEATH(MethodBuilder(&program, "m"), "already has a body");
}

TEST(BuilderDeathTest, UnknownExceptionInCatchFails) {
  Program program;
  MethodBuilder b(&program, "m");
  EXPECT_DEATH(b.TryCatch([&] {}, {{"Nope", [&] {}}}), "unknown exception");
}

TEST(BuilderDeathTest, BreakOutsideLoopFailsVerification) {
  Program program;
  { MethodBuilder b(&program, "m"); b.Break(); }
  EXPECT_DEATH(program.Finalize(), "break outside loop");
}

TEST(BuilderDeathTest, RethrowOutsideCatchFailsVerification) {
  Program program;
  { MethodBuilder b(&program, "m"); b.Rethrow(); }
  EXPECT_DEATH(program.Finalize(), "rethrow outside catch");
}

TEST(Builder, RethrowInsideCatchVerifies) {
  Program program;
  program.DefineException("IOException");
  MethodBuilder b(&program, "m");
  b.TryCatch([&] { b.External("s", {"IOException"}); },
             {{"IOException", [&] { b.Rethrow(); }}});
  b.Build();
  program.Finalize();
  SUCCEED();
}

// --- fault sites --------------------------------------------------------------------

TEST(FaultSites, EnumerationCoversExternalThrowAndAwait) {
  Program program;
  program.DefineException("IOException");
  program.DefineException("TimeoutException");
  MethodBuilder b(&program, "m");
  b.External("ext.call", {"IOException"});
  b.Throw("IOException");
  b.Await(b.Eq("x", 1), 100, "TimeoutException");
  b.Await(b.Eq("y", 1));  // no timeout exception: not a fault site
  b.Build();
  program.Finalize();

  EXPECT_EQ(program.fault_sites().size(), 3u);
  EXPECT_EQ(program.CountFaultSites(FaultSiteKind::kExternal), 1u);
  EXPECT_EQ(program.CountFaultSites(FaultSiteKind::kThrowNew), 1u);
  EXPECT_EQ(program.CountFaultSites(FaultSiteKind::kAwaitTimeout), 1u);
}

TEST(FaultSites, NamesEncodeSiteMethodAndStmt) {
  Program program;
  program.DefineException("IOException");
  {
    MethodBuilder b(&program, "mod.method");
    b.External("disk.write", {"IOException"});
  }
  program.Finalize();
  ASSERT_EQ(program.fault_sites().size(), 1u);
  const FaultSite& site = program.fault_sites()[0];
  EXPECT_TRUE(site.name.find("disk.write@mod.method#") == 0) << site.name;
  EXPECT_EQ(program.FaultSiteAt(site.location), site.id);
}

TEST(FaultSites, RethrowIsNotAFaultSite) {
  Program program;
  program.DefineException("IOException");
  MethodBuilder b(&program, "m");
  b.TryCatch([&] { b.External("s", {"IOException"}); },
             {{"IOException", [&] { b.Rethrow(); }}});
  b.Build();
  program.Finalize();
  EXPECT_EQ(program.CountFaultSites(FaultSiteKind::kThrowNew), 0u);
}

TEST(FaultSites, LookupAtNonSiteReturnsInvalid) {
  Program program;
  MethodBuilder b(&program, "m");
  b.Nop();
  b.Build();
  program.Finalize();
  EXPECT_EQ(program.FaultSiteAt(GlobalStmt{0, 1}), kInvalidId);
}

// --- conditions / expressions ---------------------------------------------------------

TEST(Cond, EvaluateAllOperators) {
  auto eval = [](CmpOp op, int64_t lhs, int64_t rhs) {
    Cond cond;
    cond.op = op;
    cond.lhs = 0;
    return cond.Evaluate(lhs, rhs);
  };
  EXPECT_TRUE(Cond::True().Evaluate(0, 0));
  EXPECT_TRUE(eval(CmpOp::kEq, 5, 5));
  EXPECT_FALSE(eval(CmpOp::kEq, 5, 6));
  EXPECT_TRUE(eval(CmpOp::kNe, 5, 6));
  EXPECT_TRUE(eval(CmpOp::kLt, 1, 2));
  EXPECT_TRUE(eval(CmpOp::kLe, 2, 2));
  EXPECT_TRUE(eval(CmpOp::kGt, 3, 2));
  EXPECT_TRUE(eval(CmpOp::kGe, 2, 2));
  EXPECT_FALSE(eval(CmpOp::kGt, 2, 2));
}

TEST(Cond, CollectReadsGathersBothSides) {
  std::vector<VarId> reads;
  Cond::GtVar(3, 7).CollectReads(&reads);
  EXPECT_EQ(reads, (std::vector<VarId>{3, 7}));
  reads.clear();
  Cond::Eq(5, 0).CollectReads(&reads);
  EXPECT_EQ(reads, (std::vector<VarId>{5}));
}

TEST(Expr, CollectReads) {
  std::vector<VarId> reads;
  Expr::AddVar(2, 4).CollectReads(&reads);
  EXPECT_EQ(reads, (std::vector<VarId>{2, 4}));
  reads.clear();
  Expr::Const(9).CollectReads(&reads);
  EXPECT_TRUE(reads.empty());
  reads.clear();
  Expr::Payload().CollectReads(&reads);
  EXPECT_TRUE(reads.empty());
}

// --- dump -----------------------------------------------------------------------------

TEST(Dump, ContainsStructure) {
  Program program;
  program.DefineException("IOException");
  MethodBuilder b(&program, "m");
  b.If(b.Eq("x", 1), [&] { b.Throw("IOException"); });
  b.Build();
  program.Finalize();
  std::string dump = program.Dump();
  EXPECT_NE(dump.find("method m:"), std::string::npos);
  EXPECT_NE(dump.find("if (x == 1)"), std::string::npos);
  EXPECT_NE(dump.find("throw new IOException"), std::string::npos);
}

TEST(Program, TotalStmtCountSums) {
  Program program;
  { MethodBuilder b(&program, "a"); b.Nop(); b.Nop(); }
  { MethodBuilder b(&program, "b"); b.Nop(); }
  program.Finalize();
  // root blocks (2) + 3 nops
  EXPECT_EQ(program.TotalStmtCount(), 5u);
}

}  // namespace
}  // namespace anduril::ir
