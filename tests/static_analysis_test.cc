// Registry-wide integration tests for the static-analysis stack: the lint
// suite is error-clean on every shipped scenario, the causal graph is sound
// against dynamic replay (dynamic ⊆ static), and static candidate pruning
// never changes what the feedback-driven search reproduces.

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "src/analysis/lint.h"
#include "src/explorer/explorer.h"
#include "src/explorer/soundness.h"
#include "src/explorer/strategy.h"
#include "src/systems/common.h"

namespace anduril {
namespace {

std::vector<const systems::FailureCase*> EveryCase() {
  std::vector<const systems::FailureCase*> cases;
  for (const std::vector<systems::FailureCase>* registry :
       {&systems::AllCases(), &systems::CrashStallCases(), &systems::NetworkCases()}) {
    for (const systems::FailureCase& failure_case : *registry) {
      cases.push_back(&failure_case);
    }
  }
  return cases;
}

analysis::LintEnvironment EnvironmentOf(const systems::BuiltCase& built) {
  analysis::LintEnvironment env;
  env.provided = true;
  std::unordered_set<std::string> node_seen;
  std::unordered_set<ir::MethodId> method_seen;
  for (const interp::ClusterSpec* cluster : {&built.cluster, &built.failure_cluster}) {
    for (const std::string& node : cluster->nodes) {
      if (node_seen.insert(node).second) {
        env.node_names.push_back(node);
      }
    }
    for (const interp::InitialTask& task : cluster->tasks) {
      if (method_seen.insert(task.method).second) {
        env.entry_methods.push_back(task.method);
      }
    }
  }
  return env;
}

explorer::ExplorerOptions OptionsFor(const systems::FailureCase& failure_case) {
  explorer::ExplorerOptions options;
  options.crash_stall_candidates = failure_case.root_kind == interp::FaultKind::kCrash ||
                                   failure_case.root_kind == interp::FaultKind::kStall;
  options.network_candidates = interp::IsNetworkFaultKind(failure_case.root_kind);
  return options;
}

// Every shipped scenario must be lint-error-clean: unreachable statements,
// shadowed handlers, unknown send targets, and never-submitted futures are
// scenario bugs, and CI gates on them via `anduril_lint all`.
TEST(StaticAnalysisTest, AllRegisteredCasesLintErrorClean) {
  for (const systems::FailureCase* failure_case : EveryCase()) {
    systems::BuiltCase built = systems::BuildCase(*failure_case, /*verify=*/false);
    analysis::LintReport report = analysis::RunLints(*built.program, EnvironmentOf(built));
    EXPECT_EQ(report.error_count(), 0u)
        << failure_case->id << ":\n" << report.ToText(*built.program);
  }
}

// Dynamic ⊆ static on every case: injecting any exception candidate must not
// flip an observable the causal graph says it cannot reach. A violation here
// is an Algorithm 1 regression (the exact class the zk-3006 / hb-16144
// divergence-prior fixes closed). Replays are capped per case to keep the
// test fast; the CI lint job runs the uncapped sweep.
TEST(StaticAnalysisTest, CausalGraphSoundOnAllCases) {
  for (const systems::FailureCase* failure_case : EveryCase()) {
    systems::BuiltCase built = systems::BuildCase(*failure_case, /*verify=*/false);
    explorer::Explorer ex(built.spec, OptionsFor(*failure_case));
    explorer::SoundnessReport report =
        explorer::CheckCausalSoundness(ex.context(), /*max_candidates=*/30);
    EXPECT_TRUE(report.ok()) << failure_case->id << ":\n" << report.ToText(ex.context());
    EXPECT_GT(report.candidates_checked, 0u) << failure_case->id;
  }
}

// The safety property of static_prune: the feedback-driven search produces a
// byte-identical reproduction script with pruning on or off, on every
// exception-rooted case.
TEST(StaticAnalysisTest, StaticPruneScriptEquivalence) {
  for (const systems::FailureCase& failure_case : systems::AllCases()) {
    systems::BuiltCase built = systems::BuildCase(failure_case, /*verify=*/false);

    explorer::ExplorerOptions plain = OptionsFor(failure_case);
    explorer::Explorer baseline(built.spec, plain);
    auto strategy = explorer::MakeStrategy("full");
    explorer::ExploreResult without = baseline.Explore(strategy.get());

    explorer::ExplorerOptions pruned_options = plain;
    pruned_options.static_prune = true;
    explorer::Explorer pruned(built.spec, pruned_options);
    auto pruned_strategy = explorer::MakeStrategy("full");
    explorer::ExploreResult with = pruned.Explore(pruned_strategy.get());

    ASSERT_TRUE(without.reproduced) << failure_case.id;
    ASSERT_TRUE(with.reproduced) << failure_case.id;
    EXPECT_EQ(without.rounds, with.rounds) << failure_case.id;
    EXPECT_EQ(without.script->ToText(*built.program), with.script->ToText(*built.program))
        << failure_case.id;

    // Candidate-level pruning removes nothing: every causal-graph source is
    // backwards-reachable from a sink by construction. A nonzero count would
    // flag a graph regression.
    EXPECT_EQ(pruned.context().pruned_candidates(), 0u) << failure_case.id;
  }
}

// The payoff of static_prune: the injectable-site universe shrinks (cold
// modules carry injectable sites with no causal path), while the unpruned
// universe stays intact for baselines that want it.
TEST(StaticAnalysisTest, StaticPruneShrinksInjectableSites) {
  const systems::FailureCase* failure_case = systems::FindCase("zk-2247");
  ASSERT_NE(failure_case, nullptr);
  systems::BuiltCase built = systems::BuildCase(*failure_case, /*verify=*/false);

  explorer::Explorer plain(built.spec, explorer::ExplorerOptions{});
  explorer::ExplorerOptions options;
  options.static_prune = true;
  explorer::Explorer pruned(built.spec, options);

  EXPECT_EQ(plain.context().pruned_sites(), 0u);
  EXPECT_GT(pruned.context().pruned_sites(), 0u);
  EXPECT_LT(pruned.context().all_injectable_sites().size(),
            plain.context().all_injectable_sites().size());
  EXPECT_EQ(pruned.context().total_injectable_sites(),
            plain.context().all_injectable_sites().size());

  // Membership agrees with the pruned list, and every surviving site still
  // has kExternal kind.
  for (ir::FaultSiteId site : pruned.context().all_injectable_sites()) {
    EXPECT_TRUE(pruned.context().SiteInjectable(site));
    EXPECT_EQ(built.program->fault_site(site).kind, ir::FaultSiteKind::kExternal);
  }
  // A pruned site answers false.
  size_t pruned_count = 0;
  for (ir::FaultSiteId site : plain.context().all_injectable_sites()) {
    if (!pruned.context().SiteInjectable(site)) {
      ++pruned_count;
    }
  }
  EXPECT_EQ(pruned_count, pruned.context().pruned_sites());
}

// Trace-driven baselines consult the pruned universe: with static_prune the
// fate strategy's blind list skips causally-inert sites, so it reproduces in
// no more rounds than without pruning (strictly fewer when cold-module sites
// precede the root cause in discovery order).
TEST(StaticAnalysisTest, StaticPruneNeverSlowsFateBaseline) {
  for (const std::string& id : {std::string("zk-2247"), std::string("hd-4233")}) {
    const systems::FailureCase* failure_case = systems::FindCase(id);
    ASSERT_NE(failure_case, nullptr);
    systems::BuiltCase built = systems::BuildCase(*failure_case, /*verify=*/false);

    explorer::ExplorerOptions plain;
    plain.max_rounds = 3000;
    explorer::Explorer baseline(built.spec, plain);
    auto strategy = explorer::MakeStrategy("fate");
    explorer::ExploreResult without = baseline.Explore(strategy.get());

    explorer::ExplorerOptions options = plain;
    options.static_prune = true;
    explorer::Explorer pruned(built.spec, options);
    auto pruned_strategy = explorer::MakeStrategy("fate");
    explorer::ExploreResult with = pruned.Explore(pruned_strategy.get());

    ASSERT_TRUE(without.reproduced) << id;
    ASSERT_TRUE(with.reproduced) << id;
    EXPECT_LE(with.rounds, without.rounds) << id;
    // Pruning must not change WHAT is reproduced, only how fast.
    EXPECT_EQ(without.script->site, with.script->site) << id;
    EXPECT_EQ(without.script->occurrence, with.script->occurrence) << id;
  }
}

}  // namespace
}  // namespace anduril
