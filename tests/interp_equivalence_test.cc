// Differential semantics: the flattened direct-threaded interpreter must be
// observably identical to the legacy statement-tree walker — same outcome,
// logs, fault-instance trace, thread end states, network accounting, and
// final node state — on every registered scenario, fault-free and with its
// ground-truth fault injected. decision_nanos is the one exempt field: it is
// host wall-clock (and the fast path samples it), so only its sign is
// checked elsewhere, never its value.
//
// This suite is the tree walker's reason to exist for one more PR
// (ExplorerOptions::tree_walk_interpreter); when the flag goes, it goes.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/explorer/explorer.h"
#include "src/explorer/strategy.h"
#include "src/interp/log_entry.h"
#include "src/interp/simulator.h"
#include "src/ir/flatten.h"
#include "src/systems/common.h"
#include "tests/test_util.h"

namespace anduril {
namespace {

interp::RunResult RunMode(const systems::BuiltCase& built, const interp::ClusterSpec& cluster,
                          uint64_t seed, const std::vector<interp::InjectionCandidate>& window,
                          bool tree_walk) {
  interp::RunScratch scratch;
  interp::FaultRuntime runtime(built.program.get());
  runtime.SetWindow(window);
  interp::Simulator simulator(built.program.get(), &cluster, seed, &runtime,
                              /*flat=*/nullptr, &scratch);
  if (tree_walk) {
    simulator.set_tree_walk(true);
  }
  return simulator.Run();
}

void ExpectSameResult(const interp::RunResult& flat, const interp::RunResult& tree,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(flat.outcome, tree.outcome);
  EXPECT_EQ(flat.end_time_ms, tree.end_time_ms);
  EXPECT_EQ(flat.hit_time_limit, tree.hit_time_limit);
  EXPECT_EQ(flat.hit_step_limit, tree.hit_step_limit);
  EXPECT_EQ(flat.hit_wall_budget, tree.hit_wall_budget);
  EXPECT_EQ(interp::FormatLogFile(flat.log), interp::FormatLogFile(tree.log));

  ASSERT_EQ(flat.trace.size(), tree.trace.size());
  for (size_t i = 0; i < flat.trace.size(); ++i) {
    EXPECT_EQ(flat.trace[i].site, tree.trace[i].site) << "trace[" << i << "]";
    EXPECT_EQ(flat.trace[i].occurrence, tree.trace[i].occurrence) << "trace[" << i << "]";
    EXPECT_EQ(flat.trace[i].log_clock, tree.trace[i].log_clock) << "trace[" << i << "]";
    EXPECT_EQ(flat.trace[i].time_ms, tree.trace[i].time_ms) << "trace[" << i << "]";
    EXPECT_EQ(flat.trace[i].thread_id, tree.trace[i].thread_id) << "trace[" << i << "]";
  }

  ASSERT_EQ(flat.threads.size(), tree.threads.size());
  for (size_t i = 0; i < flat.threads.size(); ++i) {
    EXPECT_EQ(flat.threads[i].node, tree.threads[i].node) << "thread " << i;
    EXPECT_EQ(flat.threads[i].name, tree.threads[i].name) << "thread " << i;
    EXPECT_EQ(flat.threads[i].state, tree.threads[i].state) << "thread " << i;
    EXPECT_EQ(flat.threads[i].blocked_at, tree.threads[i].blocked_at) << "thread " << i;
    EXPECT_EQ(flat.threads[i].current_method, tree.threads[i].current_method)
        << "thread " << i;
    EXPECT_EQ(flat.threads[i].death_exception, tree.threads[i].death_exception)
        << "thread " << i;
  }

  EXPECT_EQ(flat.node_vars, tree.node_vars);
  EXPECT_EQ(flat.crashed_nodes, tree.crashed_nodes);
  EXPECT_EQ(flat.network, tree.network);

  ASSERT_EQ(flat.partition_events.size(), tree.partition_events.size());
  for (size_t i = 0; i < flat.partition_events.size(); ++i) {
    EXPECT_EQ(flat.partition_events[i].time_ms, tree.partition_events[i].time_ms);
    EXPECT_EQ(flat.partition_events[i].node_a, tree.partition_events[i].node_a);
    EXPECT_EQ(flat.partition_events[i].node_b, tree.partition_events[i].node_b);
    EXPECT_EQ(flat.partition_events[i].sever, tree.partition_events[i].sever);
  }

  EXPECT_EQ(flat.injection_requests, tree.injection_requests);
  EXPECT_EQ(flat.pinned_fired, tree.pinned_fired);
  EXPECT_EQ(flat.injected, tree.injected);
  EXPECT_EQ(flat.preempted_window, tree.preempted_window);
  // decision_nanos deliberately not compared: wall-clock, sampled.
}

void CheckCase(const systems::FailureCase& failure_case) {
  SCOPED_TRACE(failure_case.id);
  systems::BuiltCase built = systems::BuildCase(failure_case, /*verify=*/false);

  // Fault-free exploration workload, two seeds.
  for (uint64_t seed : {failure_case.explore_seed, failure_case.explore_seed + 17}) {
    ExpectSameResult(RunMode(built, built.cluster, seed, {}, false),
                     RunMode(built, built.cluster, seed, {}, true),
                     failure_case.id + " fault-free seed " + std::to_string(seed));
  }
  // Failure workload with the ground-truth fault armed.
  std::vector<interp::InjectionCandidate> window = {built.ground_truth};
  ExpectSameResult(RunMode(built, built.failure_cluster, failure_case.failure_seed, window,
                           false),
                   RunMode(built, built.failure_cluster, failure_case.failure_seed, window,
                           true),
                   failure_case.id + " ground truth");
}

TEST(InterpEquivalence, AllRegisteredScenarios) {
  for (const systems::FailureCase& failure_case : systems::AllCases()) {
    CheckCase(failure_case);
  }
}

TEST(InterpEquivalence, CrashStallScenarios) {
  for (const systems::FailureCase& failure_case : systems::CrashStallCases()) {
    CheckCase(failure_case);
  }
}

TEST(InterpEquivalence, NetworkScenarios) {
  for (const systems::FailureCase& failure_case : systems::NetworkCases()) {
    CheckCase(failure_case);
  }
}

// Whole-search equivalence: the two interpreters must drive the explorer to
// the same ReproductionScript in the same number of rounds.
void CheckSearch(const std::string& case_id) {
  SCOPED_TRACE(case_id);
  const systems::FailureCase* failure_case = systems::FindCase(case_id);
  ASSERT_NE(failure_case, nullptr);
  systems::BuiltCase built = systems::BuildCase(*failure_case, /*verify=*/false);

  explorer::ExplorerOptions flat_options = explorer::OptionsForCase(*failure_case);
  explorer::ExplorerOptions tree_options = flat_options;
  tree_options.tree_walk_interpreter = true;

  explorer::ExploreResult flat = explorer::RunSearch(built, flat_options);
  explorer::ExploreResult tree = explorer::RunSearch(built, tree_options);

  EXPECT_EQ(flat.reproduced, tree.reproduced);
  EXPECT_EQ(flat.rounds, tree.rounds);
  ASSERT_EQ(flat.script.has_value(), tree.script.has_value());
  if (flat.script.has_value()) {
    EXPECT_EQ(flat.script->site, tree.script->site);
    EXPECT_EQ(flat.script->occurrence, tree.script->occurrence);
    EXPECT_EQ(flat.script->type, tree.script->type);
    EXPECT_EQ(flat.script->kind, tree.script->kind);
    EXPECT_EQ(flat.script->seed, tree.script->seed);
  }
}

TEST(InterpEquivalence, SearchProducesIdenticalScript) { CheckSearch("zk-2247"); }

TEST(InterpEquivalence, NetworkSearchProducesIdenticalScript) { CheckSearch("hd-net-1"); }

// The shared, context-cached FlatProgram must behave exactly like a
// per-simulator self-lowered one.
TEST(InterpEquivalence, SharedFlatProgramMatchesSelfLowered) {
  const systems::FailureCase* failure_case = systems::FindCase("zk-2247");
  ASSERT_NE(failure_case, nullptr);
  systems::BuiltCase built = systems::BuildCase(*failure_case, /*verify=*/false);
  ir::FlatProgram flat(*built.program);

  interp::FaultRuntime shared_runtime(built.program.get());
  interp::Simulator shared_sim(built.program.get(), &built.cluster,
                               failure_case->explore_seed, &shared_runtime, &flat);
  interp::RunResult shared = shared_sim.Run();

  ExpectSameResult(shared,
                   RunMode(built, built.cluster, failure_case->explore_seed, {}, false),
                   "shared vs self-lowered");
}

}  // namespace
}  // namespace anduril
