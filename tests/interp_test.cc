#include <gtest/gtest.h>

#include "src/interp/log_entry.h"
#include "src/interp/simulator.h"
#include "src/ir/builder.h"

namespace anduril::interp {
namespace {

using ir::Expr;
using ir::LogLevel;
using ir::MethodBuilder;
using ir::Program;

// Fixture assembling a single-node program and running it.
class InterpTest : public ::testing::Test {
 protected:
  InterpTest() {
    program_.DefineException("IOException");
    program_.DefineException("FileNotFoundException", "IOException");
    program_.DefineException("TimeoutException");
    program_.DefineException("ExecutionException");
  }

  RunResult Run(const std::string& entry, uint64_t seed = 1,
                std::vector<InjectionCandidate> window = {}, int64_t payload = 0) {
    if (!program_.finalized()) {
      program_.Finalize();
    }
    if (cluster_.nodes.empty()) {
      cluster_.AddNode("n1");
      cluster_.AddNode("n2");
    }
    cluster_.tasks.clear();
    cluster_.AddTask("n1", "main", program_.FindMethod(entry), 0, payload);
    FaultRuntime runtime(&program_);
    runtime.SetWindow(std::move(window));
    Simulator simulator(&program_, &cluster_, seed, &runtime);
    return simulator.Run();
  }

  int64_t Var(const RunResult& result, const std::string& var,
              const std::string& node = "n1") const {
    return result.NodeVar(program_, node, var);
  }

  ir::FaultSiteId Site(const std::string& prefix) const {
    for (const ir::FaultSite& site : program_.fault_sites()) {
      if (site.name.find(prefix + "@") == 0) {
        return site.id;
      }
    }
    return ir::kInvalidId;
  }

  Program program_;
  ClusterSpec cluster_;
};

// --- straight-line semantics ----------------------------------------------------

TEST_F(InterpTest, AssignAndArithmetic) {
  MethodBuilder b(&program_, "m");
  b.Assign("x", Expr::Const(10));
  b.Assign("y", b.Plus("x", 5));
  b.Assign("z", b.Minus("y", 3));
  b.Assign("w", Expr::AddVar(b.Var("y"), b.Var("z")));
  b.Build();
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "x"), 10);
  EXPECT_EQ(Var(result, "y"), 15);
  EXPECT_EQ(Var(result, "z"), 12);
  EXPECT_EQ(Var(result, "w"), 27);
}

TEST_F(InterpTest, IfTakesCorrectBranch) {
  MethodBuilder b(&program_, "m");
  b.Assign("x", Expr::Const(2));
  b.If(b.Eq("x", 2), [&] { b.Assign("then", Expr::Const(1)); },
       [&] { b.Assign("else", Expr::Const(1)); });
  b.If(b.Eq("x", 3), [&] { b.Assign("then2", Expr::Const(1)); },
       [&] { b.Assign("else2", Expr::Const(1)); });
  b.If(b.Gt("x", 10), [&] { b.Assign("never", Expr::Const(1)); });  // no else
  b.Build();
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "then"), 1);
  EXPECT_EQ(Var(result, "else"), 0);
  EXPECT_EQ(Var(result, "else2"), 1);
  EXPECT_EQ(Var(result, "never"), 0);
}

TEST_F(InterpTest, WhileLoopAndBreak) {
  MethodBuilder b(&program_, "m");
  b.While(b.Lt("i", 10), [&] {
    b.Assign("i", b.Plus("i", 1));
    b.If(b.Eq("i", 6), [&] { b.Break(); });
  });
  b.Build();
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "i"), 6);
}

TEST_F(InterpTest, NestedLoopBreakOnlyExitsInner) {
  MethodBuilder b(&program_, "m");
  b.While(b.Lt("outer", 3), [&] {
    b.Assign("outer", b.Plus("outer", 1));
    b.While(b.Lt("inner", 100), [&] {
      b.Assign("inner", b.Plus("inner", 1));
      b.Break();
    });
  });
  b.Build();
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "outer"), 3);
  EXPECT_EQ(Var(result, "inner"), 3);  // one increment per outer iteration
}

TEST_F(InterpTest, ReturnStopsMethod) {
  MethodBuilder b(&program_, "m");
  b.Assign("a", Expr::Const(1));
  b.Return();
  b.Assign("b", Expr::Const(1));
  b.Build();
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "a"), 1);
  EXPECT_EQ(Var(result, "b"), 0);
}

TEST_F(InterpTest, InvokeRunsCalleeThenContinues) {
  {
    MethodBuilder b(&program_, "callee");
    b.Assign("inside", Expr::Const(7));
    b.Return();
  }
  {
    MethodBuilder b(&program_, "m");
    b.Invoke("callee");
    b.Assign("after", b.Plus("inside", 1));
  }
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "inside"), 7);
  EXPECT_EQ(Var(result, "after"), 8);
}

TEST_F(InterpTest, PayloadPropagatesThroughInvoke) {
  {
    MethodBuilder b(&program_, "inner");
    b.Assign("got", Expr::Payload());
  }
  {
    MethodBuilder b(&program_, "m");
    b.Invoke("inner");
  }
  RunResult result = Run("m", 1, {}, /*payload=*/99);
  EXPECT_EQ(Var(result, "got"), 99);
}

// --- exceptions -----------------------------------------------------------------

TEST_F(InterpTest, CatchMatchesSubtype) {
  MethodBuilder b(&program_, "m");
  b.TryCatch([&] { b.Throw("FileNotFoundException"); },
             {{"IOException", [&] { b.Assign("caught", Expr::Const(1)); }}});
  b.Build();
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "caught"), 1);
  EXPECT_EQ(result.threads[0].state, ThreadEndState::kFinished);
}

TEST_F(InterpTest, CatchClausePrecedenceFirstMatchWins) {
  MethodBuilder b(&program_, "m");
  b.TryCatch([&] { b.Throw("FileNotFoundException"); },
             {{"FileNotFoundException", [&] { b.Assign("specific", Expr::Const(1)); }},
              {"IOException", [&] { b.Assign("general", Expr::Const(1)); }}});
  b.Build();
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "specific"), 1);
  EXPECT_EQ(Var(result, "general"), 0);
}

TEST_F(InterpTest, UnmatchedTypePropagates) {
  MethodBuilder b(&program_, "m");
  b.TryCatch(
      [&] {
        b.TryCatch([&] { b.Throw("IOException"); },
                   {{"TimeoutException", [&] { b.Assign("wrong", Expr::Const(1)); }}});
      },
      {{"IOException", [&] { b.Assign("outer", Expr::Const(1)); }}});
  b.Build();
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "wrong"), 0);
  EXPECT_EQ(Var(result, "outer"), 1);
}

TEST_F(InterpTest, ExceptionInCatchPropagatesOutward) {
  MethodBuilder b(&program_, "m");
  b.TryCatch(
      [&] {
        b.TryCatch([&] { b.Throw("IOException"); },
                   {{"IOException", [&] { b.Throw("TimeoutException"); }}});
      },
      {{"TimeoutException", [&] { b.Assign("outer", Expr::Const(1)); }}});
  b.Build();
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "outer"), 1);
}

TEST_F(InterpTest, RethrowPreservesException) {
  MethodBuilder b(&program_, "m");
  b.TryCatch(
      [&] {
        b.TryCatch([&] { b.Throw("FileNotFoundException"); },
                   {{"IOException", [&] { b.Rethrow(); }}});
      },
      {{"FileNotFoundException", [&] { b.Assign("outer", Expr::Const(1)); }}});
  b.Build();
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "outer"), 1);
}

TEST_F(InterpTest, ExceptionCrossesFrames) {
  {
    MethodBuilder b(&program_, "deep");
    b.Throw("IOException");
  }
  {
    MethodBuilder b(&program_, "mid");
    b.Invoke("deep");
    b.Assign("skipped", Expr::Const(1));
  }
  {
    MethodBuilder b(&program_, "m");
    b.TryCatch([&] { b.Invoke("mid"); },
               {{"IOException", [&] { b.Assign("caught", Expr::Const(1)); }}});
  }
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "caught"), 1);
  EXPECT_EQ(Var(result, "skipped"), 0);
}

TEST_F(InterpTest, UncaughtExceptionKillsThreadAndLogs) {
  MethodBuilder b(&program_, "m");
  b.Throw("IOException");
  b.Build();
  RunResult result = Run("m");
  ASSERT_EQ(result.threads.size(), 1u);
  EXPECT_EQ(result.threads[0].state, ThreadEndState::kDied);
  EXPECT_EQ(result.threads[0].death_exception, program_.FindException("IOException"));
  EXPECT_TRUE(result.HasLogContaining("Uncaught exception terminating thread"));
  EXPECT_TRUE(result.HasLogContaining("IOException"));
}

TEST_F(InterpTest, ReturnInsideTryLeavesMethodNormally) {
  MethodBuilder b(&program_, "m");
  b.TryCatch(
      [&] {
        b.Assign("a", Expr::Const(1));
        b.Return();
      },
      {{"IOException", [&] { b.Assign("caught", Expr::Const(1)); }}});
  b.Assign("after", Expr::Const(1));
  b.Build();
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "a"), 1);
  EXPECT_EQ(Var(result, "caught"), 0);
  EXPECT_EQ(Var(result, "after"), 0);
}

// --- logging --------------------------------------------------------------------

TEST_F(InterpTest, LogRendersArguments) {
  MethodBuilder b(&program_, "m");
  b.Assign("x", Expr::Const(42));
  b.Log(LogLevel::kInfo, "test", "value is {} and {}", {b.V("x"), Expr::Const(-1)});
  b.Build();
  RunResult result = Run("m");
  ASSERT_EQ(result.log.size(), 1u);
  EXPECT_EQ(result.log[0].message, "value is 42 and -1");
  EXPECT_EQ(result.log[0].logger, "test");
  EXPECT_EQ(result.log[0].level, LogLevel::kInfo);
  EXPECT_EQ(result.log[0].FullThreadName(), "n1/main");
}

TEST_F(InterpTest, LogExcAppendsExceptionMarkerWithOriginSite) {
  MethodBuilder b(&program_, "m");
  b.TryCatch([&] { b.External("disk.op", {"IOException"}); },
             {{"IOException",
               [&] { b.LogExc(LogLevel::kWarn, "test", "operation failed"); }}});
  b.Build();
  program_.Finalize();
  ir::FaultSiteId site = Site("disk.op");
  RunResult result =
      Run("m", 1, {InjectionCandidate{site, 1, program_.FindException("IOException")}});
  ASSERT_EQ(result.log.size(), 1u);
  EXPECT_TRUE(result.log[0].message.find("operation failed [exc=IOException at disk.op@") !=
              std::string::npos)
      << result.log[0].message;
}

TEST_F(InterpTest, LogClockIsMonotonic) {
  MethodBuilder b(&program_, "m");
  for (int i = 0; i < 5; ++i) {
    b.Log(LogLevel::kInfo, "test", "msg " + std::to_string(i));
  }
  b.Build();
  RunResult result = Run("m");
  for (size_t i = 0; i < result.log.size(); ++i) {
    EXPECT_EQ(result.log[i].log_clock, static_cast<int64_t>(i));
  }
}

// --- await / signal / timeouts -----------------------------------------------------

TEST_F(InterpTest, AwaitSatisfiedImmediatelyDoesNotBlock) {
  MethodBuilder b(&program_, "m");
  b.Assign("flag", Expr::Const(1));
  b.Await(b.Eq("flag", 1), 1000, "TimeoutException");
  b.Assign("after", Expr::Const(1));
  b.Build();
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "after"), 1);
  EXPECT_EQ(result.end_time_ms, 0);
}

TEST_F(InterpTest, SignalWakesAwaitingThread) {
  {
    MethodBuilder b(&program_, "waiter");
    b.Await(b.Eq("flag", 1));
    b.Assign("woke", Expr::Const(1));
  }
  {
    MethodBuilder b(&program_, "signaller");
    b.Sleep(50);
    b.Assign("flag", Expr::Const(1));
    b.Signal("flag");
  }
  program_.Finalize();
  cluster_.AddNode("n1");
  cluster_.AddNode("n2");
  cluster_.AddTask("n1", "waiter", program_.FindMethod("waiter"), 0);
  cluster_.AddTask("n1", "signaller", program_.FindMethod("signaller"), 0);
  FaultRuntime runtime(&program_);
  Simulator simulator(&program_, &cluster_, 1, &runtime);
  RunResult result = simulator.Run();
  EXPECT_EQ(result.NodeVar(program_, "n1", "woke"), 1);
  EXPECT_EQ(result.end_time_ms, 50);
}

TEST_F(InterpTest, SignalWithoutConditionLeavesThreadBlocked) {
  {
    MethodBuilder b(&program_, "waiter");
    b.Await(b.Ge("flag", 5));
    b.Assign("woke", Expr::Const(1));
  }
  {
    MethodBuilder b(&program_, "signaller");
    b.Sleep(10);
    b.Assign("flag", Expr::Const(1));  // condition still false
    b.Signal("flag");
  }
  program_.Finalize();
  cluster_.AddNode("n1");
  cluster_.AddNode("n2");
  cluster_.AddTask("n1", "waiter", program_.FindMethod("waiter"), 0);
  cluster_.AddTask("n1", "signaller", program_.FindMethod("signaller"), 0);
  FaultRuntime runtime(&program_);
  Simulator simulator(&program_, &cluster_, 1, &runtime);
  RunResult result = simulator.Run();
  EXPECT_EQ(result.NodeVar(program_, "n1", "woke"), 0);
  EXPECT_TRUE(result.IsThreadStuck("n1/waiter"));
  EXPECT_TRUE(result.IsThreadStuckIn(program_, "n1/waiter", "waiter"));
}

TEST_F(InterpTest, AwaitTimeoutWithoutExceptionContinues) {
  MethodBuilder b(&program_, "m");
  b.Await(b.Eq("flag", 1), /*timeout_ms=*/200);
  b.Assign("after", Expr::Const(1));
  b.Build();
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "after"), 1);
  EXPECT_EQ(result.end_time_ms, 200);
}

TEST_F(InterpTest, AwaitTimeoutWithExceptionThrows) {
  MethodBuilder b(&program_, "m");
  b.TryCatch([&] { b.Await(b.Eq("flag", 1), 100, "TimeoutException"); },
             {{"TimeoutException", [&] { b.Assign("timed_out", Expr::Const(1)); }}});
  b.Build();
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "timed_out"), 1);
  EXPECT_EQ(result.end_time_ms, 100);
}

TEST_F(InterpTest, SleepAdvancesSimulatedTime) {
  MethodBuilder b(&program_, "m");
  b.Sleep(123);
  b.Sleep(77);
  b.Build();
  RunResult result = Run("m");
  EXPECT_EQ(result.end_time_ms, 200);
}

// --- messaging --------------------------------------------------------------------

TEST_F(InterpTest, SendDeliversPayloadToTargetNode) {
  {
    MethodBuilder b(&program_, "handler");
    b.Assign("received", Expr::Payload());
  }
  {
    MethodBuilder b(&program_, "m");
    b.Send("handler", "n2", ir::SendOpts{.payload = Expr::Const(55)});
  }
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "received", "n2"), 55);
  EXPECT_EQ(Var(result, "received", "n1"), 0);
}

TEST_F(InterpTest, SendTargetIndexVarSelectsNode) {
  {
    MethodBuilder b(&program_, "handler");
    b.Assign("hit", b.Plus("hit", 1));
  }
  {
    MethodBuilder b(&program_, "m");
    b.Assign("idx", Expr::Const(2));
    b.Send("handler", "n", ir::SendOpts{.index_var = "idx"});  // -> node "n2"
  }
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "hit", "n2"), 1);
  EXPECT_EQ(Var(result, "hit", "n1"), 0);
}

TEST_F(InterpTest, TasksOnOneThreadRunSerially) {
  {
    MethodBuilder b(&program_, "handler");
    b.Assign("order", b.Plus("order", 1));
    b.Assign("slot", Expr::Payload());
  }
  {
    MethodBuilder b(&program_, "m");
    b.Send("handler", "n2", ir::SendOpts{.payload = Expr::Const(1), .latency_ms = 5});
    b.Send("handler", "n2", ir::SendOpts{.payload = Expr::Const(2), .latency_ms = 50});
  }
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "order", "n2"), 2);
  EXPECT_EQ(Var(result, "slot", "n2"), 2);  // later message processed last
}

TEST_F(InterpTest, MessageToDeadThreadIsDropped) {
  {
    MethodBuilder b(&program_, "handler");
    b.Assign("count", b.Plus("count", 1));
    b.Throw("IOException");  // kills the handler thread on first message
  }
  {
    MethodBuilder b(&program_, "m");
    b.Send("handler", "n2", ir::SendOpts{.latency_ms = 1});
    b.Sleep(20);
    b.Send("handler", "n2", ir::SendOpts{.latency_ms = 1});
  }
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "count", "n2"), 1);
  EXPECT_TRUE(result.DidThreadDie("n2/handler"));
}

// --- futures ---------------------------------------------------------------------

TEST_F(InterpTest, SubmitAndFutureGetSuccess) {
  {
    MethodBuilder b(&program_, "task");
    b.Assign("task_ran", Expr::Const(1));
  }
  {
    MethodBuilder b(&program_, "m");
    b.Submit("task", "fut", "executor");
    b.FutureGet("fut");
    b.Assign("after_get", b.Plus("task_ran", 1));
  }
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "task_ran"), 1);
  EXPECT_EQ(Var(result, "after_get"), 2);
}

TEST_F(InterpTest, FailedTaskSurfacesAsExecutionException) {
  {
    MethodBuilder b(&program_, "task");
    b.Throw("IOException");
  }
  {
    MethodBuilder b(&program_, "m");
    b.Submit("task", "fut", "executor");
    b.TryCatch([&] { b.FutureGet("fut"); },
               {{"ExecutionException", [&] { b.Assign("wrapped", Expr::Const(1)); }}});
  }
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "wrapped"), 1);
  // The executor thread survives (the exception went into the future).
  EXPECT_FALSE(result.DidThreadDie("n1/executor"));
}

TEST_F(InterpTest, FutureGetTimeoutThrows) {
  {
    MethodBuilder b(&program_, "slow_task");
    b.Sleep(500);
  }
  {
    MethodBuilder b(&program_, "m");
    b.Submit("slow_task", "fut", "executor");
    b.TryCatch([&] { b.FutureGet("fut", 100, "TimeoutException"); },
               {{"TimeoutException", [&] { b.Assign("timed_out", Expr::Const(1)); }}});
  }
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "timed_out"), 1);
}

// --- fault injection ----------------------------------------------------------------

TEST_F(InterpTest, WindowInjectsAtExactOccurrence) {
  MethodBuilder b(&program_, "m");
  b.While(b.Lt("i", 10), [&] {
    b.Assign("i", b.Plus("i", 1));
    b.TryCatch([&] { b.External("op", {"IOException"}); },
               {{"IOException", [&] { b.Assign("failed_at", b.V("i")); }}});
  });
  b.Build();
  program_.Finalize();
  RunResult result =
      Run("m", 1, {InjectionCandidate{Site("op"), 7, program_.FindException("IOException")}});
  EXPECT_EQ(Var(result, "failed_at"), 7);
  ASSERT_TRUE(result.injected.has_value());
  EXPECT_EQ(result.injected->occurrence, 7);
}

TEST_F(InterpTest, AtMostOneInjectionPerRun) {
  MethodBuilder b(&program_, "m");
  b.While(b.Lt("i", 10), [&] {
    b.Assign("i", b.Plus("i", 1));
    b.TryCatch([&] { b.External("op", {"IOException"}); },
               {{"IOException", [&] { b.Assign("failures", b.Plus("failures", 1)); }}});
  });
  b.Build();
  program_.Finalize();
  ir::ExceptionTypeId io = program_.FindException("IOException");
  RunResult result = Run("m", 1,
                         {InjectionCandidate{Site("op"), 3, io},
                          InjectionCandidate{Site("op"), 5, io}});
  EXPECT_EQ(Var(result, "failures"), 1);
  ASSERT_TRUE(result.injected.has_value());
  EXPECT_EQ(result.injected->occurrence, 3);  // first reached wins
}

TEST_F(InterpTest, TransientFaultsFireDeterministically) {
  MethodBuilder b(&program_, "m");
  b.While(b.Lt("i", 9), [&] {
    b.Assign("i", b.Plus("i", 1));
    b.TryCatch([&] { b.External("op", {"IOException"}, /*transient_every_n=*/3); },
               {{"IOException", [&] { b.Assign("failures", b.Plus("failures", 1)); }}});
  });
  b.Build();
  RunResult result = Run("m");
  EXPECT_EQ(Var(result, "failures"), 3);  // occurrences 3, 6, 9
  EXPECT_FALSE(result.injected.has_value());
}

TEST_F(InterpTest, TraceRecordsOccurrencesAndLogClock) {
  MethodBuilder b(&program_, "m");
  b.Log(LogLevel::kInfo, "t", "before");
  b.External("op", {"IOException"});
  b.Log(LogLevel::kInfo, "t", "between");
  b.External("op2", {"IOException"});
  b.Build();
  RunResult result = Run("m");
  ASSERT_EQ(result.trace.size(), 2u);
  EXPECT_EQ(result.trace[0].occurrence, 1);
  EXPECT_EQ(result.trace[0].log_clock, 1);
  EXPECT_EQ(result.trace[1].log_clock, 2);
  EXPECT_EQ(result.injection_requests, 2);
}

// --- determinism ---------------------------------------------------------------------

TEST_F(InterpTest, SameSeedSameRun) {
  {
    MethodBuilder b(&program_, "handler");
    b.Assign("received", b.Plus("received", 1));
    b.Log(LogLevel::kInfo, "t", "handled {}", {b.V("received")});
  }
  {
    MethodBuilder b(&program_, "m");
    b.While(b.Lt("i", 20), [&] {
      b.Assign("i", b.Plus("i", 1));
      b.Send("handler", "n2");
      b.Sleep(2);
    });
  }
  RunResult first = Run("m", 777);

  // Rebuild everything from scratch with the same seed.
  Program program2;
  program2.DefineException("IOException");
  {
    MethodBuilder b(&program2, "handler");
    b.Assign("received", b.Plus("received", 1));
    b.Log(LogLevel::kInfo, "t", "handled {}", {b.V("received")});
  }
  {
    MethodBuilder b(&program2, "m");
    b.While(b.Lt("i", 20), [&] {
      b.Assign("i", b.Plus("i", 1));
      b.Send("handler", "n2");
      b.Sleep(2);
    });
  }
  program2.Finalize();
  ClusterSpec cluster2;
  cluster2.AddNode("n1");
  cluster2.AddNode("n2");
  cluster2.AddTask("n1", "main", program2.FindMethod("m"), 0);
  FaultRuntime runtime2(&program2);
  Simulator simulator2(&program2, &cluster2, 777, &runtime2);
  RunResult second = simulator2.Run();

  EXPECT_EQ(FormatLogFile(first.log), FormatLogFile(second.log));
  EXPECT_EQ(first.end_time_ms, second.end_time_ms);
}

// --- run limits --------------------------------------------------------------------

TEST_F(InterpTest, TimeLimitStopsRun) {
  MethodBuilder b(&program_, "m");
  b.While(b.Lt("i", 1000), [&] {
    b.Assign("i", b.Plus("i", 1));
    b.Sleep(1000);
  });
  b.Build();
  program_.Finalize();
  cluster_.AddNode("n1");
  cluster_.AddNode("n2");
  cluster_.time_limit_ms = 5000;
  RunResult result = Run("m");
  EXPECT_TRUE(result.hit_time_limit);
  EXPECT_LE(result.end_time_ms, 5000);
}

TEST_F(InterpTest, LogFileFormatting) {
  MethodBuilder b(&program_, "m");
  b.Sleep(61'234);
  b.Log(LogLevel::kWarn, "comp", "late message");
  b.Build();
  RunResult result = Run("m");
  std::string line = FormatLogLine(result.log[0]);
  EXPECT_EQ(line, "10:01:01,234 [n1/main] WARN comp - late message");
}

}  // namespace
}  // namespace anduril::interp
