// Shared test scaffolding.
//
// Two layers, mirroring the code under test:
//  - interp: TwoNodeClusterTest, a fixture for tests that build a small IR
//    program with MethodBuilder and run it on an n1/n2 cluster (the
//    network-fault and hardened-runtime suites).
//  - explorer: free helpers for tests that search a registered failure case
//    end to end — candidate-space options derived from the case's root fault
//    kind, a one-call search runner, and temp-file paths.

#ifndef ANDURIL_TESTS_TEST_UTIL_H_
#define ANDURIL_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/explorer/explorer.h"
#include "src/explorer/strategy.h"
#include "src/interp/simulator.h"
#include "src/ir/builder.h"
#include "src/systems/common.h"
#include "src/systems/harness.h"

namespace anduril::interp {

// Base fixture: a Program plus a two-node cluster, with one task on n1
// running `entry`. Subclasses build methods into program_ (and may predefine
// exception types in their constructors); Run() finalizes lazily so a test
// can keep adding methods until the first run.
class TwoNodeClusterTest : public ::testing::Test {
 protected:
  RunResult Run(const std::string& entry, uint64_t seed = 1,
                std::vector<InjectionCandidate> window = {},
                std::vector<InjectionCandidate> pinned = {}) {
    if (!program_.finalized()) {
      program_.Finalize();
    }
    if (cluster_.nodes.empty()) {
      cluster_.AddNode("n1");
      cluster_.AddNode("n2");
    }
    cluster_.tasks.clear();
    cluster_.AddTask("n1", "main", program_.FindMethod(entry), 0);
    FaultRuntime runtime(&program_);
    runtime.SetWindow(std::move(window));
    runtime.SetPinned(std::move(pinned));
    Simulator simulator(&program_, &cluster_, seed, &runtime);
    return simulator.Run();
  }

  int64_t Var(const RunResult& result, const std::string& var,
              const std::string& node = "n1") const {
    return result.NodeVar(program_, node, var);
  }

  ir::FaultSiteId Site(const std::string& prefix) const {
    for (const ir::FaultSite& site : program_.fault_sites()) {
      if (site.name.find(prefix + "@") == 0) {
        return site.id;
      }
    }
    return ir::kInvalidId;
  }

  ir::Program program_;
  ClusterSpec cluster_;
};

}  // namespace anduril::interp

namespace anduril::explorer {

inline std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// The search harness itself lives in src/systems/harness.h (shared with the
// tools and the reproduction service); re-exported here so test code keeps
// calling OptionsForCase/RunSearch unqualified.
using systems::OptionsForCase;
using systems::RunSearch;

}  // namespace anduril::explorer

#endif  // ANDURIL_TESTS_TEST_UTIL_H_
