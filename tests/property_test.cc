// Property-style invariant sweeps (TEST_P) across the failure dataset and
// across seeds. These check what must hold for *every* case and *every*
// run, independent of scenario specifics:
//
//   - runs are deterministic functions of (program, cluster, seed, window)
//   - at most one window injection fires per run, at the exact occurrence
//   - the instance trace is consistent (per-site occurrences dense, log
//     clocks monotone, every armed candidate either fires or never occurs)
//   - log files round-trip through the parser
//   - the causal graph is well-formed (priors in range, sources are real
//     fault sites, finite distances only to graph nodes)
//   - the ground truth is occurrence-sensitive where the case says so

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/explorer/explorer.h"
#include "src/interp/log_entry.h"
#include "src/interp/simulator.h"
#include "src/logdiff/parser.h"
#include "src/obs/metrics.h"
#include "src/systems/common.h"

namespace anduril::systems {
namespace {

struct SweepParam {
  std::string case_id;
  uint64_t seed;
};

std::vector<SweepParam> SweepParams() {
  std::vector<SweepParam> params;
  for (const FailureCase& failure_case : AllCases()) {
    for (uint64_t seed : {1ull, 7ull, 1234ull}) {
      params.push_back(SweepParam{failure_case.id, seed});
    }
  }
  return params;
}

class RunSweepTest : public ::testing::TestWithParam<SweepParam> {
 public:
  static std::string Name(const ::testing::TestParamInfo<SweepParam>& info) {
    std::string name = info.param.case_id + "_seed" + std::to_string(info.param.seed);
    for (char& c : name) {
      if (c == '-') {
        c = '_';
      }
    }
    return name;
  }
};

TEST_P(RunSweepTest, RunsAreDeterministic) {
  const FailureCase& failure_case = *FindCase(GetParam().case_id);
  BuiltCase built = BuildCase(failure_case, /*verify=*/false);
  interp::RunResult a = RunOnce(*built.program, built.cluster, GetParam().seed);
  interp::RunResult b = RunOnce(*built.program, built.cluster, GetParam().seed);
  EXPECT_EQ(interp::FormatLogFile(a.log), interp::FormatLogFile(b.log));
  EXPECT_EQ(a.end_time_ms, b.end_time_ms);
  EXPECT_EQ(a.trace.size(), b.trace.size());
  EXPECT_EQ(a.injection_requests, b.injection_requests);
}

TEST_P(RunSweepTest, TraceInvariantsHold) {
  const FailureCase& failure_case = *FindCase(GetParam().case_id);
  BuiltCase built = BuildCase(failure_case, /*verify=*/false);
  interp::RunResult run = RunOnce(*built.program, built.cluster, GetParam().seed);

  // Per-site occurrence counters are dense starting at 1; log clocks are
  // monotone along the trace.
  std::map<ir::FaultSiteId, int64_t> last_occurrence;
  int64_t last_clock = 0;
  for (const interp::FaultInstanceEvent& event : run.trace) {
    EXPECT_EQ(event.occurrence, last_occurrence[event.site] + 1);
    last_occurrence[event.site] = event.occurrence;
    EXPECT_GE(event.log_clock, last_clock);
    last_clock = event.log_clock;
    EXPECT_LE(event.log_clock, static_cast<int64_t>(run.log.size()));
  }
  EXPECT_EQ(static_cast<int64_t>(run.trace.size()), run.injection_requests);
}

TEST_P(RunSweepTest, AtMostOneWindowInjectionFires) {
  const FailureCase& failure_case = *FindCase(GetParam().case_id);
  BuiltCase built = BuildCase(failure_case, /*verify=*/false);
  // Arm a window full of instances of the ground-truth site.
  std::vector<interp::InjectionCandidate> window;
  for (int64_t occ = 1; occ <= 5; ++occ) {
    window.push_back(interp::InjectionCandidate{built.ground_truth.site, occ * 2,
                                                built.ground_truth.type});
  }
  interp::RunResult run = RunOnce(*built.program, built.cluster, GetParam().seed, window);
  if (run.injected.has_value()) {
    // The injected candidate must be one of the armed ones.
    bool armed = false;
    for (const interp::InjectionCandidate& candidate : window) {
      armed |= candidate == *run.injected;
    }
    EXPECT_TRUE(armed);
  }
}

TEST_P(RunSweepTest, LogRoundTripsThroughParser) {
  const FailureCase& failure_case = *FindCase(GetParam().case_id);
  BuiltCase built = BuildCase(failure_case, /*verify=*/false);
  interp::RunResult run = RunOnce(*built.program, built.cluster, GetParam().seed);
  logdiff::ParsedLog parsed = logdiff::ParseLogFile(interp::FormatLogFile(run.log));
  ASSERT_EQ(parsed.lines.size(), run.log.size());
  for (size_t i = 0; i < parsed.lines.size(); ++i) {
    EXPECT_EQ(parsed.lines[i].message, run.log[i].message);
    EXPECT_EQ(parsed.lines[i].thread, run.log[i].FullThreadName());
    EXPECT_EQ(parsed.lines[i].level, ir::LogLevelName(run.log[i].level));
  }
}

// The metrics a run flushes must agree with its RunResult: the registry is
// an *aggregated view* of the same facts, never an independent count.
TEST_P(RunSweepTest, MetricsAgreeWithRunResult) {
  const FailureCase& failure_case = *FindCase(GetParam().case_id);
  BuiltCase built = BuildCase(failure_case, /*verify=*/false);
  // Arm the ground truth so the injected-fault counters are exercised too.
  std::vector<interp::InjectionCandidate> window = {built.ground_truth};

  obs::MetricsRegistry metrics;
  interp::FaultRuntime runtime(built.program.get());
  runtime.SetWindow(window);
  interp::Simulator simulator(built.program.get(), &built.cluster, GetParam().seed, &runtime);
  simulator.set_metrics(&metrics);
  interp::RunResult run = simulator.Run();

  EXPECT_EQ(metrics.counter("sim.runs"), 1);
  EXPECT_EQ(metrics.counter(std::string("sim.outcome.") + interp::RunOutcomeName(run.outcome)),
            1);
  EXPECT_EQ(metrics.counter("fault.requests"), run.injection_requests);
  EXPECT_EQ(metrics.counter("fault.pinned_fired"), run.pinned_fired);
  if (run.injected.has_value()) {
    EXPECT_EQ(metrics.counter(std::string("fault.injected.") +
                              interp::FaultKindName(run.injected->kind)),
              1);
  } else {
    for (const auto& [name, value] : metrics.Snapshot().counters) {
      EXPECT_TRUE(name.rfind("fault.injected.", 0) != 0) << name << "=" << value;
    }
  }
  EXPECT_EQ(metrics.counter("net.messages_sent"), run.network.messages_sent);
  EXPECT_EQ(metrics.counter("net.dropped_by_fault"), run.network.dropped_by_fault);
  EXPECT_EQ(metrics.counter("net.dropped_by_partition"), run.network.dropped_by_partition);
  EXPECT_EQ(metrics.counter("net.delayed"), run.network.delayed);
  EXPECT_EQ(metrics.counter("net.duplicated"), run.network.duplicated);
  EXPECT_EQ(metrics.counter("net.partitions_severed"), run.network.partitions_severed);
  EXPECT_EQ(metrics.histogram("sim.end_time_ms").count, 1);
  EXPECT_EQ(metrics.histogram("sim.end_time_ms").sum, run.end_time_ms);
}

INSTANTIATE_TEST_SUITE_P(AllCasesBySeeds, RunSweepTest, ::testing::ValuesIn(SweepParams()),
                         RunSweepTest::Name);

// --- causal-graph well-formedness across all cases --------------------------------

class GraphSweepTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GraphSweepTest, GraphIsWellFormed) {
  const FailureCase& failure_case = *FindCase(GetParam());
  BuiltCase built = BuildCase(failure_case, /*verify=*/false);
  explorer::ExplorerOptions options;
  explorer::Explorer ex(built.spec, options);
  const analysis::CausalGraph& graph = ex.context().graph();

  for (size_t n = 0; n < graph.node_count(); ++n) {
    for (analysis::CausalNodeId prior : graph.priors(static_cast<int32_t>(n))) {
      ASSERT_GE(prior, 0);
      ASSERT_LT(static_cast<size_t>(prior), graph.node_count());
    }
  }
  for (const auto& source : graph.sources()) {
    const analysis::CausalNode& node = graph.node(source.node);
    EXPECT_TRUE(node.kind == analysis::CausalNodeKind::kExternalExc ||
                node.kind == analysis::CausalNodeKind::kNewExc);
    EXPECT_EQ(built.program->FaultSiteAt(node.loc), source.site);
  }
  // Every candidate must be reachable from at least one observable.
  for (size_t c = 0; c < ex.context().candidates().size(); ++c) {
    bool reachable = false;
    for (size_t k = 0; k < ex.context().observables().size(); ++k) {
      reachable |= ex.context().Distance(c, k) != analysis::CausalGraph::kUnreachable;
    }
    EXPECT_TRUE(reachable) << "candidate " << c << " is not connected to any observable";
  }
}

TEST_P(GraphSweepTest, GroundTruthSiteIsACandidate) {
  const FailureCase& failure_case = *FindCase(GetParam());
  BuiltCase built = BuildCase(failure_case, /*verify=*/false);
  explorer::ExplorerOptions options;
  explorer::Explorer ex(built.spec, options);
  bool found = false;
  for (const explorer::FaultCandidate& candidate : ex.context().candidates()) {
    found |= candidate.site == built.ground_truth.site;
  }
  EXPECT_TRUE(found)
      << "the causal graph pruned the real root cause — the search could never succeed";
}

std::vector<std::string> AllIds() {
  std::vector<std::string> ids;
  for (const FailureCase& failure_case : AllCases()) {
    ids.push_back(failure_case.id);
  }
  return ids;
}

INSTANTIATE_TEST_SUITE_P(AllCases, GraphSweepTest, ::testing::ValuesIn(AllIds()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// --- occurrence sensitivity -----------------------------------------------------------

// For timing-sensitive cases, injecting the right exception at the *wrong*
// occurrence must not satisfy the oracle (that is the whole point of
// temporal priorities, §5.2.3).
TEST(OccurrenceSensitivity, Hbase25905WindowIsNarrow) {
  const FailureCase& failure_case = *FindCase("hb-25905");
  BuiltCase built = BuildCase(failure_case);
  int satisfied = 0;
  int tried = 0;
  for (int64_t occ = 1; occ <= 24; ++occ) {
    auto candidate = built.ground_truth;
    candidate.occurrence = occ;
    interp::RunResult run =
        RunOnce(*built.program, built.failure_cluster, failure_case.failure_seed, {candidate});
    if (!run.injected.has_value()) {
      continue;
    }
    ++tried;
    satisfied += failure_case.oracle(*built.program, run) ? 1 : 0;
  }
  EXPECT_GE(tried, 10);
  EXPECT_GE(satisfied, 1);
  // Only a narrow band of occurrences wedges the WAL.
  EXPECT_LE(satisfied, tried / 2) << "the occurrence window is too permissive";
}

TEST(OccurrenceSensitivity, Kafka10048OnlyLastCheckpointMatters) {
  const FailureCase& failure_case = *FindCase("ka-10048");
  BuiltCase built = BuildCase(failure_case);
  int satisfied = 0;
  for (int64_t occ = 1; occ <= 4; ++occ) {
    auto candidate = built.ground_truth;
    candidate.occurrence = occ;
    interp::RunResult run =
        RunOnce(*built.program, built.failure_cluster, failure_case.failure_seed, {candidate});
    if (run.injected.has_value() && failure_case.oracle(*built.program, run)) {
      ++satisfied;
    }
  }
  EXPECT_EQ(satisfied, 1) << "only the final checkpoint emission creates the gap";
}

TEST(OccurrenceSensitivity, WrongExceptionTypeDoesNotReproduce) {
  // hb-19608: an InterruptedException mid-procedure leaves the failed flag;
  // an IOException at the same site is retried and must not reproduce.
  const FailureCase& failure_case = *FindCase("hb-19608");
  BuiltCase built = BuildCase(failure_case);
  auto candidate = built.ground_truth;
  candidate.type = built.program->FindException("IOException");
  interp::RunResult run =
      RunOnce(*built.program, built.failure_cluster, failure_case.failure_seed, {candidate});
  ASSERT_TRUE(run.injected.has_value());
  EXPECT_FALSE(failure_case.oracle(*built.program, run));
}

// --- search-level metrics consistency -------------------------------------------------

TEST(MetricsConsistency, SearchCountersMatchExploreResult) {
  const FailureCase& failure_case = *FindCase("zk-2247");
  BuiltCase built = BuildCase(failure_case);
  obs::MetricsRegistry metrics;
  explorer::ExplorerOptions options;
  options.metrics = &metrics;
  explorer::Explorer ex(built.spec, options);
  auto strategy = explorer::MakeFullFeedbackStrategy();
  explorer::ExploreResult result = ex.Explore(strategy.get());
  ASSERT_TRUE(result.reproduced);

  EXPECT_EQ(metrics.counter("explore.rounds"), result.rounds);
  EXPECT_EQ(metrics.counter("explore.reproduced"), 1);
  EXPECT_EQ(metrics.counter("explore.outcome.completed"),
            result.experiment.completed_rounds);
  EXPECT_EQ(metrics.counter("explore.outcome.crashed"), result.experiment.crashed_rounds);
  EXPECT_EQ(metrics.gauge("explore.last_round"), result.rounds);
  // One simulation per round (runs_per_round = 1, no retries), so the
  // injected-fault counters must equal the count of injected rounds.
  int64_t injected_rounds = 0;
  for (const explorer::RoundRecord& record : result.records) {
    injected_rounds += record.injected ? 1 : 0;
  }
  int64_t injected_total = 0;
  for (const auto& [name, value] : metrics.Snapshot().counters) {
    if (name.rfind("fault.injected.", 0) == 0) {
      injected_total += value;
    }
  }
  EXPECT_EQ(injected_total, injected_rounds);
  EXPECT_EQ(metrics.counter("sim.runs"), result.rounds);
  // The final snapshot the explorer stored is exactly the registry's state.
  EXPECT_EQ(result.metrics, metrics.Snapshot());
}

// --- reproduction script determinism across the dataset -------------------------------

TEST(ScriptDeterminism, ThreeCasesReplayTenTimes) {
  for (const char* id : {"zk-3157", "hb-25905", "ka-10048"}) {
    const FailureCase& failure_case = *FindCase(id);
    BuiltCase built = BuildCase(failure_case);
    explorer::ExplorerOptions options;
    options.max_rounds = 1000;
    explorer::Explorer ex(built.spec, options);
    auto strategy = explorer::MakeFullFeedbackStrategy();
    explorer::ExploreResult result = ex.Explore(strategy.get());
    ASSERT_TRUE(result.reproduced) << id;
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(explorer::Explorer::Replay(built.spec, *result.script)) << id;
    }
  }
}

}  // namespace
}  // namespace anduril::systems
