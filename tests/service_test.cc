// Reproduction-service tests: queue manifest integrity, scheduling policy,
// slice execution, and the service-level robustness contract — a queue that
// is killed (daemon crash, worker crash, SIGKILL, cooperative drain) and
// resumed finishes with byte-identical scripts and metrics to an
// uninterrupted run, at any worker count.
//
// Crash-emulation tests exec the real anduril_serve binary (the daemon
// _exit()s mid-queue, which an in-process call could not survive); its path
// arrives via the ANDURIL_SERVE_BIN compile definition. Everything else runs
// the service in-process through RunService.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "src/service/context_cache.h"
#include "src/service/daemon.h"
#include "src/service/manifest.h"
#include "src/service/runner.h"
#include "src/service/scheduler.h"
#include "src/service/work.h"
#include "src/systems/common.h"
#include "src/util/file.h"
#include "tests/test_util.h"

namespace anduril::service {
namespace {

namespace fs = std::filesystem;

// Fresh (empty) state directory under the test temp dir.
std::string FreshStateDir(const std::string& name) {
  const std::string dir = explorer::TempPath(name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

QueueCase MakeCase(const std::string& id, int budget, bool chain = false) {
  QueueCase entry;
  entry.id = id;
  entry.chain = chain;
  entry.round_budget = budget;
  return entry;
}

// The invariant fields a finished queue must agree on regardless of how it
// was sliced, sharded, or interrupted. slices_done and crashes are *not*
// invariant (a crashed slice is re-run), so they are compared only where the
// test controls them.
using Outcome = std::tuple<std::string, CaseState, int, std::string, uint64_t>;

std::vector<Outcome> Outcomes(const QueueManifest& manifest) {
  std::vector<Outcome> out;
  for (const QueueCase& entry : manifest.cases) {
    out.emplace_back(entry.id, entry.state, entry.rounds_done, entry.script,
                     entry.script_seed);
  }
  return out;
}

std::string ReadFileOrDie(const std::string& path) {
  std::string text;
  EXPECT_TRUE(ReadFileToString(path, &text)) << path;
  return text;
}

ServeOptions BaseOptions(const std::string& state_dir, std::vector<QueueCase> seed) {
  ServeOptions options;
  options.state_dir = state_dir;
  options.seed_cases = std::move(seed);
  options.workers = 0;
  options.verbose = false;
  return options;
}

// ---------------------------------------------------------------------------
// Manifest

QueueManifest SampleManifest() {
  QueueManifest manifest;
  manifest.slice_rounds = 50;
  manifest.cases.push_back(MakeCase("zk-2247", 2000));
  QueueCase done = MakeCase("ca-6415", 2000);
  done.state = CaseState::kReproduced;
  done.rounds_done = 17;
  done.slices_done = 1;
  done.script = "round 17: InjectionError at occurrence 2 (seed 99)\n";
  done.script_seed = 99;
  manifest.cases.push_back(done);
  QueueCase starved = MakeCase("hd-4233", 10);
  starved.state = CaseState::kStarved;
  starved.rounds_done = 10;
  starved.slices_done = 2;
  manifest.cases.push_back(starved);
  QueueCase chained = MakeCase("casc-retry-1", 500, /*chain=*/true);
  chained.crashes = 1;
  chained.rounds_done = 3;
  manifest.cases.push_back(chained);
  return manifest;
}

TEST(ManifestTest, SerializeParseRoundTrip) {
  const QueueManifest manifest = SampleManifest();
  QueueManifest parsed;
  std::string error;
  ASSERT_TRUE(ParseManifest(SerializeManifest(manifest), &parsed, &error)) << error;
  EXPECT_EQ(manifest, parsed);
}

TEST(ManifestTest, FileRoundTripAndMissingFile) {
  const std::string path = explorer::TempPath("service_manifest_roundtrip.json");
  const QueueManifest manifest = SampleManifest();
  ASSERT_TRUE(SaveManifestFile(path, manifest));
  QueueManifest loaded;
  std::string error;
  ASSERT_TRUE(LoadManifestFile(path, &loaded, &error)) << error;
  EXPECT_EQ(manifest, loaded);

  EXPECT_FALSE(LoadManifestFile(explorer::TempPath("no_such_manifest.json"), &loaded,
                                &error));
  EXPECT_FALSE(error.empty());
}

TEST(ManifestTest, RejectsFieldTampering) {
  std::string text = SerializeManifest(SampleManifest());
  // Same-length edit of a scheduling-relevant field: the JSON still parses,
  // but the integrity hash must catch the change.
  const size_t at = text.find("hd-4233");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 7, "hd-9999");
  QueueManifest parsed;
  std::string error;
  EXPECT_FALSE(ParseManifest(text, &parsed, &error));
  EXPECT_NE(error.find("integrity"), std::string::npos) << error;
}

TEST(ManifestTest, RejectsIntegrityCorruption) {
  std::string text = SerializeManifest(SampleManifest());
  const size_t at = text.find("\"integrity\"");
  ASSERT_NE(at, std::string::npos);
  // Flip the first digit of the stored hash.
  const size_t digit = text.find_first_of("0123456789", at + 11);
  ASSERT_NE(digit, std::string::npos);
  text[digit] = text[digit] == '9' ? '1' : '9';
  QueueManifest parsed;
  std::string error;
  EXPECT_FALSE(ParseManifest(text, &parsed, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ManifestTest, RejectsGarbageAndWrongVersion) {
  QueueManifest parsed;
  std::string error;
  EXPECT_FALSE(ParseManifest("not json at all", &parsed, &error));
  EXPECT_FALSE(ParseManifest("{\"anduril_queue\": 999, \"cases\": []}", &parsed, &error));
}

TEST(ManifestTest, CountsAndTerminality) {
  QueueManifest manifest = SampleManifest();
  EXPECT_FALSE(manifest.AllTerminal());
  EXPECT_EQ(manifest.CountState(CaseState::kPending), 2);
  EXPECT_EQ(manifest.CountState(CaseState::kReproduced), 1);
  EXPECT_EQ(manifest.CountState(CaseState::kStarved), 1);
  for (QueueCase& entry : manifest.cases) {
    if (entry.state == CaseState::kPending) {
      entry.state = CaseState::kFailed;
    }
  }
  EXPECT_TRUE(manifest.AllTerminal());
}

// ---------------------------------------------------------------------------
// Scheduler policy

TEST(SchedulerTest, PicksLeastRoundsWithLowestIndexTie) {
  QueueManifest manifest;
  manifest.cases.push_back(MakeCase("a", 100));
  manifest.cases.push_back(MakeCase("b", 100));
  manifest.cases.push_back(MakeCase("c", 100));
  manifest.cases[0].rounds_done = 5;
  manifest.cases[1].rounds_done = 2;
  manifest.cases[2].rounds_done = 2;
  std::vector<bool> busy(3, false);
  // b and c tie on rounds; the lower index wins.
  EXPECT_EQ(PickNextCase(manifest, busy), 1);
  busy[1] = true;
  EXPECT_EQ(PickNextCase(manifest, busy), 2);
  busy[2] = true;
  EXPECT_EQ(PickNextCase(manifest, busy), 0);
  busy[0] = true;
  EXPECT_EQ(PickNextCase(manifest, busy), -1);
}

TEST(SchedulerTest, SkipsTerminalCases) {
  QueueManifest manifest;
  manifest.cases.push_back(MakeCase("a", 100));
  manifest.cases.push_back(MakeCase("b", 100));
  manifest.cases[0].state = CaseState::kReproduced;
  EXPECT_EQ(PickNextCase(manifest, std::vector<bool>(2, false)), 1);
  manifest.cases[1].state = CaseState::kFailed;
  EXPECT_EQ(PickNextCase(manifest, std::vector<bool>(2, false)), -1);
}

TEST(SchedulerTest, StarveOutDemotesOnlyExhaustedBudgets) {
  QueueManifest manifest;
  manifest.cases.push_back(MakeCase("under", 100));
  manifest.cases.push_back(MakeCase("at-limit", 100));
  manifest.cases.push_back(MakeCase("unbounded", 0));
  manifest.cases[0].rounds_done = 99;
  manifest.cases[1].rounds_done = 100;
  manifest.cases[2].rounds_done = 100000;
  const std::vector<int> demoted = ApplyStarveOut(&manifest);
  EXPECT_EQ(demoted, std::vector<int>{1});
  EXPECT_EQ(manifest.cases[0].state, CaseState::kPending);
  EXPECT_EQ(manifest.cases[1].state, CaseState::kStarved);
  // budget 0 means "no starve-out line".
  EXPECT_EQ(manifest.cases[2].state, CaseState::kPending);
  // Idempotent: the already-starved case is not demoted again.
  EXPECT_TRUE(ApplyStarveOut(&manifest).empty());
}

// ---------------------------------------------------------------------------
// Work-unit handoff

TEST(WorkTest, UnitAndResultRoundTrip) {
  WorkUnit unit;
  unit.case_id = "zk-net-1";
  unit.chain = true;
  unit.slice_rounds = 25;
  unit.round_budget = 2000;
  unit.checkpoint_path = "/tmp/ckpt.json";
  unit.metrics_path = "/tmp/metrics.json";
  unit.daemon_pid = 12345;
  unit.emulate_crash_after_rounds = 2;
  WorkUnit unit_parsed;
  std::string error;
  ASSERT_TRUE(ParseWorkUnit(SerializeWorkUnit(unit), &unit_parsed, &error)) << error;
  EXPECT_EQ(unit, unit_parsed);

  WorkResult result;
  result.case_id = "zk-net-1";
  result.status = SliceStatus::kReproduced;
  result.rounds_done = 31;
  result.script = "round 31: StallFault at occurrence 1 (seed 7)\n";
  result.script_seed = 7;
  result.daemon_pid = 12345;
  WorkResult result_parsed;
  ASSERT_TRUE(ParseWorkResult(SerializeWorkResult(result), &result_parsed, &error))
      << error;
  EXPECT_EQ(result, result_parsed);

  EXPECT_FALSE(ParseWorkResult("{\"status\": \"bogus\"}", &result_parsed, &error));
}

// ---------------------------------------------------------------------------
// Context cache

TEST(ContextCacheTest, KeyedByCaseIdNotFingerprint) {
  // zk-2247 and zk-4203 share a program *shape* (same fault sites and
  // exception types), so their fingerprints collide — the cache must still
  // keep separate entries, or one case would be searched against the other's
  // workload and oracle.
  const systems::FailureCase* first = systems::FindCase("zk-2247");
  const systems::FailureCase* second = systems::FindCase("zk-4203");
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);

  ContextCache cache;
  ContextCache::Entry* entry_first = cache.Get(*first);
  ContextCache::Entry* entry_second = cache.Get(*second);
  ASSERT_NE(entry_first, nullptr);
  ASSERT_NE(entry_second, nullptr);
  EXPECT_NE(entry_first, entry_second);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(entry_first->fingerprint, entry_second->fingerprint);
  EXPECT_NE(entry_first->built.spec.failure_log_text,
            entry_second->built.spec.failure_log_text);

  // Repeat lookups reuse the entry (stable pointer).
  EXPECT_EQ(cache.Get(*first), entry_first);
  EXPECT_EQ(cache.size(), 2u);
}

// ---------------------------------------------------------------------------
// Slice runner

TEST(RunSliceTest, SlicedSearchMatchesOneShot) {
  const systems::FailureCase* failure_case = systems::FindCase("zk-2247");
  ASSERT_NE(failure_case, nullptr);

  auto run_with_slices = [&](const std::string& tag, int slice_rounds) {
    ContextCache cache;
    WorkUnit unit;
    unit.case_id = failure_case->id;
    unit.slice_rounds = slice_rounds;
    unit.round_budget = 2000;
    unit.checkpoint_path = explorer::TempPath("service_slice_" + tag + ".ckpt");
    unit.metrics_path = explorer::TempPath("service_slice_" + tag + ".metrics");
    fs::remove(unit.checkpoint_path);
    WorkResult result;
    int slices = 0;
    do {
      result = RunSlice(&cache, unit, nullptr);
      ++slices;
      if (slices >= 1000) {
        ADD_FAILURE() << "search failed to terminate within 1000 slices";
        break;
      }
    } while (result.status == SliceStatus::kSliceDone);
    EXPECT_EQ(result.status, SliceStatus::kReproduced);
    return std::make_tuple(result, slices, ReadFileOrDie(unit.metrics_path));
  };

  const auto [one_shot, one_shot_slices, one_shot_metrics] =
      run_with_slices("oneshot", 2000);
  // zk-2247 reproduces in 5 rounds, so 2-round slices force several
  // checkpoint/resume cycles.
  const auto [sliced, sliced_slices, sliced_metrics] = run_with_slices("fine", 2);
  EXPECT_EQ(one_shot_slices, 1);
  EXPECT_GT(sliced_slices, 1);

  // Byte-identical resume: same script, seed, round count, and final metrics
  // no matter how the rounds were cut into slices.
  EXPECT_EQ(one_shot.script, sliced.script);
  EXPECT_EQ(one_shot.script_seed, sliced.script_seed);
  EXPECT_EQ(one_shot.rounds_done, sliced.rounds_done);
  EXPECT_FALSE(one_shot.script.empty());
  EXPECT_EQ(one_shot_metrics, sliced_metrics);
}

TEST(RunSliceTest, UnknownCaseReportsError) {
  ContextCache cache;
  WorkUnit unit;
  unit.case_id = "no-such-case";
  unit.slice_rounds = 10;
  unit.checkpoint_path = explorer::TempPath("service_slice_unknown.ckpt");
  unit.metrics_path = explorer::TempPath("service_slice_unknown.metrics");
  const WorkResult result = RunSlice(&cache, unit, nullptr);
  EXPECT_EQ(result.status, SliceStatus::kError);
  EXPECT_FALSE(result.error.empty());
}

// ---------------------------------------------------------------------------
// Service end-to-end: in-process (workers=0) and sharded

std::vector<QueueCase> MixedSeed() {
  // Two plain cases from different systems plus a cascade (chain-mode) case.
  return {MakeCase("zk-2247", 2000), MakeCase("ca-6415", 2000),
          MakeCase("casc-retry-1", 2000, /*chain=*/true)};
}

TEST(ServiceTest, SerialQueueReproducesAndJournals) {
  const std::string dir = FreshStateDir("service_serial");
  const ServeReport report = RunService(BaseOptions(dir, MixedSeed()));
  ASSERT_FALSE(report.error) << report.error_text;
  EXPECT_FALSE(report.interrupted);
  EXPECT_TRUE(report.manifest.AllTerminal());
  EXPECT_EQ(report.manifest.CountState(CaseState::kReproduced), 3);
  for (const QueueCase& entry : report.manifest.cases) {
    EXPECT_FALSE(entry.script.empty()) << entry.id;
    EXPECT_GT(entry.rounds_done, 0) << entry.id;
  }

  // The journaled manifest matches the report, and the merged metrics file
  // exists — the queue's durable state is complete.
  QueueManifest journaled;
  std::string error;
  ASSERT_TRUE(LoadManifestFile(ManifestPath(dir), &journaled, &error)) << error;
  EXPECT_EQ(journaled, report.manifest);
  EXPECT_TRUE(fs::exists(MergedMetricsPath(dir)));
}

TEST(ServiceTest, SliceWidthDoesNotChangeOutcomes) {
  const std::string coarse_dir = FreshStateDir("service_width_coarse");
  ServeOptions coarse = BaseOptions(coarse_dir, MixedSeed());
  coarse.slice_rounds = 5000;  // every case in one slice
  const ServeReport coarse_report = RunService(coarse);
  ASSERT_FALSE(coarse_report.error) << coarse_report.error_text;

  const std::string fine_dir = FreshStateDir("service_width_fine");
  ServeOptions fine = BaseOptions(fine_dir, MixedSeed());
  fine.slice_rounds = 10;  // many checkpoint/resume cycles per case
  const ServeReport fine_report = RunService(fine);
  ASSERT_FALSE(fine_report.error) << fine_report.error_text;

  EXPECT_EQ(Outcomes(coarse_report.manifest), Outcomes(fine_report.manifest));
  EXPECT_EQ(ReadFileOrDie(MergedMetricsPath(coarse_dir)),
            ReadFileOrDie(MergedMetricsPath(fine_dir)));
}

TEST(ServiceTest, ShardedMatchesSerialAtOneAndEightWorkers) {
  std::vector<QueueCase> seed = MixedSeed();
  seed.push_back(MakeCase("hd-4233", 2000));
  seed.push_back(MakeCase("hb-3315", 2000));
  seed.push_back(MakeCase("ka-12508", 2000));

  const std::string serial_dir = FreshStateDir("service_shard_serial");
  ServeOptions serial = BaseOptions(serial_dir, seed);
  serial.slice_rounds = 25;
  const ServeReport serial_report = RunService(serial);
  ASSERT_FALSE(serial_report.error) << serial_report.error_text;

  for (const int workers : {1, 8}) {
    const std::string dir =
        FreshStateDir("service_shard_w" + std::to_string(workers));
    ServeOptions sharded = BaseOptions(dir, seed);
    sharded.slice_rounds = 25;
    sharded.workers = workers;
    sharded.serve_binary = ANDURIL_SERVE_BIN;
    const ServeReport report = RunService(sharded);
    ASSERT_FALSE(report.error) << report.error_text;
    EXPECT_TRUE(report.manifest.AllTerminal());
    EXPECT_EQ(Outcomes(serial_report.manifest), Outcomes(report.manifest))
        << workers << " workers";
    EXPECT_EQ(ReadFileOrDie(MergedMetricsPath(serial_dir)),
              ReadFileOrDie(MergedMetricsPath(dir)))
        << workers << " workers";
  }
}

TEST(ServiceTest, StarveOutDoesNotWedgeQueue) {
  // hd-4233 needs far more than 10 rounds; it must starve out while the
  // solvable case still reproduces — one stubborn case cannot block the
  // queue.
  const std::string dir = FreshStateDir("service_starve");
  ServeOptions options =
      BaseOptions(dir, {MakeCase("zk-2247", 2000), MakeCase("hd-4233", 10)});
  options.slice_rounds = 5;
  const ServeReport report = RunService(options);
  ASSERT_FALSE(report.error) << report.error_text;
  EXPECT_TRUE(report.manifest.AllTerminal());
  EXPECT_EQ(report.manifest.cases[0].state, CaseState::kReproduced);
  EXPECT_EQ(report.manifest.cases[1].state, CaseState::kStarved);
  EXPECT_EQ(report.manifest.cases[1].rounds_done, 10);
  EXPECT_TRUE(report.manifest.cases[1].script.empty());
}

// ---------------------------------------------------------------------------
// Robustness: drain, worker crash, daemon crash, SIGKILL

TEST(ServiceTest, DrainThenResumeMatchesUninterrupted) {
  const std::string baseline_dir = FreshStateDir("service_drain_baseline");
  const ServeReport baseline = RunService(BaseOptions(baseline_dir, MixedSeed()));
  ASSERT_FALSE(baseline.error) << baseline.error_text;

  // A drain flag that is already set stops the daemon before it dispatches
  // anything — the deterministic extreme of SIGTERM-at-any-instant.
  const std::string dir = FreshStateDir("service_drain");
  std::atomic<bool> cancel{true};
  ServeOptions options = BaseOptions(dir, MixedSeed());
  options.cancel = &cancel;
  const ServeReport drained = RunService(options);
  EXPECT_TRUE(drained.interrupted);
  EXPECT_FALSE(drained.manifest.AllTerminal());

  // The drained queue was journaled; a fresh run resumes and finishes with
  // the baseline's exact outcomes.
  cancel.store(false);
  const ServeReport resumed = RunService(options);
  ASSERT_FALSE(resumed.error) << resumed.error_text;
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(Outcomes(baseline.manifest), Outcomes(resumed.manifest));
  EXPECT_EQ(ReadFileOrDie(MergedMetricsPath(baseline_dir)),
            ReadFileOrDie(MergedMetricsPath(dir)));
}

TEST(ServiceTest, WorkerKilledMidRoundConvergesToBaseline) {
  std::vector<QueueCase> seed = MixedSeed();

  const std::string baseline_dir = FreshStateDir("service_wcrash_baseline");
  ServeOptions baseline_options = BaseOptions(baseline_dir, seed);
  baseline_options.slice_rounds = 10;
  baseline_options.workers = 2;
  baseline_options.serve_binary = ANDURIL_SERVE_BIN;
  const ServeReport baseline = RunService(baseline_options);
  ASSERT_FALSE(baseline.error) << baseline.error_text;

  // The third dispatched slice dies two rounds in, without reporting —
  // indistinguishable from a SIGKILL between rounds. The daemon must requeue
  // the case, respawn the slot, and still converge to the baseline.
  const std::string dir = FreshStateDir("service_wcrash");
  ServeOptions options = BaseOptions(dir, seed);
  options.slice_rounds = 10;
  options.workers = 2;
  options.serve_binary = ANDURIL_SERVE_BIN;
  options.worker_crash_slice = 3;
  options.worker_crash_rounds = 2;
  const ServeReport report = RunService(options);
  ASSERT_FALSE(report.error) << report.error_text;
  EXPECT_GE(report.worker_respawns, 1);
  EXPECT_TRUE(report.manifest.AllTerminal());
  EXPECT_EQ(Outcomes(baseline.manifest), Outcomes(report.manifest));
  EXPECT_EQ(ReadFileOrDie(MergedMetricsPath(baseline_dir)),
            ReadFileOrDie(MergedMetricsPath(dir)));
}

// Spawns `anduril_serve run <dir> <flags...>` and returns its exit code
// (negative signal number if it died to a signal). When `kill_after_ms` is
// positive the child gets SIGKILL after that delay.
int RunServeCli(const std::vector<std::string>& args, int kill_after_ms = 0) {
  std::vector<std::string> argv_storage = {ANDURIL_SERVE_BIN};
  argv_storage.insert(argv_storage.end(), args.begin(), args.end());
  std::vector<char*> argv;
  argv.reserve(argv_storage.size() + 1);
  for (std::string& arg : argv_storage) {
    argv.push_back(arg.data());
  }
  argv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid == 0) {
    execv(ANDURIL_SERVE_BIN, argv.data());
    _exit(127);
  }
  if (pid < 0) {
    return -1000;
  }
  if (kill_after_ms > 0) {
    usleep(static_cast<useconds_t>(kill_after_ms) * 1000);
    kill(pid, SIGKILL);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  if (WIFEXITED(status)) {
    return WEXITSTATUS(status);
  }
  if (WIFSIGNALED(status)) {
    return -WTERMSIG(status);
  }
  return -1001;
}

constexpr const char* kCliCases = "--cases=zk-2247,ca-6415,casc-retry-1,hd-4233";

std::vector<std::string> CliArgs(const std::string& dir,
                                 const std::vector<std::string>& extra = {}) {
  std::vector<std::string> args = {"run",  dir,  kCliCases, "--workers=2",
                                   "--slice-rounds=10", "--quiet"};
  args.insert(args.end(), extra.begin(), extra.end());
  return args;
}

TEST(ServiceCrashTest, DaemonKilledBetweenCommitsResumesByteIdentically) {
  const std::string baseline_dir = FreshStateDir("service_dcrash_baseline");
  ASSERT_EQ(RunServeCli(CliArgs(baseline_dir)), 0);

  // The daemon _exit()s immediately after journaling its 4th slice result —
  // a kill landing between two queue commits, with workers orphaned.
  const std::string dir = FreshStateDir("service_dcrash");
  ASSERT_EQ(RunServeCli(CliArgs(dir, {"--crash-after-slices=4"})), 42);

  // The half-finished queue must be loadable and visibly partial.
  QueueManifest partial;
  std::string error;
  ASSERT_TRUE(LoadManifestFile(ManifestPath(dir), &partial, &error)) << error;
  EXPECT_FALSE(partial.AllTerminal());

  // Rerunning the same command resumes and finishes with baseline outcomes.
  ASSERT_EQ(RunServeCli(CliArgs(dir)), 0);
  QueueManifest baseline_manifest;
  QueueManifest resumed_manifest;
  ASSERT_TRUE(
      LoadManifestFile(ManifestPath(baseline_dir), &baseline_manifest, &error))
      << error;
  ASSERT_TRUE(LoadManifestFile(ManifestPath(dir), &resumed_manifest, &error)) << error;
  EXPECT_EQ(Outcomes(baseline_manifest), Outcomes(resumed_manifest));
  EXPECT_EQ(ReadFileOrDie(MergedMetricsPath(baseline_dir)),
            ReadFileOrDie(MergedMetricsPath(dir)));
}

TEST(ServiceCrashTest, DaemonSigkilledResumesByteIdentically) {
  const std::string baseline_dir = FreshStateDir("service_sigkill_baseline");
  ASSERT_EQ(RunServeCli(CliArgs(baseline_dir)), 0);

  // A real SIGKILL at an arbitrary instant. The daemon may or may not have
  // finished by then; either way the follow-up run must land on the baseline
  // outcomes — that is the whole point of the journal + checkpoint design.
  const std::string dir = FreshStateDir("service_sigkill");
  const int first = RunServeCli(CliArgs(dir), /*kill_after_ms=*/30);
  EXPECT_TRUE(first == -SIGKILL || first == 0) << "exit " << first;

  ASSERT_EQ(RunServeCli(CliArgs(dir)), 0);
  QueueManifest baseline_manifest;
  QueueManifest resumed_manifest;
  std::string error;
  ASSERT_TRUE(
      LoadManifestFile(ManifestPath(baseline_dir), &baseline_manifest, &error))
      << error;
  ASSERT_TRUE(LoadManifestFile(ManifestPath(dir), &resumed_manifest, &error)) << error;
  EXPECT_EQ(Outcomes(baseline_manifest), Outcomes(resumed_manifest));
  EXPECT_EQ(ReadFileOrDie(MergedMetricsPath(baseline_dir)),
            ReadFileOrDie(MergedMetricsPath(dir)));
}

}  // namespace
}  // namespace anduril::service
