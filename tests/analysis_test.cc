#include <gtest/gtest.h>

#include "src/analysis/causal_graph.h"
#include "src/analysis/exception_flow.h"
#include "src/analysis/indexes.h"
#include "src/analysis/graph_export.h"
#include "src/analysis/observable_map.h"
#include "src/logdiff/parser.h"
#include "src/ir/builder.h"

namespace anduril::analysis {
namespace {

using ir::Expr;
using ir::LogLevel;
using ir::MethodBuilder;
using ir::Program;

class AnalysisTest : public ::testing::Test {
 protected:
  AnalysisTest() {
    program_.DefineException("IOException");
    program_.DefineException("FileNotFoundException", "IOException");
    program_.DefineException("TimeoutException");
    program_.DefineException("ExecutionException");
  }

  ir::GlobalStmt FindStmt(const std::string& method_name, ir::StmtKind kind,
                          int skip = 0) const {
    const ir::Method& method = program_.method(program_.FindMethod(method_name));
    for (ir::StmtId s = 0; s < static_cast<ir::StmtId>(method.stmts.size()); ++s) {
      if (method.stmt(s).kind == kind) {
        if (skip-- == 0) {
          return ir::GlobalStmt{method.id, s};
        }
      }
    }
    return ir::GlobalStmt{};
  }

  ir::FaultSiteId Site(const std::string& prefix) const {
    for (const ir::FaultSite& site : program_.fault_sites()) {
      if (site.name.find(prefix + "@") == 0) {
        return site.id;
      }
    }
    return ir::kInvalidId;
  }

  Program program_;
};

// --- exception flow --------------------------------------------------------------

TEST_F(AnalysisTest, EscapesFromThrowAndExternal) {
  MethodBuilder b(&program_, "m");
  b.Throw("TimeoutException");
  b.External("site", {"IOException"});
  b.Build();
  program_.Finalize();
  ExceptionFlow flow(program_);
  const auto& escapes = flow.Escapes(program_.FindMethod("m"));
  ASSERT_EQ(escapes.size(), 2u);
}

TEST_F(AnalysisTest, TryCatchAbsorbsMatchingTypes) {
  MethodBuilder b(&program_, "m");
  b.TryCatch([&] { b.External("site", {"FileNotFoundException"}); },
             {{"IOException", [&] {}}});
  b.Build();
  program_.Finalize();
  ExceptionFlow flow(program_);
  EXPECT_TRUE(flow.Escapes(program_.FindMethod("m")).empty());
}

TEST_F(AnalysisTest, NonMatchingTypeEscapesTry) {
  MethodBuilder b(&program_, "m");
  b.TryCatch([&] { b.External("site", {"TimeoutException"}); }, {{"IOException", [&] {}}});
  b.Build();
  program_.Finalize();
  ExceptionFlow flow(program_);
  const auto& escapes = flow.Escapes(program_.FindMethod("m"));
  ASSERT_EQ(escapes.size(), 1u);
  EXPECT_EQ(escapes[0].type, program_.FindException("TimeoutException"));
  EXPECT_EQ(escapes[0].kind, OriginKind::kExternal);
}

TEST_F(AnalysisTest, CatchBlockCodeIsNotProtectedByItsOwnClause) {
  MethodBuilder b(&program_, "m");
  b.TryCatch([&] { b.External("a", {"IOException"}); },
             {{"IOException", [&] { b.Throw("IOException"); }}});
  b.Build();
  program_.Finalize();
  ExceptionFlow flow(program_);
  const auto& escapes = flow.Escapes(program_.FindMethod("m"));
  ASSERT_EQ(escapes.size(), 1u);
  EXPECT_EQ(escapes[0].kind, OriginKind::kNew);
}

TEST_F(AnalysisTest, InvokeEscapesPropagateTransitively) {
  {
    MethodBuilder b(&program_, "deep");
    b.External("root.site", {"IOException"});
  }
  {
    MethodBuilder b(&program_, "mid");
    b.Invoke("deep");
  }
  {
    MethodBuilder b(&program_, "top");
    b.Invoke("mid");
  }
  program_.Finalize();
  ExceptionFlow flow(program_);
  const auto& escapes = flow.Escapes(program_.FindMethod("top"));
  ASSERT_EQ(escapes.size(), 1u);
  EXPECT_EQ(escapes[0].kind, OriginKind::kViaInvoke);
  EXPECT_EQ(escapes[0].type, program_.FindException("IOException"));
}

TEST_F(AnalysisTest, RecursionReachesFixpoint) {
  {
    MethodBuilder b(&program_, "a");
    b.Invoke("b");
    b.External("a.site", {"IOException"});
  }
  {
    MethodBuilder b(&program_, "b");
    b.Invoke("a");
  }
  program_.Finalize();
  ExceptionFlow flow(program_);
  EXPECT_FALSE(flow.Escapes(program_.FindMethod("a")).empty());
  EXPECT_FALSE(flow.Escapes(program_.FindMethod("b")).empty());
  EXPECT_LT(flow.iterations(), 10);
}

TEST_F(AnalysisTest, FutureGetEscapesExecutionException) {
  {
    MethodBuilder b(&program_, "task");
    b.External("task.site", {"IOException"});
  }
  {
    MethodBuilder b(&program_, "m");
    b.Submit("task", "fut", "executor");
    b.FutureGet("fut");
  }
  program_.Finalize();
  ExceptionFlow flow(program_);
  const auto& escapes = flow.Escapes(program_.FindMethod("m"));
  ASSERT_EQ(escapes.size(), 1u);
  EXPECT_EQ(escapes[0].kind, OriginKind::kViaFuture);
  EXPECT_EQ(escapes[0].type, program_.FindException("ExecutionException"));
}

TEST_F(AnalysisTest, AwaitTimeoutEscapes) {
  MethodBuilder b(&program_, "m");
  b.Await(b.Eq("x", 1), 100, "TimeoutException");
  b.Build();
  program_.Finalize();
  ExceptionFlow flow(program_);
  const auto& escapes = flow.Escapes(program_.FindMethod("m"));
  ASSERT_EQ(escapes.size(), 1u);
  EXPECT_EQ(escapes[0].kind, OriginKind::kAwaitTimeout);
}

TEST_F(AnalysisTest, HandlerOriginsRespectClausePrecedence) {
  MethodBuilder b(&program_, "m");
  b.TryCatch(
      [&] {
        b.External("fnf.site", {"FileNotFoundException"});
        b.External("io.site", {"IOException"});
      },
      {{"FileNotFoundException", [&] {}}, {"IOException", [&] {}}});
  b.Build();
  program_.Finalize();
  ExceptionFlow flow(program_);
  ir::GlobalStmt trycatch = FindStmt("m", ir::StmtKind::kTryCatch);
  auto clause0 = flow.HandlerOrigins(trycatch.method, trycatch.stmt, 0);
  auto clause1 = flow.HandlerOrigins(trycatch.method, trycatch.stmt, 1);
  ASSERT_EQ(clause0.size(), 1u);
  EXPECT_EQ(clause0[0].type, program_.FindException("FileNotFoundException"));
  ASSERT_EQ(clause1.size(), 1u);
  EXPECT_EQ(clause1[0].type, program_.FindException("IOException"));
}

TEST_F(AnalysisTest, NestedTryAbsorbsBeforeOuterHandler) {
  MethodBuilder b(&program_, "m");
  b.TryCatch(
      [&] {
        b.TryCatch([&] { b.External("inner.site", {"IOException"}); },
                   {{"IOException", [&] {}}});
        b.External("outer.site", {"IOException"});
      },
      {{"IOException", [&] {}}});
  b.Build();
  program_.Finalize();
  ExceptionFlow flow(program_);
  ir::GlobalStmt trycatch = FindStmt("m", ir::StmtKind::kTryCatch);
  auto origins = flow.HandlerOrigins(trycatch.method, trycatch.stmt, 0);
  ASSERT_EQ(origins.size(), 1u);
  const ir::Method& method = program_.method(trycatch.method);
  EXPECT_EQ(method.stmt(origins[0].stmt).site_name, "outer.site");
}

// --- indexes ---------------------------------------------------------------------

TEST_F(AnalysisTest, CallersIncludeInvokeSendSubmit) {
  {
    MethodBuilder b(&program_, "callee");
    b.Nop();
  }
  {
    MethodBuilder b(&program_, "m");
    b.Invoke("callee");
    b.Send("callee", "n1");
    b.Submit("callee", "fut", "executor");
  }
  program_.Finalize();
  ProgramIndexes indexes(program_);
  EXPECT_EQ(indexes.CallersOf(program_.FindMethod("callee")).size(), 3u);
}

TEST_F(AnalysisTest, WritersIncludeAssignAndSignal) {
  MethodBuilder b(&program_, "m");
  b.Assign("x", Expr::Const(1));
  b.Signal("x");
  b.Assign("y", Expr::Const(2));
  b.Build();
  program_.Finalize();
  ProgramIndexes indexes(program_);
  EXPECT_EQ(indexes.WritersOf(program_.InternVar("x")).size(), 2u);
  EXPECT_EQ(indexes.WritersOf(program_.InternVar("y")).size(), 1u);
  EXPECT_TRUE(indexes.WritersOf(program_.InternVar("unwritten")).empty());
}

TEST_F(AnalysisTest, SubmitsForMapsFutureVars) {
  {
    MethodBuilder b(&program_, "task");
    b.Nop();
  }
  {
    MethodBuilder b(&program_, "m");
    b.Submit("task", "fut", "executor");
  }
  program_.Finalize();
  ProgramIndexes indexes(program_);
  EXPECT_EQ(indexes.SubmitsFor(program_.InternVar("fut")).size(), 1u);
}

// --- causal graph -----------------------------------------------------------------

// Builds the graph with the given log statement as the single sink.
CausalGraph GraphFromLog(const Program& program, ir::GlobalStmt log_stmt) {
  CausalSink sink;
  sink.observable = 0;
  sink.log_stmt = log_stmt;
  return CausalGraph(program, {sink});
}

TEST_F(AnalysisTest, HandlerChainReachesExternalSource) {
  MethodBuilder b(&program_, "m");
  b.TryCatch([&] { b.External("root.site", {"IOException"}); },
             {{"IOException", [&] { b.Log(LogLevel::kWarn, "t", "failed"); }}});
  b.Build();
  program_.Finalize();
  CausalGraph graph = GraphFromLog(program_, FindStmt("m", ir::StmtKind::kLog));
  ASSERT_EQ(graph.sources().size(), 1u);
  EXPECT_EQ(graph.sources()[0].site, Site("root.site"));
  // Distance: log <- handler <- external = 2 hops.
  auto dist = graph.DistancesToObservable(0);
  EXPECT_EQ(dist[static_cast<size_t>(graph.sources()[0].node)], 2);
}

TEST_F(AnalysisTest, ConditionSlicingJumpsToWritersAcrossMethods) {
  {
    MethodBuilder b(&program_, "writer");
    b.TryCatch([&] { b.External("w.site", {"IOException"}); },
               {{"IOException", [&] {}}});
    b.Assign("flag", Expr::Const(1));
  }
  {
    MethodBuilder b(&program_, "m");
    b.If(b.Eq("flag", 0), [&] { b.Log(LogLevel::kError, "t", "flag never set"); });
  }
  program_.Finalize();
  CausalGraph graph = GraphFromLog(program_, FindStmt("m", ir::StmtKind::kLog));
  // Chain: log <- condition(flag==0) <- location(assign in writer) <-
  // (preceding-sibling try containing the external call) <- external source.
  ASSERT_FALSE(graph.sources().empty());
  bool found = false;
  for (const auto& source : graph.sources()) {
    if (source.site == Site("w.site")) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(AnalysisTest, InvocationPriorsAreCallSites) {
  {
    MethodBuilder b(&program_, "logger_method");
    b.Log(LogLevel::kInfo, "t", "in callee");
  }
  {
    MethodBuilder b(&program_, "caller");
    b.External("pre.site", {"IOException"});
    b.Invoke("logger_method");
  }
  program_.Finalize();
  CausalGraph graph = GraphFromLog(program_, FindStmt("logger_method", ir::StmtKind::kLog));
  // log <- invocation(logger_method) <- location(invoke in caller) whose
  // preceding sibling is an external call -> source found.
  bool found = false;
  for (const auto& source : graph.sources()) {
    if (source.site == Site("pre.site")) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(AnalysisTest, ThrowInCatchIsDowngradedThroughHandler) {
  MethodBuilder b(&program_, "m");
  b.TryCatch(
      [&] {
        b.TryCatch([&] { b.External("deep.site", {"IOException"}); },
                   {{"IOException", [&] { b.Throw("TimeoutException"); }}});
      },
      {{"TimeoutException", [&] { b.Log(LogLevel::kError, "t", "gave up"); }}});
  b.Build();
  program_.Finalize();
  CausalGraph graph = GraphFromLog(program_, FindStmt("m", ir::StmtKind::kLog));
  // The throw-new inside the inner catch must not be terminal: the chain
  // continues through the inner handler to the external site.
  bool external_found = false;
  for (const auto& source : graph.sources()) {
    if (source.site == Site("deep.site")) {
      external_found = true;
    }
  }
  EXPECT_TRUE(external_found);
}

TEST_F(AnalysisTest, AwaitTimeoutContinuesThroughCondition) {
  {
    MethodBuilder b(&program_, "producer");
    b.TryCatch(
        [&] {
          b.External("net.site", {"IOException"});
          b.Assign("ready", Expr::Const(1));
          b.Signal("ready");
        },
        {{"IOException", [&] {}}});
  }
  {
    MethodBuilder b(&program_, "m");
    b.TryCatch([&] { b.Await(b.Eq("ready", 1), 100, "TimeoutException"); },
               {{"TimeoutException", [&] { b.Log(LogLevel::kWarn, "t", "timed out"); }}});
  }
  program_.Finalize();
  CausalGraph graph = GraphFromLog(program_, FindStmt("m", ir::StmtKind::kLog));
  // timeout log <- handler <- await-timeout (new-exc) <- condition(ready)
  // <- writers(ready) in producer <- ... <- external source.
  bool found = false;
  for (const auto& source : graph.sources()) {
    if (source.site == Site("net.site")) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(AnalysisTest, FutureSemanticsCrossThreadPropagation) {
  {
    MethodBuilder b(&program_, "task");
    b.External("task.site", {"IOException"});
  }
  {
    MethodBuilder b(&program_, "m");
    b.Submit("task", "fut", "executor");
    b.TryCatch([&] { b.FutureGet("fut"); },
               {{"ExecutionException",
                 [&] { b.Log(LogLevel::kWarn, "t", "task failed"); }}});
  }
  program_.Finalize();
  CausalGraph graph = GraphFromLog(program_, FindStmt("m", ir::StmtKind::kLog));
  bool found = false;
  for (const auto& source : graph.sources()) {
    if (source.site == Site("task.site")) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(AnalysisTest, UnrelatedSitesStayOutOfTheGraph) {
  {
    MethodBuilder b(&program_, "unrelated");
    b.External("cold.site", {"IOException"});
  }
  {
    MethodBuilder b(&program_, "m");
    b.TryCatch([&] { b.External("hot.site", {"IOException"}); },
               {{"IOException", [&] { b.Log(LogLevel::kWarn, "t", "hot failed"); }}});
  }
  program_.Finalize();
  CausalGraph graph = GraphFromLog(program_, FindStmt("m", ir::StmtKind::kLog));
  for (const auto& source : graph.sources()) {
    EXPECT_NE(source.site, Site("cold.site"));
  }
}

TEST_F(AnalysisTest, StatsCountVerticesEdgesAndInferredSites) {
  MethodBuilder b(&program_, "m");
  b.TryCatch([&] { b.External("s1", {"IOException"}); },
             {{"IOException", [&] { b.Log(LogLevel::kWarn, "t", "oops"); }}});
  b.Build();
  program_.Finalize();
  CausalGraph graph = GraphFromLog(program_, FindStmt("m", ir::StmtKind::kLog));
  EXPECT_GT(graph.stats().vertices, 0);
  EXPECT_GT(graph.stats().edges, 0);
  EXPECT_EQ(graph.stats().inferred_fault_sites, 1);
  EXPECT_EQ(static_cast<size_t>(graph.stats().vertices), graph.node_count());
}

// --- observable mapper -----------------------------------------------------------------

TEST_F(AnalysisTest, TemplateKeyMatchesRenderedAndSanitizedMessage) {
  MethodBuilder b(&program_, "m");
  b.Log(LogLevel::kInfo, "comp", "did {} things", {Expr::Const(7)});
  b.Build();
  program_.Finalize();
  ObservableMapper mapper(program_);
  // What the log diff would extract for the rendered message "did 7 things".
  std::vector<analysis::CausalSink> sinks = mapper.Resolve({"INFO|comp|did # things"});
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(sinks[0].log_stmt, FindStmt("m", ir::StmtKind::kLog));
}

TEST_F(AnalysisTest, ExcSuffixIsStrippedForTemplateMatch) {
  MethodBuilder b(&program_, "m");
  b.TryCatch([&] { b.External("s", {"IOException"}); },
             {{"IOException", [&] { b.LogExc(LogLevel::kWarn, "comp", "it broke"); }}});
  b.Build();
  program_.Finalize();
  ObservableMapper mapper(program_);
  auto sinks = mapper.Resolve({"WARN|comp|it broke [exc=IOException at s@m##]"});
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(sinks[0].direct_site, ir::kInvalidId);
}

TEST_F(AnalysisTest, UncaughtMessageResolvesToFaultSiteDirectly) {
  MethodBuilder b(&program_, "m");
  b.External("boom.site", {"IOException"});
  b.Build();
  program_.Finalize();
  ObservableMapper mapper(program_);
  const ir::FaultSite& site = program_.fault_site(Site("boom.site"));
  std::string sanitized_site = logdiff::Sanitize(site.name);
  auto sinks = mapper.Resolve(
      {"ERROR|thread|Uncaught exception terminating thread: IOException [exc=IOException at " +
       sanitized_site + "]"});
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(sinks[0].direct_site, site.id);
  EXPECT_EQ(sinks[0].direct_type, program_.FindException("IOException"));
}

TEST_F(AnalysisTest, UnknownKeysResolveToNothing) {
  MethodBuilder b(&program_, "m");
  b.Nop();
  b.Build();
  program_.Finalize();
  ObservableMapper mapper(program_);
  EXPECT_TRUE(mapper.Resolve({"INFO|x|never logged anywhere"}).empty());
  EXPECT_TRUE(mapper.Resolve({"not even a key"}).empty());
}

// --- graph export -----------------------------------------------------------------

TEST_F(AnalysisTest, DotExportIsWellFormed) {
  MethodBuilder b(&program_, "m");
  b.TryCatch([&] { b.External("root.site", {"IOException"}); },
             {{"IOException", [&] { b.Log(LogLevel::kWarn, "t", "failed"); }}});
  b.Build();
  program_.Finalize();
  CausalGraph graph = GraphFromLog(program_, FindStmt("m", ir::StmtKind::kLog));
  std::string dot = ExportDot(program_, graph);
  EXPECT_NE(dot.find("digraph causal"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);          // source
  EXPECT_NE(dot.find("shape=doublecircle"), std::string::npos); // sink
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST_F(AnalysisTest, DotExportHonorsNodeCap) {
  MethodBuilder b(&program_, "m");
  b.TryCatch([&] { b.External("root.site", {"IOException"}); },
             {{"IOException", [&] { b.Log(LogLevel::kWarn, "t", "failed"); }}});
  b.Build();
  program_.Finalize();
  CausalGraph graph = GraphFromLog(program_, FindStmt("m", ir::StmtKind::kLog));
  std::string dot = ExportDot(program_, graph, /*max_nodes=*/2);
  EXPECT_NE(dot.find("truncated: 2 of"), std::string::npos);
}

TEST_F(AnalysisTest, EscapeDotLabelHostileTemplate) {
  // Quotes, backslashes, newlines, tabs, and raw control bytes must all come
  // out as valid double-quoted DOT label content.
  std::string hostile = "say \"hi\"\\\nnext\tline";
  hostile.push_back('\x01');
  hostile.push_back('\x7f');
  std::string escaped = EscapeDotLabel(hostile);
  EXPECT_EQ(escaped, "say \\\"hi\\\"\\\\\\nnext\\tline\\\\x01\\\\x7f");

  // The cap counts source characters and never cuts an escape in half: four
  // characters of "a\"b\"" keep both full quote escapes.
  EXPECT_EQ(EscapeDotLabel("a\"b\"cdef", 4), "a\\\"b\\\"...");
  EXPECT_EQ(EscapeDotLabel("short", 10), "short");

  // Multi-byte UTF-8 is never split: "héllo" capped at 2 keeps all of "é".
  std::string utf8 = "h\xc3\xa9llo";
  EXPECT_EQ(EscapeDotLabel(utf8, 2), "h\xc3\xa9...");
}

TEST_F(AnalysisTest, HostileLogTemplateProducesValidDot) {
  MethodBuilder b(&program_, "m");
  b.TryCatch([&] { b.External("root.site", {"IOException"}); },
             {{"IOException",
               [&] { b.Log(LogLevel::kWarn, "t", "bad \"quote\" and \\ and \n newline"); }}});
  b.Build();
  program_.Finalize();
  CausalGraph graph = GraphFromLog(program_, FindStmt("m", ir::StmtKind::kLog));
  std::string dot = ExportDot(program_, graph);
  // No raw newline may survive inside a label: every line of the output
  // must have balanced (even) unescaped quotes.
  size_t line_start = 0;
  while (line_start < dot.size()) {
    size_t line_end = dot.find('\n', line_start);
    if (line_end == std::string::npos) {
      line_end = dot.size();
    }
    int unescaped_quotes = 0;
    for (size_t i = line_start; i < line_end; ++i) {
      if (dot[i] == '"' && (i == line_start || dot[i - 1] != '\\')) {
        ++unescaped_quotes;
      }
    }
    EXPECT_EQ(unescaped_quotes % 2, 0) << dot.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
  }
}

// --- exception-flow edge cases ---------------------------------------------------

TEST_F(AnalysisTest, RethrowInHandlerEscapesAsCaughtType) {
  MethodBuilder b(&program_, "m");
  b.TryCatch([&] { b.External("site", {"FileNotFoundException"}); },
             {{"IOException", [&] { b.Rethrow(); }}});
  b.Build();
  program_.Finalize();
  ExceptionFlow flow(program_);
  const auto& escapes = flow.Escapes(program_.FindMethod("m"));
  // The rethrow re-raises under the clause's static type: IOException.
  ASSERT_EQ(escapes.size(), 1u);
  EXPECT_EQ(escapes[0].type, program_.FindException("IOException"));
  EXPECT_EQ(escapes[0].kind, OriginKind::kRethrow);
}

TEST_F(AnalysisTest, NestedTryCatchRethrowAbsorbedByOuter) {
  MethodBuilder b(&program_, "m");
  b.TryCatch(
      [&] {
        b.TryCatch([&] { b.External("site", {"FileNotFoundException"}); },
                   {{"FileNotFoundException", [&] { b.Rethrow(); }}});
      },
      {{"IOException", [&] { b.Log(LogLevel::kWarn, "t", "outer caught"); }}});
  b.Build();
  program_.Finalize();
  ExceptionFlow flow(program_);
  // The inner rethrow escapes the inner try but the outer base-type clause
  // absorbs it: nothing leaves the method.
  EXPECT_TRUE(flow.Escapes(program_.FindMethod("m")).empty());
  // And the outer handler sees the rethrown FileNotFoundException.
  ir::GlobalStmt outer = FindStmt("m", ir::StmtKind::kTryCatch, 0);
  EXPECT_FALSE(flow.HandlerOrigins(outer.method, outer.stmt, 0).empty());
}

TEST_F(AnalysisTest, SubmittedTaskEscapeSurfacesViaFutureGet) {
  MethodBuilder worker(&program_, "worker");
  worker.External("task.site", {"IOException"});
  worker.Build();
  MethodBuilder b(&program_, "m");
  b.Submit("worker", "fut", "executor");
  b.TryCatch([&] { b.FutureGet("fut", /*timeout_ms=*/100, "TimeoutException"); },
             {{"ExecutionException", [&] { b.Log(LogLevel::kWarn, "t", "task failed"); }}});
  b.Build();
  program_.Finalize();
  ExceptionFlow flow(program_);
  // The worker's IOException escapes the worker but reaches m only as the
  // future's ExecutionException wrapper, which the handler absorbs. The
  // await-timeout TimeoutException escapes m.
  ASSERT_EQ(flow.Escapes(program_.FindMethod("worker")).size(), 1u);
  const auto& escapes = flow.Escapes(program_.FindMethod("m"));
  ASSERT_EQ(escapes.size(), 1u);
  EXPECT_EQ(escapes[0].type, program_.FindException("TimeoutException"));
  ir::GlobalStmt trycatch = FindStmt("m", ir::StmtKind::kTryCatch);
  EXPECT_FALSE(flow.HandlerOrigins(trycatch.method, trycatch.stmt, 0).empty());
}

TEST_F(AnalysisTest, ShadowedHandlerClauseHasNoOrigins) {
  MethodBuilder b(&program_, "m");
  b.TryCatch([&] { b.External("site", {"FileNotFoundException"}); },
             {{"IOException", [&] {}}, {"FileNotFoundException", [&] {}}});
  b.Build();
  program_.Finalize();
  ExceptionFlow flow(program_);
  ir::GlobalStmt trycatch = FindStmt("m", ir::StmtKind::kTryCatch);
  // Clause precedence: the base-type clause 0 wins, the exact-type clause 1
  // is shadowed and can never fire.
  EXPECT_FALSE(flow.HandlerOrigins(trycatch.method, trycatch.stmt, 0).empty());
  EXPECT_TRUE(flow.HandlerOrigins(trycatch.method, trycatch.stmt, 1).empty());
}

TEST_F(AnalysisTest, DescribeNodeNamesEveryKind) {
  MethodBuilder b(&program_, "m");
  b.TryCatch([&] { b.External("root.site", {"IOException"}); },
             {{"IOException", [&] { b.Log(LogLevel::kWarn, "t", "failed"); }}});
  b.Build();
  program_.Finalize();
  CausalGraph graph = GraphFromLog(program_, FindStmt("m", ir::StmtKind::kLog));
  for (size_t n = 0; n < graph.node_count(); ++n) {
    EXPECT_FALSE(DescribeNode(program_, graph.node(static_cast<int32_t>(n))).empty());
  }
}

}  // namespace
}  // namespace anduril::analysis
