// Integration tests over the 22-case failure registry: every case must
// satisfy the paper's problem-statement invariants (§2) and be reproducible
// by the full feedback algorithm with a deterministic reproduction script.

#include <gtest/gtest.h>

#include <set>

#include "src/explorer/explorer.h"
#include "src/interp/log_entry.h"
#include "src/logdiff/parser.h"
#include "src/systems/common.h"

namespace anduril::systems {
namespace {

class CaseTest : public ::testing::TestWithParam<std::string> {
 protected:
  const FailureCase& Case() const {
    const FailureCase* failure_case = FindCase(GetParam());
    EXPECT_NE(failure_case, nullptr);
    return *failure_case;
  }
};

TEST_P(CaseTest, RegistryMetadataIsComplete) {
  const FailureCase& failure_case = Case();
  EXPECT_FALSE(failure_case.id.empty());
  EXPECT_FALSE(failure_case.title.empty());
  EXPECT_FALSE(failure_case.root_site.empty());
  EXPECT_FALSE(failure_case.system.empty());
  EXPECT_TRUE(failure_case.build != nullptr);
  EXPECT_TRUE(failure_case.workload != nullptr);
  EXPECT_TRUE(failure_case.oracle != nullptr);
}

// BuildCase itself CHECKs the two core invariants: the workload alone does
// NOT satisfy the oracle, and the ground-truth injection DOES.
TEST_P(CaseTest, GroundTruthInvariantsHold) {
  BuiltCase built = BuildCase(Case());
  EXPECT_FALSE(built.failure_log_text.empty());
  EXPECT_NE(built.ground_truth.site, ir::kInvalidId);
  EXPECT_GE(built.ground_truth.occurrence, 1);
}

TEST_P(CaseTest, FailureLogParsesAndHasMultipleThreads) {
  BuiltCase built = BuildCase(Case());
  logdiff::ParsedLog log = logdiff::ParseLogFile(built.failure_log_text);
  EXPECT_GT(log.lines.size(), 5u);
  std::set<std::string> threads;
  for (const logdiff::ParsedLine& line : log.lines) {
    threads.insert(line.thread);
  }
  EXPECT_GE(threads.size(), 2u) << "production logs should be multi-threaded";
}

TEST_P(CaseTest, FaultSpaceIsNontrivial) {
  BuiltCase built = BuildCase(Case());
  // Systems must have a realistic amount of dead-weight fault sites and the
  // workload must exercise many dynamic instances (paper Table 1 shape).
  EXPECT_GE(built.program->fault_sites().size(), 100u);
  interp::RunResult normal =
      RunOnce(*built.program, built.cluster, Case().explore_seed);
  EXPECT_GE(normal.trace.size(), 50u);
  EXPECT_FALSE(Case().oracle(*built.program, normal));
}

TEST_P(CaseTest, FullFeedbackReproducesAndScriptReplays) {
  BuiltCase built = BuildCase(Case());
  explorer::ExplorerOptions options;
  options.max_rounds = 1000;
  explorer::Explorer ex(built.spec, options);
  auto strategy = explorer::MakeFullFeedbackStrategy();
  explorer::ExploreResult result = ex.Explore(strategy.get());
  ASSERT_TRUE(result.reproduced) << Case().id;
  ASSERT_TRUE(result.script.has_value());
  EXPECT_TRUE(explorer::Explorer::Replay(built.spec, *result.script)) << Case().id;
}

TEST_P(CaseTest, ObservablesIncludeDiscriminativeMessages) {
  BuiltCase built = BuildCase(Case());
  explorer::ExplorerOptions options;
  explorer::Explorer ex(built.spec, options);
  EXPECT_GE(ex.context().observables().size(), 1u);
  EXPECT_GE(ex.context().candidates().size(), 5u)
      << "the fault space should hold multiple plausible candidates";
}

std::vector<std::string> AllCaseIds() {
  std::vector<std::string> ids;
  for (const FailureCase& failure_case : AllCases()) {
    ids.push_back(failure_case.id);
  }
  return ids;
}

INSTANTIATE_TEST_SUITE_P(AllCases, CaseTest, ::testing::ValuesIn(AllCaseIds()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(Registry, HasExactly22Cases) { EXPECT_EQ(AllCases().size(), 22u); }

TEST(Registry, PaperIdsAreF1ToF22) {
  std::set<std::string> ids;
  for (const FailureCase& failure_case : AllCases()) {
    ids.insert(failure_case.paper_id);
  }
  EXPECT_EQ(ids.size(), 22u);
  EXPECT_TRUE(ids.contains("f1"));
  EXPECT_TRUE(ids.contains("f22"));
}

TEST(Registry, FiveSystemsCovered) {
  std::set<std::string> systems;
  for (const FailureCase& failure_case : AllCases()) {
    systems.insert(failure_case.system);
  }
  EXPECT_EQ(systems, (std::set<std::string>{"zookeeper", "hdfs", "hbase", "kafka",
                                            "cassandra"}));
}

TEST(Registry, LookupByEitherId) {
  EXPECT_NE(FindCase("zk-2247"), nullptr);
  EXPECT_NE(FindCase("f17"), nullptr);
  EXPECT_EQ(FindCase("nope"), nullptr);
  EXPECT_EQ(FindCase("f17")->id, "hb-25905");
}

TEST(Registry, SitesResolveUniquely) {
  for (const FailureCase& failure_case : AllCases()) {
    ir::Program program;
    RegisterStandardExceptions(&program);
    failure_case.build(&program);
    program.Finalize();
    EXPECT_NE(FindSiteByName(program, failure_case.root_site), ir::kInvalidId)
        << failure_case.id;
  }
}

}  // namespace
}  // namespace anduril::systems
