#!/usr/bin/env bash
# Refreshes the golden trace/metrics files under tests/golden/ after an
# intentional change to the trace layout or metric namespace.
#
# Usage: scripts/update_trace_golden.sh [build-dir]
set -euo pipefail

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

cmake --build "$repo_root/$build_dir" --target trace_golden_test
ANDURIL_UPDATE_GOLDENS=1 "$repo_root/$build_dir/tests/trace_golden_test" \
  --gtest_filter='TraceGoldenTest.TraceAndMetricsMatchGoldenAtOneThread'

echo "goldens refreshed:"
git -C "$repo_root" status --short tests/golden/
