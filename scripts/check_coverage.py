#!/usr/bin/env python3
"""Aggregates gcov line coverage over src/ and enforces a floor.

Usage:
  scripts/check_coverage.py --build-dir build-cov --floor 80.0

Runs gcov (JSON mode) over every .gcno the instrumented build produced,
unions the line counts per source file across translation units (a header's
lines appear in many TUs; a line is covered if any TU executed it), and
reports line coverage for files under src/. Exits non-zero if the total
falls below --floor — the recorded floor lives in .github/workflows/ci.yml,
so a PR that drops coverage fails CI until the floor (or the tests) move.

Only needs python3 + gcov; the CI job additionally renders an HTML report
with lcov/genhtml, but the pass/fail decision is this script so local runs
and CI agree byte-for-byte on the number.
"""

import argparse
import collections
import glob
import gzip
import json
import os
import shutil
import subprocess
import sys
import tempfile


def run_gcov(gcov, gcno_paths, workdir):
    """Runs gcov --json-format on a batch of .gcno files; yields parsed JSON."""
    subprocess.run(
        [gcov, "--json-format", "--object-directory", os.path.dirname(gcno_paths[0])]
        + gcno_paths,
        cwd=workdir,
        check=False,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    for path in glob.glob(os.path.join(workdir, "*.gcov.json.gz")):
        try:
            with gzip.open(path, "rt", encoding="utf-8") as f:
                yield json.load(f)
        except (OSError, json.JSONDecodeError):
            pass
        os.remove(path)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build-cov")
    parser.add_argument("--floor", type=float, default=0.0,
                        help="fail if total line coverage (%%) is below this")
    parser.add_argument("--source-prefix", default="src/",
                        help="repo-relative prefix of files to measure")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    build_dir = os.path.join(repo_root, args.build_dir)
    gcov = shutil.which("gcov")
    if gcov is None:
        print("error: gcov not found on PATH", file=sys.stderr)
        return 2

    gcno_files = glob.glob(os.path.join(build_dir, "**", "*.gcno"), recursive=True)
    if not gcno_files:
        print(f"error: no .gcno files under {build_dir}; "
              "configure with -DANDURIL_COVERAGE=ON and build first",
              file=sys.stderr)
        return 2

    # line_hits[source][line] = max execution count across all TUs.
    line_hits = collections.defaultdict(dict)
    by_dir = {}
    with tempfile.TemporaryDirectory() as workdir:
        for gcno in gcno_files:
            for report in run_gcov(gcov, [gcno], workdir):
                cwd = report.get("current_working_directory", build_dir)
                for file_entry in report.get("files", []):
                    source = os.path.normpath(
                        os.path.join(cwd, file_entry["file"])
                        if not os.path.isabs(file_entry["file"])
                        else file_entry["file"])
                    rel = os.path.relpath(source, repo_root)
                    if rel.startswith("..") or not rel.startswith(args.source_prefix):
                        continue
                    hits = line_hits[rel]
                    for line in file_entry.get("lines", []):
                        number = line["line_number"]
                        hits[number] = max(hits.get(number, 0), line["count"])

    if not line_hits:
        print("error: gcov produced no data for files under "
              f"{args.source_prefix}", file=sys.stderr)
        return 2

    total_lines = 0
    covered_lines = 0
    for rel in sorted(line_hits):
        hits = line_hits[rel]
        covered = sum(1 for count in hits.values() if count > 0)
        total_lines += len(hits)
        covered_lines += covered
        directory = os.path.dirname(rel)
        dir_total, dir_covered = by_dir.get(directory, (0, 0))
        by_dir[directory] = (dir_total + len(hits), dir_covered + covered)

    print(f"{'directory':<24} {'lines':>8} {'covered':>8} {'%':>7}")
    for directory in sorted(by_dir):
        dir_total, dir_covered = by_dir[directory]
        print(f"{directory:<24} {dir_total:>8} {dir_covered:>8} "
              f"{100.0 * dir_covered / dir_total:>6.1f}%")
    percent = 100.0 * covered_lines / total_lines
    print(f"{'TOTAL':<24} {total_lines:>8} {covered_lines:>8} {percent:>6.1f}%")

    if percent < args.floor:
        print(f"\nFAIL: line coverage {percent:.1f}% is below the floor "
              f"{args.floor:.1f}% — add tests or, if the drop is justified, "
              "lower the floor in .github/workflows/ci.yml", file=sys.stderr)
        return 1
    print(f"\nOK: line coverage {percent:.1f}% >= floor {args.floor:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
