// Standalone demo of the log-diff pipeline (§5.1): parse two log files,
// group by thread, sanitize, run the per-thread Myers diff, and print the
// relevant observables plus the normal->failure timeline alignment.
//
// Run without arguments to see it on a generated pair of logs from the
// ZooKeeper case; or pass two log file paths.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/interp/log_entry.h"
#include "src/logdiff/compare.h"
#include "src/logdiff/parser.h"
#include "src/systems/common.h"

using namespace anduril;

namespace {

std::string ReadFile(const char* path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string normal_text;
  std::string failure_text;
  if (argc == 3) {
    normal_text = ReadFile(argv[1]);
    failure_text = ReadFile(argv[2]);
  } else {
    std::printf("(no files given; generating logs from the zk-2247 case)\n\n");
    const systems::FailureCase* failure_case = systems::FindCase("zk-2247");
    systems::BuiltCase built = systems::BuildCase(*failure_case);
    interp::RunResult normal =
        systems::RunOnce(*built.program, built.cluster, failure_case->explore_seed);
    normal_text = interp::FormatLogFile(normal.log);
    failure_text = built.failure_log_text;
  }

  logdiff::ParsedLog normal = logdiff::ParseLogFile(normal_text);
  logdiff::ParsedLog failure = logdiff::ParseLogFile(failure_text);
  std::printf("normal log: %zu entries; failure log: %zu entries\n", normal.lines.size(),
              failure.lines.size());

  logdiff::LogComparison comparison = logdiff::CompareLogs(normal, failure);
  std::printf("\nrelevant observables (failure-only after per-thread sanitized diff):\n");
  for (const std::string& key : comparison.target_only_keys) {
    std::printf("  %s\n", key.substr(0, 110).c_str());
  }

  std::printf("\nmonotone alignment anchors: %zu matched entries\n",
              comparison.matches.size());
  logdiff::TimelineAlignment alignment(comparison.matches,
                                       static_cast<int64_t>(normal.lines.size()),
                                       static_cast<int64_t>(failure.lines.size()));
  std::printf("position mapping samples (normal -> failure):\n");
  for (int64_t pos = 0; pos < static_cast<int64_t>(normal.lines.size());
       pos += std::max<int64_t>(1, static_cast<int64_t>(normal.lines.size()) / 8)) {
    std::printf("  %4lld -> %4lld\n", static_cast<long long>(pos),
                static_cast<long long>(alignment.MapPosition(pos)));
  }
  return 0;
}
