// Runs every injection strategy on one failure case and contrasts their
// efficiency — a small-scale version of the paper's Table 2 that makes the
// value of each feedback ingredient tangible on a single bug.
//
// Usage: compare_strategies [case-id]   (default: zk-2247)

#include <cstdio>
#include <string>

#include "src/explorer/explorer.h"
#include "src/systems/common.h"

using namespace anduril;

int main(int argc, char** argv) {
  std::string case_id = argc > 1 ? argv[1] : "zk-2247";
  const systems::FailureCase* failure_case = systems::FindCase(case_id);
  if (failure_case == nullptr) {
    std::printf("unknown case '%s'; known cases:\n", case_id.c_str());
    for (const auto& known : systems::AllCases()) {
      std::printf("  %s (%s): %s\n", known.id.c_str(), known.paper_id.c_str(),
                  known.title.c_str());
    }
    return 1;
  }

  std::printf("Case %s: %s\n\n", failure_case->id.c_str(), failure_case->title.c_str());
  systems::BuiltCase built = systems::BuildCase(*failure_case);

  const char* strategies[] = {"full",          "multiply",   "site-feedback",
                              "site-distance", "exhaustive", "stacktrace",
                              "fate",          "crashtuner"};
  std::printf("%-22s %8s %10s\n", "strategy", "rounds", "time");
  for (const char* name : strategies) {
    explorer::ExplorerOptions options;
    options.max_rounds = 1500;
    explorer::Explorer anduril_explorer(built.spec, options);
    auto strategy = explorer::MakeStrategy(name);
    explorer::ExploreResult result = anduril_explorer.Explore(strategy.get());
    if (result.reproduced) {
      std::printf("%-22s %8d %9.2fs\n", name, result.rounds, result.total_seconds);
    } else {
      std::printf("%-22s %8s %10s\n", name, "-", "-");
    }
  }
  return 0;
}
