// Quickstart: reproduce a fault-induced failure in a tiny two-node system.
//
// The flow mirrors the paper's workflow end to end:
//   1. Write the target system in the anduril IR (normally you'd model an
//      existing system; here it is a 40-line key-value store).
//   2. Produce a "production" failure log (here: by injecting a known fault,
//      standing in for the real incident).
//   3. Hand ANDURIL the system, a workload, the failure log, and an oracle.
//   4. ANDURIL searches the fault space and prints the reproduction script.

#include <cstdio>

#include "src/explorer/explorer.h"
#include "src/interp/log_entry.h"
#include "src/interp/simulator.h"
#include "src/ir/builder.h"

using namespace anduril;

namespace {

// A primary/replica store: writes go to the primary's disk log, then
// replicate. A disk fault during log append is caught — but the buggy
// handler drops the write without telling the client.
void BuildStore(ir::Program* program) {
  program->DefineException("IOException");
  program->DefineException("TimeoutException");

  ir::MethodBuilder put(program, "store.handle_put");
  put.TryCatch(
      [&] {
        put.External("store.disk.append", {"IOException"});
        put.Assign("committed", put.Plus("committed", 1));
        put.Log(ir::LogLevel::kInfo, "store", "Committed write {}", {ir::Expr::Payload()});
        put.Send("store.replica_apply", "replica", ir::SendOpts{.payload = ir::Expr::Payload()});
        put.Send("store.client_ack", "client");
      },
      {{"IOException",
        [&] {
          // BUG: the write is dropped silently; the client never hears back.
          put.LogExc(ir::LogLevel::kWarn, "store", "Disk append failed, dropping write");
        }}});
  put.Build();

  ir::MethodBuilder apply(program, "store.replica_apply");
  apply.Assign("replicated", apply.Plus("replicated", 1));
  apply.Build();

  ir::MethodBuilder ack(program, "store.client_ack");
  ack.Assign("acks", ack.Plus("acks", 1));
  ack.Signal("acks");
  ack.Build();

  ir::MethodBuilder client(program, "store.client");
  client.While(client.Lt("sent", 10), [&] {
    client.Assign("sent", client.Plus("sent", 1));
    client.Send("store.handle_put", "primary", ir::SendOpts{.payload = client.V("sent")});
    client.Sleep(5);
  });
  client.Await(client.Ge("acks", 10), /*timeout_ms=*/5000);
  client.If(
      client.Lt("acks", 10),
      [&] {
        client.Log(ir::LogLevel::kError, "store.client", "Write lost: only {} of 10 acked",
                   {client.V("acks")});
      },
      [&] { client.Log(ir::LogLevel::kInfo, "store.client", "All writes acknowledged"); });
  client.Build();
}

interp::ClusterSpec MakeCluster(ir::Program* program) {
  interp::ClusterSpec cluster;
  cluster.AddNode("primary");
  cluster.AddNode("replica");
  cluster.AddNode("client");
  cluster.AddTask("client", "main", program->FindMethod("store.client"));
  return cluster;
}

}  // namespace

int main() {
  ir::Program program;
  BuildStore(&program);
  program.Finalize();
  interp::ClusterSpec cluster = MakeCluster(&program);

  // --- Step 2: fabricate the production failure log -------------------------
  // (Stands in for the log file a user would attach to the bug report.)
  ir::FaultSiteId disk_site = ir::kInvalidId;
  for (const ir::FaultSite& site : program.fault_sites()) {
    if (site.name.find("store.disk.append") == 0) {
      disk_site = site.id;
    }
  }
  interp::FaultRuntime production_runtime(&program);
  production_runtime.SetWindow(
      {interp::InjectionCandidate{disk_site, 4, program.FindException("IOException")}});
  interp::Simulator production(&program, &cluster, /*seed=*/424242, &production_runtime);
  interp::RunResult incident = production.Run();
  std::string failure_log = interp::FormatLogFile(incident.log);
  std::printf("--- production failure log ---\n%s\n", failure_log.c_str());

  // --- Step 3: hand everything to ANDURIL -----------------------------------
  explorer::ExperimentSpec spec;
  spec.program = &program;
  spec.cluster = &cluster;
  spec.failure_log_text = failure_log;
  spec.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kError, "Write lost");
  };

  explorer::ExplorerOptions options;
  explorer::Explorer anduril_explorer(spec, options);
  auto strategy = explorer::MakeFullFeedbackStrategy();
  explorer::ExploreResult result = anduril_explorer.Explore(strategy.get());

  // --- Step 4: report --------------------------------------------------------
  if (!result.reproduced) {
    std::printf("failure NOT reproduced within %d rounds\n", options.max_rounds);
    return 1;
  }
  std::printf("failure reproduced in %d round(s)\n", result.rounds);
  std::printf("reproduction script: %s\n", result.script->ToText(program).c_str());
  std::printf("replay check: %s\n",
              explorer::Explorer::Replay(spec, *result.script) ? "deterministic" : "FLAKY");
  return 0;
}
