// Iterative multi-fault reproduction (paper §3/§6).
//
// ANDURIL injects one fault per run, so a failure requiring two causally
// independent faults is out of reach for a single search. The paper's
// workflow — fix the most promising fault into the workload, re-run ANDURIL —
// is automated by IterativeExplorer. This example builds a replicated queue
// whose data-loss symptom needs BOTH a primary disk fault AND a backup
// network fault (either alone is tolerated), and reproduces it in two phases.

#include <cstdio>

#include "src/explorer/iterative.h"
#include "src/interp/log_entry.h"
#include "src/interp/simulator.h"
#include "src/ir/builder.h"

using namespace anduril;

namespace {

void BuildQueue(ir::Program* program) {
  program->DefineException("IOException");
  program->DefineException("SocketException", "IOException");

  // Primary: persists entries locally AND mirrors them to the backup.
  // Losing only one copy is tolerated; losing both loses data.
  ir::MethodBuilder enqueue(program, "queue.enqueue");
  enqueue.TryCatch(
      [&] {
        enqueue.External("queue.disk.persist", {"IOException"});
        enqueue.Assign("persisted", enqueue.Plus("persisted", 1));
      },
      {{"IOException",
        [&] {
          enqueue.LogExc(ir::LogLevel::kWarn, "queue", "Local persist failed, relying on mirror");
          enqueue.Assign("localMisses", enqueue.Plus("localMisses", 1));
        }}});
  enqueue.Send("queue.mirror", "backup", ir::SendOpts{.payload = ir::Expr::Payload()});
  enqueue.Build();

  ir::MethodBuilder mirror(program, "queue.mirror");
  mirror.TryCatch(
      [&] {
        mirror.External("queue.net.replicate", {"SocketException"});
        mirror.Assign("mirrored", mirror.Plus("mirrored", 1));
      },
      {{"SocketException",
        [&] {
          mirror.LogExc(ir::LogLevel::kWarn, "queue", "Mirror replication failed");
          mirror.Send("queue.report_miss", "primary");
        }}});
  mirror.Build();

  ir::MethodBuilder report(program, "queue.report_miss");
  report.Assign("mirrorMisses", report.Plus("mirrorMisses", 1));
  report.Build();

  ir::MethodBuilder audit(program, "queue.audit");
  audit.Sleep(400);
  // Entry i is lost iff both its local persist and its mirror failed; the
  // audit approximates that by cross-checking the two miss counters against
  // the mirrored total (both > 0 and mirrored < enqueued - localMisses + ...).
  audit.If(
      ir::Cond::Gt(audit.Var("localMisses"), 0),
      [&] {
        audit.If(ir::Cond::Gt(audit.Var("mirrorMisses"), 0), [&] {
          audit.Log(ir::LogLevel::kError, "queue",
                    "DATA LOSS: entry missing from both disk and mirror");
        });
      });
  audit.Build();

  ir::MethodBuilder client(program, "queue.client");
  client.While(client.Lt("sent", 12), [&] {
    client.Assign("sent", client.Plus("sent", 1));
    client.Send("queue.enqueue", "primary", ir::SendOpts{.payload = client.V("sent")});
    client.Sleep(6);
  });
  client.Build();
}

}  // namespace

int main() {
  ir::Program program;
  BuildQueue(&program);
  program.Finalize();

  interp::ClusterSpec cluster;
  cluster.AddNode("primary");
  cluster.AddNode("backup");
  cluster.AddNode("client");
  cluster.AddTask("client", "producer", program.FindMethod("queue.client"));
  cluster.AddTask("primary", "Auditor", program.FindMethod("queue.audit"));

  // Fabricate the production incident: disk fault on entry 5 AND network
  // fault on the mirror of the same window.
  ir::FaultSiteId disk = ir::kInvalidId;
  ir::FaultSiteId net = ir::kInvalidId;
  for (const ir::FaultSite& site : program.fault_sites()) {
    if (site.name.find("queue.disk.persist") == 0) {
      disk = site.id;
    }
    if (site.name.find("queue.net.replicate") == 0) {
      net = site.id;
    }
  }
  interp::FaultRuntime production(&program);
  production.SetPinned(
      {interp::InjectionCandidate{disk, 5, program.FindException("IOException")}});
  production.SetWindow(
      {interp::InjectionCandidate{net, 5, program.FindException("SocketException")}});
  interp::Simulator sim(&program, &cluster, 31337, &production);
  interp::RunResult incident = sim.Run();

  explorer::ExperimentSpec spec;
  spec.program = &program;
  spec.cluster = &cluster;
  spec.failure_log_text = interp::FormatLogFile(incident.log);
  spec.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kError, "DATA LOSS");
  };
  std::printf("--- production failure log ---\n%s\n", spec.failure_log_text.c_str());

  // A single-fault search cannot reproduce this.
  explorer::ExplorerOptions options;
  options.max_rounds = 200;
  {
    explorer::Explorer single(spec, options);
    auto strategy = explorer::MakeFullFeedbackStrategy();
    auto result = single.Explore(strategy.get());
    std::printf("single-fault search: %s after %d rounds\n",
                result.reproduced ? "reproduced (unexpected!)" : "NOT reproduced",
                result.rounds);
  }

  // The iterative mode pins the closest fault and searches again.
  explorer::IterativeExplorer iterative(spec, options);
  explorer::IterativeResult result = iterative.Explore(/*max_faults=*/2);
  if (!result.reproduced) {
    std::printf("iterative search failed\n");
    return 1;
  }
  std::printf("\niterative search reproduced the failure in %d phases, %d total rounds:\n",
              result.phases, result.total_rounds);
  for (size_t i = 0; i < result.faults.size(); ++i) {
    std::printf("  fault %zu: %s\n", i + 1, result.faults[i].ToText(program).c_str());
  }
  std::printf("multi-fault replay: %s\n",
              explorer::IterativeExplorer::Replay(spec, result) ? "deterministic" : "FLAKY");
  return 0;
}
