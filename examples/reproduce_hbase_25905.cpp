// Reproduces the paper's motivating example (§2.1): HBase-25905, where a
// transient HDFS stream fault at exactly the wrong moment wedges the
// AsyncFSWAL consumer so that the log roller blocks forever at
// waitForSafePoint and region flushes time out.
//
// This walks the full ANDURIL workflow on the simulated HBase and narrates
// what the tool sees at each step: relevant observables from the per-thread
// log diff, the causal graph, and the feedback-driven search.

#include <cstdio>

#include "src/explorer/explorer.h"
#include "src/systems/common.h"

using namespace anduril;

int main() {
  const systems::FailureCase* failure_case = systems::FindCase("hb-25905");
  if (failure_case == nullptr) {
    std::printf("case registry is missing hb-25905\n");
    return 1;
  }
  std::printf("Case: %s — %s\n\n", failure_case->id.c_str(), failure_case->title.c_str());

  // BuildCase assembles the system, the workload, and a production failure
  // log (generated from the documented ground truth, exactly like the paper
  // does for tickets without an attached log).
  systems::BuiltCase built = systems::BuildCase(*failure_case);
  std::printf("System: %zu methods, %zu static fault sites, failure log of %zu bytes\n",
              built.program->method_count(), built.program->fault_sites().size(),
              built.failure_log_text.size());

  explorer::ExplorerOptions options;
  options.track_site = built.ground_truth.site;  // only for narration
  explorer::Explorer anduril_explorer(built.spec, options);

  const explorer::ExplorerContext& context = anduril_explorer.context();
  std::printf("\nRelevant observables (%zu) from the per-thread log diff:\n",
              context.observables().size());
  for (const explorer::ObservableInfo& observable : context.observables()) {
    std::printf("  %s\n", observable.key.substr(0, 100).c_str());
  }
  std::printf("\nCausal graph: %zu nodes, %zu injectable candidates\n",
              context.graph().node_count(), context.candidates().size());

  auto strategy = explorer::MakeFullFeedbackStrategy();
  explorer::ExploreResult result = anduril_explorer.Explore(strategy.get());

  std::printf("\nSearch trace (rank of the true root-cause site per trial):\n");
  for (const explorer::RoundRecord& record : result.records) {
    std::printf("  trial %2d: window=%d rank=%d %s\n", record.round, record.window_size,
                record.tracked_rank, record.success ? "<- reproduced!" : "");
  }

  if (!result.reproduced) {
    std::printf("\nNOT reproduced\n");
    return 1;
  }
  std::printf("\nReproduced in %d trials.\n", result.rounds);
  std::printf("Root cause: %s\n", result.script->ToText(*built.program).c_str());
  std::printf("Ground truth was: %s at occurrence %lld\n",
              built.program->fault_site(built.ground_truth.site).name.c_str(),
              static_cast<long long>(built.ground_truth.occurrence));
  std::printf("Deterministic replay: %s\n",
              explorer::Explorer::Replay(built.spec, *result.script) ? "ok" : "FLAKY");
  return 0;
}
