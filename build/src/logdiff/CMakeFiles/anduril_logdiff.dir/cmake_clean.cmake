file(REMOVE_RECURSE
  "CMakeFiles/anduril_logdiff.dir/compare.cc.o"
  "CMakeFiles/anduril_logdiff.dir/compare.cc.o.d"
  "CMakeFiles/anduril_logdiff.dir/myers.cc.o"
  "CMakeFiles/anduril_logdiff.dir/myers.cc.o.d"
  "CMakeFiles/anduril_logdiff.dir/parser.cc.o"
  "CMakeFiles/anduril_logdiff.dir/parser.cc.o.d"
  "libanduril_logdiff.a"
  "libanduril_logdiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anduril_logdiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
