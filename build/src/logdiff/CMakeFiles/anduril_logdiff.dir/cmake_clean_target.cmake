file(REMOVE_RECURSE
  "libanduril_logdiff.a"
)
