
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logdiff/compare.cc" "src/logdiff/CMakeFiles/anduril_logdiff.dir/compare.cc.o" "gcc" "src/logdiff/CMakeFiles/anduril_logdiff.dir/compare.cc.o.d"
  "/root/repo/src/logdiff/myers.cc" "src/logdiff/CMakeFiles/anduril_logdiff.dir/myers.cc.o" "gcc" "src/logdiff/CMakeFiles/anduril_logdiff.dir/myers.cc.o.d"
  "/root/repo/src/logdiff/parser.cc" "src/logdiff/CMakeFiles/anduril_logdiff.dir/parser.cc.o" "gcc" "src/logdiff/CMakeFiles/anduril_logdiff.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/anduril_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
