# Empty dependencies file for anduril_logdiff.
# This may be replaced when dependencies are built.
