# Empty compiler generated dependencies file for anduril_util.
# This may be replaced when dependencies are built.
