file(REMOVE_RECURSE
  "CMakeFiles/anduril_util.dir/check.cc.o"
  "CMakeFiles/anduril_util.dir/check.cc.o.d"
  "CMakeFiles/anduril_util.dir/rng.cc.o"
  "CMakeFiles/anduril_util.dir/rng.cc.o.d"
  "CMakeFiles/anduril_util.dir/strings.cc.o"
  "CMakeFiles/anduril_util.dir/strings.cc.o.d"
  "libanduril_util.a"
  "libanduril_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anduril_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
