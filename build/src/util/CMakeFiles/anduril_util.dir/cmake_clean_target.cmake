file(REMOVE_RECURSE
  "libanduril_util.a"
)
