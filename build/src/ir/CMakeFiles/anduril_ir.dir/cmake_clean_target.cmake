file(REMOVE_RECURSE
  "libanduril_ir.a"
)
