# Empty compiler generated dependencies file for anduril_ir.
# This may be replaced when dependencies are built.
