file(REMOVE_RECURSE
  "CMakeFiles/anduril_ir.dir/builder.cc.o"
  "CMakeFiles/anduril_ir.dir/builder.cc.o.d"
  "CMakeFiles/anduril_ir.dir/program.cc.o"
  "CMakeFiles/anduril_ir.dir/program.cc.o.d"
  "CMakeFiles/anduril_ir.dir/stmt.cc.o"
  "CMakeFiles/anduril_ir.dir/stmt.cc.o.d"
  "libanduril_ir.a"
  "libanduril_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anduril_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
