file(REMOVE_RECURSE
  "libanduril_systems.a"
)
