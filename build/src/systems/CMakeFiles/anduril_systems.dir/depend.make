# Empty dependencies file for anduril_systems.
# This may be replaced when dependencies are built.
