
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/systems/cassandra.cc" "src/systems/CMakeFiles/anduril_systems.dir/cassandra.cc.o" "gcc" "src/systems/CMakeFiles/anduril_systems.dir/cassandra.cc.o.d"
  "/root/repo/src/systems/cassandra_extras.cc" "src/systems/CMakeFiles/anduril_systems.dir/cassandra_extras.cc.o" "gcc" "src/systems/CMakeFiles/anduril_systems.dir/cassandra_extras.cc.o.d"
  "/root/repo/src/systems/common.cc" "src/systems/CMakeFiles/anduril_systems.dir/common.cc.o" "gcc" "src/systems/CMakeFiles/anduril_systems.dir/common.cc.o.d"
  "/root/repo/src/systems/hbase.cc" "src/systems/CMakeFiles/anduril_systems.dir/hbase.cc.o" "gcc" "src/systems/CMakeFiles/anduril_systems.dir/hbase.cc.o.d"
  "/root/repo/src/systems/hbase_extras.cc" "src/systems/CMakeFiles/anduril_systems.dir/hbase_extras.cc.o" "gcc" "src/systems/CMakeFiles/anduril_systems.dir/hbase_extras.cc.o.d"
  "/root/repo/src/systems/hdfs.cc" "src/systems/CMakeFiles/anduril_systems.dir/hdfs.cc.o" "gcc" "src/systems/CMakeFiles/anduril_systems.dir/hdfs.cc.o.d"
  "/root/repo/src/systems/hdfs_extras.cc" "src/systems/CMakeFiles/anduril_systems.dir/hdfs_extras.cc.o" "gcc" "src/systems/CMakeFiles/anduril_systems.dir/hdfs_extras.cc.o.d"
  "/root/repo/src/systems/kafka.cc" "src/systems/CMakeFiles/anduril_systems.dir/kafka.cc.o" "gcc" "src/systems/CMakeFiles/anduril_systems.dir/kafka.cc.o.d"
  "/root/repo/src/systems/kafka_extras.cc" "src/systems/CMakeFiles/anduril_systems.dir/kafka_extras.cc.o" "gcc" "src/systems/CMakeFiles/anduril_systems.dir/kafka_extras.cc.o.d"
  "/root/repo/src/systems/zookeeper.cc" "src/systems/CMakeFiles/anduril_systems.dir/zookeeper.cc.o" "gcc" "src/systems/CMakeFiles/anduril_systems.dir/zookeeper.cc.o.d"
  "/root/repo/src/systems/zookeeper_extras.cc" "src/systems/CMakeFiles/anduril_systems.dir/zookeeper_extras.cc.o" "gcc" "src/systems/CMakeFiles/anduril_systems.dir/zookeeper_extras.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/explorer/CMakeFiles/anduril_explorer.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/anduril_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/anduril_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anduril_util.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/anduril_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/logdiff/CMakeFiles/anduril_logdiff.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
