file(REMOVE_RECURSE
  "CMakeFiles/anduril_systems.dir/cassandra.cc.o"
  "CMakeFiles/anduril_systems.dir/cassandra.cc.o.d"
  "CMakeFiles/anduril_systems.dir/cassandra_extras.cc.o"
  "CMakeFiles/anduril_systems.dir/cassandra_extras.cc.o.d"
  "CMakeFiles/anduril_systems.dir/common.cc.o"
  "CMakeFiles/anduril_systems.dir/common.cc.o.d"
  "CMakeFiles/anduril_systems.dir/hbase.cc.o"
  "CMakeFiles/anduril_systems.dir/hbase.cc.o.d"
  "CMakeFiles/anduril_systems.dir/hbase_extras.cc.o"
  "CMakeFiles/anduril_systems.dir/hbase_extras.cc.o.d"
  "CMakeFiles/anduril_systems.dir/hdfs.cc.o"
  "CMakeFiles/anduril_systems.dir/hdfs.cc.o.d"
  "CMakeFiles/anduril_systems.dir/hdfs_extras.cc.o"
  "CMakeFiles/anduril_systems.dir/hdfs_extras.cc.o.d"
  "CMakeFiles/anduril_systems.dir/kafka.cc.o"
  "CMakeFiles/anduril_systems.dir/kafka.cc.o.d"
  "CMakeFiles/anduril_systems.dir/kafka_extras.cc.o"
  "CMakeFiles/anduril_systems.dir/kafka_extras.cc.o.d"
  "CMakeFiles/anduril_systems.dir/zookeeper.cc.o"
  "CMakeFiles/anduril_systems.dir/zookeeper.cc.o.d"
  "CMakeFiles/anduril_systems.dir/zookeeper_extras.cc.o"
  "CMakeFiles/anduril_systems.dir/zookeeper_extras.cc.o.d"
  "libanduril_systems.a"
  "libanduril_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anduril_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
