file(REMOVE_RECURSE
  "libanduril_explorer.a"
)
