file(REMOVE_RECURSE
  "CMakeFiles/anduril_explorer.dir/context.cc.o"
  "CMakeFiles/anduril_explorer.dir/context.cc.o.d"
  "CMakeFiles/anduril_explorer.dir/explorer.cc.o"
  "CMakeFiles/anduril_explorer.dir/explorer.cc.o.d"
  "CMakeFiles/anduril_explorer.dir/iterative.cc.o"
  "CMakeFiles/anduril_explorer.dir/iterative.cc.o.d"
  "CMakeFiles/anduril_explorer.dir/strategies/full_feedback.cc.o"
  "CMakeFiles/anduril_explorer.dir/strategies/full_feedback.cc.o.d"
  "CMakeFiles/anduril_explorer.dir/strategies/list_strategies.cc.o"
  "CMakeFiles/anduril_explorer.dir/strategies/list_strategies.cc.o.d"
  "libanduril_explorer.a"
  "libanduril_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anduril_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
