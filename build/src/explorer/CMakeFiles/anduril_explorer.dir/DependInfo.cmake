
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/explorer/context.cc" "src/explorer/CMakeFiles/anduril_explorer.dir/context.cc.o" "gcc" "src/explorer/CMakeFiles/anduril_explorer.dir/context.cc.o.d"
  "/root/repo/src/explorer/explorer.cc" "src/explorer/CMakeFiles/anduril_explorer.dir/explorer.cc.o" "gcc" "src/explorer/CMakeFiles/anduril_explorer.dir/explorer.cc.o.d"
  "/root/repo/src/explorer/iterative.cc" "src/explorer/CMakeFiles/anduril_explorer.dir/iterative.cc.o" "gcc" "src/explorer/CMakeFiles/anduril_explorer.dir/iterative.cc.o.d"
  "/root/repo/src/explorer/strategies/full_feedback.cc" "src/explorer/CMakeFiles/anduril_explorer.dir/strategies/full_feedback.cc.o" "gcc" "src/explorer/CMakeFiles/anduril_explorer.dir/strategies/full_feedback.cc.o.d"
  "/root/repo/src/explorer/strategies/list_strategies.cc" "src/explorer/CMakeFiles/anduril_explorer.dir/strategies/list_strategies.cc.o" "gcc" "src/explorer/CMakeFiles/anduril_explorer.dir/strategies/list_strategies.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/anduril_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/anduril_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/logdiff/CMakeFiles/anduril_logdiff.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/anduril_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anduril_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
