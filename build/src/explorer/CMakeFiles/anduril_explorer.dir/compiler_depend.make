# Empty compiler generated dependencies file for anduril_explorer.
# This may be replaced when dependencies are built.
