file(REMOVE_RECURSE
  "CMakeFiles/anduril_interp.dir/fault_runtime.cc.o"
  "CMakeFiles/anduril_interp.dir/fault_runtime.cc.o.d"
  "CMakeFiles/anduril_interp.dir/log_entry.cc.o"
  "CMakeFiles/anduril_interp.dir/log_entry.cc.o.d"
  "CMakeFiles/anduril_interp.dir/run_result.cc.o"
  "CMakeFiles/anduril_interp.dir/run_result.cc.o.d"
  "CMakeFiles/anduril_interp.dir/simulator.cc.o"
  "CMakeFiles/anduril_interp.dir/simulator.cc.o.d"
  "libanduril_interp.a"
  "libanduril_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anduril_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
