# Empty compiler generated dependencies file for anduril_interp.
# This may be replaced when dependencies are built.
