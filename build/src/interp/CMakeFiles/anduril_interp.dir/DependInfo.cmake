
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/fault_runtime.cc" "src/interp/CMakeFiles/anduril_interp.dir/fault_runtime.cc.o" "gcc" "src/interp/CMakeFiles/anduril_interp.dir/fault_runtime.cc.o.d"
  "/root/repo/src/interp/log_entry.cc" "src/interp/CMakeFiles/anduril_interp.dir/log_entry.cc.o" "gcc" "src/interp/CMakeFiles/anduril_interp.dir/log_entry.cc.o.d"
  "/root/repo/src/interp/run_result.cc" "src/interp/CMakeFiles/anduril_interp.dir/run_result.cc.o" "gcc" "src/interp/CMakeFiles/anduril_interp.dir/run_result.cc.o.d"
  "/root/repo/src/interp/simulator.cc" "src/interp/CMakeFiles/anduril_interp.dir/simulator.cc.o" "gcc" "src/interp/CMakeFiles/anduril_interp.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/anduril_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anduril_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
