file(REMOVE_RECURSE
  "libanduril_interp.a"
)
