file(REMOVE_RECURSE
  "libanduril_analysis.a"
)
