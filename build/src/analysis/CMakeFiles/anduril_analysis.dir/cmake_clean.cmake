file(REMOVE_RECURSE
  "CMakeFiles/anduril_analysis.dir/causal_graph.cc.o"
  "CMakeFiles/anduril_analysis.dir/causal_graph.cc.o.d"
  "CMakeFiles/anduril_analysis.dir/exception_flow.cc.o"
  "CMakeFiles/anduril_analysis.dir/exception_flow.cc.o.d"
  "CMakeFiles/anduril_analysis.dir/graph_export.cc.o"
  "CMakeFiles/anduril_analysis.dir/graph_export.cc.o.d"
  "CMakeFiles/anduril_analysis.dir/indexes.cc.o"
  "CMakeFiles/anduril_analysis.dir/indexes.cc.o.d"
  "CMakeFiles/anduril_analysis.dir/observable_map.cc.o"
  "CMakeFiles/anduril_analysis.dir/observable_map.cc.o.d"
  "libanduril_analysis.a"
  "libanduril_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anduril_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
