
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/causal_graph.cc" "src/analysis/CMakeFiles/anduril_analysis.dir/causal_graph.cc.o" "gcc" "src/analysis/CMakeFiles/anduril_analysis.dir/causal_graph.cc.o.d"
  "/root/repo/src/analysis/exception_flow.cc" "src/analysis/CMakeFiles/anduril_analysis.dir/exception_flow.cc.o" "gcc" "src/analysis/CMakeFiles/anduril_analysis.dir/exception_flow.cc.o.d"
  "/root/repo/src/analysis/graph_export.cc" "src/analysis/CMakeFiles/anduril_analysis.dir/graph_export.cc.o" "gcc" "src/analysis/CMakeFiles/anduril_analysis.dir/graph_export.cc.o.d"
  "/root/repo/src/analysis/indexes.cc" "src/analysis/CMakeFiles/anduril_analysis.dir/indexes.cc.o" "gcc" "src/analysis/CMakeFiles/anduril_analysis.dir/indexes.cc.o.d"
  "/root/repo/src/analysis/observable_map.cc" "src/analysis/CMakeFiles/anduril_analysis.dir/observable_map.cc.o" "gcc" "src/analysis/CMakeFiles/anduril_analysis.dir/observable_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/anduril_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/logdiff/CMakeFiles/anduril_logdiff.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anduril_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
