# Empty dependencies file for anduril_analysis.
# This may be replaced when dependencies are built.
