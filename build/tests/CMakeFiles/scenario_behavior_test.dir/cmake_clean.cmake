file(REMOVE_RECURSE
  "CMakeFiles/scenario_behavior_test.dir/scenario_behavior_test.cc.o"
  "CMakeFiles/scenario_behavior_test.dir/scenario_behavior_test.cc.o.d"
  "scenario_behavior_test"
  "scenario_behavior_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
