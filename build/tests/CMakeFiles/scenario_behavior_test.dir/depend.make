# Empty dependencies file for scenario_behavior_test.
# This may be replaced when dependencies are built.
