file(REMOVE_RECURSE
  "CMakeFiles/logdiff_test.dir/logdiff_test.cc.o"
  "CMakeFiles/logdiff_test.dir/logdiff_test.cc.o.d"
  "logdiff_test"
  "logdiff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logdiff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
