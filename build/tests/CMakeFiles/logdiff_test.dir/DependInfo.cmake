
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/logdiff_test.cc" "tests/CMakeFiles/logdiff_test.dir/logdiff_test.cc.o" "gcc" "tests/CMakeFiles/logdiff_test.dir/logdiff_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/systems/CMakeFiles/anduril_systems.dir/DependInfo.cmake"
  "/root/repo/build/src/explorer/CMakeFiles/anduril_explorer.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/anduril_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/logdiff/CMakeFiles/anduril_logdiff.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/anduril_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/anduril_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anduril_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
