# Empty compiler generated dependencies file for logdiff_test.
# This may be replaced when dependencies are built.
