# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ir_test "/root/repo/build/tests/ir_test")
set_tests_properties(ir_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(interp_test "/root/repo/build/tests/interp_test")
set_tests_properties(interp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(logdiff_test "/root/repo/build/tests/logdiff_test")
set_tests_properties(logdiff_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(analysis_test "/root/repo/build/tests/analysis_test")
set_tests_properties(analysis_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(explorer_test "/root/repo/build/tests/explorer_test")
set_tests_properties(explorer_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(iterative_test "/root/repo/build/tests/iterative_test")
set_tests_properties(iterative_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(scenario_behavior_test "/root/repo/build/tests/scenario_behavior_test")
set_tests_properties(scenario_behavior_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(interp_edge_test "/root/repo/build/tests/interp_edge_test")
set_tests_properties(interp_edge_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(systems_test "/root/repo/build/tests/systems_test")
set_tests_properties(systems_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
