# Empty compiler generated dependencies file for multi_fault_reproduction.
# This may be replaced when dependencies are built.
