file(REMOVE_RECURSE
  "CMakeFiles/multi_fault_reproduction.dir/multi_fault_reproduction.cpp.o"
  "CMakeFiles/multi_fault_reproduction.dir/multi_fault_reproduction.cpp.o.d"
  "multi_fault_reproduction"
  "multi_fault_reproduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_fault_reproduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
