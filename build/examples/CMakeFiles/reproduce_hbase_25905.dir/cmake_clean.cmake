file(REMOVE_RECURSE
  "CMakeFiles/reproduce_hbase_25905.dir/reproduce_hbase_25905.cpp.o"
  "CMakeFiles/reproduce_hbase_25905.dir/reproduce_hbase_25905.cpp.o.d"
  "reproduce_hbase_25905"
  "reproduce_hbase_25905.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reproduce_hbase_25905.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
