# Empty compiler generated dependencies file for reproduce_hbase_25905.
# This may be replaced when dependencies are built.
