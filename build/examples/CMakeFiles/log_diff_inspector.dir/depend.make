# Empty dependencies file for log_diff_inspector.
# This may be replaced when dependencies are built.
