file(REMOVE_RECURSE
  "CMakeFiles/log_diff_inspector.dir/log_diff_inspector.cpp.o"
  "CMakeFiles/log_diff_inspector.dir/log_diff_inspector.cpp.o.d"
  "log_diff_inspector"
  "log_diff_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_diff_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
