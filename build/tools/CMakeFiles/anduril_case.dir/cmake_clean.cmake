file(REMOVE_RECURSE
  "CMakeFiles/anduril_case.dir/anduril_case.cc.o"
  "CMakeFiles/anduril_case.dir/anduril_case.cc.o.d"
  "anduril_case"
  "anduril_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anduril_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
