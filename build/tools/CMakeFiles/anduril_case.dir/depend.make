# Empty dependencies file for anduril_case.
# This may be replaced when dependencies are built.
