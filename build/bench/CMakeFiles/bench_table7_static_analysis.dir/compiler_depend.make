# Empty compiler generated dependencies file for bench_table7_static_analysis.
# This may be replaced when dependencies are built.
