file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_static_analysis.dir/bench_table7_static_analysis.cc.o"
  "CMakeFiles/bench_table7_static_analysis.dir/bench_table7_static_analysis.cc.o.d"
  "bench_table7_static_analysis"
  "bench_table7_static_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_static_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
