file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_fault_space.dir/bench_table1_fault_space.cc.o"
  "CMakeFiles/bench_table1_fault_space.dir/bench_table1_fault_space.cc.o.d"
  "bench_table1_fault_space"
  "bench_table1_fault_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_fault_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
