file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_rank_trajectory.dir/bench_fig6_rank_trajectory.cc.o"
  "CMakeFiles/bench_fig6_rank_trajectory.dir/bench_fig6_rank_trajectory.cc.o.d"
  "bench_fig6_rank_trajectory"
  "bench_fig6_rank_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_rank_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
