file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_stacktrace.dir/bench_table5_stacktrace.cc.o"
  "CMakeFiles/bench_table5_stacktrace.dir/bench_table5_stacktrace.cc.o.d"
  "bench_table5_stacktrace"
  "bench_table5_stacktrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_stacktrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
