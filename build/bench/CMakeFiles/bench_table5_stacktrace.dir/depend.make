# Empty dependencies file for bench_table5_stacktrace.
# This may be replaced when dependencies are built.
