file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_new_root_causes.dir/bench_table6_new_root_causes.cc.o"
  "CMakeFiles/bench_table6_new_root_causes.dir/bench_table6_new_root_causes.cc.o.d"
  "bench_table6_new_root_causes"
  "bench_table6_new_root_causes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_new_root_causes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
