# Empty dependencies file for bench_table6_new_root_causes.
# This may be replaced when dependencies are built.
