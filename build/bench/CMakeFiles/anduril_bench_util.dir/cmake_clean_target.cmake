file(REMOVE_RECURSE
  "libanduril_bench_util.a"
)
