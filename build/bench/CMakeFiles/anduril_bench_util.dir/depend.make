# Empty dependencies file for anduril_bench_util.
# This may be replaced when dependencies are built.
