file(REMOVE_RECURSE
  "CMakeFiles/anduril_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/anduril_bench_util.dir/bench_util.cc.o.d"
  "libanduril_bench_util.a"
  "libanduril_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anduril_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
