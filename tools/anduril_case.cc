// anduril_case — command-line driver for the failure-case registry.
//
//   anduril_case list
//       All 22 cases with system and title.
//   anduril_case info <case>
//       Context details: observables, causal graph size, candidates.
//   anduril_case run <case> [strategy] [max_rounds]
//       Explore with a strategy (default "full") and print the per-round
//       trace plus the reproduction script.
//   anduril_case replay <case> <occurrence> <seed>
//       Inject the case's ground-truth site at a chosen occurrence/seed and
//       dump the resulting log — the tool for studying a scenario's timing
//       window.
//   anduril_case graph <case> [max_nodes]
//       Emit the causal graph in Graphviz DOT.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/analysis/graph_export.h"
#include "src/explorer/explorer.h"
#include "src/interp/log_entry.h"
#include "src/systems/common.h"

namespace anduril {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: anduril_case list\n"
               "       anduril_case info <case>\n"
               "       anduril_case run <case> [strategy] [max_rounds]\n"
               "       anduril_case replay <case> <occurrence> <seed>\n"
               "       anduril_case graph <case> [max_nodes]\n");
  return 2;
}

int List() {
  for (const systems::FailureCase& failure_case : systems::AllCases()) {
    std::printf("%-10s %-5s %-10s %s\n", failure_case.id.c_str(),
                failure_case.paper_id.c_str(), failure_case.system.c_str(),
                failure_case.title.c_str());
  }
  return 0;
}

const systems::FailureCase* Lookup(const std::string& id) {
  const systems::FailureCase* failure_case = systems::FindCase(id);
  if (failure_case == nullptr) {
    std::fprintf(stderr, "unknown case '%s' (try: anduril_case list)\n", id.c_str());
  }
  return failure_case;
}

int Info(const std::string& id) {
  const systems::FailureCase* failure_case = Lookup(id);
  if (failure_case == nullptr) {
    return 1;
  }
  systems::BuiltCase built = systems::BuildCase(*failure_case);
  explorer::Explorer ex(built.spec, explorer::ExplorerOptions{});
  const explorer::ExplorerContext& context = ex.context();
  std::printf("%s (%s): %s\n", failure_case->id.c_str(), failure_case->paper_id.c_str(),
              failure_case->title.c_str());
  std::printf("program: %zu methods, %zu stmts, %zu fault sites (%zu injectable)\n",
              built.program->method_count(), built.program->TotalStmtCount(),
              built.program->fault_sites().size(),
              context.all_injectable_sites().size());
  std::printf("failure log: %zu lines; normal log: %zu lines\n",
              context.failure_log().lines.size(), context.normal_log().lines.size());
  std::printf("causal graph: %zu nodes, %lld edges, %zu candidates\n",
              context.graph().node_count(),
              static_cast<long long>(context.graph().stats().edges),
              context.candidates().size());
  std::printf("ground truth: %s, %s at occurrence %lld\n",
              built.program->fault_site(built.ground_truth.site).name.c_str(),
              built.program->exception_type(built.ground_truth.type).name.c_str(),
              static_cast<long long>(built.ground_truth.occurrence));
  std::printf("relevant observables (%zu):\n", context.observables().size());
  for (const explorer::ObservableInfo& observable : context.observables()) {
    std::printf("  %s\n", observable.key.substr(0, 110).c_str());
  }
  return 0;
}

int RunCase(const std::string& id, const std::string& strategy_name, int max_rounds) {
  const systems::FailureCase* failure_case = Lookup(id);
  if (failure_case == nullptr) {
    return 1;
  }
  systems::BuiltCase built = systems::BuildCase(*failure_case);
  explorer::ExplorerOptions options;
  options.max_rounds = max_rounds;
  options.track_site = built.ground_truth.site;
  explorer::Explorer ex(built.spec, options);
  auto strategy = explorer::MakeStrategy(strategy_name);
  explorer::ExploreResult result = ex.Explore(strategy.get());
  for (const explorer::RoundRecord& record : result.records) {
    std::printf("round %4d  window=%-4d injected=%d rank=%-4d present=%d%s\n", record.round,
                record.window_size, record.injected ? 1 : 0, record.tracked_rank,
                record.present_observables, record.success ? "  <- reproduced" : "");
  }
  if (!result.reproduced) {
    std::printf("NOT reproduced within %d rounds\n", max_rounds);
    return 1;
  }
  std::printf("reproduced in %d rounds (%.2fs)\nscript: %s\n", result.rounds,
              result.total_seconds, result.script->ToText(*built.program).c_str());
  return 0;
}

int Replay(const std::string& id, int64_t occurrence, uint64_t seed) {
  const systems::FailureCase* failure_case = Lookup(id);
  if (failure_case == nullptr) {
    return 1;
  }
  systems::BuiltCase built = systems::BuildCase(*failure_case, /*verify=*/false);
  auto candidate = built.ground_truth;
  candidate.occurrence = occurrence;
  interp::RunResult run =
      systems::RunOnce(*built.program, built.failure_cluster, seed, {candidate});
  std::printf("injected=%d oracle=%d\n%s", run.injected.has_value() ? 1 : 0,
              failure_case->oracle(*built.program, run) ? 1 : 0,
              interp::FormatLogFile(run.log).c_str());
  for (const interp::ThreadSummary& thread : run.threads) {
    if (thread.state != interp::ThreadEndState::kFinished) {
      std::printf("thread %s/%s ended %s\n", thread.node.c_str(), thread.name.c_str(),
                  thread.state == interp::ThreadEndState::kBlocked ? "BLOCKED" : "DEAD");
    }
  }
  return 0;
}

int Graph(const std::string& id, size_t max_nodes) {
  const systems::FailureCase* failure_case = Lookup(id);
  if (failure_case == nullptr) {
    return 1;
  }
  systems::BuiltCase built = systems::BuildCase(*failure_case);
  explorer::Explorer ex(built.spec, explorer::ExplorerOptions{});
  std::fputs(analysis::ExportDot(*built.program, ex.context().graph(), max_nodes).c_str(),
             stdout);
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string command = argv[1];
  if (command == "list") {
    return List();
  }
  if (argc < 3) {
    return Usage();
  }
  std::string id = argv[2];
  if (command == "info") {
    return Info(id);
  }
  if (command == "run") {
    return RunCase(id, argc > 3 ? argv[3] : "full", argc > 4 ? std::atoi(argv[4]) : 1500);
  }
  if (command == "replay" && argc >= 5) {
    return Replay(id, std::atoll(argv[3]), std::strtoull(argv[4], nullptr, 10));
  }
  if (command == "graph") {
    return Graph(id, argc > 3 ? static_cast<size_t>(std::atoll(argv[3])) : 0);
  }
  return Usage();
}

}  // namespace
}  // namespace anduril

int main(int argc, char** argv) { return anduril::Main(argc, argv); }
