// anduril_case — command-line driver for the failure-case registry.
//
//   anduril_case list
//       All 22 cases with system and title.
//   anduril_case info <case>
//       Context details: observables, causal graph size, candidates.
//   anduril_case run <case> [strategy] [max_rounds] [--checkpoint=<path>] [--resume]
//                    [--trace-out=<path>] [--metrics-out=<path>]
//       Explore with a strategy (default "full") and print the per-round
//       trace plus the reproduction script. --checkpoint serializes the
//       search state to <path> after every round; --resume restores it from
//       there first (and continues from the next round). --trace-out writes
//       the structured search trace: Chrome trace_event JSON (load it in
//       chrome://tracing or Perfetto), or compact JSONL when the path ends
//       in ".jsonl". --metrics-out writes the metrics registry (counters,
//       gauges, histograms) as JSON.
//   anduril_case chain <case> [max_chain_length] [max_rounds]
//                      [--checkpoint=<path>] [--resume] [--signature-out=<path>]
//       Ordered-fault-chain search (ChainExplorer): per-phase context rebuild
//       with the accepted prefix pinned, causal stitching between phases.
//       --signature-out writes the minimized fault signature of a successful
//       reproduction; --checkpoint/--resume use the v3 chain checkpoint.
//   anduril_case replay <case> <occurrence> <seed>
//       Inject the case's ground-truth site at a chosen occurrence/seed and
//       dump the resulting log — the tool for studying a scenario's timing
//       window.
//   anduril_case replay <case> --signature=<path>
//       Re-execute a fault signature deterministically: one run, zero search
//       rounds. Exits nonzero when the oracle (or an oracle key) fails to
//       fire — the CI guard for committed signatures.
//   anduril_case graph <case> [max_nodes] [--graph-out=<path>]
//       Emit the causal graph in Graphviz DOT — to stdout, or to the
//       --graph-out path (the same flag anduril_lint accepts).
//
// Exit codes for run/chain: 0 reproduced, 1 capped out (or setup error),
// 2 usage, 3 interrupted. SIGTERM/SIGINT drain cooperatively: the search
// stops at the next round boundary, after the active checkpoint (if any)
// was flushed, so `--resume` continues exactly where the signal landed.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/graph_export.h"
#include "src/explorer/explorer.h"
#include "src/explorer/iterative.h"
#include "src/explorer/signature.h"
#include "src/interp/log_entry.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/systems/common.h"
#include "src/systems/harness.h"
#include "src/util/strings.h"

namespace anduril {
namespace {

std::atomic<bool> g_cancel{false};

void HandleDrainSignal(int /*signum*/) { g_cancel.store(true, std::memory_order_relaxed); }

// SIGTERM/SIGINT request a drain instead of killing the process: the search
// finishes (and checkpoints) the in-flight round, then returns with
// `interrupted` set and the tool exits 3.
void InstallDrainHandlers() {
  std::signal(SIGTERM, HandleDrainSignal);
  std::signal(SIGINT, HandleDrainSignal);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: anduril_case list\n"
      "       anduril_case info <case>\n"
      "       anduril_case run <case> [strategy] [max_rounds] [--checkpoint=<path>] "
      "[--resume]\n"
      "                    [--trace-out=<path>] [--metrics-out=<path>]\n"
      "           --trace-out:   write the search trace; Chrome trace_event JSON\n"
      "                          (chrome://tracing / Perfetto), or JSONL if <path>\n"
      "                          ends in \".jsonl\"\n"
      "           --metrics-out: write the metrics registry (counters, gauges,\n"
      "                          histograms) as JSON\n"
      "       anduril_case chain <case> [max_chain_length] [max_rounds] "
      "[--checkpoint=<path>]\n"
      "                    [--resume] [--signature-out=<path>]\n"
      "           chain search for cascading failures; --signature-out writes the\n"
      "           minimized fault signature of a successful reproduction\n"
      "       anduril_case replay <case> <occurrence> <seed>\n"
      "       anduril_case replay <case> --signature=<path>\n"
      "       anduril_case graph <case> [max_nodes] [--graph-out=<path>]\n");
  return 2;
}

int List() {
  for (const systems::FailureCase& failure_case : systems::AllCases()) {
    std::printf("%-10s %-5s %-10s %s\n", failure_case.id.c_str(),
                failure_case.paper_id.c_str(), failure_case.system.c_str(),
                failure_case.title.c_str());
  }
  for (const std::vector<systems::FailureCase>* registry :
       {&systems::CrashStallCases(), &systems::NetworkCases()}) {
    for (const systems::FailureCase& failure_case : *registry) {
      std::printf("%-10s %-5s %-10s %s [%s]\n", failure_case.id.c_str(),
                  failure_case.paper_id.c_str(), failure_case.system.c_str(),
                  failure_case.title.c_str(), interp::FaultKindName(failure_case.root_kind));
    }
  }
  for (const systems::FailureCase& failure_case : systems::CascadeCases()) {
    std::printf("%-10s %-5s %-10s %s [chain:%zu]\n", failure_case.id.c_str(),
                failure_case.paper_id.c_str(), failure_case.system.c_str(),
                failure_case.title.c_str(), failure_case.root_chain.size());
  }
  return 0;
}

const systems::FailureCase* Lookup(const std::string& id) {
  const systems::FailureCase* failure_case = systems::FindCase(id);
  if (failure_case == nullptr) {
    std::fprintf(stderr, "unknown case '%s' (try: anduril_case list)\n", id.c_str());
  }
  return failure_case;
}

int Info(const std::string& id) {
  const systems::FailureCase* failure_case = Lookup(id);
  if (failure_case == nullptr) {
    return 1;
  }
  systems::BuiltCase built = systems::BuildCase(*failure_case);
  explorer::Explorer ex(built.spec, explorer::ExplorerOptions{});
  const explorer::ExplorerContext& context = ex.context();
  std::printf("%s (%s): %s\n", failure_case->id.c_str(), failure_case->paper_id.c_str(),
              failure_case->title.c_str());
  std::printf("program: %zu methods, %zu stmts, %zu fault sites (%zu injectable)\n",
              built.program->method_count(), built.program->TotalStmtCount(),
              built.program->fault_sites().size(),
              context.all_injectable_sites().size());
  std::printf("failure log: %zu lines; normal log: %zu lines\n",
              context.failure_log().lines.size(), context.normal_log().lines.size());
  std::printf("causal graph: %zu nodes, %lld edges, %zu candidates\n",
              context.graph().node_count(),
              static_cast<long long>(context.graph().stats().edges),
              context.candidates().size());
  std::printf("ground truth: %s, %s at occurrence %lld\n",
              built.program->fault_site(built.ground_truth.site).name.c_str(),
              built.ground_truth.kind == interp::FaultKind::kException
                  ? built.program->exception_type(built.ground_truth.type).name.c_str()
                  : interp::FaultKindName(built.ground_truth.kind),
              static_cast<long long>(built.ground_truth.occurrence));
  std::printf("relevant observables (%zu):\n", context.observables().size());
  for (size_t k = 0; k < context.observables().size(); ++k) {
    const explorer::ObservableInfo& observable = context.observables()[k];
    std::printf("  [%zu] %s  positions=%zu", k, observable.key.substr(0, 90).c_str(),
                observable.failure_positions.size());
    if (!observable.failure_positions.empty()) {
      std::printf(" [%lld..%lld]",
                  static_cast<long long>(observable.failure_positions.front()),
                  static_cast<long long>(observable.failure_positions.back()));
    }
    std::printf("\n");
  }
  return 0;
}

bool WriteTextFile(const std::string& path, const std::string& text, const char* what) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << text;
  out.close();
  if (!out) {
    std::fprintf(stderr, "cannot write %s to %s\n", what, path.c_str());
    return false;
  }
  return true;
}

int RunCase(const std::string& id, const std::string& strategy_name, int max_rounds,
            const std::string& checkpoint_path, bool resume, const std::string& trace_path,
            const std::string& metrics_path) {
  const systems::FailureCase* failure_case = Lookup(id);
  if (failure_case == nullptr) {
    return 1;
  }
  systems::BuiltCase built = systems::BuildCase(*failure_case);
  explorer::ExplorerOptions options = systems::OptionsForCase(*failure_case);
  options.max_rounds = max_rounds;
  options.track_site = built.ground_truth.site;
  options.cancel = &g_cancel;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  if (!trace_path.empty()) {
    options.tracer = &tracer;
  }
  if (!metrics_path.empty()) {
    options.metrics = &metrics;
  }
  explorer::Explorer ex(built.spec, options);
  auto strategy = explorer::MakeStrategy(strategy_name);

  explorer::CheckpointConfig checkpoint;
  checkpoint.path = checkpoint_path;
  explorer::SearchCheckpoint resumed;
  if (resume) {
    if (checkpoint_path.empty()) {
      std::fprintf(stderr, "--resume requires --checkpoint=<path>\n");
      return 2;
    }
    std::string error;
    if (!explorer::LoadCheckpointFile(checkpoint_path, &resumed, &error)) {
      std::fprintf(stderr, "cannot resume: %s\n", error.c_str());
      return 1;
    }
    checkpoint.resume = &resumed;
    std::printf("resuming from round %d (%s)\n", resumed.rounds_completed + 1,
                checkpoint_path.c_str());
  }

  explorer::ExploreResult result = ex.Explore(strategy.get(), checkpoint);
  if (!trace_path.empty()) {
    const bool jsonl = trace_path.size() >= 6 &&
                       trace_path.compare(trace_path.size() - 6, 6, ".jsonl") == 0;
    const std::string text = jsonl ? tracer.DumpJsonl(/*include_wall=*/true)
                                   : tracer.DumpChromeTrace(/*include_wall=*/true);
    if (!WriteTextFile(trace_path, text, "trace")) {
      return 1;
    }
    std::printf("trace: %zu events -> %s (%s)\n", tracer.event_count(), trace_path.c_str(),
                jsonl ? "jsonl" : "chrome trace_event");
  }
  if (!metrics_path.empty()) {
    if (!WriteTextFile(metrics_path, metrics.DumpJson(), "metrics")) {
      return 1;
    }
    std::printf("metrics: -> %s\n", metrics_path.c_str());
  }
  for (const explorer::RoundRecord& record : result.records) {
    std::printf(
        "round %4d  window=%-4d injected=%d rank=%-4d present=%d net=%-3d outcome=%s%s%s%s\n",
        record.round, record.window_size, record.injected ? 1 : 0, record.tracked_rank,
        record.present_observables, record.network_candidates_tried,
        interp::RunOutcomeName(record.outcome),
        record.injected
            ? anduril::StrFormat("  %s@%lld",
                                 built.program->fault_site(record.candidate.site).name.c_str(),
                                 static_cast<long long>(record.candidate.occurrence))
                  .c_str()
            : "",
        record.retries > 0 ? "  (retried)" : "", record.success ? "  <- reproduced" : "");
    for (const interp::PartitionTransition& transition : record.partition_events) {
      std::printf("            partition %s %s<->%s at t=%lldms\n",
                  transition.sever ? "severed" : "healed", transition.node_a.c_str(),
                  transition.node_b.c_str(), static_cast<long long>(transition.time_ms));
    }
  }
  const explorer::ExperimentRecord& experiment = result.experiment;
  std::printf(
      "outcomes: %d completed, %d crashed, %d hung, %d partitioned-stuck, %d "
      "budget-exceeded; %d transient retries\n",
      experiment.completed_rounds, experiment.crashed_rounds, experiment.hung_rounds,
      experiment.partitioned_stuck_rounds, experiment.budget_exceeded_rounds,
      experiment.transient_retries);
  if (result.interrupted) {
    std::printf("interrupted after round %d%s\n", result.rounds,
                checkpoint_path.empty() ? "" : " (checkpoint flushed; rerun with --resume)");
    return 3;
  }
  if (!result.reproduced) {
    std::printf("NOT reproduced within %d rounds\n", max_rounds);
    return 1;
  }
  std::printf("reproduced in %d rounds (%.2fs)\nscript: %s\n", result.rounds,
              result.total_seconds, result.script->ToText(*built.program).c_str());
  return 0;
}

int ChainCase(const std::string& id, int max_chain_length, int max_rounds,
              const std::string& checkpoint_path, bool resume,
              const std::string& signature_out, const std::string& trace_path,
              const std::string& metrics_path) {
  const systems::FailureCase* failure_case = Lookup(id);
  if (failure_case == nullptr) {
    return 1;
  }
  systems::BuiltCase built = systems::BuildCase(*failure_case);
  explorer::ExplorerOptions options = systems::OptionsForCase(*failure_case);
  options.max_rounds = max_rounds;
  options.track_site = built.ground_truth.site;
  options.cancel = &g_cancel;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  if (!trace_path.empty()) {
    options.tracer = &tracer;
  }
  if (!metrics_path.empty()) {
    options.metrics = &metrics;
  }

  explorer::CheckpointConfig checkpoint;
  checkpoint.path = checkpoint_path;
  explorer::SearchCheckpoint resumed;
  if (resume) {
    if (checkpoint_path.empty()) {
      std::fprintf(stderr, "--resume requires --checkpoint=<path>\n");
      return 2;
    }
    std::string error;
    if (!explorer::LoadCheckpointFile(checkpoint_path, &resumed, &error)) {
      std::fprintf(stderr, "cannot resume: %s\n", error.c_str());
      return 1;
    }
    checkpoint.resume = &resumed;
    std::printf("resuming chain search: phase %d, %d steps accepted, round %d (%s)\n",
                resumed.chain.phase, static_cast<int>(resumed.chain.steps.size()),
                resumed.rounds_completed + 1, checkpoint_path.c_str());
  }

  explorer::ChainExplorer ex(built.spec, options);
  explorer::ChainResult result = ex.Explore(max_chain_length, checkpoint);
  if (!trace_path.empty()) {
    const bool jsonl = trace_path.size() >= 6 &&
                       trace_path.compare(trace_path.size() - 6, 6, ".jsonl") == 0;
    const std::string text = jsonl ? tracer.DumpJsonl(/*include_wall=*/true)
                                   : tracer.DumpChromeTrace(/*include_wall=*/true);
    if (!WriteTextFile(trace_path, text, "trace")) {
      return 1;
    }
    std::printf("trace: %zu events -> %s (%s)\n", tracer.event_count(), trace_path.c_str(),
                jsonl ? "jsonl" : "chrome trace_event");
  }
  if (!metrics_path.empty()) {
    if (!WriteTextFile(metrics_path, metrics.DumpJson(), "metrics")) {
      return 1;
    }
    std::printf("metrics: -> %s\n", metrics_path.c_str());
  }
  std::printf("phases: %d, total rounds: %d, demoted chain candidates: %d\n", result.phases,
              result.total_rounds, result.demoted_chain_candidates);
  for (size_t i = 0; i < result.chain.steps.size(); ++i) {
    const explorer::FaultChainStep& step = result.chain.steps[i];
    const char* what = step.candidate.kind == interp::FaultKind::kException
                           ? built.program->exception_type(step.candidate.type).name.c_str()
                           : interp::FaultKindName(step.candidate.kind);
    std::printf("  step %zu: %s, %s at occurrence %lld (seed %llu, %d rounds",
                i + 1, built.program->fault_site(step.candidate.site).name.c_str(), what,
                static_cast<long long>(step.candidate.occurrence),
                static_cast<unsigned long long>(step.seed), step.rounds);
    if (!step.stitched_observables.empty()) {
      std::printf(", flipped %zu observables", step.stitched_observables.size());
    }
    std::printf(")\n");
  }
  if (result.interrupted) {
    std::printf("interrupted after %d rounds%s\n", result.total_rounds,
                checkpoint_path.empty() ? "" : " (checkpoint flushed; rerun with --resume)");
    return 3;
  }
  if (!result.reproduced) {
    std::printf("NOT reproduced: chain capped at %zu steps within %d rounds/phase\n",
                result.chain.steps.size(), max_rounds);
    return 1;
  }
  std::printf("reproduced: %zu-step chain, %d total rounds\n", result.chain.steps.size(),
              result.total_rounds);
  if (!signature_out.empty()) {
    explorer::FaultSignature signature =
        explorer::BuildSignature(built.spec, failure_case->id, result);
    int replays = 0;
    signature = explorer::MinimizeSignature(built.spec, std::move(signature), &replays);
    if (!explorer::SaveSignatureFile(signature_out, signature)) {
      std::fprintf(stderr, "cannot write signature to %s\n", signature_out.c_str());
      return 1;
    }
    std::printf("signature: %zu steps, %zu tasks, %zu methods (%d minimization replays) -> %s\n",
                signature.steps.size(), signature.retained_tasks.size(),
                signature.ir_methods.size(), replays, signature_out.c_str());
  }
  return 0;
}

int ReplayFromSignature(const std::string& id, const std::string& signature_path) {
  const systems::FailureCase* failure_case = Lookup(id);
  if (failure_case == nullptr) {
    return 1;
  }
  explorer::FaultSignature signature;
  std::string error;
  if (!explorer::LoadSignatureFile(signature_path, &signature, &error)) {
    std::fprintf(stderr, "cannot load signature: %s\n", error.c_str());
    return 1;
  }
  if (signature.case_id != failure_case->id) {
    std::fprintf(stderr, "signature %s was emitted for case %s, not %s\n",
                 signature_path.c_str(), signature.case_id.c_str(), failure_case->id.c_str());
    return 1;
  }
  // verify=false: a signature replay must not depend on re-running the
  // search-side verification sweeps — it is one deterministic run.
  systems::BuiltCase built = systems::BuildCase(*failure_case, /*verify=*/false);
  explorer::SignatureReplay replay = explorer::ReplaySignature(built.spec, signature);
  if (!replay.error.empty()) {
    std::fprintf(stderr, "signature replay failed: %s\n", replay.error.c_str());
    return 1;
  }
  std::printf("signature: %zu steps, %zu tasks, %zu methods, %s\n", signature.steps.size(),
              signature.retained_tasks.size(), signature.ir_methods.size(),
              signature.minimized ? "minimized" : "unminimized");
  std::printf("%s", interp::FormatLogFile(replay.run.log).c_str());
  std::printf("run outcome: %s\n", interp::RunOutcomeName(replay.run.outcome));
  if (!replay.fired) {
    std::printf("signature did NOT fire (oracle or oracle keys missing)\n");
    return 1;
  }
  std::printf("signature fired: oracle and all %zu oracle keys present, zero search rounds\n",
              signature.oracle_keys.size());
  return 0;
}

int Replay(const std::string& id, int64_t occurrence, uint64_t seed) {
  const systems::FailureCase* failure_case = Lookup(id);
  if (failure_case == nullptr) {
    return 1;
  }
  systems::BuiltCase built = systems::BuildCase(*failure_case, /*verify=*/false);
  auto candidate = built.ground_truth;
  candidate.occurrence = occurrence;
  interp::RunResult run =
      systems::RunOnce(*built.program, built.failure_cluster, seed, {candidate});
  std::printf("injected=%d oracle=%d\n%s", run.injected.has_value() ? 1 : 0,
              failure_case->oracle(*built.program, run) ? 1 : 0,
              interp::FormatLogFile(run.log).c_str());
  for (const interp::ThreadSummary& thread : run.threads) {
    if (thread.state != interp::ThreadEndState::kFinished) {
      const char* state = thread.state == interp::ThreadEndState::kBlocked  ? "BLOCKED"
                          : thread.state == interp::ThreadEndState::kCrashed ? "CRASHED"
                                                                              : "DEAD";
      std::printf("thread %s/%s ended %s\n", thread.node.c_str(), thread.name.c_str(), state);
    }
  }
  std::printf("run outcome: %s\n", interp::RunOutcomeName(run.outcome));
  const interp::NetworkStats& network = run.network;
  std::printf(
      "network: %lld sent, %lld dropped (fault), %lld dropped (partition), %lld dropped "
      "(crashed), %lld delayed, %lld duplicated, %lld severed, %lld healed\n",
      static_cast<long long>(network.messages_sent),
      static_cast<long long>(network.dropped_by_fault),
      static_cast<long long>(network.dropped_by_partition),
      static_cast<long long>(network.dropped_to_crashed),
      static_cast<long long>(network.delayed), static_cast<long long>(network.duplicated),
      static_cast<long long>(network.partitions_severed),
      static_cast<long long>(network.partitions_healed));
  for (const interp::PartitionTransition& transition : run.partition_events) {
    std::printf("partition %s %s<->%s at t=%lldms\n", transition.sever ? "severed" : "healed",
                transition.node_a.c_str(), transition.node_b.c_str(),
                static_cast<long long>(transition.time_ms));
  }
  return 0;
}

int Graph(const std::string& id, size_t max_nodes, const std::string& graph_out) {
  const systems::FailureCase* failure_case = Lookup(id);
  if (failure_case == nullptr) {
    return 1;
  }
  systems::BuiltCase built = systems::BuildCase(*failure_case);
  explorer::Explorer ex(built.spec, explorer::ExplorerOptions{});
  std::string dot = analysis::ExportDot(*built.program, ex.context().graph(), max_nodes);
  if (graph_out.empty()) {
    std::fputs(dot.c_str(), stdout);
    return 0;
  }
  if (!WriteTextFile(graph_out, dot, "causal graph")) {
    return 1;
  }
  std::printf("causal graph: %zu nodes -> %s\n", ex.context().graph().node_count(),
              graph_out.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  // Split flag arguments (--checkpoint=<path>, --resume) from positionals.
  std::vector<std::string> args;
  std::string checkpoint_path;
  std::string trace_path;
  std::string metrics_path;
  std::string graph_out;
  std::string signature_path;
  std::string signature_out;
  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--checkpoint=", 0) == 0) {
      checkpoint_path = arg.substr(std::string("--checkpoint=").size());
    } else if (arg.rfind("--signature=", 0) == 0) {
      signature_path = arg.substr(std::string("--signature=").size());
    } else if (arg.rfind("--signature-out=", 0) == 0) {
      signature_out = arg.substr(std::string("--signature-out=").size());
    } else if (arg.rfind("--graph-out=", 0) == 0) {
      graph_out = arg.substr(std::string("--graph-out=").size());
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_path = arg.substr(std::string("--trace-out=").size());
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_path = arg.substr(std::string("--metrics-out=").size());
    } else if (arg == "--resume") {
      resume = true;
    } else {
      args.push_back(std::move(arg));
    }
  }
  if (args.empty()) {
    return Usage();
  }
  const std::string& command = args[0];
  if (command == "list") {
    return List();
  }
  if (args.size() < 2) {
    return Usage();
  }
  const std::string& id = args[1];
  if (command == "info") {
    return Info(id);
  }
  if (command == "run") {
    InstallDrainHandlers();
    return RunCase(id, args.size() > 2 ? args[2] : "full",
                   args.size() > 3 ? std::atoi(args[3].c_str()) : 1500, checkpoint_path,
                   resume, trace_path, metrics_path);
  }
  if (command == "chain") {
    InstallDrainHandlers();
    return ChainCase(id, args.size() > 2 ? std::atoi(args[2].c_str()) : 4,
                     args.size() > 3 ? std::atoi(args[3].c_str()) : 1500, checkpoint_path,
                     resume, signature_out, trace_path, metrics_path);
  }
  if (command == "replay" && !signature_path.empty()) {
    return ReplayFromSignature(id, signature_path);
  }
  if (command == "replay" && args.size() >= 4) {
    return Replay(id, std::atoll(args[2].c_str()),
                  std::strtoull(args[3].c_str(), nullptr, 10));
  }
  if (command == "graph") {
    return Graph(id, args.size() > 2 ? static_cast<size_t>(std::atoll(args[2].c_str())) : 0,
                 graph_out);
  }
  return Usage();
}

}  // namespace
}  // namespace anduril

int main(int argc, char** argv) { return anduril::Main(argc, argv); }
