// anduril_serve — reproduction-as-a-service daemon over the failure-case
// registry.
//
//   anduril_serve run <state_dir> [--cases=id[:budget],...] [--workers=N]
//                     [--slice-rounds=N] [--round-budget=N] [--quiet]
//                     [--heartbeat-timeout-ms=N] [--poll-ms=N]
//                     [--crash-after-slices=N] [--worker-crash-slice=K]
//                     [--worker-crash-rounds=R]
//       Enqueue the cases (default: all 22 base scenarios) and run the queue
//       to completion, sharding slices across N supervised worker processes
//       (0 = in-process serial). All state lives under <state_dir>; rerunning
//       with the same directory resumes the journaled queue — after a crash,
//       a SIGKILL, or a drain — with byte-identical final scripts and
//       metrics. Cascade cases are searched in chain mode automatically.
//       --crash-after-slices / --worker-crash-slice are deterministic
//       kill-emulation hooks used by the crash/resume tests.
//   anduril_serve status <state_dir>
//       Print the journaled queue state.
//   anduril_serve worker <dir> [daemon_pid]
//       Internal: worker-process loop (spawned by `run`).
//
// Exit codes for run: 0 every case reproduced, 1 some case starved/failed
// (or setup error), 2 usage, 3 drained by SIGTERM/SIGINT (resumable).

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/service/daemon.h"
#include "src/service/manifest.h"
#include "src/service/worker.h"
#include "src/systems/common.h"

namespace anduril {
namespace {

std::atomic<bool> g_cancel{false};

void HandleDrainSignal(int /*signum*/) { g_cancel.store(true, std::memory_order_relaxed); }

void InstallDrainHandlers() {
  std::signal(SIGTERM, HandleDrainSignal);
  std::signal(SIGINT, HandleDrainSignal);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: anduril_serve run <state_dir> [--cases=id[:budget],...] [--workers=N]\n"
      "                        [--slice-rounds=N] [--round-budget=N] [--quiet]\n"
      "                        [--heartbeat-timeout-ms=N] [--poll-ms=N]\n"
      "                        [--crash-after-slices=N] [--worker-crash-slice=K]\n"
      "                        [--worker-crash-rounds=R]\n"
      "       anduril_serve status <state_dir>\n"
      "       anduril_serve worker <dir> [daemon_pid]\n");
  return 2;
}

bool IsCascadeCase(const std::string& id) {
  for (const systems::FailureCase& failure_case : systems::CascadeCases()) {
    if (failure_case.id == id || failure_case.paper_id == id) {
      return true;
    }
  }
  return false;
}

// "id" or "id:budget" → QueueCase (budget falls back to default_budget).
bool ParseCaseSpec(const std::string& spec, int default_budget, service::QueueCase* out) {
  std::string id = spec;
  int budget = default_budget;
  if (const size_t colon = spec.find(':'); colon != std::string::npos) {
    id = spec.substr(0, colon);
    budget = std::atoi(spec.c_str() + colon + 1);
  }
  const systems::FailureCase* failure_case = systems::FindCase(id);
  if (failure_case == nullptr) {
    std::fprintf(stderr, "unknown case '%s' (try: anduril_case list)\n", id.c_str());
    return false;
  }
  out->id = failure_case->id;
  out->chain = IsCascadeCase(failure_case->id);
  out->round_budget = budget;
  return true;
}

int RunCommand(const std::string& state_dir, const std::vector<std::string>& case_specs,
               service::ServeOptions options, int round_budget) {
  for (const std::string& spec : case_specs) {
    service::QueueCase entry;
    if (!ParseCaseSpec(spec, round_budget, &entry)) {
      return 2;
    }
    options.seed_cases.push_back(std::move(entry));
  }
  if (options.seed_cases.empty()) {
    for (const systems::FailureCase& failure_case : systems::AllCases()) {
      service::QueueCase entry;
      entry.id = failure_case.id;
      entry.round_budget = round_budget;
      options.seed_cases.push_back(std::move(entry));
    }
  }
  options.state_dir = state_dir;
  options.cancel = &g_cancel;
  InstallDrainHandlers();
  const service::ServeReport report = service::RunService(options);
  if (report.interrupted) {
    return 3;
  }
  if (report.error) {
    return 1;
  }
  const bool all_reproduced =
      report.manifest.CountState(service::CaseState::kReproduced) ==
      static_cast<int>(report.manifest.cases.size());
  return all_reproduced ? 0 : 1;
}

int StatusCommand(const std::string& state_dir) {
  service::QueueManifest manifest;
  std::string error;
  if (!service::LoadManifestFile(service::ManifestPath(state_dir), &manifest, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  for (const service::QueueCase& entry : manifest.cases) {
    std::printf("%-12s %-10s %6d/%d rounds, %d slices, %d crashes%s\n", entry.id.c_str(),
                service::CaseStateName(entry.state), entry.rounds_done, entry.round_budget,
                entry.slices_done, entry.crashes, entry.chain ? " [chain]" : "");
  }
  std::printf("%d reproduced, %d starved, %d failed, %d pending\n",
              manifest.CountState(service::CaseState::kReproduced),
              manifest.CountState(service::CaseState::kStarved),
              manifest.CountState(service::CaseState::kFailed),
              manifest.CountState(service::CaseState::kPending));
  return 0;
}

int WorkerCommand(const std::string& dir, const std::string& parent_pid) {
  InstallDrainHandlers();
  service::WorkerOptions options;
  options.work_dir = dir;
  options.parent_pid = std::atoll(parent_pid.c_str());
  options.cancel = &g_cancel;
  return service::RunWorkerLoop(options);
}

int Main(int argc, char** argv) {
  std::vector<std::string> args;
  std::vector<std::string> case_specs;
  service::ServeOptions options;
  int round_budget = 2000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto int_flag = [&arg](const char* name, int* out) {
      const std::string prefix = std::string("--") + name + "=";
      if (arg.rfind(prefix, 0) == 0) {
        *out = std::atoi(arg.c_str() + prefix.size());
        return true;
      }
      return false;
    };
    if (arg.rfind("--cases=", 0) == 0) {
      std::string list = arg.substr(std::string("--cases=").size());
      size_t start = 0;
      while (start <= list.size()) {
        const size_t comma = list.find(',', start);
        const std::string item = list.substr(
            start, comma == std::string::npos ? std::string::npos : comma - start);
        if (!item.empty()) {
          case_specs.push_back(item);
        }
        if (comma == std::string::npos) {
          break;
        }
        start = comma + 1;
      }
    } else if (arg == "--quiet") {
      options.verbose = false;
    } else if (int_flag("workers", &options.workers) ||
               int_flag("slice-rounds", &options.slice_rounds) ||
               int_flag("round-budget", &round_budget) ||
               int_flag("heartbeat-timeout-ms", &options.heartbeat_timeout_ms) ||
               int_flag("poll-ms", &options.poll_ms) ||
               int_flag("crash-after-slices", &options.crash_after_slices) ||
               int_flag("worker-crash-slice", &options.worker_crash_slice) ||
               int_flag("worker-crash-rounds", &options.worker_crash_rounds)) {
      // parsed into options
    } else {
      args.push_back(arg);
    }
  }
  if (args.size() < 2) {
    return Usage();
  }
  const std::string& command = args[0];
  if (command == "run") {
    return RunCommand(args[1], case_specs, std::move(options), round_budget);
  }
  if (command == "status") {
    return StatusCommand(args[1]);
  }
  if (command == "worker") {
    return WorkerCommand(args[1], args.size() > 2 ? args[2] : "0");
  }
  return Usage();
}

}  // namespace
}  // namespace anduril

int main(int argc, char** argv) { return anduril::Main(argc, argv); }
