// anduril_lint — static analysis driver over the failure-case registry.
//
//   anduril_lint case <case> [--json] [--graph-out=<path>]
//       Run the lint pass suite over one case's program, with the cluster
//       environment (node names, entry methods) taken from the union of the
//       case's exploration and production workloads. --json emits the
//       machine-readable report; --graph-out writes the causal graph in
//       Graphviz DOT (same flag as anduril_case).
//   anduril_lint all [--json]
//       Lint every registered case (exception, crash/stall, network, and
//       cascade registries). Prints one summary line per case; exits nonzero
//       if any case has lint errors.
//   anduril_lint soundness <case|all> [max_candidates]
//       Causal-soundness cross-validation: replay each exception candidate
//       on the simulator and check every dynamically-observed
//       fault->observable pair has a static path in the causal graph
//       (dynamic ⊆ static). Exits nonzero on any violation.
//
// CI runs `anduril_lint all` and `anduril_lint soundness all` on every push:
// an Algorithm 1 regression that breaks graph over-approximation, or a
// scenario edit that introduces unreachable code / shadowed handlers /
// unknown send targets, fails the build.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/analysis/graph_export.h"
#include "src/analysis/lint.h"
#include "src/explorer/explorer.h"
#include "src/explorer/soundness.h"
#include "src/systems/common.h"

namespace anduril {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: anduril_lint case <case> [--json] [--graph-out=<path>]\n"
               "       anduril_lint all [--json]\n"
               "       anduril_lint soundness <case|all> [max_candidates]\n");
  return 2;
}

std::vector<const systems::FailureCase*> EveryCase() {
  std::vector<const systems::FailureCase*> cases;
  for (const std::vector<systems::FailureCase>* registry :
       {&systems::AllCases(), &systems::CrashStallCases(), &systems::NetworkCases(),
        &systems::CascadeCases()}) {
    for (const systems::FailureCase& failure_case : *registry) {
      cases.push_back(&failure_case);
    }
  }
  return cases;
}

// Cluster facts for the environment-dependent passes: nodes and entry
// methods from both the exploration and the production workload, so a
// method only the failure run boots still counts as live.
analysis::LintEnvironment EnvironmentOf(const systems::BuiltCase& built) {
  analysis::LintEnvironment env;
  env.provided = true;
  std::unordered_set<std::string> node_seen;
  std::unordered_set<ir::MethodId> method_seen;
  for (const interp::ClusterSpec* cluster : {&built.cluster, &built.failure_cluster}) {
    for (const std::string& node : cluster->nodes) {
      if (node_seen.insert(node).second) {
        env.node_names.push_back(node);
      }
    }
    for (const interp::InitialTask& task : cluster->tasks) {
      if (method_seen.insert(task.method).second) {
        env.entry_methods.push_back(task.method);
      }
    }
  }
  return env;
}

explorer::ExplorerOptions OptionsFor(const systems::FailureCase& failure_case) {
  explorer::ExplorerOptions options;
  // Chain-aware: a cascade case's crash/stall or network fault may sit
  // anywhere in its ground-truth chain, not just at the root.
  options.crash_stall_candidates = systems::NeedsCrashStallCandidates(failure_case);
  options.network_candidates = systems::NeedsNetworkCandidates(failure_case);
  return options;
}

bool WriteTextFile(const std::string& path, const std::string& text, const char* what) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << text;
  out.close();
  if (!out) {
    std::fprintf(stderr, "cannot write %s to %s\n", what, path.c_str());
    return false;
  }
  return true;
}

int LintOne(const std::string& id, bool json, const std::string& graph_out) {
  const systems::FailureCase* failure_case = systems::FindCase(id);
  if (failure_case == nullptr) {
    std::fprintf(stderr, "unknown case '%s' (try: anduril_case list)\n", id.c_str());
    return 1;
  }
  systems::BuiltCase built = systems::BuildCase(*failure_case);
  analysis::LintReport report = analysis::RunLints(*built.program, EnvironmentOf(built));
  std::fputs(json ? report.ToJson(*built.program).c_str()
                  : report.ToText(*built.program).c_str(),
             stdout);
  if (!graph_out.empty()) {
    explorer::Explorer ex(built.spec, OptionsFor(*failure_case));
    if (!WriteTextFile(graph_out, analysis::ExportDot(*built.program, ex.context().graph()),
                       "causal graph")) {
      return 1;
    }
    std::printf("causal graph: %zu nodes -> %s\n", ex.context().graph().node_count(),
                graph_out.c_str());
  }
  return report.error_count() == 0 ? 0 : 1;
}

int LintAll(bool json) {
  size_t errors = 0;
  size_t warnings = 0;
  size_t infos = 0;
  for (const systems::FailureCase* failure_case : EveryCase()) {
    systems::BuiltCase built = systems::BuildCase(*failure_case);
    analysis::LintReport report = analysis::RunLints(*built.program, EnvironmentOf(built));
    errors += report.error_count();
    warnings += report.CountOf(analysis::LintSeverity::kWarning);
    infos += report.CountOf(analysis::LintSeverity::kInfo);
    if (json) {
      std::printf("{\"case\": \"%s\", \"report\": %s}\n", failure_case->id.c_str(),
                  report.ToJson(*built.program).c_str());
    } else {
      std::printf("%-10s %zu errors, %zu warnings, %zu infos (%.2f ms)\n",
                  failure_case->id.c_str(), report.error_count(),
                  report.CountOf(analysis::LintSeverity::kWarning),
                  report.CountOf(analysis::LintSeverity::kInfo), report.seconds * 1000.0);
      for (const analysis::LintDiagnostic& diagnostic : report.diagnostics) {
        if (diagnostic.severity == analysis::LintSeverity::kError) {
          std::printf("  error [%s] @%s#%d: %s\n", diagnostic.pass.c_str(),
                      built.program->method(diagnostic.location.method).name.c_str(),
                      diagnostic.location.stmt, diagnostic.message.c_str());
        }
      }
    }
  }
  std::printf("total: %zu errors, %zu warnings, %zu infos over %zu cases\n", errors,
              warnings, infos, EveryCase().size());
  return errors == 0 ? 0 : 1;
}

int Soundness(const std::string& id, size_t max_candidates) {
  std::vector<const systems::FailureCase*> cases;
  if (id == "all") {
    cases = EveryCase();
  } else {
    const systems::FailureCase* failure_case = systems::FindCase(id);
    if (failure_case == nullptr) {
      std::fprintf(stderr, "unknown case '%s' (try: anduril_case list)\n", id.c_str());
      return 1;
    }
    cases.push_back(failure_case);
  }
  size_t violations = 0;
  for (const systems::FailureCase* failure_case : cases) {
    systems::BuiltCase built = systems::BuildCase(*failure_case);
    explorer::Explorer ex(built.spec, OptionsFor(*failure_case));
    explorer::SoundnessReport report =
        explorer::CheckCausalSoundness(ex.context(), max_candidates);
    violations += report.violations.size();
    std::printf("%-10s %s", failure_case->id.c_str(),
                report.ToText(ex.context()).c_str());
  }
  return violations == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  std::vector<std::string> args;
  std::string graph_out;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--graph-out=", 0) == 0) {
      graph_out = arg.substr(std::string("--graph-out=").size());
    } else if (arg == "--json") {
      json = true;
    } else {
      args.push_back(std::move(arg));
    }
  }
  if (args.empty()) {
    return Usage();
  }
  const std::string& command = args[0];
  if (command == "all") {
    return LintAll(json);
  }
  if (command == "case" && args.size() >= 2) {
    return LintOne(args[1], json, graph_out);
  }
  if (command == "soundness" && args.size() >= 2) {
    return Soundness(args[1],
                     args.size() > 2 ? static_cast<size_t>(std::atoll(args[2].c_str())) : 0);
  }
  return Usage();
}

}  // namespace
}  // namespace anduril

int main(int argc, char** argv) { return anduril::Main(argc, argv); }
