#include "src/logdiff/parser.h"

#include "src/util/strings.h"

namespace anduril::logdiff {

std::string Sanitize(const std::string& message) {
  std::string out;
  out.reserve(message.size());
  bool in_digits = false;
  for (char c : message) {
    if (c >= '0' && c <= '9') {
      if (!in_digits) {
        out.push_back('#');
        in_digits = true;
      }
    } else {
      in_digits = false;
      out.push_back(c);
    }
  }
  return out;
}

ParsedLog ParseLogFile(const std::string& text, const LogFormat& format) {
  ParsedLog log;
  for (std::string_view raw : Split(text, '\n')) {
    std::string_view line = Trim(raw);
    if (line.empty()) {
      continue;
    }
    // Skip timestamp tokens.
    size_t pos = 0;
    bool bad = false;
    for (int i = 0; i < format.timestamp_tokens; ++i) {
      size_t space = line.find(' ', pos);
      if (space == std::string_view::npos) {
        bad = true;
        break;
      }
      pos = space + 1;
    }
    if (bad || pos >= line.size() || line[pos] != '[') {
      continue;
    }
    size_t thread_end = line.find(']', pos);
    if (thread_end == std::string_view::npos) {
      continue;
    }
    std::string thread(line.substr(pos + 1, thread_end - pos - 1));
    pos = thread_end + 1;
    while (pos < line.size() && line[pos] == ' ') {
      ++pos;
    }
    size_t level_end = line.find(' ', pos);
    if (level_end == std::string_view::npos) {
      continue;
    }
    std::string level(line.substr(pos, level_end - pos));
    pos = level_end + 1;
    size_t sep = line.find(format.message_separator, pos);
    if (sep == std::string_view::npos) {
      continue;
    }
    std::string logger(Trim(line.substr(pos, sep - pos)));
    std::string message(line.substr(sep + format.message_separator.size()));

    ParsedLine parsed;
    parsed.index = static_cast<int64_t>(log.lines.size());
    parsed.thread = std::move(thread);
    parsed.level = std::move(level);
    parsed.logger = std::move(logger);
    parsed.key = parsed.level + "|" + parsed.logger + "|" + Sanitize(message);
    parsed.message = std::move(message);
    log.lines.push_back(std::move(parsed));
  }
  return log;
}

}  // namespace anduril::logdiff
