// Production-log parsing.
//
// The explorer only sees log *files* (text), both for the failure log from
// "production" and for each experiment run, mirroring the paper's toolchain
// (its parser is a separate Scala component with per-system format configs,
// §7). Lines are parsed into structured entries and sanitized so that
// timestamps and other volatile values do not make every line unique.

#ifndef ANDURIL_SRC_LOGDIFF_PARSER_H_
#define ANDURIL_SRC_LOGDIFF_PARSER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace anduril::logdiff {

struct ParsedLine {
  int64_t index = 0;  // global position in the file (log clock)
  std::string thread;
  std::string level;
  std::string logger;
  std::string message;
  // "LEVEL|logger|sanitized(message)" — the observable identity key.
  std::string key;
};

struct ParsedLog {
  std::vector<ParsedLine> lines;
};

// Format configuration (the paper needed one config for Kafka and one for
// the other four systems; non-standard formats supply their own).
struct LogFormat {
  // Number of whitespace-separated timestamp tokens before "[thread]".
  int timestamp_tokens = 1;
  // Separator between the logger and the message.
  std::string message_separator = " - ";
};

// Replaces every digit run with '#'. Timestamps are already stripped by the
// parser; this removes counters, sizes, ports, ids.
std::string Sanitize(const std::string& message);

// Parses a log file body. Unparseable lines are skipped (production logs
// contain stack-trace continuation lines etc.).
ParsedLog ParseLogFile(const std::string& text, const LogFormat& format = LogFormat());

}  // namespace anduril::logdiff

#endif  // ANDURIL_SRC_LOGDIFF_PARSER_H_
