// Myers O(ND) difference algorithm (Myers 1986), the diff the paper applies
// to per-thread sanitized log sequences (§5.1.1). Operates on sequences of
// interned symbols; returns the matched (LCS) index pairs, from which both
// "failure-only" entries and the normal↔failure alignment are derived.

#ifndef ANDURIL_SRC_LOGDIFF_MYERS_H_
#define ANDURIL_SRC_LOGDIFF_MYERS_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace anduril::logdiff {

// Matched index pairs (i in `a`, j in `b`), strictly increasing in both
// components; the pairs form a longest common subsequence of `a` and `b`.
std::vector<std::pair<int32_t, int32_t>> MyersDiff(const std::vector<int32_t>& a,
                                                   const std::vector<int32_t>& b);

}  // namespace anduril::logdiff

#endif  // ANDURIL_SRC_LOGDIFF_MYERS_H_
