#include "src/logdiff/compare.h"

#include <algorithm>
#include <map>

#include "src/logdiff/myers.h"
#include "src/util/check.h"

namespace anduril::logdiff {

namespace {

// Reduces match pairs (sorted by base index) to a monotone subsequence by
// taking the longest strictly-increasing subsequence of target indices.
// Per-thread diffs are monotone individually, but interleaved threads can
// cross globally; the LIS keeps the dominant consistent ordering.
std::vector<std::pair<int64_t, int64_t>> MonotoneMatches(
    std::vector<std::pair<int64_t, int64_t>> pairs) {
  std::sort(pairs.begin(), pairs.end());
  std::vector<int64_t> tails;                 // tails[len-1] = smallest tail target idx
  std::vector<int32_t> tail_index;            // index into pairs for tails
  std::vector<int32_t> prev(pairs.size(), -1);
  for (size_t i = 0; i < pairs.size(); ++i) {
    int64_t value = pairs[i].second;
    auto it = std::lower_bound(tails.begin(), tails.end(), value);
    size_t len = static_cast<size_t>(it - tails.begin());
    if (len > 0) {
      prev[i] = tail_index[len - 1];
    }
    if (it == tails.end()) {
      tails.push_back(value);
      tail_index.push_back(static_cast<int32_t>(i));
    } else {
      *it = value;
      tail_index[len] = static_cast<int32_t>(i);
    }
  }
  std::vector<std::pair<int64_t, int64_t>> result;
  if (!tails.empty()) {
    int32_t index = tail_index.back();
    while (index >= 0) {
      result.push_back(pairs[static_cast<size_t>(index)]);
      index = prev[index];
    }
    std::reverse(result.begin(), result.end());
  }
  return result;
}

}  // namespace

LogComparison CompareLogs(const ParsedLog& base, const ParsedLog& target) {
  // Group line indices by thread. std::map gives deterministic thread order.
  std::map<std::string, std::vector<int64_t>> base_threads;
  std::map<std::string, std::vector<int64_t>> target_threads;
  for (const ParsedLine& line : base.lines) {
    base_threads[line.thread].push_back(line.index);
  }
  for (const ParsedLine& line : target.lines) {
    target_threads[line.thread].push_back(line.index);
  }

  // Intern sanitized keys so the diff runs over int sequences.
  std::unordered_map<std::string, int32_t> intern;
  auto intern_key = [&](const std::string& key) {
    auto [it, inserted] = intern.emplace(key, static_cast<int32_t>(intern.size()));
    return it->second;
  };

  LogComparison result;
  std::unordered_set<std::string> seen_keys;
  auto add_target_only = [&](const ParsedLine& line) {
    if (seen_keys.insert(line.key).second) {
      result.target_only_keys.push_back(line.key);
    }
  };

  std::vector<std::pair<int64_t, int64_t>> all_matches;
  for (const auto& [thread, target_indices] : target_threads) {
    auto base_it = base_threads.find(thread);
    if (base_it == base_threads.end()) {
      // Thread absent from the base log: every message is target-only.
      for (int64_t idx : target_indices) {
        add_target_only(target.lines[static_cast<size_t>(idx)]);
      }
      continue;
    }
    const std::vector<int64_t>& base_indices = base_it->second;
    std::vector<int32_t> base_seq;
    std::unordered_map<std::string, int64_t> base_counts;
    base_seq.reserve(base_indices.size());
    for (int64_t idx : base_indices) {
      const ParsedLine& line = base.lines[static_cast<size_t>(idx)];
      base_seq.push_back(intern_key(line.key));
      ++base_counts[line.key];
    }
    std::vector<int32_t> target_seq;
    std::unordered_map<std::string, int64_t> target_counts;
    target_seq.reserve(target_indices.size());
    for (int64_t idx : target_indices) {
      const ParsedLine& line = target.lines[static_cast<size_t>(idx)];
      target_seq.push_back(intern_key(line.key));
      ++target_counts[line.key];
    }
    auto matches = MyersDiff(base_seq, target_seq);
    for (const auto& [bi, ti] : matches) {
      all_matches.emplace_back(base_indices[static_cast<size_t>(bi)],
                               target_indices[static_cast<size_t>(ti)]);
    }
    // A key is target-only when the failure thread emits it more often than
    // the normal thread does (absent counts as zero). Counting — rather than
    // flagging unmatched diff instances — means a delay fault that merely
    // reorders deliveries within a thread produces no phantom observables,
    // while duplicated deliveries and genuinely new templates still do.
    for (int64_t idx : target_indices) {
      const ParsedLine& line = target.lines[static_cast<size_t>(idx)];
      auto count_it = base_counts.find(line.key);
      int64_t base_count = count_it == base_counts.end() ? 0 : count_it->second;
      if (target_counts[line.key] > base_count) {
        add_target_only(line);
      }
    }
  }

  result.matches = MonotoneMatches(std::move(all_matches));
  return result;
}

TimelineAlignment::TimelineAlignment(std::vector<std::pair<int64_t, int64_t>> matches,
                                     int64_t base_size, int64_t target_size) {
  anchors_.emplace_back(-1, -1);
  for (auto& match : matches) {
    ANDURIL_CHECK_GT(match.first, anchors_.back().first);
    ANDURIL_CHECK_GT(match.second, anchors_.back().second);
    anchors_.push_back(match);
  }
  anchors_.emplace_back(base_size, target_size);
}

int64_t TimelineAlignment::MapPosition(int64_t base_pos) const {
  // Find the finest interval [lo, hi) containing base_pos.
  auto it = std::upper_bound(
      anchors_.begin(), anchors_.end(), base_pos,
      [](int64_t pos, const std::pair<int64_t, int64_t>& anchor) { return pos < anchor.first; });
  ANDURIL_CHECK(it != anchors_.begin());
  const auto& hi = (it == anchors_.end()) ? anchors_.back() : *it;
  const auto& lo = *(it - 1);
  if (base_pos == lo.first) {
    return lo.second;
  }
  int64_t base_span = hi.first - lo.first;
  int64_t target_span = hi.second - lo.second;
  if (base_span <= 0) {
    return lo.second;
  }
  return lo.second + (base_pos - lo.first) * target_span / base_span;
}

}  // namespace anduril::logdiff
