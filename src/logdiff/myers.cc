#include "src/logdiff/myers.h"

#include "src/util/check.h"

namespace anduril::logdiff {
namespace {

// Linear-space Myers (divide and conquer on the middle snake), following
// section 4b of Myers' paper. This keeps memory bounded even when two run
// logs diverge completely, which happens when an injected fault takes a
// system down early.
class MyersSolver {
 public:
  MyersSolver(const std::vector<int32_t>& a, const std::vector<int32_t>& b) : a_(a), b_(b) {}

  std::vector<std::pair<int32_t, int32_t>> Solve() {
    int n = static_cast<int>(a_.size());
    int m = static_cast<int>(b_.size());
    vf_.assign(static_cast<size_t>(2 * (n + m) + 3), 0);
    vb_.assign(static_cast<size_t>(2 * (n + m) + 3), 0);
    offset_ = n + m + 1;
    Diff(0, n, 0, m);
    return std::move(out_);
  }

 private:
  struct Snake {
    int d = 0;       // edit distance of the subproblem
    int x = 0, y = 0;  // snake start (local coords)
    int u = 0, v = 0;  // snake end
  };

  void Diff(int a0, int n, int b0, int m) {
    // Strip the common prefix.
    while (n > 0 && m > 0 && a_[static_cast<size_t>(a0)] == b_[static_cast<size_t>(b0)]) {
      out_.emplace_back(a0, b0);
      ++a0;
      ++b0;
      --n;
      --m;
    }
    // Count the common suffix (emitted after the middle).
    int suffix = 0;
    while (suffix < n && suffix < m &&
           a_[static_cast<size_t>(a0 + n - 1 - suffix)] ==
               b_[static_cast<size_t>(b0 + m - 1 - suffix)]) {
      ++suffix;
    }
    n -= suffix;
    m -= suffix;

    if (n > 0 && m > 0) {
      Snake snake = MiddleSnake(a0, n, b0, m);
      if (snake.d > 1) {
        Diff(a0, snake.x, b0, snake.y);
        for (int i = snake.x; i < snake.u; ++i) {
          out_.emplace_back(a0 + i, b0 + snake.y + (i - snake.x));
        }
        Diff(a0 + snake.u, n - snake.u, b0 + snake.v, m - snake.v);
      } else {
        // Edit distance <= 1: greedy walk matches everything it can.
        int i = 0;
        int j = 0;
        while (i < n && j < m) {
          if (a_[static_cast<size_t>(a0 + i)] == b_[static_cast<size_t>(b0 + j)]) {
            out_.emplace_back(a0 + i, b0 + j);
            ++i;
            ++j;
          } else if (n > m) {
            ++i;
          } else {
            ++j;
          }
        }
      }
    }

    for (int i = 0; i < suffix; ++i) {
      out_.emplace_back(a0 + n + i, b0 + m + i);
    }
  }

  Snake MiddleSnake(int a0, int n, int b0, int m) {
    const int delta = n - m;
    const bool odd = (delta & 1) != 0;
    const int max_d = (n + m + 1) / 2;
    vf_[static_cast<size_t>(offset_ + 1)] = 0;
    vb_[static_cast<size_t>(offset_ + 1)] = 0;
    for (int d = 0; d <= max_d; ++d) {
      for (int k = -d; k <= d; k += 2) {
        int x;
        if (k == -d || (k != d && vf_[static_cast<size_t>(offset_ + k - 1)] <
                                      vf_[static_cast<size_t>(offset_ + k + 1)])) {
          x = vf_[static_cast<size_t>(offset_ + k + 1)];
        } else {
          x = vf_[static_cast<size_t>(offset_ + k - 1)] + 1;
        }
        int y = x - k;
        const int x0 = x;
        const int y0 = y;
        while (x < n && y < m &&
               a_[static_cast<size_t>(a0 + x)] == b_[static_cast<size_t>(b0 + y)]) {
          ++x;
          ++y;
        }
        vf_[static_cast<size_t>(offset_ + k)] = x;
        if (odd && k - delta >= -(d - 1) && k - delta <= d - 1) {
          int xb = n - vb_[static_cast<size_t>(offset_ + (delta - k))];
          if (x >= xb) {
            return Snake{2 * d - 1, x0, y0, x, y};
          }
        }
      }
      for (int k = -d; k <= d; k += 2) {
        int x;
        if (k == -d || (k != d && vb_[static_cast<size_t>(offset_ + k - 1)] <
                                      vb_[static_cast<size_t>(offset_ + k + 1)])) {
          x = vb_[static_cast<size_t>(offset_ + k + 1)];
        } else {
          x = vb_[static_cast<size_t>(offset_ + k - 1)] + 1;
        }
        int y = x - k;
        const int x0 = x;
        const int y0 = y;
        while (x < n && y < m &&
               a_[static_cast<size_t>(a0 + n - 1 - x)] ==
                   b_[static_cast<size_t>(b0 + m - 1 - y)]) {
          ++x;
          ++y;
        }
        vb_[static_cast<size_t>(offset_ + k)] = x;
        if (!odd && delta - k >= -d && delta - k <= d) {
          int xf = vf_[static_cast<size_t>(offset_ + (delta - k))];
          if (xf >= n - x) {
            return Snake{2 * d, n - x, m - y, n - x0, m - y0};
          }
        }
      }
    }
    ANDURIL_UNREACHABLE() << "middle snake not found";
  }

  const std::vector<int32_t>& a_;
  const std::vector<int32_t>& b_;
  std::vector<int> vf_;
  std::vector<int> vb_;
  int offset_ = 0;
  std::vector<std::pair<int32_t, int32_t>> out_;
};

}  // namespace

std::vector<std::pair<int32_t, int32_t>> MyersDiff(const std::vector<int32_t>& a,
                                                   const std::vector<int32_t>& b) {
  return MyersSolver(a, b).Solve();
}

}  // namespace anduril::logdiff
