// Per-thread log comparison (§5.1.1) and normal→failure timeline alignment
// (§5.2.3).
//
// CompareLogs implements the paper's relevant-observable extraction: group
// both logs by thread name, sanitize entries, run Myers diff per thread, and
// report every message key whose per-thread multiplicity in the failure log
// exceeds its multiplicity in the normal log — new templates, extra
// repetitions of known templates, and all messages of threads absent from
// the normal log. Reordering alone never yields a key. It also returns the
// matched entry pairs, which AlignTimelines turns into a monotone piecewise-
// linear mapping used to scale fault-instance positions from the normal-run
// timeline onto the failure-log timeline.

#ifndef ANDURIL_SRC_LOGDIFF_COMPARE_H_
#define ANDURIL_SRC_LOGDIFF_COMPARE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/logdiff/parser.h"

namespace anduril::logdiff {

struct LogComparison {
  // Observable keys whose per-thread count in `target` (failure log) exceeds
  // their count in `base` (normal/run log, absent = 0), deduplicated, in
  // order of first appearance.
  std::vector<std::string> target_only_keys;
  // Matched entry pairs (base global index, target global index) from the
  // per-thread diffs, merged and reduced to a globally monotone alignment
  // (longest increasing subsequence on target indices).
  std::vector<std::pair<int64_t, int64_t>> matches;
};

// Compares `base` against `target`, i.e. answers "what does `target` contain
// that `base` does not". For observable extraction, base = normal log and
// target = failure log.
LogComparison CompareLogs(const ParsedLog& base, const ParsedLog& target);

// Piecewise-linear position mapping built from matched pairs.
class TimelineAlignment {
 public:
  // `matches` must be monotone (as produced by CompareLogs). `base_size` /
  // `target_size` are the log lengths, used for the boundary intervals.
  TimelineAlignment(std::vector<std::pair<int64_t, int64_t>> matches, int64_t base_size,
                    int64_t target_size);

  // Maps a base-log position (log clock) to the estimated target-log
  // position by scaling within the finest enclosing matched interval.
  int64_t MapPosition(int64_t base_pos) const;

 private:
  std::vector<std::pair<int64_t, int64_t>> anchors_;  // includes (0,0) & (end,end)
};

}  // namespace anduril::logdiff

#endif  // ANDURIL_SRC_LOGDIFF_COMPARE_H_
