#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>

#include "src/util/strings.h"

namespace anduril::obs {

int HistogramBucketOf(int64_t value) {
  if (value <= 0) {
    return 0;
  }
  return std::bit_width(static_cast<uint64_t>(value));
}

void MetricsRegistry::Add(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::Set(const std::string& name, int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::Observe(const std::string& name, int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  Histogram& histogram = histograms_[name];
  ++histogram.count;
  histogram.sum += value;
  ++histogram.buckets[static_cast<size_t>(HistogramBucketOf(value))];
}

int64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

int64_t MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

MetricsSnapshot::Histogram MetricsRegistry::histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot::Histogram out;
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    return out;
  }
  out.count = it->second.count;
  out.sum = it->second.sum;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    if (it->second.buckets[static_cast<size_t>(b)] != 0) {
      out.buckets.emplace_back(b, it->second.buckets[static_cast<size_t>(b)]);
    }
  }
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, value] : counters_) {
    snapshot.counters.emplace_back(name, value);
  }
  for (const auto& [name, value] : gauges_) {
    snapshot.gauges.emplace_back(name, value);
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::Histogram out;
    out.count = histogram.count;
    out.sum = histogram.sum;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      if (histogram.buckets[static_cast<size_t>(b)] != 0) {
        out.buckets.emplace_back(b, histogram.buckets[static_cast<size_t>(b)]);
      }
    }
    snapshot.histograms.emplace_back(name, std::move(out));
  }
  return snapshot;
}

void MetricsRegistry::Restore(const MetricsSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  for (const auto& [name, value] : snapshot.counters) {
    counters_[name] = value;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    gauges_[name] = value;
  }
  for (const auto& [name, in] : snapshot.histograms) {
    Histogram histogram;
    histogram.count = in.count;
    histogram.sum = in.sum;
    for (const auto& [bucket, count] : in.buckets) {
      if (bucket >= 0 && bucket < kHistogramBuckets) {
        histogram.buckets[static_cast<size_t>(bucket)] = count;
      }
    }
    histograms_[name] = histogram;
  }
}

void MetricsRegistry::Merge(const MetricsSnapshot& other) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, value] : other.counters) {
    counters_[name] += value;
  }
  for (const auto& [name, value] : other.gauges) {
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      gauges_[name] = value;
    } else {
      it->second = std::max(it->second, value);
    }
  }
  for (const auto& [name, in] : other.histograms) {
    Histogram& histogram = histograms_[name];
    histogram.count += in.count;
    histogram.sum += in.sum;
    for (const auto& [bucket, count] : in.buckets) {
      if (bucket >= 0 && bucket < kHistogramBuckets) {
        histogram.buckets[static_cast<size_t>(bucket)] += count;
      }
    }
  }
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

JsonValue MetricsSnapshotToJson(const MetricsSnapshot& snapshot) {
  JsonValue root = JsonValue::Object();
  JsonValue counters = JsonValue::Object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.Set(name, JsonValue::Int(value));
  }
  root.Set("counters", std::move(counters));
  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.Set(name, JsonValue::Int(value));
  }
  root.Set("gauges", std::move(gauges));
  JsonValue histograms = JsonValue::Object();
  for (const auto& [name, histogram] : snapshot.histograms) {
    JsonValue entry = JsonValue::Object();
    entry.Set("count", JsonValue::Int(histogram.count));
    entry.Set("sum", JsonValue::Int(histogram.sum));
    JsonValue buckets = JsonValue::Object();
    for (const auto& [bucket, count] : histogram.buckets) {
      buckets.Set(std::to_string(bucket), JsonValue::Int(count));
    }
    entry.Set("buckets", std::move(buckets));
    histograms.Set(name, std::move(entry));
  }
  root.Set("histograms", std::move(histograms));
  return root;
}

bool MetricsSnapshotFromJson(const JsonValue& value, MetricsSnapshot* out, std::string* error) {
  if (value.type() != JsonValue::Type::kObject) {
    *error = "metrics snapshot is not a JSON object";
    return false;
  }
  out->counters.clear();
  out->gauges.clear();
  out->histograms.clear();
  if (const JsonValue* counters = value.Find("counters"); counters != nullptr) {
    if (counters->type() != JsonValue::Type::kObject) {
      *error = "metrics \"counters\" is not an object";
      return false;
    }
    for (const auto& [name, entry] : counters->members()) {
      out->counters.emplace_back(name, entry.as_int());
    }
  }
  if (const JsonValue* gauges = value.Find("gauges"); gauges != nullptr) {
    if (gauges->type() != JsonValue::Type::kObject) {
      *error = "metrics \"gauges\" is not an object";
      return false;
    }
    for (const auto& [name, entry] : gauges->members()) {
      out->gauges.emplace_back(name, entry.as_int());
    }
  }
  if (const JsonValue* histograms = value.Find("histograms"); histograms != nullptr) {
    if (histograms->type() != JsonValue::Type::kObject) {
      *error = "metrics \"histograms\" is not an object";
      return false;
    }
    for (const auto& [name, entry] : histograms->members()) {
      if (entry.type() != JsonValue::Type::kObject) {
        *error = "metrics histogram \"" + name + "\" is not an object";
        return false;
      }
      MetricsSnapshot::Histogram histogram;
      histogram.count = entry.Find("count") ? entry.Find("count")->as_int() : 0;
      histogram.sum = entry.Find("sum") ? entry.Find("sum")->as_int() : 0;
      if (const JsonValue* buckets = entry.Find("buckets"); buckets != nullptr) {
        for (const auto& [bucket, count] : buckets->members()) {
          histogram.buckets.emplace_back(std::atoi(bucket.c_str()), count.as_int());
        }
      }
      out->histograms.emplace_back(name, std::move(histogram));
    }
  }
  error->clear();
  return true;
}

std::string MetricsRegistry::DumpJson() const {
  MetricsSnapshot snapshot = Snapshot();
  JsonValue body = MetricsSnapshotToJson(snapshot);
  JsonValue root = JsonValue::Object();
  root.Set("anduril_metrics", JsonValue::Int(kMetricsFormatVersion));
  for (auto& [key, value] : body.members()) {
    root.Set(key, value);
  }
  return root.Dump();
}

bool ParseMetricsJson(const std::string& text, MetricsSnapshot* out, std::string* error) {
  std::string parse_error;
  JsonValue root = JsonValue::Parse(text, &parse_error);
  if (!parse_error.empty()) {
    *error = "metrics parse error: " + parse_error;
    return false;
  }
  if (root.type() != JsonValue::Type::kObject) {
    *error = "metrics file is not a JSON object";
    return false;
  }
  const JsonValue* version = root.Find("anduril_metrics");
  if (version == nullptr) {
    *error = "metrics file has no anduril_metrics version field";
    return false;
  }
  if (version->as_int() != kMetricsFormatVersion) {
    *error = StrFormat("unsupported metrics version %lld (this build reads only version %d)",
                       static_cast<long long>(version->as_int()), kMetricsFormatVersion);
    return false;
  }
  return MetricsSnapshotFromJson(root, out, error);
}

}  // namespace anduril::obs
