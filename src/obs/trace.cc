#include "src/obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <tuple>
#include <utility>

#include "src/util/json.h"
#include "src/util/strings.h"

namespace anduril::obs {
namespace {

void AppendJsonString(std::string* out, const std::string& text) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendArgs(std::string* out, const std::vector<TraceArg>& args) {
  out->append(",\"args\":{");
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) {
      out->push_back(',');
    }
    AppendJsonString(out, args[i].key);
    out->push_back(':');
    out->append(args[i].value);
  }
  out->push_back('}');
}

std::string RenderedArgs(const TraceEvent& event) {
  std::string out;
  AppendArgs(&out, event.args);
  return out;
}

// Total deterministic order: start time, then lane, then enclosing spans
// before enclosed ones (longer duration first), then names.
bool EventOrder(const TraceEvent& a, const TraceEvent& b) {
  return std::make_tuple(a.ts, a.track, -a.dur, a.kind, a.category, a.name, RenderedArgs(a)) <
         std::make_tuple(b.ts, b.track, -b.dur, b.kind, b.category, b.name, RenderedArgs(b));
}

void AppendEventBody(std::string* out, const TraceEvent& event, bool include_wall) {
  out->append("\"ph\":");
  out->append(event.kind == TraceEvent::Kind::kSpan ? "\"X\"" : "\"i\"");
  out->append(",\"cat\":");
  AppendJsonString(out, event.category);
  out->append(",\"name\":");
  AppendJsonString(out, event.name);
  out->append(",\"ts\":");
  out->append(std::to_string(event.ts));
  if (event.kind == TraceEvent::Kind::kSpan) {
    out->append(",\"dur\":");
    out->append(std::to_string(event.dur));
  }
  if (include_wall && event.wall_nanos > 0) {
    out->append(",\"wall_nanos\":");
    out->append(std::to_string(event.wall_nanos));
  }
}

}  // namespace

TraceArg ArgStr(std::string key, const std::string& value) {
  std::string rendered;
  AppendJsonString(&rendered, value);
  return TraceArg{std::move(key), std::move(rendered)};
}

TraceArg ArgInt(std::string key, int64_t value) {
  return TraceArg{std::move(key), std::to_string(value)};
}

TraceArg ArgUint(std::string key, uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return TraceArg{std::move(key), buf};
}

TraceArg ArgBool(std::string key, bool value) {
  return TraceArg{std::move(key), value ? "true" : "false"};
}

void Tracer::Span(std::string category, std::string name, int64_t ts, int64_t dur,
                  int64_t track, std::vector<TraceArg> args, int64_t wall_nanos) {
  TraceEvent event;
  event.kind = TraceEvent::Kind::kSpan;
  event.category = std::move(category);
  event.name = std::move(name);
  event.ts = ts;
  event.dur = dur;
  event.track = track;
  event.wall_nanos = wall_nanos;
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void Tracer::Instant(std::string category, std::string name, int64_t ts, int64_t track,
                     std::vector<TraceArg> args) {
  TraceEvent event;
  event.kind = TraceEvent::Kind::kInstant;
  event.category = std::move(category);
  event.name = std::move(name);
  event.ts = ts;
  event.track = track;
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
  }
  std::stable_sort(events.begin(), events.end(), EventOrder);
  return events;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::string Tracer::DumpChromeTrace(bool include_wall) const {
  std::vector<TraceEvent> events = Events();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    out.push_back('{');
    AppendEventBody(&out, event, include_wall);
    if (event.kind == TraceEvent::Kind::kInstant) {
      out.append(",\"s\":\"t\"");
    }
    out.append(",\"pid\":0,\"tid\":");
    out.append(std::to_string(event.track));
    AppendArgs(&out, event.args);
    out.push_back('}');
    if (i + 1 < events.size()) {
      out.push_back(',');
    }
    out.push_back('\n');
  }
  out.append("]}\n");
  return out;
}

std::string Tracer::DumpJsonl(bool include_wall) const {
  std::vector<TraceEvent> events = Events();
  std::string out = StrFormat("{\"anduril_trace\":%d,\"time_unit\":\"logical\"}\n",
                              kTraceFormatVersion);
  for (const TraceEvent& event : events) {
    out.push_back('{');
    AppendEventBody(&out, event, include_wall);
    out.append(",\"track\":");
    out.append(std::to_string(event.track));
    AppendArgs(&out, event.args);
    out.append("}\n");
  }
  return out;
}

bool Tracer::ParseJsonl(const std::string& text, std::vector<TraceEvent>* out,
                        std::string* error) {
  out->clear();
  size_t pos = 0;
  size_t line_number = 0;
  bool saw_header = false;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    bool truncated = end == std::string::npos;
    std::string line = text.substr(pos, truncated ? std::string::npos : end - pos);
    pos = truncated ? text.size() : end + 1;
    ++line_number;
    if (line.empty()) {
      continue;
    }
    std::string parse_error;
    JsonValue value = JsonValue::Parse(line, &parse_error);
    if (!parse_error.empty() || value.type() != JsonValue::Type::kObject) {
      *error = StrFormat("trace line %zu is not a JSON object%s%s", line_number,
                         truncated ? " (file truncated mid-line?)" : "",
                         parse_error.empty() ? "" : (": " + parse_error).c_str());
      return false;
    }
    if (!saw_header) {
      const JsonValue* version = value.Find("anduril_trace");
      if (version == nullptr) {
        *error = "trace file has no anduril_trace version header";
        return false;
      }
      if (version->as_int() != kTraceFormatVersion) {
        *error = StrFormat("unsupported trace version %lld (this build reads only version %d)",
                           static_cast<long long>(version->as_int()), kTraceFormatVersion);
        return false;
      }
      saw_header = true;
      continue;
    }
    const JsonValue* ph = value.Find("ph");
    if (ph == nullptr || ph->type() != JsonValue::Type::kString) {
      *error = StrFormat("trace line %zu has no \"ph\" field", line_number);
      return false;
    }
    TraceEvent event;
    if (ph->as_string() == "X") {
      event.kind = TraceEvent::Kind::kSpan;
    } else if (ph->as_string() == "i") {
      event.kind = TraceEvent::Kind::kInstant;
    } else {
      *error = StrFormat("trace line %zu has unknown phase \"%s\"", line_number,
                         ph->as_string().c_str());
      return false;
    }
    event.category = value.Find("cat") ? value.Find("cat")->as_string() : "";
    event.name = value.Find("name") ? value.Find("name")->as_string() : "";
    event.ts = value.Find("ts") ? value.Find("ts")->as_int() : 0;
    event.dur = value.Find("dur") ? value.Find("dur")->as_int() : 0;
    event.track = value.Find("track") ? value.Find("track")->as_int() : 0;
    event.wall_nanos = value.Find("wall_nanos") ? value.Find("wall_nanos")->as_int() : 0;
    if (const JsonValue* args = value.Find("args"); args != nullptr) {
      for (const auto& [key, arg] : args->members()) {
        std::string rendered;
        switch (arg.type()) {
          case JsonValue::Type::kString:
            AppendJsonString(&rendered, arg.as_string());
            break;
          case JsonValue::Type::kBool:
            rendered = arg.as_bool() ? "true" : "false";
            break;
          default:
            rendered = std::to_string(arg.as_int());
        }
        event.args.push_back(TraceArg{key, std::move(rendered)});
      }
    }
    out->push_back(std::move(event));
  }
  if (!saw_header) {
    *error = "trace file is empty (no version header)";
    return false;
  }
  error->clear();
  return true;
}

}  // namespace anduril::obs
