// Structured tracing for the exploration pipeline: hierarchical spans
// (explore > round > candidate > run) on a *logical* timeline.
//
// Timestamps are logical, not wall clock: the explorer lays each round out
// on a fixed grid (kRoundStride logical units per round, kItemStride per
// plan item, kPhaseStride per iterative phase), so a fixed-seed search
// emits the byte-identical trace at any thread count — the property the
// golden-trace regression test locks down. Spans may additionally carry a
// wall-clock duration (wall_nanos) for profiling; it is excluded from
// deterministic dumps by default.
//
// Exports:
//   DumpChromeTrace() — Chrome trace_event JSON ("X" complete events /
//     "i" instants; ts/dur in the logical unit, track as tid). Opens in
//     Perfetto (ui.perfetto.dev) and chrome://tracing.
//   DumpJsonl()       — compact one-event-per-line JSONL with a version
//     header line, for diffing and golden files.
//
// Thread safety: Span/Instant take an internal mutex; any thread may
// record. Dumps sort events by (ts, track, dur desc, ...) so the file
// never depends on arrival order.

#ifndef ANDURIL_SRC_OBS_TRACE_H_
#define ANDURIL_SRC_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace anduril::obs {

// Logical-timeline layout used by the explorer (documented in
// docs/observability.md): round r of phase p occupies
// [p*kPhaseStride + r*kRoundStride, +kRoundStride); plan item i of that
// round occupies [round_base + i*kItemStride, +kItemStride) on track i+1.
inline constexpr int64_t kRoundStride = 1'000'000;
inline constexpr int64_t kItemStride = 1'000;
inline constexpr int64_t kPhaseStride = 4'000'000'000;  // > max_rounds * kRoundStride

inline constexpr int kTraceFormatVersion = 1;

// One span/instant argument; `value` is a pre-rendered JSON token (use the
// Arg* helpers), so dumping is pure concatenation.
struct TraceArg {
  std::string key;
  std::string value;

  friend bool operator==(const TraceArg&, const TraceArg&) = default;
};

TraceArg ArgStr(std::string key, const std::string& value);
TraceArg ArgInt(std::string key, int64_t value);
TraceArg ArgUint(std::string key, uint64_t value);
TraceArg ArgBool(std::string key, bool value);

struct TraceEvent {
  enum class Kind : uint8_t { kSpan, kInstant };

  Kind kind = Kind::kSpan;
  std::string category;
  std::string name;
  int64_t ts = 0;     // logical start
  int64_t dur = 0;    // logical duration (spans only)
  int64_t track = 0;  // deterministic lane; Chrome tid
  // Optional wall-clock duration; excluded from dumps unless requested.
  int64_t wall_nanos = 0;
  std::vector<TraceArg> args;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

class Tracer {
 public:
  void Span(std::string category, std::string name, int64_t ts, int64_t dur, int64_t track,
            std::vector<TraceArg> args = {}, int64_t wall_nanos = 0);
  void Instant(std::string category, std::string name, int64_t ts, int64_t track,
               std::vector<TraceArg> args = {});

  size_t event_count() const;
  // Deterministically ordered copy of the recorded events.
  std::vector<TraceEvent> Events() const;
  void Clear();

  // Chrome trace_event JSON: {"displayTimeUnit":"ms","traceEvents":[...]}.
  std::string DumpChromeTrace(bool include_wall = false) const;
  // Compact JSONL: a {"anduril_trace":1,...} header line, then one event
  // per line in deterministic order.
  std::string DumpJsonl(bool include_wall = false) const;

  // Parses a DumpJsonl() document. Returns false (and fills *error) on a
  // missing/unsupported version header or any malformed line (e.g. a file
  // truncated mid-write). Numeric args are normalized through int64 (JSON
  // has no uint64): an ArgUint above int64 max will not round-trip.
  static bool ParseJsonl(const std::string& text, std::vector<TraceEvent>* out,
                         std::string* error);

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

}  // namespace anduril::obs

#endif  // ANDURIL_SRC_OBS_TRACE_H_
