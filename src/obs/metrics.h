// Metrics registry for the exploration pipeline: counters, gauges, and
// power-of-two-bucket histograms, keyed by dotted names ("explore.rounds",
// "fault.injected.crash", "net.dropped_by_fault", ...).
//
// Determinism contract: every value recorded through this registry is a
// *logical* quantity (round counts, injection tallies, simulated-time
// histograms) — never a wall-clock reading. Counter addition and histogram
// accumulation are commutative, so a fixed-seed exploration produces the
// byte-identical DumpJson() at any thread count regardless of the order in
// which worker threads land their updates. Wall-clock accounting stays in
// ExploreResult / ExperimentRecord where it always lived.
//
// Thread safety: all mutators and readers take an internal mutex; one
// registry may be shared by every concurrent simulation of a round. The
// explorer holds a registry pointer that is null when no sink is attached,
// so the disabled path costs a single pointer test per hook.

#ifndef ANDURIL_SRC_OBS_METRICS_H_
#define ANDURIL_SRC_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/json.h"

namespace anduril::obs {

// Histograms bucket by bit width: bucket b counts values v with
// 2^(b-1) <= v < 2^b (bucket 0 counts v <= 0). 64 buckets cover int64.
inline constexpr int kHistogramBuckets = 65;

int HistogramBucketOf(int64_t value);

// A point-in-time copy of a registry, ordered by name (maps iterate
// sorted), suitable for equality comparison and (de)serialization.
struct MetricsSnapshot {
  struct Histogram {
    int64_t count = 0;
    int64_t sum = 0;
    // (bucket index, count) pairs for the non-empty buckets, ascending.
    std::vector<std::pair<int, int64_t>> buckets;

    friend bool operator==(const Histogram&, const Histogram&) = default;
  };

  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, Histogram>> histograms;

  bool empty() const { return counters.empty() && gauges.empty() && histograms.empty(); }
  friend bool operator==(const MetricsSnapshot&, const MetricsSnapshot&) = default;
};

// Snapshot <-> JSON object (the "counters"/"gauges"/"histograms" body shared
// by DumpJson and the checkpoint's embedded snapshot).
JsonValue MetricsSnapshotToJson(const MetricsSnapshot& snapshot);
bool MetricsSnapshotFromJson(const JsonValue& value, MetricsSnapshot* out, std::string* error);

class MetricsRegistry {
 public:
  // Counter: monotone accumulation. Creates the key on first use.
  void Add(const std::string& name, int64_t delta = 1);
  // Gauge: last write wins. Gauges must only be set from deterministic
  // single-threaded code (the explorer round loop), never from workers.
  void Set(const std::string& name, int64_t value);
  // Histogram observation.
  void Observe(const std::string& name, int64_t value);

  int64_t counter(const std::string& name) const;
  int64_t gauge(const std::string& name) const;
  MetricsSnapshot::Histogram histogram(const std::string& name) const;

  MetricsSnapshot Snapshot() const;
  // Replaces the registry's entire state with `snapshot` (checkpoint
  // resume: the snapshot already accounts for everything this process
  // re-recorded while rebuilding its context).
  void Restore(const MetricsSnapshot& snapshot);
  // Folds `other` in: counters and histograms add elementwise (order
  // independent), gauges take the elementwise max (also order independent).
  void Merge(const MetricsSnapshot& other);
  void Clear();

  // Versioned dump: {"anduril_metrics": 1, "counters": {...}, ...}.
  std::string DumpJson() const;

 private:
  struct Histogram {
    int64_t count = 0;
    int64_t sum = 0;
    std::array<int64_t, kHistogramBuckets> buckets{};
  };

  mutable std::mutex mu_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, int64_t> gauges_;
  std::map<std::string, Histogram> histograms_;
};

inline constexpr int kMetricsFormatVersion = 1;

// Parses a DumpJson() document. Returns false (and fills *error) on
// malformed JSON, a missing "anduril_metrics" field, or an unsupported
// version.
bool ParseMetricsJson(const std::string& text, MetricsSnapshot* out, std::string* error);

}  // namespace anduril::obs

#endif  // ANDURIL_SRC_OBS_METRICS_H_
