// Simulated Cassandra and its two evaluated failures:
//   f21 C*-17663: an interrupted FileStreamTask compromises the shared
//                 channel proxy, failing the whole streaming session
//   f22 C*-6415:  snapshot repair blocks forever when makeSnapshot gets no
//                 response
//
// f22 also carries the paper's "deeper root cause" phenomenon (§8.2,
// appendix Table 6): besides the documented snapshot-creation fault, an
// earlier disk fault while creating the column family also leaves the
// snapshot request unanswered and satisfies the same oracle — a deeper link
// in the causal chain that the original patch (retrying the snapshot RPC)
// would not fix.
//
// Topology: three Cassandra nodes + client, with gossip and compaction noise.

#include "src/systems/common.h"

#include "src/systems/extras.h"

#include "src/util/check.h"

namespace anduril::systems {
namespace {

using ir::Expr;
using ir::LogLevel;
using ir::MethodBuilder;
using ir::Program;

void BuildCassandraBase(Program* p) {
  // --- Gossip noise -----------------------------------------------------------
  {
    MethodBuilder b(p, "cas.gossip_loop");
    b.While(b.LtVar("gossipRound", "gossipRounds"), [&] {
      b.Assign("gossipRound", b.Plus("gossipRound", 1));
      b.TryCatch(
          [&] {
            b.External("cas.gossip.send_syn", {"SocketException"}, /*transient_every_n=*/6);
          },
          {{"SocketException",
            [&] {
              b.LogExc(LogLevel::kWarn, "cassandra.Gossiper", "Gossip round failed, peer busy");
            }}});
      b.Sleep(22);
    });
  }
  // --- Compaction noise ----------------------------------------------------------
  {
    MethodBuilder b(p, "cas.compaction_loop");
    b.While(b.Lt("casCompact", 10), [&] {
      b.Assign("casCompact", b.Plus("casCompact", 1));
      b.TryCatch(
          [&] {
            b.External("cas.compact.merge_sstables", {"IOException"}, /*transient_every_n=*/7);
            b.Log(LogLevel::kDebug, "cassandra.Compaction", "Compacted {} sstables",
                  {b.V("casCompact")});
          },
          {{"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "cassandra.Compaction", "Compaction failed, requeued");
            }}});
      b.Sleep(16);
    });
  }

  // --- Streaming session (f21) ------------------------------------------------
  {
    MethodBuilder b(p, "cas.stream.file_task");
    b.If(b.Eq("channelCorrupt", 1), [&] {
      b.Log(LogLevel::kError, "cassandra.Streaming",
            "Stream channel proxy compromised, session failed");
      b.Assign("sessionFailed", Expr::Const(1));
      b.Return();
    });
    b.TryCatch(
        [&] {
          b.External("cas.stream.write_file", {"InterruptedException", "IOException"});
          b.Assign("filesStreamed", b.Plus("filesStreamed", 1));
          b.Log(LogLevel::kDebug, "cassandra.Streaming", "Streamed file {} over channel",
                {b.V("filesStreamed")});
        },
        {{"InterruptedException",
          [&] {
            // BUG (C*-17663): the interrupt leaves the shared channel in a
            // half-written state that is never reset.
            b.Log(LogLevel::kWarn, "cassandra.Streaming",
                     "File stream task interrupted mid-transfer");
            b.Assign("channelCorrupt", Expr::Const(1));
          }},
         {"IOException",
          [&] {
            b.LogExc(LogLevel::kWarn, "cassandra.Streaming", "Stream write failed, retrying");
          }}});
  }
  {
    MethodBuilder b(p, "cas.stream.session");
    b.Log(LogLevel::kInfo, "cassandra.Streaming", "Starting streaming session, {} files",
          {Expr::Const(6)});
    b.While(b.Lt("filesSubmitted", 6), [&] {
      b.Assign("filesSubmitted", b.Plus("filesSubmitted", 1));
      b.Send("cas.stream.file_task", "cas2",
             ir::SendOpts{.payload = b.V("filesSubmitted"), .handler_thread = "StreamIn"});
      b.Sleep(12);
    });
    b.Sleep(120);
    b.If(
        b.Eq("streamSessionOk", 1),
        [&] { b.Log(LogLevel::kInfo, "cassandra.Streaming", "Streaming session complete"); },
        [&] { b.Nop(); });
  }
  {
    MethodBuilder b(p, "cas.stream.verify");
    b.Sleep(350);
    b.If(
        b.Ge("filesStreamed", 6),
        [&] { b.Log(LogLevel::kInfo, "cassandra.Streaming", "All files received"); },
        [&] {
          b.Log(LogLevel::kWarn, "cassandra.Streaming", "Session incomplete, {} files received",
                {b.V("filesStreamed")});
        });
  }

  // --- Snapshot repair (f22) -----------------------------------------------------
  {
    MethodBuilder b(p, "cas.repair.make_column_family");
    b.TryCatch(
        [&] {
          b.External("cas.cf.create", {"IOException"});
          b.Assign("cfExists", Expr::Const(1));
          b.Log(LogLevel::kInfo, "cassandra.Repair", "Column family ready for repair");
        },
        {{"IOException",
          [&] {
            // The deeper root cause (§8.2): the creation failure is logged
            // but repair proceeds as if the column family existed.
            b.Log(LogLevel::kWarn, "cassandra.Repair", "Column family creation failed");
          }}});
  }
  {
    MethodBuilder b(p, "cas.repair.handle_snapshot");
    b.If(b.Eq("cfExists", 0), [&] {
      b.Log(LogLevel::kWarn, "cassandra.Snapshot", "No such column family, ignoring request");
      b.Return();
    });
    b.TryCatch(
        [&] {
          b.External("cas.snapshot.create", {"IOException"});
          b.Log(LogLevel::kInfo, "cassandra.Snapshot", "Snapshot created for repair");
          b.Send("cas.repair.snapshot_ack", "cas1");
        },
        {{"IOException",
          [&] {
            // BUG (C*-6415): the failure is swallowed; no nack is sent, so
            // the coordinator waits forever.
            b.Log(LogLevel::kWarn, "cassandra.Snapshot", "Snapshot creation failed");
          }}});
  }
  {
    MethodBuilder b(p, "cas.repair.snapshot_ack");
    b.Assign("snapshotAcks", b.Plus("snapshotAcks", 1));
    b.Signal("snapshotAcks");
  }
  {
    MethodBuilder b(p, "cas.repair.coordinate");
    b.Log(LogLevel::kInfo, "cassandra.Repair", "Starting snapshot repair of keyspace");
    b.Invoke("cas.repair.make_column_family");
    b.Send("cas.repair.make_cf_remote", "cas2");
    b.Send("cas.repair.make_cf_remote", "cas3");
    b.Sleep(20);
    b.Send("cas.repair.handle_snapshot", "cas2");
    b.Send("cas.repair.handle_snapshot", "cas3");
    // BUG (C*-6415): no timeout on the snapshot responses.
    b.Await(b.Ge("snapshotAcks", 2));
    b.Log(LogLevel::kInfo, "cassandra.Repair", "Snapshots complete, merkle trees next");
  }
  {
    MethodBuilder b(p, "cas.repair.make_cf_remote");
    b.Invoke("cas.repair.make_column_family");
  }
  {
    MethodBuilder b(p, "cas.repair.watchdog");
    b.Sleep(600);
    b.If(b.Lt("snapshotAcks", 2), [&] {
      b.Log(LogLevel::kError, "cassandra.Repair",
            "Repair session hanged waiting for snapshot responses");
    });
  }

  BuildCassandraExtras(p);
  AddNoisyServices(p, "cas.ipc", 8, 5);
  AddNoisyServices(p, "cas.mutation", 6, 5);
  AddColdModule(p, "cas.cql", 16, 8);
  AddColdModule(p, "cas.hints", 12, 7);
  AddColdModule(p, "cas.auth", 10, 6);
}

interp::ClusterSpec BaseCluster(Program* p, int gossip_rounds) {
  interp::ClusterSpec cluster;
  for (const char* node : {"cas1", "cas2", "cas3", "client"}) {
    cluster.AddNode(node);
  }
  cluster.AddTask("cas1", "GossipStage", p->FindMethod("cas.gossip_loop"), 0);
  cluster.AddTask("cas2", "GossipStage", p->FindMethod("cas.gossip_loop"), 4);
  cluster.AddTask("cas1", "CompactionExecutor", p->FindMethod("cas.compaction_loop"), 8);
  cluster.SetVar("cas1", p->InternVar("gossipRounds"), gossip_rounds);
  cluster.SetVar("cas2", p->InternVar("gossipRounds"), gossip_rounds);
  StartNoisyServices(&cluster, p, "cas.ipc", "cas3", 8, 8);
  StartCassandraExtras(&cluster, p);
  StartNoisyServices(&cluster, p, "cas.mutation", "cas2", 6, 7);
  return cluster;
}

// --- Cases ---------------------------------------------------------------------

void RegisterCa17663(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "ca-17663";
  c.paper_id = "f21";
  c.system = "cassandra";
  c.title = "Interrupted FileStreamTask compromises the shared channel proxy";
  c.injected_fault = "InterruptedException";
  c.root_site = "cas.stream.write_file";
  c.root_exception = "InterruptedException";
  c.root_occurrence = 2;
  c.build = BuildCassandraBase;
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p, 12);
    cluster.AddTask("cas1", "StreamOut", p->FindMethod("cas.stream.session"), 10);
    cluster.AddTask("cas2", "StreamVerify", p->FindMethod("cas.stream.verify"), 0);
    return cluster;
  };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kError, "Stream channel proxy compromised") &&
           run.HasLogContaining(ir::LogLevel::kWarn, "File stream task interrupted");
  };
  cases->push_back(std::move(c));
}

void RegisterCa6415(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "ca-6415";
  c.paper_id = "f22";
  c.system = "cassandra";
  c.title = "Snapshot repair blocks forever without makeSnapshot responses";
  c.injected_fault = "IOException";
  c.root_site = "cas.snapshot.create";
  c.root_exception = "IOException";
  c.root_occurrence = 1;
  c.build = BuildCassandraBase;
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p, 12);
    cluster.AddTask("cas1", "RepairCoordinator", p->FindMethod("cas.repair.coordinate"), 10);
    cluster.AddTask("cas1", "RepairWatchdog", p->FindMethod("cas.repair.watchdog"), 0);
    return cluster;
  };
  c.failure_workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p, 24);  // production noise
    cluster.AddTask("cas1", "RepairCoordinator", p->FindMethod("cas.repair.coordinate"), 10);
    cluster.AddTask("cas1", "RepairWatchdog", p->FindMethod("cas.repair.watchdog"), 0);
    return cluster;
  };
  c.oracle = [](const ir::Program& prog, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kError,
                                "Repair session hanged waiting for snapshot") &&
           run.IsThreadStuckIn(prog, "cas1/RepairCoordinator", "cas.repair.coordinate");
  };
  cases->push_back(std::move(c));
}

}  // namespace

void RegisterCassandraCases(std::vector<FailureCase>* cases) {
  RegisterCa17663(cases);
  RegisterCa6415(cases);
}

}  // namespace anduril::systems
