// HDFS background subsystems: block reports, the replication monitor's
// under-replicated queue, the lease monitor, the trash emptier, and a
// decommission manager. Fault-tolerant with WARN-logged retries.

#include "src/systems/extras.h"

#include "src/ir/builder.h"
#include "src/systems/common.h"

namespace anduril::systems {
namespace {

using ir::Expr;
using ir::LogLevel;
using ir::MethodBuilder;
using ir::Program;

// Full block reports: each datanode periodically reports its replicas; the
// namenode reconciles them against its block map.
void BuildBlockReports(Program* p) {
  {
    MethodBuilder b(p, "hdfs.nn.process_block_report");
    b.TryCatch(
        [&] {
          b.External("hdfs.nn.decode_report", {"IOException"});
          b.External("hdfs.nn.reconcile_blockmap", {"IOException"}, /*transient_every_n=*/13);
          b.Assign("reportsProcessed", b.Plus("reportsProcessed", 1));
          b.Log(LogLevel::kInfo, "hdfs.BlockManager", "Processed block report {}",
                {b.V("reportsProcessed")});
        },
        {{"IOException",
          [&] {
            b.LogExc(LogLevel::kWarn, "hdfs.BlockManager",
                     "Block report processing failed, datanode will resend");
            b.Send("hdfs.dn.resend_report", "dn1");
          }}});
  }
  {
    MethodBuilder b(p, "hdfs.dn.resend_report");
    b.Assign("reportResends", b.Plus("reportResends", 1));
    b.Log(LogLevel::kDebug, "hdfs.datanode", "Queued block report resend {}",
          {b.V("reportResends")});
    b.Sleep(15);
    b.Send("hdfs.nn.process_block_report", "nn");
  }
  {
    MethodBuilder b(p, "hdfs.dn.block_report_loop");
    b.While(ir::Cond::LtVar(b.Var("reportTick"), b.Var("hdfsExtraRounds")), [&] {
      b.Assign("reportTick", b.Plus("reportTick", 1));
      b.TryCatch(
          [&] {
            b.External("hdfs.dn.scan_volumes", {"IOException"}, /*transient_every_n=*/16);
            b.Send("hdfs.nn.process_block_report", "nn");
          },
          {{"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "hdfs.datanode", "Volume scan failed, report skipped");
            }}});
      b.Sleep(29);
    });
  }
}

// Replication monitor: scans the under-replicated queue and schedules
// re-replication work on datanodes.
void BuildReplicationMonitor(Program* p) {
  {
    MethodBuilder b(p, "hdfs.nn.replication_monitor");
    b.While(ir::Cond::LtVar(b.Var("replTick"), b.Var("hdfsExtraRounds")), [&] {
      b.Assign("replTick", b.Plus("replTick", 1));
      b.If(b.Gt("underReplicated", 0), [&] {
        b.TryCatch(
            [&] {
              b.External("hdfs.nn.choose_target", {"IOException"});
              b.Assign("underReplicated", b.Minus("underReplicated", 1));
              b.Send("hdfs.dn.rereplicate", "dn3");
              b.Log(LogLevel::kInfo, "hdfs.BlockManager",
                    "Scheduled re-replication, {} blocks still under-replicated",
                    {b.V("underReplicated")});
            },
            {{"IOException",
              [&] {
                b.LogExc(LogLevel::kWarn, "hdfs.BlockManager",
                         "No target for re-replication, will retry");
              }}});
      });
      // Pipeline failures feed the queue.
      b.If(ir::Cond::GtVar(b.Var("pipelineFailures"), b.Var("replSeen")), [&] {
        b.Assign("replSeen", b.Plus("replSeen", 1));
        b.Assign("underReplicated", b.Plus("underReplicated", 1));
      });
      b.Sleep(21);
    });
  }
  {
    MethodBuilder b(p, "hdfs.dn.rereplicate");
    b.TryCatch(
        [&] {
          b.External("hdfs.dn.copy_replica", {"IOException"}, /*transient_every_n=*/8);
          b.Assign("rereplicated", b.Plus("rereplicated", 1));
        },
        {{"IOException",
          [&] {
            b.LogExc(LogLevel::kWarn, "hdfs.datanode", "Re-replication copy failed");
            b.Send("hdfs.nn.pipeline_failed", "nn");
          }}});
  }
}

// Lease monitor: recovers leases of clients that stopped renewing.
void BuildLeaseMonitor(Program* p) {
  {
    MethodBuilder b(p, "hdfs.nn.lease_monitor");
    b.While(ir::Cond::LtVar(b.Var("leaseTick"), b.Var("hdfsExtraRounds")), [&] {
      b.Assign("leaseTick", b.Plus("leaseTick", 1));
      b.TryCatch(
          [&] {
            b.External("hdfs.nn.check_lease_table", {"IOException"}, /*transient_every_n=*/19);
            b.Log(LogLevel::kDebug, "hdfs.LeaseManager", "Lease scan {} complete",
                  {b.V("leaseTick")});
          },
          {{"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "hdfs.LeaseManager", "Lease scan aborted, rescheduled");
            }}});
      b.Sleep(33);
    });
  }
}

// Trash emptier: deletes expired checkpointed trash directories.
void BuildTrashEmptier(Program* p) {
  {
    MethodBuilder b(p, "hdfs.nn.trash_emptier");
    b.While(ir::Cond::LtVar(b.Var("trashTick"), b.Var("hdfsExtraRounds")), [&] {
      b.Assign("trashTick", b.Plus("trashTick", 1));
      b.TryCatch(
          [&] {
            b.External("hdfs.nn.list_trash", {"IOException"});
            b.External("hdfs.nn.delete_expired", {"IOException"}, /*transient_every_n=*/10);
            b.Assign("trashEmptied", b.Plus("trashEmptied", 1));
          },
          {{"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "hdfs.TrashEmptier", "Trash checkpoint skipped");
            }}});
      b.Sleep(41);
    });
  }
}

// Decommission manager: drains a datanode by re-replicating its blocks; the
// node only transitions to DECOMMISSIONED when nothing is left on it.
void BuildDecommissionManager(Program* p) {
  {
    MethodBuilder b(p, "hdfs.nn.decommission_check");
    b.If(b.Eq("decomRequested", 1), [&] {
      b.If(
          b.Gt("decomBlocksLeft", 0),
          [&] {
            b.TryCatch(
                [&] {
                  b.External("hdfs.nn.drain_block", {"IOException"}, /*transient_every_n=*/7);
                  b.Assign("decomBlocksLeft", b.Minus("decomBlocksLeft", 1));
                  b.Log(LogLevel::kDebug, "hdfs.Decommission", "Drained block, {} left",
                        {b.V("decomBlocksLeft")});
                },
                {{"IOException",
                  [&] {
                    b.LogExc(LogLevel::kWarn, "hdfs.Decommission", "Drain failed, retrying");
                  }}});
          },
          [&] {
            b.Assign("decomRequested", Expr::Const(0));
            b.Log(LogLevel::kInfo, "hdfs.Decommission", "Datanode decommissioned");
          });
    });
  }
  {
    MethodBuilder b(p, "hdfs.nn.decommission_loop");
    b.Assign("decomRequested", Expr::Const(1));
    b.Assign("decomBlocksLeft", Expr::Const(5));
    b.Log(LogLevel::kInfo, "hdfs.Decommission", "Decommissioning datanode, {} blocks to move",
          {b.V("decomBlocksLeft")});
    b.While(ir::Cond::LtVar(b.Var("decomTick"), b.Var("hdfsExtraRounds")), [&] {
      b.Assign("decomTick", b.Plus("decomTick", 1));
      b.Invoke("hdfs.nn.decommission_check");
      b.Sleep(27);
    });
  }
}

}  // namespace

void BuildHdfsExtras(Program* p) {
  BuildBlockReports(p);
  BuildReplicationMonitor(p);
  BuildLeaseMonitor(p);
  BuildTrashEmptier(p);
  BuildDecommissionManager(p);
}

void StartHdfsExtras(interp::ClusterSpec* cluster, ir::Program* p) {
  int rounds = 6 * CurrentWorkloadScale();
  cluster->AddTask("dn1", "BlockReporter", p->FindMethod("hdfs.dn.block_report_loop"), 6);
  cluster->AddTask("nn", "ReplicationMonitor", p->FindMethod("hdfs.nn.replication_monitor"),
                   4);
  cluster->AddTask("nn", "LeaseMonitor", p->FindMethod("hdfs.nn.lease_monitor"), 9);
  cluster->AddTask("nn", "TrashEmptier", p->FindMethod("hdfs.nn.trash_emptier"), 13);
  cluster->AddTask("nn", "DecommissionManager", p->FindMethod("hdfs.nn.decommission_loop"),
                   16);
  for (const char* node : {"nn", "dn1", "dn2", "dn3"}) {
    cluster->SetVar(node, p->InternVar("hdfsExtraRounds"), rounds);
  }
}

}  // namespace anduril::systems
