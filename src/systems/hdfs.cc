// Simulated HDFS and its seven evaluated failures:
//   f5  HD-4233:  rolling backup fails but the namenode keeps serving
//   f6  HD-12248: interrupted image transfer silently skips the image backup
//   f7  HD-12070: failed block recovery leaves files open indefinitely
//   f8  HD-13039: data block creation leaks a socket on exception
//   f9  HD-16332: missing handling of an expired block token causes slow reads
//   f10 HD-14333: disk error during registration keeps datanodes from starting
//   f11 HD-15032: balancer crashes when a namenode is unreachable
//
// Topology: namenode (nn) + backup namenode (bn) + three datanodes + client.
// The base system provides the write pipeline (edits log -> block allocation
// -> datanode pipeline -> acks), heartbeats, checkpointing, block recovery,
// the balancer, and token-checked reads. Transient faults in the pipeline
// and heartbeats are tolerated with WARN logs (production noise).

#include "src/systems/common.h"

#include "src/systems/extras.h"

#include "src/util/check.h"

namespace anduril::systems {
namespace {

using ir::Expr;
using ir::LogLevel;
using ir::MethodBuilder;
using ir::Program;

void BuildHdfsBase(Program* p) {
  // --- Write pipeline ----------------------------------------------------
  {
    MethodBuilder b(p, "hdfs.nn.allocate_block");
    b.TryCatch(
        [&] {
          b.External("hdfs.nn.edits_append", {"IOException"});
          b.External("hdfs.nn.edits_sync", {"IOException"});
          b.Assign("blocksAllocated", b.Plus("blocksAllocated", 1));
          b.Log(LogLevel::kInfo, "hdfs.namenode", "Allocated block {} for client",
                {b.V("blocksAllocated")});
          b.Assign("openFiles", b.Plus("openFiles", 1));
          b.Send("hdfs.dn.write_block", "dn1", ir::SendOpts{.payload = Expr::Payload()});
        },
        {{"IOException",
          [&] {
            b.LogExc(LogLevel::kError, "hdfs.namenode", "Failed to persist edits for block");
          }}});
  }
  {
    MethodBuilder b(p, "hdfs.dn.write_block");
    b.TryCatch(
        [&] {
          b.External("hdfs.dn.recv_packet", {"IOException"}, /*transient_every_n=*/23);
          b.External("hdfs.dn.flush_block", {"IOException"});
          b.Assign("blocksStored", b.Plus("blocksStored", 1));
          b.Log(LogLevel::kDebug, "hdfs.datanode", "Stored block, {} local blocks",
                {b.V("blocksStored")});
          b.Send("hdfs.dn.replicate_block", "dn2", ir::SendOpts{.payload = Expr::Payload()});
        },
        {{"IOException",
          [&] {
            b.LogExc(LogLevel::kWarn, "hdfs.datanode",
                     "Exception receiving block, requesting pipeline recovery");
            b.Send("hdfs.nn.pipeline_failed", "nn");
          }}});
  }
  {
    MethodBuilder b(p, "hdfs.dn.replicate_block");
    b.TryCatch(
        [&] {
          b.External("hdfs.dn.mirror_packet", {"IOException"}, /*transient_every_n=*/31);
          b.Assign("replicas", b.Plus("replicas", 1));
          b.Send("hdfs.nn.block_ack", "nn", ir::SendOpts{.payload = Expr::Payload()});
        },
        {{"IOException",
          [&] {
            b.LogExc(LogLevel::kWarn, "hdfs.datanode", "Mirror write failed, degraded pipeline");
          }}});
  }
  {
    MethodBuilder b(p, "hdfs.nn.block_ack");
    b.Assign("acksReceived", b.Plus("acksReceived", 1));
    b.Assign("openFiles", b.Minus("openFiles", 1));
    b.Signal("acksReceived");
  }
  {
    MethodBuilder b(p, "hdfs.nn.pipeline_failed");
    b.Assign("pipelineFailures", b.Plus("pipelineFailures", 1));
    b.Log(LogLevel::kWarn, "hdfs.namenode", "Pipeline failure reported, {} so far",
          {b.V("pipelineFailures")});
  }

  // --- Heartbeats (noise) --------------------------------------------------
  {
    MethodBuilder b(p, "hdfs.dn.heartbeat_loop");
    b.While(b.Lt("hbRound", 20), [&] {
      b.Assign("hbRound", b.Plus("hbRound", 1));
      b.TryCatch(
          [&] {
            b.External("hdfs.dn.send_heartbeat", {"SocketException"}, /*transient_every_n=*/9);
          },
          {{"SocketException",
            [&] {
              b.LogExc(LogLevel::kWarn, "hdfs.datanode", "Heartbeat to namenode failed");
            }}});
      b.Sleep(25);
    });
  }

  // --- Checkpoint / backup image service (f5, f6) ---------------------------
  {
    MethodBuilder b(p, "hdfs.nn.checkpoint");
    b.Log(LogLevel::kInfo, "hdfs.checkpoint", "Starting checkpoint round {}",
          {b.V("ckptRound")});
    b.Assign("ckptRound", b.Plus("ckptRound", 1));
    b.TryCatch(
        [&] {
          b.External("hdfs.nn.save_image", {"IOException"});
          b.Assign("imageSaved", Expr::Const(1));
          b.External("hdfs.nn.transfer_image", {"InterruptedException", "IOException"});
          b.Assign("imagesBackedUp", b.Plus("imagesBackedUp", 1));
          b.Log(LogLevel::kInfo, "hdfs.checkpoint", "Image transferred to backup node");
        },
        {{"InterruptedException",
          [&] {
            // BUG (HD-12248): the interrupt is swallowed; the checkpoint is
            // still declared complete without any backup copy.
            b.Nop("swallowed interrupt");
          }},
         {"IOException",
          [&] {
            b.LogExc(LogLevel::kWarn, "hdfs.checkpoint", "Checkpoint attempt failed, retrying");
          }}});
    b.Log(LogLevel::kInfo, "hdfs.checkpoint", "Checkpoint complete");
    b.Signal("ckptRound");
  }
  {
    MethodBuilder b(p, "hdfs.bn.verify_backup");
    // Run after checkpoints: a restart would need the backup image.
    b.If(
        b.Eq("imagesBackedUp", 0),
        [&] {
          b.Log(LogLevel::kError, "hdfs.backup",
                "No valid image found in backup storage, cannot start");
        },
        [&] {
          b.Log(LogLevel::kInfo, "hdfs.backup", "Backup holds {} images",
                {b.V("imagesBackedUp")});
        });
  }
  {
    MethodBuilder b(p, "hdfs.nn.roll_edits_backup");
    // f5: rolling the shared edits for the backup node.
    b.TryCatch(
        [&] {
          b.External("hdfs.nn.roll_edits", {"FileNotFoundException", "IOException"});
          b.Assign("backupEpoch", b.Plus("backupEpoch", 1));
          b.Log(LogLevel::kInfo, "hdfs.backup", "Rolled backup edits to epoch {}",
                {b.V("backupEpoch")});
        },
        {{"FileNotFoundException",
          [&] {
            // BUG (HD-4233): the backup silently stops following, but the
            // active namenode keeps serving.
            b.Log(LogLevel::kError, "hdfs.backup", "Rolling backup failed, edits missing");
            b.Assign("backupDead", Expr::Const(1));
          }},
         {"IOException",
          [&] {
            b.LogExc(LogLevel::kWarn, "hdfs.backup", "Transient edits roll failure, retrying");
          }}});
    b.If(b.Eq("backupDead", 0), [&] { b.Send("hdfs.bn.apply_edits", "bn"); });
  }
  {
    MethodBuilder b(p, "hdfs.bn.apply_edits");
    b.Assign("bnEpoch", b.Plus("bnEpoch", 1));
    b.Log(LogLevel::kDebug, "hdfs.backup", "Backup applied edits epoch {}", {b.V("bnEpoch")});
  }
  {
    MethodBuilder b(p, "hdfs.nn.serve_loop");
    b.While(b.Lt("serveRound", 8), [&] {
      b.Assign("serveRound", b.Plus("serveRound", 1));
      b.Invoke("hdfs.nn.roll_edits_backup");
      b.Log(LogLevel::kInfo, "hdfs.namenode", "Namenode serving, epoch {}",
            {b.V("serveRound")});
      b.Sleep(30);
    });
  }

  // --- Block recovery (f7) ---------------------------------------------------
  {
    MethodBuilder b(p, "hdfs.nn.recover_lease");
    b.Log(LogLevel::kInfo, "hdfs.recovery", "Starting block recovery for open file");
    b.Assign("recoveryAttempts", b.Plus("recoveryAttempts", 1));
    b.Send("hdfs.dn.recover_block", "dn1");
  }
  {
    MethodBuilder b(p, "hdfs.dn.recover_block");
    b.TryCatch(
        [&] {
          b.External("hdfs.dn.init_replica_recovery", {"IOException"});
          b.Log(LogLevel::kInfo, "hdfs.recovery", "Replica recovery initialized");
          b.External("hdfs.dn.update_replica_recovery", {"IOException"});
          b.Send("hdfs.nn.commit_block_sync", "nn");
        },
        {{"IOException",
          [&] {
            // BUG (HD-12070): the recovery failure is reported but never
            // rescheduled; the lease stays open forever.
            b.LogExc(LogLevel::kWarn, "hdfs.recovery", "Failed to recover block on datanode");
          }}});
  }
  {
    MethodBuilder b(p, "hdfs.nn.commit_block_sync");
    b.Assign("leaseClosed", Expr::Const(1));
    b.Signal("leaseClosed");
    b.Assign("openFiles", b.Minus("openFiles", 1));
    b.Log(LogLevel::kInfo, "hdfs.recovery", "Block recovery committed, lease closed");
  }
  {
    MethodBuilder b(p, "hdfs.client.write_and_crash");
    // Client writes one block then "crashes"; the lease monitor recovers it.
    b.Send("hdfs.nn.allocate_block", "nn", ir::SendOpts{.payload = Expr::Const(42)});
    b.Sleep(40);
    b.Log(LogLevel::kInfo, "hdfs.client", "Client crashed with file open, lease expires");
    b.Send("hdfs.nn.recover_lease", "nn");
    b.Await(b.Eq("leaseClosed", 1), /*timeout_ms=*/30000);
    b.If(
        b.Eq("leaseClosed", 0),
        [&] {
          b.Log(LogLevel::kError, "hdfs.client",
                "File remains open indefinitely, data loss risk");
        },
        [&] { b.Log(LogLevel::kInfo, "hdfs.client", "File closed after recovery"); });
  }

  // --- Socket-leaking block creation (f8) -------------------------------------
  {
    MethodBuilder b(p, "hdfs.dn.create_block_stream");
    b.TryCatch(
        [&] {
          b.External("hdfs.dn.open_socket", {"IOException"});
          b.Assign("socketsOpen", b.Plus("socketsOpen", 1));
          b.External("hdfs.dn.setup_stream", {"IOException"});
          b.Assign("streamsReady", b.Plus("streamsReady", 1));
          b.Log(LogLevel::kDebug, "hdfs.datanode", "Block stream ready, {} streams",
                {b.V("streamsReady")});
          // Normal teardown.
          b.Assign("socketsOpen", b.Minus("socketsOpen", 1));
        },
        {{"IOException",
          [&] {
            // BUG (HD-13039): the error path forgets to close the socket.
            b.Log(LogLevel::kWarn, "hdfs.datanode", "Failed to set up block stream");
          }}});
  }
  {
    MethodBuilder b(p, "hdfs.dn.fd_monitor");
    b.Sleep(400);
    b.If(b.Gt("socketsOpen", 0), [&] {
      b.Log(LogLevel::kError, "hdfs.datanode", "Socket leak detected, {} sockets never closed",
            {b.V("socketsOpen")});
    });
  }

  // --- Token-checked reads (f9) -----------------------------------------------
  {
    MethodBuilder b(p, "hdfs.dn.serve_read");
    // An expired token is persistent state: every retry fails the same way
    // until the client finally rebuilds its token (HD-16332).
    b.If(b.Eq("tokenExpired", 1), [&] {
      b.Log(LogLevel::kWarn, "hdfs.datanode", "Block token check failed for read");
      b.Send("hdfs.client.read_retry", "client");
      b.Return();
    });
    b.TryCatch(
        [&] {
          b.External("hdfs.dn.check_token", {"IOException"});
          b.External("hdfs.dn.send_block_data", {"IOException"}, /*transient_every_n=*/19);
          b.Assign("readsServed", b.Plus("readsServed", 1));
          b.Send("hdfs.client.read_done", "client");
        },
        {{"IOException",
          [&] {
            // BUG (HD-16332): the expired token is not refreshed eagerly; the
            // client must tear down and retry the whole pipeline each time.
            b.Log(LogLevel::kWarn, "hdfs.datanode", "Block token check failed for read");
            b.Assign("tokenExpired", Expr::Const(1));
            b.Send("hdfs.client.read_retry", "client");
          }}});
  }
  {
    MethodBuilder b(p, "hdfs.client.read_done");
    b.Assign("readDone", b.Plus("readDone", 1));
    b.Signal("readDone");
  }
  {
    MethodBuilder b(p, "hdfs.client.read_retry");
    b.Assign("readRetries", b.Plus("readRetries", 1));
    b.Log(LogLevel::kWarn, "hdfs.client", "Read attempt failed, retry {}",
          {b.V("readRetries")});
    b.If(b.Ge("readRetries", 4), [&] {
      // Only a full client restart refreshes the token.
      b.Log(LogLevel::kError, "hdfs.client", "Read extremely slow, took {} retries",
            {b.V("readRetries")});
      b.Send("hdfs.dn.refresh_token", "dn1");
    });
    b.If(b.Lt("readRetries", 8), [&] {
      b.Sleep(200);  // slow full-pipeline re-setup
      b.Send("hdfs.dn.serve_read", "dn1");
    });
  }
  {
    MethodBuilder b(p, "hdfs.dn.refresh_token");
    b.Assign("tokenExpired", Expr::Const(0));
    b.Log(LogLevel::kInfo, "hdfs.datanode", "Block token refreshed for client");
  }
  {
    MethodBuilder b(p, "hdfs.client.read_workload");
    b.Send("hdfs.dn.serve_read", "dn1");
    b.Await(b.Ge("readDone", 1), /*timeout_ms=*/30000);
    b.If(b.Ge("readDone", 1),
         [&] { b.Log(LogLevel::kInfo, "hdfs.client", "Read completed"); });
  }

  // --- Datanode registration (f10) ---------------------------------------------
  {
    MethodBuilder b(p, "hdfs.dn.startup");
    b.Log(LogLevel::kInfo, "hdfs.datanode", "Datanode starting, registering with namenode");
    b.TryCatch(
        [&] {
          b.External("hdfs.dn.load_volumes", {"IOException"});
          b.Send("hdfs.nn.register_dn", "nn");
          b.Await(b.Eq("registered", 1), /*timeout_ms=*/15000);
          b.If(
              b.Eq("registered", 1),
              [&] {
                b.Log(LogLevel::kInfo, "hdfs.datanode", "Datanode registered and serving");
                b.Assign("dnUp", Expr::Const(1));
              },
              [&] {
                b.Log(LogLevel::kError, "hdfs.datanode",
                      "Datanode failed to start, registration never acknowledged");
              });
        },
        {{"IOException",
          [&] {
            b.LogExc(LogLevel::kError, "hdfs.datanode",
                     "Datanode failed to start, cannot load volumes");
          }}});
  }
  {
    MethodBuilder b(p, "hdfs.nn.register_dn");
    b.TryCatch(
        [&] {
          b.External("hdfs.nn.record_registration", {"IOException"});
          b.Send("hdfs.dn.register_ack", "dn3");
        },
        {{"IOException",
          [&] {
            // BUG (HD-14333): the disk error during registration is swallowed
            // on the namenode; the datanode never gets an ack and cannot
            // start.
            b.Log(LogLevel::kWarn, "hdfs.namenode",
                     "Could not record datanode registration");
          }}});
  }
  {
    MethodBuilder b(p, "hdfs.dn.register_ack");
    b.Assign("registered", Expr::Const(1));
    b.Signal("registered");
  }

  // --- Balancer (f11) -------------------------------------------------------------
  {
    MethodBuilder b(p, "hdfs.balancer.run");
    b.Log(LogLevel::kInfo, "hdfs.balancer", "Balancer iteration {} starting",
          {b.V("balRound")});
    b.While(b.Lt("balRound", 6), [&] {
      b.Assign("balRound", b.Plus("balRound", 1));
      // BUG (HD-15032): no try/catch around the namenode RPC — an
      // unreachable namenode kills the whole balancer.
      b.External("hdfs.balancer.get_blocks", {"SocketException"});
      b.Log(LogLevel::kInfo, "hdfs.balancer", "Fetched block list, round {}",
            {b.V("balRound")});
      b.TryCatch(
          [&] {
            b.External("hdfs.balancer.move_block", {"IOException"}, /*transient_every_n=*/11);
          },
          {{"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "hdfs.balancer", "Block move failed, skipping");
            }}});
      b.Sleep(15);
    });
    b.Log(LogLevel::kInfo, "hdfs.balancer", "Balancer finished all iterations");
  }

  // Client write pump (shared background traffic).
  {
    MethodBuilder b(p, "hdfs.client.block_pump");
    b.While(b.Lt("pumped", 10), [&] {
      b.Assign("pumped", b.Plus("pumped", 1));
      b.Send("hdfs.nn.allocate_block", "nn", ir::SendOpts{.payload = b.V("pumped")});
      b.Sleep(12);
    });
  }

  BuildHdfsExtras(p);
  AddNoisyServices(p, "hdfs.ipc", 9, 5);
  AddNoisyServices(p, "hdfs.xceiver", 7, 5);
  AddColdModule(p, "hdfs.fsck", 18, 9);
  AddColdModule(p, "hdfs.quota", 12, 7);
  AddColdModule(p, "hdfs.snapshotdiff", 14, 8);
  AddColdModule(p, "hdfs.cacheadmin", 10, 6);
}

interp::ClusterSpec BaseCluster(Program* p) {
  interp::ClusterSpec cluster;
  for (const char* node : {"nn", "bn", "dn1", "dn2", "dn3", "client"}) {
    cluster.AddNode(node);
  }
  cluster.AddTask("dn1", "Heartbeater", p->FindMethod("hdfs.dn.heartbeat_loop"), 0);
  cluster.AddTask("dn2", "Heartbeater", p->FindMethod("hdfs.dn.heartbeat_loop"), 3);
  cluster.AddTask("client", "DataStreamer", p->FindMethod("hdfs.client.block_pump"), 10);
  StartNoisyServices(&cluster, p, "hdfs.ipc", "dn3", 9, 8);
  StartHdfsExtras(&cluster, p);
  StartNoisyServices(&cluster, p, "hdfs.xceiver", "dn2", 7, 7);
  return cluster;
}

// --- Cases ---------------------------------------------------------------------

void RegisterHd4233(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "hd-4233";
  c.paper_id = "f5";
  c.system = "hdfs";
  c.title = "Rolling backup fails but the server keeps serving";
  c.injected_fault = "FileNotFoundException";
  c.root_site = "hdfs.nn.roll_edits";
  c.root_exception = "FileNotFoundException";
  c.root_occurrence = 3;
  c.build = BuildHdfsBase;
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p);
    cluster.AddTask("nn", "NameNodeRpcServer", p->FindMethod("hdfs.nn.serve_loop"), 5);
    return cluster;
  };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    // The backup followed for at least two epochs before dying.
    return run.HasLogContaining(ir::LogLevel::kError, "Rolling backup failed") &&
           run.HasLogContaining("Namenode serving, epoch 8") &&
           run.HasLogContaining("Rolled backup edits to epoch 2");
  };
  cases->push_back(std::move(c));
}

void RegisterHd12248(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "hd-12248";
  c.paper_id = "f6";
  c.system = "hdfs";
  c.title = "Interrupted image transfer makes checkpointing skip the backup";
  c.injected_fault = "InterruptedException";
  c.root_site = "hdfs.nn.transfer_image";
  c.root_exception = "InterruptedException";
  c.root_occurrence = 1;
  c.build = [](Program* p) {
    BuildHdfsBase(p);
    MethodBuilder b(p, "hdfs.nn.checkpoint_workload");
    b.Invoke("hdfs.nn.checkpoint");
    b.Sleep(60);
    b.Invoke("hdfs.bn.verify_backup");
  };
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p);
    cluster.AddTask("nn", "Checkpointer", p->FindMethod("hdfs.nn.checkpoint_workload"), 20);
    return cluster;
  };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kError, "No valid image found in backup") &&
           run.HasLogContaining("Checkpoint complete");
  };
  cases->push_back(std::move(c));
}

void RegisterHd12070(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "hd-12070";
  c.paper_id = "f7";
  c.system = "hdfs";
  c.title = "Failed block recovery leaves files open indefinitely";
  c.injected_fault = "IOException";
  c.root_site = "hdfs.dn.update_replica_recovery";
  c.root_exception = "IOException";
  c.root_occurrence = 1;
  c.build = BuildHdfsBase;
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p);
    cluster.AddTask("client", "LeaseWorker", p->FindMethod("hdfs.client.write_and_crash"), 15);
    return cluster;
  };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kError, "File remains open indefinitely") &&
           run.HasLogContaining(ir::LogLevel::kWarn, "Failed to recover block");
  };
  cases->push_back(std::move(c));
}

void RegisterHd13039(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "hd-13039";
  c.paper_id = "f8";
  c.system = "hdfs";
  c.title = "Data block creation leaks a socket on exception";
  c.injected_fault = "IOException";
  c.root_site = "hdfs.dn.setup_stream";
  c.root_exception = "IOException";
  c.root_occurrence = 4;
  c.build = [](Program* p) {
    BuildHdfsBase(p);
    MethodBuilder b(p, "hdfs.client.stream_workload");
    b.While(b.Lt("streamReqs", 8), [&] {
      b.Assign("streamReqs", b.Plus("streamReqs", 1));
      b.Send("hdfs.dn.create_block_stream", "dn2",
             ir::SendOpts{.payload = b.V("streamReqs")});
      b.Sleep(10);
    });
  };
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p);
    cluster.AddTask("client", "StreamWorker", p->FindMethod("hdfs.client.stream_workload"),
                    10);
    cluster.AddTask("dn2", "FdMonitor", p->FindMethod("hdfs.dn.fd_monitor"), 0);
    return cluster;
  };
  c.oracle = [](const ir::Program& prog, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kError, "Socket leak detected") &&
           run.NodeVar(prog, "dn2", "socketsOpen") > 0;
  };
  cases->push_back(std::move(c));
}

void RegisterHd16332(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "hd-16332";
  c.paper_id = "f9";
  c.system = "hdfs";
  c.title = "Missing handling of expired block token causes slow read";
  c.injected_fault = "IOException";
  c.root_site = "hdfs.dn.check_token";
  c.root_exception = "IOException";
  c.root_occurrence = 1;
  c.build = BuildHdfsBase;
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p);
    cluster.AddTask("client", "Reader", p->FindMethod("hdfs.client.read_workload"), 10);
    cluster.time_limit_ms = 120'000;
    return cluster;
  };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kError, "Read extremely slow") &&
           run.HasLogContaining(ir::LogLevel::kWarn, "Block token check failed");
  };
  cases->push_back(std::move(c));
}

void RegisterHd14333(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "hd-14333";
  c.paper_id = "f10";
  c.system = "hdfs";
  c.title = "Disk error during registration keeps datanodes from starting";
  c.injected_fault = "IOException";
  c.root_site = "hdfs.nn.record_registration";
  c.root_exception = "IOException";
  c.root_occurrence = 1;
  c.build = BuildHdfsBase;
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p);
    cluster.AddTask("dn3", "DataNodeMain", p->FindMethod("hdfs.dn.startup"), 5);
    return cluster;
  };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kError,
                                "Datanode failed to start, registration never acknowledged") &&
           run.HasLogContaining(ir::LogLevel::kWarn,
                                "Could not record datanode registration");
  };
  cases->push_back(std::move(c));
}

void RegisterHd15032(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "hd-15032";
  c.paper_id = "f11";
  c.system = "hdfs";
  c.title = "Balancer crashes when it cannot contact an unavailable namenode";
  c.injected_fault = "SocketException";
  c.root_site = "hdfs.balancer.get_blocks";
  c.root_exception = "SocketException";
  c.root_occurrence = 4;
  c.build = BuildHdfsBase;
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p);
    cluster.AddTask("nn", "Balancer", p->FindMethod("hdfs.balancer.run"), 10);
    return cluster;
  };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.DidThreadDie("nn/Balancer") && run.HasLogContaining("SocketException") &&
           !run.HasLogContaining("Balancer finished all iterations");
  };
  cases->push_back(std::move(c));
}

// --- Stall-rooted scenario ---------------------------------------------------

void RegisterHdStall1(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "hd-stall-1";
  c.paper_id = "s1";
  c.system = "hdfs";
  c.title = "Wedged block flush leaves the write pipeline unresponsive";
  c.injected_fault = "stall";
  c.root_site = "hdfs.dn.flush_block";
  c.root_occurrence = 4;
  c.root_kind = interp::FaultKind::kStall;
  c.build = [](Program* p) {
    BuildHdfsBase(p);
    // Pipeline monitor on the namenode: once the client pump settles, every
    // allocated block must have been acked. An IOException at the flush site
    // is tolerated (WARN + pipeline recovery), so an exception merely logs
    // recovery noise — only a flush that never returns wedges the datanode's
    // write_block handler and silently starves the ack counter.
    MethodBuilder b(p, "hdfs.nn.pipeline_monitor");
    b.Sleep(900);
    b.If(
        b.LtVar("acksReceived", "blocksAllocated"),
        [&] {
          b.Log(LogLevel::kError, "hdfs.namenode",
                "Write pipeline unresponsive, {} of {} blocks acked",
                {b.V("acksReceived"), b.V("blocksAllocated")});
        },
        [&] {
          b.Log(LogLevel::kInfo, "hdfs.namenode", "Write pipeline healthy, {} blocks acked",
                {b.V("acksReceived")});
        });
  };
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p);
    cluster.AddTask("nn", "PipelineMonitor", p->FindMethod("hdfs.nn.pipeline_monitor"), 0);
    return cluster;
  };
  c.oracle = [](const ir::Program& prog, const interp::RunResult& run) {
    // The datanode handler must be *stuck inside* write_block: an injected
    // exception leaves no blocked thread (pipeline recovery runs instead),
    // and a datanode crash leaves crashed threads, not blocked ones.
    return run.HasLogContaining(ir::LogLevel::kError, "Write pipeline unresponsive") &&
           run.IsThreadStuckIn(prog, "dn1/write_block", "hdfs.dn.write_block");
  };
  cases->push_back(std::move(c));
}

// --- Network-rooted scenarios ------------------------------------------------

void RegisterHdNet1(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "hd-net-1";
  c.paper_id = "n3";
  c.system = "hdfs";
  c.title = "Lost block-copy command stalls replication one short of target";
  c.injected_fault = "drop";
  c.root_site = "send:hdfs.repl.copy_block->dn1";
  c.root_occurrence = 3;
  c.root_kind = interp::FaultKind::kDrop;
  c.build = [](Program* p) {
    BuildHdfsBase(p);
    // Replication protocol: the namenode commands five block copies and
    // waits for the acks. The protocol has no external calls, so exceptions
    // cannot touch the counters. The oracle pins "4 of 5": exactly one lost
    // message. A delayed copy still lands inside the 2s ack window and a
    // duplicate overshoots to 6 — only losing one message matches.
    {
      MethodBuilder b(p, "hdfs.repl.coordinator");
      b.While(b.Lt("replRound", 5), [&] {
        b.Assign("replRound", b.Plus("replRound", 1));
        b.Send("hdfs.repl.copy_block", "dn1");
        b.Sleep(30);
      });
      b.Await(b.Ge("replAcks", 5), /*timeout_ms=*/2000);
      b.If(
          b.Lt("replAcks", 5),
          [&] {
            b.Log(LogLevel::kError, "hdfs.namenode",
                  "Replication stalled, {} of 5 block copies acknowledged",
                  {b.V("replAcks")});
          },
          [&] {
            b.Log(LogLevel::kInfo, "hdfs.namenode",
                  "Replication round complete, {} copies acknowledged", {b.V("replAcks")});
          });
    }
    {
      MethodBuilder b(p, "hdfs.repl.copy_block");
      b.Assign("replCopied", b.Plus("replCopied", 1));
      b.Send("hdfs.repl.copy_ack", "nn");
    }
    {
      MethodBuilder b(p, "hdfs.repl.copy_ack");
      b.Assign("replAcks", b.Plus("replAcks", 1));
      b.Signal("replAcks");
    }
  };
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p);
    cluster.AddTask("nn", "ReplicationCoordinator", p->FindMethod("hdfs.repl.coordinator"), 0);
    return cluster;
  };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kError,
                                "Replication stalled, 4 of 5 block copies acknowledged");
  };
  cases->push_back(std::move(c));
}

void RegisterHdNet2(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "hd-net-2";
  c.paper_id = "n4";
  c.system = "hdfs";
  c.title = "Delayed block report marks a healthy datanode stale, then re-replicates";
  c.injected_fault = "delay";
  c.root_site = "send:hdfs.report.receive->nn";
  c.root_occurrence = 2;
  c.root_kind = interp::FaultKind::kDelay;
  c.build = [](Program* p) {
    BuildHdfsBase(p);
    // Block-report protocol: dn2 sends four reports; a watchdog on the
    // namenode marks the datanode stale if they are not all in within
    // 300ms, then fires a redundant re-replication if the reports DO arrive
    // later. Both symptoms together require a late-but-delivered report:
    // drops and partitions never deliver (no rejoin), duplicates arrive on
    // time (never stale). The 400ms cluster delay makes a delayed report
    // miss the staleness window yet beat the 2s grace period.
    {
      MethodBuilder b(p, "hdfs.report.pump");
      b.While(b.Lt("reportsSent", 4), [&] {
        b.Assign("reportsSent", b.Plus("reportsSent", 1));
        b.Send("hdfs.report.receive", "nn");
        b.Sleep(20);
      });
    }
    {
      MethodBuilder b(p, "hdfs.report.receive");
      b.Assign("reportsReceived", b.Plus("reportsReceived", 1));
      b.Signal("reportsReceived");
    }
    {
      MethodBuilder b(p, "hdfs.report.watchdog");
      b.Await(b.Ge("reportsReceived", 4), /*timeout_ms=*/300);
      b.If(b.Lt("reportsReceived", 4), [&] {
        b.Log(LogLevel::kWarn, "hdfs.namenode",
              "Block reports overdue, marking datanode dn2 stale");
        b.Assign("dnStale", ir::Expr::Const(1));
      });
      b.Await(b.Ge("reportsReceived", 4), /*timeout_ms=*/2000);
      b.If(b.Eq("dnStale", 1), [&] {
        b.If(
            b.Ge("reportsReceived", 4),
            [&] {
              b.Log(LogLevel::kError, "hdfs.namenode",
                    "Stale datanode dn2 rejoined: initiating redundant re-replication");
            },
            [&] {
              b.Log(LogLevel::kWarn, "hdfs.namenode",
                    "Datanode dn2 still silent after grace period");
            });
      });
    }
  };
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p);
    cluster.AddTask("dn2", "BlockReportPump", p->FindMethod("hdfs.report.pump"), 0);
    cluster.AddTask("nn", "ReportWatchdog", p->FindMethod("hdfs.report.watchdog"), 0);
    cluster.network_delay_ms = 400;  // a delayed report misses the 300ms window
    return cluster;
  };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kWarn,
                                "Block reports overdue, marking datanode dn2 stale") &&
           run.HasLogContaining(ir::LogLevel::kError,
                                "Stale datanode dn2 rejoined: initiating redundant re-replication");
  };
  cases->push_back(std::move(c));
}

}  // namespace

void RegisterHdfsCases(std::vector<FailureCase>* cases) {
  RegisterHd4233(cases);
  RegisterHd12248(cases);
  RegisterHd12070(cases);
  RegisterHd13039(cases);
  RegisterHd16332(cases);
  RegisterHd14333(cases);
  RegisterHd15032(cases);
}

void RegisterHdfsStallCases(std::vector<FailureCase>* cases) {
  RegisterHdStall1(cases);
}

void RegisterHdfsNetworkCases(std::vector<FailureCase>* cases) {
  RegisterHdNet1(cases);
  RegisterHdNet2(cases);
}

}  // namespace anduril::systems
