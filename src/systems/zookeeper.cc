// Simulated ZooKeeper and its four evaluated failures:
//   f1 ZK-2247: server unavailable when the leader fails to write the txn log
//   f2 ZK-3157: connection loss at the wrong moment makes the client fail
//   f3 ZK-4203: leader election stuck forever after a connection error
//   f4 ZK-3006: invalid disk file content causes a NullPointerException
//
// Topology: zk1 (leader) + zk2/zk3 (followers) + a client node. The base
// system provides request processing (txn log write -> quorum commit ->
// client ack), session handling, a leader-election service, snapshot
// loading, and periodic ping/maintenance noise whose transient faults are
// tolerated but logged — the source of the noisy WARN messages the paper
// emphasizes.

#include "src/systems/common.h"

#include "src/systems/extras.h"

#include "src/util/check.h"

namespace anduril::systems {
namespace {

using ir::Expr;
using ir::LogLevel;
using ir::MethodBuilder;
using ir::Program;

constexpr int kClientRequests = 20;

// --- Shared plumbing ---------------------------------------------------------

void BuildZooKeeperBase(Program* p) {
  // Leader request pipeline.
  {
    MethodBuilder b(p, "zk.leader.process_request");
    b.If(b.Eq("txnlogBroken", 1), [&] {
      b.Log(LogLevel::kWarn, "zk.leader", "Dropping request {}, txnlog marked broken",
            {Expr::Payload()});
      b.Return();
    });
    b.TryCatch(
        [&] {
          b.External("zk.txnlog.write", {"IOException"});
          b.External("zk.txnlog.sync", {"IOException"});
          b.Send("zk.follower.commit", "zk2", ir::SendOpts{.payload = Expr::Payload()});
          b.Send("zk.follower.commit", "zk3", ir::SendOpts{.payload = Expr::Payload()});
          b.Send("zk.client.response", "client", ir::SendOpts{.payload = Expr::Payload()});
          b.Assign("committed", b.Plus("committed", 1));
          b.Log(LogLevel::kInfo, "zk.leader", "Committed request {}", {Expr::Payload()});
        },
        {{"IOException",
          [&] {
            b.LogExc(LogLevel::kError, "zk.leader",
                     "Severe unrecoverable error while writing transaction log");
            b.Assign("txnlogBroken", Expr::Const(1));
          }}});
  }
  {
    MethodBuilder b(p, "zk.follower.commit");
    b.TryCatch(
        [&] {
          b.External("zk.snap.flush", {"IOException"}, /*transient_every_n=*/17);
          b.Assign("applied", b.Plus("applied", 1));
        },
        {{"IOException",
          [&] {
            b.LogExc(LogLevel::kWarn, "zk.follower", "Snapshot flush failed, will retry");
          }}});
    b.Send("zk.leader.ack", "zk1", ir::SendOpts{.payload = Expr::Payload()});
  }
  {
    MethodBuilder b(p, "zk.leader.ack");
    b.Assign("acks", b.Plus("acks", 1));
  }
  {
    MethodBuilder b(p, "zk.client.response");
    b.Assign("responses", b.Plus("responses", 1));
    b.Signal("responses");
  }

  // Client workload pump: submits requests and waits for acknowledgements.
  {
    MethodBuilder b(p, "zk.client.run_workload");
    b.Log(LogLevel::kInfo, "zk.client", "Session established to ensemble");
    b.While(b.Lt("reqId", kClientRequests), [&] {
      b.Assign("reqId", b.Plus("reqId", 1));
      b.Send("zk.leader.process_request", "zk1", ir::SendOpts{.payload = b.V("reqId")});
      b.Sleep(5);
    });
    b.Await(b.Ge("responses", kClientRequests), /*timeout_ms=*/30000);
    b.If(
        b.Lt("responses", kClientRequests),
        [&] {
          b.Log(LogLevel::kWarn, "zk.client",
                "Did not receive responses for all requests, got only {}",
                {b.V("responses")});
        },
        [&] { b.Log(LogLevel::kInfo, "zk.client", "All requests acknowledged"); });
  }

  // Periodic ping noise (tolerated transient faults -> noisy WARNs).
  {
    MethodBuilder b(p, "zk.leader.ping_loop");
    b.While(b.Lt("pingRound", 25), [&] {
      b.Assign("pingRound", b.Plus("pingRound", 1));
      b.TryCatch(
          [&] { b.External("zk.ping.send", {"SocketException"}, /*transient_every_n=*/7); },
          {{"SocketException",
            [&] {
              b.LogExc(LogLevel::kWarn, "zk.quorum", "Ping to follower failed, retrying");
            }}});
      b.Sleep(20);
    });
  }

  // Leader election service (exercised by f3; cold elsewhere unless started).
  {
    MethodBuilder b(p, "zk.election.on_connection");
    b.If(b.Eq("listenerDead", 1), [&] {
      b.Log(LogLevel::kWarn, "zk.election",
            "Connection dropped, election socket service closed");
      b.Return();
    });
    b.TryCatch(
        [&] {
          b.External("zk.election.accept_socket", {"IOException"});
          b.External("zk.election.read_vote", {"IOException"});
          b.Assign("votesReceived", b.Plus("votesReceived", 1));
          b.Signal("votesReceived");
          b.Log(LogLevel::kInfo, "zk.election", "Received vote {} from follower",
                {b.V("votesReceived")});
        },
        {{"IOException",
          [&] {
            b.LogExc(LogLevel::kError, "zk.election",
                     "Exception while listening for election connections");
            // BUG (ZK-4203): one socket error permanently fails the whole
            // listener; later connection attempts are silently dropped.
            b.Assign("listenerDead", Expr::Const(1));
          }}});
  }
  {
    MethodBuilder b(p, "zk.election.coordinate");
    b.Log(LogLevel::kInfo, "zk.election", "Starting leader election");
    b.Await(b.Ge("votesReceived", 2), /*timeout_ms=*/40000);
    b.If(
        b.Ge("votesReceived", 2),
        [&] {
          b.Assign("electionDone", Expr::Const(1));
          b.Log(LogLevel::kInfo, "zk.election", "zk1 elected leader with quorum");
        },
        [&] {
          b.Log(LogLevel::kError, "zk.election",
                "Failed to elect a leader, quorum never formed");
        });
  }
  {
    MethodBuilder b(p, "zk.follower.join_election");
    b.While(b.Lt("connectAttempts", 3), [&] {
      b.Assign("connectAttempts", b.Plus("connectAttempts", 1));
      b.TryCatch(
          [&] { b.External("zk.election.open_channel", {"ConnectException"}); },
          {{"ConnectException",
            [&] {
              b.LogExc(LogLevel::kWarn, "zk.election", "Cannot open election channel, retry");
            }}});
      b.Send("zk.election.on_connection", "zk1",
             ir::SendOpts{.handler_thread = "ListenerHandler"});
      b.Sleep(30);
    });
  }

  // Snapshot loading (exercised by f4).
  {
    MethodBuilder b(p, "zk.server.load_database");
    b.TryCatch(
        [&] {
          b.External("zk.snap.read_header", {"IOException"});
          b.External("zk.snap.deserialize", {"EOFException"});
          b.Assign("dataTreeLoaded", Expr::Const(1));
          b.Log(LogLevel::kInfo, "zk.server", "Snapshot loaded, {} sessions restored",
                {b.V("applied")});
        },
        {{"EOFException",
          [&] {
            // BUG (ZK-3006): falls through without initializing the tree.
            b.LogExc(LogLevel::kWarn, "zk.server",
                     "Truncated snapshot, falling back to empty data tree");
          }},
         {"IOException",
          [&] {
            b.LogExc(LogLevel::kWarn, "zk.server", "Snapshot read failed, trying next one");
            b.Assign("dataTreeLoaded", Expr::Const(1));
          }}});
    b.Invoke("zk.server.start_serving");
  }
  {
    MethodBuilder b(p, "zk.server.start_serving");
    b.If(
        b.Eq("dataTreeLoaded", 0),
        [&] {
          // Dereferences the never-initialized data tree.
          b.Throw("NullPointerException");
        },
        [&] { b.Log(LogLevel::kInfo, "zk.server", "Serving client requests"); });
  }

  // Session handling (exercised by f2).
  {
    MethodBuilder b(p, "zk.follower.handle_packet");
    b.If(b.Eq("connClosed", 1), [&] {
      b.Log(LogLevel::kInfo, "zk.session", "Re-establishing client connection");
      b.Assign("connClosed", Expr::Const(0));
    });
    b.TryCatch(
        [&] {
          b.External("zk.session.read_packet", {"IOException"});
          // Payload 7 = watch registration; everything else is a ping.
          b.Assign("lastPacket", Expr::Payload());
          b.If(
              ir::Cond::Eq(b.Var("lastPacket"), 7),
              [&] {
                b.Assign("watchRegistered", Expr::Const(1));
                b.Log(LogLevel::kInfo, "zk.session", "Watch registered for client path");
              },
              [&] {
                b.Assign("sessionTouched", b.Plus("sessionTouched", 1));
                b.Log(LogLevel::kDebug, "zk.session", "Touched session, {} pings so far",
                      {b.V("sessionTouched")});
                b.Send("zk.client.session_ok", "client");
              });
        },
        {{"IOException",
          [&] {
            // Tolerated for pings (client re-sends), but a registration
            // packet is lost for good (ZK-3157): the client believes the
            // watch is armed.
            b.LogExc(LogLevel::kWarn, "zk.session",
                     "Unexpected exception on session channel, closing connection");
            b.Assign("connClosed", Expr::Const(1));
          }}});
  }
  {
    MethodBuilder b(p, "zk.client.session_ok");
    b.Assign("sessionAcks", b.Plus("sessionAcks", 1));
    b.Signal("sessionAcks");
  }
  {
    MethodBuilder b(p, "zk.follower.trigger_event");
    b.If(
        b.Eq("watchRegistered", 1),
        [&] {
          b.Log(LogLevel::kInfo, "zk.session", "Data changed, firing client watch");
          b.Send("zk.client.watch_fired", "client");
        },
        [&] { b.Log(LogLevel::kDebug, "zk.session", "Data changed, no watchers"); });
  }
  {
    MethodBuilder b(p, "zk.client.watch_fired");
    b.Assign("watchFired", Expr::Const(1));
    b.Signal("watchFired");
  }
  {
    MethodBuilder b(p, "zk.client.watch_workload");
    b.Log(LogLevel::kInfo, "zk.client", "Session established to ensemble");
    // A few pings, then the watch registration, then more pings.
    b.While(b.Lt("pingsSent", 5), [&] {
      b.Assign("pingsSent", b.Plus("pingsSent", 1));
      b.Send("zk.follower.handle_packet", "zk2",
             ir::SendOpts{.payload = Expr::Const(1), .handler_thread = "SessionTracker"});
      b.Sleep(8);
    });
    b.Send("zk.follower.handle_packet", "zk2",
           ir::SendOpts{.payload = Expr::Const(7), .handler_thread = "SessionTracker"});
    b.Sleep(8);
    b.While(b.Lt("pingsSent", 10), [&] {
      b.Assign("pingsSent", b.Plus("pingsSent", 1));
      b.Send("zk.follower.handle_packet", "zk2",
             ir::SendOpts{.payload = Expr::Const(1), .handler_thread = "SessionTracker"});
      b.Sleep(8);
    });
    // Mutate the watched path and wait for the watch to fire.
    b.Sleep(50);
    b.Send("zk.follower.trigger_event", "zk2");
    b.Await(b.Eq("watchFired", 1), /*timeout_ms=*/20000);
    b.If(
        b.Eq("watchFired", 0),
        [&] {
          b.Log(LogLevel::kError, "zk.client",
                "Watch never fired for client, giving up on session");
        },
        [&] { b.Log(LogLevel::kInfo, "zk.client", "Watch fired, client done"); });
  }

  BuildZooKeeperExtras(p);
  AddNoisyServices(p, "zk.ipc", 8, 5);
  AddNoisyServices(p, "zk.watch", 6, 5);
  AddColdModule(p, "zk.admin", 14, 8);
  AddColdModule(p, "zk.audit", 10, 6);
  AddColdModule(p, "zk.jmx", 8, 5);
}

interp::ClusterSpec BaseCluster(Program* p, bool with_requests) {
  interp::ClusterSpec cluster;
  cluster.AddNode("zk1");
  cluster.AddNode("zk2");
  cluster.AddNode("zk3");
  cluster.AddNode("client");
  cluster.AddTask("zk1", "PingScheduler", p->FindMethod("zk.leader.ping_loop"), 0);
  StartNoisyServices(&cluster, p, "zk.ipc", "zk3", 8, 8);
  StartZooKeeperExtras(&cluster, p);
  StartNoisyServices(&cluster, p, "zk.watch", "zk2", 6, 7);
  if (with_requests) {
    cluster.AddTask("client", "main", p->FindMethod("zk.client.run_workload"), 10);
  }
  return cluster;
}

// --- Cases -------------------------------------------------------------------

void RegisterZk2247(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "zk-2247";
  c.paper_id = "f1";
  c.system = "zookeeper";
  c.title = "Server unavailable when leader fails to write transaction log";
  c.injected_fault = "IOException";
  c.root_site = "zk.txnlog.write";
  c.root_exception = "IOException";
  c.root_occurrence = 5;
  c.build = BuildZooKeeperBase;
  c.workload = [](Program* p) { return BaseCluster(p, /*with_requests=*/true); };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    // The production log shows healthy commits before the txnlog broke.
    return run.HasLogContaining(ir::LogLevel::kError,
                                "Severe unrecoverable error while writing transaction log") &&
           run.HasLogContaining(ir::LogLevel::kWarn,
                                "Did not receive responses for all requests") &&
           run.HasLogContaining("Committed request 3");
  };
  cases->push_back(std::move(c));
}

void RegisterZk3157(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "zk-3157";
  c.paper_id = "f2";
  c.system = "zookeeper";
  c.title = "Connection loss causes the client to fail";
  c.injected_fault = "IOException";
  c.root_site = "zk.session.read_packet";
  c.root_exception = "IOException";
  c.root_occurrence = 6;  // the packet carrying the watch registration
  c.build = BuildZooKeeperBase;
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p, /*with_requests=*/false);
    cluster.AddTask("client", "main", p->FindMethod("zk.client.watch_workload"), 10);
    return cluster;
  };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kError, "Watch never fired for client") &&
           run.HasLogContaining(ir::LogLevel::kWarn,
                                "Unexpected exception on session channel");
  };
  cases->push_back(std::move(c));
}

void RegisterZk4203(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "zk-4203";
  c.paper_id = "f3";
  c.system = "zookeeper";
  c.title = "Leader election stuck forever due to connection error";
  c.injected_fault = "IOException";
  c.root_site = "zk.election.accept_socket";
  c.root_exception = "IOException";
  c.root_occurrence = 2;
  c.build = BuildZooKeeperBase;
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p, /*with_requests=*/false);
    cluster.AddTask("zk1", "QuorumPeer", p->FindMethod("zk.election.coordinate"), 0);
    cluster.AddTask("zk2", "WorkerSender", p->FindMethod("zk.follower.join_election"), 5);
    cluster.AddTask("zk3", "WorkerSender", p->FindMethod("zk.follower.join_election"), 9);
    cluster.time_limit_ms = 120'000;
    return cluster;
  };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    // One vote arrived before the listener died (as in the incident log).
    return run.HasLogContaining(ir::LogLevel::kError, "Failed to elect a leader") &&
           run.HasLogContaining(ir::LogLevel::kWarn, "Connection dropped, election socket") &&
           run.HasLogContaining("Received vote 1 from follower");
  };
  cases->push_back(std::move(c));
}

void RegisterZk3006(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "zk-3006";
  c.paper_id = "f4";
  c.system = "zookeeper";
  c.title = "Invalid disk file content causes null pointer exception";
  c.injected_fault = "IOException";
  c.root_site = "zk.snap.deserialize";
  c.root_exception = "EOFException";
  c.root_occurrence = 1;
  c.build = BuildZooKeeperBase;
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p, /*with_requests=*/false);
    cluster.AddTask("zk1", "main", p->FindMethod("zk.server.load_database"), 0);
    return cluster;
  };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.DidThreadDie("zk1/main") &&
           run.HasLogContaining("NullPointerException") &&
           run.HasLogContaining(ir::LogLevel::kWarn, "Truncated snapshot");
  };
  cases->push_back(std::move(c));
}

// --- Crash-rooted scenario ---------------------------------------------------

void RegisterZkCrash1(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "zk-crash-1";
  c.paper_id = "c1";
  c.system = "zookeeper";
  c.title = "Follower crash mid-flush silently degrades the commit quorum";
  c.injected_fault = "crash";
  c.root_site = "zk.snap.flush";
  c.root_occurrence = 5;
  c.root_kind = interp::FaultKind::kCrash;
  c.build = [](Program* p) {
    BuildZooKeeperBase(p);
    // Quorum monitor on the leader: after the workload settles, every commit
    // must have been acknowledged by both followers. An IOException at the
    // flush site is tolerated (WARN, the ack is still sent), so only a
    // follower halting mid-flush can starve this check while the leader
    // keeps committing.
    MethodBuilder b(p, "zk.leader.quorum_monitor");
    b.Sleep(900);
    // expectedAcks = 2 * committed (one ack per follower per commit), built
    // by repeated addition: the IR has no var*const expression.
    b.Assign("qmCursor", Expr::Const(0));
    b.While(b.LtVar("qmCursor", "committed"), [&] {
      b.Assign("qmCursor", b.Plus("qmCursor", 1));
      b.Assign("expectedAcks", b.Plus("expectedAcks", 2));
    });
    b.If(
        b.LtVar("acks", "expectedAcks"),
        [&] {
          b.Log(LogLevel::kError, "zk.quorum",
                "Quorum degraded, only {} of {} follower acks received",
                {b.V("acks"), b.V("expectedAcks")});
        },
        [&] {
          b.Log(LogLevel::kInfo, "zk.quorum", "Quorum healthy, {} follower acks",
                {b.V("acks")});
        });
  };
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p, /*with_requests=*/true);
    cluster.AddTask("zk1", "QuorumMonitor", p->FindMethod("zk.leader.quorum_monitor"), 0);
    return cluster;
  };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    // Clients were served (the leader never noticed), yet the quorum is
    // short on acks — and no commit handler is merely wedged, which rules
    // out the stall-fault alternative: a crashed follower leaves no blocked
    // thread behind.
    return run.HasLogContaining(ir::LogLevel::kError, "Quorum degraded") &&
           run.HasLogContaining("All requests acknowledged") &&
           !run.IsThreadStuck("commit");
  };
  cases->push_back(std::move(c));
}

// --- Network-rooted scenarios ------------------------------------------------

void RegisterZkNet1(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "zk-net-1";
  c.paper_id = "n1";
  c.system = "zookeeper";
  c.title = "Quorum member silently out of sync behind an unhealed partition";
  c.injected_fault = "partition";
  c.root_site = "send:zk.qsync.follower_sync->zk2";
  c.root_occurrence = 1;
  c.root_kind = interp::FaultKind::kPartition;
  c.build = [](Program* p) {
    BuildZooKeeperBase(p);
    // Quorum sync protocol: the leader pushes six sync rounds to both
    // followers; each follower acks with its server id. The sync methods
    // contain no external calls, so no injectable exception can perturb the
    // counters — only message-layer faults can. A single dropped round
    // leaves ackFrom2 at 5; only a severed zk1<->zk2 link starves it to <= 2.
    {
      MethodBuilder b(p, "zk.qsync.leader_round");
      b.While(b.Lt("syncRound", 6), [&] {
        b.Assign("syncRound", b.Plus("syncRound", 1));
        b.Send("zk.qsync.follower_sync", "zk2");
        b.Send("zk.qsync.follower_sync", "zk3");
        b.Sleep(40);
      });
    }
    {
      MethodBuilder b(p, "zk.qsync.follower_sync");
      b.Assign("syncApplied", b.Plus("syncApplied", 1));
      b.Send("zk.qsync.leader_ack", "zk1", ir::SendOpts{.payload = b.V("myid")});
    }
    {
      // All acks land on one handler thread on zk1, so the assign-then-branch
      // on the payload cannot interleave across invocations.
      MethodBuilder b(p, "zk.qsync.leader_ack");
      b.Assign("lastAckFrom", ir::Expr::Payload());
      b.If(
          b.Eq("lastAckFrom", 2), [&] { b.Assign("ackFrom2", b.Plus("ackFrom2", 1)); },
          [&] { b.Assign("ackFrom3", b.Plus("ackFrom3", 1)); });
      b.Signal("ackFrom2");
    }
    {
      MethodBuilder b(p, "zk.qsync.monitor");
      b.Sleep(1200);
      b.If(b.Lt("ackFrom2", 6), [&] {
        b.Log(LogLevel::kError, "zk.quorum",
              "Quorum member zk2 out of sync, only {} of 6 sync rounds acked",
              {b.V("ackFrom2")});
      });
      // No timeout: while the partition stands, the monitor stays blocked
      // here forever — the run classifies as partitioned-stuck.
      b.Await(b.Ge("ackFrom2", 6));
      b.Log(LogLevel::kInfo, "zk.quorum", "Quorum sync recovered, all rounds acked");
    }
  };
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p, /*with_requests=*/false);
    cluster.AddTask("zk1", "QuorumSync", p->FindMethod("zk.qsync.leader_round"), 0);
    cluster.AddTask("zk1", "SyncMonitor", p->FindMethod("zk.qsync.monitor"), 0);
    cluster.SetVar("zk2", p->InternVar("myid"), 2);
    cluster.SetVar("zk3", p->InternVar("myid"), 3);
    cluster.partition_heal_ms = 0;  // a severed link never heals
    return cluster;
  };
  c.oracle = [](const ir::Program& prog, const interp::RunResult& run) {
    // A lone dropped round still acks 5 of 6; only a standing partition
    // starves the counter this far.
    return run.HasLogContaining(ir::LogLevel::kError, "Quorum member zk2 out of sync") &&
           run.NodeVar(prog, "zk1", "ackFrom2") <= 2;
  };
  cases->push_back(std::move(c));
}

void RegisterZkNet2(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "zk-net-2";
  c.paper_id = "n2";
  c.system = "zookeeper";
  c.title = "Duplicated digest delivery corrupts the confirmation audit";
  c.injected_fault = "duplicate";
  c.root_site = "send:zk.digest.apply->zk2";
  c.root_occurrence = 3;
  c.root_kind = interp::FaultKind::kDuplicate;
  c.build = [](Program* p) {
    BuildZooKeeperBase(p);
    // Digest pipeline: zk1 submits eight digests to zk2, which confirms each
    // back. The audit only trips when confirmations EXCEED submissions —
    // drops, delays, and partitions can only lower the count; a duplicated
    // delivery is the sole way to overshoot.
    {
      MethodBuilder b(p, "zk.digest.submit");
      b.While(b.Lt("digestSent", 8), [&] {
        b.Assign("digestSent", b.Plus("digestSent", 1));
        b.Send("zk.digest.apply", "zk2");
        b.Sleep(15);
      });
    }
    {
      MethodBuilder b(p, "zk.digest.apply");
      b.Assign("digestApplied", b.Plus("digestApplied", 1));
      b.Send("zk.digest.confirm", "zk1");
    }
    {
      MethodBuilder b(p, "zk.digest.confirm");
      b.Assign("digestConfirmed", b.Plus("digestConfirmed", 1));
    }
    {
      MethodBuilder b(p, "zk.digest.audit");
      b.Sleep(700);
      b.If(
          b.LtVar("digestSent", "digestConfirmed"),
          [&] {
            b.Log(LogLevel::kError, "zk.digest",
                  "Digest confirmation mismatch: {} submitted but {} confirmed",
                  {b.V("digestSent"), b.V("digestConfirmed")});
          },
          [&] {
            b.Log(LogLevel::kInfo, "zk.digest", "Digest audit clean, {} submissions confirmed",
                  {b.V("digestConfirmed")});
          });
    }
  };
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p, /*with_requests=*/false);
    cluster.AddTask("zk1", "DigestSubmitter", p->FindMethod("zk.digest.submit"), 0);
    cluster.AddTask("zk1", "DigestAudit", p->FindMethod("zk.digest.audit"), 0);
    return cluster;
  };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kError, "Digest confirmation mismatch");
  };
  cases->push_back(std::move(c));
}

}  // namespace

void RegisterZooKeeperCases(std::vector<FailureCase>* cases) {
  RegisterZk2247(cases);
  RegisterZk3157(cases);
  RegisterZk4203(cases);
  RegisterZk3006(cases);
}

void RegisterZooKeeperCrashCases(std::vector<FailureCase>* cases) {
  RegisterZkCrash1(cases);
}

void RegisterZooKeeperNetworkCases(std::vector<FailureCase>* cases) {
  RegisterZkNet1(cases);
  RegisterZkNet2(cases);
}

}  // namespace anduril::systems
