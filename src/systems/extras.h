// Additional subsystems for the five simulated systems: background state
// machines that real deployments run continuously (session expiry, block
// reports, group coordination, hinted handoff, ...). They are exercised by
// the base workloads, so they widen the dynamic fault space, add realistic
// log noise, and give the causal analysis more plausible-but-wrong paths to
// prune — the conditions the paper's search operates under.

#ifndef ANDURIL_SRC_SYSTEMS_EXTRAS_H_
#define ANDURIL_SRC_SYSTEMS_EXTRAS_H_

#include "src/interp/cluster.h"
#include "src/ir/program.h"

namespace anduril::systems {

// Each Build*Extras registers the subsystem methods; each Start*Extras adds
// their boot tasks to a cluster (round budgets scale with the current
// workload scale, like the noisy services).

void BuildZooKeeperExtras(ir::Program* program);
void StartZooKeeperExtras(interp::ClusterSpec* cluster, ir::Program* program);

void BuildHdfsExtras(ir::Program* program);
void StartHdfsExtras(interp::ClusterSpec* cluster, ir::Program* program);

void BuildHBaseExtras(ir::Program* program);
void StartHBaseExtras(interp::ClusterSpec* cluster, ir::Program* program);

void BuildKafkaExtras(ir::Program* program);
void StartKafkaExtras(interp::ClusterSpec* cluster, ir::Program* program);

void BuildCassandraExtras(ir::Program* program);
void StartCassandraExtras(interp::ClusterSpec* cluster, ir::Program* program);

}  // namespace anduril::systems

#endif  // ANDURIL_SRC_SYSTEMS_EXTRAS_H_
