// Kafka background subsystems: the group coordinator's join/sync/heartbeat
// state machine, the transaction coordinator's two-phase commit, ISR
// shrink/expand management, and log segment rolling.

#include "src/systems/extras.h"

#include "src/ir/builder.h"
#include "src/systems/common.h"

namespace anduril::systems {
namespace {

using ir::Expr;
using ir::LogLevel;
using ir::MethodBuilder;
using ir::Program;

// Group coordinator: members join, the leader syncs assignments, members
// heartbeat; a missed heartbeat triggers a rebalance generation bump.
void BuildGroupCoordinator(Program* p) {
  {
    MethodBuilder b(p, "kafka.group.join");
    b.Assign("groupMembers", b.Plus("groupMembers", 1));
    b.Log(LogLevel::kInfo, "kafka.GroupCoordinator", "Member joined, {} in group",
          {b.V("groupMembers")});
    b.If(b.Ge("groupMembers", 2), [&] {
      b.TryCatch(
          [&] {
            b.External("kafka.group.persist_assignment", {"IOException"});
            b.Assign("generation", b.Plus("generation", 1));
            b.Log(LogLevel::kInfo, "kafka.GroupCoordinator", "Rebalanced to generation {}",
                  {b.V("generation")});
          },
          {{"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "kafka.GroupCoordinator",
                       "Assignment persist failed, members will rejoin");
              b.Assign("groupMembers", Expr::Const(0));
            }}});
    });
  }
  {
    MethodBuilder b(p, "kafka.group.heartbeat");
    b.TryCatch(
        [&] {
          b.External("kafka.group.check_session", {"IOException"}, /*transient_every_n=*/10);
          b.Assign("heartbeatsOk", b.Plus("heartbeatsOk", 1));
        },
        {{"IOException",
          [&] {
            b.LogExc(LogLevel::kWarn, "kafka.GroupCoordinator",
                     "Heartbeat session check failed, member evicted");
            b.If(b.Gt("groupMembers", 0), [&] {
              b.Assign("groupMembers", b.Minus("groupMembers", 1));
            });
          }}});
  }
  {
    MethodBuilder b(p, "kafka.group.coordinator_loop");
    b.Send("kafka.group.join", "broker1", ir::SendOpts{.handler_thread = "GroupCoordinator"});
    b.Send("kafka.group.join", "broker1", ir::SendOpts{.handler_thread = "GroupCoordinator"});
    b.While(ir::Cond::LtVar(b.Var("groupTick"), b.Var("kafkaExtraRounds")), [&] {
      b.Assign("groupTick", b.Plus("groupTick", 1));
      b.Send("kafka.group.heartbeat", "broker1",
             ir::SendOpts{.handler_thread = "GroupCoordinator"});
      b.Sleep(18);
    });
  }
}

// Transaction coordinator: begin -> add partitions -> prepare -> commit,
// with the prepare state persisted to the transaction log.
void BuildTransactionCoordinator(Program* p) {
  {
    MethodBuilder b(p, "kafka.txn.run_transaction");
    b.TryCatch(
        [&] {
          b.External("kafka.txn.append_begin", {"IOException"});
          b.External("kafka.txn.add_partitions", {"IOException"}, /*transient_every_n=*/13);
          b.External("kafka.txn.append_prepare", {"IOException"});
          b.External("kafka.txn.write_markers", {"IOException"});
          b.Assign("txnCommitted", b.Plus("txnCommitted", 1));
          b.Log(LogLevel::kInfo, "kafka.TransactionCoordinator", "Transaction {} committed",
                {b.V("txnCommitted")});
        },
        {{"IOException",
          [&] {
            b.LogExc(LogLevel::kWarn, "kafka.TransactionCoordinator",
                     "Transaction aborted, producer must retry");
            b.Assign("txnAborted", b.Plus("txnAborted", 1));
          }}});
  }
  {
    MethodBuilder b(p, "kafka.txn.coordinator_loop");
    b.While(ir::Cond::LtVar(b.Var("txnTick"), b.Var("kafkaExtraRounds")), [&] {
      b.Assign("txnTick", b.Plus("txnTick", 1));
      b.Invoke("kafka.txn.run_transaction");
      b.Sleep(23);
    });
  }
}

// ISR manager: shrinks the in-sync replica set when a follower lags, expands
// it back once the follower catches up.
void BuildIsrManager(Program* p) {
  {
    MethodBuilder b(p, "kafka.isr.tick");
    b.TryCatch(
        [&] {
          b.External("kafka.isr.check_follower_lag", {"IOException"}, /*transient_every_n=*/6);
          b.If(b.Lt("isrSize", 3), [&] {
            b.Assign("isrSize", b.Plus("isrSize", 1));
            b.Log(LogLevel::kInfo, "kafka.Partition", "ISR expanded to {}", {b.V("isrSize")});
          });
        },
        {{"IOException",
          [&] {
            b.LogExc(LogLevel::kWarn, "kafka.Partition", "Follower lagging, shrinking ISR");
            b.If(b.Gt("isrSize", 1), [&] {
              b.Assign("isrSize", b.Minus("isrSize", 1));
            });
          }}});
  }
  {
    MethodBuilder b(p, "kafka.isr.manager_loop");
    b.Assign("isrSize", Expr::Const(3));
    b.While(ir::Cond::LtVar(b.Var("isrTick"), b.Var("kafkaExtraRounds")), [&] {
      b.Assign("isrTick", b.Plus("isrTick", 1));
      b.Invoke("kafka.isr.tick");
      b.Sleep(16);
    });
  }
}

// Segment roller: rolls the active log segment by size/time and flushes the
// old one.
void BuildSegmentRoller(Program* p) {
  {
    MethodBuilder b(p, "kafka.log.segment_roll_loop");
    b.While(ir::Cond::LtVar(b.Var("segTick"), b.Var("kafkaExtraRounds")), [&] {
      b.Assign("segTick", b.Plus("segTick", 1));
      b.TryCatch(
          [&] {
            b.External("kafka.log.flush_segment", {"IOException"}, /*transient_every_n=*/15);
            b.External("kafka.log.open_new_segment", {"IOException"});
            b.Assign("segmentsRolled", b.Plus("segmentsRolled", 1));
            b.Log(LogLevel::kDebug, "kafka.Log", "Rolled segment {}", {b.V("segmentsRolled")});
          },
          {{"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "kafka.Log", "Segment roll failed, retry next interval");
            }}});
      b.Sleep(34);
    });
  }
}

}  // namespace

void BuildKafkaExtras(Program* p) {
  BuildGroupCoordinator(p);
  BuildTransactionCoordinator(p);
  BuildIsrManager(p);
  BuildSegmentRoller(p);
}

void StartKafkaExtras(interp::ClusterSpec* cluster, ir::Program* p) {
  int rounds = 6 * CurrentWorkloadScale();
  cluster->AddTask("client", "GroupDriver", p->FindMethod("kafka.group.coordinator_loop"), 5);
  cluster->AddTask("broker1", "TxnCoordinator", p->FindMethod("kafka.txn.coordinator_loop"),
                   8);
  cluster->AddTask("broker2", "IsrManager", p->FindMethod("kafka.isr.manager_loop"), 4);
  cluster->AddTask("broker1", "SegmentRoller", p->FindMethod("kafka.log.segment_roll_loop"),
                   11);
  for (const char* node : {"broker1", "broker2", "client"}) {
    cluster->SetVar(node, p->InternVar("kafkaExtraRounds"), rounds);
  }
}

}  // namespace anduril::systems
