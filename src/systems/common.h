// Failure-case registry: the 22 real-world failures of the paper's
// evaluation (appendix Table 5), re-expressed as seeded bugs in five
// simulated distributed systems.
//
// Each case packages exactly the inputs the paper's problem statement (§2)
// lists: the system (program + cluster), a driving workload, a failure log
// from an uninstrumented "production" run, and a failure oracle. It also
// records the ground truth — the root-cause (site, occurrence, exception) —
// which is used ONLY by benches/tests (to generate the failure log, verify
// oracles, and report rank trajectories), never by the search itself.

#ifndef ANDURIL_SRC_SYSTEMS_COMMON_H_
#define ANDURIL_SRC_SYSTEMS_COMMON_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/explorer/experiment.h"
#include "src/interp/cluster.h"
#include "src/interp/fault_runtime.h"
#include "src/ir/builder.h"
#include "src/ir/program.h"

namespace anduril::systems {

// One step of a multi-fault ground-truth chain (cascading failures). Site
// naming follows the same conventions as FailureCase::root_site.
struct GroundTruthStep {
  std::string site;
  std::string exception;  // empty for non-exception kinds
  int64_t occurrence = 1;
  interp::FaultKind kind = interp::FaultKind::kException;
};

struct FailureCase {
  std::string id;        // e.g. "zk-2247"
  std::string paper_id;  // e.g. "f1"
  std::string system;    // zookeeper | hdfs | hbase | kafka | cassandra
  std::string title;
  std::string injected_fault;  // exception type name, as in Table 5

  // Ground truth root cause. The site is referenced by its ExternalCall
  // site_name (unique per scenario); occurrence is 1-based. For kCrash/kStall
  // root kinds root_exception is empty: the fault is the node halting or the
  // call wedging, not a thrown exception. Network-rooted kinds (kDrop /
  // kDelay / kDuplicate / kPartition) name a Send site by its
  // "send:<handler>-><target>" prefix instead.
  std::string root_site;
  std::string root_exception;
  int64_t root_occurrence = 1;
  interp::FaultKind root_kind = interp::FaultKind::kException;

  // Cascading cases: an *ordered* ground-truth fault chain. When non-empty,
  // the production failure is reproduced by injecting every step of the
  // chain in one run (earlier steps pinned, the last step windowed), and the
  // root_* fields above must describe the FINAL step. BuildCase verifies the
  // chain-only property: the full chain satisfies the oracle while each
  // individual step alone does not.
  std::vector<GroundTruthStep> root_chain;

  uint64_t failure_seed = 9001;  // "production" run seed
  uint64_t explore_seed = 1;     // base seed for exploration runs

  std::function<void(ir::Program*)> build;
  std::function<interp::ClusterSpec(ir::Program*)> workload;
  // Optional distinct workload for the production failure run (defaults to
  // `workload`); lets cases add realistic failure-only log noise.
  std::function<interp::ClusterSpec(ir::Program*)> failure_workload;
  explorer::Oracle oracle;
};

// A case instantiated and ready to explore.
struct BuiltCase {
  std::unique_ptr<ir::Program> program;
  interp::ClusterSpec cluster;          // exploration workload
  interp::ClusterSpec failure_cluster;  // production workload
  interp::InjectionCandidate ground_truth;
  // Resolved root_chain (empty for single-fault cases). When non-empty, the
  // last entry equals ground_truth.
  std::vector<interp::InjectionCandidate> ground_truth_chain;
  std::string failure_log_text;
  explorer::ExperimentSpec spec;  // points at program/cluster above
};

// Builds the program, resolves the ground truth, generates the failure log
// by injecting the ground truth under failure_seed, and CHECKs that the
// oracle holds for that run (and that the workload alone does NOT satisfy
// it).
BuiltCase BuildCase(const FailureCase& failure_case, bool verify = true);

// Resolves an ExternalCall fault site by its site_name. CHECK-fails if the
// name is missing or ambiguous.
ir::FaultSiteId FindSiteByName(const ir::Program& program, const std::string& site_name);

// Runs one simulation of the case's cluster with an optional single
// injection window and optional pinned (unconditional) faults; used by
// BuildCase and by tests.
interp::RunResult RunOnce(const ir::Program& program, const interp::ClusterSpec& cluster,
                          uint64_t seed,
                          const std::vector<interp::InjectionCandidate>& window = {},
                          const std::vector<interp::InjectionCandidate>& pinned = {});

// Candidate-space requirements of a case, derived from the root kind and
// every chain-step kind. Tests and tools use these to set
// ExplorerOptions::crash_stall_candidates / ::network_candidates.
bool NeedsCrashStallCandidates(const FailureCase& failure_case);
bool NeedsNetworkCandidates(const FailureCase& failure_case);

// Registers the standard exception hierarchy every system uses.
void RegisterStandardExceptions(ir::Program* program);

// Adds `services` looping background services named "<prefix>.svc<i>", each
// executing `sites_per_service` external calls per round inside a tolerant
// try/catch that logs transient failures. Their round budget is the node
// variable "<prefix>Rounds" (set via StartNoisyServices), scaled by the
// current workload scale — so the production failure run emits *more* of the
// same WARN templates than exploration runs, which is exactly what turns
// them into the paper's noisy relevant observables (§5.1).
void AddNoisyServices(ir::Program* program, const std::string& prefix, int services,
                      int sites_per_service);
void StartNoisyServices(interp::ClusterSpec* cluster, ir::Program* program,
                        const std::string& prefix, const std::string& node, int services,
                        int rounds);

// Scale of the workload being constructed: 1 for exploration workloads, 2
// for the production failure run (BuildCase sets this around the workload
// callbacks). System cluster builders multiply their background-noise round
// budgets by it.
int CurrentWorkloadScale();

// Adds `methods` cold methods named "<prefix>.mod<i>" that are never called
// by any workload: realistic dead weight that inflates the *total* static
// fault-site count without touching the causal graph (paper Table 1: Total
// >> Inferred).
void AddColdModule(ir::Program* program, const std::string& prefix, int methods,
                   int sites_per_method);

// All 22 evaluated failure cases, f1..f22.
const std::vector<FailureCase>& AllCases();

// Failure cases whose root cause is a crash or stall fault rather than a
// thrown exception (kept out of AllCases: the paper's Table 5 set stays
// exactly 22). Searches over these need
// ExplorerOptions::crash_stall_candidates = true.
const std::vector<FailureCase>& CrashStallCases();

// Failure cases whose root cause is a message-layer fault (drop, delay,
// duplicate, or partition) rather than a thrown exception (also kept out of
// AllCases). Searches over these need
// ExplorerOptions::network_candidates = true.
const std::vector<FailureCase>& NetworkCases();

// Cascading-failure scenarios: each is reproduced only by an ordered
// *sequence* of faults (root_chain), never by any single injection — the
// later faults strike code paths that only execute while the earlier
// degradation is live. Searches over these need chain mode
// (explorer::ChainExplorer) plus whatever candidate kinds the chain uses
// (see NeedsCrashStallCandidates / NeedsNetworkCandidates).
const std::vector<FailureCase>& CascadeCases();

// Storm-scale scenarios (also kept out of AllCases): the same single-fault
// search problem as the Table 5 set, but with candidate spaces of ~10⁵
// dynamic fault instances, sized so blind / FATE-style / CrashTuner-style
// baselines exhaust a 150-round budget while the feedback search still
// reproduces (EXPERIMENTS.md Table 2; stress input for the incremental
// priority engine).
const std::vector<FailureCase>& StormCases();

// Lookup by id ("zk-2247") or paper id ("f1") across AllCases,
// CrashStallCases, NetworkCases, and CascadeCases. Returns nullptr if
// unknown.
const FailureCase* FindCase(const std::string& id);

// Per-system registration functions (defined in the system modules).
void RegisterZooKeeperCases(std::vector<FailureCase>* cases);
void RegisterHdfsCases(std::vector<FailureCase>* cases);
void RegisterHBaseCases(std::vector<FailureCase>* cases);
void RegisterKafkaCases(std::vector<FailureCase>* cases);
void RegisterCassandraCases(std::vector<FailureCase>* cases);
// Crash/stall-rooted scenarios (defined in the system extras modules).
void RegisterZooKeeperCrashCases(std::vector<FailureCase>* cases);
void RegisterHdfsStallCases(std::vector<FailureCase>* cases);
// Network-rooted scenarios (drop/delay/duplicate/partition).
void RegisterZooKeeperNetworkCases(std::vector<FailureCase>* cases);
void RegisterHdfsNetworkCases(std::vector<FailureCase>* cases);
// Cascading fault-chain scenarios (defined in cascade.cc).
void RegisterCascadeCases(std::vector<FailureCase>* cases);
// Storm-scale scenarios (defined in storm.cc).
void RegisterStormCases(std::vector<FailureCase>* cases);

}  // namespace anduril::systems

#endif  // ANDURIL_SRC_SYSTEMS_COMMON_H_
