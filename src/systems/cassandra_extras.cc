// Cassandra background subsystems: hinted handoff delivery, read repair,
// anti-entropy merkle rounds, and commitlog segment recycling.

#include "src/systems/extras.h"

#include "src/ir/builder.h"
#include "src/systems/common.h"

namespace anduril::systems {
namespace {

using ir::Expr;
using ir::LogLevel;
using ir::MethodBuilder;
using ir::Program;

// Hinted handoff: hints accumulate for a down replica and are replayed when
// it comes back; failed deliveries re-queue the hint.
void BuildHintedHandoff(Program* p) {
  {
    MethodBuilder b(p, "cas.hints.deliver_one");
    b.If(b.Gt("hintsPending", 0), [&] {
      b.TryCatch(
          [&] {
            b.External("cas.hints.send_hint", {"SocketException"}, /*transient_every_n=*/8);
            b.Assign("hintsPending", b.Minus("hintsPending", 1));
            b.Assign("hintsDelivered", b.Plus("hintsDelivered", 1));
            b.Log(LogLevel::kDebug, "cassandra.HintsService", "Hint delivered, {} pending",
                  {b.V("hintsPending")});
          },
          {{"SocketException",
            [&] {
              b.LogExc(LogLevel::kWarn, "cassandra.HintsService",
                       "Hint delivery failed, re-queued");
            }}});
    });
  }
  {
    MethodBuilder b(p, "cas.hints.dispatch_loop");
    b.Assign("hintsPending", Expr::Const(6));
    b.While(ir::Cond::LtVar(b.Var("hintTick"), b.Var("casExtraRounds")), [&] {
      b.Assign("hintTick", b.Plus("hintTick", 1));
      b.Invoke("cas.hints.deliver_one");
      b.Sleep(15);
    });
  }
}

// Read repair: a digest mismatch between replicas triggers a foreground
// repair of the stale replica.
void BuildReadRepair(Program* p) {
  {
    MethodBuilder b(p, "cas.read.coordinate");
    b.TryCatch(
        [&] {
          b.External("cas.read.fetch_data", {"IOException"});
          b.External("cas.read.fetch_digest", {"IOException"}, /*transient_every_n=*/9);
          b.Assign("readsOk", b.Plus("readsOk", 1));
        },
        {{"IOException",
          [&] {
            b.LogExc(LogLevel::kWarn, "cassandra.ReadRepair",
                     "Digest mismatch, repairing stale replica");
            b.TryCatch(
                [&] {
                  b.External("cas.read.write_repair", {"IOException"});
                  b.Assign("readRepairs", b.Plus("readRepairs", 1));
                },
                {{"IOException",
                  [&] {
                    b.LogExc(LogLevel::kWarn, "cassandra.ReadRepair",
                             "Foreground repair failed, hint stored");
                    b.Assign("hintsPending", b.Plus("hintsPending", 1));
                  }}});
          }}});
  }
  {
    MethodBuilder b(p, "cas.read.workload_loop");
    b.While(ir::Cond::LtVar(b.Var("readTick"), b.Var("casExtraRounds")), [&] {
      b.Assign("readTick", b.Plus("readTick", 1));
      b.Invoke("cas.read.coordinate");
      b.Sleep(13);
    });
  }
}

// Anti-entropy: periodic merkle-tree comparison between neighbors, streaming
// the differing ranges.
void BuildAntiEntropy(Program* p) {
  {
    MethodBuilder b(p, "cas.ae.merkle_round");
    b.TryCatch(
        [&] {
          b.External("cas.ae.build_merkle", {"IOException"});
          b.External("cas.ae.compare_trees", {"IOException"}, /*transient_every_n=*/11);
          b.Assign("merkleRounds", b.Plus("merkleRounds", 1));
          b.Log(LogLevel::kDebug, "cassandra.AntiEntropy", "Merkle round {} in sync",
                {b.V("merkleRounds")});
        },
        {{"IOException",
          [&] {
            b.LogExc(LogLevel::kWarn, "cassandra.AntiEntropy",
                     "Tree comparison failed, will stream ranges");
            b.TryCatch(
                [&] {
                  b.External("cas.ae.stream_range", {"IOException"});
                  b.Assign("rangesStreamed", b.Plus("rangesStreamed", 1));
                },
                {{"IOException",
                  [&] {
                    b.LogExc(LogLevel::kWarn, "cassandra.AntiEntropy",
                             "Range streaming failed, deferred");
                  }}});
          }}});
  }
  {
    MethodBuilder b(p, "cas.ae.loop");
    b.While(ir::Cond::LtVar(b.Var("aeTick"), b.Var("casExtraRounds")), [&] {
      b.Assign("aeTick", b.Plus("aeTick", 1));
      b.Invoke("cas.ae.merkle_round");
      b.Sleep(28);
    });
  }
}

// Commitlog recycler: archives full segments and reuses their buffers.
void BuildCommitlogRecycler(Program* p) {
  {
    MethodBuilder b(p, "cas.commitlog.recycle_loop");
    b.While(ir::Cond::LtVar(b.Var("clogTick"), b.Var("casExtraRounds")), [&] {
      b.Assign("clogTick", b.Plus("clogTick", 1));
      b.TryCatch(
          [&] {
            b.External("cas.commitlog.sync_segment", {"IOException"}, /*transient_every_n=*/14);
            b.External("cas.commitlog.recycle_segment", {"IOException"});
            b.Assign("segmentsRecycled", b.Plus("segmentsRecycled", 1));
          },
          {{"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "cassandra.CommitLog", "Segment sync postponed");
            }}});
      b.Sleep(25);
    });
  }
}

}  // namespace

void BuildCassandraExtras(Program* p) {
  BuildHintedHandoff(p);
  BuildReadRepair(p);
  BuildAntiEntropy(p);
  BuildCommitlogRecycler(p);
}

void StartCassandraExtras(interp::ClusterSpec* cluster, ir::Program* p) {
  int rounds = 6 * CurrentWorkloadScale();
  cluster->AddTask("cas1", "HintsDispatcher", p->FindMethod("cas.hints.dispatch_loop"), 6);
  cluster->AddTask("cas2", "ReadStage", p->FindMethod("cas.read.workload_loop"), 3);
  cluster->AddTask("cas3", "AntiEntropyStage", p->FindMethod("cas.ae.loop"), 9);
  cluster->AddTask("cas1", "CommitLogRecycler", p->FindMethod("cas.commitlog.recycle_loop"),
                   12);
  for (const char* node : {"cas1", "cas2", "cas3"}) {
    cluster->SetVar(node, p->InternVar("casExtraRounds"), rounds);
  }
}

}  // namespace anduril::systems
