// Simulated HBase and its six evaluated failures:
//   f12 HB-18137: empty WAL file causes replication to get stuck
//   f13 HB-19608: interrupted procedure mistakenly leaves a failed state flag
//   f14 HB-19876: exception converting a pb mutation corrupts the CellScanner
//   f15 HB-20583: failure during log splitting resubmits the wrong task
//   f16 HB-16144: replication queue lock lives forever when its owner aborts
//   f17 HB-25905: broken HDFS stream wedges the WAL at waitForSafePoint
//                 (the paper's motivating example, Figures 1 and 6)
//
// Topology: master + two regionservers + an HDFS namenode substrate + a
// ZooKeeper substrate (lock service) + client. The base provides the put
// path, the AsyncFSWAL state machine (append/consume/sync with a recoverable
// HDFS stream and batch-limited retry — the f17 mechanics), replication,
// procedures, log splitting, and noisy chores (compaction, balancer,
// DFSClient receiver) whose tolerated faults make logs noisy.

#include "src/systems/common.h"

#include "src/systems/extras.h"

#include "src/util/check.h"

namespace anduril::systems {
namespace {

using ir::Expr;
using ir::LogLevel;
using ir::MethodBuilder;
using ir::Program;

constexpr int kPuts = 24;          // client puts per run
constexpr int kWalBatch = 6;       // WAL sync batch size
constexpr int kResyncValve = 10;   // full-resync safety valve threshold

void BuildWal(Program* p) {
  // Append: one WAL entry per put (runs on the AsyncFSWAL consumer thread).
  {
    MethodBuilder b(p, "hbase.wal.append");
    b.Assign("writerLen", b.Plus("writerLen", 1));
    b.Assign("unackedAppends", b.Plus("unackedAppends", 1));
    b.Log(LogLevel::kDebug, "wal.AsyncFSWAL", "Appended entry {} to WAL",
          {b.V("writerLen")});
    b.Invoke("hbase.wal.consume");
  }
  // The consumer (paper Figure 1). The hole: writerLen == lenAtLastSync with
  // unackedAppends > 0 makes it do nothing, forever.
  {
    MethodBuilder b(p, "hbase.wal.consume");
    b.If(b.Eq("streamBroken", 1), [&] {
      b.If(b.Eq("recoverInFlight", 0), [&] {
        b.Assign("recoverInFlight", Expr::Const(1));
        b.Log(LogLevel::kWarn, "wal.AsyncFSWAL",
              "WAL stream to HDFS broken, creating new writer");
        b.Send("hbase.hdfs.create_writer", "hdfsnn", ir::SendOpts{.latency_ms = 60});
      });
      b.Return();
    });
    b.If(
        b.GtVar("writerLen", "lenAtLastSync"),
        [&] { b.Invoke("hbase.wal.sync"); },
        [&] {
          b.If(b.Eq("unackedAppends", 0), [&] {
            b.If(b.Eq("markerPending", 1), [&] {
              b.Assign("markerPending", Expr::Const(0));
              b.Assign("markerAcked", Expr::Const(1));
              b.Signal("markerAcked");
              b.Log(LogLevel::kInfo, "wal.AsyncFSWAL", "Flush marker synced");
            });
            b.Assign("readyForRolling", Expr::Const(1));
            b.Signal("readyForRolling");
          });
        });
  }
  {
    MethodBuilder b(p, "hbase.wal.sync");
    // Length bookkeeping happens up front: entries handed to the stream are
    // counted as synced even if their acks never arrive (the HB-25905 state).
    b.Assign("lenAtLastSync", b.V("writerLen"));
    b.Invoke("hbase.wal.sync_batch");
  }
  {
    MethodBuilder b(p, "hbase.wal.sync_batch");
    b.Assign("batchCount", Expr::Const(0));
    b.While(b.Lt("batchCount", kWalBatch), [&] {
      b.Assign("batchCount", b.Plus("batchCount", 1));
      b.If(b.Eq("unackedAppends", 0), [&] { b.Break(); });
      b.TryCatch(
          [&] {
            b.External("hbase.wal.write_chunk", {"IOException"});
            b.External("hbase.wal.read_ack", {"IOException"});
            b.Assign("unackedAppends", b.Minus("unackedAppends", 1));
            b.Assign("ackedEntries", b.Plus("ackedEntries", 1));
            b.Log(LogLevel::kDebug, "wal.AsyncFSWAL", "WAL entry acked, {} unacked remain",
                  {b.V("unackedAppends")});
          },
          {{"IOException",
            [&] {
              b.Log(LogLevel::kWarn, "wal.AsyncFSWAL",
                       "Failed to write WAL entry to HDFS stream");
              b.Assign("streamBroken", Expr::Const(1));
              b.Break();
            }}});
    });
    b.If(b.Eq("unackedAppends", 0), [&] {
      b.If(b.Eq("markerPending", 1), [&] {
        b.Assign("markerPending", Expr::Const(0));
        b.Assign("markerAcked", Expr::Const(1));
        b.Signal("markerAcked");
        b.Log(LogLevel::kInfo, "wal.AsyncFSWAL", "Flush marker synced");
      });
    });
  }
  {
    MethodBuilder b(p, "hbase.hdfs.create_writer");
    b.TryCatch(
        [&] {
          b.External("hbase.hdfs.nn_create_file", {"IOException"});
          b.Log(LogLevel::kInfo, "hdfs.namenode", "Created new WAL file for regionserver");
        },
        {{"IOException",
          [&] {
            b.LogExc(LogLevel::kWarn, "hdfs.namenode", "WAL file creation hiccup, retrying");
          }}});
    b.Send("hbase.wal.on_writer_ready", "rs1",
           ir::SendOpts{.handler_thread = "AsyncFSWAL", .latency_ms = 20});
  }
  {
    MethodBuilder b(p, "hbase.wal.on_writer_ready");
    b.Assign("streamBroken", Expr::Const(0));
    b.Assign("recoverInFlight", Expr::Const(0));
    b.Assign("walRolls", b.Plus("walRolls", 1));
    b.Log(LogLevel::kInfo, "wal.AsyncFSWAL", "New WAL writer ready, re-appending {} entries",
          {b.V("unackedAppends")});
    // The re-appended entries are counted into the synced length immediately
    // (HB-25905's fatal bookkeeping)...
    b.Assign("lenAtLastSync", b.V("writerLen"));
    b.If(
        b.Gt("unackedAppends", kResyncValve),
        [&] {
          // ...but a large backlog trips a safety valve that fully resyncs.
          b.Log(LogLevel::kWarn, "wal.AsyncFSWAL",
                "Too many unacked appends, forcing full resync");
          b.Invoke("hbase.wal.full_resync");
        },
        [&] {
          // A small backlog is retried one batch at a time; further batches
          // only happen on future consume() calls — which never come if the
          // workload has quiesced. That leftover is the wedge.
          b.Invoke("hbase.wal.sync_batch");
        });
  }
  {
    MethodBuilder b(p, "hbase.wal.full_resync");
    b.While(b.Gt("unackedAppends", 0), [&] {
      b.TryCatch(
          [&] {
            b.External("hbase.wal.resync_entry", {"IOException"});
            b.Assign("unackedAppends", b.Minus("unackedAppends", 1));
          },
          {{"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "wal.AsyncFSWAL", "Full resync hit stream error");
              b.Assign("streamBroken", Expr::Const(1));
              b.Break();
            }}});
    });
    b.Invoke("hbase.wal.consume");
  }
  // Log roller: requests a safe point and waits — forever, in the bug.
  {
    MethodBuilder b(p, "hbase.rs.roll_wal");
    b.Log(LogLevel::kInfo, "wal.LogRoller", "Rolling WAL writer, waiting for safe point");
    b.Send("hbase.wal.consume", "rs1", ir::SendOpts{.handler_thread = "AsyncFSWAL"});
    b.Await(b.Eq("readyForRolling", 1));
    b.Assign("readyForRolling", Expr::Const(0));
    b.Log(LogLevel::kInfo, "wal.LogRoller", "WAL rolled, safe point reached");
  }
  // MemStore flusher: appends a flush marker and waits for its sync.
  {
    MethodBuilder b(p, "hbase.rs.flush_region");
    b.Log(LogLevel::kInfo, "regionserver.HRegion", "Flushing region, appending flush marker");
    b.Assign("markerPending", Expr::Const(1));
    b.Send("hbase.wal.consume", "rs1", ir::SendOpts{.handler_thread = "AsyncFSWAL"});
    b.TryCatch(
        [&] {
          b.Await(b.Eq("markerAcked", 1), /*timeout_ms=*/15000, "TimeoutIOException");
          b.Log(LogLevel::kInfo, "regionserver.HRegion", "Region flush completed");
        },
        {{"TimeoutIOException",
          [&] {
            b.LogExc(LogLevel::kWarn, "regionserver.HRegion", "Failed to get sync result");
            b.Log(LogLevel::kError, "regionserver.HRegion",
                  "Region flush failed, memstore not persisted");
          }}});
  }
}

void BuildPutPath(Program* p) {
  {
    MethodBuilder b(p, "hbase.rs.handle_put");
    b.TryCatch(
        [&] {
          b.External("hbase.rs.check_quota", {"IOException"}, /*transient_every_n=*/41);
          b.External("hbase.rs.memstore_write", {"IOException"});
          b.Assign("putsServed", b.Plus("putsServed", 1));
          b.Send("hbase.wal.append", "rs1", ir::SendOpts{.handler_thread = "AsyncFSWAL"});
        },
        {{"IOException",
          [&] { b.LogExc(LogLevel::kWarn, "regionserver.RSRpcServices", "Put failed"); }}});
  }
  {
    MethodBuilder b(p, "hbase.client.put_workload");
    b.While(b.Lt("putsSent", kPuts), [&] {
      b.Assign("putsSent", b.Plus("putsSent", 1));
      b.Send("hbase.rs.handle_put", "rs1",
             ir::SendOpts{.payload = b.V("putsSent"), .handler_thread = "RpcHandler"});
      b.Sleep(5);
    });
  }
}

void BuildChores(Program* p) {
  // Compaction chore (rs1): tolerated transients, noisy WARNs.
  {
    MethodBuilder b(p, "hbase.rs.compaction_chore");
    b.While(b.LtVar("compactRound", "compactRounds"), [&] {
      b.Assign("compactRound", b.Plus("compactRound", 1));
      b.TryCatch(
          [&] {
            b.External("hbase.compact.select_files", {"IOException"}, /*transient_every_n=*/13);
            b.External("hbase.compact.rewrite", {"IOException"}, /*transient_every_n=*/17);
            b.Log(LogLevel::kDebug, "regionserver.CompactSplit", "Compaction round {} done",
                  {b.V("compactRound")});
          },
          {{"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "regionserver.CompactSplit",
                       "Compaction failed, will retry in next chore");
              b.Invoke("hbase.rs.abort_check");
            }}});
      b.Sleep(18);
    });
  }
  // DFSClient receiver noise on the HDFS substrate node.
  {
    MethodBuilder b(p, "hbase.hdfs.receiver_loop");
    b.While(b.LtVar("recvRound", "recvRounds"), [&] {
      b.Assign("recvRound", b.Plus("recvRound", 1));
      b.TryCatch(
          [&] {
            b.External("hbase.hdfs.receive_block", {"IOException"}, /*transient_every_n=*/7);
          },
          {{"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "hdfs.DFSClient",
                       "Exception in block receiving, recovered by pipeline");
            }}});
      b.Sleep(9);
    });
  }
  // Master balancer chore.
  {
    MethodBuilder b(p, "hbase.master.balancer_chore");
    b.While(b.Lt("balanceRound", 6), [&] {
      b.Assign("balanceRound", b.Plus("balanceRound", 1));
      b.TryCatch(
          [&] {
            b.External("hbase.master.fetch_region_load", {"IOException"},
                       /*transient_every_n=*/11);
            b.Log(LogLevel::kDebug, "master.Balancer", "Balance round {} evaluated",
                  {b.V("balanceRound")});
          },
          {{"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "master.Balancer", "Could not fetch region load");
            }}});
      b.Sleep(35);
    });
  }
}

void BuildAbortAndReplication(Program* p) {
  // Abort helper invoked from many error paths (the HB-16144 ambiguity: the
  // ABORT message is causally reachable from very many fault sites).
  {
    MethodBuilder b(p, "hbase.rs.abort_check");
    b.Assign("faultStrikes", b.Plus("faultStrikes", 1));
    b.If(b.Ge("faultStrikes", 2), [&] { b.Invoke("hbase.rs.abort"); });
  }
  {
    MethodBuilder b(p, "hbase.rs.abort");
    b.If(b.Eq("aborted", 0), [&] {
      b.Assign("aborted", Expr::Const(1));
      b.Log(LogLevel::kError, "regionserver.HRegionServer",
            "***** ABORTING region server: unrecoverable failure *****");
    });
  }

  // Replication source on rs1: claims the queue lock in ZooKeeper, ships
  // edits, releases the lock. Aborting while holding the lock leaks it.
  {
    MethodBuilder b(p, "hbase.zk.acquire_lock");
    b.If(
        b.Eq("lockHolder", 0),
        [&] {
          b.Assign("lockHolder", Expr::Payload());
          b.Log(LogLevel::kInfo, "zookeeper.Lock", "Replication queue lock granted to rs{}",
                {Expr::Payload()});
          b.If(b.Eq("lockHolder", 1), [&] {
            b.Send("hbase.repl.lock_granted", "rs1");
          });
          b.If(b.Eq("lockHolder", 2), [&] {
            b.Send("hbase.repl2.lock_granted", "rs2");
          });
        },
        [&] {
          b.Log(LogLevel::kWarn, "zookeeper.Lock", "Lock already held by rs{}",
                {b.V("lockHolder")});
          b.Send("hbase.repl2.lock_denied", "rs2");
        });
  }
  {
    MethodBuilder b(p, "hbase.zk.release_lock");
    b.Assign("lockHolder", Expr::Const(0));
    b.Log(LogLevel::kInfo, "zookeeper.Lock", "Replication queue lock released");
  }
  {
    MethodBuilder b(p, "hbase.repl.lock_granted");
    b.Assign("replLockHeld", Expr::Const(1));
    b.Signal("replLockHeld");
  }
  {
    MethodBuilder b(p, "hbase.repl.source_run");
    b.Send("hbase.zk.acquire_lock", "zk", ir::SendOpts{.payload = Expr::Const(1)});
    b.Await(b.Eq("replLockHeld", 1), /*timeout_ms=*/10000);
    b.If(b.Eq("replLockHeld", 0), [&] { b.Return(); });
    b.While(b.Lt("edited", 8), [&] {
      b.Assign("edited", b.Plus("edited", 1));
      b.TryCatch(
          [&] {
            b.External("hbase.repl.ship_edits", {"IOException"});
            b.Log(LogLevel::kDebug, "replication.Source", "Shipped edit batch {}",
                  {b.V("edited")});
          },
          {{"IOException",
            [&] {
              // BUG (HB-16144): unknown shipping failure aborts the region
              // server while it still holds the queue lock.
              b.Log(LogLevel::kWarn, "replication.Source",
                       "Failed shipping edits, aborting source");
              b.Invoke("hbase.rs.abort");
              b.Return();
            }}});
      b.Sleep(8);
    });
    b.Send("hbase.zk.release_lock", "zk");
    b.Log(LogLevel::kInfo, "replication.Source", "Replication source finished cleanly");
  }
  // rs2 tries to claim the queue after rs1 is done (or dead).
  {
    MethodBuilder b(p, "hbase.repl2.lock_granted");
    b.Assign("claimGranted", Expr::Const(1));
    b.Signal("claimGranted");
  }
  {
    MethodBuilder b(p, "hbase.repl2.lock_denied");
    b.Assign("claimDenied", b.Plus("claimDenied", 1));
    b.Signal("claimDenied");
  }
  {
    MethodBuilder b(p, "hbase.repl2.claim_queue");
    b.While(b.Lt("claimAttempts", 5), [&] {
      b.Assign("claimAttempts", b.Plus("claimAttempts", 1));
      b.Send("hbase.zk.acquire_lock", "zk", ir::SendOpts{.payload = Expr::Const(2)});
      b.Sleep(40);
      b.If(b.Eq("claimGranted", 1), [&] {
        b.Log(LogLevel::kInfo, "replication.Claim", "Claimed replication queue, syncing");
        b.Break();
      });
      b.Log(LogLevel::kWarn, "replication.Claim",
            "Failed to claim replication queue, attempt {}", {b.V("claimAttempts")});
    });
    b.If(b.Eq("claimGranted", 0), [&] {
      b.Log(LogLevel::kError, "replication.Claim",
            "Replication queue can never be claimed, synchronization stopped");
    });
  }

  // Replication WAL reader (f12): a persistently-empty WAL wedges the reader.
  {
    MethodBuilder b(p, "hbase.repl.read_wals");
    b.While(b.Lt("walsRead", 6), [&] {
      b.TryCatch(
          [&] {
            b.External("hbase.repl.open_reader", {"IOException"}, /*transient_every_n=*/0);
            b.If(b.Eq("emptyWal", 1), [&] {
              // The zero-length WAL never grows; retrying cannot help.
              b.Assign("emptyRetries", b.Plus("emptyRetries", 1));
              b.Log(LogLevel::kWarn, "replication.WALReader",
                    "WAL file is empty, retry {} waiting for data", {b.V("emptyRetries")});
              b.If(b.Ge("emptyRetries", 6), [&] {
                b.Log(LogLevel::kError, "replication.WALReader",
                      "Replication is stuck on an empty WAL file");
                b.Return();
              });
              b.Sleep(20);
              b.Return();  // re-queued by the chore; modelled by the loop below
            });
            b.External("hbase.repl.read_entry", {"EOFException", "IOException"});
            b.Assign("walsRead", b.Plus("walsRead", 1));
            b.Log(LogLevel::kDebug, "replication.WALReader", "Replicated WAL {} entries",
                  {b.V("walsRead")});
          },
          {{"EOFException",
            [&] {
              // BUG (HB-18137): the 0-length WAL is treated as "wait for
              // more data" instead of being skipped.
              b.LogExc(LogLevel::kWarn, "replication.WALReader",
                       "EOF reading WAL, assuming in-progress file");
              b.Assign("emptyWal", Expr::Const(1));
            }},
           {"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "replication.WALReader", "WAL read error, retrying");
            }}});
      b.Sleep(10);
    });
  }
  {
    MethodBuilder b(p, "hbase.repl.reader_chore");
    b.While(b.Lt("readerChoreRound", 10), [&] {
      b.Assign("readerChoreRound", b.Plus("readerChoreRound", 1));
      b.Invoke("hbase.repl.read_wals");
      b.If(b.Ge("walsRead", 6), [&] {
        b.Log(LogLevel::kInfo, "replication.WALReader", "All WALs replicated");
        b.Break();
      });
      b.Sleep(15);
    });
  }
}

void BuildProceduresAndSplits(Program* p) {
  // Procedure executor (f13).
  {
    MethodBuilder b(p, "hbase.master.run_procedure");
    b.Log(LogLevel::kInfo, "procedure.ProcedureExecutor", "Starting procedure pid={}",
          {Expr::Payload()});
    b.While(b.Lt("procStep", 5), [&] {
      b.Assign("procStep", b.Plus("procStep", 1));
      b.TryCatch(
          [&] {
            b.External("hbase.proc.exec_step", {"InterruptedException", "IOException"});
            b.Log(LogLevel::kDebug, "procedure.ProcedureExecutor", "Executed step {}",
                  {b.V("procStep")});
          },
          {{"InterruptedException",
            [&] {
              // BUG (HB-19608): the interrupt marks the procedure failed but
              // execution continues and completes.
              b.Log(LogLevel::kWarn, "procedure.ProcedureExecutor",
                       "Procedure interrupted mid-step");
              b.Assign("procFailed", Expr::Const(1));
            }},
           {"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "procedure.ProcedureExecutor",
                       "Step failed, will be retried");
            }}});
    });
    b.If(
        b.Eq("procFailed", 1),
        [&] {
          b.Log(LogLevel::kError, "procedure.ProcedureExecutor",
                "Procedure ended in FAILED state despite completing all steps");
        },
        [&] {
          b.Log(LogLevel::kInfo, "procedure.ProcedureExecutor", "Procedure finished");
        });
  }

  // Multi-mutation request handling (f14, paper Figure 4).
  {
    MethodBuilder b(p, "hbase.rs.add_result");
    b.Assign("resultsAdded", b.Plus("resultsAdded", 1));
    b.Log(LogLevel::kDebug, "regionserver.RSRpcServices", "Added result {} to response",
          {b.V("resultsAdded")});
  }
  {
    MethodBuilder b(p, "hbase.rs.handle_multi");
    b.While(b.Lt("mutIndex", 8), [&] {
      b.Assign("mutIndex", b.Plus("mutIndex", 1));
      b.If(b.Eq("scannerSkew", 1), [&] {
        b.Log(LogLevel::kError, "regionserver.RSRpcServices",
              "CellScanner position out of sync, multi request corrupted");
        b.Return();
      });
      b.TryCatch(
          [&] {
            b.External("hbase.rs.pb_to_put", {"IOException"});
            b.Assign("cellsProcessed", b.Plus("cellsProcessed", 1));
            b.Invoke("hbase.rs.add_result");
          },
          {{"IOException",
            [&] {
              b.Log(LogLevel::kWarn, "regionserver.RSRpcServices",
                       "Failed to convert pb mutation, skipping action");
              // BUG (HB-19876): the scanner was already advanced; every
              // subsequent mutation reads shifted cells.
              b.Assign("scannerSkew", Expr::Const(1));
              b.Invoke("hbase.rs.add_result");
            }}});
    });
  }
  // Extra callers of add_result (the "called in 30+ locations" ambiguity).
  for (int i = 0; i < 6; ++i) {
    MethodBuilder b(p, "hbase.rs.handle_batch_" + std::to_string(i));
    b.TryCatch(
        [&] {
          b.External("hbase.rs.batch_op_" + std::to_string(i), {"IOException"},
                     /*transient_every_n=*/0);
          b.Invoke("hbase.rs.add_result");
        },
        {{"IOException",
          [&] {
            b.LogExc(LogLevel::kWarn, "regionserver.RSRpcServices", "Batch op failed");
            b.Invoke("hbase.rs.add_result");
          }}});
  }

  // Log splitting (f15).
  {
    MethodBuilder b(p, "hbase.rs.split_task");
    b.TryCatch(
        [&] {
          b.External("hbase.split.read_wal", {"IOException"}, /*transient_every_n=*/4);
          b.External("hbase.split.write_recovered", {"IOException"});
          b.Send("hbase.master.split_done", "master", ir::SendOpts{.payload = Expr::Payload()});
          b.Log(LogLevel::kDebug, "split.SplitLogWorker", "Split task {} done",
                {Expr::Payload()});
        },
        {{"IOException",
          [&] {
            b.Log(LogLevel::kWarn, "split.SplitLogWorker", "Split task failed");
            b.Send("hbase.master.split_failed", "master",
                   ir::SendOpts{.payload = Expr::Payload()});
          }}});
  }
  {
    MethodBuilder b(p, "hbase.master.split_done");
    b.Assign("splitTaskId", Expr::Payload());
    b.Assign("splitSum", Expr::AddVar(b.Var("splitSum"), b.Var("splitTaskId")));
    b.Log(LogLevel::kInfo, "master.SplitLogManager", "Split task {} reported done",
          {Expr::Payload()});
  }
  {
    MethodBuilder b(p, "hbase.master.split_failed");
    // BUG (HB-20583): resubmits the *previous* failed task id, then records
    // the new one (stale-read resubmission).
    b.Log(LogLevel::kWarn, "master.SplitLogManager", "Split task failed, resubmitting");
    b.If(b.Gt("lastFailedTask", 0), [&] {
      b.Send("hbase.rs.split_task", "rs2",
             ir::SendOpts{.payload = b.V("lastFailedTask"), .handler_thread = "SplitWorker"});
    });
    b.If(b.Eq("lastFailedTask", 0), [&] {
      b.Assign("lastFailedTask", Expr::Payload());
      b.Send("hbase.rs.split_task", "rs2",
             ir::SendOpts{.payload = Expr::Payload(), .handler_thread = "SplitWorker"});
      b.Return();
    });
    b.Assign("lastFailedTask", Expr::Payload());
  }
  {
    MethodBuilder b(p, "hbase.master.split_logs");
    b.Log(LogLevel::kInfo, "master.SplitLogManager", "Splitting {} WALs of dead server",
          {Expr::Const(6)});
    b.While(b.Lt("splitSubmitted", 6), [&] {
      b.Assign("splitSubmitted", b.Plus("splitSubmitted", 1));
      b.Send("hbase.rs.split_task", "rs2",
             ir::SendOpts{.payload = b.V("splitSubmitted"), .handler_thread = "SplitWorker"});
      b.Sleep(12);
    });
    b.Sleep(300);
    b.If(
        b.Eq("splitSum", 21),  // 1+2+...+6
        [&] { b.Log(LogLevel::kInfo, "master.SplitLogManager", "All split tasks completed"); },
        [&] {
          b.Log(LogLevel::kError, "master.SplitLogManager",
                "Log splitting incomplete, recovered edits missing (checksum {})",
                {b.V("splitSum")});
        });
  }
}

void BuildHBaseBase(Program* p) {
  BuildWal(p);
  BuildPutPath(p);
  BuildChores(p);
  BuildAbortAndReplication(p);
  BuildProceduresAndSplits(p);
  BuildHBaseExtras(p);
  AddNoisyServices(p, "hbase.ipc", 10, 5);
  AddNoisyServices(p, "hbase.memstore", 8, 5);
  AddColdModule(p, "hbase.canary", 16, 8);
  AddColdModule(p, "hbase.thrift", 14, 8);
  AddColdModule(p, "hbase.rest", 12, 7);
  AddColdModule(p, "hbase.backup", 15, 9);
}

interp::ClusterSpec BaseCluster(Program* p, int compact_rounds, int recv_rounds) {
  interp::ClusterSpec cluster;
  for (const char* node : {"master", "rs1", "rs2", "hdfsnn", "zk", "client"}) {
    cluster.AddNode(node);
  }
  cluster.AddTask("rs1", "CompactionChore", p->FindMethod("hbase.rs.compaction_chore"), 0);
  cluster.AddTask("hdfsnn", "BlockReceiver", p->FindMethod("hbase.hdfs.receiver_loop"), 2);
  cluster.AddTask("master", "BalancerChore", p->FindMethod("hbase.master.balancer_chore"), 4);
  cluster.SetVar("rs1", p->InternVar("compactRounds"), compact_rounds);
  StartNoisyServices(&cluster, p, "hbase.ipc", "rs2", 10, 8);
  StartHBaseExtras(&cluster, p);
  StartNoisyServices(&cluster, p, "hbase.memstore", "master", 8, 7);
  cluster.SetVar("hdfsnn", p->InternVar("recvRounds"), recv_rounds);
  return cluster;
}

// --- Cases ---------------------------------------------------------------------

void RegisterHb18137(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "hb-18137";
  c.paper_id = "f12";
  c.system = "hbase";
  c.title = "Empty WAL file causes replication to get stuck";
  c.injected_fault = "IOException";
  c.root_site = "hbase.repl.read_entry";
  c.root_exception = "EOFException";
  c.root_occurrence = 1;
  c.build = BuildHBaseBase;
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p, 10, 15);
    cluster.AddTask("rs2", "ReplicationReader", p->FindMethod("hbase.repl.reader_chore"), 10);
    return cluster;
  };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kError,
                                "Replication is stuck on an empty WAL file") &&
           run.HasLogContaining(ir::LogLevel::kWarn, "EOF reading WAL");
  };
  cases->push_back(std::move(c));
}

void RegisterHb19608(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "hb-19608";
  c.paper_id = "f13";
  c.system = "hbase";
  c.title = "Interrupted procedure mistakenly causes a failed state flag";
  c.injected_fault = "InterruptedException";
  c.root_site = "hbase.proc.exec_step";
  c.root_exception = "InterruptedException";
  c.root_occurrence = 3;
  c.build = BuildHBaseBase;
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p, 10, 15);
    cluster.AddTask("master", "ProcExecutor", p->FindMethod("hbase.master.run_procedure"), 8,
                    /*payload=*/77);
    return cluster;
  };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kError,
                                "Procedure ended in FAILED state despite completing") &&
           run.HasLogContaining(ir::LogLevel::kWarn, "Procedure interrupted mid-step");
  };
  cases->push_back(std::move(c));
}

void RegisterHb19876(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "hb-19876";
  c.paper_id = "f14";
  c.system = "hbase";
  c.title = "Exception converting pb mutation messes up the CellScanner";
  c.injected_fault = "IOException";
  c.root_site = "hbase.rs.pb_to_put";
  c.root_exception = "IOException";
  c.root_occurrence = 3;
  c.build = BuildHBaseBase;
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p, 10, 15);
    cluster.AddTask("rs1", "RpcHandler", p->FindMethod("hbase.rs.handle_multi"), 10);
    return cluster;
  };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kError, "CellScanner position out of sync") &&
           run.HasLogContaining(ir::LogLevel::kWarn, "Failed to convert pb mutation");
  };
  cases->push_back(std::move(c));
}

void RegisterHb20583(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "hb-20583";
  c.paper_id = "f15";
  c.system = "hbase";
  c.title = "Failure during log splitting resubmits another failed task";
  c.injected_fault = "IOException";
  c.root_site = "hbase.split.write_recovered";
  c.root_exception = "IOException";
  c.root_occurrence = 5;
  c.build = BuildHBaseBase;
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p, 10, 15);
    cluster.AddTask("master", "SplitLogManager", p->FindMethod("hbase.master.split_logs"), 10);
    return cluster;
  };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kError, "Log splitting incomplete") &&
           run.CountLogContaining("Split task failed, resubmitting") >= 2;
  };
  cases->push_back(std::move(c));
}

void RegisterHb16144(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "hb-16144";
  c.paper_id = "f16";
  c.system = "hbase";
  c.title = "Replication queue lock lives forever when its owner aborts";
  c.injected_fault = "IOException";
  c.root_site = "hbase.repl.ship_edits";
  c.root_exception = "IOException";
  c.root_occurrence = 4;
  c.build = BuildHBaseBase;
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p, 16, 25);
    cluster.AddTask("client", "PutPump", p->FindMethod("hbase.client.put_workload"), 5);
    cluster.AddTask("rs1", "ReplicationSource", p->FindMethod("hbase.repl.source_run"), 12);
    cluster.AddTask("rs2", "ReplicationClaim", p->FindMethod("hbase.repl2.claim_queue"), 150);
    return cluster;
  };
  c.failure_workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p, 26, 45);  // longer run => noisier log
    cluster.AddTask("client", "PutPump", p->FindMethod("hbase.client.put_workload"), 5);
    cluster.AddTask("rs1", "ReplicationSource", p->FindMethod("hbase.repl.source_run"), 12);
    cluster.AddTask("rs2", "ReplicationClaim", p->FindMethod("hbase.repl2.claim_queue"), 150);
    return cluster;
  };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kError,
                                "Replication queue can never be claimed") &&
           run.HasLogContaining("ABORTING region server");
  };
  cases->push_back(std::move(c));
}

void RegisterHb25905(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "hb-25905";
  c.paper_id = "f17";
  c.system = "hbase";
  c.title = "Broken HDFS stream wedges the WAL at waitForSafePoint";
  c.injected_fault = "IOException";
  c.root_site = "hbase.wal.read_ack";
  c.root_exception = "IOException";
  c.root_occurrence = 16;
  c.build = BuildHBaseBase;
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p, 14, 20);
    cluster.AddTask("client", "PutPump", p->FindMethod("hbase.client.put_workload"), 5);
    cluster.AddTask("rs1", "LogRoller", p->FindMethod("hbase.rs.roll_wal"), 320);
    cluster.AddTask("rs1", "MemStoreFlusher", p->FindMethod("hbase.rs.flush_region"), 420);
    return cluster;
  };
  c.failure_workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p, 26, 40);  // production noise
    cluster.AddTask("client", "PutPump", p->FindMethod("hbase.client.put_workload"), 5);
    cluster.AddTask("rs1", "LogRoller", p->FindMethod("hbase.rs.roll_wal"), 320);
    cluster.AddTask("rs1", "MemStoreFlusher", p->FindMethod("hbase.rs.flush_region"), 420);
    return cluster;
  };
  c.oracle = [](const ir::Program& prog, const interp::RunResult& run) {
    return run.IsThreadStuckIn(prog, "rs1/LogRoller", "hbase.rs.roll_wal") &&
           run.HasLogContaining(ir::LogLevel::kWarn, "Failed to get sync result");
  };
  cases->push_back(std::move(c));
}

}  // namespace

void RegisterHBaseCases(std::vector<FailureCase>* cases) {
  RegisterHb18137(cases);
  RegisterHb19608(cases);
  RegisterHb19876(cases);
  RegisterHb20583(cases);
  RegisterHb16144(cases);
  RegisterHb25905(cases);
}

}  // namespace anduril::systems
