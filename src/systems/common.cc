#include "src/systems/common.h"

#include "src/interp/simulator.h"
#include "src/util/check.h"
#include "src/util/strings.h"

namespace anduril::systems {

void RegisterStandardExceptions(ir::Program* program) {
  program->DefineException("IOException");
  program->DefineException("FileNotFoundException", "IOException");
  program->DefineException("SocketException", "IOException");
  program->DefineException("ConnectException", "SocketException");
  program->DefineException("EOFException", "IOException");
  program->DefineException("TimeoutException");
  program->DefineException("TimeoutIOException", "IOException");
  program->DefineException("InterruptedException");
  program->DefineException("ExecutionException");
  program->DefineException("IllegalStateException");
  program->DefineException("NullPointerException");
  program->DefineException("RuntimeException");
  program->DefineException("KeeperException");
  program->DefineException("ReplicationException");
}

ir::FaultSiteId FindSiteByName(const ir::Program& program, const std::string& site_name) {
  ir::FaultSiteId found = ir::kInvalidId;
  std::string prefix = site_name + "@";
  for (const ir::FaultSite& site : program.fault_sites()) {
    if (StartsWith(site.name, prefix)) {
      ANDURIL_CHECK_EQ(found, ir::kInvalidId) << "ambiguous site name " << site_name;
      found = site.id;
    }
  }
  ANDURIL_CHECK_NE(found, ir::kInvalidId) << "no fault site named " << site_name;
  return found;
}

interp::RunResult RunOnce(const ir::Program& program, const interp::ClusterSpec& cluster,
                          uint64_t seed,
                          const std::vector<interp::InjectionCandidate>& window) {
  interp::FaultRuntime runtime(&program);
  runtime.SetWindow(window);
  interp::Simulator simulator(&program, &cluster, seed, &runtime);
  return simulator.Run();
}

namespace {
int g_workload_scale = 1;
}  // namespace

int CurrentWorkloadScale() { return g_workload_scale; }

void AddNoisyServices(ir::Program* program, const std::string& prefix, int services,
                      int sites_per_service) {
  for (int i = 0; i < services; ++i) {
    ir::MethodBuilder b(program, StrFormat("%s.svc%d", prefix.c_str(), i));
    std::string counter = StrFormat("%sRound%d", prefix.c_str(), i);
    std::string rounds = prefix + "Rounds";
    b.While(b.LtVar(counter, rounds), [&] {
      b.Assign(counter, b.Plus(counter, 1));
      b.TryCatch(
          [&] {
            for (int s = 0; s < sites_per_service; ++s) {
              b.External(StrFormat("%s.svc%d_op%d", prefix.c_str(), i, s), {"IOException"},
                         /*transient_every_n=*/5 + (i * 7 + s * 3) % 11);
            }
            b.Log(ir::LogLevel::kDebug, prefix, StrFormat("service %d round {} ok", i),
                  {b.V(counter)});
          },
          {{"IOException",
            [&] {
              b.LogExc(ir::LogLevel::kWarn, prefix,
                       StrFormat("service %d operation failed, will retry", i));
            }}});
      b.Sleep(10 + i * 3);
    });
  }
}

void StartNoisyServices(interp::ClusterSpec* cluster, ir::Program* program,
                        const std::string& prefix, const std::string& node, int services,
                        int rounds) {
  for (int i = 0; i < services; ++i) {
    ir::MethodId method = program->FindMethod(StrFormat("%s.svc%d", prefix.c_str(), i));
    cluster->AddTask(node, StrFormat("%sWorker%d", prefix.c_str(), i), method, i * 2);
  }
  cluster->SetVar(node, program->InternVar(prefix + "Rounds"),
                  rounds * CurrentWorkloadScale());
}

void AddColdModule(ir::Program* program, const std::string& prefix, int methods,
                   int sites_per_method) {
  for (int m = 0; m < methods; ++m) {
    ir::MethodBuilder builder(program, StrFormat("%s.mod%d", prefix.c_str(), m));
    builder.TryCatch(
        [&] {
          for (int s = 0; s < sites_per_method; ++s) {
            builder.External(StrFormat("%s.op%d_%d", prefix.c_str(), m, s), {"IOException"});
          }
        },
        {{"IOException",
          [&] {
            builder.LogExc(ir::LogLevel::kWarn, prefix + ".maintenance",
                           "maintenance operation failed, will retry");
          }}});
  }
}

BuiltCase BuildCase(const FailureCase& failure_case, bool verify) {
  BuiltCase built;
  built.program = std::make_unique<ir::Program>();
  RegisterStandardExceptions(built.program.get());
  failure_case.build(built.program.get());
  built.program->Finalize();

  g_workload_scale = 1;
  built.cluster = failure_case.workload(built.program.get());
  g_workload_scale = 2;  // the production run is longer and noisier
  built.failure_cluster = failure_case.failure_workload
                              ? failure_case.failure_workload(built.program.get())
                              : failure_case.workload(built.program.get());
  g_workload_scale = 1;

  // Resolve the ground truth.
  built.ground_truth.site = FindSiteByName(*built.program, failure_case.root_site);
  built.ground_truth.occurrence = failure_case.root_occurrence;
  built.ground_truth.kind = failure_case.root_kind;
  if (failure_case.root_kind == interp::FaultKind::kException) {
    built.ground_truth.type = built.program->FindException(failure_case.root_exception);
    ANDURIL_CHECK_NE(built.ground_truth.type, ir::kInvalidId)
        << "unknown exception " << failure_case.root_exception;
  } else {
    built.ground_truth.type = ir::kInvalidId;
  }

  // The workload alone must not satisfy the oracle (§2: the failure is
  // fault-induced).
  if (verify) {
    interp::RunResult fault_free =
        RunOnce(*built.program, built.failure_cluster, failure_case.failure_seed);
    ANDURIL_CHECK(!failure_case.oracle(*built.program, fault_free))
        << failure_case.id << ": oracle satisfied without any fault";
  }

  // Generate the production failure log by injecting the ground truth.
  interp::RunResult failure_run = RunOnce(*built.program, built.failure_cluster,
                                          failure_case.failure_seed, {built.ground_truth});
  if (verify) {
    ANDURIL_CHECK(failure_run.injected.has_value())
        << failure_case.id << ": ground-truth instance never occurred";
    ANDURIL_CHECK(failure_case.oracle(*built.program, failure_run))
        << failure_case.id << ": ground truth does not reproduce the failure";
  }
  built.failure_log_text = interp::FormatLogFile(failure_run.log);

  built.spec.program = built.program.get();
  built.spec.cluster = &built.cluster;
  built.spec.failure_log_text = built.failure_log_text;
  built.spec.oracle = failure_case.oracle;
  built.spec.base_seed = failure_case.explore_seed;
  return built;
}

const std::vector<FailureCase>& AllCases() {
  static const std::vector<FailureCase>* cases = [] {
    auto* all = new std::vector<FailureCase>();
    RegisterZooKeeperCases(all);
    RegisterHdfsCases(all);
    RegisterHBaseCases(all);
    RegisterKafkaCases(all);
    RegisterCassandraCases(all);
    return all;
  }();
  return *cases;
}

const std::vector<FailureCase>& CrashStallCases() {
  static const std::vector<FailureCase>* cases = [] {
    auto* all = new std::vector<FailureCase>();
    RegisterZooKeeperCrashCases(all);
    RegisterHdfsStallCases(all);
    return all;
  }();
  return *cases;
}

const std::vector<FailureCase>& NetworkCases() {
  static const std::vector<FailureCase>* cases = [] {
    auto* all = new std::vector<FailureCase>();
    RegisterZooKeeperNetworkCases(all);
    RegisterHdfsNetworkCases(all);
    return all;
  }();
  return *cases;
}

const FailureCase* FindCase(const std::string& id) {
  for (const std::vector<FailureCase>* registry :
       {&AllCases(), &CrashStallCases(), &NetworkCases()}) {
    for (const FailureCase& failure_case : *registry) {
      if (failure_case.id == id || failure_case.paper_id == id) {
        return &failure_case;
      }
    }
  }
  return nullptr;
}

}  // namespace anduril::systems
