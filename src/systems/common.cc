#include "src/systems/common.h"

#include "src/interp/simulator.h"
#include "src/util/check.h"
#include "src/util/strings.h"

namespace anduril::systems {

void RegisterStandardExceptions(ir::Program* program) {
  program->DefineException("IOException");
  program->DefineException("FileNotFoundException", "IOException");
  program->DefineException("SocketException", "IOException");
  program->DefineException("ConnectException", "SocketException");
  program->DefineException("EOFException", "IOException");
  program->DefineException("TimeoutException");
  program->DefineException("TimeoutIOException", "IOException");
  program->DefineException("InterruptedException");
  program->DefineException("ExecutionException");
  program->DefineException("IllegalStateException");
  program->DefineException("NullPointerException");
  program->DefineException("RuntimeException");
  program->DefineException("KeeperException");
  program->DefineException("ReplicationException");
}

ir::FaultSiteId FindSiteByName(const ir::Program& program, const std::string& site_name) {
  ir::FaultSiteId found = ir::kInvalidId;
  std::string prefix = site_name + "@";
  for (const ir::FaultSite& site : program.fault_sites()) {
    if (StartsWith(site.name, prefix)) {
      ANDURIL_CHECK_EQ(found, ir::kInvalidId) << "ambiguous site name " << site_name;
      found = site.id;
    }
  }
  ANDURIL_CHECK_NE(found, ir::kInvalidId) << "no fault site named " << site_name;
  return found;
}

interp::RunResult RunOnce(const ir::Program& program, const interp::ClusterSpec& cluster,
                          uint64_t seed,
                          const std::vector<interp::InjectionCandidate>& window,
                          const std::vector<interp::InjectionCandidate>& pinned) {
  interp::FaultRuntime runtime(&program);
  runtime.SetWindow(window);
  runtime.SetPinned(pinned);
  interp::Simulator simulator(&program, &cluster, seed, &runtime);
  return simulator.Run();
}

namespace {
bool AnyFaultOfKind(const FailureCase& failure_case,
                    std::initializer_list<interp::FaultKind> kinds) {
  auto matches = [&](interp::FaultKind kind) {
    for (interp::FaultKind k : kinds) {
      if (kind == k) {
        return true;
      }
    }
    return false;
  };
  if (matches(failure_case.root_kind)) {
    return true;
  }
  for (const GroundTruthStep& step : failure_case.root_chain) {
    if (matches(step.kind)) {
      return true;
    }
  }
  return false;
}
}  // namespace

bool NeedsCrashStallCandidates(const FailureCase& failure_case) {
  return AnyFaultOfKind(failure_case,
                        {interp::FaultKind::kCrash, interp::FaultKind::kStall});
}

bool NeedsNetworkCandidates(const FailureCase& failure_case) {
  return AnyFaultOfKind(failure_case,
                        {interp::FaultKind::kDrop, interp::FaultKind::kDelay,
                         interp::FaultKind::kDuplicate, interp::FaultKind::kPartition});
}

namespace {
int g_workload_scale = 1;
}  // namespace

int CurrentWorkloadScale() { return g_workload_scale; }

void AddNoisyServices(ir::Program* program, const std::string& prefix, int services,
                      int sites_per_service) {
  for (int i = 0; i < services; ++i) {
    ir::MethodBuilder b(program, StrFormat("%s.svc%d", prefix.c_str(), i));
    std::string counter = StrFormat("%sRound%d", prefix.c_str(), i);
    std::string rounds = prefix + "Rounds";
    b.While(b.LtVar(counter, rounds), [&] {
      b.Assign(counter, b.Plus(counter, 1));
      b.TryCatch(
          [&] {
            for (int s = 0; s < sites_per_service; ++s) {
              b.External(StrFormat("%s.svc%d_op%d", prefix.c_str(), i, s), {"IOException"},
                         /*transient_every_n=*/5 + (i * 7 + s * 3) % 11);
            }
            b.Log(ir::LogLevel::kDebug, prefix, StrFormat("service %d round {} ok", i),
                  {b.V(counter)});
          },
          {{"IOException",
            [&] {
              b.LogExc(ir::LogLevel::kWarn, prefix,
                       StrFormat("service %d operation failed, will retry", i));
            }}});
      b.Sleep(10 + i * 3);
    });
  }
}

void StartNoisyServices(interp::ClusterSpec* cluster, ir::Program* program,
                        const std::string& prefix, const std::string& node, int services,
                        int rounds) {
  for (int i = 0; i < services; ++i) {
    ir::MethodId method = program->FindMethod(StrFormat("%s.svc%d", prefix.c_str(), i));
    cluster->AddTask(node, StrFormat("%sWorker%d", prefix.c_str(), i), method, i * 2);
  }
  cluster->SetVar(node, program->InternVar(prefix + "Rounds"),
                  rounds * CurrentWorkloadScale());
}

void AddColdModule(ir::Program* program, const std::string& prefix, int methods,
                   int sites_per_method) {
  for (int m = 0; m < methods; ++m) {
    ir::MethodBuilder builder(program, StrFormat("%s.mod%d", prefix.c_str(), m));
    builder.TryCatch(
        [&] {
          for (int s = 0; s < sites_per_method; ++s) {
            builder.External(StrFormat("%s.op%d_%d", prefix.c_str(), m, s), {"IOException"});
          }
        },
        {{"IOException",
          [&] {
            builder.LogExc(ir::LogLevel::kWarn, prefix + ".maintenance",
                           "maintenance operation failed, will retry");
          }}});
  }
}

BuiltCase BuildCase(const FailureCase& failure_case, bool verify) {
  BuiltCase built;
  built.program = std::make_unique<ir::Program>();
  RegisterStandardExceptions(built.program.get());
  failure_case.build(built.program.get());
  built.program->Finalize();

  g_workload_scale = 1;
  built.cluster = failure_case.workload(built.program.get());
  g_workload_scale = 2;  // the production run is longer and noisier
  built.failure_cluster = failure_case.failure_workload
                              ? failure_case.failure_workload(built.program.get())
                              : failure_case.workload(built.program.get());
  g_workload_scale = 1;

  // Resolve the ground truth (single fault, or every step of the chain).
  auto resolve = [&](const std::string& site, const std::string& exception,
                     int64_t occurrence, interp::FaultKind kind) {
    interp::InjectionCandidate candidate;
    candidate.site = FindSiteByName(*built.program, site);
    candidate.occurrence = occurrence;
    candidate.kind = kind;
    if (kind == interp::FaultKind::kException) {
      candidate.type = built.program->FindException(exception);
      ANDURIL_CHECK_NE(candidate.type, ir::kInvalidId) << "unknown exception " << exception;
    } else {
      candidate.type = ir::kInvalidId;
    }
    return candidate;
  };
  built.ground_truth = resolve(failure_case.root_site, failure_case.root_exception,
                               failure_case.root_occurrence, failure_case.root_kind);
  for (const GroundTruthStep& step : failure_case.root_chain) {
    built.ground_truth_chain.push_back(
        resolve(step.site, step.exception, step.occurrence, step.kind));
  }
  if (!built.ground_truth_chain.empty()) {
    ANDURIL_CHECK(built.ground_truth_chain.back() == built.ground_truth)
        << failure_case.id << ": root_* fields must describe the chain's final step";
  }

  // The workload alone must not satisfy the oracle (§2: the failure is
  // fault-induced).
  if (verify) {
    interp::RunResult fault_free =
        RunOnce(*built.program, built.failure_cluster, failure_case.failure_seed);
    ANDURIL_CHECK(!failure_case.oracle(*built.program, fault_free))
        << failure_case.id << ": oracle satisfied without any fault";
  }

  // Generate the production failure log by injecting the ground truth —
  // every chain step pinned for cascading cases, a single window otherwise.
  interp::RunResult failure_run =
      built.ground_truth_chain.empty()
          ? RunOnce(*built.program, built.failure_cluster, failure_case.failure_seed,
                    {built.ground_truth})
          : RunOnce(*built.program, built.failure_cluster, failure_case.failure_seed,
                    /*window=*/{}, built.ground_truth_chain);
  if (verify) {
    if (built.ground_truth_chain.empty()) {
      ANDURIL_CHECK(failure_run.injected.has_value())
          << failure_case.id << ": ground-truth instance never occurred";
    } else {
      ANDURIL_CHECK_EQ(failure_run.pinned_fired,
                       static_cast<int64_t>(built.ground_truth_chain.size()))
          << failure_case.id << ": not every chain step fired in the failure run";
    }
    ANDURIL_CHECK(failure_case.oracle(*built.program, failure_run))
        << failure_case.id << ": ground truth does not reproduce the failure";
    // Chain-only property: no individual step may reproduce the failure on
    // its own — the cascade genuinely requires the ordered sequence.
    for (size_t s = 0; s < built.ground_truth_chain.size(); ++s) {
      interp::RunResult solo =
          RunOnce(*built.program, built.failure_cluster, failure_case.failure_seed,
                  /*window=*/{}, {built.ground_truth_chain[s]});
      ANDURIL_CHECK(!failure_case.oracle(*built.program, solo))
          << failure_case.id << ": chain step " << s << " reproduces the failure alone";
    }
  }
  built.failure_log_text = interp::FormatLogFile(failure_run.log);

  built.spec.program = built.program.get();
  built.spec.cluster = &built.cluster;
  built.spec.failure_log_text = built.failure_log_text;
  built.spec.oracle = failure_case.oracle;
  built.spec.base_seed = failure_case.explore_seed;
  return built;
}

const std::vector<FailureCase>& AllCases() {
  static const std::vector<FailureCase>* cases = [] {
    auto* all = new std::vector<FailureCase>();
    RegisterZooKeeperCases(all);
    RegisterHdfsCases(all);
    RegisterHBaseCases(all);
    RegisterKafkaCases(all);
    RegisterCassandraCases(all);
    return all;
  }();
  return *cases;
}

const std::vector<FailureCase>& CrashStallCases() {
  static const std::vector<FailureCase>* cases = [] {
    auto* all = new std::vector<FailureCase>();
    RegisterZooKeeperCrashCases(all);
    RegisterHdfsStallCases(all);
    return all;
  }();
  return *cases;
}

const std::vector<FailureCase>& NetworkCases() {
  static const std::vector<FailureCase>* cases = [] {
    auto* all = new std::vector<FailureCase>();
    RegisterZooKeeperNetworkCases(all);
    RegisterHdfsNetworkCases(all);
    return all;
  }();
  return *cases;
}

const std::vector<FailureCase>& CascadeCases() {
  static const std::vector<FailureCase>* cases = [] {
    auto* all = new std::vector<FailureCase>();
    RegisterCascadeCases(all);
    return all;
  }();
  return *cases;
}

const std::vector<FailureCase>& StormCases() {
  static const std::vector<FailureCase>* cases = [] {
    auto* all = new std::vector<FailureCase>();
    RegisterStormCases(all);
    return all;
  }();
  return *cases;
}

const FailureCase* FindCase(const std::string& id) {
  for (const std::vector<FailureCase>* registry :
       {&AllCases(), &CrashStallCases(), &NetworkCases(), &CascadeCases(), &StormCases()}) {
    for (const FailureCase& failure_case : *registry) {
      if (failure_case.id == id || failure_case.paper_id == id) {
        return &failure_case;
      }
    }
  }
  return nullptr;
}

}  // namespace anduril::systems
