// One-call search harness over the failure-case registry, shared by the
// tests, the CLI tools, and the reproduction service. Promoted out of
// tests/test_util.h so every driver derives a case's candidate-space options
// the same way instead of re-declaring them per call site.

#ifndef ANDURIL_SRC_SYSTEMS_HARNESS_H_
#define ANDURIL_SRC_SYSTEMS_HARNESS_H_

#include <memory>

#include "src/explorer/explorer.h"
#include "src/explorer/strategy.h"
#include "src/systems/common.h"

namespace anduril::systems {

// Options whose candidate space can reach the case's ground-truth faults:
// crash/stall kinds for cases with a crash- or stall fault anywhere in the
// chain, message-layer kinds for network faults, the stock exception space
// otherwise.
explorer::ExplorerOptions OptionsForCase(const FailureCase& failure_case, int threads = 1);

// Runs the full-feedback search over a built case, with optional
// checkpoint/resume wiring.
explorer::ExploreResult RunSearch(const BuiltCase& built,
                                  const explorer::ExplorerOptions& options,
                                  const explorer::CheckpointConfig& checkpoint = {});

}  // namespace anduril::systems

#endif  // ANDURIL_SRC_SYSTEMS_HARNESS_H_
