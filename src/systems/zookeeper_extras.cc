// ZooKeeper background subsystems: session expiry buckets, snapshot
// scheduling with purge, observer synchronization, and the digest-based
// data-tree audit. All are fault-tolerant (transient failures are retried
// with WARN logs) and all run during every ZooKeeper workload.

#include "src/systems/extras.h"

#include "src/ir/builder.h"
#include "src/systems/common.h"

namespace anduril::systems {
namespace {

using ir::Expr;
using ir::LogLevel;
using ir::MethodBuilder;
using ir::Program;

// Session tracker: sessions are expired in coarse buckets; touching a
// session moves it to the next bucket. An expired session closes its
// connection and releases its ephemeral nodes.
void BuildSessionExpiry(Program* p) {
  {
    MethodBuilder b(p, "zk.session.touch");
    b.Assign("activeSessions", b.Plus("activeSessions", 1));
    b.Log(LogLevel::kDebug, "zk.SessionTracker", "Touched session, {} active",
          {b.V("activeSessions")});
  }
  {
    MethodBuilder b(p, "zk.session.expire_bucket");
    b.If(b.Gt("activeSessions", 0), [&] {
      b.TryCatch(
          [&] {
            b.External("zk.session.close_connection", {"SocketException"},
                       /*transient_every_n=*/12);
            b.External("zk.session.delete_ephemerals", {"KeeperException"});
            b.Assign("activeSessions", b.Minus("activeSessions", 1));
            b.Assign("expiredSessions", b.Plus("expiredSessions", 1));
            b.Log(LogLevel::kInfo, "zk.SessionTracker", "Expired session, {} total expired",
                  {b.V("expiredSessions")});
          },
          {{"SocketException",
            [&] {
              b.LogExc(LogLevel::kWarn, "zk.SessionTracker",
                       "Connection close failed during expiry, will retry");
            }},
           {"KeeperException",
            [&] {
              b.LogExc(LogLevel::kWarn, "zk.SessionTracker",
                       "Ephemeral cleanup failed, queued for retry");
              b.Assign("ephemeralCleanupBacklog", b.Plus("ephemeralCleanupBacklog", 1));
            }}});
    });
  }
  {
    MethodBuilder b(p, "zk.session.expiry_loop");
    b.While(ir::Cond::LtVar(b.Var("expiryTick"), b.Var("zkExtraRounds")), [&] {
      b.Assign("expiryTick", b.Plus("expiryTick", 1));
      // New sessions arrive from the workload's connections.
      b.If(ir::Cond::Eq(b.Var("expiryTick"), 1), [&] {
        b.Assign("activeSessions", Expr::Const(4));
      });
      b.Invoke("zk.session.expire_bucket");
      b.Sleep(24);
    });
  }
}

// Snapshot scheduler: takes a snapshot once enough transactions accumulated,
// then purges old snapshots, keeping a retention count.
void BuildSnapshotScheduler(Program* p) {
  {
    MethodBuilder b(p, "zk.snapshot.take");
    b.TryCatch(
        [&] {
          b.External("zk.snapshot.serialize_tree", {"IOException"});
          b.External("zk.snapshot.fsync", {"IOException"}, /*transient_every_n=*/9);
          b.Assign("snapshotsTaken", b.Plus("snapshotsTaken", 1));
          b.Log(LogLevel::kInfo, "zk.SnapshotScheduler", "Snapshot {} written to disk",
                {b.V("snapshotsTaken")});
        },
        {{"IOException",
          [&] {
            b.LogExc(LogLevel::kWarn, "zk.SnapshotScheduler",
                     "Snapshot attempt failed, keeping txn log");
          }}});
  }
  {
    MethodBuilder b(p, "zk.snapshot.purge_old");
    b.While(b.Gt("snapshotsTaken", 3), [&] {
      b.TryCatch(
          [&] {
            b.External("zk.snapshot.delete_file", {"IOException"});
            b.Assign("snapshotsTaken", b.Minus("snapshotsTaken", 1));
            b.Assign("snapshotsPurged", b.Plus("snapshotsPurged", 1));
          },
          {{"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "zk.SnapshotScheduler", "Purge failed, leaving file");
              b.Break();
            }}});
    });
  }
  {
    MethodBuilder b(p, "zk.snapshot.scheduler_loop");
    b.While(ir::Cond::LtVar(b.Var("snapTick"), b.Var("zkExtraRounds")), [&] {
      b.Assign("snapTick", b.Plus("snapTick", 1));
      b.Invoke("zk.snapshot.take");
      b.Invoke("zk.snapshot.purge_old");
      b.Sleep(31);
    });
  }
}

// Observer sync: read-only replicas pull committed proposals from the
// leader; a stale observer catches up with a snapshot transfer instead.
void BuildObserverSync(Program* p) {
  {
    MethodBuilder b(p, "zk.observer.pull_proposals");
    b.TryCatch(
        [&] {
          b.External("zk.observer.read_proposal", {"IOException"}, /*transient_every_n=*/14);
          b.Assign("observerZxid", b.Plus("observerZxid", 1));
          b.Log(LogLevel::kDebug, "zk.Observer", "Observer applied proposal {}",
                {b.V("observerZxid")});
        },
        {{"IOException",
          [&] {
            b.LogExc(LogLevel::kWarn, "zk.Observer", "Proposal stream hiccup, re-syncing");
            b.Assign("observerStale", b.Plus("observerStale", 1));
          }}});
    b.If(b.Ge("observerStale", 3), [&] {
      b.TryCatch(
          [&] {
            b.External("zk.observer.snapshot_transfer", {"IOException"});
            b.Assign("observerStale", Expr::Const(0));
            b.Log(LogLevel::kInfo, "zk.Observer", "Observer caught up via snapshot");
          },
          {{"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "zk.Observer", "Snapshot transfer failed, retrying");
            }}});
    });
  }
  {
    MethodBuilder b(p, "zk.observer.sync_loop");
    b.While(ir::Cond::LtVar(b.Var("obsTick"), b.Var("zkExtraRounds")), [&] {
      b.Assign("obsTick", b.Plus("obsTick", 1));
      b.Invoke("zk.observer.pull_proposals");
      b.Sleep(17);
    });
  }
}

// Digest audit: periodically recomputes the data-tree digest and compares it
// against the txn-log digest; mismatches are the classic sign of silent
// corruption.
void BuildDigestAudit(Program* p) {
  {
    MethodBuilder b(p, "zk.digest.audit_once");
    b.TryCatch(
        [&] {
          b.External("zk.digest.compute_tree", {"IOException"});
          b.External("zk.digest.read_txn_digest", {"IOException"}, /*transient_every_n=*/11);
          b.Assign("digestChecks", b.Plus("digestChecks", 1));
          b.Log(LogLevel::kDebug, "zk.DigestAudit", "Digest check {} clean",
                {b.V("digestChecks")});
        },
        {{"IOException",
          [&] {
            b.LogExc(LogLevel::kWarn, "zk.DigestAudit", "Digest computation failed, skipped");
          }}});
  }
  {
    MethodBuilder b(p, "zk.digest.audit_loop");
    b.While(ir::Cond::LtVar(b.Var("digestTick"), b.Var("zkExtraRounds")), [&] {
      b.Assign("digestTick", b.Plus("digestTick", 1));
      b.Invoke("zk.digest.audit_once");
      b.Sleep(43);
    });
  }
}

}  // namespace

void BuildZooKeeperExtras(Program* p) {
  BuildSessionExpiry(p);
  BuildSnapshotScheduler(p);
  BuildObserverSync(p);
  BuildDigestAudit(p);
}

void StartZooKeeperExtras(interp::ClusterSpec* cluster, ir::Program* p) {
  int rounds = 6 * CurrentWorkloadScale();
  cluster->AddTask("zk1", "SessionTracker-Expirer", p->FindMethod("zk.session.expiry_loop"), 3);
  cluster->AddTask("zk1", "SnapshotScheduler", p->FindMethod("zk.snapshot.scheduler_loop"), 7);
  cluster->AddTask("zk3", "ObserverSync", p->FindMethod("zk.observer.sync_loop"), 5);
  cluster->AddTask("zk2", "DigestAudit", p->FindMethod("zk.digest.audit_loop"), 11);
  cluster->SetVar("zk1", p->InternVar("zkExtraRounds"), rounds);
  cluster->SetVar("zk2", p->InternVar("zkExtraRounds"), rounds);
  cluster->SetVar("zk3", p->InternVar("zkExtraRounds"), rounds);
}

}  // namespace anduril::systems
