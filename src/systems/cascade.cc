// Cascading-failure scenarios: each case's production outage is an ordered
// fault *chain* — a first fault degrades the system onto a recovery path
// that does not execute at all in healthy runs, and only a second fault
// striking that recovery path produces the failure. By construction no
// single injection reproduces any of them (BuildCase verifies this per
// step), and a search that layers faults independently over the healthy
// baseline can never even arm the second site: its fault-instance
// distribution is taken from a run where the recovery path is cold.
//
// The three cases cover the classic cascade shapes: a retry-amplification
// storm (exception -> exception), a quorum-loss feedback loop
// (crash -> exception), and a partition-heal thundering herd
// (partition -> exception).

#include "src/ir/builder.h"
#include "src/systems/common.h"

namespace anduril::systems {
namespace {

using ir::Expr;
using ir::LogLevel;
using ir::MethodBuilder;
using ir::Program;

// --- casc-retry-1: retry-amplification storm (kafka flavor) ------------------
//
// A producer streams eight appends to the broker. A failed append queues
// three replay entries; the retry worker drains the queue one entry per
// tick, but a failed *replay* re-queues the entry plus one sibling
// (amplification). One append failure alone is fully absorbed (three clean
// drains); the storm needs a second fault inside the drain loop — which
// never executes while appends succeed.
void RegisterCascRetry1(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "casc-retry-1";
  c.paper_id = "x1";
  c.system = "kafka";
  c.title = "Log-append failure seeds a retry queue that a replay failure amplifies into a storm";
  c.injected_fault = "IOException";
  c.root_site = "kr.retry_append";
  c.root_exception = "IOException";
  c.root_occurrence = 2;
  c.root_chain = {
      {"kr.log_append", "IOException", 3, interp::FaultKind::kException},
      {"kr.retry_append", "IOException", 2, interp::FaultKind::kException},
  };
  c.build = [](Program* p) {
    {
      MethodBuilder b(p, "kr.produce");
      b.While(b.Lt("sent", 8), [&] {
        b.Assign("sent", b.Plus("sent", 1));
        b.Send("kr.append", "k2", ir::SendOpts{.payload = b.V("sent")});
        b.Sleep(15);
      });
      b.Log(LogLevel::kInfo, "kr.producer", "producer finished, {} appends submitted",
            {b.V("sent")});
    }
    {
      MethodBuilder b(p, "kr.append");
      b.TryCatch(
          [&] {
            b.External("kr.log_append", {"IOException"});
            b.Assign("appended", b.Plus("appended", 1));
            b.Log(LogLevel::kDebug, "kr.broker", "append {} committed", {b.V("appended")});
          },
          {{"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "kr.broker",
                       "append failed, queueing segment replay");
              b.Assign("retryQueue", b.Plus("retryQueue", 3));
            }}});
    }
    {
      MethodBuilder b(p, "kr.retry_worker");
      b.While(b.Lt("rwTick", 40), [&] {
        b.Assign("rwTick", b.Plus("rwTick", 1));
        b.If(b.Gt("retryQueue", 0), [&] {
          b.TryCatch(
              [&] {
                b.External("kr.retry_append", {"IOException"});
                b.Assign("retryQueue", b.Minus("retryQueue", 1));
                b.Assign("drained", b.Plus("drained", 1));
                b.Log(LogLevel::kInfo, "kr.broker", "retry drained, {} entries left",
                      {b.V("retryQueue")});
              },
              {{"IOException",
                [&] {
                  b.LogExc(LogLevel::kWarn, "kr.broker",
                           "retry replay failed, re-queueing with amplification");
                  b.Assign("retryQueue", b.Plus("retryQueue", 2));
                  b.Assign("amplified", b.Plus("amplified", 1));
                  b.If(b.Gt("retryQueue", 3), [&] {
                    b.Log(LogLevel::kError, "kr.broker",
                          "retry storm: queue saturated at {} entries, appends stalled",
                          {b.V("retryQueue")});
                  });
                }}});
        });
        b.Sleep(20);
      });
    }
    AddNoisyServices(p, "kr", /*services=*/2, /*sites_per_service=*/2);
    AddColdModule(p, "kr.cold", /*methods=*/2, /*sites_per_method=*/3);
  };
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster;
    cluster.AddNode("k1");
    cluster.AddNode("k2");
    cluster.AddTask("k1", "Producer", p->FindMethod("kr.produce"), 0);
    cluster.AddTask("k2", "RetryWorker", p->FindMethod("kr.retry_worker"), 0);
    StartNoisyServices(&cluster, p, "kr", "k1", /*services=*/2, /*rounds=*/3);
    return cluster;
  };
  c.oracle = [](const ir::Program& prog, const interp::RunResult& run) {
    // The storm line plus at least one amplified replay: a lone append
    // failure drains its three entries cleanly and never amplifies.
    return run.HasLogContaining(ir::LogLevel::kError, "retry storm: queue saturated") &&
           run.NodeVar(prog, "k2", "amplified") >= 1;
  };
  cases->push_back(std::move(c));
}

// --- casc-quorum-1: quorum-loss feedback loop (zookeeper flavor) -------------
//
// A follower applies eight transactions and acks each to the leader. An
// IOException during an apply merely loses that one txn (7 of 8 acks keeps
// the quorum healthy); only the follower *crashing* mid-apply starves the
// ack counter below the degraded threshold. The leader then re-replicates
// the backlog — a path that is cold in healthy runs — and a read failure
// there aborts recovery: quorum lost.
void RegisterCascQuorum1(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "casc-quorum-1";
  c.paper_id = "x2";
  c.system = "zookeeper";
  c.title = "Follower crash drops the quorum into re-replication, where a read failure loses it";
  c.injected_fault = "IOException";
  c.root_site = "zq.rereplicate";
  c.root_exception = "IOException";
  c.root_occurrence = 2;
  c.root_chain = {
      {"zq.txn_io", "", 3, interp::FaultKind::kCrash},
      {"zq.rereplicate", "IOException", 2, interp::FaultKind::kException},
  };
  c.root_kind = interp::FaultKind::kException;
  c.build = [](Program* p) {
    {
      MethodBuilder b(p, "zq.txn_source");
      b.While(b.Lt("txSent", 8), [&] {
        b.Assign("txSent", b.Plus("txSent", 1));
        b.Send("zq.txn_apply", "qz2");
        b.Sleep(12);
      });
    }
    {
      MethodBuilder b(p, "zq.txn_apply");
      b.TryCatch(
          [&] {
            b.External("zq.txn_io", {"IOException"});
            b.Assign("applied", b.Plus("applied", 1));
            b.Send("zq.txn_ack", "qz1");
          },
          {{"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "zq.follower", "transaction apply failed, txn lost");
            }}});
    }
    {
      MethodBuilder b(p, "zq.txn_ack");
      b.Assign("acks", b.Plus("acks", 1));
    }
    {
      MethodBuilder b(p, "zq.quorum_monitor");
      b.Sleep(600);
      b.If(
          b.Lt("acks", 5),
          [&] {
            b.Log(LogLevel::kWarn, "zq.leader",
                  "follower behind, {} of 8 txns acked - entering degraded re-replication",
                  {b.V("acks")});
            // backlog = 8 - acks, by repeated addition (no var-var subtract).
            b.Assign("bkCursor", b.V("acks"));
            b.While(b.Lt("bkCursor", 8), [&] {
              b.Assign("bkCursor", b.Plus("bkCursor", 1));
              b.Assign("backlog", b.Plus("backlog", 1));
            });
            b.While(b.Gt("backlog", 0), [&] {
              b.TryCatch(
                  [&] {
                    b.External("zq.rereplicate", {"IOException"});
                    b.Assign("backlog", b.Minus("backlog", 1));
                    b.Assign("rereplicated", b.Plus("rereplicated", 1));
                    b.Log(LogLevel::kInfo, "zq.leader", "re-replicated txn, {} remaining",
                          {b.V("backlog")});
                  },
                  {{"IOException",
                    [&] {
                      b.LogExc(LogLevel::kWarn, "zq.leader",
                               "re-replication failed under degraded quorum");
                      b.Assign("rrFailures", b.Plus("rrFailures", 1));
                      b.Break();
                    }}});
            });
            b.If(
                b.Gt("rrFailures", 0),
                [&] {
                  b.Log(LogLevel::kError, "zq.leader",
                        "quorum lost: degraded re-replication aborted, cluster is read-only");
                },
                [&] {
                  b.Log(LogLevel::kInfo, "zq.leader",
                        "re-replication complete, quorum restored");
                });
          },
          [&] {
            b.Log(LogLevel::kInfo, "zq.leader", "quorum healthy, {} of 8 txns acked",
                  {b.V("acks")});
          });
    }
  };
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster;
    cluster.AddNode("qz1");
    cluster.AddNode("qz2");
    cluster.AddTask("qz1", "TxnSource", p->FindMethod("zq.txn_source"), 0);
    cluster.AddTask("qz1", "QuorumMonitor", p->FindMethod("zq.quorum_monitor"), 0);
    return cluster;
  };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    // The recovery abort must coincide with an actually-dead follower: an
    // apply exception alone keeps 7 acks (healthy), and a re-replication
    // failure without the crash is unreachable.
    return run.HasLogContaining(ir::LogLevel::kError, "quorum lost") &&
           run.DidNodeCrash("qz2");
  };
  cases->push_back(std::move(c));
}

// --- casc-herd-1: partition-heal thundering herd (hdfs flavor) ---------------
//
// A datanode renews its lease every 30 ms; the namenode schedules a block
// resync only when at least four renewals went missing — a single dropped,
// delayed, or duplicated message cannot trip it, only a partition that
// stands for several renewal periods. The link heals before the check, so
// the resync stampede runs against the *recovered* datanode; a read failure
// in that herd aborts recovery.
void RegisterCascHerd1(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "casc-herd-1";
  c.paper_id = "x3";
  c.system = "hdfs";
  c.title = "Healed partition triggers a resync stampede that a read failure turns into an outage";
  c.injected_fault = "IOException";
  c.root_site = "hh.resync_read";
  c.root_exception = "IOException";
  c.root_occurrence = 2;
  c.root_chain = {
      {"send:hh.renew->hn1", "", 2, interp::FaultKind::kPartition},
      {"hh.resync_read", "IOException", 2, interp::FaultKind::kException},
  };
  c.root_kind = interp::FaultKind::kException;
  c.build = [](Program* p) {
    {
      MethodBuilder b(p, "hh.lease_loop");
      b.While(b.Lt("leaseTick", 10), [&] {
        b.Assign("leaseTick", b.Plus("leaseTick", 1));
        b.Send("hh.renew", "hn1");
        b.Sleep(30);
      });
    }
    {
      MethodBuilder b(p, "hh.renew");
      b.Assign("renewals", b.Plus("renewals", 1));
    }
    {
      MethodBuilder b(p, "hh.lease_monitor");
      b.Sleep(700);
      b.If(
          b.Lt("renewals", 7),
          [&] {
            b.Log(LogLevel::kWarn, "hh.namenode",
                  "datanode lease stale, {} of 10 renewals seen - scheduling block resync",
                  {b.V("renewals")});
            // backlog = 10 - renewals, by repeated addition.
            b.Assign("rsCursor", b.V("renewals"));
            b.While(b.Lt("rsCursor", 10), [&] {
              b.Assign("rsCursor", b.Plus("rsCursor", 1));
              b.Assign("rsBacklog", b.Plus("rsBacklog", 1));
            });
            b.While(b.Gt("rsBacklog", 0), [&] {
              b.TryCatch(
                  [&] {
                    b.External("hh.resync_read", {"IOException"});
                    b.Assign("rsBacklog", b.Minus("rsBacklog", 1));
                    b.Assign("resynced", b.Plus("resynced", 1));
                    b.Log(LogLevel::kInfo, "hh.namenode", "resynced block, {} remaining",
                          {b.V("rsBacklog")});
                  },
                  {{"IOException",
                    [&] {
                      b.LogExc(LogLevel::kWarn, "hh.namenode",
                               "resync read failed under stampede load");
                      b.Assign("herdFailures", b.Plus("herdFailures", 1));
                      b.Break();
                    }}});
            });
            b.If(
                b.Gt("herdFailures", 0),
                [&] {
                  b.Log(LogLevel::kError, "hh.namenode",
                        "thundering herd: post-heal resync stampede aborted, blocks "
                        "under-replicated");
                },
                [&] {
                  b.Log(LogLevel::kInfo, "hh.namenode", "resync complete, lease restored");
                });
          },
          [&] {
            b.Log(LogLevel::kInfo, "hh.namenode", "lease healthy, {} renewals seen",
                  {b.V("renewals")});
          });
    }
  };
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster;
    cluster.AddNode("hn1");
    cluster.AddNode("hn2");
    cluster.AddTask("hn2", "LeaseRenewer", p->FindMethod("hh.lease_loop"), 0);
    cluster.AddTask("hn1", "LeaseMonitor", p->FindMethod("hh.lease_monitor"), 0);
    // A severed hn1<->hn2 link heals after five renewal periods — long
    // enough to trip the stale-lease threshold, short enough that the herd
    // runs after recovery.
    cluster.partition_heal_ms = 150;
    return cluster;
  };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    // The herd abort must follow a partition that actually healed: the
    // resync path is unreachable without the stale lease, and only a
    // partition starves four-plus renewals.
    return run.HasLogContaining(ir::LogLevel::kError, "thundering herd") &&
           run.network.partitions_healed >= 1;
  };
  cases->push_back(std::move(c));
}

}  // namespace

void RegisterCascadeCases(std::vector<FailureCase>* cases) {
  RegisterCascRetry1(cases);
  RegisterCascQuorum1(cases);
  RegisterCascHerd1(cases);
}

}  // namespace anduril::systems
