// Storm-scale scenarios: the same fault-induced failures as the Table 5
// set, but with candidate spaces two to three orders of magnitude larger
// (~10⁵ dynamic fault instances), built to exercise the incremental
// priority engine and to reproduce the paper's Table 2 shape — blind /
// FATE-style / CrashTuner-style baselines exhaust their round budget while
// the feedback-driven search still reproduces the failure.
//
//   ca-storm-1: a Cassandra anti-entropy repair storm. Four repair workers
//     each push thousands of ranges through a merkle-request /
//     merkle-compare / stream / validate pipeline. Worker 0 paces the storm:
//     between its iterations 2000 and 3200 the hot token range is under
//     anti-entropy, and an IOException from *its* validate call during that
//     phase is interpreted as merkle-tree divergence and aborts the whole
//     session; the same fault on a cold range is retried harmlessly. A
//     watchdog reports the aborted session at the end of the cycle.
//
//   zk-storm-1: a ZooKeeper session churn spike. Four churn workers cycle
//     client sessions (create / ping / watch / expire) thousands of times.
//     Worker 0's iterations 1400..2600 are a reconnect storm; a
//     KeeperException from its session-expire call during the spike
//     overflows the session table and degrades the quorum, which the
//     watchdog reports once the spike has passed.
//
// Both cases are deliberately hostile to the blind baselines:
//   - exhaustive: the root instance sits tens of thousands of instances into
//     the execution-order list;
//   - fate: one occurrence level at a time across ~10² sites never reaches
//     occurrence ~2×10³ within any realistic budget;
//   - crashtuner: a backlog monitor emits hundreds of state-change log lines
//     before the critical phase opens, so the first-instance-after-each-
//     state-change list burns the whole budget on pre-phase instances.
// The feedback search, in contrast, lands on the divergence observable's
// temporal neighborhood within a handful of rounds.

#include "src/systems/common.h"

#include "src/util/check.h"
#include "src/util/strings.h"

namespace anduril::systems {
namespace {

using ir::Expr;
using ir::LogLevel;
using ir::MethodBuilder;
using ir::Program;

// Shape of one storm: N workers × kOpsPerIteration sites × iterations
// dynamic instances (all on the causal graph via the workers' cancel
// observable).
constexpr int kStormWorkers = 4;
constexpr int kCaIterations = 4000;   // 4 × 4 × 4000 = 64,000 instances
constexpr int kCaPhaseStart = 2000;   // worker-0 iterations [start, end) are
constexpr int kCaPhaseEnd = 3200;     //   the hot-range anti-entropy phase
constexpr int kZkIterations = 3500;   // 4 × 4 × 3500 = 56,000 instances
constexpr int kZkPhaseStart = 1400;
constexpr int kZkPhaseEnd = 2600;

// --- Cassandra anti-entropy repair storm -----------------------------------------

void BuildCassandraStorm(Program* p) {
  for (int w = 0; w < kStormWorkers; ++w) {
    MethodBuilder b(p, StrFormat("cas.storm.worker%d", w));
    std::string iter = StrFormat("casStormIter%d", w);
    b.While(b.Lt(iter, kCaIterations), [&] {
      b.Assign(iter, b.Plus(iter, 1));
      if (w == 0) {
        // Worker 0 paces the storm: its own iteration counter opens and
        // closes the hot-range phase, so the critical occurrence window of
        // its sites is exact and seed-independent.
        b.If(b.Eq(iter, kCaPhaseStart), [&] {
          b.Assign("casStormPhase", Expr::Const(1));
          b.Log(LogLevel::kInfo, "cassandra.AntiEntropy",
                "Hot-range anti-entropy phase started");
        });
        b.If(b.Eq(iter, kCaPhaseEnd), [&] {
          b.Assign("casStormPhase", Expr::Const(0));
          b.Log(LogLevel::kInfo, "cassandra.AntiEntropy",
                "Hot-range anti-entropy phase complete");
        });
      }
      b.TryCatch(
          [&] { b.External(StrFormat("cas.storm.w%d.merkle_request", w), {"SocketException"}); },
          {{"SocketException",
            [&] {
              b.Log(LogLevel::kWarn, "cassandra.AntiEntropy",
                    "Merkle request failed, peer busy");
            }}});
      b.TryCatch(
          [&] { b.External(StrFormat("cas.storm.w%d.merkle_compare", w), {"IOException"}); },
          {{"IOException",
            [&] {
              b.Log(LogLevel::kWarn, "cassandra.AntiEntropy",
                    "Merkle compare failed, range rescheduled");
            }}});
      b.TryCatch(
          [&] { b.External(StrFormat("cas.storm.w%d.stream_range", w), {"IOException"}); },
          {{"IOException",
            [&] {
              b.Log(LogLevel::kWarn, "cassandra.AntiEntropy",
                    "Range stream failed, will retry");
            }}});
      b.TryCatch(
          [&] { b.External(StrFormat("cas.storm.w%d.validate", w), {"IOException"}); },
          {{"IOException",
            [&] {
              if (w == 0) {
                // Worker 0 defers interpretation of the validation failure to
                // the end of the pipeline pass (below), where the session
                // state is consistent.
                b.Log(LogLevel::kDebug, "cassandra.AntiEntropy",
                      "Range validation failed, deferring interpretation");
                b.Assign("casValidateFailed", Expr::Const(1));
              } else {
                b.Log(LogLevel::kWarn, "cassandra.AntiEntropy",
                      "Validation hiccup on cold range, retrying");
              }
            }}});
      if (w == 0) {
        b.If(b.Eq("casValidateFailed", 1), [&] {
          b.Assign("casValidateFailed", Expr::Const(0));
          b.If(
              b.Eq("casStormPhase", 1),
              [&] {
                // BUG: a validation failure on a range that is under
                // anti-entropy is read as merkle-tree divergence and aborts
                // the session instead of re-running the comparison for that
                // range.
                b.Log(LogLevel::kWarn, "cassandra.AntiEntropy",
                      "Merkle tree divergence on hot range, aborting "
                      "anti-entropy session");
                b.Assign("casSessionAborted", Expr::Const(1));
              },
              [&] {
                b.Log(LogLevel::kWarn, "cassandra.AntiEntropy",
                      "Validation hiccup on cold range, retrying");
              });
        });
      }
      // The abort check sits AFTER the pipeline so every site above is a
      // dominator of the cancel WARN — that is what puts all four workers'
      // fault sites (and every one of their ~10³ dynamic occurrences) on
      // the causal graph.
      b.If(b.Eq("casSessionAborted", 1), [&] {
        b.Log(LogLevel::kWarn, "cassandra.Repair",
              StrFormat("Repair worker %d cancelled after session abort", w));
        b.Return();
      });
      b.Sleep(1);
    });
    b.Log(LogLevel::kInfo, "cassandra.Repair",
          StrFormat("Repair worker %d drained its range queue", w));
  }
  {
    // Backlog monitor: a state-change line every 5ms for the whole cycle.
    // The hundreds of pre-phase lines make every early instance a CrashTuner
    // injection point (the meta-info baseline burns its budget before the
    // phase opens), and — because the ticks appear identically in the normal
    // and failure logs — they are LCS anchors that give the timeline
    // alignment fine-grained resolution across the entire run, so the
    // stage-2 temporal estimates of late instances do not collapse onto the
    // log tail.
    MethodBuilder b(p, "cas.storm.monitor");
    b.While(b.Lt("casMonTick", 1800), [&] {
      b.Assign("casMonTick", b.Plus("casMonTick", 1));
      b.Log(LogLevel::kDebug, "cassandra.AntiEntropy", "repair backlog {} ranges pending",
            {b.V("casMonTick")});
      b.Sleep(5);
    });
  }
  {
    MethodBuilder b(p, "cas.storm.watchdog");
    b.Sleep(8000);
    b.If(
        b.Eq("casSessionAborted", 1),
        [&] {
          b.Log(LogLevel::kError, "cassandra.Repair",
                "Anti-entropy session aborted, repair storm unresolved on hot ranges");
        },
        [&] {
          b.Log(LogLevel::kInfo, "cassandra.Repair",
                "Anti-entropy storm cycle completed cleanly");
        });
  }

  AddNoisyServices(p, "cas.storm.ipc", 8, 5);
  AddColdModule(p, "cas.storm.cql", 16, 8);
  AddColdModule(p, "cas.storm.hints", 12, 7);
}

interp::ClusterSpec CassandraStormCluster(Program* p) {
  interp::ClusterSpec cluster;
  for (const char* node : {"cas1", "cas2", "cas3", "client"}) {
    cluster.AddNode(node);
  }
  for (int w = 0; w < kStormWorkers; ++w) {
    cluster.AddTask("cas1", StrFormat("RepairWorker%d", w),
                    p->FindMethod(StrFormat("cas.storm.worker%d", w)), w);
  }
  cluster.AddTask("cas1", "RepairMonitor", p->FindMethod("cas.storm.monitor"), 0);
  cluster.AddTask("cas1", "RepairWatchdog", p->FindMethod("cas.storm.watchdog"), 0);
  StartNoisyServices(&cluster, p, "cas.storm.ipc", "cas3", 8, 8);
  return cluster;
}

void RegisterCaStorm1(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "ca-storm-1";
  c.paper_id = "s1";
  c.system = "cassandra";
  c.title = "Anti-entropy repair storm aborts on hot-range merkle divergence";
  c.injected_fault = "IOException";
  c.root_site = "cas.storm.w0.validate";
  c.root_exception = "IOException";
  // Any worker-0 validate occurrence inside [kCaPhaseStart, kCaPhaseEnd)
  // reproduces; the production failure struck mid-phase.
  c.root_occurrence = 2600;
  c.build = BuildCassandraStorm;
  c.workload = [](Program* p) { return CassandraStormCluster(p); };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kError,
                                "Anti-entropy session aborted, repair storm unresolved") &&
           run.HasLogContaining(ir::LogLevel::kWarn, "Merkle tree divergence on hot range");
  };
  cases->push_back(std::move(c));
}

// --- ZooKeeper session churn spike -----------------------------------------------

void BuildZooKeeperStorm(Program* p) {
  for (int w = 0; w < kStormWorkers; ++w) {
    MethodBuilder b(p, StrFormat("zk.storm.churn%d", w));
    std::string iter = StrFormat("zkChurnIter%d", w);
    b.While(b.Lt(iter, kZkIterations), [&] {
      b.Assign(iter, b.Plus(iter, 1));
      if (w == 0) {
        b.If(b.Eq(iter, kZkPhaseStart), [&] {
          b.Assign("zkChurnSpike", Expr::Const(1));
          b.Log(LogLevel::kInfo, "zookeeper.SessionTracker",
                "Session churn spike began, reconnect storm underway");
        });
        b.If(b.Eq(iter, kZkPhaseEnd), [&] {
          b.Assign("zkChurnSpike", Expr::Const(0));
          b.Log(LogLevel::kInfo, "zookeeper.SessionTracker",
                "Session churn spike subsided");
        });
      }
      b.TryCatch(
          [&] { b.External(StrFormat("zk.storm.w%d.session_create", w), {"ConnectException"}); },
          {{"ConnectException",
            [&] {
              b.Log(LogLevel::kWarn, "zookeeper.SessionTracker",
                    "Session create refused, client will retry");
            }}});
      b.TryCatch(
          [&] { b.External(StrFormat("zk.storm.w%d.session_ping", w), {"IOException"}); },
          {{"IOException",
            [&] {
              b.Log(LogLevel::kWarn, "zookeeper.SessionTracker",
                    "Session ping lost, connection reset");
            }}});
      b.TryCatch(
          [&] { b.External(StrFormat("zk.storm.w%d.watch_set", w), {"KeeperException"}); },
          {{"KeeperException",
            [&] {
              b.Log(LogLevel::kWarn, "zookeeper.SessionTracker",
                    "Watch registration failed, client re-arming");
            }}});
      b.TryCatch(
          [&] { b.External(StrFormat("zk.storm.w%d.session_expire", w), {"KeeperException"}); },
          {{"KeeperException",
            [&] {
              if (w == 0) {
                // Worker 0 defers handling of the expiry failure to the end
                // of the churn pass (below), once the table scan is done.
                b.Log(LogLevel::kDebug, "zookeeper.SessionTracker",
                      "Session expiry failed, deferring cleanup");
                b.Assign("zkExpireFailed", Expr::Const(1));
              } else {
                b.Log(LogLevel::kWarn, "zookeeper.SessionTracker",
                      "Session expiry race, client rejoined");
              }
            }}});
      if (w == 0) {
        b.If(b.Eq("zkExpireFailed", 1), [&] {
          b.Assign("zkExpireFailed", Expr::Const(0));
          b.If(
              b.Eq("zkChurnSpike", 1),
              [&] {
                // BUG: an expiry failure during the reconnect storm leaves
                // the dead session in the table; the table overflows and
                // live client sessions get dropped.
                b.Log(LogLevel::kWarn, "zookeeper.SessionTracker",
                      "Session table overflow during churn spike, "
                      "dropping client sessions");
                b.Assign("zkQuorumDegraded", Expr::Const(1));
              },
              [&] {
                b.Log(LogLevel::kWarn, "zookeeper.SessionTracker",
                      "Session expiry race, client rejoined");
              });
        });
      }
      // As in the Cassandra storm: checking the degradation flag after the
      // churn pipeline makes every site above a dominator of the cancel
      // WARN, pulling all four workers' sites onto the causal graph.
      b.If(b.Eq("zkQuorumDegraded", 1), [&] {
        b.Log(LogLevel::kWarn, "zookeeper.SessionTracker",
              StrFormat("Churn worker %d stopped, ensemble degraded", w));
        b.Return();
      });
      b.Sleep(1);
    });
    b.Log(LogLevel::kInfo, "zookeeper.SessionTracker",
          StrFormat("Churn worker %d finished its session cycle", w));
  }
  {
    // Session-table monitor: like the Cassandra storm's backlog monitor, a
    // CrashTuner budget sink before the spike and a full-run set of LCS
    // anchors for the timeline alignment.
    MethodBuilder b(p, "zk.storm.monitor");
    b.While(b.Lt("zkMonTick", 1500), [&] {
      b.Assign("zkMonTick", b.Plus("zkMonTick", 1));
      b.Log(LogLevel::kDebug, "zookeeper.SessionTracker", "session table {} entries",
            {b.V("zkMonTick")});
      b.Sleep(5);
    });
  }
  {
    MethodBuilder b(p, "zk.storm.watchdog");
    b.Sleep(7000);
    b.If(
        b.Eq("zkQuorumDegraded", 1),
        [&] {
          b.Log(LogLevel::kError, "zookeeper.Quorum",
                "Quorum lost clients during churn spike, ensemble unstable");
        },
        [&] {
          b.Log(LogLevel::kInfo, "zookeeper.Quorum",
                "Churn spike absorbed, all client sessions intact");
        });
  }

  AddNoisyServices(p, "zk.storm.req", 8, 5);
  AddColdModule(p, "zk.storm.snap", 14, 8);
  AddColdModule(p, "zk.storm.acl", 10, 6);
}

interp::ClusterSpec ZooKeeperStormCluster(Program* p) {
  interp::ClusterSpec cluster;
  for (const char* node : {"zk1", "zk2", "zk3", "client"}) {
    cluster.AddNode(node);
  }
  for (int w = 0; w < kStormWorkers; ++w) {
    cluster.AddTask("zk1", StrFormat("ChurnWorker%d", w),
                    p->FindMethod(StrFormat("zk.storm.churn%d", w)), w);
  }
  cluster.AddTask("zk1", "SessionMonitor", p->FindMethod("zk.storm.monitor"), 0);
  cluster.AddTask("zk1", "QuorumWatchdog", p->FindMethod("zk.storm.watchdog"), 0);
  StartNoisyServices(&cluster, p, "zk.storm.req", "zk3", 8, 8);
  return cluster;
}

void RegisterZkStorm1(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "zk-storm-1";
  c.paper_id = "s2";
  c.system = "zookeeper";
  c.title = "Session table overflow during a reconnect storm drops live clients";
  c.injected_fault = "KeeperException";
  c.root_site = "zk.storm.w0.session_expire";
  c.root_exception = "KeeperException";
  c.root_occurrence = 2000;  // inside [kZkPhaseStart, kZkPhaseEnd)
  c.build = BuildZooKeeperStorm;
  c.workload = [](Program* p) { return ZooKeeperStormCluster(p); };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kError,
                                "Quorum lost clients during churn spike") &&
           run.HasLogContaining(ir::LogLevel::kWarn,
                                "Session table overflow during churn spike");
  };
  cases->push_back(std::move(c));
}

}  // namespace

void RegisterStormCases(std::vector<FailureCase>* cases) {
  RegisterCaStorm1(cases);
  RegisterZkStorm1(cases);
}

}  // namespace anduril::systems
