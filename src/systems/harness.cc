#include "src/systems/harness.h"

namespace anduril::systems {

explorer::ExplorerOptions OptionsForCase(const FailureCase& failure_case, int threads) {
  explorer::ExplorerOptions options;
  options.num_threads = threads;
  options.crash_stall_candidates = NeedsCrashStallCandidates(failure_case);
  options.network_candidates = NeedsNetworkCandidates(failure_case);
  return options;
}

explorer::ExploreResult RunSearch(const BuiltCase& built,
                                  const explorer::ExplorerOptions& options,
                                  const explorer::CheckpointConfig& checkpoint) {
  explorer::Explorer explorer(built.spec, options);
  std::unique_ptr<explorer::InjectionStrategy> strategy =
      explorer::MakeFullFeedbackStrategy();
  return explorer.Explore(strategy.get(), checkpoint);
}

}  // namespace anduril::systems
