// HBase background subsystems: region assignment, the memstore accounting
// flush chore, meta-table lookups on the read path, and the WAL cleaner.

#include "src/systems/extras.h"

#include "src/ir/builder.h"
#include "src/systems/common.h"

namespace anduril::systems {
namespace {

using ir::Expr;
using ir::LogLevel;
using ir::MethodBuilder;
using ir::Program;

// Region assignment: the master moves regions between servers; each move is
// close -> open with a retry on transient open failures.
void BuildAssignment(Program* p) {
  {
    MethodBuilder b(p, "hbase.master.assign_region");
    b.TryCatch(
        [&] {
          b.External("hbase.assign.close_region", {"IOException"});
          b.External("hbase.assign.open_region", {"IOException"}, /*transient_every_n=*/9);
          b.Assign("regionsAssigned", b.Plus("regionsAssigned", 1));
          b.Log(LogLevel::kInfo, "master.AssignmentManager", "Region {} moved",
                {b.V("regionsAssigned")});
        },
        {{"IOException",
          [&] {
            b.LogExc(LogLevel::kWarn, "master.AssignmentManager",
                     "Region move failed, re-queueing");
            b.Assign("assignRetries", b.Plus("assignRetries", 1));
          }}});
  }
  {
    MethodBuilder b(p, "hbase.master.assignment_loop");
    b.While(ir::Cond::LtVar(b.Var("assignTick"), b.Var("hbaseExtraRounds")), [&] {
      b.Assign("assignTick", b.Plus("assignTick", 1));
      b.Invoke("hbase.master.assign_region");
      b.Sleep(26);
    });
  }
}

// Memstore accounting: the flush chore flushes the biggest region when the
// global memstore size crosses the high-water mark.
void BuildMemstoreAccounting(Program* p) {
  {
    MethodBuilder b(p, "hbase.rs.memstore_tick");
    b.Assign("memstoreSize", b.Plus("memstoreSize", 3));
    b.If(b.Gt("memstoreSize", 12), [&] {
      b.TryCatch(
          [&] {
            b.External("hbase.memflush.write_hfile", {"IOException"}, /*transient_every_n=*/7);
            b.External("hbase.memflush.commit_hfile", {"IOException"});
            b.Assign("memstoreSize", Expr::Const(0));
            b.Assign("hfilesWritten", b.Plus("hfilesWritten", 1));
            b.Log(LogLevel::kInfo, "regionserver.MemStoreFlusher",
                  "Flushed memstore, hfile {} written", {b.V("hfilesWritten")});
          },
          {{"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "regionserver.MemStoreFlusher",
                       "Memstore flush failed, will retry under pressure");
              b.Invoke("hbase.rs.abort_check");
            }}});
    });
  }
  {
    MethodBuilder b(p, "hbase.rs.memstore_loop");
    b.While(ir::Cond::LtVar(b.Var("memTick"), b.Var("hbaseExtraRounds")), [&] {
      b.Assign("memTick", b.Plus("memTick", 1));
      b.Invoke("hbase.rs.memstore_tick");
      b.Sleep(19);
    });
  }
}

// Meta lookups: the read path resolves a row's region via hbase:meta with a
// client-side cache; cache misses hit the meta region server.
void BuildMetaLookup(Program* p) {
  {
    MethodBuilder b(p, "hbase.client.locate_region");
    b.If(
        b.Gt("metaCacheHits", 4),
        [&] { b.Assign("cachedLookups", b.Plus("cachedLookups", 1)); },
        [&] {
          b.TryCatch(
              [&] {
                b.External("hbase.meta.scan_row", {"IOException"}, /*transient_every_n=*/11);
                b.Assign("metaCacheHits", b.Plus("metaCacheHits", 1));
                b.Log(LogLevel::kDebug, "client.MetaCache", "Located region, {} cached",
                      {b.V("metaCacheHits")});
              },
              {{"IOException",
                [&] {
                  b.LogExc(LogLevel::kWarn, "client.MetaCache",
                           "Meta lookup failed, clearing cache");
                  b.Assign("metaCacheHits", Expr::Const(0));
                }}});
        });
  }
  {
    MethodBuilder b(p, "hbase.client.meta_loop");
    b.While(ir::Cond::LtVar(b.Var("metaTick"), b.Var("hbaseExtraRounds")), [&] {
      b.Assign("metaTick", b.Plus("metaTick", 1));
      b.Invoke("hbase.client.locate_region");
      b.Sleep(14);
    });
  }
}

// WAL cleaner: archives rolled WAL files once replication is done with them.
void BuildWalCleaner(Program* p) {
  {
    MethodBuilder b(p, "hbase.master.wal_cleaner");
    b.While(ir::Cond::LtVar(b.Var("cleanerTick"), b.Var("hbaseExtraRounds")), [&] {
      b.Assign("cleanerTick", b.Plus("cleanerTick", 1));
      b.TryCatch(
          [&] {
            b.External("hbase.cleaner.list_oldwals", {"IOException"});
            b.External("hbase.cleaner.archive_file", {"IOException"},
                       /*transient_every_n=*/12);
            b.Assign("walsArchived", b.Plus("walsArchived", 1));
          },
          {{"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "master.LogCleaner", "WAL archive skipped this round");
            }}});
      b.Sleep(37);
    });
  }
}

}  // namespace

void BuildHBaseExtras(Program* p) {
  BuildAssignment(p);
  BuildMemstoreAccounting(p);
  BuildMetaLookup(p);
  BuildWalCleaner(p);
}

void StartHBaseExtras(interp::ClusterSpec* cluster, ir::Program* p) {
  int rounds = 6 * CurrentWorkloadScale();
  cluster->AddTask("master", "AssignmentManager", p->FindMethod("hbase.master.assignment_loop"),
                   6);
  cluster->AddTask("rs1", "MemStoreChore", p->FindMethod("hbase.rs.memstore_loop"), 9);
  cluster->AddTask("client", "MetaCacheWarmer", p->FindMethod("hbase.client.meta_loop"), 3);
  cluster->AddTask("master", "LogCleaner", p->FindMethod("hbase.master.wal_cleaner"), 12);
  for (const char* node : {"master", "rs1", "rs2", "client"}) {
    cluster->SetVar(node, p->InternVar("hbaseExtraRounds"), rounds);
  }
}

}  // namespace anduril::systems
