// Simulated Kafka and its three evaluated failures:
//   f18 KA-12508: emit-on-change tables lose updates after error and restart
//   f19 KA-9374:  a blocked connector disables the whole Connect worker
//   f20 KA-10048: consumer failover under MM2 replication leaves a data gap
//
// Topology: two brokers + a Connect worker + an MM2 node + client. The base
// provides a produce path with retries, a Streams task with emit-on-change
// semantics and state flushing, the Connect herder, MM2 replication with
// offset-translation checkpoints, and broker request-handling noise.

#include "src/systems/common.h"

#include "src/systems/extras.h"

#include "src/util/check.h"

namespace anduril::systems {
namespace {

using ir::Expr;
using ir::LogLevel;
using ir::MethodBuilder;
using ir::Program;

void BuildKafkaBase(Program* p) {
  // --- Broker request handling (noise + f19 dependency) ----------------------
  {
    MethodBuilder b(p, "kafka.broker.handle_produce");
    b.TryCatch(
        [&] {
          b.External("kafka.broker.append_log", {"IOException"}, /*transient_every_n=*/21);
          b.External("kafka.broker.update_isr", {"IOException"});
          b.Assign("produced", b.Plus("produced", 1));
          b.Log(LogLevel::kDebug, "kafka.ReplicaManager", "Appended record {} to log",
                {b.V("produced")});
        },
        {{"IOException",
          [&] {
            b.LogExc(LogLevel::kWarn, "kafka.ReplicaManager",
                     "Produce request failed, client will retry");
          }}});
  }
  {
    MethodBuilder b(p, "kafka.broker.handle_metadata");
    b.TryCatch(
        [&] {
          b.External("kafka.broker.read_metadata", {"IOException"});
          b.Send("kafka.connect.metadata_response", "connect");
        },
        {{"IOException",
          [&] {
            // The failed request is simply dropped: no error response is
            // sent back (the f19 trigger).
            b.LogExc(LogLevel::kWarn, "kafka.RequestHandler",
                     "Request processing failed, dropping request");
          }}});
  }
  {
    MethodBuilder b(p, "kafka.broker.log_cleaner");
    b.While(b.LtVar("cleanRound", "cleanRounds"), [&] {
      b.Assign("cleanRound", b.Plus("cleanRound", 1));
      b.TryCatch(
          [&] {
            b.External("kafka.broker.clean_segment", {"IOException"}, /*transient_every_n=*/8);
          },
          {{"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "kafka.LogCleaner", "Segment cleaning failed, skipped");
            }}});
      b.Sleep(14);
    });
  }

  // --- Streams emit-on-change task (f18) --------------------------------------
  {
    MethodBuilder b(p, "kafka.streams.process_record");
    // Payload is the record value; emit only when it changes.
    b.Assign("recordValue", Expr::Payload());
    b.If(b.NeVar("recordValue", "lastValue"),
         [&] {
           b.Assign("lastValue", b.V("recordValue"));
           b.Assign("emitsBuffered", b.Plus("emitsBuffered", 1));
           b.Log(LogLevel::kDebug, "streams.KTable", "Buffered changed value {}",
                 {b.V("recordValue")});
         });
    b.Assign("recordsSeen", b.Plus("recordsSeen", 1));
    b.If(b.Eq("recordsSeen", 3), [&] {
      b.Assign("recordsSeen", Expr::Const(0));
      b.Invoke("kafka.streams.flush_state");
    });
  }
  {
    MethodBuilder b(p, "kafka.streams.flush_state");
    b.TryCatch(
        [&] {
          b.External("kafka.streams.write_checkpoint", {"IOException"});
          b.External("kafka.streams.flush_rocksdb", {"IOException"});
          b.Assign("emitsFlushed", Expr::AddVar(b.Var("emitsFlushed"), b.Var("emitsBuffered")));
          b.Assign("emitsBuffered", Expr::Const(0));
          b.Log(LogLevel::kDebug, "streams.StateManager", "Flushed state, {} emits total",
                {b.V("emitsFlushed")});
        },
        {{"IOException",
          [&] {
            // BUG (KA-12508): the task restarts from the changelog, but the
            // buffered emit-on-change updates are dropped, not replayed.
            b.LogExc(LogLevel::kWarn, "streams.StateManager",
                     "State flush failed, restarting task from changelog");
            b.Assign("emitsBuffered", Expr::Const(0));
            b.Assign("taskRestarts", b.Plus("taskRestarts", 1));
          }}});
  }
  {
    MethodBuilder b(p, "kafka.streams.verify_output");
    b.Invoke("kafka.streams.flush_state");
    b.If(
        b.Lt("emitsFlushed", 8),
        [&] {
          b.Log(LogLevel::kError, "streams.Verifier",
                "Emit-on-change table lost updates, only {} of 8 emitted",
                {b.V("emitsFlushed")});
        },
        [&] { b.Log(LogLevel::kInfo, "streams.Verifier", "All emit-on-change updates seen"); });
  }
  {
    MethodBuilder b(p, "kafka.streams.workload");
    // 12 records, 8 value changes (values: 1 1 2 2 3 4 5 5 6 7 8 8).
    for (int64_t value : {1, 1, 2, 2, 3, 4, 5, 5, 6, 7, 8, 8}) {
      b.Send("kafka.streams.process_record", "connect",
             ir::SendOpts{.payload = Expr::Const(value), .handler_thread = "StreamThread"});
      b.Sleep(7);
    }
    b.Sleep(60);
    b.Send("kafka.streams.verify_output", "connect",
           ir::SendOpts{.handler_thread = "StreamThread"});
  }

  // --- Connect herder (f19) -----------------------------------------------------
  {
    MethodBuilder b(p, "kafka.connect.metadata_response");
    b.Assign("metadataResponses", b.Plus("metadataResponses", 1));
    b.Signal("metadataResponses");
  }
  {
    MethodBuilder b(p, "kafka.connect.start_connector");
    b.Log(LogLevel::kInfo, "connect.Herder", "Starting connector {}", {Expr::Payload()});
    b.Assign("metadataWanted", b.Plus("metadataWanted", 1));
    b.Send("kafka.broker.handle_metadata", "broker1");
    // BUG (KA-9374): the herder blocks with no timeout while holding the
    // worker's only thread; a dropped response parks it forever.
    b.Await(b.GeVar("metadataResponses", "metadataWanted"));
    b.Assign("connectorsStarted", b.Plus("connectorsStarted", 1));
    b.Log(LogLevel::kInfo, "connect.Herder", "Connector {} started", {Expr::Payload()});
  }
  {
    MethodBuilder b(p, "kafka.connect.healthcheck");
    b.Sleep(500);
    b.If(
        b.Lt("connectorsStarted", 4),
        [&] {
          b.Log(LogLevel::kError, "connect.Herder",
                "Worker stalled, connectors disabled ({} of 4 running)",
                {b.V("connectorsStarted")});
        },
        [&] { b.Log(LogLevel::kInfo, "connect.Herder", "All connectors running"); });
  }
  {
    MethodBuilder b(p, "kafka.connect.workload");
    b.While(b.Lt("connectorReq", 4), [&] {
      b.Assign("connectorReq", b.Plus("connectorReq", 1));
      b.Send("kafka.connect.start_connector", "connect",
             ir::SendOpts{.payload = b.V("connectorReq"), .handler_thread = "Herder"});
      b.Sleep(25);
    });
  }

  // --- MM2 replication with checkpoints (f20) ------------------------------------
  {
    MethodBuilder b(p, "kafka.mm2.replicate_loop");
    b.While(b.Lt("mirrored", 12), [&] {
      b.Assign("mirrored", b.Plus("mirrored", 1));
      b.TryCatch(
          [&] {
            b.External("kafka.mm2.fetch_source", {"IOException"}, /*transient_every_n=*/26);
            b.External("kafka.mm2.produce_target", {"IOException"});
            b.Log(LogLevel::kDebug, "mm2.MirrorSource", "Mirrored record {}",
                  {b.V("mirrored")});
          },
          {{"IOException",
            [&] {
              b.LogExc(LogLevel::kWarn, "mm2.MirrorSource", "Mirror fetch failed, retrying");
            }}});
      b.If(b.EqVar("mirrored", "nextCkpt"), [&] {
        b.Assign("nextCkpt", b.Plus("nextCkpt", 3));
        b.TryCatch(
            [&] {
              b.External("kafka.mm2.emit_checkpoint", {"IOException"});
              b.Assign("lastCheckpoint", b.V("mirrored"));
              b.Log(LogLevel::kInfo, "mm2.Checkpoint", "Emitted checkpoint at offset {}",
                    {b.V("lastCheckpoint")});
            },
            {{"IOException",
              [&] {
                // BUG (KA-10048): a failed checkpoint emission is skipped,
                // not retried; a failover in that window reads a stale
                // translated offset.
                b.LogExc(LogLevel::kWarn, "mm2.Checkpoint",
                         "Checkpoint emit failed, skipping interval");
              }}});
      });
      b.Sleep(10);
    });
    b.Signal("mirrored");
  }
  {
    MethodBuilder b(p, "kafka.consumer.failover");
    b.Await(b.Ge("mirrored", 12), /*timeout_ms=*/30000);
    b.Log(LogLevel::kInfo, "mm2.Consumer", "Primary cluster lost, failing over to backup");
    b.Assign("consumedAfterFailover", b.V("lastCheckpoint"));
    b.If(
        b.Lt("consumedAfterFailover", 12),
        [&] {
          b.Log(LogLevel::kError, "mm2.Consumer",
                "Data gap after failover, consumer resumed at {} of 12",
                {b.V("consumedAfterFailover")});
        },
        [&] { b.Log(LogLevel::kInfo, "mm2.Consumer", "Failover complete with no gap"); });
  }

  BuildKafkaExtras(p);
  AddNoisyServices(p, "kafka.ipc", 9, 5);
  AddNoisyServices(p, "kafka.fetcher", 7, 5);
  AddColdModule(p, "kafka.txncoord", 14, 8);
  AddColdModule(p, "kafka.groupcoord", 12, 8);
  AddColdModule(p, "kafka.acladmin", 10, 6);
}

interp::ClusterSpec BaseCluster(Program* p, int clean_rounds) {
  interp::ClusterSpec cluster;
  for (const char* node : {"broker1", "broker2", "connect", "mm2", "client"}) {
    cluster.AddNode(node);
  }
  cluster.AddTask("broker1", "LogCleaner", p->FindMethod("kafka.broker.log_cleaner"), 0);
  cluster.SetVar("broker1", p->InternVar("cleanRounds"), clean_rounds);
  StartNoisyServices(&cluster, p, "kafka.ipc", "broker2", 9, 8);
  StartKafkaExtras(&cluster, p);
  StartNoisyServices(&cluster, p, "kafka.fetcher", "broker1", 7, 7);
  return cluster;
}

// --- Cases ---------------------------------------------------------------------

void RegisterKa12508(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "ka-12508";
  c.paper_id = "f18";
  c.system = "kafka";
  c.title = "Emit-on-change tables lose updates after error and restart";
  c.injected_fault = "IOException";
  c.root_site = "kafka.streams.flush_rocksdb";
  c.root_exception = "IOException";
  c.root_occurrence = 2;
  c.build = BuildKafkaBase;
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p, 12);
    cluster.AddTask("client", "Producer", p->FindMethod("kafka.streams.workload"), 5);
    return cluster;
  };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kError, "Emit-on-change table lost updates") &&
           run.HasLogContaining(ir::LogLevel::kWarn, "State flush failed");
  };
  cases->push_back(std::move(c));
}

void RegisterKa9374(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "ka-9374";
  c.paper_id = "f19";
  c.system = "kafka";
  c.title = "Blocked connectors disable the workers";
  c.injected_fault = "IOException";
  c.root_site = "kafka.broker.read_metadata";
  c.root_exception = "IOException";
  c.root_occurrence = 2;
  c.build = BuildKafkaBase;
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p, 12);
    cluster.AddTask("client", "AdminClient", p->FindMethod("kafka.connect.workload"), 5);
    cluster.AddTask("connect", "Healthcheck", p->FindMethod("kafka.connect.healthcheck"), 0);
    return cluster;
  };
  c.failure_workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p, 30);  // noisier production log
    cluster.AddTask("client", "AdminClient", p->FindMethod("kafka.connect.workload"), 5);
    cluster.AddTask("connect", "Healthcheck", p->FindMethod("kafka.connect.healthcheck"), 0);
    return cluster;
  };
  c.oracle = [](const ir::Program& prog, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kError, "Worker stalled, connectors disabled") &&
           run.IsThreadStuckIn(prog, "connect/Herder", "kafka.connect.start_connector");
  };
  cases->push_back(std::move(c));
}

void RegisterKa10048(std::vector<FailureCase>* cases) {
  FailureCase c;
  c.id = "ka-10048";
  c.paper_id = "f20";
  c.system = "kafka";
  c.title = "Consumer failover under MM2 replication causes a data gap";
  c.injected_fault = "IOException";
  c.root_site = "kafka.mm2.emit_checkpoint";
  c.root_exception = "IOException";
  c.root_occurrence = 4;  // the last checkpoint before failover
  c.build = BuildKafkaBase;
  c.workload = [](Program* p) {
    interp::ClusterSpec cluster = BaseCluster(p, 12);
    cluster.AddTask("mm2", "MirrorSource", p->FindMethod("kafka.mm2.replicate_loop"), 5);
    cluster.AddTask("mm2", "Consumer", p->FindMethod("kafka.consumer.failover"), 10);
    cluster.SetVar("mm2", p->InternVar("nextCkpt"), 3);
    return cluster;
  };
  c.oracle = [](const ir::Program&, const interp::RunResult& run) {
    return run.HasLogContaining(ir::LogLevel::kError, "Data gap after failover") &&
           run.HasLogContaining(ir::LogLevel::kWarn, "Checkpoint emit failed");
  };
  cases->push_back(std::move(c));
}

}  // namespace

void RegisterKafkaCases(std::vector<FailureCase>* cases) {
  RegisterKa12508(cases);
  RegisterKa9374(cases);
  RegisterKa10048(cases);
}

}  // namespace anduril::systems
