// Incremental stage-1 priority engine for the full-feedback strategy.
//
// The reference implementation (RankSites in strategies/full_feedback.cc,
// kept behind ExplorerOptions::full_rerank) recomputes
//
//     F_i = min_k ( L_{i,k} + I_k )
//
// for every candidate i over every observable k each round and then sorts
// the whole candidate array — O(C·K + C log C) per round, which is fine at
// the stock scenarios' 10²–10³ candidates and ruinous at the storm
// scenarios' 10⁴–10⁵. This engine maintains the same quantities
// incrementally in flat structure-of-arrays form:
//
//   - The finite entries of L are stored as a CSR matrix (row per candidate,
//     ascending observable ids) plus a reverse CSR (column per observable),
//     so "which candidates can observable k affect" is one contiguous scan.
//   - F_i and its argmin k*_i are cached per candidate. When the feedback
//     digest moves I_k by a delta, only the candidates that can change are
//     recomputed (the dirty set): for a delta > 0 exactly the candidates
//     whose current argmin is k (tracked in per-observable argmin buckets —
//     any other candidate's min term did not move and its non-min term at k
//     only got worse); for a delta < 0 every candidate with a finite L_{i,k}
//     (the reverse-CSR column).
//   - Candidates with untried instances sit in an indexed binary min-heap
//     keyed by (F_i − stitch boost, candidate index), so assembling the
//     priority window pops the top w entries instead of sorting C — the
//     round never touches the full array.
//   - Round-local scratch (dirty lists, popped heap entries) lives in a bump
//     Arena that is rewound — not freed — every round.
//
// Tie-breaks are explicit ((F, candidate index) at stage 1; see
// docs/priority_engine.md) and identical to the reference path's, which the
// differential harness in tests/priority_engine_test.cc enforces.

#ifndef ANDURIL_SRC_EXPLORER_PRIORITY_ENGINE_H_
#define ANDURIL_SRC_EXPLORER_PRIORITY_ENGINE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/explorer/context.h"
#include "src/util/arena.h"

namespace anduril::explorer {

// Stage-1 "unreachable" sentinel: a candidate with no finite L_{i,k} keeps
// F_i = kPriorityInfinity and never enters the ranking.
inline constexpr int64_t kPriorityInfinity = std::numeric_limits<int64_t>::max() / 4;

// Subtracted from the stage-1 F_i of a causally-stitched site (chain mode):
// large enough to outrank any finite L+I (spatial distances are graph-sized,
// priorities grow by the feedback adjustment per round), small enough that
// effective priorities never get near overflow.
inline constexpr int64_t kStitchBoost = 1'000'000'000;

// The shared stage-1 ordering: ascending effective priority, ties broken by
// candidate index (candidate enumeration order — causal-graph sources first,
// then crash/stall, then network kinds). Both the incremental engine and the
// full_rerank reference path order by exactly this predicate, so they cannot
// legally disagree on ties.
inline bool Stage1Less(int64_t f_a, size_t a, int64_t f_b, size_t b) {
  return f_a != f_b ? f_a < f_b : a < b;
}

// Synthetic candidate space for benches and fuzz tests (the context-backed
// constructor below lowers the real analysis matrices into this form).
struct EngineSpec {
  size_t observables = 0;
  // Finite L entries per candidate as (observable, distance), ascending
  // observable id within a row.
  std::vector<std::vector<std::pair<uint32_t, int64_t>>> rows;
  // Stage-1 boost per candidate (0 or kStitchBoost); empty = all zero.
  std::vector<int64_t> boosts;
  // Untried-instance budget per candidate; a candidate leaves the heap when
  // it reaches zero.
  std::vector<int64_t> instance_counts;
};

class PriorityEngine {
 public:
  explicit PriorityEngine(EngineSpec spec);

  // Lowers the context's candidate/observable matrices. Candidates of a
  // stitched site get kStitchBoost; instance budgets come from the
  // fault-free trace. The engine then indexes armed instances back to
  // candidate rows, so NoteTried() works on interp::InjectionCandidate.
  PriorityEngine(const ExplorerContext& context,
                 const std::unordered_set<ir::FaultSiteId>& stitched_sites);

  // Installs `priorities` (one I_k per observable) and recomputes every
  // F_i from scratch; also restores every candidate's untried budget and
  // rebuilds the heap. Used at Initialize and checkpoint restore — after a
  // restore the caller replays NoteTried over the tried set.
  void Reset(const std::vector<int64_t>& priorities);

  // Applies feedback deltas (observable, signed change) and recomputes only
  // the dirty candidates. Exact: after the call every F_i / k*_i equals what
  // Reset() with the same final priorities would produce (the fuzz test's
  // invariant).
  void ApplyDeltas(const std::vector<std::pair<size_t, int64_t>>& deltas);

  // Marks one dynamic instance of `armed` tried. Call once per fresh
  // TriedSet insert only — the engine counts down the candidate's untried
  // budget and deactivates it at zero. Unknown (site, type, kind) triples
  // and occurrences outside the fault-free trace are ignored, matching the
  // reference path (such instances never appear in any window).
  void NoteTried(const interp::InjectionCandidate& armed);
  void NoteTriedIndex(size_t candidate);

  bool AnyActive() const { return !heap_.empty(); }

  // Visits candidates that still have untried instances in stage-1 order
  // until `visit` returns false. Arguments: candidate index and its argmin
  // observable k*. Bounded top-k: visiting w candidates costs O(w log C).
  void VisitActive(const std::function<bool(size_t candidate, size_t best_observable)>& visit);

  // 1-based rank of `site`'s best candidate among all finite candidates
  // (tried or not), matching the reference path's RankOfSite semantics; -1
  // when the site has no finite candidate.
  int RankOfSite(ir::FaultSiteId site) const;

  // Order-sensitive digest of the current ranking: every finite candidate's
  // (index, effective F, k*) in index order. The differential harness
  // compares per-round sequences of these between engines.
  uint64_t RankAuditHash() const;

  size_t num_candidates() const { return f_.size(); }
  size_t num_observables() const { return num_observables_; }
  bool Finite(size_t candidate) const { return finite_[candidate] != 0; }
  // F_i minus the stitch boost (kPriorityInfinity when unreachable).
  int64_t EffectivePriority(size_t candidate) const {
    return finite_[candidate] != 0 ? f_[candidate] - boost_[candidate] : kPriorityInfinity;
  }
  size_t BestObservable(size_t candidate) const { return bestk_[candidate]; }
  int64_t Untried(size_t candidate) const { return untried_[candidate]; }
  const std::vector<int64_t>& priorities() const { return priorities_; }

 private:
  void BuildFromSpec(EngineSpec spec);
  // Recomputes F_i / k*_i for one candidate from its CSR row and fixes its
  // argmin bucket and heap position.
  void RecomputeRow(uint32_t candidate);

  void BucketInsert(uint32_t candidate);
  void BucketRemove(uint32_t candidate);

  bool HeapLess(uint32_t a, uint32_t b) const {
    return Stage1Less(f_[a] - boost_[a], a, f_[b] - boost_[b], b);
  }
  void HeapPush(uint32_t candidate);
  void HeapRemove(uint32_t candidate);
  void HeapSiftUp(size_t pos);
  void HeapSiftDown(size_t pos);
  void HeapFix(uint32_t candidate);

  static constexpr uint32_t kNoPos = std::numeric_limits<uint32_t>::max();

  size_t num_observables_ = 0;

  // CSR over the finite entries of L: row i spans
  // [row_begin_[i], row_begin_[i+1]) of col_obs_/col_dist_, ascending k.
  std::vector<uint32_t> row_begin_;
  std::vector<uint32_t> col_obs_;
  std::vector<int64_t> col_dist_;
  // Reverse CSR: column k spans [obs_begin_[k], obs_begin_[k+1]) of
  // obs_rows_ (candidate ids with finite L_{i,k}).
  std::vector<uint32_t> obs_begin_;
  std::vector<uint32_t> obs_rows_;

  // Per-candidate SoA state.
  std::vector<int64_t> f_;          // cached F_i (no boost applied)
  std::vector<uint32_t> bestk_;     // argmin k*_i (0 when unreachable)
  std::vector<int64_t> boost_;      // stage-1 boost (stitched sites)
  std::vector<uint8_t> finite_;     // has any finite L entry
  std::vector<int64_t> untried_;    // untried-instance budget
  std::vector<int64_t> initial_untried_;
  std::vector<ir::FaultSiteId> site_of_;  // context engines; empty for specs

  // Current I_k per observable.
  std::vector<int64_t> priorities_;

  // Argmin buckets: bucket_[k] lists the finite candidates whose current
  // argmin is k; bucket_pos_[i] is i's position in its bucket (swap-remove).
  std::vector<std::vector<uint32_t>> bucket_;
  std::vector<uint32_t> bucket_pos_;

  // Indexed binary min-heap over active candidates (untried > 0, finite).
  std::vector<uint32_t> heap_;
  std::vector<uint32_t> heap_pos_;

  // Dirty-set dedup: mark_[i] == epoch_ means already collected this batch.
  std::vector<uint32_t> mark_;
  uint32_t epoch_ = 0;

  // Armed-instance identity → candidate rows (context engines). Keyed by
  // (site, armed type, kind) exactly like the TriedSet, minus occurrence.
  struct ArmedKey {
    ir::FaultSiteId site;
    ir::ExceptionTypeId type;
    interp::FaultKind kind;
    friend bool operator==(const ArmedKey&, const ArmedKey&) = default;
  };
  struct ArmedKeyHash {
    size_t operator()(const ArmedKey& key) const {
      size_t h = static_cast<size_t>(key.site);
      h = h * 1000003u + static_cast<size_t>(key.type + 1);
      h = h * 1000003u + static_cast<size_t>(key.kind);
      return h;
    }
  };
  std::unordered_map<ArmedKey, std::vector<uint32_t>, ArmedKeyHash> armed_index_;

  Arena arena_;
};

}  // namespace anduril::explorer

#endif  // ANDURIL_SRC_EXPLORER_PRIORITY_ENGINE_H_
