// Experiment definition: what the user hands to ANDURIL (§2 "Problem
// Statement") — the system (program + cluster/workload), the production
// failure log, and a failure oracle. Plus the tool's tuning options.

#ifndef ANDURIL_SRC_EXPLORER_EXPERIMENT_H_
#define ANDURIL_SRC_EXPLORER_EXPERIMENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/interp/fault_runtime.h"

#include "src/interp/cluster.h"
#include "src/interp/run_result.h"
#include "src/ir/program.h"

namespace anduril::obs {
class MetricsRegistry;
class Tracer;
}  // namespace anduril::obs

namespace anduril::explorer {

// The user-defined failure oracle: encapsulates the failure symptoms (a log
// message, a stuck thread, a corrupted state...). True = failure reproduced.
using Oracle = std::function<bool(const ir::Program&, const interp::RunResult&)>;

struct ExperimentSpec {
  const ir::Program* program = nullptr;
  const interp::ClusterSpec* cluster = nullptr;  // includes the workload
  std::string failure_log_text;                  // from the uninstrumented deployment
  Oracle oracle;
  // Seed of the first (fault-free) exploration run; each round r uses
  // base_seed + r so runs exhibit the natural nondeterminism that motivates
  // the flexible priority window (§5.2.5).
  uint64_t base_seed = 1;
  // Faults treated as part of the workload: injected in every run, including
  // the baseline "fault-free" run. This is how the iterative multi-fault
  // mode fixes one identified root cause before searching for the next (§3).
  std::vector<interp::InjectionCandidate> pinned_faults;
};

struct ExplorerOptions {
  int initial_window = 10;      // k of §5.2.5 (doubles when a round injects nothing)
  int feedback_adjustment = 1;  // s of §8.5 (observable priority increment)
  int max_rounds = 2000;        // exploration budget (paper's default limit)
  // Chain searches only: hard cap on search rounds summed over every phase
  // (0 = unbounded). When the budget runs out mid-phase the chain search
  // returns immediately — no stitch pass — leaving its checkpoint file in
  // the same state a process kill at that round would, which is also how the
  // resume tests emulate mid-chain kills deterministically.
  int max_total_rounds = 0;
  // For ablation variants: consider only the first N occurrences per site
  // (0 = unlimited).
  int instance_limit = 0;
  // Runs executed per round with different seeds; their observable feedback
  // is combined and the round succeeds if any run satisfies the oracle. The
  // paper suggests this to counter concurrency making crucial log messages
  // probabilistic (§6).
  int runs_per_round = 1;
  // Ground-truth fault site to track for rank-trajectory reporting (Fig. 6).
  // Only used for bench reporting; never influences the search.
  ir::FaultSiteId track_site = ir::kInvalidId;
  // Worker threads of the parallel exploration engine. 1 = fully serial.
  // Parallelism is deterministic: with a fixed base_seed the explorer emits
  // the same ReproductionScript and round count at every thread count,
  // because every simulation's seed is a pure function of (round, repetition)
  // and first-success selection resolves by lowest repetition/candidate
  // index, never by completion order.
  int num_threads = 1;
  // Speculative window evaluation: instead of arming the whole window in one
  // run (where only the first-reached candidate fires), run every window
  // candidate as its own single-candidate simulation — concurrently when
  // num_threads > 1. The observable feedback of all runs is merged (a strict
  // superset of the serial round's feedback) and the success committed is the
  // one of the highest-ranked candidate. More simulations per round, fewer
  // rounds; a different (still deterministic) search mode, not a
  // bit-identical replacement for the serial window semantics.
  bool parallel_candidates = false;
  // Also enumerate crash and stall fault candidates (one of each per causal
  // fault site) alongside the exception candidates. Off by default: the
  // extra kinds triple the candidate space and change search trajectories,
  // so only scenarios that need them (crash/stall-only failures) opt in.
  bool crash_stall_candidates = false;
  // Also enumerate network fault candidates (drop / delay / duplicate /
  // partition, one of each per Send statement on the causal graph). Off by
  // default for the same reason as crash_stall_candidates: four more
  // candidates per send site widen the space and change search trajectories,
  // so only scenarios rooted in message-layer faults opt in.
  bool network_candidates = false;
  // Static candidate pruning: before round 1, drop injectable fault sites
  // with no static causal path to any failure-log observable from the
  // context's site universe (and, defensively, any candidate whose causal
  // node reaches no observable). Graph-driven strategies are unaffected by
  // construction — every causal-graph source reaches a sink — so scripts are
  // byte-identical with pruning on or off; trace-driven baselines (fate,
  // crashtuner, exhaustive-site listings) skip statically-inert sites and
  // converge in fewer rounds. Off by default to keep baseline numbers
  // comparable with prior measurements.
  bool static_prune = false;
  // Transient-round retry policy: a round whose runs were killed by the host
  // wall-clock watchdog (environmental slowness, not a fault-induced
  // outcome) is re-executed up to max_run_retries times with bounded
  // exponential backoff + jitter between attempts. Crashed/hung/completed
  // rounds are deterministic outcomes and are never retried.
  int max_run_retries = 2;
  int64_t retry_initial_delay_ms = 5;
  int64_t retry_max_delay_ms = 250;
  // A candidate whose run ends hung (stall fired, oracle unsatisfied) is
  // *demoted* — re-ranked behind fresh candidates — rather than retired;
  // after this many demotions it is retired for good.
  int hang_demotions_before_retirement = 2;
  // Run every simulation on the legacy statement-tree walker instead of the
  // flattened direct-threaded interpreter. The two are semantically
  // identical (asserted scenario-by-scenario in interp_equivalence_test);
  // the tree walker is kept for one deprecation cycle as the differential
  // baseline and will be removed once the flattened path has burned in.
  bool tree_walk_interpreter = false;
  // Run the full-feedback strategy's stage-1 ranking as a full per-round
  // re-rank (recompute every F_i and sort the whole candidate array) instead
  // of the incremental priority engine. The two are byte-identical on every
  // scenario, seed, and thread count (asserted by priority_engine_test); the
  // full re-rank is kept as the reference implementation and differential
  // baseline, analogous to tree_walk_interpreter above.
  bool full_rerank = false;
  // Observability sinks (src/obs/), not owned; null = disabled, and every
  // instrumentation hook reduces to a single pointer test. Both sinks are
  // deterministic under a fixed seed at any thread count: trace timestamps
  // are logical (round/item grid, see obs/trace.h) and metric values are
  // logical quantities whose accumulation is commutative.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  // Cooperative cancellation, checked at round (and chain-phase) boundaries:
  // when the pointee becomes true the search stops *between* rounds, with the
  // latest checkpoint already flushed, and the result reports interrupted.
  // Signal handlers (anduril_case, the service worker's SIGTERM drain) set
  // the flag; null = never cancelled. Rounds are atomic: a cancelled search
  // never loses a finished round and never checkpoints a half round.
  const std::atomic<bool>* cancel = nullptr;
  // Logical-timeline phase offset (iterative multi-fault mode sets it to the
  // phase index so each phase's rounds occupy a disjoint trace range).
  int trace_phase = 0;
};

// Robustness accounting for one exploration: how rounds ended, how often
// transient rounds were retried, and the wall-clock spent running workloads.
// Feeds the hang/crash/retry-rate columns of EXPERIMENTS.md.
struct ExperimentRecord {
  int completed_rounds = 0;
  int crashed_rounds = 0;
  int hung_rounds = 0;
  int budget_exceeded_rounds = 0;
  int partitioned_stuck_rounds = 0;
  int transient_retries = 0;
  double total_run_wall_seconds = 0;
  double max_round_wall_seconds = 0;

  int total_rounds() const {
    return completed_rounds + crashed_rounds + hung_rounds + budget_exceeded_rounds +
           partitioned_stuck_rounds;
  }
};

}  // namespace anduril::explorer

#endif  // ANDURIL_SRC_EXPLORER_EXPERIMENT_H_
