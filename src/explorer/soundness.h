// Causal-soundness cross-validation: dynamic ⊆ static.
//
// The site-distance ranking (§5.2) is only sound if the static causal graph
// over-approximates the dynamic behavior: whenever injecting candidate i
// actually flips observable k on, the graph must already contain a path from
// i's node to k's sink (a finite L_{i,k}). If the graph misses such a path,
// the distance-ranked strategies may starve the true root cause — a silent
// Algorithm 1 regression. This validator replays candidates on the
// simulator and turns any dynamically-observed fault→observable pair with
// an infinite static distance into a checkable violation.
//
// Contract: the check covers kException candidates — the kinds the causal
// graph models directly. Crash/stall/network candidates reuse exception
// nodes heuristically (a deliberate approximation documented in context.h),
// so holding them to path-exactness would flag the approximation, not a
// regression.

#ifndef ANDURIL_SRC_EXPLORER_SOUNDNESS_H_
#define ANDURIL_SRC_EXPLORER_SOUNDNESS_H_

#include <string>
#include <vector>

#include "src/explorer/context.h"

namespace anduril::explorer {

// One dynamically-observed fault→observable pair the static graph misses.
struct SoundnessViolation {
  size_t candidate = 0;          // index into context.candidates()
  size_t observable = 0;         // index into context.observables()
  std::string observable_key;    // the observable's sanitized log key
  int64_t occurrence = 0;        // the occurrence level that was armed
};

struct SoundnessReport {
  size_t candidates_checked = 0;  // candidates actually replayed
  size_t candidates_skipped = 0;  // non-exception kinds / never-executed sites
  size_t pairs_observed = 0;      // dynamic fault→observable pairs seen
  std::vector<SoundnessViolation> violations;

  bool ok() const { return violations.empty(); }
  // "sound" summary or one line per violation, lint-style.
  std::string ToText(const ExplorerContext& context) const;
};

// Replays each exception-kind candidate once (armed at its first dynamic
// occurrence, run with the spec's base seed) and checks every observable the
// injection newly turned on against the precomputed static distances.
// `max_candidates` caps the replay count for very large candidate sets
// (0 = check all).
SoundnessReport CheckCausalSoundness(const ExplorerContext& context,
                                     size_t max_candidates = 0);

}  // namespace anduril::explorer

#endif  // ANDURIL_SRC_EXPLORER_SOUNDNESS_H_
