#include "src/explorer/context.h"

#include <unordered_set>

#include "src/analysis/observable_map.h"
#include "src/interp/simulator.h"
#include "src/obs/metrics.h"
#include "src/util/check.h"
#include "src/util/stopwatch.h"

namespace anduril::explorer {

ExplorerContext::ExplorerContext(const ExperimentSpec& spec, const ExplorerOptions& options)
    : spec_(&spec), options_(options) {
  Stopwatch init_timer;
  const ir::Program& program = *spec.program;

  failure_log_ = logdiff::ParseLogFile(spec.failure_log_text);

  // Lower the program once for the flattened interpreter (§7-style
  // precomputation); every run of the search shares it read-only.
  if (!options.tree_walk_interpreter) {
    flat_program_ = std::make_unique<const ir::FlatProgram>(program);
  }

  // Step 1: run the workload fault-free to obtain the normal log and the
  // fault-instance distribution.
  Stopwatch workload_timer;
  interp::FaultRuntime runtime(&program);
  runtime.SetPinned(spec.pinned_faults);  // multi-fault mode: part of the workload
  interp::Simulator simulator(&program, spec.cluster, spec.base_seed, &runtime,
                              flat_program_.get());
  if (options.tree_walk_interpreter) {
    simulator.set_tree_walk(true);
  }
  interp::RunResult normal = simulator.Run();
  normal_workload_seconds_ = workload_timer.ElapsedSeconds();
  normal_trace_ = normal.trace;
  normal_log_ = logdiff::ParseLogFile(interp::FormatLogFile(normal.log));

  // Step 2: per-thread diff -> relevant observables (§5.1).
  logdiff::LogComparison comparison = logdiff::CompareLogs(normal_log_, failure_log_);
  std::vector<std::string> keys = comparison.target_only_keys;
  observables_.reserve(keys.size());
  for (const std::string& key : keys) {
    ObservableInfo info;
    info.key = key;
    observables_.push_back(std::move(info));
  }
  for (const logdiff::ParsedLine& line : failure_log_.lines) {
    for (size_t k = 0; k < keys.size(); ++k) {
      if (line.key == keys[k]) {
        observables_[k].failure_positions.push_back(line.index);
        break;
      }
    }
  }

  // Step 3: causal graph from the observables' sinks.
  analysis::ObservableMapper mapper(program);
  std::vector<analysis::CausalSink> sinks = mapper.Resolve(keys);
  graph_ = std::make_unique<analysis::CausalGraph>(program, sinks);

  // Step 4: injectable candidates = external-exception sources.
  for (const analysis::CausalGraph::SourceSite& source : graph_->sources()) {
    if (program.fault_site(source.site).kind != ir::FaultSiteKind::kExternal) {
      continue;
    }
    candidates_.push_back(FaultCandidate{source.site, source.type, source.node});
  }
  // Crash/stall kinds (opt-in): one candidate of each per causal fault site,
  // appended after all exception candidates so that at equal priority the
  // cheaper-to-diagnose exception fault is tried first. They reuse the
  // site's exception node for causal distances — a crash or stall at a call
  // perturbs the same downstream paths the thrown exception would.
  if (options.crash_stall_candidates) {
    std::unordered_set<ir::FaultSiteId> sites_seen;
    size_t exception_candidates = candidates_.size();
    for (size_t c = 0; c < exception_candidates; ++c) {
      // By value: the push_backs below can reallocate candidates_, and a
      // reference would dangle between the crash and the stall append.
      const FaultCandidate base = candidates_[c];
      if (!sites_seen.insert(base.site).second) {
        continue;
      }
      candidates_.push_back(
          FaultCandidate{base.site, base.type, base.node, interp::FaultKind::kCrash});
      candidates_.push_back(
          FaultCandidate{base.site, base.type, base.node, interp::FaultKind::kStall});
    }
  }
  // Network kinds (opt-in): every Send statement inside the causal graph is
  // a message-layer fault site — its kLocation node entered the graph as a
  // call site of a handler on some observable's backward slice, so the
  // precomputed spatial distances L_{i,k} apply to it unchanged. One
  // candidate per kind per send site, appended after the exception (and
  // crash/stall) candidates.
  if (options.network_candidates) {
    for (analysis::CausalNodeId n = 0; n < static_cast<analysis::CausalNodeId>(graph_->node_count());
         ++n) {
      const analysis::CausalNode& node = graph_->node(n);
      if (node.kind != analysis::CausalNodeKind::kLocation) {
        continue;
      }
      const ir::Stmt& stmt = program.method(node.loc.method).stmt(node.loc.stmt);
      if (stmt.kind != ir::StmtKind::kSend) {
        continue;
      }
      ir::FaultSiteId site = program.FaultSiteAt(node.loc);
      ANDURIL_CHECK_NE(site, ir::kInvalidId);
      for (interp::FaultKind kind :
           {interp::FaultKind::kDrop, interp::FaultKind::kDelay,
            interp::FaultKind::kDuplicate, interp::FaultKind::kPartition}) {
        candidates_.push_back(FaultCandidate{site, ir::kInvalidId, n, kind});
      }
    }
  }

  // Step 5: precompute L_{i,k} (the §7 optimization: distances are queried
  // every round but computed once).
  std::vector<std::vector<int32_t>> node_dists;
  node_dists.reserve(static_cast<size_t>(graph_->num_observables()));
  for (int32_t k = 0; k < graph_->num_observables(); ++k) {
    node_dists.push_back(graph_->DistancesToObservable(k));
  }
  distances_.resize(candidates_.size());
  for (size_t c = 0; c < candidates_.size(); ++c) {
    distances_[c].resize(observables_.size(), analysis::CausalGraph::kUnreachable);
    for (size_t k = 0; k < observables_.size(); ++k) {
      if (k < node_dists.size()) {
        distances_[c][k] = node_dists[k][static_cast<size_t>(candidates_[c].node)];
      }
    }
  }

  // Step 5.5 (opt-in): static candidate pruning. Drop candidates whose node
  // reaches no observable. Defensive — every causal-graph node is backwards
  // reachable from a sink by construction, so this is expected to remove
  // nothing; a nonzero count here flags a graph-construction regression.
  if (options.static_prune) {
    size_t kept = 0;
    for (size_t c = 0; c < candidates_.size(); ++c) {
      bool reaches_observable = false;
      for (int32_t distance : distances_[c]) {
        if (distance != analysis::CausalGraph::kUnreachable) {
          reaches_observable = true;
          break;
        }
      }
      if (reaches_observable) {
        if (kept != c) {
          candidates_[kept] = candidates_[c];
          distances_[kept] = std::move(distances_[c]);
        }
        ++kept;
      }
    }
    pruned_candidates_ = candidates_.size() - kept;
    candidates_.resize(kept);
    distances_.resize(kept);
  }

  // Step 6: scale the fault-instance distribution onto the failure-log
  // timeline via the LCS alignment (§5.2.3).
  logdiff::TimelineAlignment alignment(comparison.matches,
                                       static_cast<int64_t>(normal_log_.lines.size()),
                                       static_cast<int64_t>(failure_log_.lines.size()));
  for (const interp::FaultInstanceEvent& event : normal_trace_) {
    instances_[event.site].push_back(
        InstanceEstimate{event.occurrence, alignment.MapPosition(event.log_clock)});
  }

  // The injectable-site universe. With static_prune, only sites with a
  // static causal path to at least one observable survive: the site must
  // appear as a causal-graph source (external-exception node on some
  // observable's backward slice) with a finite distance. Cold-module and
  // otherwise causally-inert sites — which trace-driven baselines would
  // blindly enumerate — are dropped before round 1.
  std::unordered_set<ir::FaultSiteId> causal_sites;
  if (options.static_prune) {
    for (const analysis::CausalGraph::SourceSite& source : graph_->sources()) {
      if (program.fault_site(source.site).kind != ir::FaultSiteKind::kExternal) {
        continue;
      }
      for (const std::vector<int32_t>& to_observable : node_dists) {
        if (to_observable[static_cast<size_t>(source.node)] !=
            analysis::CausalGraph::kUnreachable) {
          causal_sites.insert(source.site);
          break;
        }
      }
    }
  }
  for (const ir::FaultSite& site : program.fault_sites()) {
    if (site.kind != ir::FaultSiteKind::kExternal) {
      continue;
    }
    if (options.static_prune && causal_sites.count(site.id) == 0) {
      ++pruned_sites_;
      continue;
    }
    all_injectable_sites_.push_back(site.id);
    injectable_site_set_.insert(site.id);
  }

  init_seconds_ = init_timer.ElapsedSeconds();
  if (options_.metrics != nullptr) {
    options_.metrics->Add("explore.context_builds");
    options_.metrics->Observe("explore.context_observables",
                              static_cast<int64_t>(observables_.size()));
    options_.metrics->Observe("explore.context_candidates",
                              static_cast<int64_t>(candidates_.size()));
    if (options_.static_prune) {
      options_.metrics->Observe("explore.pruned_sites",
                                static_cast<int64_t>(pruned_sites_));
      options_.metrics->Observe("explore.pruned_candidates",
                                static_cast<int64_t>(pruned_candidates_));
    }
  }
}

const std::vector<InstanceEstimate>& ExplorerContext::InstancesOf(ir::FaultSiteId site) const {
  auto it = instances_.find(site);
  return it == instances_.end() ? empty_ : it->second;
}

}  // namespace anduril::explorer
