// The Explorer: ANDURIL's feedback-driven search driver (§3, §5).
//
// Round loop: ask the strategy for a candidate window, execute the workload
// with the window armed, evaluate the oracle, and feed the outcome (injected
// instance + missing observables) back to the strategy. A successful round
// yields a reproduction script that deterministically re-triggers the
// failure.

#ifndef ANDURIL_SRC_EXPLORER_EXPLORER_H_
#define ANDURIL_SRC_EXPLORER_EXPLORER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/explorer/checkpoint.h"
#include "src/explorer/context.h"
#include "src/explorer/experiment.h"
#include "src/explorer/strategy.h"

namespace anduril::explorer {

struct RoundRecord {
  int round = 0;
  int window_size = 0;
  bool injected = false;
  interp::InjectionCandidate candidate;  // valid if injected
  bool success = false;
  double run_seconds = 0;
  double decide_seconds = 0;  // window computation + feedback digestion
  int tracked_rank = -1;      // rank of options.track_site (Fig. 6)
  // How many relevant observables this round's log(s) contained — a proxy
  // for "how close was this run to the production failure" used by the
  // iterative multi-fault mode.
  int present_observables = -1;
  int64_t injection_requests = 0;
  int64_t decision_nanos = 0;  // runtime hook latency, cumulative
  // How the round's selected run ended, and how many transient retries the
  // round burned before settling on that outcome.
  interp::RunOutcome outcome = interp::RunOutcome::kCompleted;
  int retries = 0;
  // Network-fault candidates armed in this round's window (0 unless
  // ExplorerOptions::network_candidates widened the space).
  int network_candidates_tried = 0;
  // Partition sever/heal transitions of the round's selected run (empty
  // unless a partition fault fired).
  std::vector<interp::PartitionTransition> partition_events;
};

// A deterministic recipe for re-triggering the failure (§3 step 4.a).
struct ReproductionScript {
  ir::FaultSiteId site = ir::kInvalidId;
  int64_t occurrence = 0;
  ir::ExceptionTypeId type = ir::kInvalidId;  // kInvalidId for crash/stall
  interp::FaultKind kind = interp::FaultKind::kException;
  uint64_t seed = 0;

  std::string ToText(const ir::Program& program) const;
};

struct ExploreResult {
  bool reproduced = false;
  // The search stopped at a round boundary because ExplorerOptions::cancel
  // flipped (SIGTERM/SIGINT drain): not reproduced, not exhausted — resume
  // from the checkpoint continues exactly where it stopped.
  bool interrupted = false;
  int rounds = 0;  // rounds executed (== index of the successful round)
  double total_seconds = 0;
  double init_seconds = 0;
  std::optional<ReproductionScript> script;
  std::vector<RoundRecord> records;
  // Outcome taxonomy / retry / wall-clock accounting across the search. On a
  // resumed search this includes the rounds executed before the checkpoint.
  ExperimentRecord experiment;

  // Aggregates for the performance tables.
  int64_t median_injection_requests = 0;
  double mean_decision_nanos = 0;
  double median_round_init_seconds = 0;
  double median_workload_seconds = 0;

  // Final snapshot of ExplorerOptions::metrics at the end of the search
  // (empty when no registry was attached). Deterministic under a fixed seed
  // at any thread count.
  obs::MetricsSnapshot metrics;
};

// Checkpoint/resume wiring for a search. With a non-empty `path` the
// explorer serializes a SearchCheckpoint there after every finished round
// (atomically, via rename). With `resume` set it restores that state before
// the first round and continues from rounds_completed + 1.
struct CheckpointConfig {
  std::string path;
  const SearchCheckpoint* resume = nullptr;
  // Chain mode (ChainExplorer): the chain search state to persist alongside
  // every snapshot. The explorer copies it and appends one ChainRoundCandidate
  // per injected round of the live inner search. Plain searches leave it null
  // (an empty chain is written) and refuse to resume chain-bearing
  // checkpoints.
  const ChainState* chain = nullptr;
};

class Explorer {
 public:
  Explorer(const ExperimentSpec& spec, const ExplorerOptions& options);

  // Reuses a previously built analysis context (the shared analysis cache):
  // the static causal graph, distance matrix, and timeline are immutable
  // after construction, so phases of an iterative search — or several
  // explorers across threads — can share one context instead of re-running
  // the whole static analysis. The runs themselves still use `spec` (oracle,
  // pinned faults, base seed), which may differ from the spec the context
  // was built from, as long as it describes the same program and cluster.
  Explorer(const ExperimentSpec& spec, const ExplorerOptions& options,
           std::shared_ptr<const ExplorerContext> context);

  // Runs the search with the given strategy.
  ExploreResult Explore(InjectionStrategy* strategy);
  // Same, with checkpointing and/or resume. Checkpointing requires a
  // strategy that implements SaveState (the feedback family does; the list
  // baselines do not).
  ExploreResult Explore(InjectionStrategy* strategy, const CheckpointConfig& checkpoint);

  const ExplorerContext& context() const { return *context_; }
  // Handle for sharing the analysis with another Explorer.
  std::shared_ptr<const ExplorerContext> shared_context() const { return context_; }

  // Replays a reproduction script; returns true if the oracle holds (used by
  // tests to verify determinism of the emitted script). Honors the spec's
  // pinned faults.
  static bool Replay(const ExperimentSpec& spec, const ReproductionScript& script);

 private:
  const ExperimentSpec* spec_;
  ExplorerOptions options_;
  std::shared_ptr<const ExplorerContext> context_;
};

}  // namespace anduril::explorer

#endif  // ANDURIL_SRC_EXPLORER_EXPLORER_H_
