#include "src/explorer/signature.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "src/explorer/checkpoint.h"
#include "src/interp/simulator.h"
#include "src/logdiff/compare.h"
#include "src/util/check.h"
#include "src/util/hash.h"
#include "src/util/json.h"
#include "src/util/strings.h"

namespace anduril::explorer {
namespace {

std::string U64ToString(uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

uint64_t U64FromJson(const JsonValue* value) {
  if (value == nullptr) {
    return 0;
  }
  if (value->type() == JsonValue::Type::kString) {
    return std::strtoull(value->as_string().c_str(), nullptr, 10);
  }
  return static_cast<uint64_t>(value->as_int());
}

std::string TaskName(const interp::InitialTask& task) { return task.node + "/" + task.thread; }

// Method-name slice: every method reachable from the retained tasks' entry
// methods through Invoke/Send/Submit callee edges, sorted by name.
std::vector<std::string> MethodSlice(const ir::Program& program,
                                     const interp::ClusterSpec& cluster,
                                     const std::unordered_set<std::string>& retained) {
  std::unordered_set<ir::MethodId> visited;
  std::vector<ir::MethodId> frontier;
  for (const interp::InitialTask& task : cluster.tasks) {
    if (!retained.contains(TaskName(task))) {
      continue;
    }
    if (visited.insert(task.method).second) {
      frontier.push_back(task.method);
    }
  }
  while (!frontier.empty()) {
    ir::MethodId current = frontier.back();
    frontier.pop_back();
    for (const ir::Stmt& stmt : program.method(current).stmts) {
      if (stmt.callee == ir::kInvalidId) {
        continue;
      }
      if (visited.insert(stmt.callee).second) {
        frontier.push_back(stmt.callee);
      }
    }
  }
  std::vector<std::string> names;
  names.reserve(visited.size());
  for (ir::MethodId id : visited) {
    names.push_back(program.method(id).name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::unordered_set<std::string> KeysOfLogText(const std::string& text) {
  std::unordered_set<std::string> keys;
  logdiff::ParsedLog log = logdiff::ParseLogFile(text);
  for (const logdiff::ParsedLine& line : log.lines) {
    keys.insert(line.key);
  }
  return keys;
}

// The serialized content with the hash field left out — what the content
// hash is computed over. Field insertion order is fixed, so the bytes (and
// therefore the hash) are a pure function of the signature's fields.
JsonValue SignatureToJson(const FaultSignature& signature) {
  JsonValue root = JsonValue::Object();
  root.Set("version", JsonValue::Int(signature.version));
  root.Set("case_id", JsonValue::Str(signature.case_id));
  root.Set("program_fingerprint",
           JsonValue::Str(U64ToString(signature.program_fingerprint)));
  root.Set("minimized", JsonValue::Bool(signature.minimized));
  JsonValue steps = JsonValue::Array();
  for (const SignatureStep& step : signature.steps) {
    JsonValue entry = JsonValue::Object();
    entry.Set("site", JsonValue::Str(step.site));
    entry.Set("exception", JsonValue::Str(step.exception));
    entry.Set("occurrence", JsonValue::Int(step.occurrence));
    entry.Set("kind", JsonValue::Str(interp::FaultKindName(step.kind)));
    entry.Set("seed", JsonValue::Str(U64ToString(step.seed)));
    steps.Append(std::move(entry));
  }
  root.Set("steps", std::move(steps));
  auto string_array = [](const std::vector<std::string>& values) {
    JsonValue array = JsonValue::Array();
    for (const std::string& value : values) {
      array.Append(JsonValue::Str(value));
    }
    return array;
  };
  root.Set("oracle_keys", string_array(signature.oracle_keys));
  root.Set("retained_tasks", string_array(signature.retained_tasks));
  root.Set("ir_methods", string_array(signature.ir_methods));
  return root;
}

uint64_t ContentHash(const FaultSignature& signature) {
  return Fnv1a(SignatureToJson(signature).Dump());
}

// Exact-name site resolution (FaultSite names are unique per program).
ir::FaultSiteId ResolveSite(const ir::Program& program, const std::string& name) {
  for (const ir::FaultSite& site : program.fault_sites()) {
    if (site.name == name) {
      return site.id;
    }
  }
  return ir::kInvalidId;
}

}  // namespace

FaultSignature BuildSignature(const ExperimentSpec& spec, const std::string& case_id,
                              const ChainResult& result) {
  ANDURIL_CHECK(result.reproduced && !result.chain.steps.empty())
      << "BuildSignature needs a successful reproduction";
  FaultSignature signature;
  signature.case_id = case_id;
  signature.program_fingerprint = ProgramFingerprint(*spec.program);
  for (const FaultChainStep& step : result.chain.steps) {
    SignatureStep out;
    out.site = spec.program->fault_site(step.candidate.site).name;
    out.exception = step.candidate.type != ir::kInvalidId
                        ? spec.program->exception_type(step.candidate.type).name
                        : "";
    out.occurrence = step.candidate.occurrence;
    out.kind = step.candidate.kind;
    out.seed = step.seed;
    signature.steps.push_back(std::move(out));
  }
  // Every task, explicitly: the signature is standalone, so nothing about
  // the workload stays implicit. Minimization prunes from here.
  for (const interp::InitialTask& task : spec.cluster->tasks) {
    signature.retained_tasks.push_back(TaskName(task));
  }
  {
    std::unordered_set<std::string> retained(signature.retained_tasks.begin(),
                                             signature.retained_tasks.end());
    signature.ir_methods = MethodSlice(*spec.program, *spec.cluster, retained);
  }

  // Oracle keys: symptoms of the production failure log that this
  // reproduction's failing run also shows and the fault-free run does not.
  SignatureReplay failing = ReplaySignature(spec, signature);
  ANDURIL_CHECK(failing.error.empty()) << failing.error;
  interp::FaultRuntime runtime(spec.program);
  interp::Simulator simulator(spec.program, spec.cluster, spec.base_seed, &runtime);
  interp::RunResult fault_free = simulator.Run();
  logdiff::LogComparison comparison =
      logdiff::CompareLogs(logdiff::ParseLogFile(interp::FormatLogFile(fault_free.log)),
                           logdiff::ParseLogFile(interp::FormatLogFile(failing.run.log)));
  std::unordered_set<std::string> production_keys = KeysOfLogText(spec.failure_log_text);
  for (const std::string& key : comparison.target_only_keys) {
    if (production_keys.contains(key)) {
      signature.oracle_keys.push_back(key);
    }
  }
  return signature;
}

SignatureReplay ReplaySignature(const ExperimentSpec& spec, const FaultSignature& signature) {
  SignatureReplay result;
  if (signature.steps.empty()) {
    result.error = "signature has no fault steps";
    return result;
  }
  if (signature.program_fingerprint != ProgramFingerprint(*spec.program)) {
    result.error =
        "signature program fingerprint does not match this build's program — the "
        "scenario changed since the signature was captured; re-run the search and "
        "re-emit the signature";
    return result;
  }
  std::vector<interp::InjectionCandidate> resolved;
  for (const SignatureStep& step : signature.steps) {
    interp::InjectionCandidate candidate;
    candidate.site = ResolveSite(*spec.program, step.site);
    if (candidate.site == ir::kInvalidId) {
      result.error = "signature references unknown fault site \"" + step.site + "\"";
      return result;
    }
    candidate.occurrence = step.occurrence;
    candidate.kind = step.kind;
    candidate.type = ir::kInvalidId;
    if (step.kind == interp::FaultKind::kException) {
      candidate.type = spec.program->FindException(step.exception);
      if (candidate.type == ir::kInvalidId) {
        result.error =
            "signature references unknown exception type \"" + step.exception + "\"";
        return result;
      }
    }
    resolved.push_back(candidate);
  }

  // Filtered workload: only the retained tasks run (order preserved).
  interp::ClusterSpec cluster = *spec.cluster;
  std::unordered_set<std::string> retained(signature.retained_tasks.begin(),
                                           signature.retained_tasks.end());
  cluster.tasks.clear();
  for (const interp::InitialTask& task : spec.cluster->tasks) {
    if (retained.contains(TaskName(task))) {
      cluster.tasks.push_back(task);
    }
  }

  // One run, zero search rounds: prefix pinned, final step as the window.
  interp::FaultRuntime runtime(spec.program);
  runtime.SetPinned(
      std::vector<interp::InjectionCandidate>(resolved.begin(), resolved.end() - 1));
  runtime.SetWindow({resolved.back()});
  interp::Simulator simulator(spec.program, &cluster, signature.steps.back().seed, &runtime);
  result.run = simulator.Run();

  bool fired = result.run.injected.has_value() &&
               result.run.pinned_fired == static_cast<int64_t>(resolved.size()) - 1 &&
               spec.oracle(*spec.program, result.run);
  if (fired && !signature.oracle_keys.empty()) {
    std::unordered_set<std::string> keys =
        KeysOfLogText(interp::FormatLogFile(result.run.log));
    for (const std::string& key : signature.oracle_keys) {
      if (!keys.contains(key)) {
        fired = false;
        break;
      }
    }
  }
  result.fired = fired;
  return result;
}

FaultSignature MinimizeSignature(const ExperimentSpec& spec, FaultSignature signature,
                                 int* replays) {
  auto fires = [&](const FaultSignature& candidate) {
    if (replays != nullptr) {
      ++*replays;
    }
    return ReplaySignature(spec, candidate).fired;
  };

  // Pass 1: chain steps, front-to-back. The final step stays — it is the
  // window injection the replay run is anchored on.
  for (size_t i = 0; i + 1 < signature.steps.size();) {
    FaultSignature candidate = signature;
    candidate.steps.erase(candidate.steps.begin() + static_cast<std::ptrdiff_t>(i));
    if (fires(candidate)) {
      signature = std::move(candidate);  // keep the drop; retry same index
    } else {
      ++i;
    }
  }

  // Pass 2: workload tasks, front-to-back. Dropping a task reshapes the
  // schedule, so acceptance is purely "does the oracle still fire".
  for (size_t i = 0; i < signature.retained_tasks.size();) {
    FaultSignature candidate = signature;
    candidate.retained_tasks.erase(candidate.retained_tasks.begin() +
                                   static_cast<std::ptrdiff_t>(i));
    if (fires(candidate)) {
      signature = std::move(candidate);
    } else {
      ++i;
    }
  }

  // The method slice follows from the surviving tasks.
  std::unordered_set<std::string> retained(signature.retained_tasks.begin(),
                                           signature.retained_tasks.end());
  signature.ir_methods = MethodSlice(*spec.program, *spec.cluster, retained);
  signature.minimized = true;
  return signature;
}

std::string SerializeSignature(const FaultSignature& signature) {
  JsonValue root = SignatureToJson(signature);
  root.Set("content_hash", JsonValue::Str(U64ToString(ContentHash(signature))));
  return root.Dump();
}

bool ParseSignature(const std::string& text, FaultSignature* out, std::string* error) {
  std::string parse_error;
  JsonValue root = JsonValue::Parse(text, &parse_error);
  if (!parse_error.empty()) {
    *error = "signature parse error: " + parse_error;
    return false;
  }
  if (root.type() != JsonValue::Type::kObject) {
    *error = "signature is not a JSON object";
    return false;
  }
  const JsonValue* version = root.Find("version");
  if (version == nullptr || version->as_int() != kSignatureVersion) {
    *error = StrFormat(
        "unsupported signature version %lld (this build reads only version %d); "
        "re-run the search and re-emit the signature",
        version == nullptr ? 0LL : static_cast<long long>(version->as_int()),
        kSignatureVersion);
    return false;
  }
  *out = FaultSignature{};
  out->version = static_cast<int>(version->as_int());
  out->case_id = root.Find("case_id") ? root.Find("case_id")->as_string() : "";
  out->program_fingerprint = U64FromJson(root.Find("program_fingerprint"));
  out->minimized = root.Find("minimized") != nullptr && root.Find("minimized")->as_bool();
  if (const JsonValue* steps = root.Find("steps"); steps != nullptr) {
    for (const JsonValue& entry : steps->items()) {
      if (entry.type() != JsonValue::Type::kObject) {
        *error = "signature step is not an object";
        return false;
      }
      SignatureStep step;
      step.site = entry.Find("site") ? entry.Find("site")->as_string() : "";
      step.exception = entry.Find("exception") ? entry.Find("exception")->as_string() : "";
      step.occurrence =
          entry.Find("occurrence") ? entry.Find("occurrence")->as_int() : 1;
      const std::string kind =
          entry.Find("kind") ? entry.Find("kind")->as_string() : std::string("exception");
      if (!interp::FaultKindFromName(kind, &step.kind)) {
        *error = "unknown fault kind \"" + kind + "\"";
        return false;
      }
      step.seed = U64FromJson(entry.Find("seed"));
      out->steps.push_back(std::move(step));
    }
  }
  auto read_strings = [&root](const char* key, std::vector<std::string>* into) {
    if (const JsonValue* array = root.Find(key); array != nullptr) {
      for (const JsonValue& entry : array->items()) {
        into->push_back(entry.as_string());
      }
    }
  };
  read_strings("oracle_keys", &out->oracle_keys);
  read_strings("retained_tasks", &out->retained_tasks);
  read_strings("ir_methods", &out->ir_methods);

  uint64_t stored_hash = U64FromJson(root.Find("content_hash"));
  if (stored_hash != ContentHash(*out)) {
    *error =
        "signature content hash mismatch: the file's fields do not hash to its "
        "recorded content_hash — the signature is corrupt or was hand-edited; "
        "re-emit it from a fresh search";
    return false;
  }
  error->clear();
  return true;
}

bool SaveSignatureFile(const std::string& path, const FaultSignature& signature) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) {
      return false;
    }
    out << SerializeSignature(signature) << "\n";
    if (!out.flush()) {
      return false;
    }
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool LoadSignatureFile(const std::string& path, FaultSignature* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open signature file " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseSignature(buffer.str(), out, error);
}

}  // namespace anduril::explorer
