// Iterative multi-fault reproduction (paper §3 "Assumptions" / §6).
//
// ANDURIL injects a single fault per run, so a failure that needs several
// causally-independent root-cause faults cannot be reproduced in one search.
// The paper's prescribed workflow: run ANDURIL; if the symptom is not
// reproduced, take the round whose logs came *closest* to the production
// failure log, fix that round's fault into the workload, and run ANDURIL
// again — one fault at a time.
//
// IterativeExplorer automates that loop: after every unsuccessful search it
// pins the most-promising injected instance (the one whose combined run log
// contained the most relevant observables) into the experiment's
// pinned_faults and restarts the search, up to `max_faults` pinned faults.
//
// All phases share one immutable ExplorerContext (the shared analysis
// cache): the causal graph, distance matrix, and timeline are computed once
// in the first phase and reused, instead of re-running the static analysis
// per phase. The feedback loop absorbs the pinned fault's now-expected
// observables by deprioritizing them.

#ifndef ANDURIL_SRC_EXPLORER_ITERATIVE_H_
#define ANDURIL_SRC_EXPLORER_ITERATIVE_H_

#include <vector>

#include "src/explorer/explorer.h"

namespace anduril::explorer {

struct IterativeResult {
  bool reproduced = false;
  // Every fault needed, in discovery order; the last entry is the one whose
  // injection finally satisfied the oracle.
  std::vector<ReproductionScript> faults;
  int total_rounds = 0;
  int phases = 0;  // searches executed (1 = single-fault success)
};

class IterativeExplorer {
 public:
  IterativeExplorer(const ExperimentSpec& spec, const ExplorerOptions& options)
      : spec_(spec), options_(options) {}

  // Searches with up to `max_faults` pinned faults (max_faults >= 1).
  IterativeResult Explore(int max_faults);

  // Replays a full multi-fault reproduction.
  static bool Replay(ExperimentSpec spec, const IterativeResult& result);

 private:
  ExperimentSpec spec_;  // by value: pinned_faults grows per phase
  ExplorerOptions options_;
};

}  // namespace anduril::explorer

#endif  // ANDURIL_SRC_EXPLORER_ITERATIVE_H_
