// Iterative multi-fault reproduction (paper §3 "Assumptions" / §6), and its
// cascading generalization: ordered fault chains with causal stitching.
//
// ANDURIL injects a single fault per run, so a failure that needs several
// causally-independent root-cause faults cannot be reproduced in one search.
// The paper's prescribed workflow: run ANDURIL; if the symptom is not
// reproduced, take the round whose logs came *closest* to the production
// failure log, fix that round's fault into the workload, and run ANDURIL
// again — one fault at a time.
//
// IterativeExplorer automates that loop: after every unsuccessful search it
// pins the most-promising injected instance (the one whose combined run log
// contained the most relevant observables) into the experiment's
// pinned_faults and restarts the search, up to `max_faults` pinned faults.
//
// All IterativeExplorer phases share one immutable ExplorerContext (the
// shared analysis cache): the causal graph, distance matrix, and timeline
// are computed once in the first phase and reused, instead of re-running the
// static analysis per phase. The feedback loop absorbs the pinned fault's
// now-expected observables by deprioritizing them.
//
// That sharing is exactly what makes IterativeExplorer blind to *cascading*
// failures. The context's instance estimates come from the fault-free
// baseline run, so a fault site that only executes while an earlier fault is
// active has zero instances and is never armed — independent multi-fault
// search provably caps out on such cases. ChainExplorer closes the gap
// (CSnake-style): it searches an *ordered* FaultChain, rebuilding the
// analysis context at every phase with the accepted chain prefix pinned into
// the baseline. The degraded baseline (a) gives instances to the sites the
// previous fault newly exposed and (b) shrinks the observable set to the
// still-missing symptoms. Between phases it runs a *stitch run* for the most
// promising injected candidate (prefix + candidate pinned, no window) and
// accepts the candidate as the next chain step only if the stitch run
// genuinely moved the system: it flipped relevant observables or executed
// fault sites the phase baseline never reached. Those newly-executed sites
// are the causal stitches — they seed the next phase's candidate ranking via
// InjectionStrategy::SeedStitchedSites.

#ifndef ANDURIL_SRC_EXPLORER_ITERATIVE_H_
#define ANDURIL_SRC_EXPLORER_ITERATIVE_H_

#include <vector>

#include "src/explorer/explorer.h"
#include "src/interp/run_result.h"

namespace anduril::explorer {

struct IterativeResult {
  bool reproduced = false;
  // Every fault needed, in discovery order; the last entry is the one whose
  // injection finally satisfied the oracle.
  std::vector<ReproductionScript> faults;
  int total_rounds = 0;
  int phases = 0;  // searches executed (1 = single-fault success)
};

class IterativeExplorer {
 public:
  IterativeExplorer(const ExperimentSpec& spec, const ExplorerOptions& options)
      : spec_(spec), options_(options) {}

  // Searches with up to `max_faults` pinned faults (max_faults >= 1).
  IterativeResult Explore(int max_faults);

  // Replays a full multi-fault reproduction.
  static bool Replay(ExperimentSpec spec, const IterativeResult& result);

 private:
  ExperimentSpec spec_;  // by value: pinned_faults grows per phase
  ExplorerOptions options_;
};

// One accepted step of an ordered fault chain. `seed` is the seed of the run
// that validated the step: the stitch run (== base_seed) for intermediate
// steps, the successful search round's seed for the final step.
struct FaultChainStep {
  interp::InjectionCandidate candidate;
  uint64_t seed = 0;
  int rounds = 0;  // search rounds the step's phase consumed
  // Relevant observable keys the step's stitch run newly flipped (empty for
  // the final step — its run satisfied the oracle outright).
  std::vector<std::string> stitched_observables;
  friend bool operator==(const FaultChainStep&, const FaultChainStep&) = default;
};

// An ordered sequence of faults that together reproduce a cascading
// failure. Unlike IterativeResult's independent faults, order matters: step
// N's candidate typically has no dynamic instance until steps 1..N-1 fired.
struct FaultChain {
  std::vector<FaultChainStep> steps;
  friend bool operator==(const FaultChain&, const FaultChain&) = default;
};

struct ChainResult {
  bool reproduced = false;
  // ExplorerOptions::cancel flipped mid-search: the chain search stopped at a
  // round boundary (checkpoint flushed, like a kill) and can be resumed.
  bool interrupted = false;
  // On success the full ordered chain; the last step is the window injection
  // that satisfied the oracle.
  FaultChain chain;
  int total_rounds = 0;
  int phases = 0;  // searches executed (1 = single-fault success)
  // Stitch candidates discarded because their stitch run wedged (hung or
  // partition-stuck): a wedged intermediate step demotes the whole chain
  // candidate, not just the step.
  int demoted_chain_candidates = 0;
};

// Result of one chain-stitch run: the accepted chain prefix plus one
// candidate, all pinned, no window, at the experiment's base seed.
struct StitchRunResult {
  interp::RunResult run;
  // Wall-budget-kill retries burned (bounded exponential backoff; all other
  // outcomes are deterministic and never retried).
  int retries = 0;
  // The run hung or got partition-stuck: extending the chain through this
  // candidate wedges the system, so the whole chain candidate is demoted.
  bool demote_chain = false;
};

// Executes the stitch run for `candidate` over `spec` (whose pinned_faults
// hold the accepted chain prefix). Exposed for tests; ChainExplorer calls it
// between phases.
StitchRunResult RunChainStitch(const ExperimentSpec& spec,
                               const interp::InjectionCandidate& candidate,
                               const ExplorerOptions& options);

// Ordered-chain search (header comment above). Deterministic under a fixed
// seed at any thread count; supports checkpoint/resume mid-chain via the v3
// chain block.
class ChainExplorer {
 public:
  ChainExplorer(const ExperimentSpec& spec, const ExplorerOptions& options)
      : spec_(spec), options_(options) {}

  // Searches chains of up to `max_chain_length` steps (>= 1).
  ChainResult Explore(int max_chain_length);
  ChainResult Explore(int max_chain_length, const CheckpointConfig& checkpoint);

  // Replays a full chain reproduction: all but the last step pinned, the
  // last as the window injection at its recorded seed.
  static bool Replay(ExperimentSpec spec, const ChainResult& result);

 private:
  ExperimentSpec spec_;  // by value: the accepted prefix is pinned per phase
  ExplorerOptions options_;
};

}  // namespace anduril::explorer

#endif  // ANDURIL_SRC_EXPLORER_ITERATIVE_H_
