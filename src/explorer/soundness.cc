#include "src/explorer/soundness.h"

#include <unordered_set>

#include "src/analysis/causal_graph.h"
#include "src/interp/simulator.h"
#include "src/logdiff/parser.h"
#include "src/util/strings.h"

namespace anduril::explorer {

namespace {

std::unordered_set<std::string> KeysOfLog(const interp::RunResult& run) {
  std::unordered_set<std::string> keys;
  logdiff::ParsedLog log = logdiff::ParseLogFile(interp::FormatLogFile(run.log));
  for (const logdiff::ParsedLine& line : log.lines) {
    keys.insert(line.key);
  }
  return keys;
}

}  // namespace

std::string SoundnessReport::ToText(const ExplorerContext& context) const {
  if (ok()) {
    return StrFormat(
        "sound: %zu candidates replayed (%zu skipped), %zu dynamic "
        "fault->observable pairs all statically reachable\n",
        candidates_checked, candidates_skipped, pairs_observed);
  }
  std::string out;
  const ir::Program& program = context.program();
  for (const SoundnessViolation& violation : violations) {
    const FaultCandidate& candidate = context.candidates()[violation.candidate];
    out += StrFormat(
        "error [causal-soundness] injecting %s (%s, occurrence %lld) flipped "
        "observable \"%s\" but the causal graph has no path to it\n",
        program.fault_site(candidate.site).name.c_str(),
        program.exception_type(candidate.type).name.c_str(),
        static_cast<long long>(violation.occurrence), violation.observable_key.c_str());
  }
  out += StrFormat("%zu violations over %zu candidates (%zu pairs)\n",
                   violations.size(), candidates_checked, pairs_observed);
  return out;
}

SoundnessReport CheckCausalSoundness(const ExplorerContext& context,
                                     size_t max_candidates) {
  SoundnessReport report;
  const ExperimentSpec& spec = context.spec();
  const ir::Program& program = context.program();

  // Keys the fault-free run already produces: an injected run re-emitting
  // one of these is business as usual, not a fault effect.
  std::unordered_set<std::string> baseline_keys;
  for (const logdiff::ParsedLine& line : context.normal_log().lines) {
    baseline_keys.insert(line.key);
  }

  interp::FaultRuntime runtime(&program);
  runtime.SetPinned(spec.pinned_faults);
  for (size_t c = 0; c < context.candidates().size(); ++c) {
    if (max_candidates != 0 && report.candidates_checked >= max_candidates) {
      break;
    }
    const FaultCandidate& candidate = context.candidates()[c];
    // Exception kinds only — see the header contract — and only candidates
    // the fault-free run actually reached (an instance guarantees the armed
    // occurrence fires, making the replay informative).
    const std::vector<InstanceEstimate>& instances = context.InstancesOf(candidate.site);
    if (candidate.kind != interp::FaultKind::kException || instances.empty()) {
      ++report.candidates_skipped;
      continue;
    }
    runtime.SetWindow({Arm(candidate, instances.front().occurrence)});
    interp::Simulator simulator(&program, spec.cluster, spec.base_seed, &runtime,
                                context.flat_program());
    if (context.options().tree_walk_interpreter) {
      simulator.set_tree_walk(true);
    }
    interp::RunResult run = simulator.Run();
    ++report.candidates_checked;

    std::unordered_set<std::string> run_keys = KeysOfLog(run);
    const std::vector<ObservableInfo>& observables = context.observables();
    for (size_t k = 0; k < observables.size(); ++k) {
      if (!run_keys.contains(observables[k].key) ||
          baseline_keys.contains(observables[k].key)) {
        continue;
      }
      ++report.pairs_observed;
      if (context.Distance(c, k) == analysis::CausalGraph::kUnreachable) {
        report.violations.push_back(SoundnessViolation{
            c, k, observables[k].key, instances.front().occurrence});
      }
    }
  }
  return report;
}

}  // namespace anduril::explorer
