#include "src/explorer/priority_engine.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/hash.h"

namespace anduril::explorer {

PriorityEngine::PriorityEngine(EngineSpec spec) { BuildFromSpec(std::move(spec)); }

PriorityEngine::PriorityEngine(const ExplorerContext& context,
                               const std::unordered_set<ir::FaultSiteId>& stitched_sites) {
  const auto& candidates = context.candidates();
  const size_t num_observables = context.observables().size();

  EngineSpec spec;
  spec.observables = num_observables;
  spec.rows.resize(candidates.size());
  spec.boosts.resize(candidates.size(), 0);
  spec.instance_counts.resize(candidates.size(), 0);
  site_of_.resize(candidates.size());

  for (size_t i = 0; i < candidates.size(); ++i) {
    const FaultCandidate& candidate = candidates[i];
    site_of_[i] = candidate.site;
    for (size_t k = 0; k < num_observables; ++k) {
      int32_t distance = context.Distance(i, k);
      if (distance != analysis::CausalGraph::kUnreachable) {
        spec.rows[i].emplace_back(static_cast<uint32_t>(k), static_cast<int64_t>(distance));
      }
    }
    if (stitched_sites.count(candidate.site) != 0) {
      spec.boosts[i] = kStitchBoost;
    }
    const auto& instances = context.InstancesOf(candidate.site);
    // The untried budget leans on the runtime's dense occurrence numbering:
    // the n instances of a site in the fault-free trace carry occurrences
    // exactly 1..n, so "occurrence in [1, n]" is the same predicate the
    // reference path evaluates by scanning InstancesOf.
    for (size_t j = 0; j < instances.size(); ++j) {
      ANDURIL_CHECK(instances[j].occurrence == static_cast<int64_t>(j) + 1)
          << "fault-free trace occurrences are not dense for site " << candidate.site;
    }
    spec.instance_counts[i] = static_cast<int64_t>(instances.size());

    const interp::InjectionCandidate armed = Arm(candidate, 1);
    armed_index_[ArmedKey{armed.site, armed.type, armed.kind}].push_back(
        static_cast<uint32_t>(i));
  }
  BuildFromSpec(std::move(spec));
}

void PriorityEngine::BuildFromSpec(EngineSpec spec) {
  const size_t n = spec.rows.size();
  num_observables_ = spec.observables;

  row_begin_.assign(n + 1, 0);
  size_t nnz = 0;
  for (size_t i = 0; i < n; ++i) {
    nnz += spec.rows[i].size();
  }
  col_obs_.reserve(nnz);
  col_dist_.reserve(nnz);
  std::vector<uint32_t> column_sizes(num_observables_, 0);
  for (size_t i = 0; i < n; ++i) {
    row_begin_[i] = static_cast<uint32_t>(col_obs_.size());
    for (const auto& [k, distance] : spec.rows[i]) {
      ANDURIL_CHECK(k < num_observables_)
          << "engine spec row references observable " << k << " of " << num_observables_;
      col_obs_.push_back(k);
      col_dist_.push_back(distance);
      ++column_sizes[k];
    }
  }
  row_begin_[n] = static_cast<uint32_t>(col_obs_.size());

  obs_begin_.assign(num_observables_ + 1, 0);
  for (size_t k = 0; k < num_observables_; ++k) {
    obs_begin_[k + 1] = obs_begin_[k] + column_sizes[k];
  }
  obs_rows_.resize(nnz);
  std::vector<uint32_t> fill(obs_begin_.begin(), obs_begin_.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    for (uint32_t idx = row_begin_[i]; idx < row_begin_[i + 1]; ++idx) {
      obs_rows_[fill[col_obs_[idx]]++] = static_cast<uint32_t>(i);
    }
  }

  f_.assign(n, kPriorityInfinity);
  bestk_.assign(n, 0);
  boost_ = spec.boosts.empty() ? std::vector<int64_t>(n, 0) : std::move(spec.boosts);
  ANDURIL_CHECK(boost_.size() == n) << "engine spec boost size mismatch";
  finite_.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    finite_[i] = row_begin_[i] != row_begin_[i + 1] ? 1 : 0;
  }
  initial_untried_ = std::move(spec.instance_counts);
  ANDURIL_CHECK(initial_untried_.size() == n) << "engine spec instance count size mismatch";
  untried_ = initial_untried_;

  bucket_.assign(num_observables_, {});
  bucket_pos_.assign(n, kNoPos);
  heap_pos_.assign(n, kNoPos);
  mark_.assign(n, 0);

  Reset(std::vector<int64_t>(num_observables_, 0));
}

void PriorityEngine::Reset(const std::vector<int64_t>& priorities) {
  ANDURIL_CHECK(priorities.size() == num_observables_)
      << "engine reset with " << priorities.size() << " priorities for " << num_observables_
      << " observables";
  priorities_ = priorities;
  untried_ = initial_untried_;

  for (auto& bucket : bucket_) {
    bucket.clear();
  }
  heap_.clear();
  const size_t n = f_.size();
  for (size_t i = 0; i < n; ++i) {
    bucket_pos_[i] = kNoPos;
    heap_pos_[i] = kNoPos;
  }
  for (size_t i = 0; i < n; ++i) {
    if (finite_[i] == 0) {
      continue;
    }
    int64_t best = kPriorityInfinity;
    uint32_t best_k = 0;
    for (uint32_t idx = row_begin_[i]; idx < row_begin_[i + 1]; ++idx) {
      int64_t value = col_dist_[idx] + priorities_[col_obs_[idx]];
      if (value < best) {
        best = value;
        best_k = col_obs_[idx];
      }
    }
    f_[i] = best;
    bestk_[i] = best_k;
    BucketInsert(static_cast<uint32_t>(i));
    if (untried_[i] > 0) {
      HeapPush(static_cast<uint32_t>(i));
    }
  }
}

void PriorityEngine::ApplyDeltas(const std::vector<std::pair<size_t, int64_t>>& deltas) {
  arena_.Reset();
  ArenaVec<uint32_t> dirty(&arena_);
  ++epoch_;
  if (epoch_ == 0) {  // wrapped: invalidate every stale mark
    std::fill(mark_.begin(), mark_.end(), 0);
    epoch_ = 1;
  }

  // Collect the dirty set against the *pre-update* argmin buckets, then
  // apply every priority move, then recompute. Each dirty row is recomputed
  // once from the final priorities, so overlapping deltas compose exactly.
  for (const auto& [k, delta] : deltas) {
    ANDURIL_CHECK(k < num_observables_)
        << "feedback delta for observable " << k << " of " << num_observables_;
    if (delta == 0) {
      continue;
    }
    if (delta > 0) {
      // I_k got worse: only rows whose current minimum runs through k can
      // change (any other row's value at k stays >= its minimum).
      for (uint32_t candidate : bucket_[k]) {
        if (mark_[candidate] != epoch_) {
          mark_[candidate] = epoch_;
          dirty.push_back(candidate);
        }
      }
    } else {
      // I_k improved: any row with a finite entry at k may gain a new min.
      for (uint32_t idx = obs_begin_[k]; idx < obs_begin_[k + 1]; ++idx) {
        uint32_t candidate = obs_rows_[idx];
        if (mark_[candidate] != epoch_) {
          mark_[candidate] = epoch_;
          dirty.push_back(candidate);
        }
      }
    }
  }
  for (const auto& [k, delta] : deltas) {
    priorities_[k] += delta;
  }
  for (uint32_t candidate : dirty) {
    RecomputeRow(candidate);
  }
}

void PriorityEngine::RecomputeRow(uint32_t candidate) {
  int64_t best = kPriorityInfinity;
  uint32_t best_k = 0;
  for (uint32_t idx = row_begin_[candidate]; idx < row_begin_[candidate + 1]; ++idx) {
    int64_t value = col_dist_[idx] + priorities_[col_obs_[idx]];
    if (value < best) {
      best = value;
      best_k = col_obs_[idx];
    }
  }
  f_[candidate] = best;
  if (best_k != bestk_[candidate]) {
    BucketRemove(candidate);
    bestk_[candidate] = best_k;
    BucketInsert(candidate);
  }
  if (heap_pos_[candidate] != kNoPos) {
    HeapFix(candidate);
  }
}

void PriorityEngine::NoteTried(const interp::InjectionCandidate& armed) {
  auto it = armed_index_.find(ArmedKey{armed.site, armed.type, armed.kind});
  if (it == armed_index_.end()) {
    return;
  }
  for (uint32_t candidate : it->second) {
    if (armed.occurrence >= 1 && armed.occurrence <= initial_untried_[candidate]) {
      NoteTriedIndex(candidate);
    }
  }
}

void PriorityEngine::NoteTriedIndex(size_t candidate) {
  if (untried_[candidate] <= 0) {
    return;
  }
  if (--untried_[candidate] == 0 && heap_pos_[candidate] != kNoPos) {
    HeapRemove(static_cast<uint32_t>(candidate));
  }
}

void PriorityEngine::VisitActive(
    const std::function<bool(size_t candidate, size_t best_observable)>& visit) {
  arena_.Reset();
  ArenaVec<uint32_t> popped(&arena_);
  bool keep_going = true;
  while (keep_going && !heap_.empty()) {
    uint32_t candidate = heap_.front();
    HeapRemove(candidate);
    popped.push_back(candidate);
    keep_going = visit(candidate, bestk_[candidate]);
  }
  for (uint32_t candidate : popped) {
    HeapPush(candidate);
  }
}

int PriorityEngine::RankOfSite(ir::FaultSiteId site) const {
  // Best (lowest stage-1 key) finite candidate of the site, over *all*
  // finite candidates — tried ones keep their rank, exactly like the
  // reference path's scan of its sorted order.
  const size_t n = f_.size();
  bool found = false;
  int64_t target_f = 0;
  size_t target_i = 0;
  for (size_t i = 0; i < n; ++i) {
    if (finite_[i] == 0 || site_of_[i] != site) {
      continue;
    }
    int64_t f_eff = f_[i] - boost_[i];
    if (!found || Stage1Less(f_eff, i, target_f, target_i)) {
      found = true;
      target_f = f_eff;
      target_i = i;
    }
  }
  if (!found) {
    return -1;
  }
  int rank = 1;
  for (size_t i = 0; i < n; ++i) {
    if (finite_[i] != 0 && Stage1Less(f_[i] - boost_[i], i, target_f, target_i)) {
      ++rank;
    }
  }
  return rank;
}

uint64_t PriorityEngine::RankAuditHash() const {
  Fnv1aHasher hasher;
  const size_t n = f_.size();
  for (size_t i = 0; i < n; ++i) {
    if (finite_[i] == 0) {
      continue;
    }
    hasher.MixInt(static_cast<int64_t>(i));
    hasher.MixInt(f_[i] - boost_[i]);
    hasher.MixInt(static_cast<int64_t>(bestk_[i]));
  }
  return hasher.hash();
}

void PriorityEngine::BucketInsert(uint32_t candidate) {
  std::vector<uint32_t>& bucket = bucket_[bestk_[candidate]];
  bucket_pos_[candidate] = static_cast<uint32_t>(bucket.size());
  bucket.push_back(candidate);
}

void PriorityEngine::BucketRemove(uint32_t candidate) {
  std::vector<uint32_t>& bucket = bucket_[bestk_[candidate]];
  uint32_t pos = bucket_pos_[candidate];
  uint32_t moved = bucket.back();
  bucket[pos] = moved;
  bucket_pos_[moved] = pos;
  bucket.pop_back();
  bucket_pos_[candidate] = kNoPos;
}

void PriorityEngine::HeapPush(uint32_t candidate) {
  heap_pos_[candidate] = static_cast<uint32_t>(heap_.size());
  heap_.push_back(candidate);
  HeapSiftUp(heap_.size() - 1);
}

void PriorityEngine::HeapRemove(uint32_t candidate) {
  size_t pos = heap_pos_[candidate];
  heap_pos_[candidate] = kNoPos;
  uint32_t last = heap_.back();
  heap_.pop_back();
  if (last == candidate) {
    return;
  }
  heap_[pos] = last;
  heap_pos_[last] = static_cast<uint32_t>(pos);
  HeapSiftDown(pos);
  HeapSiftUp(heap_pos_[last]);
}

void PriorityEngine::HeapSiftUp(size_t pos) {
  while (pos > 0) {
    size_t parent = (pos - 1) / 2;
    if (!HeapLess(heap_[pos], heap_[parent])) {
      break;
    }
    std::swap(heap_[pos], heap_[parent]);
    heap_pos_[heap_[pos]] = static_cast<uint32_t>(pos);
    heap_pos_[heap_[parent]] = static_cast<uint32_t>(parent);
    pos = parent;
  }
}

void PriorityEngine::HeapSiftDown(size_t pos) {
  const size_t size = heap_.size();
  while (true) {
    size_t left = pos * 2 + 1;
    if (left >= size) {
      return;
    }
    size_t right = left + 1;
    size_t smallest = (right < size && HeapLess(heap_[right], heap_[left])) ? right : left;
    if (!HeapLess(heap_[smallest], heap_[pos])) {
      return;
    }
    std::swap(heap_[pos], heap_[smallest]);
    heap_pos_[heap_[pos]] = static_cast<uint32_t>(pos);
    heap_pos_[heap_[smallest]] = static_cast<uint32_t>(smallest);
    pos = smallest;
  }
}

void PriorityEngine::HeapFix(uint32_t candidate) {
  size_t pos = heap_pos_[candidate];
  HeapSiftUp(pos);
  HeapSiftDown(heap_pos_[candidate]);
}

}  // namespace anduril::explorer
