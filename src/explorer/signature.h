// Fault signatures: minimized, standalone, deterministic replay artifacts.
//
// A successful reproduction (ordered fault chain or single fault) is worth
// keeping beyond the search that found it. A FaultSignature captures
// everything needed to re-trigger the failure with ZERO search rounds: the
// ordered fault steps (addressed by full fault-site name, so the artifact
// survives site-id renumbering as long as names are stable), the replay
// seed, the observable oracle keys the failing run must flip, and the slice
// of the workload that matters — the retained tasks and the IR methods
// reachable from them through the call graph. `anduril_case replay
// --signature=<file>` re-executes it in a single run.
//
// The unminimized signature of a search result replays byte-identically to
// the search's own failing run (same pinned prefix, same window, same seed,
// same workload). Minimization is greedy delta-debugging: try dropping chain
// steps (front-to-back, never the final window injection), then workload
// tasks; a drop survives when the oracle and every oracle key still fire on
// replay. The IR method slice is recomputed from the retained tasks.
//
// The serialized form is JSON with a version and an FNV-1a content hash over
// every other field; parsing re-verifies the hash so a corrupt or hand-edited
// signature fails fast instead of replaying a subtly different scenario.

#ifndef ANDURIL_SRC_EXPLORER_SIGNATURE_H_
#define ANDURIL_SRC_EXPLORER_SIGNATURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/explorer/iterative.h"

namespace anduril::explorer {

inline constexpr int kSignatureVersion = 1;

// One fault of the signature's ordered chain.
struct SignatureStep {
  std::string site;       // full ir::FaultSite::name, exact-matched at replay
  std::string exception;  // exception type name; "" for non-exception kinds
  int64_t occurrence = 1;
  interp::FaultKind kind = interp::FaultKind::kException;
  // Replay seed recorded for the step; only the final step's seed drives the
  // replay run (the prefix is pinned, not searched).
  uint64_t seed = 0;
  friend bool operator==(const SignatureStep&, const SignatureStep&) = default;
};

struct FaultSignature {
  int version = kSignatureVersion;
  std::string case_id;
  uint64_t program_fingerprint = 0;  // rejects replay over a different build
  bool minimized = false;
  std::vector<SignatureStep> steps;  // ordered; last = the window injection
  // Observable keys (relative to the failure log) that the replay run must
  // emit for the signature to count as fired, on top of the case oracle.
  std::vector<std::string> oracle_keys;
  // Workload tasks kept in the replay cluster, as "node/thread" names. The
  // unminimized signature lists every task of the cluster explicitly.
  std::vector<std::string> retained_tasks;
  // IR methods reachable from the retained tasks via Invoke/Send/Submit
  // callees, sorted by name: the standalone program slice the replay needs.
  std::vector<std::string> ir_methods;
  friend bool operator==(const FaultSignature&, const FaultSignature&) = default;
};

// Builds the (unminimized) signature of a successful chain reproduction.
// `result.reproduced` must hold. The oracle keys are derived by diffing the
// reproduction's failing run against the fault-free run at the same base
// seed and intersecting with the production failure log's keys.
FaultSignature BuildSignature(const ExperimentSpec& spec, const std::string& case_id,
                              const ChainResult& result);

struct SignatureReplay {
  // Oracle held, every step fired, and every oracle key appeared.
  bool fired = false;
  interp::RunResult run;
  // Non-empty when the signature does not resolve against the spec (unknown
  // site/exception name, fingerprint mismatch, no steps); `fired` is false.
  std::string error;
};

// Re-executes the signature against the spec: single run, prefix pinned,
// final step as the window injection at its recorded seed, cluster filtered
// to the retained tasks. No search rounds.
SignatureReplay ReplaySignature(const ExperimentSpec& spec, const FaultSignature& signature);

// Greedy delta-minimization (header comment). `replays`, when non-null, is
// incremented once per verification replay executed — the cost knob the
// bench tables report.
FaultSignature MinimizeSignature(const ExperimentSpec& spec, FaultSignature signature,
                                 int* replays = nullptr);

std::string SerializeSignature(const FaultSignature& signature);
// Returns false (and fills *error) on malformed input, version mismatch, or
// content-hash mismatch.
bool ParseSignature(const std::string& text, FaultSignature* out, std::string* error);

bool SaveSignatureFile(const std::string& path, const FaultSignature& signature);
bool LoadSignatureFile(const std::string& path, FaultSignature* out, std::string* error);

}  // namespace anduril::explorer

#endif  // ANDURIL_SRC_EXPLORER_SIGNATURE_H_
