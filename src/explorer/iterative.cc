#include "src/explorer/iterative.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_set>
#include <utility>

#include "src/interp/simulator.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/backoff.h"
#include "src/util/check.h"

namespace anduril::explorer {

IterativeResult IterativeExplorer::Explore(int max_faults) {
  ANDURIL_CHECK_GE(max_faults, 1);
  IterativeResult result;

  // Shared analysis cache: the static analysis (fault-free run, causal
  // graph, distance matrix, timeline) is computed once in the first phase
  // and reused by every later phase. Pinning a fault changes the *runs* of a
  // phase, not the program or the production failure log the analysis is
  // derived from; the feedback loop absorbs the now-expected observables of
  // the pinned fault by deprioritizing them round over round.
  std::shared_ptr<const ExplorerContext> analysis_cache;

  for (int phase = 0; phase < max_faults; ++phase) {
    ++result.phases;
    if (options_.metrics != nullptr) {
      options_.metrics->Add("iterative.phases");
    }
    if (options_.tracer != nullptr) {
      options_.tracer->Instant("explore", "phase",
                               static_cast<int64_t>(phase) * obs::kPhaseStride, 0,
                               {obs::ArgInt("phase", phase),
                                obs::ArgInt("pinned", static_cast<int64_t>(
                                                          spec_.pinned_faults.size()))});
    }
    // Each phase traces into its own logical-time region so the spans of
    // phase p never collide with those of phase p+1.
    ExplorerOptions phase_options = options_;
    phase_options.trace_phase = phase;
    if (analysis_cache == nullptr) {
      analysis_cache = std::make_shared<const ExplorerContext>(spec_, phase_options);
    }
    Explorer explorer(spec_, phase_options, analysis_cache);
    auto strategy = MakeFullFeedbackStrategy();
    ExploreResult search = explorer.Explore(strategy.get());
    result.total_rounds += search.rounds;

    if (search.reproduced) {
      // Record the pinned prefix followed by the final fault.
      result.reproduced = true;
      result.faults.push_back(*search.script);
      return result;
    }
    if (phase + 1 == max_faults) {
      break;
    }

    // Pick the injected round whose (combined) log contained the most
    // relevant observables: its fault moved the system closest to the
    // production failure.
    const RoundRecord* best = nullptr;
    for (const RoundRecord& record : search.records) {
      if (!record.injected) {
        continue;
      }
      if (best == nullptr || record.present_observables > best->present_observables) {
        best = &record;
      }
    }
    if (best == nullptr) {
      break;  // nothing was ever injected; pinning cannot help
    }
    spec_.pinned_faults.push_back(best->candidate);
    if (options_.metrics != nullptr) {
      options_.metrics->Add("iterative.pinned");
    }
    ReproductionScript pinned;
    pinned.site = best->candidate.site;
    pinned.occurrence = best->candidate.occurrence;
    pinned.type = best->candidate.type;
    pinned.kind = best->candidate.kind;
    pinned.seed = spec_.base_seed;
    result.faults.push_back(pinned);
  }
  return result;
}

bool IterativeExplorer::Replay(ExperimentSpec spec, const IterativeResult& result) {
  if (!result.reproduced || result.faults.empty()) {
    return false;
  }
  // All but the last fault are pinned; the last is the window injection.
  spec.pinned_faults.clear();
  for (size_t i = 0; i + 1 < result.faults.size(); ++i) {
    const ReproductionScript& fault = result.faults[i];
    spec.pinned_faults.push_back(
        interp::InjectionCandidate{fault.site, fault.occurrence, fault.type, fault.kind});
  }
  return Explorer::Replay(spec, result.faults.back());
}

namespace {

// Relevant observable keys (of the *phase* context, whose baseline already
// includes the chain prefix) present in `run`'s log: the symptoms this run
// newly flipped. Context observable order, so deterministic.
std::vector<std::string> FlippedObservables(const ExplorerContext& context,
                                            const interp::RunResult& run) {
  std::unordered_set<std::string> keys;
  logdiff::ParsedLog log = logdiff::ParseLogFile(interp::FormatLogFile(run.log));
  for (const logdiff::ParsedLine& line : log.lines) {
    keys.insert(line.key);
  }
  std::vector<std::string> present;
  for (const ObservableInfo& observable : context.observables()) {
    if (keys.contains(observable.key)) {
      present.push_back(observable.key);
    }
  }
  return present;
}

// Fault sites `run` executed that the phase baseline never reached (zero
// instance estimates): the causal stitches — the places the cascade can only
// continue from once this fault is in the workload. Sorted by id.
std::vector<ir::FaultSiteId> NewlyExecutedSites(const ExplorerContext& context,
                                                const interp::RunResult& run) {
  std::unordered_set<ir::FaultSiteId> seen;
  std::vector<ir::FaultSiteId> sites;
  for (const interp::FaultInstanceEvent& event : run.trace) {
    if (!seen.insert(event.site).second) {
      continue;
    }
    if (context.InstancesOf(event.site).empty()) {
      sites.push_back(event.site);
    }
  }
  std::sort(sites.begin(), sites.end());
  return sites;
}

}  // namespace

StitchRunResult RunChainStitch(const ExperimentSpec& spec,
                               const interp::InjectionCandidate& candidate,
                               const ExplorerOptions& options) {
  StitchRunResult result;
  // Same bounded exponential backoff (and seed derivation) as the search
  // rounds: only wall-budget kills are transient; every other outcome is
  // deterministic and re-occurs on retry by construction.
  ExponentialBackoff::Options backoff_options;
  backoff_options.initial_delay_ms = options.retry_initial_delay_ms;
  backoff_options.max_delay_ms = options.retry_max_delay_ms;
  backoff_options.max_retries = options.max_run_retries;
  ExponentialBackoff backoff(backoff_options, spec.base_seed ^ 0x9e3779b97f4a7c15ull);

  std::vector<interp::InjectionCandidate> pinned = spec.pinned_faults;
  pinned.push_back(candidate);
  for (;;) {
    interp::FaultRuntime runtime(spec.program);
    runtime.set_tracing(true);
    runtime.SetPinned(pinned);
    interp::Simulator simulator(spec.program, spec.cluster, spec.base_seed, &runtime);
    result.run = simulator.Run();
    if (result.run.hit_wall_budget && backoff.ShouldRetry()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff.NextDelayMs()));
      ++result.retries;
      continue;
    }
    break;
  }
  // A wedged stitch run condemns the whole chain candidate: pinning this
  // fault makes the degraded system hang (or stay partition-stuck), so no
  // continuation searched on top of it can ever run to an oracle verdict.
  result.demote_chain = result.run.outcome == interp::RunOutcome::kHung ||
                        result.run.outcome == interp::RunOutcome::kPartitionedStuck;
  return result;
}

ChainResult ChainExplorer::Explore(int max_chain_length) {
  return Explore(max_chain_length, CheckpointConfig{});
}

ChainResult ChainExplorer::Explore(int max_chain_length, const CheckpointConfig& checkpoint) {
  ANDURIL_CHECK_GE(max_chain_length, 1);
  ChainResult result;

  // The persisted search state (v3 chain block): accepted prefix, completed
  // phases, the stitched-site seeds for the live phase, and the live phase's
  // injected-round summaries (filled in by the inner Explorer's snapshots).
  ChainState chain_state;
  const SearchCheckpoint* resume = checkpoint.resume;
  if (resume != nullptr) {
    chain_state = resume->chain;
    ANDURIL_CHECK_LE(static_cast<int>(chain_state.steps.size()), max_chain_length)
        << "checkpoint chain is longer than this search's max_chain_length";
    for (const ChainStepCheckpoint& step : chain_state.steps) {
      spec_.pinned_faults.push_back(step.candidate);
      result.chain.steps.push_back(FaultChainStep{step.candidate, step.seed, step.rounds,
                                                  step.stitched_observables});
    }
    result.phases = chain_state.phase;
    result.total_rounds = chain_state.rounds_before_phase;
  }

  for (int phase = chain_state.phase; phase < max_chain_length; ++phase) {
    ++result.phases;
    if (options_.metrics != nullptr) {
      options_.metrics->Add("chain.phases");
    }
    const int64_t phase_base = static_cast<int64_t>(phase) * obs::kPhaseStride;
    if (options_.tracer != nullptr) {
      options_.tracer->Instant("explore", "chain_phase", phase_base, 0,
                               {obs::ArgInt("phase", phase),
                                obs::ArgInt("pinned", static_cast<int64_t>(
                                                          spec_.pinned_faults.size()))});
    }
    // Global round budget (kill emulation / hard bound): cut this phase's
    // per-phase cap down to whatever the budget still allows.
    if (options_.max_total_rounds > 0 &&
        result.total_rounds >= options_.max_total_rounds) {
      return result;
    }
    ExplorerOptions phase_options = options_;
    phase_options.trace_phase = phase;
    if (options_.max_total_rounds > 0) {
      const int remaining = options_.max_total_rounds - result.total_rounds;
      if (remaining < phase_options.max_rounds) {
        phase_options.max_rounds = remaining;
      }
    }
    // No shared analysis cache here — that sharing is exactly what blinds
    // the independent iterative mode to cascades. Each phase rebuilds the
    // context over the *degraded* baseline (chain prefix pinned): sites the
    // prefix newly exposed gain instance estimates, and observables the
    // prefix already flipped drop out of the relevant set.
    Explorer explorer(spec_, phase_options);
    auto strategy = MakeFullFeedbackStrategy();
    strategy->SeedStitchedSites(chain_state.stitched_sites);

    CheckpointConfig inner;
    inner.path = checkpoint.path;
    inner.chain = &chain_state;
    if (resume != nullptr) {
      inner.resume = resume;  // only the phase the kill interrupted
      resume = nullptr;
    }
    ExploreResult search = explorer.Explore(strategy.get(), inner);
    result.total_rounds += search.rounds;

    // Cooperative drain mid-phase: behave exactly like a kill — return with
    // the checkpoint as the inner explorer last flushed it, no stitch pass.
    if (search.interrupted) {
      result.interrupted = true;
      return result;
    }
    if (search.reproduced) {
      result.reproduced = true;
      result.chain.steps.push_back(FaultChainStep{
          interp::InjectionCandidate{search.script->site, search.script->occurrence,
                                     search.script->type, search.script->kind},
          search.script->seed, search.rounds, {}});
      if (options_.metrics != nullptr) {
        options_.metrics->Add("chain.reproduced");
      }
      return result;
    }
    if (phase + 1 == max_chain_length) {
      break;
    }
    // Budget exhausted mid-phase: behave like a kill — return without a
    // stitch pass, so a resume from the checkpoint continues this phase.
    if (options_.max_total_rounds > 0 &&
        result.total_rounds >= options_.max_total_rounds) {
      return result;
    }

    // Stitch-candidate pick. Merge the summaries restored from the
    // checkpoint (rounds that died with the killed process) with this
    // search's records, dedup by candidate keeping the most-promising entry,
    // and order by (observables present desc, round asc) — the fault that
    // moved the system closest to the production failure, earliest, gets the
    // first stitch attempt.
    std::vector<ChainRoundCandidate> merged = chain_state.round_candidates;
    for (const RoundRecord& record : search.records) {
      if (!record.injected) {
        continue;
      }
      merged.push_back(
          ChainRoundCandidate{record.candidate, record.present_observables, record.round});
    }
    std::vector<ChainRoundCandidate> summaries;
    for (const ChainRoundCandidate& entry : merged) {
      ChainRoundCandidate* existing = nullptr;
      for (ChainRoundCandidate& summary : summaries) {
        if (summary.candidate == entry.candidate) {
          existing = &summary;
          break;
        }
      }
      if (existing == nullptr) {
        summaries.push_back(entry);
      } else if (entry.present_observables > existing->present_observables ||
                 (entry.present_observables == existing->present_observables &&
                  entry.round < existing->round)) {
        *existing = entry;
      }
    }
    std::stable_sort(summaries.begin(), summaries.end(),
                     [](const ChainRoundCandidate& a, const ChainRoundCandidate& b) {
                       if (a.present_observables != b.present_observables) {
                         return a.present_observables > b.present_observables;
                       }
                       return a.round < b.round;
                     });

    bool extended = false;
    for (const ChainRoundCandidate& summary : summaries) {
      StitchRunResult stitch = RunChainStitch(spec_, summary.candidate, options_);
      if (options_.metrics != nullptr) {
        options_.metrics->Add("chain.stitch_runs");
        if (stitch.retries > 0) {
          options_.metrics->Add("chain.stitch_retries", stitch.retries);
        }
      }
      if (stitch.demote_chain) {
        ++result.demoted_chain_candidates;
        if (options_.metrics != nullptr) {
          options_.metrics->Add("chain.demoted");
        }
        continue;
      }
      // Causal stitching: accept the candidate only if pinning it genuinely
      // moved the system — it flipped still-missing observables, or executed
      // fault sites the degraded baseline never reached.
      std::vector<std::string> flipped = FlippedObservables(explorer.context(), stitch.run);
      std::vector<ir::FaultSiteId> new_sites = NewlyExecutedSites(explorer.context(), stitch.run);
      if (flipped.empty() && new_sites.empty()) {
        continue;
      }

      spec_.pinned_faults.push_back(summary.candidate);
      result.chain.steps.push_back(
          FaultChainStep{summary.candidate, spec_.base_seed, search.rounds, flipped});
      chain_state.steps.push_back(
          ChainStepCheckpoint{summary.candidate, spec_.base_seed, search.rounds, flipped});
      chain_state.phase = phase + 1;
      chain_state.rounds_before_phase += search.rounds;
      chain_state.stitched_sites = std::move(new_sites);
      chain_state.round_candidates.clear();

      if (options_.metrics != nullptr) {
        options_.metrics->Add("chain.stitched");
      }
      if (options_.tracer != nullptr) {
        options_.tracer->Instant(
            "explore", "chain.stitch",
            phase_base + static_cast<int64_t>(search.rounds + 1) * obs::kRoundStride, 0,
            {obs::ArgInt("phase", phase), obs::ArgInt("site", summary.candidate.site),
             obs::ArgInt("occurrence", summary.candidate.occurrence),
             obs::ArgInt("flipped", static_cast<int64_t>(
                                        result.chain.steps.back().stitched_observables.size())),
             obs::ArgInt("new_sites",
                         static_cast<int64_t>(chain_state.stitched_sites.size()))});
      }
      extended = true;
      break;
    }
    if (!extended) {
      break;  // no injectable fault moves the degraded system any further
    }
  }
  return result;
}

bool ChainExplorer::Replay(ExperimentSpec spec, const ChainResult& result) {
  if (!result.reproduced || result.chain.steps.empty()) {
    return false;
  }
  // All but the last step are pinned; the last is the window injection at
  // its recorded seed.
  spec.pinned_faults.clear();
  for (size_t i = 0; i + 1 < result.chain.steps.size(); ++i) {
    spec.pinned_faults.push_back(result.chain.steps[i].candidate);
  }
  const FaultChainStep& last = result.chain.steps.back();
  ReproductionScript script;
  script.site = last.candidate.site;
  script.occurrence = last.candidate.occurrence;
  script.type = last.candidate.type;
  script.kind = last.candidate.kind;
  script.seed = last.seed;
  return Explorer::Replay(spec, script);
}

}  // namespace anduril::explorer
