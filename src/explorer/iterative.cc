#include "src/explorer/iterative.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"

namespace anduril::explorer {

IterativeResult IterativeExplorer::Explore(int max_faults) {
  ANDURIL_CHECK_GE(max_faults, 1);
  IterativeResult result;

  // Shared analysis cache: the static analysis (fault-free run, causal
  // graph, distance matrix, timeline) is computed once in the first phase
  // and reused by every later phase. Pinning a fault changes the *runs* of a
  // phase, not the program or the production failure log the analysis is
  // derived from; the feedback loop absorbs the now-expected observables of
  // the pinned fault by deprioritizing them round over round.
  std::shared_ptr<const ExplorerContext> analysis_cache;

  for (int phase = 0; phase < max_faults; ++phase) {
    ++result.phases;
    if (options_.metrics != nullptr) {
      options_.metrics->Add("iterative.phases");
    }
    if (options_.tracer != nullptr) {
      options_.tracer->Instant("explore", "phase",
                               static_cast<int64_t>(phase) * obs::kPhaseStride, 0,
                               {obs::ArgInt("phase", phase),
                                obs::ArgInt("pinned", static_cast<int64_t>(
                                                          spec_.pinned_faults.size()))});
    }
    // Each phase traces into its own logical-time region so the spans of
    // phase p never collide with those of phase p+1.
    ExplorerOptions phase_options = options_;
    phase_options.trace_phase = phase;
    if (analysis_cache == nullptr) {
      analysis_cache = std::make_shared<const ExplorerContext>(spec_, phase_options);
    }
    Explorer explorer(spec_, phase_options, analysis_cache);
    auto strategy = MakeFullFeedbackStrategy();
    ExploreResult search = explorer.Explore(strategy.get());
    result.total_rounds += search.rounds;

    if (search.reproduced) {
      // Record the pinned prefix followed by the final fault.
      result.reproduced = true;
      result.faults.push_back(*search.script);
      return result;
    }
    if (phase + 1 == max_faults) {
      break;
    }

    // Pick the injected round whose (combined) log contained the most
    // relevant observables: its fault moved the system closest to the
    // production failure.
    const RoundRecord* best = nullptr;
    for (const RoundRecord& record : search.records) {
      if (!record.injected) {
        continue;
      }
      if (best == nullptr || record.present_observables > best->present_observables) {
        best = &record;
      }
    }
    if (best == nullptr) {
      break;  // nothing was ever injected; pinning cannot help
    }
    spec_.pinned_faults.push_back(best->candidate);
    if (options_.metrics != nullptr) {
      options_.metrics->Add("iterative.pinned");
    }
    ReproductionScript pinned;
    pinned.site = best->candidate.site;
    pinned.occurrence = best->candidate.occurrence;
    pinned.type = best->candidate.type;
    pinned.kind = best->candidate.kind;
    pinned.seed = spec_.base_seed;
    result.faults.push_back(pinned);
  }
  return result;
}

bool IterativeExplorer::Replay(ExperimentSpec spec, const IterativeResult& result) {
  if (!result.reproduced || result.faults.empty()) {
    return false;
  }
  // All but the last fault are pinned; the last is the window injection.
  spec.pinned_faults.clear();
  for (size_t i = 0; i + 1 < result.faults.size(); ++i) {
    const ReproductionScript& fault = result.faults[i];
    spec.pinned_faults.push_back(
        interp::InjectionCandidate{fault.site, fault.occurrence, fault.type, fault.kind});
  }
  return Explorer::Replay(spec, result.faults.back());
}

}  // namespace anduril::explorer
