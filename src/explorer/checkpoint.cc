#include "src/explorer/checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/util/hash.h"
#include "src/util/json.h"
#include "src/util/strings.h"

namespace anduril::explorer {
namespace {

std::string U64ToString(uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

uint64_t U64FromJson(const JsonValue* value) {
  if (value == nullptr) {
    return 0;
  }
  if (value->type() == JsonValue::Type::kString) {
    return std::strtoull(value->as_string().c_str(), nullptr, 10);
  }
  return static_cast<uint64_t>(value->as_int());
}

JsonValue CandidateToJson(const interp::InjectionCandidate& candidate) {
  JsonValue object = JsonValue::Object();
  object.Set("site", JsonValue::Int(candidate.site));
  object.Set("occurrence", JsonValue::Int(candidate.occurrence));
  object.Set("type", JsonValue::Int(candidate.type));
  object.Set("kind", JsonValue::Str(interp::FaultKindName(candidate.kind)));
  return object;
}

bool CandidateFromJson(const JsonValue& value, interp::InjectionCandidate* out,
                       std::string* error) {
  if (value.type() != JsonValue::Type::kObject) {
    *error = "candidate is not an object";
    return false;
  }
  out->site = static_cast<ir::FaultSiteId>(
      value.Find("site") ? value.Find("site")->as_int(ir::kInvalidId) : ir::kInvalidId);
  out->occurrence = value.Find("occurrence") ? value.Find("occurrence")->as_int() : 0;
  out->type = static_cast<ir::ExceptionTypeId>(
      value.Find("type") ? value.Find("type")->as_int(ir::kInvalidId) : ir::kInvalidId);
  const std::string& kind =
      value.Find("kind") ? value.Find("kind")->as_string() : std::string("exception");
  if (!interp::FaultKindFromName(kind, &out->kind)) {
    *error = "unknown fault kind \"" + kind + "\"";
    return false;
  }
  return true;
}

}  // namespace

uint64_t ChainSignatureHash(const ChainState& chain) {
  Fnv1aHasher hasher;
  for (const ChainStepCheckpoint& step : chain.steps) {
    hasher.MixInt(step.candidate.site);
    hasher.MixInt(step.candidate.occurrence);
    hasher.MixInt(step.candidate.type);
    hasher.MixInt(static_cast<int64_t>(step.candidate.kind));
    hasher.MixInt(static_cast<int64_t>(step.seed));
    hasher.MixInt(step.rounds);
    for (const std::string& key : step.stitched_observables) {
      hasher.MixStr(key);
    }
    hasher.MixSeparator();
  }
  return hasher.hash();
}

uint64_t ProgramFingerprint(const ir::Program& program) {
  // FNV-1a over the fault-site and exception-type names, in id order.
  Fnv1aHasher hasher;
  for (const ir::FaultSite& site : program.fault_sites()) {
    hasher.MixStr(site.name);
  }
  for (size_t i = 0; i < program.exception_type_count(); ++i) {
    hasher.MixStr(program.exception_type(static_cast<ir::ExceptionTypeId>(i)).name);
  }
  return hasher.hash();
}

std::string SerializeCheckpoint(const SearchCheckpoint& checkpoint) {
  JsonValue root = JsonValue::Object();
  root.Set("version", JsonValue::Int(checkpoint.version));
  root.Set("program_fingerprint", JsonValue::Str(U64ToString(checkpoint.program_fingerprint)));
  root.Set("base_seed", JsonValue::Str(U64ToString(checkpoint.base_seed)));
  root.Set("rounds_completed", JsonValue::Int(checkpoint.rounds_completed));
  root.Set("retry_rng_draws", JsonValue::Str(U64ToString(checkpoint.retry_rng_draws)));

  JsonValue network = JsonValue::Object();
  network.Set("candidates", JsonValue::Bool(checkpoint.network_candidates));
  network.Set("partition_heal_ms", JsonValue::Int(checkpoint.partition_heal_ms));
  network.Set("network_delay_ms", JsonValue::Int(checkpoint.network_delay_ms));
  root.Set("network", std::move(network));

  JsonValue experiment = JsonValue::Object();
  experiment.Set("completed_rounds", JsonValue::Int(checkpoint.experiment.completed_rounds));
  experiment.Set("crashed_rounds", JsonValue::Int(checkpoint.experiment.crashed_rounds));
  experiment.Set("hung_rounds", JsonValue::Int(checkpoint.experiment.hung_rounds));
  experiment.Set("budget_exceeded_rounds",
                 JsonValue::Int(checkpoint.experiment.budget_exceeded_rounds));
  experiment.Set("partitioned_stuck_rounds",
                 JsonValue::Int(checkpoint.experiment.partitioned_stuck_rounds));
  experiment.Set("transient_retries", JsonValue::Int(checkpoint.experiment.transient_retries));
  experiment.Set("total_run_wall_seconds",
                 JsonValue::Double(checkpoint.experiment.total_run_wall_seconds));
  experiment.Set("max_round_wall_seconds",
                 JsonValue::Double(checkpoint.experiment.max_round_wall_seconds));
  root.Set("experiment", std::move(experiment));

  JsonValue pinned = JsonValue::Array();
  for (const interp::InjectionCandidate& candidate : checkpoint.pinned) {
    pinned.Append(CandidateToJson(candidate));
  }
  root.Set("pinned", std::move(pinned));

  JsonValue strategy = JsonValue::Object();
  strategy.Set("window_size", JsonValue::Int(checkpoint.strategy.window_size));
  strategy.Set("exhausted", JsonValue::Bool(checkpoint.strategy.exhausted));
  JsonValue priorities = JsonValue::Array();
  for (int64_t priority : checkpoint.strategy.observable_priorities) {
    priorities.Append(JsonValue::Int(priority));
  }
  strategy.Set("observable_priorities", std::move(priorities));
  JsonValue tried = JsonValue::Array();
  for (const interp::InjectionCandidate& candidate : checkpoint.strategy.tried) {
    tried.Append(CandidateToJson(candidate));
  }
  strategy.Set("tried", std::move(tried));
  JsonValue demotions = JsonValue::Array();
  for (const StrategyCheckpoint::Demotion& demotion : checkpoint.strategy.demotions) {
    JsonValue entry = JsonValue::Object();
    entry.Set("candidate", CandidateToJson(demotion.candidate));
    entry.Set("count", JsonValue::Int(demotion.count));
    demotions.Append(std::move(entry));
  }
  strategy.Set("demotions", std::move(demotions));
  root.Set("strategy", std::move(strategy));

  JsonValue chain = JsonValue::Object();
  JsonValue steps = JsonValue::Array();
  for (const ChainStepCheckpoint& step : checkpoint.chain.steps) {
    JsonValue entry = JsonValue::Object();
    entry.Set("candidate", CandidateToJson(step.candidate));
    entry.Set("seed", JsonValue::Str(U64ToString(step.seed)));
    entry.Set("rounds", JsonValue::Int(step.rounds));
    JsonValue observables = JsonValue::Array();
    for (const std::string& key : step.stitched_observables) {
      observables.Append(JsonValue::Str(key));
    }
    entry.Set("stitched_observables", std::move(observables));
    steps.Append(std::move(entry));
  }
  chain.Set("steps", std::move(steps));
  chain.Set("phase", JsonValue::Int(checkpoint.chain.phase));
  chain.Set("rounds_before_phase", JsonValue::Int(checkpoint.chain.rounds_before_phase));
  JsonValue stitched = JsonValue::Array();
  for (ir::FaultSiteId site : checkpoint.chain.stitched_sites) {
    stitched.Append(JsonValue::Int(site));
  }
  chain.Set("stitched_sites", std::move(stitched));
  JsonValue round_candidates = JsonValue::Array();
  for (const ChainRoundCandidate& summary : checkpoint.chain.round_candidates) {
    JsonValue entry = JsonValue::Object();
    entry.Set("candidate", CandidateToJson(summary.candidate));
    entry.Set("present_observables", JsonValue::Int(summary.present_observables));
    entry.Set("round", JsonValue::Int(summary.round));
    round_candidates.Append(std::move(entry));
  }
  chain.Set("round_candidates", std::move(round_candidates));
  root.Set("chain", std::move(chain));
  // Always recomputed from the chain block — the struct field is only the
  // parsed-and-verified copy.
  root.Set("chain_signature_hash",
           JsonValue::Str(U64ToString(ChainSignatureHash(checkpoint.chain))));

  JsonValue engine = JsonValue::Object();
  engine.Set("kind", JsonValue::Str(checkpoint.engine_kind));
  engine.Set("candidates", JsonValue::Int(checkpoint.engine_candidates));
  engine.Set("observables", JsonValue::Int(checkpoint.engine_observables));
  root.Set("engine", std::move(engine));

  if (checkpoint.has_metrics) {
    root.Set("metrics", obs::MetricsSnapshotToJson(checkpoint.metrics));
  }

  return root.Dump();
}

bool ParseCheckpoint(const std::string& text, SearchCheckpoint* out, std::string* error) {
  std::string parse_error;
  JsonValue root = JsonValue::Parse(text, &parse_error);
  if (!parse_error.empty()) {
    *error = "checkpoint parse error: " + parse_error;
    return false;
  }
  if (root.type() != JsonValue::Type::kObject) {
    *error = "checkpoint is not a JSON object";
    return false;
  }
  const JsonValue* version = root.Find("version");
  if (version == nullptr) {
    *error = "checkpoint has no version field";
    return false;
  }
  if (version->as_int() != kCheckpointVersion) {
    if (version->as_int() == 2 && root.Find("chain") != nullptr) {
      // A pre-release chain build wrote chain state without bumping the
      // version; resuming it as v2 would silently drop the chain prefix.
      *error = StrFormat(
          "checkpoint declares version 2 but contains fault-chain state, which only "
          "version %d defines; this file was written by a mismatched build — delete "
          "the stale checkpoint and restart the chain search from round 0",
          kCheckpointVersion);
      return false;
    }
    *error = StrFormat(
        "unsupported checkpoint version %lld (this build reads only version %d); "
        "checkpoint files are not forward/backward compatible — delete the stale "
        "checkpoint and restart the search from round 0",
        static_cast<long long>(version->as_int()), kCheckpointVersion);
    return false;
  }
  out->version = static_cast<int>(version->as_int());
  out->program_fingerprint = U64FromJson(root.Find("program_fingerprint"));
  out->base_seed = U64FromJson(root.Find("base_seed"));
  out->rounds_completed =
      root.Find("rounds_completed") ? static_cast<int>(root.Find("rounds_completed")->as_int())
                                    : 0;
  out->retry_rng_draws = U64FromJson(root.Find("retry_rng_draws"));

  const JsonValue* network = root.Find("network");
  if (network == nullptr || network->type() != JsonValue::Type::kObject) {
    *error = "checkpoint has no network object (required since version 2)";
    return false;
  }
  out->network_candidates =
      network->Find("candidates") != nullptr && network->Find("candidates")->as_bool();
  out->partition_heal_ms =
      network->Find("partition_heal_ms") ? network->Find("partition_heal_ms")->as_int() : 0;
  out->network_delay_ms =
      network->Find("network_delay_ms") ? network->Find("network_delay_ms")->as_int() : 0;

  if (const JsonValue* experiment = root.Find("experiment"); experiment != nullptr) {
    auto get_int = [&](const char* key) {
      const JsonValue* value = experiment->Find(key);
      return value ? static_cast<int>(value->as_int()) : 0;
    };
    out->experiment.completed_rounds = get_int("completed_rounds");
    out->experiment.crashed_rounds = get_int("crashed_rounds");
    out->experiment.hung_rounds = get_int("hung_rounds");
    out->experiment.budget_exceeded_rounds = get_int("budget_exceeded_rounds");
    out->experiment.partitioned_stuck_rounds = get_int("partitioned_stuck_rounds");
    out->experiment.transient_retries = get_int("transient_retries");
    const JsonValue* total = experiment->Find("total_run_wall_seconds");
    out->experiment.total_run_wall_seconds = total ? total->as_double() : 0;
    const JsonValue* max_round = experiment->Find("max_round_wall_seconds");
    out->experiment.max_round_wall_seconds = max_round ? max_round->as_double() : 0;
  }

  out->pinned.clear();
  if (const JsonValue* pinned = root.Find("pinned"); pinned != nullptr) {
    for (const JsonValue& entry : pinned->items()) {
      interp::InjectionCandidate candidate;
      if (!CandidateFromJson(entry, &candidate, error)) {
        return false;
      }
      out->pinned.push_back(candidate);
    }
  }

  const JsonValue* strategy = root.Find("strategy");
  if (strategy == nullptr || strategy->type() != JsonValue::Type::kObject) {
    *error = "checkpoint has no strategy object";
    return false;
  }
  out->strategy.window_size =
      strategy->Find("window_size") ? static_cast<int>(strategy->Find("window_size")->as_int())
                                    : 0;
  out->strategy.exhausted =
      strategy->Find("exhausted") != nullptr && strategy->Find("exhausted")->as_bool();
  out->strategy.observable_priorities.clear();
  if (const JsonValue* priorities = strategy->Find("observable_priorities");
      priorities != nullptr) {
    for (const JsonValue& entry : priorities->items()) {
      out->strategy.observable_priorities.push_back(entry.as_int());
    }
  }
  out->strategy.tried.clear();
  if (const JsonValue* tried = strategy->Find("tried"); tried != nullptr) {
    for (const JsonValue& entry : tried->items()) {
      interp::InjectionCandidate candidate;
      if (!CandidateFromJson(entry, &candidate, error)) {
        return false;
      }
      out->strategy.tried.push_back(candidate);
    }
  }
  out->strategy.demotions.clear();
  if (const JsonValue* demotions = strategy->Find("demotions"); demotions != nullptr) {
    for (const JsonValue& entry : demotions->items()) {
      StrategyCheckpoint::Demotion demotion;
      const JsonValue* candidate = entry.Find("candidate");
      if (candidate == nullptr || !CandidateFromJson(*candidate, &demotion.candidate, error)) {
        if (error->empty()) {
          *error = "demotion entry has no candidate";
        }
        return false;
      }
      demotion.count = entry.Find("count") ? static_cast<int>(entry.Find("count")->as_int()) : 0;
      out->strategy.demotions.push_back(demotion);
    }
  }
  out->chain = ChainState{};
  const JsonValue* chain = root.Find("chain");
  if (chain == nullptr || chain->type() != JsonValue::Type::kObject) {
    *error = "checkpoint has no chain object (required since version 3)";
    return false;
  }
  if (const JsonValue* steps = chain->Find("steps"); steps != nullptr) {
    for (const JsonValue& entry : steps->items()) {
      ChainStepCheckpoint step;
      const JsonValue* candidate = entry.Find("candidate");
      if (candidate == nullptr || !CandidateFromJson(*candidate, &step.candidate, error)) {
        if (error->empty()) {
          *error = "chain step has no candidate";
        }
        return false;
      }
      step.seed = U64FromJson(entry.Find("seed"));
      step.rounds = entry.Find("rounds") ? static_cast<int>(entry.Find("rounds")->as_int()) : 0;
      if (const JsonValue* observables = entry.Find("stitched_observables");
          observables != nullptr) {
        for (const JsonValue& key : observables->items()) {
          step.stitched_observables.push_back(key.as_string());
        }
      }
      out->chain.steps.push_back(std::move(step));
    }
  }
  out->chain.phase =
      chain->Find("phase") ? static_cast<int>(chain->Find("phase")->as_int()) : 0;
  out->chain.rounds_before_phase =
      chain->Find("rounds_before_phase")
          ? static_cast<int>(chain->Find("rounds_before_phase")->as_int())
          : 0;
  if (const JsonValue* stitched = chain->Find("stitched_sites"); stitched != nullptr) {
    for (const JsonValue& entry : stitched->items()) {
      out->chain.stitched_sites.push_back(static_cast<ir::FaultSiteId>(entry.as_int()));
    }
  }
  if (const JsonValue* summaries = chain->Find("round_candidates"); summaries != nullptr) {
    for (const JsonValue& entry : summaries->items()) {
      ChainRoundCandidate summary;
      const JsonValue* candidate = entry.Find("candidate");
      if (candidate == nullptr || !CandidateFromJson(*candidate, &summary.candidate, error)) {
        if (error->empty()) {
          *error = "chain round candidate has no candidate";
        }
        return false;
      }
      summary.present_observables =
          entry.Find("present_observables")
              ? static_cast<int>(entry.Find("present_observables")->as_int())
              : -1;
      summary.round = entry.Find("round") ? static_cast<int>(entry.Find("round")->as_int()) : 0;
      out->chain.round_candidates.push_back(summary);
    }
  }
  out->chain_signature_hash = U64FromJson(root.Find("chain_signature_hash"));
  if (out->chain_signature_hash != ChainSignatureHash(out->chain)) {
    *error =
        "chain signature hash mismatch: the checkpoint's chain state does not hash to "
        "its recorded chain_signature_hash — the file is corrupt or was hand-edited; "
        "delete the stale checkpoint and restart the chain search from round 0";
    return false;
  }

  const JsonValue* engine = root.Find("engine");
  if (engine == nullptr || engine->type() != JsonValue::Type::kObject) {
    *error = "checkpoint has no engine object (required since version 4)";
    return false;
  }
  out->engine_kind = engine->Find("kind") ? engine->Find("kind")->as_string() : std::string();
  if (out->engine_kind != "incremental" && out->engine_kind != "full-rerank") {
    *error = "checkpoint engine kind \"" + out->engine_kind +
             "\" is not \"incremental\" or \"full-rerank\"";
    return false;
  }
  out->engine_candidates =
      engine->Find("candidates") ? engine->Find("candidates")->as_int() : 0;
  out->engine_observables =
      engine->Find("observables") ? engine->Find("observables")->as_int() : 0;

  out->has_metrics = false;
  out->metrics = obs::MetricsSnapshot{};
  if (const JsonValue* metrics = root.Find("metrics"); metrics != nullptr) {
    if (!obs::MetricsSnapshotFromJson(*metrics, &out->metrics, error)) {
      return false;
    }
    out->has_metrics = true;
  }
  error->clear();
  return true;
}

bool SaveCheckpointFile(const std::string& path, const SearchCheckpoint& checkpoint) {
  // Write to a temp file and rename so a kill mid-write never leaves a
  // truncated checkpoint behind.
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) {
      return false;
    }
    out << SerializeCheckpoint(checkpoint);
    if (!out.flush()) {
      return false;
    }
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool LoadCheckpointFile(const std::string& path, SearchCheckpoint* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open checkpoint file " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCheckpoint(buffer.str(), out, error);
}

}  // namespace anduril::explorer
