// Injection strategy interface.
//
// A strategy decides, each round, which dynamic fault instances to arm (the
// flexible priority window of §5.2.5), and digests the outcome of the round.
// The full feedback algorithm (§5.2) and every ablation/baseline of §8.3-8.4
// implement this interface, so the explorer driver and the bench harnesses
// treat them uniformly.

#ifndef ANDURIL_SRC_EXPLORER_STRATEGY_H_
#define ANDURIL_SRC_EXPLORER_STRATEGY_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/explorer/context.h"
#include "src/interp/fault_runtime.h"
#include "src/interp/run_result.h"
#include "src/logdiff/compare.h"

namespace anduril::explorer {

struct RoundOutcome {
  int round = 0;
  // What (if anything) the runtime injected this round.
  std::optional<interp::InjectionCandidate> injected;
  // Additional distinct instances injected by the round's other runs, in
  // candidate-rank order. Only populated in parallel-candidates mode, where
  // each window candidate gets its own run and therefore several instances
  // can fire in one round; strategies mark all of them tried.
  std::vector<interp::InjectionCandidate> also_injected;
  // Observable keys that appeared in this round's log (only filled when the
  // strategy asks for log feedback). Algorithm 2: observables *present* in an
  // unsuccessful run get deprioritized; the still-missing ones are the clues
  // worth chasing.
  std::vector<std::string> present_keys;
  // How the round's selected run ended. Feedback strategies demote (rather
  // than retire) the armed candidate when the run hung: a hang often means
  // "right site, wrong instance", so it goes to the back of the queue
  // instead of out of it.
  interp::RunOutcome outcome = interp::RunOutcome::kCompleted;
  // Window candidates whose instance was claimed by a pinned fault this
  // round (fired once by the pin, never double-injected). Strategies retire
  // them: re-arming would pre-empt forever.
  std::vector<interp::InjectionCandidate> preempted;
};

// Serializable snapshot of a strategy's mutable search state, for the
// explorer's checkpoint files. Candidate identity uses the same numeric ids
// as the in-memory structures; the checkpoint header's program fingerprint
// guards against resuming over a different program build.
struct StrategyCheckpoint {
  int window_size = 0;
  bool exhausted = false;
  // Priority value per observable, in context observable order.
  std::vector<int64_t> observable_priorities;
  std::vector<interp::InjectionCandidate> tried;
  struct Demotion {
    interp::InjectionCandidate candidate;
    int count = 0;
  };
  std::vector<Demotion> demotions;
};

class InjectionStrategy {
 public:
  virtual ~InjectionStrategy() = default;

  virtual std::string name() const = 0;

  // Binds precomputed context. Called once before the first round.
  virtual void Initialize(const ExplorerContext& context) = 0;

  // The candidate window for the next round. An empty window with
  // Exhausted() == true ends the search.
  virtual std::vector<interp::InjectionCandidate> NextWindow() = 0;

  // Digests a finished (unsuccessful) round.
  virtual void OnRound(const RoundOutcome& outcome) = 0;

  virtual bool Exhausted() const = 0;

  // Whether OnRound needs missing_keys (log parse + per-thread diff per
  // round). Coverage baselines skip that cost.
  virtual bool WantsLogFeedback() const { return false; }

  // Chain mode (ChainExplorer): ranks these sites ahead of everything else
  // for the whole search. Called at most once, before the search starts,
  // with the sites the previous chain step's stitch run *newly* executed —
  // the causally-stitched continuation points of the cascade. Strategies
  // without a site ranking ignore it.
  virtual void SeedStitchedSites(const std::vector<ir::FaultSiteId>& /*sites*/) {}

  // Rank (1-based) of `site` in the strategy's current candidate ordering,
  // or -1 if unranked. Used only for Fig. 6 reporting.
  virtual int RankOfSite(ir::FaultSiteId /*site*/) const { return -1; }

  // Differential-test hook: when a sink is attached, feedback strategies
  // append one order-sensitive digest of the full (F_i, k*_i) ranking per
  // NextWindow call. priority_engine_test compares the per-round sequences
  // between the incremental engine and the full_rerank reference and reports
  // the first diverging round. Strategies without a ranking ignore it; a
  // null/absent sink costs nothing.
  virtual void SetRankAuditSink(std::vector<uint64_t>* /*sink*/) {}

  // Checkpoint support. SaveState snapshots the strategy's mutable search
  // state; RestoreState (called after Initialize) re-installs a snapshot.
  // Both return false when the strategy does not support serialization (the
  // default) — the explorer refuses to checkpoint such a search.
  virtual bool SaveState(StrategyCheckpoint* /*out*/) const { return false; }
  virtual bool RestoreState(const StrategyCheckpoint& /*state*/) { return false; }
};

// Factory helpers (definitions in strategies/*.cc).
std::unique_ptr<InjectionStrategy> MakeFullFeedbackStrategy();
std::unique_ptr<InjectionStrategy> MakeExhaustiveStrategy();
std::unique_ptr<InjectionStrategy> MakeSiteDistanceStrategy(int instance_limit);  // 0 = all
std::unique_ptr<InjectionStrategy> MakeSiteFeedbackStrategy();   // feedback, no T
std::unique_ptr<InjectionStrategy> MakeMultiplyFeedbackStrategy();
std::unique_ptr<InjectionStrategy> MakeStacktraceStrategy();
// Design-alternative ablations (§5.2.3 / §5.2.4 discussion): sum-aggregated
// site priority and instance-order temporal distance.
std::unique_ptr<InjectionStrategy> MakeSumAggregationStrategy();
std::unique_ptr<InjectionStrategy> MakeOrderTemporalStrategy();
std::unique_ptr<InjectionStrategy> MakeFateStrategy();
std::unique_ptr<InjectionStrategy> MakeCrashTunerStrategy();

// Instantiates a strategy by the name used in bench tables:
// "full" | "full-sum" | "full-order" | "exhaustive" | "site-distance" |
// "site-distance-limit" | "site-feedback" | "multiply" | "stacktrace" |
// "fate" | "crashtuner".
std::unique_ptr<InjectionStrategy> MakeStrategy(const std::string& name);

}  // namespace anduril::explorer

#endif  // ANDURIL_SRC_EXPLORER_STRATEGY_H_
