// Versioned search checkpoints: serialize the Explorer's mutable search
// state after every round so a killed exploration can resume exactly where
// it stopped. The invariant (enforced by tests): a search resumed from a
// round-N checkpoint emits the byte-identical ReproductionScript — and the
// same total round count — as the uninterrupted search at the same seed.
//
// The format is JSON with a version field:
//
//   {
//     "version": 2,
//     "program_fingerprint": "<hex>",   // guards against program drift
//     "base_seed": "<u64 as string>",   // strings: no 2^53 precision loss
//     "rounds_completed": N,
//     "retry_rng_draws": "<u64 as string>",
//     "experiment": { per-outcome round counts (incl. partitioned_stuck),
//                     retries, wall-clock },
//     "network": {                      // v2: network fault configuration
//       "candidates": bool,             // ExplorerOptions::network_candidates
//       "partition_heal_ms": N,         // ClusterSpec::partition_heal_ms
//       "network_delay_ms": N           // ClusterSpec::network_delay_ms
//     },
//     "pinned": [ {site, occurrence, type, kind}, ... ],
//     "strategy": {
//       "window_size": k, "exhausted": bool,
//       "observable_priorities": [ ... ],   // context observable order
//       "tried": [ {site, occurrence, type, kind}, ... ],
//       "demotions": [ {candidate: {...}, count}, ... ]
//     },
//     "metrics": { counters/gauges/histograms }   // optional: only present
//                                                 // when a MetricsRegistry
//                                                 // was attached
//   }
//
// Candidate identity uses numeric ids, which are deterministic functions of
// the program build; the fingerprint rejects checkpoints from a different
// program. Version history: v1 had no network block, no partitioned_stuck
// count, and no drop/delay/duplicate/partition kind strings. v2 checkpoints
// persist the network-fault configuration so a resumed search replays the
// same candidate space (and partition/delay timing) byte-identically; v1
// files are rejected with an actionable error rather than silently resumed
// into a different search space.

#ifndef ANDURIL_SRC_EXPLORER_CHECKPOINT_H_
#define ANDURIL_SRC_EXPLORER_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "src/explorer/experiment.h"
#include "src/explorer/strategy.h"
#include "src/ir/program.h"
#include "src/obs/metrics.h"

namespace anduril::explorer {

inline constexpr int kCheckpointVersion = 2;

struct SearchCheckpoint {
  int version = kCheckpointVersion;
  uint64_t program_fingerprint = 0;
  uint64_t base_seed = 0;
  int rounds_completed = 0;
  // Jitter draws consumed by the retry backoff so far (stream position).
  uint64_t retry_rng_draws = 0;
  // v2: network-fault configuration active when the checkpoint was written.
  // Resume validates these against the live options/cluster — a mismatch
  // would change the candidate space or message timing and silently break
  // the byte-identical-resume invariant.
  bool network_candidates = false;
  int64_t partition_heal_ms = 0;
  int64_t network_delay_ms = 0;
  ExperimentRecord experiment;
  std::vector<interp::InjectionCandidate> pinned;
  StrategyCheckpoint strategy;
  // Optional (still version 2): snapshot of the attached MetricsRegistry at
  // the end of the checkpointed round. Serialized only when `has_metrics`;
  // parsing a checkpoint without a "metrics" member leaves it false, so
  // files written by metric-less searches round-trip byte-identically.
  // Restoring it on resume *overwrites* the live registry — the snapshot
  // already accounts for everything the resuming process re-recorded while
  // rebuilding its context — which is what makes the final metrics dump of
  // an interrupted+resumed search byte-identical to the uninterrupted one.
  bool has_metrics = false;
  obs::MetricsSnapshot metrics;
};

// Stable fingerprint of the program shape (fault sites, exception types):
// enough to catch "this checkpoint came from a different build of the
// scenario" without hashing the whole IR.
uint64_t ProgramFingerprint(const ir::Program& program);

std::string SerializeCheckpoint(const SearchCheckpoint& checkpoint);
// Returns false (and fills *error) on malformed input or version mismatch.
bool ParseCheckpoint(const std::string& text, SearchCheckpoint* out, std::string* error);

bool SaveCheckpointFile(const std::string& path, const SearchCheckpoint& checkpoint);
bool LoadCheckpointFile(const std::string& path, SearchCheckpoint* out, std::string* error);

}  // namespace anduril::explorer

#endif  // ANDURIL_SRC_EXPLORER_CHECKPOINT_H_
