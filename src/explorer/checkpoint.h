// Versioned search checkpoints: serialize the Explorer's mutable search
// state after every round so a killed exploration can resume exactly where
// it stopped. The invariant (enforced by tests): a search resumed from a
// round-N checkpoint emits the byte-identical ReproductionScript — and the
// same total round count — as the uninterrupted search at the same seed.
//
// The format is JSON with a version field:
//
//   {
//     "version": 4,
//     "program_fingerprint": "<hex>",   // guards against program drift
//     "base_seed": "<u64 as string>",   // strings: no 2^53 precision loss
//     "rounds_completed": N,
//     "retry_rng_draws": "<u64 as string>",
//     "experiment": { per-outcome round counts (incl. partitioned_stuck),
//                     retries, wall-clock },
//     "network": {                      // v2: network fault configuration
//       "candidates": bool,             // ExplorerOptions::network_candidates
//       "partition_heal_ms": N,         // ClusterSpec::partition_heal_ms
//       "network_delay_ms": N           // ClusterSpec::network_delay_ms
//     },
//     "pinned": [ {site, occurrence, type, kind}, ... ],
//     "strategy": {
//       "window_size": k, "exhausted": bool,
//       "observable_priorities": [ ... ],   // context observable order
//       "tried": [ {site, occurrence, type, kind}, ... ],
//       "demotions": [ {candidate: {...}, count}, ... ]
//     },
//     "chain": {                        // v3: ChainExplorer search state
//       "steps": [ {candidate: {...}, seed: "<u64>", rounds: N,
//                   stitched_observables: ["key", ...]}, ... ],
//       "phase": N,                     // completed chain phases
//       "rounds_before_phase": N,       // rounds consumed by completed phases
//       "stitched_sites": [ id, ... ],  // sites the last stitch run exposed
//       "round_candidates": [           // injected rounds of the live phase
//         {candidate: {...}, present_observables: N, round: N}, ... ]
//     },
//     "chain_signature_hash": "<u64>",  // v3: FNV-1a over the chain steps;
//                                       // detects a tampered/corrupt chain
//     "engine": {                       // v4: stage-1 ranking engine record
//       "kind": "incremental" | "full-rerank",   // ExplorerOptions::full_rerank
//       "candidates": N,                // candidate-array size when written
//       "observables": N                // observable count when written
//     },
//     "metrics": { counters/gauges/histograms }   // optional: only present
//                                                 // when a MetricsRegistry
//                                                 // was attached
//   }
//
// Candidate identity uses numeric ids, which are deterministic functions of
// the program build; the fingerprint rejects checkpoints from a different
// program. Version history: v1 had no network block, no partitioned_stuck
// count, and no drop/delay/duplicate/partition kind strings. v2 added the
// network block so a resumed search replays the same candidate space (and
// partition/delay timing) byte-identically. v3 added the chain block and its
// signature hash so a killed ChainExplorer search resumes mid-chain with the
// accepted prefix, the stitched-site seeds, and the live phase's candidate
// summaries intact; plain (non-chain) searches write the same schema with an
// empty chain. v4 added the engine block: the SoA candidate state of the
// incremental priority engine (F_i, argmin k*, untried budgets, heap) is
// *derivable* from (observable_priorities, tried), so the checkpoint stores
// no engine arrays — restore recomputes them — but it does record which
// stage-1 engine wrote the file and the candidate/observable counts it saw,
// and resume validates all three against the live search: resuming under a
// different ranking engine or over a differently-built candidate space would
// break the byte-identical-resume invariant silently. Old versions —
// including a version-2 file that smuggles a chain block — are rejected with
// an actionable error rather than silently resumed into a different search
// space.

#ifndef ANDURIL_SRC_EXPLORER_CHECKPOINT_H_
#define ANDURIL_SRC_EXPLORER_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "src/explorer/experiment.h"
#include "src/explorer/strategy.h"
#include "src/ir/program.h"
#include "src/obs/metrics.h"

namespace anduril::explorer {

inline constexpr int kCheckpointVersion = 4;

// One accepted step of a fault chain (v3). `seed` is the seed of the run
// that validated the step: the stitch run for intermediate steps, the
// successful search round for the final one.
struct ChainStepCheckpoint {
  interp::InjectionCandidate candidate;
  uint64_t seed = 0;
  int rounds = 0;  // search rounds the step's phase consumed
  std::vector<std::string> stitched_observables;
  friend bool operator==(const ChainStepCheckpoint&, const ChainStepCheckpoint&) = default;
};

// Summary of one injected (unsuccessful) round of the live chain phase.
// Persisting these makes mid-chain resume byte-identical even when the kill
// lands between the inner search capping out and the stitch decision.
struct ChainRoundCandidate {
  interp::InjectionCandidate candidate;
  int present_observables = -1;
  int round = 0;
  friend bool operator==(const ChainRoundCandidate&, const ChainRoundCandidate&) = default;
};

// Complete ChainExplorer search state (v3). Empty for plain searches.
struct ChainState {
  std::vector<ChainStepCheckpoint> steps;  // accepted chain prefix, in order
  int phase = 0;                           // completed phases
  int rounds_before_phase = 0;             // rounds consumed by completed phases
  std::vector<ir::FaultSiteId> stitched_sites;  // seeds for the live phase
  std::vector<ChainRoundCandidate> round_candidates;
  bool empty() const {
    return steps.empty() && phase == 0 && rounds_before_phase == 0 &&
           stitched_sites.empty() && round_candidates.empty();
  }
  friend bool operator==(const ChainState&, const ChainState&) = default;
};

// FNV-1a over the chain's accepted steps (site/occurrence/type/kind, seed,
// rounds, stitched observables). Serialized next to the chain block and
// re-verified on parse: a hand-edited or bit-rotted chain prefix fails fast
// instead of resuming a subtly different search.
uint64_t ChainSignatureHash(const ChainState& chain);

struct SearchCheckpoint {
  int version = kCheckpointVersion;
  uint64_t program_fingerprint = 0;
  uint64_t base_seed = 0;
  int rounds_completed = 0;
  // Jitter draws consumed by the retry backoff so far (stream position).
  uint64_t retry_rng_draws = 0;
  // v2: network-fault configuration active when the checkpoint was written.
  // Resume validates these against the live options/cluster — a mismatch
  // would change the candidate space or message timing and silently break
  // the byte-identical-resume invariant.
  bool network_candidates = false;
  int64_t partition_heal_ms = 0;
  int64_t network_delay_ms = 0;
  ExperimentRecord experiment;
  std::vector<interp::InjectionCandidate> pinned;
  StrategyCheckpoint strategy;
  // v3: chain search state (empty for plain searches) and its integrity
  // hash. SerializeCheckpoint always recomputes the hash from `chain`;
  // ParseCheckpoint stores the verified value here.
  ChainState chain;
  uint64_t chain_signature_hash = 0;
  // v4: which stage-1 ranking engine wrote the file ("incremental" or
  // "full-rerank") and the candidate space it ranked. Validation metadata,
  // not bulk state — see the header comment.
  std::string engine_kind = "incremental";
  int64_t engine_candidates = 0;
  int64_t engine_observables = 0;
  // Optional (still version 2): snapshot of the attached MetricsRegistry at
  // the end of the checkpointed round. Serialized only when `has_metrics`;
  // parsing a checkpoint without a "metrics" member leaves it false, so
  // files written by metric-less searches round-trip byte-identically.
  // Restoring it on resume *overwrites* the live registry — the snapshot
  // already accounts for everything the resuming process re-recorded while
  // rebuilding its context — which is what makes the final metrics dump of
  // an interrupted+resumed search byte-identical to the uninterrupted one.
  bool has_metrics = false;
  obs::MetricsSnapshot metrics;
};

// Stable fingerprint of the program shape (fault sites, exception types):
// enough to catch "this checkpoint came from a different build of the
// scenario" without hashing the whole IR.
uint64_t ProgramFingerprint(const ir::Program& program);

std::string SerializeCheckpoint(const SearchCheckpoint& checkpoint);
// Returns false (and fills *error) on malformed input or version mismatch.
bool ParseCheckpoint(const std::string& text, SearchCheckpoint* out, std::string* error);

bool SaveCheckpointFile(const std::string& path, const SearchCheckpoint& checkpoint);
bool LoadCheckpointFile(const std::string& path, SearchCheckpoint* out, std::string* error);

}  // namespace anduril::explorer

#endif  // ANDURIL_SRC_EXPLORER_CHECKPOINT_H_
