#include "src/explorer/explorer.h"

#include <algorithm>

#include <unordered_set>

#include "src/interp/simulator.h"
#include "src/util/check.h"
#include "src/util/stopwatch.h"
#include "src/util/strings.h"

namespace anduril::explorer {

namespace {

template <typename T>
T Median(std::vector<T> values) {
  if (values.empty()) {
    return T{};
  }
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

}  // namespace

std::string ReproductionScript::ToText(const ir::Program& program) const {
  return StrFormat("inject %s of type %s at occurrence %lld with seed %llu",
                   program.fault_site(site).name.c_str(),
                   program.exception_type(type).name.c_str(),
                   static_cast<long long>(occurrence), static_cast<unsigned long long>(seed));
}

Explorer::Explorer(const ExperimentSpec& spec, const ExplorerOptions& options)
    : spec_(&spec), options_(options) {
  context_ = std::make_unique<ExplorerContext>(spec, options);
}

ExploreResult Explorer::Explore(InjectionStrategy* strategy) {
  Stopwatch total_timer;
  ExploreResult result;
  result.init_seconds = context_->init_seconds();

  strategy->Initialize(*context_);

  std::vector<int64_t> injection_requests;
  std::vector<double> decision_latencies;
  std::vector<double> round_inits;
  std::vector<double> workload_times;

  for (int round = 1; round <= options_.max_rounds; ++round) {
    Stopwatch decide_timer;
    std::vector<interp::InjectionCandidate> window = strategy->NextWindow();
    double decide_seconds = decide_timer.ElapsedSeconds();
    if (window.empty() && strategy->Exhausted()) {
      break;
    }

    RoundRecord record;
    record.round = round;
    record.window_size = static_cast<int>(window.size());
    record.tracked_rank = options_.track_site != ir::kInvalidId
                              ? strategy->RankOfSite(options_.track_site)
                              : -1;

    // Execute the round: one run by default; with runs_per_round > 1 the
    // seeds differ per repetition and the observable feedback is combined
    // (the paper's §6 remedy for probabilistically-missing log messages).
    int repetitions = std::max(1, options_.runs_per_round);
    Stopwatch run_timer;
    interp::RunResult run;
    uint64_t seed = 0;
    std::vector<interp::RunResult> repeats;
    for (int rep = 0; rep < repetitions; ++rep) {
      uint64_t rep_seed = spec_->base_seed +
                          static_cast<uint64_t>(round) * static_cast<uint64_t>(repetitions) +
                          static_cast<uint64_t>(rep);
      interp::FaultRuntime runtime(context_->spec().program);
      runtime.SetWindow(window);
      runtime.SetPinned(spec_->pinned_faults);
      interp::Simulator simulator(context_->spec().program, context_->spec().cluster,
                                  rep_seed, &runtime);
      interp::RunResult rep_run = simulator.Run();
      bool rep_success = spec_->oracle(*spec_->program, rep_run) &&
                         rep_run.injected.has_value();
      if (rep == 0 || rep_success) {
        run = std::move(rep_run);
        seed = rep_seed;
        if (rep_success) {
          break;
        }
      } else {
        repeats.push_back(std::move(rep_run));
      }
    }
    record.run_seconds = run_timer.ElapsedSeconds();
    record.injected = run.injected.has_value();
    if (run.injected.has_value()) {
      record.candidate = *run.injected;
    }
    record.injection_requests = run.injection_requests;
    record.decision_nanos = run.decision_nanos;
    injection_requests.push_back(run.injection_requests);
    if (run.injection_requests > 0) {
      decision_latencies.push_back(static_cast<double>(run.decision_nanos) /
                                   static_cast<double>(run.injection_requests));
    }
    workload_times.push_back(record.run_seconds);

    bool success = spec_->oracle(*spec_->program, run);
    record.success = success;

    if (success && run.injected.has_value()) {
      record.decide_seconds = decide_seconds;
      result.records.push_back(record);
      result.reproduced = true;
      result.rounds = round;
      ReproductionScript script;
      script.site = run.injected->site;
      script.occurrence = run.injected->occurrence;
      script.type = run.injected->type;
      script.seed = seed;
      result.script = script;
      break;
    }

    // Feedback digestion.
    Stopwatch feedback_timer;
    RoundOutcome outcome;
    outcome.round = round;
    outcome.injected = run.injected;
    if (strategy->WantsLogFeedback()) {
      std::unordered_set<std::string> run_keys;
      auto collect = [&](const interp::RunResult& result_run) {
        logdiff::ParsedLog run_log =
            logdiff::ParseLogFile(interp::FormatLogFile(result_run.log));
        for (const logdiff::ParsedLine& line : run_log.lines) {
          run_keys.insert(line.key);
        }
      };
      collect(run);
      for (const interp::RunResult& extra : repeats) {
        collect(extra);  // combined logs across repetitions (§6)
      }
      for (const ObservableInfo& observable : context_->observables()) {
        if (run_keys.contains(observable.key)) {
          outcome.present_keys.push_back(observable.key);
        }
      }
      record.present_observables = static_cast<int>(outcome.present_keys.size());
    }
    strategy->OnRound(outcome);
    record.decide_seconds = decide_seconds + feedback_timer.ElapsedSeconds();
    round_inits.push_back(record.decide_seconds);
    result.records.push_back(record);
    result.rounds = round;
  }

  result.total_seconds = total_timer.ElapsedSeconds() + context_->init_seconds();
  result.median_injection_requests = Median(injection_requests);
  if (!decision_latencies.empty()) {
    double sum = 0;
    for (double latency : decision_latencies) {
      sum += latency;
    }
    result.mean_decision_nanos = sum / static_cast<double>(decision_latencies.size());
  }
  result.median_round_init_seconds = Median(round_inits);
  result.median_workload_seconds = Median(workload_times);
  return result;
}

bool Explorer::Replay(const ExperimentSpec& spec, const ReproductionScript& script) {
  interp::FaultRuntime runtime(spec.program);
  runtime.SetPinned(spec.pinned_faults);
  runtime.SetWindow({interp::InjectionCandidate{script.site, script.occurrence, script.type}});
  interp::Simulator simulator(spec.program, spec.cluster, script.seed, &runtime);
  interp::RunResult run = simulator.Run();
  return spec.oracle(*spec.program, run) && run.injected.has_value();
}

}  // namespace anduril::explorer
