#include "src/explorer/explorer.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <optional>
#include <thread>
#include <unordered_set>
#include <utility>

#include "src/interp/simulator.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/backoff.h"
#include "src/util/check.h"
#include "src/util/stopwatch.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace anduril::explorer {

namespace {

template <typename T>
T Median(std::vector<T> values) {
  if (values.empty()) {
    return T{};
  }
  size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<ptrdiff_t>(mid), values.end());
  T upper = values[mid];
  if (values.size() % 2 != 0) {
    return upper;
  }
  T lower = *std::max_element(values.begin(), values.begin() + static_cast<ptrdiff_t>(mid));
  return lower + (upper - lower) / 2;
}

// One simulation of a round: its own runtime + simulator (nothing shared
// mutable), so any number of these execute concurrently over the same const
// Program / ClusterSpec.
struct RepRun {
  interp::RunResult run;
  uint64_t seed = 0;
  bool success = false;  // oracle holds AND the window injection fired
};

// Per-worker scratch: the simulator's pooled buffers survive across the
// runs executed on this thread, so back-to-back runs keep their heap
// allocations (environments, event heap, recycled thread objects — and,
// via Recycle, consumed results' log/trace buffers) instead of
// reallocating them every run.
interp::RunScratch& LocalScratch() {
  thread_local interp::RunScratch scratch;
  return scratch;
}

RepRun ExecuteOne(const ExperimentSpec& spec, const ir::FlatProgram* flat, bool tree_walk,
                  const std::vector<interp::InjectionCandidate>& window, uint64_t seed,
                  obs::MetricsRegistry* metrics) {
  RepRun rep;
  rep.seed = seed;
  interp::RunScratch& scratch = LocalScratch();
  thread_local std::unique_ptr<interp::FaultRuntime> runtime;
  if (runtime == nullptr || &runtime->program() != spec.program) {
    runtime = std::make_unique<interp::FaultRuntime>(spec.program);
  }
  runtime->set_tracing(true);
  runtime->SetWindow(window);
  runtime->SetPinned(spec.pinned_faults);
  interp::Simulator simulator(spec.program, spec.cluster, seed, runtime.get(), flat,
                              &scratch);
  if (tree_walk) {
    simulator.set_tree_walk(true);
  }
  simulator.set_metrics(metrics);
  rep.run = simulator.Run();
  rep.success = spec.oracle(*spec.program, rep.run) && rep.run.injected.has_value();
  return rep;
}

// The work items of one round, in priority order: index `i` must win over
// index `j` whenever i < j and both succeed, regardless of which thread
// finishes first — that is what makes the parallel engine's result identical
// to the serial loop's.
struct RoundPlan {
  // Each item: the window to arm and the seed to run with.
  std::vector<std::pair<std::vector<interp::InjectionCandidate>, uint64_t>> items;
};

RoundPlan PlanRound(const ExperimentSpec& spec, const ExplorerOptions& options, int round,
                    const std::vector<interp::InjectionCandidate>& window) {
  RoundPlan plan;
  int repetitions = std::max(1, options.runs_per_round);
  auto seed_of = [&](int rep) {
    return spec.base_seed + static_cast<uint64_t>(round) * static_cast<uint64_t>(repetitions) +
           static_cast<uint64_t>(rep);
  };
  if (options.parallel_candidates && window.size() > 1) {
    // Speculative window evaluation: candidate-major so that the first
    // success in plan order is the success of the highest-ranked candidate.
    for (const interp::InjectionCandidate& candidate : window) {
      for (int rep = 0; rep < repetitions; ++rep) {
        plan.items.emplace_back(std::vector<interp::InjectionCandidate>{candidate},
                                seed_of(rep));
      }
    }
  } else {
    for (int rep = 0; rep < repetitions; ++rep) {
      plan.items.emplace_back(window, seed_of(rep));
    }
  }
  return plan;
}

// Executes the plan. Serial mode stops at the first success (items after it
// are never needed: a successful round skips feedback digestion, and on an
// unsuccessful round everything executed anyway). Parallel mode runs every
// item and lets the caller select by plan order, which yields the same
// selection.
std::vector<RepRun> ExecutePlan(const ExperimentSpec& spec, const ir::FlatProgram* flat,
                                bool tree_walk, const RoundPlan& plan, ThreadPool* pool,
                                obs::MetricsRegistry* metrics) {
  std::vector<RepRun> executed;
  if (pool != nullptr && plan.items.size() > 1) {
    std::vector<std::future<RepRun>> futures;
    futures.reserve(plan.items.size());
    for (const auto& [window, seed] : plan.items) {
      futures.push_back(pool->Submit([&spec, flat, tree_walk, &window, seed = seed,
                                      metrics]() {
        return ExecuteOne(spec, flat, tree_walk, window, seed, metrics);
      }));
    }
    executed.reserve(futures.size());
    for (std::future<RepRun>& future : futures) {
      executed.push_back(future.get());
    }
  } else {
    for (const auto& [window, seed] : plan.items) {
      executed.push_back(ExecuteOne(spec, flat, tree_walk, window, seed, metrics));
      if (executed.back().success) {
        break;
      }
    }
  }
  return executed;
}

// Parses one run's log into its set of sanitized message keys. Offloaded to
// the pool when a round produced several logs.
std::unordered_set<std::string> KeysOfRun(const interp::RunResult& run) {
  std::unordered_set<std::string> keys;
  logdiff::ParsedLog log = logdiff::ParseLogFile(interp::FormatLogFile(run.log));
  for (const logdiff::ParsedLine& line : log.lines) {
    keys.insert(line.key);
  }
  return keys;
}

std::unordered_set<std::string> CombinedKeys(const std::vector<RepRun>& executed,
                                             ThreadPool* pool) {
  std::unordered_set<std::string> combined;
  if (pool != nullptr && executed.size() > 1) {
    std::vector<std::future<std::unordered_set<std::string>>> futures;
    futures.reserve(executed.size());
    for (const RepRun& rep : executed) {
      futures.push_back(pool->Submit([&rep]() { return KeysOfRun(rep.run); }));
    }
    for (auto& future : futures) {
      combined.merge(future.get());
    }
  } else {
    for (const RepRun& rep : executed) {
      combined.merge(KeysOfRun(rep.run));
    }
  }
  return combined;
}

// Present relevant observables, in the context's (deterministic) order.
std::vector<std::string> PresentKeys(const ExplorerContext& context,
                                     const std::unordered_set<std::string>& run_keys) {
  std::vector<std::string> present;
  for (const ObservableInfo& observable : context.observables()) {
    if (run_keys.contains(observable.key)) {
      present.push_back(observable.key);
    }
  }
  return present;
}

// A round is *transient* when the watchdog killed any of its runs: the host
// was too slow, not the fault too severe. Deterministic outcomes (crashed,
// hung, completed, simulated-time/step budgets) re-occur on retry by
// construction, so only wall-clock kills are worth retrying.
bool AnyWallBudgetKill(const std::vector<RepRun>& executed) {
  for (const RepRun& rep : executed) {
    if (rep.run.hit_wall_budget) {
      return true;
    }
  }
  return false;
}

void CountOutcome(ExperimentRecord* record, interp::RunOutcome outcome) {
  switch (outcome) {
    case interp::RunOutcome::kCompleted:
      ++record->completed_rounds;
      break;
    case interp::RunOutcome::kCrashed:
      ++record->crashed_rounds;
      break;
    case interp::RunOutcome::kHung:
      ++record->hung_rounds;
      break;
    case interp::RunOutcome::kBudgetExceeded:
      ++record->budget_exceeded_rounds;
      break;
    case interp::RunOutcome::kPartitionedStuck:
      ++record->partitioned_stuck_rounds;
      break;
  }
}

}  // namespace

std::string ReproductionScript::ToText(const ir::Program& program) const {
  if (kind != interp::FaultKind::kException) {
    return StrFormat("inject %s of %s at occurrence %lld with seed %llu",
                     interp::FaultKindName(kind), program.fault_site(site).name.c_str(),
                     static_cast<long long>(occurrence),
                     static_cast<unsigned long long>(seed));
  }
  return StrFormat("inject %s of type %s at occurrence %lld with seed %llu",
                   program.fault_site(site).name.c_str(),
                   program.exception_type(type).name.c_str(),
                   static_cast<long long>(occurrence), static_cast<unsigned long long>(seed));
}

Explorer::Explorer(const ExperimentSpec& spec, const ExplorerOptions& options)
    : spec_(&spec), options_(options) {
  context_ = std::make_shared<const ExplorerContext>(spec, options);
}

Explorer::Explorer(const ExperimentSpec& spec, const ExplorerOptions& options,
                   std::shared_ptr<const ExplorerContext> context)
    : spec_(&spec), options_(options), context_(std::move(context)) {
  ANDURIL_CHECK(context_ != nullptr);
  // The shared-analysis-cache ctor skips the whole static analysis; its
  // counterpart "explore.context_builds" is recorded by the context ctor.
  if (options_.metrics != nullptr) {
    options_.metrics->Add("explore.context_cache_hits");
  }
}

ExploreResult Explorer::Explore(InjectionStrategy* strategy) {
  return Explore(strategy, CheckpointConfig{});
}

ExploreResult Explorer::Explore(InjectionStrategy* strategy, const CheckpointConfig& checkpoint) {
  Stopwatch total_timer;
  ExploreResult result;
  result.init_seconds = context_->init_seconds();

  obs::Tracer* tracer = options_.tracer;
  obs::MetricsRegistry* metrics = options_.metrics;
  // Logical-timeline base of this search's rounds (see obs/trace.h): round r
  // occupies [phase_base + r*kRoundStride, +kRoundStride), plan item i of a
  // round sits at +i*kItemStride on track i+1.
  const int64_t phase_base = static_cast<int64_t>(options_.trace_phase) * obs::kPhaseStride;

  strategy->Initialize(*context_);

  // Backoff for transient (wall-budget-killed) rounds. Its jitter RNG is
  // seeded off base_seed so the delay *stream* is deterministic; checkpoints
  // record the draw count so a resumed search continues the same stream.
  ExponentialBackoff::Options backoff_options;
  backoff_options.initial_delay_ms = options_.retry_initial_delay_ms;
  backoff_options.max_delay_ms = options_.retry_max_delay_ms;
  backoff_options.max_retries = options_.max_run_retries;
  ExponentialBackoff retry_backoff(backoff_options, spec_->base_seed ^ 0x9e3779b97f4a7c15ull);

  int first_round = 1;
  if (checkpoint.resume != nullptr) {
    const SearchCheckpoint& snap = *checkpoint.resume;
    ANDURIL_CHECK(snap.version == kCheckpointVersion);
    ANDURIL_CHECK(snap.program_fingerprint == ProgramFingerprint(*spec_->program));
    ANDURIL_CHECK(snap.base_seed == spec_->base_seed);
    ANDURIL_CHECK(snap.pinned == spec_->pinned_faults);
    // A network-config mismatch changes the candidate space or message
    // timing — resuming would diverge from the uninterrupted search.
    ANDURIL_CHECK(snap.network_candidates == options_.network_candidates);
    ANDURIL_CHECK(snap.partition_heal_ms == spec_->cluster->partition_heal_ms);
    ANDURIL_CHECK(snap.network_delay_ms == spec_->cluster->network_delay_ms);
    // v4: the stage-1 ranking engine and the candidate space it ranked. The
    // incremental and full-rerank engines are proven byte-identical, but a
    // mismatch still means the resuming process is configured differently
    // from the writer — surface that instead of quietly relying on the
    // equivalence; and a candidate/observable count drift means the context
    // was built differently (the fingerprint only guards the program shape).
    ANDURIL_CHECK(snap.engine_kind ==
                  (options_.full_rerank ? std::string("full-rerank") : std::string("incremental")))
        << "checkpoint was written by the " << snap.engine_kind
        << " ranking engine but this search is configured for the other one";
    ANDURIL_CHECK(snap.engine_candidates == static_cast<int64_t>(context_->candidates().size()))
        << "checkpoint ranked " << snap.engine_candidates << " candidates, this context has "
        << context_->candidates().size();
    ANDURIL_CHECK(snap.engine_observables == static_cast<int64_t>(context_->observables().size()))
        << "checkpoint ranked " << snap.engine_observables << " observables, this context has "
        << context_->observables().size();
    // A chain checkpoint only resumes under the ChainExplorer that supplies
    // the matching chain prefix; a plain search resuming one would silently
    // drop the accepted chain steps.
    {
      const ChainState empty_chain;
      const ChainState& expected =
          checkpoint.chain != nullptr ? *checkpoint.chain : empty_chain;
      ANDURIL_CHECK(snap.chain == expected)
          << "checkpoint chain state does not match this search (chain checkpoints "
             "resume only under ChainExplorer with the same chain prefix)";
    }
    ANDURIL_CHECK(strategy->RestoreState(snap.strategy));
    retry_backoff.FastForward(snap.retry_rng_draws);
    result.experiment = snap.experiment;
    result.rounds = snap.rounds_completed;
    first_round = snap.rounds_completed + 1;
    // Overwrite (not merge): the snapshot was taken by a process that had
    // already built its context, so it subsumes the context-build metrics
    // this process just re-recorded. This is what makes the final metrics of
    // interrupted + resumed byte-identical to the uninterrupted search.
    if (snap.has_metrics && metrics != nullptr) {
      metrics->Restore(snap.metrics);
    }
  }

  std::optional<ThreadPool> pool_storage;
  if (options_.num_threads > 1) {
    pool_storage.emplace(options_.num_threads);
  }
  ThreadPool* pool = pool_storage ? &*pool_storage : nullptr;

  std::vector<int64_t> injection_requests;
  std::vector<double> decision_latencies;
  std::vector<double> round_inits;
  std::vector<double> workload_times;

  // Emits the round's spans once its record is final: a "round" span on
  // track 0 covering the round's whole grid slot, and per executed plan item
  // a "candidate" span (the armed window) nesting a "run" span (the
  // simulation) on track i+1. All timestamps are logical, so the trace is a
  // pure function of the search trajectory — identical at any thread count.
  auto trace_round = [&](const RoundRecord& rec, const RoundPlan& plan,
                         const std::vector<RepRun>& executed) {
    if (tracer == nullptr) {
      return;
    }
    const int64_t base = phase_base + static_cast<int64_t>(rec.round) * obs::kRoundStride;
    for (size_t i = 0; i < executed.size(); ++i) {
      const RepRun& rep = executed[i];
      const int64_t item_ts = base + static_cast<int64_t>(i) * obs::kItemStride;
      const int64_t track = static_cast<int64_t>(i) + 1;
      std::vector<obs::TraceArg> candidate_args;
      candidate_args.push_back(
          obs::ArgInt("armed", static_cast<int64_t>(plan.items[i].first.size())));
      if (rep.run.injected.has_value()) {
        candidate_args.push_back(obs::ArgStr(
            "site", spec_->program->fault_site(rep.run.injected->site).name));
        candidate_args.push_back(
            obs::ArgStr("kind", interp::FaultKindName(rep.run.injected->kind)));
        candidate_args.push_back(obs::ArgInt("occurrence", rep.run.injected->occurrence));
      }
      tracer->Span("explore", "candidate", item_ts, obs::kItemStride, track,
                   std::move(candidate_args));
      std::vector<obs::TraceArg> run_args;
      run_args.push_back(obs::ArgUint("seed", rep.seed));
      run_args.push_back(obs::ArgStr("outcome", interp::RunOutcomeName(rep.run.outcome)));
      run_args.push_back(obs::ArgBool("injected", rep.run.injected.has_value()));
      run_args.push_back(obs::ArgInt("requests", rep.run.injection_requests));
      run_args.push_back(obs::ArgInt("end_time_ms", rep.run.end_time_ms));
      int64_t run_dur = std::clamp<int64_t>(rep.run.end_time_ms, 1, obs::kItemStride - 1);
      tracer->Span("explore", "run", item_ts, run_dur, track, std::move(run_args));
    }
    std::vector<obs::TraceArg> round_args;
    round_args.push_back(obs::ArgInt("round", rec.round));
    round_args.push_back(obs::ArgInt("window", rec.window_size));
    round_args.push_back(obs::ArgBool("injected", rec.injected));
    round_args.push_back(obs::ArgBool("success", rec.success));
    round_args.push_back(obs::ArgStr("outcome", interp::RunOutcomeName(rec.outcome)));
    round_args.push_back(obs::ArgInt("present", rec.present_observables));
    round_args.push_back(obs::ArgInt("retries", rec.retries));
    tracer->Span("explore", "round", base, obs::kRoundStride, 0, std::move(round_args),
                 static_cast<int64_t>(rec.run_seconds * 1e9));
  };

  for (int round = first_round; round <= options_.max_rounds; ++round) {
    // Cooperative drain: stop between rounds. The previous round's checkpoint
    // is already on disk, so a resume continues byte-identically from here.
    if (options_.cancel != nullptr && options_.cancel->load(std::memory_order_relaxed)) {
      result.interrupted = true;
      break;
    }
    Stopwatch decide_timer;
    std::vector<interp::InjectionCandidate> window = strategy->NextWindow();
    double decide_seconds = decide_timer.ElapsedSeconds();
    if (window.empty() && strategy->Exhausted()) {
      break;
    }

    RoundRecord record;
    record.round = round;
    record.window_size = static_cast<int>(window.size());
    record.tracked_rank = options_.track_site != ir::kInvalidId
                              ? strategy->RankOfSite(options_.track_site)
                              : -1;
    for (const interp::InjectionCandidate& candidate : window) {
      if (interp::IsNetworkFaultKind(candidate.kind)) {
        ++record.network_candidates_tried;
      }
    }

    // Execute the round. One run by default; runs_per_round > 1 adds
    // repetitions with distinct seeds whose observable feedback is combined
    // (the paper's §6 remedy for probabilistically-missing log messages);
    // parallel_candidates fans the window out into single-candidate runs.
    // All of it lands on the thread pool when num_threads > 1, and the
    // selected run is always the first success in plan order, so the
    // outcome matches the serial engine exactly.
    Stopwatch run_timer;
    RoundPlan plan = PlanRound(*spec_, options_, round, window);
    // The context's cached FlatProgram is only valid for the program it was
    // lowered from; a context shared across specs with a different (equal)
    // program falls back to per-run self-lowering inside the simulator.
    const ir::FlatProgram* flat = context_->flat_program();
    if (flat != nullptr && flat->program() != spec_->program) {
      flat = nullptr;
    }
    std::vector<RepRun> executed =
        ExecutePlan(*spec_, flat, options_.tree_walk_interpreter, plan, pool, metrics);
    // Transient-failure retry: when the watchdog wall budget killed a run
    // the round's feedback is an artifact of host load, not of the fault.
    // Back off (bounded exponential + jitter) and re-execute the identical
    // plan; deterministic outcomes are never retried.
    while (AnyWallBudgetKill(executed) && retry_backoff.ShouldRetry()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(retry_backoff.NextDelayMs()));
      ++record.retries;
      ++result.experiment.transient_retries;
      if (tracer != nullptr) {
        tracer->Instant("explore", "retry",
                        phase_base + static_cast<int64_t>(round) * obs::kRoundStride +
                            obs::kRoundStride - obs::kItemStride + record.retries,
                        0, {obs::ArgInt("attempt", record.retries)});
      }
      executed = ExecutePlan(*spec_, flat, options_.tree_walk_interpreter, plan, pool,
                             metrics);
    }
    retry_backoff.Reset();
    record.run_seconds = run_timer.ElapsedSeconds();
    result.experiment.total_run_wall_seconds += record.run_seconds;
    result.experiment.max_round_wall_seconds =
        std::max(result.experiment.max_round_wall_seconds, record.run_seconds);

    const RepRun* selected = &executed.front();
    for (const RepRun& rep : executed) {
      if (rep.success) {
        selected = &rep;
        break;
      }
    }
    const interp::RunResult& run = selected->run;

    record.outcome = run.outcome;
    record.partition_events = run.partition_events;
    CountOutcome(&result.experiment, run.outcome);

    if (metrics != nullptr) {
      metrics->Add("explore.rounds");
      metrics->Add(std::string("explore.outcome.") + interp::RunOutcomeName(run.outcome));
      metrics->Observe("explore.window_size", record.window_size);
      if (record.retries > 0) {
        metrics->Add("explore.retries", record.retries);
      }
      if (record.network_candidates_tried > 0) {
        metrics->Add("explore.network_candidates", record.network_candidates_tried);
      }
      metrics->Set("explore.last_round", round);
    }

    record.injected = run.injected.has_value();
    if (run.injected.has_value()) {
      record.candidate = *run.injected;
    }
    record.injection_requests = run.injection_requests;
    record.decision_nanos = run.decision_nanos;
    injection_requests.push_back(run.injection_requests);
    if (run.injection_requests > 0) {
      decision_latencies.push_back(static_cast<double>(run.decision_nanos) /
                                   static_cast<double>(run.injection_requests));
    }
    workload_times.push_back(record.run_seconds);

    bool success = spec_->oracle(*spec_->program, run);
    record.success = success;

    if (success && run.injected.has_value()) {
      if (strategy->WantsLogFeedback()) {
        // The successful round's observable count matters too: the iterative
        // multi-fault mode ranks rounds by it when picking a fault to pin.
        record.present_observables =
            static_cast<int>(PresentKeys(*context_, KeysOfRun(run)).size());
      }
      record.decide_seconds = decide_seconds;
      result.records.push_back(record);
      result.reproduced = true;
      result.rounds = round;
      ReproductionScript script;
      script.site = run.injected->site;
      script.occurrence = run.injected->occurrence;
      script.type = run.injected->type;
      script.kind = run.injected->kind;
      script.seed = selected->seed;
      result.script = script;
      if (metrics != nullptr) {
        metrics->Add("explore.reproduced");
        if (record.present_observables >= 0) {
          metrics->Observe("logdiff.present_observables", record.present_observables);
        }
      }
      trace_round(record, plan, executed);
      if (tracer != nullptr) {
        tracer->Instant("explore", "reproduced",
                        phase_base + static_cast<int64_t>(round) * obs::kRoundStride +
                            obs::kRoundStride - 1,
                        0,
                        {obs::ArgStr("site", spec_->program->fault_site(script.site).name),
                         obs::ArgStr("kind", interp::FaultKindName(script.kind)),
                         obs::ArgInt("occurrence", script.occurrence),
                         obs::ArgUint("seed", script.seed)});
      }
      break;
    }

    // Feedback digestion: combined logs across every run of the round (§6).
    // Partial logs from crashed and watchdog-killed runs participate too —
    // a truncated log still carries every observable emitted before the
    // crash, which is exactly the feedback Algorithm 2 wants.
    Stopwatch feedback_timer;
    RoundOutcome outcome;
    outcome.round = round;
    outcome.outcome = run.outcome;
    // Window candidates whose (site, occurrence) a pinned fault claimed
    // first: report them so the strategy retires them instead of re-arming
    // the same doomed instance forever.
    for (const RepRun& rep : executed) {
      for (const interp::InjectionCandidate& candidate : rep.run.preempted_window) {
        if (std::find(outcome.preempted.begin(), outcome.preempted.end(), candidate) ==
            outcome.preempted.end()) {
          outcome.preempted.push_back(candidate);
        }
      }
    }
    if (options_.parallel_candidates && window.size() > 1) {
      // Speculative mode: every run that fired reports its instance, in
      // candidate-rank order, so the strategy retires all of them at once.
      for (const RepRun& rep : executed) {
        if (!rep.run.injected.has_value()) {
          continue;
        }
        const interp::InjectionCandidate& fired = *rep.run.injected;
        if (outcome.injected == fired ||
            std::find(outcome.also_injected.begin(), outcome.also_injected.end(), fired) !=
                outcome.also_injected.end()) {
          continue;
        }
        if (!outcome.injected.has_value()) {
          outcome.injected = fired;
        } else {
          outcome.also_injected.push_back(fired);
        }
      }
      // Let the round record reflect the round's real injection activity
      // (the iterative mode pins record.candidate of the best round).
      if (!record.injected && outcome.injected.has_value()) {
        record.injected = true;
        record.candidate = *outcome.injected;
      }
    } else {
      // Repetition mode reports only the selected run's injection: the
      // serial engine never sees the others, and parity with it is the
      // determinism contract.
      outcome.injected = run.injected;
    }
    if (strategy->WantsLogFeedback()) {
      outcome.present_keys = PresentKeys(*context_, CombinedKeys(executed, pool));
      record.present_observables = static_cast<int>(outcome.present_keys.size());
      if (metrics != nullptr) {
        metrics->Observe("logdiff.present_observables", record.present_observables);
      }
    }
    strategy->OnRound(outcome);
    record.decide_seconds = decide_seconds + feedback_timer.ElapsedSeconds();
    round_inits.push_back(record.decide_seconds);
    trace_round(record, plan, executed);
    result.records.push_back(record);
    result.rounds = round;

    if (!checkpoint.path.empty()) {
      SearchCheckpoint snap;
      snap.program_fingerprint = ProgramFingerprint(*spec_->program);
      snap.base_seed = spec_->base_seed;
      snap.rounds_completed = round;
      snap.retry_rng_draws = retry_backoff.draws();
      snap.network_candidates = options_.network_candidates;
      snap.partition_heal_ms = spec_->cluster->partition_heal_ms;
      snap.network_delay_ms = spec_->cluster->network_delay_ms;
      snap.engine_kind = options_.full_rerank ? "full-rerank" : "incremental";
      snap.engine_candidates = static_cast<int64_t>(context_->candidates().size());
      snap.engine_observables = static_cast<int64_t>(context_->observables().size());
      snap.experiment = result.experiment;
      snap.pinned = spec_->pinned_faults;
      ANDURIL_CHECK(strategy->SaveState(&snap.strategy));
      if (checkpoint.chain != nullptr) {
        snap.chain = *checkpoint.chain;
        // Persist the live phase's injected-round summaries so a mid-chain
        // resume can still merge them into the stitch-candidate pick even
        // though the records themselves die with this process.
        for (const RoundRecord& rec : result.records) {
          if (!rec.injected) {
            continue;
          }
          snap.chain.round_candidates.push_back(
              ChainRoundCandidate{rec.candidate, rec.present_observables, rec.round});
        }
      }
      if (metrics != nullptr) {
        snap.has_metrics = true;
        snap.metrics = metrics->Snapshot();
      }
      ANDURIL_CHECK(SaveCheckpointFile(checkpoint.path, snap));
    }

    // The round's results are consumed; hand one run's log/trace buffers
    // back to this thread's scratch so the next round (serial engine: the
    // same thread executes it) overwrites them in place instead of
    // reallocating every log entry.
    if (!executed.empty()) {
      LocalScratch().Recycle(std::move(executed.back().run));
    }
  }

  // The "explore" envelope span covers the rounds *this process* executed
  // (first_round..result.rounds); a resumed search traces only its own
  // segment, which is why the golden resume test compares round-level lines.
  if (tracer != nullptr && result.rounds >= first_round) {
    std::vector<obs::TraceArg> explore_args;
    explore_args.push_back(obs::ArgStr("strategy", strategy->name()));
    explore_args.push_back(obs::ArgBool("reproduced", result.reproduced));
    explore_args.push_back(obs::ArgInt("rounds", result.rounds));
    explore_args.push_back(obs::ArgInt("first_round", first_round));
    tracer->Span("explore", "explore",
                 phase_base + static_cast<int64_t>(first_round) * obs::kRoundStride,
                 static_cast<int64_t>(result.rounds - first_round + 1) * obs::kRoundStride, 0,
                 std::move(explore_args));
  }
  if (metrics != nullptr) {
    metrics->Set("explore.rounds_total", result.rounds);
    result.metrics = metrics->Snapshot();
  }

  result.total_seconds = total_timer.ElapsedSeconds() + context_->init_seconds();
  result.median_injection_requests = Median(injection_requests);
  if (!decision_latencies.empty()) {
    double sum = 0;
    for (double latency : decision_latencies) {
      sum += latency;
    }
    result.mean_decision_nanos = sum / static_cast<double>(decision_latencies.size());
  }
  result.median_round_init_seconds = Median(round_inits);
  result.median_workload_seconds = Median(workload_times);
  return result;
}

bool Explorer::Replay(const ExperimentSpec& spec, const ReproductionScript& script) {
  interp::FaultRuntime runtime(spec.program);
  runtime.SetPinned(spec.pinned_faults);
  runtime.SetWindow({interp::InjectionCandidate{script.site, script.occurrence, script.type,
                                                script.kind}});
  interp::Simulator simulator(spec.program, spec.cluster, script.seed, &runtime);
  interp::RunResult run = simulator.Run();
  return spec.oracle(*spec.program, run) && run.injected.has_value();
}

}  // namespace anduril::explorer
