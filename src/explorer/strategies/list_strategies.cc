// Precomputed-list strategies: the exhaustive / distance-only ablations
// (§8.3) and the comparison baselines (§8.4):
//
//   exhaustive     — every instance of every causal-graph fault site, in
//                    site order (no feedback, no priorities)
//   site-distance  — sites ordered by the static distance L_i = min_k L_{i,k}
//                    only; all (or first-3) instances per site
//   stacktrace     — only sites whose names appear in printed stack traces
//                    in the failure log (the paper's stacktrace-injector)
//   fate           — FATE-style coverage: every injectable site of the whole
//                    program (no causal pruning), one occurrence level at a
//                    time, deduplicated by failure ID = (site, occurrence)
//   crashtuner     — CrashTuner-style timing: inject at the first fault-site
//                    execution after each system state change (log message)

#include <algorithm>
#include <limits>

#include "src/explorer/strategies/strategy_util.h"
#include "src/util/check.h"
#include "src/util/strings.h"

namespace anduril::explorer {
namespace {

ir::ExceptionTypeId PrimaryType(const ir::Program& program, ir::FaultSiteId site) {
  const ir::FaultSite& fault_site = program.fault_site(site);
  const ir::Stmt& stmt =
      program.method(fault_site.location.method).stmt(fault_site.location.stmt);
  ANDURIL_CHECK_EQ(stmt.kind, ir::StmtKind::kExternalCall);
  return stmt.throwable_types.front();
}

class ExhaustiveStrategy : public ListStrategy {
 public:
  ExhaustiveStrategy() : ListStrategy(/*sequential=*/true) {}
  std::string name() const override { return "exhaustive"; }

 protected:
  void BuildList(const ExplorerContext& context) override {
    // Enumerate the causal graph's dynamic fault instances in execution
    // order: how a tool without priorities walks the space front to back.
    std::unordered_map<ir::FaultSiteId, ir::ExceptionTypeId> type_of;
    for (const FaultCandidate& candidate : context.candidates()) {
      type_of.emplace(candidate.site, candidate.type);
    }
    for (const interp::FaultInstanceEvent& event : context.normal_trace()) {
      auto it = type_of.find(event.site);
      if (it != type_of.end()) {
        list_.push_back(interp::InjectionCandidate{event.site, event.occurrence, it->second});
      }
    }
  }
};

class SiteDistanceStrategy : public ListStrategy {
 public:
  explicit SiteDistanceStrategy(int instance_limit)
      : ListStrategy(/*sequential=*/false), instance_limit_(instance_limit) {}
  std::string name() const override {
    return instance_limit_ > 0 ? "site-distance-limit" : "site-distance";
  }

  int RankOfSite(ir::FaultSiteId site) const override {
    for (size_t rank = 0; rank < site_order_.size(); ++rank) {
      if (site_order_[rank] == site) {
        return static_cast<int>(rank) + 1;
      }
    }
    return -1;
  }

 protected:
  void BuildList(const ExplorerContext& context) override {
    const auto& candidates = context.candidates();
    std::vector<std::pair<int64_t, size_t>> ranked;
    for (size_t i = 0; i < candidates.size(); ++i) {
      int64_t best = std::numeric_limits<int64_t>::max();
      for (size_t k = 0; k < context.observables().size(); ++k) {
        int32_t distance = context.Distance(i, k);
        if (distance != analysis::CausalGraph::kUnreachable) {
          best = std::min<int64_t>(best, distance);
        }
      }
      if (best != std::numeric_limits<int64_t>::max()) {
        ranked.emplace_back(best, i);
      }
    }
    std::stable_sort(ranked.begin(), ranked.end());
    for (const auto& [distance, index] : ranked) {
      const FaultCandidate& candidate = candidates[index];
      site_order_.push_back(candidate.site);
      const auto& instances = context.InstancesOf(candidate.site);
      size_t limit = instance_limit_ > 0
                         ? std::min<size_t>(instances.size(), static_cast<size_t>(instance_limit_))
                         : instances.size();
      for (size_t j = 0; j < limit; ++j) {
        list_.push_back(interp::InjectionCandidate{candidate.site, instances[j].occurrence,
                                                   candidate.type});
      }
    }
  }

 private:
  int instance_limit_;
  std::vector<ir::FaultSiteId> site_order_;
};

class StacktraceStrategy : public ListStrategy {
 public:
  StacktraceStrategy() : ListStrategy(/*sequential=*/true) {}
  std::string name() const override { return "stacktrace"; }

 protected:
  void BuildList(const ExplorerContext& context) override {
    const ir::Program& program = context.program();
    // Index fault sites by their exact (unsanitized) names.
    std::unordered_map<std::string, ir::FaultSiteId> by_name;
    for (const ir::FaultSite& site : program.fault_sites()) {
      by_name[site.name] = site.id;
    }
    // Scan raw failure-log messages for printed exceptions.
    std::vector<std::pair<ir::FaultSiteId, ir::ExceptionTypeId>> logged_sites;
    std::unordered_set<ir::FaultSiteId> seen;
    for (const logdiff::ParsedLine& line : context.failure_log().lines) {
      size_t pos = 0;
      while ((pos = line.message.find("exc=", pos)) != std::string::npos) {
        size_t start = pos + 4;
        size_t at = line.message.find(" at ", start);
        if (at == std::string::npos) {
          break;
        }
        std::string type_name = line.message.substr(start, at - start);
        size_t site_start = at + 4;
        size_t site_end = line.message.find_first_of(";]", site_start);
        if (site_end == std::string::npos) {
          break;
        }
        std::string site_name = line.message.substr(site_start, site_end - site_start);
        auto it = by_name.find(site_name);
        if (it != by_name.end() && !seen.contains(it->second) &&
            program.fault_site(it->second).kind == ir::FaultSiteKind::kExternal) {
          seen.insert(it->second);
          ir::ExceptionTypeId type = program.FindException(type_name);
          if (type == ir::kInvalidId) {
            type = PrimaryType(program, it->second);
          }
          logged_sites.emplace_back(it->second, type);
        }
        pos = site_end;
      }
    }
    for (const auto& [site, type] : logged_sites) {
      for (const InstanceEstimate& instance : context.InstancesOf(site)) {
        list_.push_back(interp::InjectionCandidate{site, instance.occurrence, type});
      }
    }
  }
};

class FateStrategy : public ListStrategy {
 public:
  FateStrategy() : ListStrategy(/*sequential=*/true) {}
  std::string name() const override { return "fate"; }

 protected:
  void BuildList(const ExplorerContext& context) override {
    const ir::Program& program = context.program();
    // Failure IDs = (site, occurrence); explore one occurrence level at a
    // time across all sites to maximize coverage, FATE-style. Sites are
    // visited in first-discovery order, as a dynamic tool encounters them.
    std::vector<ir::FaultSiteId> discovery_order;
    std::unordered_set<ir::FaultSiteId> seen;
    for (const interp::FaultInstanceEvent& event : context.normal_trace()) {
      // Injectability goes through the context so static pruning (when on)
      // filters this baseline's blind site list too.
      if (context.SiteInjectable(event.site) && seen.insert(event.site).second) {
        discovery_order.push_back(event.site);
      }
    }
    int64_t max_occurrences = 0;
    for (ir::FaultSiteId site : discovery_order) {
      max_occurrences = std::max<int64_t>(
          max_occurrences, static_cast<int64_t>(context.InstancesOf(site).size()));
    }
    for (int64_t level = 1; level <= max_occurrences; ++level) {
      for (ir::FaultSiteId site : discovery_order) {
        if (static_cast<int64_t>(context.InstancesOf(site).size()) >= level) {
          list_.push_back(
              interp::InjectionCandidate{site, level, PrimaryType(program, site)});
        }
      }
    }
  }
};

class CrashTunerStrategy : public ListStrategy {
 public:
  CrashTunerStrategy() : ListStrategy(/*sequential=*/true) {}
  std::string name() const override { return "crashtuner"; }

 protected:
  void BuildList(const ExplorerContext& context) override {
    const ir::Program& program = context.program();
    // Meta-info timing approximation: a log message marks a state change;
    // arm the first fault-site execution right after each state change.
    int64_t previous_clock = -1;
    for (const interp::FaultInstanceEvent& event : context.normal_trace()) {
      if (event.log_clock == previous_clock) {
        continue;
      }
      previous_clock = event.log_clock;
      if (!context.SiteInjectable(event.site)) {
        continue;
      }
      list_.push_back(interp::InjectionCandidate{event.site, event.occurrence,
                                                 PrimaryType(program, event.site)});
    }
  }
};

}  // namespace

std::unique_ptr<InjectionStrategy> MakeExhaustiveStrategy() {
  return std::make_unique<ExhaustiveStrategy>();
}

std::unique_ptr<InjectionStrategy> MakeSiteDistanceStrategy(int instance_limit) {
  return std::make_unique<SiteDistanceStrategy>(instance_limit);
}

std::unique_ptr<InjectionStrategy> MakeStacktraceStrategy() {
  return std::make_unique<StacktraceStrategy>();
}

std::unique_ptr<InjectionStrategy> MakeFateStrategy() {
  return std::make_unique<FateStrategy>();
}

std::unique_ptr<InjectionStrategy> MakeCrashTunerStrategy() {
  return std::make_unique<CrashTunerStrategy>();
}

std::unique_ptr<InjectionStrategy> MakeStrategy(const std::string& name) {
  if (name == "full") {
    return MakeFullFeedbackStrategy();
  }
  if (name == "full-sum") {
    return MakeSumAggregationStrategy();
  }
  if (name == "full-order") {
    return MakeOrderTemporalStrategy();
  }
  if (name == "exhaustive") {
    return MakeExhaustiveStrategy();
  }
  if (name == "site-distance") {
    return MakeSiteDistanceStrategy(0);
  }
  if (name == "site-distance-limit") {
    return MakeSiteDistanceStrategy(3);
  }
  if (name == "site-feedback") {
    return MakeSiteFeedbackStrategy();
  }
  if (name == "multiply") {
    return MakeMultiplyFeedbackStrategy();
  }
  if (name == "stacktrace") {
    return MakeStacktraceStrategy();
  }
  if (name == "fate") {
    return MakeFateStrategy();
  }
  if (name == "crashtuner") {
    return MakeCrashTunerStrategy();
  }
  ANDURIL_CHECK(false) << "unknown strategy " << name;
  return nullptr;
}

}  // namespace anduril::explorer
