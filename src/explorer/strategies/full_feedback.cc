// The complete ANDURIL feedback algorithm (§5.2):
//   F_i      = min_k ( L_{i,k} + I_k )         — two-level stage 1 (site)
//   F_{i,j}  = T_{i,j,k*}                      — stage 2 (instance), where k*
//              is the observable chosen in stage 1
//   window   = best untried instance of each of the top-k sites (§5.2.5)
//   feedback = Algorithm 2 on the observables of each unsuccessful round
//
// Also home of the "multiply feedback" ablation (§8.3), which replaces the
// two-level selection with a flat (F_i+1)×(T_{i,j}+1) product over all
// dynamic instances.

#include <algorithm>
#include <limits>
#include <memory>
#include <tuple>
#include <unordered_map>

#include "src/explorer/priority_engine.h"
#include "src/explorer/strategies/strategy_util.h"
#include "src/obs/metrics.h"
#include "src/util/check.h"
#include "src/util/hash.h"

namespace anduril::explorer {

int64_t TemporalDistance(const InstanceEstimate& instance,
                         const std::vector<int64_t>& observable_positions) {
  if (observable_positions.empty()) {
    return 0;
  }
  int64_t best = std::numeric_limits<int64_t>::max();
  for (int64_t pos : observable_positions) {
    int64_t distance = instance.failure_pos >= pos ? instance.failure_pos - pos
                                                   : pos - instance.failure_pos;
    best = std::min(best, distance);
  }
  return best;
}

namespace {

// Stage-1 sentinels and the stitch boost live in priority_engine.h now, so
// the incremental engine and this reference path share one definition.
constexpr int64_t kInfinity = kPriorityInfinity;

// Added to the stage-2 temporal distance per demotion: large enough to push
// a demoted instance behind every fresh one, small enough to never overflow.
constexpr int64_t kDemotionPenalty = 1'000'000;

class FeedbackStrategyBase : public InjectionStrategy {
 public:
  void Initialize(const ExplorerContext& context) override {
    context_ = &context;
    metrics_ = context.options().metrics;
    feedback_.Initialize(context);
    window_size_ = context.options().initial_window;
    if (UsesEngine() && !context.options().full_rerank) {
      // SeedStitchedSites (chain mode) runs before Initialize, so the engine
      // sees the stitch boosts at build time. Its constructor installs the
      // all-zero priorities feedback_ starts from.
      engine_ = std::make_unique<PriorityEngine>(context, stitched_sites_);
    }
  }

  void OnRound(const RoundOutcome& outcome) override {
    for (const interp::InjectionCandidate& preempted : outcome.preempted) {
      Retire(preempted);  // claimed by a pinned fault; never fires
      Count("strategy.retired");
    }
    if (outcome.injected.has_value()) {
      if (outcome.outcome == interp::RunOutcome::kHung ||
          outcome.outcome == interp::RunOutcome::kPartitionedStuck) {
        // The armed candidate wedged the run without reproducing the
        // failure — a stall hang, or an unhealed partition that starved a
        // blocked thread. Demote it — a hang often means "right site, wrong
        // instance" — and only retire it after repeated hangs. (A partition
        // that *healed* leaves the run completed/crashed and is retired
        // normally through the else branch.)
        int& count = demotions_[KeyOf(*outcome.injected)];
        Count("strategy.demoted");
        if (++count > context_->options().hang_demotions_before_retirement) {
          Retire(*outcome.injected);
          Count("strategy.retired");
        }
      } else {
        Retire(*outcome.injected);
        Count("strategy.retired");
      }
      for (const interp::InjectionCandidate& extra : outcome.also_injected) {
        Retire(extra);  // parallel-candidates: all fired instances
        Count("strategy.retired");
      }
    } else {
      window_size_ *= 2;
      Count("strategy.window_doublings");
    }
    if (metrics_ != nullptr) {
      // Gauge, not counter: the current doubling level. OnRound is only
      // called from the explorer's (single-threaded) round loop, so Set is
      // deterministic.
      metrics_->Set("strategy.window_size", window_size_);
    }
    if (engine_ != nullptr) {
      deltas_.clear();
      feedback_.Digest(outcome.present_keys, context_->options().feedback_adjustment, &deltas_);
      engine_->ApplyDeltas(deltas_);
    } else {
      feedback_.Digest(outcome.present_keys, context_->options().feedback_adjustment);
    }
  }

  bool SaveState(StrategyCheckpoint* out) const override {
    out->window_size = window_size_;
    out->exhausted = exhausted_;
    out->observable_priorities = feedback_.priorities();
    out->tried.clear();
    for (const TriedKey& key : tried_) {
      out->tried.push_back(
          interp::InjectionCandidate{key.site, key.occurrence, key.type, key.kind});
    }
    out->demotions.clear();
    for (const auto& [key, count] : demotions_) {
      out->demotions.push_back(StrategyCheckpoint::Demotion{
          interp::InjectionCandidate{key.site, key.occurrence, key.type, key.kind}, count});
    }
    // Hash-set iteration order is arbitrary; sort for byte-stable files.
    auto order = [](const interp::InjectionCandidate& a, const interp::InjectionCandidate& b) {
      return std::tie(a.site, a.occurrence, a.type, a.kind) <
             std::tie(b.site, b.occurrence, b.type, b.kind);
    };
    std::sort(out->tried.begin(), out->tried.end(), order);
    std::sort(out->demotions.begin(), out->demotions.end(),
              [&](const StrategyCheckpoint::Demotion& a, const StrategyCheckpoint::Demotion& b) {
                return order(a.candidate, b.candidate);
              });
    return true;
  }

  bool RestoreState(const StrategyCheckpoint& state) override {
    if (context_ == nullptr ||
        state.observable_priorities.size() != context_->observables().size()) {
      return false;
    }
    window_size_ = state.window_size;
    exhausted_ = state.exhausted;
    feedback_.SetPriorities(state.observable_priorities);
    tried_.clear();
    // The checkpoint carries no engine arrays — F_i / k*_i / untried budgets
    // are all derivable from (priorities, tried), so a restore recomputes
    // them from scratch and replays the tried set through Retire, landing on
    // exactly the state an uninterrupted search would hold.
    if (engine_ != nullptr) {
      engine_->Reset(state.observable_priorities);
    }
    for (const interp::InjectionCandidate& candidate : state.tried) {
      Retire(candidate);
    }
    demotions_.clear();
    for (const StrategyCheckpoint::Demotion& demotion : state.demotions) {
      demotions_[KeyOf(demotion.candidate)] = demotion.count;
    }
    return true;
  }

  bool WantsLogFeedback() const override { return true; }

  void SeedStitchedSites(const std::vector<ir::FaultSiteId>& sites) override {
    stitched_sites_.insert(sites.begin(), sites.end());
  }

  bool Exhausted() const override { return exhausted_; }

  int RankOfSite(ir::FaultSiteId site) const override {
    // Queried by the explorer between NextWindow and OnRound, when the
    // engine's ranking state is exactly what NextWindow ranked from — so the
    // on-demand computation matches the reference path's cached order.
    if (engine_ != nullptr) {
      return engine_->RankOfSite(site);
    }
    for (size_t rank = 0; rank < last_site_order_.size(); ++rank) {
      if (context_->candidates()[last_site_order_[rank]].site == site) {
        return static_cast<int>(rank) + 1;
      }
    }
    return -1;
  }

  void SetRankAuditSink(std::vector<uint64_t>* sink) override { rank_audit_ = sink; }

 protected:
  // Whether this strategy runs on the incremental priority engine when the
  // options don't force full_rerank. Only the plain full-feedback strategy
  // opts in; the ablations keep the reference ranking (they are
  // evaluation-only and never see storm-scale candidate counts).
  virtual bool UsesEngine() const { return false; }

  // Marks a dynamic instance tried, feeding the engine's untried budget on
  // fresh inserts only (re-retiring an already-tried instance must not
  // double-count).
  void Retire(const interp::InjectionCandidate& candidate) {
    if (tried_.insert(KeyOf(candidate)).second && engine_ != nullptr) {
      engine_->NoteTried(candidate);
    }
  }

  // Candidate indices sorted by F_i; fills per-candidate F and k*.
  std::vector<size_t> RankSites(std::vector<int64_t>* f_values,
                                std::vector<size_t>* best_observable) const {
    const auto& candidates = context_->candidates();
    f_values->assign(candidates.size(), kInfinity);
    best_observable->assign(candidates.size(), 0);
    for (size_t i = 0; i < candidates.size(); ++i) {
      for (size_t k = 0; k < context_->observables().size(); ++k) {
        int32_t distance = context_->Distance(i, k);
        if (distance == analysis::CausalGraph::kUnreachable) {
          continue;
        }
        int64_t value = static_cast<int64_t>(distance) + feedback_.priority(k);
        if (value < (*f_values)[i]) {
          (*f_values)[i] = value;
          (*best_observable)[i] = k;
        }
      }
    }
    std::vector<size_t> order;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if ((*f_values)[i] < kInfinity) {
        // Chain mode: a site the previous step's stitch run newly executed
        // outranks every ordinary candidate — it is where the cascade
        // continues — while stitched sites still order among themselves (and
        // against each other's kinds) by their ordinary F.
        if (stitched_sites_.count(candidates[i].site) != 0) {
          (*f_values)[i] -= kStitchBoost;
        }
        order.push_back(i);
      }
    }
    // Explicit total order (F, candidate index) shared with the incremental
    // engine (Stage1Less): a plain sort over a total order is deterministic,
    // and ties cannot depend on sort stability.
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return Stage1Less((*f_values)[a], a, (*f_values)[b], b);
    });
    return order;
  }

  // Reference-path twin of PriorityEngine::RankAuditHash: digests the same
  // (index, effective F, k*) stream so the differential harness can compare
  // per-round rankings across engines.
  void PushRankAudit(const std::vector<int64_t>& f_values,
                     const std::vector<size_t>& best_observable) {
    if (rank_audit_ == nullptr) {
      return;
    }
    Fnv1aHasher hasher;
    for (size_t i = 0; i < f_values.size(); ++i) {
      if (f_values[i] < kInfinity) {
        hasher.MixInt(static_cast<int64_t>(i));
        hasher.MixInt(f_values[i]);
        hasher.MixInt(static_cast<int64_t>(best_observable[i]));
      }
    }
    rank_audit_->push_back(hasher.hash());
  }

  // Demotion count per hung candidate (see OnRound); consulted as a stage-2
  // ranking penalty so demoted instances sort behind fresh ones.
  int64_t DemotionPenalty(const interp::InjectionCandidate& armed) const {
    auto it = demotions_.find(KeyOf(armed));
    return it == demotions_.end() ? 0 : kDemotionPenalty * it->second;
  }

  // Counts a strategy-level decision. Deliberately NOT called from
  // RestoreState: the checkpoint's metrics snapshot already carries the
  // counts of the retire/demote events it replays, and the explorer
  // overwrite-restores that snapshot — re-counting here would double them.
  void Count(const char* name) {
    if (metrics_ != nullptr) {
      metrics_->Add(name);
    }
  }

  const ExplorerContext* context_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  FeedbackState feedback_;
  std::unordered_set<ir::FaultSiteId> stitched_sites_;
  TriedSet tried_;
  std::unordered_map<TriedKey, int, TriedKeyHash> demotions_;
  int window_size_ = 10;
  bool exhausted_ = false;
  mutable std::vector<size_t> last_site_order_;
  // Non-null only for the plain full-feedback strategy without full_rerank.
  std::unique_ptr<PriorityEngine> engine_;
  std::vector<std::pair<size_t, int64_t>> deltas_;  // reused per round
  std::vector<uint64_t>* rank_audit_ = nullptr;
};

class FullFeedbackStrategy : public FeedbackStrategyBase {
 public:
  // Design-alternative knobs discussed (and rejected) in §5.2.3/§5.2.4:
  //   sum_aggregation: F_i = sum_k(L+I) instead of min_k — less sensitive to
  //     the feedback because the magnitudes of different k mix.
  //   order_temporal: T by the instance's *order* among its site's instances
  //     instead of by log-message distance — over-penalizes sites with many
  //     instances (the f_2 pathology of Figure 5).
  FullFeedbackStrategy(bool sum_aggregation, bool order_temporal)
      : sum_aggregation_(sum_aggregation), order_temporal_(order_temporal) {}

  std::string name() const override {
    if (sum_aggregation_) {
      return "full-sum";
    }
    if (order_temporal_) {
      return "full-order";
    }
    return "full";
  }

  std::vector<interp::InjectionCandidate> NextWindow() override {
    return engine_ != nullptr ? NextWindowIncremental() : NextWindowFullRerank();
  }

 private:
  bool UsesEngine() const override { return !sum_aggregation_ && !order_temporal_; }

  // Stage 2 (§5.2.3), shared verbatim by both stage-1 engines: the best
  // untried instance of `candidate` against the chosen observable's
  // positions, under the explicit order (T + demotion penalty, occurrence).
  // The occurrence tie-break makes the "earliest instance wins" behavior of
  // the historical strict-< scan an explicit part of the contract. Returns
  // nullptr when every instance is tried; flags *any_untried otherwise.
  const InstanceEstimate* BestUntriedInstance(const FaultCandidate& candidate,
                                              const std::vector<int64_t>& positions,
                                              bool* any_untried) const {
    const auto& instances = context_->InstancesOf(candidate.site);
    const InstanceEstimate* best = nullptr;
    int64_t best_distance = 0;
    for (size_t j = 0; j < instances.size(); ++j) {
      const InstanceEstimate& instance = instances[j];
      interp::InjectionCandidate armed = Arm(candidate, instance.occurrence);
      if (WasTried(tried_, armed)) {
        continue;
      }
      *any_untried = true;
      int64_t distance = order_temporal_ ? OrderTemporalDistance(instances, j, positions)
                                         : TemporalDistance(instance, positions);
      distance += DemotionPenalty(armed);
      if (best == nullptr || std::tie(distance, instance.occurrence) <
                                 std::tie(best_distance, best->occurrence)) {
        best = &instance;
        best_distance = distance;
      }
    }
    return best;
  }

  // Incremental path: stage-1 order comes from the engine's top-k heap —
  // the round visits window_size ranked candidates plus the fully-tried ones
  // the heap already excluded, never the whole candidate array.
  std::vector<interp::InjectionCandidate> NextWindowIncremental() {
    std::vector<interp::InjectionCandidate> window;
    if (window_size_ > 0) {
      engine_->VisitActive([&](size_t index, size_t best_k) {
        const FaultCandidate& candidate = context_->candidates()[index];
        const auto& positions = context_->observables()[best_k].failure_positions;
        bool any_untried = false;
        const InstanceEstimate* best = BestUntriedInstance(candidate, positions, &any_untried);
        // Active candidates have untried instances by construction — the
        // engine's budget counts down on exactly the fresh Retire inserts.
        ANDURIL_CHECK(best != nullptr)
            << "engine ranked candidate " << index << " active with no untried instance";
        window.push_back(Arm(candidate, best->occurrence));
        return static_cast<int>(window.size()) < window_size_;
      });
    }
    if (!engine_->AnyActive()) {
      // No candidate has an untried instance left: the same condition the
      // reference path establishes with its global re-scan.
      exhausted_ = true;
    }
    if (rank_audit_ != nullptr) {
      rank_audit_->push_back(engine_->RankAuditHash());
    }
    return window;
  }

  // Reference path (ExplorerOptions::full_rerank): recompute and sort
  // everything, every round.
  std::vector<interp::InjectionCandidate> NextWindowFullRerank() {
    std::vector<int64_t> f_values;
    std::vector<size_t> best_observable;
    std::vector<size_t> order =
        sum_aggregation_ ? RankSitesSum(&f_values, &best_observable)
                         : RankSites(&f_values, &best_observable);
    last_site_order_ = order;

    std::vector<interp::InjectionCandidate> window;
    bool any_untried = false;
    for (size_t index : order) {
      if (static_cast<int>(window.size()) >= window_size_) {
        break;
      }
      const FaultCandidate& candidate = context_->candidates()[index];
      const auto& positions =
          context_->observables()[best_observable[index]].failure_positions;
      const InstanceEstimate* best = BestUntriedInstance(candidate, positions, &any_untried);
      if (best != nullptr) {
        window.push_back(Arm(candidate, best->occurrence));
      }
    }
    if (!any_untried && window.empty()) {
      // Check globally: all instances of all ranked candidates tried?
      exhausted_ = true;
      for (size_t index : order) {
        const FaultCandidate& candidate = context_->candidates()[index];
        for (const InstanceEstimate& instance : context_->InstancesOf(candidate.site)) {
          if (!WasTried(tried_, Arm(candidate, instance.occurrence))) {
            exhausted_ = false;
            break;
          }
        }
        if (!exhausted_) {
          break;
        }
      }
    }
    if (!sum_aggregation_) {
      PushRankAudit(f_values, best_observable);
    }
    return window;
  }
  // §5.2.4 alternative: sum over observables instead of min.
  std::vector<size_t> RankSitesSum(std::vector<int64_t>* f_values,
                                   std::vector<size_t>* best_observable) const {
    const auto& candidates = context_->candidates();
    f_values->assign(candidates.size(), kInfinity);
    best_observable->assign(candidates.size(), 0);
    for (size_t i = 0; i < candidates.size(); ++i) {
      int64_t sum = 0;
      bool any = false;
      int64_t best = kInfinity;
      for (size_t k = 0; k < context_->observables().size(); ++k) {
        int32_t distance = context_->Distance(i, k);
        if (distance == analysis::CausalGraph::kUnreachable) {
          continue;
        }
        int64_t value = static_cast<int64_t>(distance) + feedback_.priority(k);
        sum += value;
        any = true;
        if (value < best) {
          best = value;
          (*best_observable)[i] = k;
        }
      }
      if (any) {
        (*f_values)[i] = sum;
      }
    }
    std::vector<size_t> order;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if ((*f_values)[i] < kInfinity) {
        order.push_back(i);
      }
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return Stage1Less((*f_values)[a], a, (*f_values)[b], b);
    });
    return order;
  }

  // §5.2.3 alternative: distance measured in instance *order* — how many of
  // this site's own instances sit between instance j and the instance
  // nearest the observable.
  static int64_t OrderTemporalDistance(const std::vector<InstanceEstimate>& instances,
                                       size_t j,
                                       const std::vector<int64_t>& observable_positions) {
    if (observable_positions.empty() || instances.empty()) {
      return 0;
    }
    size_t nearest = 0;
    int64_t nearest_distance = std::numeric_limits<int64_t>::max();
    for (size_t i = 0; i < instances.size(); ++i) {
      int64_t distance = TemporalDistance(instances[i], observable_positions);
      if (distance < nearest_distance) {
        nearest_distance = distance;
        nearest = i;
      }
    }
    return j >= nearest ? static_cast<int64_t>(j - nearest)
                        : static_cast<int64_t>(nearest - j);
  }

  bool sum_aggregation_;
  bool order_temporal_;
};

class MultiplyFeedbackStrategy : public FeedbackStrategyBase {
 public:
  std::string name() const override { return "multiply"; }

  std::vector<interp::InjectionCandidate> NextWindow() override {
    std::vector<int64_t> f_values;
    std::vector<size_t> best_observable;
    std::vector<size_t> order = RankSites(&f_values, &best_observable);
    last_site_order_ = order;

    struct Scored {
      int64_t priority;
      size_t seq;  // insertion order: explicit tie-break, was stable_sort position
      interp::InjectionCandidate candidate;
    };
    std::vector<Scored> scored;
    for (size_t index : order) {
      const FaultCandidate& candidate = context_->candidates()[index];
      const auto& positions =
          context_->observables()[best_observable[index]].failure_positions;
      for (const InstanceEstimate& instance : context_->InstancesOf(candidate.site)) {
        interp::InjectionCandidate armed = Arm(candidate, instance.occurrence);
        if (WasTried(tried_, armed)) {
          continue;
        }
        int64_t t = TemporalDistance(instance, positions) + DemotionPenalty(armed);
        // +1 on both factors avoids the degenerate zero product; the flat
        // combination is still what Table 2 shows to be inferior to the
        // two-level selection.
        scored.push_back(Scored{(f_values[index] + 1) * (t + 1), scored.size(), armed});
      }
    }
    if (scored.empty()) {
      exhausted_ = true;
      return {};
    }
    std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
      return std::tie(a.priority, a.seq) < std::tie(b.priority, b.seq);
    });
    std::vector<interp::InjectionCandidate> window;
    for (const Scored& entry : scored) {
      if (static_cast<int>(window.size()) >= window_size_) {
        break;
      }
      window.push_back(entry.candidate);
    }
    return window;
  }
};

// "Fault-site feedback" ablation: observable feedback on sites, but no
// temporal instance priorities — instances tried in natural order, at most 3
// per site (§8.3).
class SiteFeedbackStrategy : public FeedbackStrategyBase {
 public:
  std::string name() const override { return "site-feedback"; }

  std::vector<interp::InjectionCandidate> NextWindow() override {
    std::vector<int64_t> f_values;
    std::vector<size_t> best_observable;
    std::vector<size_t> order = RankSites(&f_values, &best_observable);
    last_site_order_ = order;

    std::vector<interp::InjectionCandidate> window;
    bool any_untried = false;
    for (size_t index : order) {
      if (static_cast<int>(window.size()) >= window_size_) {
        break;
      }
      const FaultCandidate& candidate = context_->candidates()[index];
      const auto& instances = context_->InstancesOf(candidate.site);
      size_t limit = std::min<size_t>(instances.size(), 3);
      for (size_t j = 0; j < limit; ++j) {
        interp::InjectionCandidate armed = Arm(candidate, instances[j].occurrence);
        if (!WasTried(tried_, armed)) {
          any_untried = true;
          window.push_back(armed);
          break;  // one instance per site per round
        }
      }
    }
    if (window.empty() && !any_untried) {
      exhausted_ = true;
    }
    return window;
  }
};

}  // namespace

std::unique_ptr<InjectionStrategy> MakeFullFeedbackStrategy() {
  return std::make_unique<FullFeedbackStrategy>(false, false);
}

std::unique_ptr<InjectionStrategy> MakeSumAggregationStrategy() {
  return std::make_unique<FullFeedbackStrategy>(true, false);
}

std::unique_ptr<InjectionStrategy> MakeOrderTemporalStrategy() {
  return std::make_unique<FullFeedbackStrategy>(false, true);
}

std::unique_ptr<InjectionStrategy> MakeMultiplyFeedbackStrategy() {
  return std::make_unique<MultiplyFeedbackStrategy>();
}

std::unique_ptr<InjectionStrategy> MakeSiteFeedbackStrategy() {
  return std::make_unique<SiteFeedbackStrategy>();
}

}  // namespace anduril::explorer
