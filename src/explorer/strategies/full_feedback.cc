// The complete ANDURIL feedback algorithm (§5.2):
//   F_i      = min_k ( L_{i,k} + I_k )         — two-level stage 1 (site)
//   F_{i,j}  = T_{i,j,k*}                      — stage 2 (instance), where k*
//              is the observable chosen in stage 1
//   window   = best untried instance of each of the top-k sites (§5.2.5)
//   feedback = Algorithm 2 on the observables of each unsuccessful round
//
// Also home of the "multiply feedback" ablation (§8.3), which replaces the
// two-level selection with a flat (F_i+1)×(T_{i,j}+1) product over all
// dynamic instances.

#include <algorithm>
#include <limits>
#include <tuple>
#include <unordered_map>

#include "src/explorer/strategies/strategy_util.h"
#include "src/obs/metrics.h"
#include "src/util/check.h"

namespace anduril::explorer {

int64_t TemporalDistance(const InstanceEstimate& instance,
                         const std::vector<int64_t>& observable_positions) {
  if (observable_positions.empty()) {
    return 0;
  }
  int64_t best = std::numeric_limits<int64_t>::max();
  for (int64_t pos : observable_positions) {
    int64_t distance = instance.failure_pos >= pos ? instance.failure_pos - pos
                                                   : pos - instance.failure_pos;
    best = std::min(best, distance);
  }
  return best;
}

namespace {

constexpr int64_t kInfinity = std::numeric_limits<int64_t>::max() / 4;

// Added to the stage-2 temporal distance per demotion: large enough to push
// a demoted instance behind every fresh one, small enough to never overflow.
constexpr int64_t kDemotionPenalty = 1'000'000;

// Subtracted from the stage-1 F_i of a causally-stitched site (chain mode):
// large enough to outrank any finite L+I (spatial distances are graph-sized,
// priorities grow by the feedback adjustment per round), small enough that
// f_values never get near overflow.
constexpr int64_t kStitchBoost = 1'000'000'000;

class FeedbackStrategyBase : public InjectionStrategy {
 public:
  void Initialize(const ExplorerContext& context) override {
    context_ = &context;
    metrics_ = context.options().metrics;
    feedback_.Initialize(context);
    window_size_ = context.options().initial_window;
  }

  void OnRound(const RoundOutcome& outcome) override {
    for (const interp::InjectionCandidate& preempted : outcome.preempted) {
      MarkTried(&tried_, preempted);  // claimed by a pinned fault; never fires
      Count("strategy.retired");
    }
    if (outcome.injected.has_value()) {
      if (outcome.outcome == interp::RunOutcome::kHung ||
          outcome.outcome == interp::RunOutcome::kPartitionedStuck) {
        // The armed candidate wedged the run without reproducing the
        // failure — a stall hang, or an unhealed partition that starved a
        // blocked thread. Demote it — a hang often means "right site, wrong
        // instance" — and only retire it after repeated hangs. (A partition
        // that *healed* leaves the run completed/crashed and is retired
        // normally through the else branch.)
        int& count = demotions_[KeyOf(*outcome.injected)];
        Count("strategy.demoted");
        if (++count > context_->options().hang_demotions_before_retirement) {
          MarkTried(&tried_, *outcome.injected);
          Count("strategy.retired");
        }
      } else {
        MarkTried(&tried_, *outcome.injected);
        Count("strategy.retired");
      }
      for (const interp::InjectionCandidate& extra : outcome.also_injected) {
        MarkTried(&tried_, extra);  // parallel-candidates: all fired instances
        Count("strategy.retired");
      }
    } else {
      window_size_ *= 2;
      Count("strategy.window_doublings");
    }
    if (metrics_ != nullptr) {
      // Gauge, not counter: the current doubling level. OnRound is only
      // called from the explorer's (single-threaded) round loop, so Set is
      // deterministic.
      metrics_->Set("strategy.window_size", window_size_);
    }
    feedback_.Digest(outcome.present_keys, context_->options().feedback_adjustment);
  }

  bool SaveState(StrategyCheckpoint* out) const override {
    out->window_size = window_size_;
    out->exhausted = exhausted_;
    out->observable_priorities = feedback_.priorities();
    out->tried.clear();
    for (const TriedKey& key : tried_) {
      out->tried.push_back(
          interp::InjectionCandidate{key.site, key.occurrence, key.type, key.kind});
    }
    out->demotions.clear();
    for (const auto& [key, count] : demotions_) {
      out->demotions.push_back(StrategyCheckpoint::Demotion{
          interp::InjectionCandidate{key.site, key.occurrence, key.type, key.kind}, count});
    }
    // Hash-set iteration order is arbitrary; sort for byte-stable files.
    auto order = [](const interp::InjectionCandidate& a, const interp::InjectionCandidate& b) {
      return std::tie(a.site, a.occurrence, a.type, a.kind) <
             std::tie(b.site, b.occurrence, b.type, b.kind);
    };
    std::sort(out->tried.begin(), out->tried.end(), order);
    std::sort(out->demotions.begin(), out->demotions.end(),
              [&](const StrategyCheckpoint::Demotion& a, const StrategyCheckpoint::Demotion& b) {
                return order(a.candidate, b.candidate);
              });
    return true;
  }

  bool RestoreState(const StrategyCheckpoint& state) override {
    if (context_ == nullptr ||
        state.observable_priorities.size() != context_->observables().size()) {
      return false;
    }
    window_size_ = state.window_size;
    exhausted_ = state.exhausted;
    feedback_.SetPriorities(state.observable_priorities);
    tried_.clear();
    for (const interp::InjectionCandidate& candidate : state.tried) {
      MarkTried(&tried_, candidate);
    }
    demotions_.clear();
    for (const StrategyCheckpoint::Demotion& demotion : state.demotions) {
      demotions_[KeyOf(demotion.candidate)] = demotion.count;
    }
    return true;
  }

  bool WantsLogFeedback() const override { return true; }

  void SeedStitchedSites(const std::vector<ir::FaultSiteId>& sites) override {
    stitched_sites_.insert(sites.begin(), sites.end());
  }

  bool Exhausted() const override { return exhausted_; }

  int RankOfSite(ir::FaultSiteId site) const override {
    for (size_t rank = 0; rank < last_site_order_.size(); ++rank) {
      if (context_->candidates()[last_site_order_[rank]].site == site) {
        return static_cast<int>(rank) + 1;
      }
    }
    return -1;
  }

 protected:
  // Candidate indices sorted by F_i; fills per-candidate F and k*.
  std::vector<size_t> RankSites(std::vector<int64_t>* f_values,
                                std::vector<size_t>* best_observable) const {
    const auto& candidates = context_->candidates();
    f_values->assign(candidates.size(), kInfinity);
    best_observable->assign(candidates.size(), 0);
    for (size_t i = 0; i < candidates.size(); ++i) {
      for (size_t k = 0; k < context_->observables().size(); ++k) {
        int32_t distance = context_->Distance(i, k);
        if (distance == analysis::CausalGraph::kUnreachable) {
          continue;
        }
        int64_t value = static_cast<int64_t>(distance) + feedback_.priority(k);
        if (value < (*f_values)[i]) {
          (*f_values)[i] = value;
          (*best_observable)[i] = k;
        }
      }
    }
    std::vector<size_t> order;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if ((*f_values)[i] < kInfinity) {
        // Chain mode: a site the previous step's stitch run newly executed
        // outranks every ordinary candidate — it is where the cascade
        // continues — while stitched sites still order among themselves (and
        // against each other's kinds) by their ordinary F.
        if (stitched_sites_.count(candidates[i].site) != 0) {
          (*f_values)[i] -= kStitchBoost;
        }
        order.push_back(i);
      }
    }
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return (*f_values)[a] < (*f_values)[b];
    });
    return order;
  }

  // Demotion count per hung candidate (see OnRound); consulted as a stage-2
  // ranking penalty so demoted instances sort behind fresh ones.
  int64_t DemotionPenalty(const interp::InjectionCandidate& armed) const {
    auto it = demotions_.find(KeyOf(armed));
    return it == demotions_.end() ? 0 : kDemotionPenalty * it->second;
  }

  // Counts a strategy-level decision. Deliberately NOT called from
  // RestoreState: the checkpoint's metrics snapshot already carries the
  // counts of the retire/demote events it replays, and the explorer
  // overwrite-restores that snapshot — re-counting here would double them.
  void Count(const char* name) {
    if (metrics_ != nullptr) {
      metrics_->Add(name);
    }
  }

  const ExplorerContext* context_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  FeedbackState feedback_;
  std::unordered_set<ir::FaultSiteId> stitched_sites_;
  TriedSet tried_;
  std::unordered_map<TriedKey, int, TriedKeyHash> demotions_;
  int window_size_ = 10;
  bool exhausted_ = false;
  mutable std::vector<size_t> last_site_order_;
};

class FullFeedbackStrategy : public FeedbackStrategyBase {
 public:
  // Design-alternative knobs discussed (and rejected) in §5.2.3/§5.2.4:
  //   sum_aggregation: F_i = sum_k(L+I) instead of min_k — less sensitive to
  //     the feedback because the magnitudes of different k mix.
  //   order_temporal: T by the instance's *order* among its site's instances
  //     instead of by log-message distance — over-penalizes sites with many
  //     instances (the f_2 pathology of Figure 5).
  FullFeedbackStrategy(bool sum_aggregation, bool order_temporal)
      : sum_aggregation_(sum_aggregation), order_temporal_(order_temporal) {}

  std::string name() const override {
    if (sum_aggregation_) {
      return "full-sum";
    }
    if (order_temporal_) {
      return "full-order";
    }
    return "full";
  }

  std::vector<interp::InjectionCandidate> NextWindow() override {
    std::vector<int64_t> f_values;
    std::vector<size_t> best_observable;
    std::vector<size_t> order =
        sum_aggregation_ ? RankSitesSum(&f_values, &best_observable)
                         : RankSites(&f_values, &best_observable);
    last_site_order_ = order;

    std::vector<interp::InjectionCandidate> window;
    bool any_untried = false;
    for (size_t index : order) {
      if (static_cast<int>(window.size()) >= window_size_) {
        break;
      }
      const FaultCandidate& candidate = context_->candidates()[index];
      const auto& positions =
          context_->observables()[best_observable[index]].failure_positions;
      // Stage 2: the best untried instance of this site by temporal distance.
      const auto& instances = context_->InstancesOf(candidate.site);
      const InstanceEstimate* best = nullptr;
      int64_t best_distance = 0;
      for (size_t j = 0; j < instances.size(); ++j) {
        const InstanceEstimate& instance = instances[j];
        interp::InjectionCandidate armed = Arm(candidate, instance.occurrence);
        if (WasTried(tried_, armed)) {
          continue;
        }
        any_untried = true;
        int64_t distance = order_temporal_
                               ? OrderTemporalDistance(instances, j, positions)
                               : TemporalDistance(instance, positions);
        distance += DemotionPenalty(armed);
        if (best == nullptr || distance < best_distance) {
          best = &instance;
          best_distance = distance;
        }
      }
      if (best != nullptr) {
        window.push_back(Arm(candidate, best->occurrence));
      }
    }
    if (!any_untried && window.empty()) {
      // Check globally: all instances of all ranked candidates tried?
      exhausted_ = true;
      for (size_t index : order) {
        const FaultCandidate& candidate = context_->candidates()[index];
        for (const InstanceEstimate& instance : context_->InstancesOf(candidate.site)) {
          if (!WasTried(tried_, Arm(candidate, instance.occurrence))) {
            exhausted_ = false;
            break;
          }
        }
        if (!exhausted_) {
          break;
        }
      }
    }
    return window;
  }

 private:
  // §5.2.4 alternative: sum over observables instead of min.
  std::vector<size_t> RankSitesSum(std::vector<int64_t>* f_values,
                                   std::vector<size_t>* best_observable) const {
    const auto& candidates = context_->candidates();
    f_values->assign(candidates.size(), kInfinity);
    best_observable->assign(candidates.size(), 0);
    for (size_t i = 0; i < candidates.size(); ++i) {
      int64_t sum = 0;
      bool any = false;
      int64_t best = kInfinity;
      for (size_t k = 0; k < context_->observables().size(); ++k) {
        int32_t distance = context_->Distance(i, k);
        if (distance == analysis::CausalGraph::kUnreachable) {
          continue;
        }
        int64_t value = static_cast<int64_t>(distance) + feedback_.priority(k);
        sum += value;
        any = true;
        if (value < best) {
          best = value;
          (*best_observable)[i] = k;
        }
      }
      if (any) {
        (*f_values)[i] = sum;
      }
    }
    std::vector<size_t> order;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if ((*f_values)[i] < kInfinity) {
        order.push_back(i);
      }
    }
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return (*f_values)[a] < (*f_values)[b];
    });
    return order;
  }

  // §5.2.3 alternative: distance measured in instance *order* — how many of
  // this site's own instances sit between instance j and the instance
  // nearest the observable.
  static int64_t OrderTemporalDistance(const std::vector<InstanceEstimate>& instances,
                                       size_t j,
                                       const std::vector<int64_t>& observable_positions) {
    if (observable_positions.empty() || instances.empty()) {
      return 0;
    }
    size_t nearest = 0;
    int64_t nearest_distance = std::numeric_limits<int64_t>::max();
    for (size_t i = 0; i < instances.size(); ++i) {
      int64_t distance = TemporalDistance(instances[i], observable_positions);
      if (distance < nearest_distance) {
        nearest_distance = distance;
        nearest = i;
      }
    }
    return j >= nearest ? static_cast<int64_t>(j - nearest)
                        : static_cast<int64_t>(nearest - j);
  }

  bool sum_aggregation_;
  bool order_temporal_;
};

class MultiplyFeedbackStrategy : public FeedbackStrategyBase {
 public:
  std::string name() const override { return "multiply"; }

  std::vector<interp::InjectionCandidate> NextWindow() override {
    std::vector<int64_t> f_values;
    std::vector<size_t> best_observable;
    std::vector<size_t> order = RankSites(&f_values, &best_observable);
    last_site_order_ = order;

    struct Scored {
      int64_t priority;
      interp::InjectionCandidate candidate;
    };
    std::vector<Scored> scored;
    for (size_t index : order) {
      const FaultCandidate& candidate = context_->candidates()[index];
      const auto& positions =
          context_->observables()[best_observable[index]].failure_positions;
      for (const InstanceEstimate& instance : context_->InstancesOf(candidate.site)) {
        interp::InjectionCandidate armed = Arm(candidate, instance.occurrence);
        if (WasTried(tried_, armed)) {
          continue;
        }
        int64_t t = TemporalDistance(instance, positions) + DemotionPenalty(armed);
        // +1 on both factors avoids the degenerate zero product; the flat
        // combination is still what Table 2 shows to be inferior to the
        // two-level selection.
        scored.push_back(Scored{(f_values[index] + 1) * (t + 1), armed});
      }
    }
    if (scored.empty()) {
      exhausted_ = true;
      return {};
    }
    std::stable_sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
      return a.priority < b.priority;
    });
    std::vector<interp::InjectionCandidate> window;
    for (const Scored& entry : scored) {
      if (static_cast<int>(window.size()) >= window_size_) {
        break;
      }
      window.push_back(entry.candidate);
    }
    return window;
  }
};

// "Fault-site feedback" ablation: observable feedback on sites, but no
// temporal instance priorities — instances tried in natural order, at most 3
// per site (§8.3).
class SiteFeedbackStrategy : public FeedbackStrategyBase {
 public:
  std::string name() const override { return "site-feedback"; }

  std::vector<interp::InjectionCandidate> NextWindow() override {
    std::vector<int64_t> f_values;
    std::vector<size_t> best_observable;
    std::vector<size_t> order = RankSites(&f_values, &best_observable);
    last_site_order_ = order;

    std::vector<interp::InjectionCandidate> window;
    bool any_untried = false;
    for (size_t index : order) {
      if (static_cast<int>(window.size()) >= window_size_) {
        break;
      }
      const FaultCandidate& candidate = context_->candidates()[index];
      const auto& instances = context_->InstancesOf(candidate.site);
      size_t limit = std::min<size_t>(instances.size(), 3);
      for (size_t j = 0; j < limit; ++j) {
        interp::InjectionCandidate armed = Arm(candidate, instances[j].occurrence);
        if (!WasTried(tried_, armed)) {
          any_untried = true;
          window.push_back(armed);
          break;  // one instance per site per round
        }
      }
    }
    if (window.empty() && !any_untried) {
      exhausted_ = true;
    }
    return window;
  }
};

}  // namespace

std::unique_ptr<InjectionStrategy> MakeFullFeedbackStrategy() {
  return std::make_unique<FullFeedbackStrategy>(false, false);
}

std::unique_ptr<InjectionStrategy> MakeSumAggregationStrategy() {
  return std::make_unique<FullFeedbackStrategy>(true, false);
}

std::unique_ptr<InjectionStrategy> MakeOrderTemporalStrategy() {
  return std::make_unique<FullFeedbackStrategy>(false, true);
}

std::unique_ptr<InjectionStrategy> MakeMultiplyFeedbackStrategy() {
  return std::make_unique<MultiplyFeedbackStrategy>();
}

std::unique_ptr<InjectionStrategy> MakeSiteFeedbackStrategy() {
  return std::make_unique<SiteFeedbackStrategy>();
}

}  // namespace anduril::explorer
