// Shared machinery for injection strategies: observable feedback bookkeeping
// (Algorithm 2) and a generic precomputed-list strategy used by the simpler
// ablations and baselines.

#ifndef ANDURIL_SRC_EXPLORER_STRATEGIES_STRATEGY_UTIL_H_
#define ANDURIL_SRC_EXPLORER_STRATEGIES_STRATEGY_UTIL_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/explorer/strategy.h"

namespace anduril::explorer {

// Observable priority values I_k, updated per Algorithm 2: every relevant
// observable *present* in an unsuccessful run gets its value incremented
// (higher value = lower priority), so observables still missing become the
// ones to chase.
class FeedbackState {
 public:
  void Initialize(const ExplorerContext& context) {
    context_ = &context;
    priorities_.assign(context.observables().size(), 0);
    for (size_t k = 0; k < context.observables().size(); ++k) {
      key_index_[context.observables()[k].key] = k;
    }
  }

  void Digest(const std::vector<std::string>& present_keys, int adjustment) {
    Digest(present_keys, adjustment, nullptr);
  }

  // Like Digest, but also records each applied (observable, delta) move so
  // the incremental priority engine can dirty exactly the I_k that changed.
  // Keys absent from the observable set contribute nothing to either.
  void Digest(const std::vector<std::string>& present_keys, int adjustment,
              std::vector<std::pair<size_t, int64_t>>* deltas) {
    for (const std::string& key : present_keys) {
      auto it = key_index_.find(key);
      if (it != key_index_.end()) {
        priorities_[it->second] += adjustment;
        if (deltas != nullptr) {
          deltas->emplace_back(it->second, adjustment);
        }
      }
    }
  }

  int64_t priority(size_t observable) const { return priorities_[observable]; }

  // Checkpoint support: the raw priority vector, in observable order.
  const std::vector<int64_t>& priorities() const { return priorities_; }
  void SetPriorities(std::vector<int64_t> priorities) { priorities_ = std::move(priorities); }

 private:
  const ExplorerContext* context_ = nullptr;
  std::vector<int64_t> priorities_;
  std::unordered_map<std::string, size_t> key_index_;
};

// Identity of a tried dynamic instance.
struct TriedKey {
  ir::FaultSiteId site;
  int64_t occurrence;
  ir::ExceptionTypeId type;
  interp::FaultKind kind = interp::FaultKind::kException;

  friend bool operator==(const TriedKey&, const TriedKey&) = default;
};

struct TriedKeyHash {
  size_t operator()(const TriedKey& key) const {
    size_t h = static_cast<size_t>(key.site);
    h = h * 1000003u + static_cast<size_t>(key.occurrence);
    h = h * 1000003u + static_cast<size_t>(key.type + 1);
    h = h * 1000003u + static_cast<size_t>(key.kind);
    return h;
  }
};

using TriedSet = std::unordered_set<TriedKey, TriedKeyHash>;

inline TriedKey KeyOf(const interp::InjectionCandidate& candidate) {
  return TriedKey{candidate.site, candidate.occurrence, candidate.type, candidate.kind};
}

inline bool WasTried(const TriedSet& tried, const interp::InjectionCandidate& candidate) {
  return tried.contains(KeyOf(candidate));
}

inline void MarkTried(TriedSet* tried, const interp::InjectionCandidate& candidate) {
  tried->insert(KeyOf(candidate));
}

// A strategy driven by a fixed, precomputed candidate list.
//
// Two window modes:
//   - Sequential (window 1, advance on miss): the next untried candidate is
//     armed; if the run never reaches it, it is abandoned. Used by the
//     exhaustive / stacktrace / FATE / CrashTuner baselines.
//   - Windowed (top-k of the list, doubling on miss): §5.2.5 semantics.
//     Used by the distance-only ablations.
class ListStrategy : public InjectionStrategy {
 public:
  void Initialize(const ExplorerContext& context) override {
    context_ = &context;
    window_size_ = sequential_ ? 1 : context.options().initial_window;
    BuildList(context);
  }

  std::vector<interp::InjectionCandidate> NextWindow() override {
    std::vector<interp::InjectionCandidate> window;
    last_window_.clear();
    for (size_t i = FirstUntried(); i < list_.size(); ++i) {
      if (static_cast<int>(window.size()) >= window_size_) {
        break;
      }
      if (!WasTried(tried_, list_[i])) {
        window.push_back(list_[i]);
      }
    }
    last_window_ = window;
    return window;
  }

  void OnRound(const RoundOutcome& outcome) override {
    for (const interp::InjectionCandidate& preempted : outcome.preempted) {
      MarkTried(&tried_, preempted);  // claimed by a pinned fault; never fires
    }
    if (outcome.injected.has_value()) {
      MarkTried(&tried_, *outcome.injected);
      for (const interp::InjectionCandidate& extra : outcome.also_injected) {
        MarkTried(&tried_, extra);  // parallel-candidates: all fired instances
      }
      return;
    }
    if (sequential_) {
      // The armed candidate never occurred; abandon it.
      if (!last_window_.empty()) {
        MarkTried(&tried_, last_window_.front());
      }
      return;
    }
    if (static_cast<size_t>(window_size_) >= CountRemainingAtMost(window_size_)) {
      // Every remaining candidate was armed and none occurred: exhausted.
      for (const interp::InjectionCandidate& candidate : list_) {
        MarkTried(&tried_, candidate);
      }
      return;
    }
    window_size_ *= 2;
  }

  bool Exhausted() const override { return CountRemainingAtMost(0) == 0; }

 protected:
  explicit ListStrategy(bool sequential) : sequential_(sequential) {}

  // Fills list_ (ordered candidate list).
  virtual void BuildList(const ExplorerContext& context) = 0;

  const ExplorerContext* context_ = nullptr;
  std::vector<interp::InjectionCandidate> list_;

 private:
  // Tried entries never become untried again, so the scan cursor only moves
  // forward: everything before it is known-tried and no per-round scan ever
  // revisits it. At storm scale (10⁵-entry lists) this turns the sequential
  // baselines' per-round cost from O(list) to O(new work).
  size_t FirstUntried() const {
    while (scan_start_ < list_.size() && WasTried(tried_, list_[scan_start_])) {
      ++scan_start_;
    }
    return scan_start_;
  }

  // Counts untried candidates, stopping as soon as the count exceeds `cap`
  // (exact below the cap, cap + 1 means "more than cap"). The exhaustion and
  // window-coverage checks only compare against small bounds, so they never
  // pay for a full count.
  size_t CountRemainingAtMost(size_t cap) const {
    size_t remaining = 0;
    for (size_t i = FirstUntried(); i < list_.size() && remaining <= cap; ++i) {
      if (!WasTried(tried_, list_[i])) {
        ++remaining;
      }
    }
    return remaining;
  }

  bool sequential_;
  int window_size_ = 1;
  TriedSet tried_;
  std::vector<interp::InjectionCandidate> last_window_;
  mutable size_t scan_start_ = 0;
};

// Temporal distance T_{i,j,k}: log messages between the instance's estimated
// failure-timeline position and the nearest occurrence of observable k
// (§5.2.3).
int64_t TemporalDistance(const InstanceEstimate& instance,
                         const std::vector<int64_t>& observable_positions);

}  // namespace anduril::explorer

#endif  // ANDURIL_SRC_EXPLORER_STRATEGIES_STRATEGY_UTIL_H_
