// Precomputed exploration context shared by all injection strategies.
//
// Built once before the injection rounds (the paper's step 1-2 and the §7
// precomputation optimization): the fault-free run, the relevant
// observables, the static causal graph, the per-(candidate, observable)
// spatial distances L_{i,k}, and the fault-instance distribution mapped onto
// the failure-log timeline for temporal distances T_{i,j,k}.

#ifndef ANDURIL_SRC_EXPLORER_CONTEXT_H_
#define ANDURIL_SRC_EXPLORER_CONTEXT_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/analysis/causal_graph.h"
#include "src/explorer/experiment.h"
#include "src/interp/fault_runtime.h"
#include "src/ir/flatten.h"
#include "src/logdiff/compare.h"
#include "src/logdiff/parser.h"

namespace anduril::explorer {

// A static fault candidate: an injectable fault site plus the exception type
// that links it into the causal graph (§5.2.2's f_i is "the exception type
// and its location in the code"). `kind` extends f_i beyond exceptions:
// crash/stall candidates (enumerated only when the options opt in) reuse the
// site's exception node for causal ranking, but arm a fault that halts the
// node / wedges the call instead of throwing `type`.
struct FaultCandidate {
  ir::FaultSiteId site = ir::kInvalidId;
  ir::ExceptionTypeId type = ir::kInvalidId;
  analysis::CausalNodeId node = -1;  // its external-exception node
  interp::FaultKind kind = interp::FaultKind::kException;
};

// The injection candidate armed for `candidate` at a dynamic occurrence:
// crash/stall kinds carry no exception type.
inline interp::InjectionCandidate Arm(const FaultCandidate& candidate, int64_t occurrence) {
  return interp::InjectionCandidate{
      candidate.site, occurrence,
      candidate.kind == interp::FaultKind::kException ? candidate.type : ir::kInvalidId,
      candidate.kind};
}

// A dynamic instance of a fault site observed in the fault-free run, with
// its position scaled onto the failure-log timeline (§5.2.3).
struct InstanceEstimate {
  int64_t occurrence = 0;
  int64_t failure_pos = 0;  // estimated log clock in the failure log
};

struct ObservableInfo {
  std::string key;
  std::vector<int64_t> failure_positions;  // log clocks in the failure log
};

// Immutable after construction: every member is filled by the constructor
// and only read afterwards, so a `shared_ptr<const ExplorerContext>` is safe
// to share across explorer phases and across threads without locking (the
// explorer's shared analysis cache). Keep it that way — no lazy caches, no
// mutable members.
class ExplorerContext {
 public:
  // Runs the fault-free workload, diffs logs, builds the causal graph, and
  // precomputes distances. `init_seconds` captures the setup cost.
  ExplorerContext(const ExperimentSpec& spec, const ExplorerOptions& options);

  const ExperimentSpec& spec() const { return *spec_; }
  const ExplorerOptions& options() const { return options_; }
  const ir::Program& program() const { return *spec_->program; }

  const logdiff::ParsedLog& failure_log() const { return failure_log_; }
  const logdiff::ParsedLog& normal_log() const { return normal_log_; }
  const std::vector<ObservableInfo>& observables() const { return observables_; }
  const analysis::CausalGraph& graph() const { return *graph_; }

  const std::vector<FaultCandidate>& candidates() const { return candidates_; }
  // L_{i,k}: distance from candidate i's node to observable k
  // (CausalGraph::kUnreachable when no path exists).
  int32_t Distance(size_t candidate, size_t observable) const {
    return distances_[candidate][observable];
  }

  // Instances of `site` from the fault-free run (empty if never executed).
  const std::vector<InstanceEstimate>& InstancesOf(ir::FaultSiteId site) const;

  // All injectable fault sites of the program (for coverage baselines that
  // skip the causal-graph candidate selection). With options.static_prune
  // this universe is pre-filtered to sites that have a static causal path to
  // at least one observable.
  const std::vector<ir::FaultSiteId>& all_injectable_sites() const {
    return all_injectable_sites_;
  }
  // Membership test for the (possibly pruned) injectable-site universe.
  // Trace-driven strategies use this instead of a raw fault-kind check so
  // static pruning applies to them uniformly.
  bool SiteInjectable(ir::FaultSiteId site) const {
    return injectable_site_set_.count(site) != 0;
  }

  // Pruning statistics (meaningful whether or not static_prune is set; both
  // are zero when it is off).
  size_t pruned_sites() const { return pruned_sites_; }
  size_t pruned_candidates() const { return pruned_candidates_; }
  // Injectable-site universe size before static pruning.
  size_t total_injectable_sites() const {
    return all_injectable_sites_.size() + pruned_sites_;
  }

  // The fault-free run's instance trace in execution order.
  const std::vector<interp::FaultInstanceEvent>& normal_trace() const { return normal_trace_; }

  // The program lowered once for the flattened interpreter, shared read-only
  // by every run of every round and thread of the exploration. Null when the
  // options selected the tree-walk interpreter.
  const ir::FlatProgram* flat_program() const { return flat_program_.get(); }

  double init_seconds() const { return init_seconds_; }
  double normal_workload_seconds() const { return normal_workload_seconds_; }

 private:
  const ExperimentSpec* spec_;
  ExplorerOptions options_;
  logdiff::ParsedLog failure_log_;
  logdiff::ParsedLog normal_log_;
  std::vector<ObservableInfo> observables_;
  std::unique_ptr<analysis::CausalGraph> graph_;
  std::vector<FaultCandidate> candidates_;
  std::vector<std::vector<int32_t>> distances_;
  std::unordered_map<ir::FaultSiteId, std::vector<InstanceEstimate>> instances_;
  std::vector<ir::FaultSiteId> all_injectable_sites_;
  std::unordered_set<ir::FaultSiteId> injectable_site_set_;
  size_t pruned_sites_ = 0;
  size_t pruned_candidates_ = 0;
  std::vector<interp::FaultInstanceEvent> normal_trace_;
  std::unique_ptr<const ir::FlatProgram> flat_program_;
  std::vector<InstanceEstimate> empty_;
  double init_seconds_ = 0;
  double normal_workload_seconds_ = 0;
};

}  // namespace anduril::explorer

#endif  // ANDURIL_SRC_EXPLORER_CONTEXT_H_
