// The reproduction-service daemon: accepts a queue of failure cases, shards
// round execution across supervised worker processes, streams per-case
// progress, and survives being killed at any instant.
//
// Robustness model, layer by layer:
//  - Queue: journaled to <state_dir>/queue.json (atomic writes, FNV
//    integrity hash) after every state transition. A restarted daemon
//    resumes the whole queue; per-case search state resumes from the v3
//    checkpoint files, whose byte-identical-resume invariant makes the
//    final scripts and metrics of an interrupted+resumed queue identical
//    to an uninterrupted run — at any worker count.
//  - Workers: forked `anduril_serve worker` processes supervised by
//    waitpid and a heartbeat (the case checkpoint's mtime must advance
//    within heartbeat_timeout_ms). A dead or wedged worker is SIGKILLed,
//    its case requeued, and the slot respawned under bounded exponential
//    backoff. A case that kills its worker max_case_crashes times in a row
//    is demoted to kFailed — it cannot wedge the queue.
//  - Scheduling: fair share with starve-out (see scheduler.h).
//  - Degradation: the cancel flag (SIGTERM) drains in-flight slices at
//    round boundaries — checkpoints flushed, manifest saved — and the next
//    `anduril_serve run` picks up exactly where the drain stopped.
//
// Crash emulation for tests: crash_after_slices makes the *daemon* _exit()
// after journaling N slice results (a kill between two commits);
// worker_crash_slice/_rounds make one dispatched slice die mid-search like
// a SIGKILLed worker.

#ifndef ANDURIL_SRC_SERVICE_DAEMON_H_
#define ANDURIL_SRC_SERVICE_DAEMON_H_

#include <atomic>
#include <string>
#include <vector>

#include "src/service/manifest.h"

namespace anduril::service {

struct ServeOptions {
  std::string state_dir;
  // Queue to create when no manifest exists yet; ignored on resume.
  std::vector<QueueCase> seed_cases;
  int slice_rounds = 200;
  // Worker processes. 0 = run every slice in-process (serial mode: no
  // supervision layer, same queue/journal semantics — the bench baseline).
  int workers = 2;
  int poll_ms = 2;
  int heartbeat_timeout_ms = 20000;
  int max_case_crashes = 3;
  // Test hooks (0 = off): see header comment.
  int crash_after_slices = 0;
  int worker_crash_slice = 0;   // 1-based index into dispatched slices
  int worker_crash_rounds = 0;  // rounds into that slice (default: 1)
  // Binary to exec for workers; defaults to /proc/self/exe.
  std::string serve_binary;
  const std::atomic<bool>* cancel = nullptr;
  bool verbose = true;
};

struct ServeReport {
  bool interrupted = false;
  bool error = false;
  std::string error_text;
  QueueManifest manifest;  // final journaled state
  int slices_applied = 0;
  int worker_respawns = 0;
};

// Runs the queue to completion (all cases terminal), drain, or error.
// On completion, merges every case's metrics into
// <state_dir>/merged_metrics.json via MetricsRegistry::Merge.
ServeReport RunService(const ServeOptions& options);

// Per-case file locations inside the state dir (shared with tests).
std::string ManifestPath(const std::string& state_dir);
std::string CaseCheckpointPath(const std::string& state_dir, const std::string& case_id);
std::string CaseMetricsPath(const std::string& state_dir, const std::string& case_id);
std::string MergedMetricsPath(const std::string& state_dir);

}  // namespace anduril::service

#endif  // ANDURIL_SRC_SERVICE_DAEMON_H_
